// Experiment T4 — the deck's consolidation economics.
//
// The source deck reports: 20 physical hosts running 50 VMs, with
// power+cooling savings of ~200-250 EUR per virtualized server per year,
// ~10,000 EUR/year overall. This harness reproduces the plan: it *measures*
// how many mixed servers one host sustains at acceptable degradation (via
// the T1 simulation), derives the host count for a 50-server fleet, and
// prices the result with the deck's per-server figures.

#include "bench/bench_util.h"

using namespace hyperion;
using namespace hyperion::bench;

namespace {

constexpr SimTime kWindow = 30 * kSimTicksPerMs;
constexpr uint32_t kPcpus = 2;

// Measures per-VM throughput share with `n` mixed servers on one host.
// Every third server is a mostly idle box (as in real racks).
double PerVmShare(uint32_t n, double solo_work) {
  core::HostConfig hc;
  hc.num_pcpus = kPcpus;
  hc.ram_bytes = 512u << 20;
  core::Host host(hc);
  std::string busy = guest::ComputeProgram(0);
  std::string idle = guest::IdleTickProgram(500'000);
  std::vector<core::Vm*> busy_vms;
  for (uint32_t i = 0; i < n; ++i) {
    core::VmConfig cfg;
    cfg.name = "vm" + std::to_string(i);
    bool is_idle = i % 3 == 2;
    core::Vm* vm = MustBoot(host, cfg, is_idle ? idle : busy);
    if (!is_idle) {
      busy_vms.push_back(vm);
    }
  }
  host.RunFor(kWindow);
  if (busy_vms.empty()) {
    return 1.0;
  }
  uint64_t total = 0;
  for (auto* vm : busy_vms) {
    total += Progress(vm, busy);
  }
  return static_cast<double>(total) / busy_vms.size() / solo_work;
}

}  // namespace

int main() {
  Section("T4: consolidation economics (deck: 50 servers, 200-250 EUR/server/year)");

  // Measure solo throughput, then find the largest rack with acceptable
  // per-VM degradation (>= 40% of solo, the interactive-usability floor).
  double solo = 0;
  {
    core::HostConfig hc;
    hc.num_pcpus = kPcpus;
    hc.ram_bytes = 128u << 20;
    core::Host host(hc);
    std::string busy = guest::ComputeProgram(0);
    core::VmConfig cfg;
    cfg.name = "solo";
    core::Vm* vm = MustBoot(host, cfg, busy);
    host.RunFor(kWindow);
    solo = static_cast<double>(Progress(vm, busy));
  }

  Row("%-18s %14s %16s", "VMs per host", "per-VM share", "acceptable(>=40%)");
  uint32_t best = 1;
  for (uint32_t n : {2u, 3u, 4u, 5u, 6u, 8u}) {
    double share = PerVmShare(n, solo);
    bool ok = share >= 0.40;
    if (ok) {
      best = n;
    }
    Row("%-18u %13.0f%% %16s", n, share * 100, ok ? "yes" : "no");
  }

  Section("T4b: fleet plan for 50 servers");
  uint32_t fleet = 50;
  uint32_t hosts_needed = (fleet + best - 1) / best;
  uint32_t servers_removed = fleet - hosts_needed;
  Row("measured consolidation ratio : %u VMs per host", best);
  Row("physical hosts needed        : %u (deck reports ~20 for 50 VMs)", hosts_needed);
  Row("physical boxes eliminated    : %u", servers_removed);

  for (uint32_t eur_per_server : {200u, 250u}) {
    uint32_t annual = servers_removed * eur_per_server;
    Row("power+cooling @ %u EUR/server/yr -> savings %u EUR/yr", eur_per_server, annual);
  }
  Row("(deck reports ~10,000 EUR/yr; shape holds when the eliminated-server");
  Row(" count lands in the 40-50 range, i.e. a 3-4:1 consolidation ratio)");
  return 0;
}
