// Experiment F3 — I/O paravirtualization: emulated PIO devices vs. virtio.
//
// Block: exits per sector and simulated cycles per sector, across request
// sizes (emulated) and batch depths (virtio). Net: round-trip cost for the
// PIO NIC vs virtio rings.
//
// Expected shape: the emulated device costs O(bytes) exits (every data word
// traps) where virtio costs O(1) exits per batch; the gap is an order of
// magnitude and grows with batch depth.

#include "bench/bench_util.h"

using namespace hyperion;
using namespace hyperion::bench;

namespace {

struct IoOutcome {
  uint64_t sectors = 0;
  uint64_t exits = 0;   // mmio exits + hypercalls
  uint64_t cycles = 0;  // guest cycles consumed
  bool ok = false;
};

IoOutcome RunBlk(bool paravirt, uint32_t sectors, uint32_t batch, uint32_t iterations) {
  core::Host host;
  auto disk = std::make_shared<storage::MemBlockStore>(4096);
  core::VmConfig cfg;
  cfg.name = "io";
  cfg.disk_model = paravirt ? core::IoModel::kParavirt : core::IoModel::kEmulated;
  cfg.disk = disk;

  guest::BlkIoParams p;
  p.iterations = iterations;
  p.sectors = sectors;
  p.batch = batch;
  p.write = true;
  std::string prog = paravirt ? guest::VirtioBlkProgram(p) : guest::EmulatedBlkProgram(p);
  core::Vm* vm = MustBoot(host, cfg, prog);
  host.RunUntilVmStops(vm, 120 * kSimTicksPerSec);

  IoOutcome out;
  out.ok = vm->state() == core::VmState::kShutdown;
  auto stats = vm->TotalStats();
  out.exits = stats.mmio_exits + stats.hypercalls;
  out.cycles = stats.cycles;
  out.sectors = paravirt ? vm->virtio_blk()->blk_stats().sectors
                         : vm->emulated_blk()->stats().sectors;
  return out;
}

struct NetOutcome {
  uint32_t round_trips = 0;
  uint64_t exits = 0;
  uint64_t cycles = 0;
  bool ok = false;
};

NetOutcome RunNet(bool paravirt, uint32_t payload, uint32_t iterations) {
  core::Host host;
  guest::NetParams np;
  np.peer_mac = 2;
  np.payload_bytes = payload;
  np.iterations = iterations;

  core::VmConfig ping_cfg;
  ping_cfg.name = "ping";
  ping_cfg.net_model = paravirt ? core::IoModel::kParavirt : core::IoModel::kEmulated;
  ping_cfg.mac = 1;
  core::VmConfig echo_cfg = ping_cfg;
  echo_cfg.name = "echo";
  echo_cfg.mac = 2;

  std::string ping_prog =
      paravirt ? guest::VirtioNetPingProgram(np) : guest::EmulatedNetPingProgram(np);
  std::string echo_prog = paravirt ? guest::VirtioNetEchoProgram(np.payload_bytes)
                                   : guest::EmulatedNetEchoProgram();
  core::Vm* ping = MustBoot(host, ping_cfg, ping_prog);
  MustBoot(host, echo_cfg, echo_prog);
  host.RunUntilVmStops(ping, 120 * kSimTicksPerSec);

  NetOutcome out;
  out.ok = ping->state() == core::VmState::kShutdown;
  out.round_trips = Progress(ping, ping_prog);
  auto stats = ping->TotalStats();
  out.exits = stats.mmio_exits + stats.hypercalls;
  out.cycles = stats.cycles;
  return out;
}

}  // namespace

int main() {
  Section("F3: block I/O — emulated PIO vs virtio (50 writes each)");
  Row("%-10s %8s %7s %10s %12s %14s %12s", "model", "sectors", "batch", "exits",
      "exits/sector", "cycles/sector", "ok");
  for (uint32_t sectors : {1u, 4u, 8u}) {
    IoOutcome e = RunBlk(false, sectors, 1, 50);
    Row("%-10s %8u %7u %10llu %12.1f %14.0f %12s", "emulated", sectors, 1,
        static_cast<unsigned long long>(e.exits),
        static_cast<double>(e.exits) / static_cast<double>(e.sectors ? e.sectors : 1),
        static_cast<double>(e.cycles) / static_cast<double>(e.sectors ? e.sectors : 1),
        e.ok ? "yes" : "NO");
  }
  for (uint32_t batch : {1u, 2u, 4u, 8u}) {
    IoOutcome v = RunBlk(true, 4, batch, 50);
    Row("%-10s %8u %7u %10llu %12.1f %14.0f %12s", "virtio", 4, batch,
        static_cast<unsigned long long>(v.exits),
        static_cast<double>(v.exits) / static_cast<double>(v.sectors ? v.sectors : 1),
        static_cast<double>(v.cycles) / static_cast<double>(v.sectors ? v.sectors : 1),
        v.ok ? "yes" : "NO");
  }

  IoOutcome e = RunBlk(false, 4, 1, 50);
  IoOutcome v = RunBlk(true, 4, 8, 50);
  Row("\nexits-per-sector gap at 4-sector requests: emulated %.1f vs virtio(b=8) %.2f (%.0fx)",
      static_cast<double>(e.exits) / static_cast<double>(e.sectors),
      static_cast<double>(v.exits) / static_cast<double>(v.sectors),
      (static_cast<double>(e.exits) / static_cast<double>(e.sectors)) /
          std::max(0.001, static_cast<double>(v.exits) / static_cast<double>(v.sectors)));

  Section("F3b: network round trips — emulated PIO NIC vs virtio-net (30 RTs)");
  Row("%-10s %9s %8s %10s %12s %14s %6s", "model", "payload", "RTs", "exits", "exits/RT",
      "cycles/RT", "ok");
  for (uint32_t payload : {64u, 256u, 1024u}) {
    for (bool paravirt : {false, true}) {
      NetOutcome n = RunNet(paravirt, payload, 30);
      Row("%-10s %9u %8u %10llu %12.1f %14.0f %6s", paravirt ? "virtio" : "emulated", payload,
          n.round_trips, static_cast<unsigned long long>(n.exits),
          n.round_trips ? static_cast<double>(n.exits) / n.round_trips : 0,
          n.round_trips ? static_cast<double>(n.cycles) / n.round_trips : 0,
          n.ok ? "yes" : "NO");
    }
  }
  Row("\nshape check: emulated exit counts scale with payload size; virtio stays flat.");
  return 0;
}
