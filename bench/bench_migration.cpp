// Experiment F4 — live migration: pre-copy vs. post-copy.
//
// Sweeps the guest's dirty rate and the VM size and reports downtime, total
// migration time, pages sent (with resends) and post-copy stalls.
//
// Expected shape: pre-copy downtime explodes past the dirty-rate knee where
// the guest redirties pages faster than the link drains them (rounds hit the
// cap); post-copy downtime stays flat and tiny, paying instead with demand-
// fetch stalls. Pre-copy total bytes grow with dirty rate; post-copy bytes
// stay ~RAM size.

#include "bench/bench_util.h"
#include "src/fault/fault.h"
#include "src/migrate/migrate.h"

using namespace hyperion;
using namespace hyperion::bench;

namespace {

struct Run {
  migrate::MigrationReport report;
  bool ok = false;
};

Run Migrate(bool postcopy, uint32_t ram_mb, uint32_t dirty_pages, uint32_t compute_per_write) {
  core::Host src, dst;
  std::string prog = guest::DirtyRateProgram(dirty_pages, compute_per_write);
  core::VmConfig cfg;
  cfg.name = "mig";
  cfg.ram_bytes = ram_mb << 20;
  core::Vm* vm = MustBoot(src, cfg, prog);
  src.RunFor(20 * kSimTicksPerMs);

  Run run;
  migrate::MigrateOptions options;
  auto moved = postcopy ? migrate::PostCopyMigrate(src, vm, dst, options, &run.report)
                        : migrate::PreCopyMigrate(src, vm, dst, options, &run.report);
  run.ok = moved.ok() && (*moved)->state() == core::VmState::kRunning;
  if (!moved.ok()) {
    std::fprintf(stderr, "migration failed: %s\n", moved.status().ToString().c_str());
  }
  return run;
}

}  // namespace

int main() {
  Section("F4: pre-copy vs post-copy — downtime vs dirty rate (4 MiB VM, 1 Gb/s link)");
  Row("%-10s %16s %8s %12s %12s %12s %14s", "strategy", "dirty-intensity", "rounds",
      "downtime", "total", "pages-sent", "stalls(total)");
  // compute_per_write controls the write rate: lower = dirtier.
  struct Rate {
    const char* label;
    uint32_t compute_per_write;
    uint32_t pages;
  };
  for (Rate rate : {Rate{"idle", 2'000'000, 8}, Rate{"low", 50000, 64},
                    Rate{"medium", 5000, 128}, Rate{"high", 500, 256},
                    Rate{"extreme", 50, 512}}) {
    Run pre = Migrate(false, 4, rate.pages, rate.compute_per_write);
    Row("%-10s %16s %8u %9.3f ms %9.2f ms %12llu %14s", "pre-copy", rate.label,
        pre.report.rounds, pre.report.DowntimeMs(), pre.report.TotalMs(),
        static_cast<unsigned long long>(pre.report.pages_sent), "-");
    Run post = Migrate(true, 4, rate.pages, rate.compute_per_write);
    char stalls[64];
    std::snprintf(stalls, sizeof(stalls), "%llu (%.2f ms)",
                  static_cast<unsigned long long>(post.report.demand_fetches),
                  SimTimeToMs(post.report.demand_stall_total));
    Row("%-10s %16s %8s %9.3f ms %9.2f ms %12llu %14s", "post-copy", rate.label, "-",
        post.report.DowntimeMs(), post.report.TotalMs(),
        static_cast<unsigned long long>(post.report.pages_sent), stalls);
  }

  Section("F4b: migration vs VM size (medium dirty rate)");
  Row("%-10s %8s %12s %12s %14s", "strategy", "RAM", "downtime", "total", "bytes-sent");
  for (uint32_t ram_mb : {4u, 8u, 16u}) {
    Run pre = Migrate(false, ram_mb, 64, 5000);
    Row("%-10s %6u M %9.3f ms %9.2f ms %11.2f MiB", "pre-copy", ram_mb,
        pre.report.DowntimeMs(), pre.report.TotalMs(),
        static_cast<double>(pre.report.bytes_sent) / (1 << 20));
    Run post = Migrate(true, ram_mb, 64, 5000);
    Row("%-10s %6u M %9.3f ms %9.2f ms %11.2f MiB", "post-copy", ram_mb,
        post.report.DowntimeMs(), post.report.TotalMs(),
        static_cast<double>(post.report.bytes_sent) / (1 << 20));
  }
  Section("F4c: zero-page elision ablation (pre-copy, 16 MiB VM, 64-page hot set)");
  Row("%-18s %14s %12s %12s", "variant", "bytes-sent", "total", "downtime");
  for (bool skip : {true, false}) {
    core::Host src, dst;
    std::string prog = guest::DirtyRateProgram(64, 5000);
    core::VmConfig cfg;
    cfg.name = "z";
    cfg.ram_bytes = 16u << 20;
    core::Vm* vm = MustBoot(src, cfg, prog);
    src.RunFor(20 * kSimTicksPerMs);
    migrate::MigrateOptions options;
    options.skip_zero_pages = skip;
    migrate::MigrationReport report;
    auto moved = migrate::PreCopyMigrate(src, vm, dst, options, &report);
    if (!moved.ok()) {
      std::abort();
    }
    Row("%-18s %11.2f MiB %9.2f ms %9.3f ms", skip ? "zero-elide (prod)" : "send-all",
        static_cast<double>(report.bytes_sent) / (1 << 20), report.TotalMs(),
        report.DowntimeMs());
  }

  Section("F4d: robustness cost under injected frame loss (pre-copy, 4 MiB VM)");
  Row("%-8s %6s %8s %10s %12s %12s %10s", "loss-p", "ok", "retries", "resent",
      "bytes-sent", "total", "timeouts");
  for (double loss : {0.0, 0.05, 0.15, 0.30}) {
    core::Host src, dst;
    std::string prog = guest::DirtyRateProgram(64, 5000);
    core::VmConfig cfg;
    cfg.name = "rob";
    cfg.ram_bytes = 4u << 20;
    core::Vm* vm = MustBoot(src, cfg, prog);
    src.RunFor(20 * kSimTicksPerMs);
    fault::FaultPlan plan;
    plan.seed = 42;
    if (loss > 0.0) {
      plan.AddTransferLoss("migrate:link", loss);
    }
    fault::FaultInjector inj(plan);
    migrate::MigrateOptions options;
    options.fault = &inj;
    options.retry_backoff = kSimTicksPerMs;
    options.retry_backoff_cap = 20 * kSimTicksPerMs;
    migrate::MigrationReport report;
    auto moved = migrate::PreCopyMigrate(src, vm, dst, options, &report);
    Row("%-8.2f %6s %8llu %10llu %9.2f MiB %9.2f ms %10llu", loss,
        moved.ok() ? "yes" : "abort",
        static_cast<unsigned long long>(report.retries),
        static_cast<unsigned long long>(report.pages_resent),
        static_cast<double>(report.bytes_sent) / (1 << 20), report.TotalMs(),
        static_cast<unsigned long long>(report.timeouts));
  }

  Row("\nshape check: pre-copy downtime tracks the dirty rate and RAM size;");
  Row("post-copy downtime is constant (machine state only) at the cost of stalls;");
  Row("zero-page elision cuts wire bytes to ~the touched footprint;");
  Row("injected loss is paid in retries/resent pages and backoff time, never correctness.");
  return 0;
}
