// Experiment F8 — virtio-net data plane: interrupt coalescing, kick
// suppression, and zero-copy frame handoff.
//
// A stream VM pushes frames at a sink VM for a fixed simulated duration.
// Three data planes:
//   emulated    PIO NIC: one exit per payload word, one interrupt per frame
//   vnet-frame  virtio, seed path: one doorbell + one interrupt per frame
//   vnet-batch  virtio with EVENT_IDX coalescing, NAPI polling, and batched
//               switch delivery (batch=32 frames per doorbell)
//
// Metrics per config: delivered frames/sec of simulated time, guest
// instructions per frame (the MIPS cost of moving one frame), and device
// interrupts per 1000 frames. Expected shape: batching buys >=3x the
// per-frame virtio throughput and drops interrupts/1k from ~2000 (one TX
// completion + one RX delivery per frame) to under 50.
//
// `--gate` prints only the payload-256 virtio rows plus a machine-parseable
// summary line for the CI perf-smoke gate (tools/ci.sh stage 9). The
// simulation is deterministic, so the gate measures the data plane, not the
// host machine.

#include <cstdlib>
#include <cstring>

#include "bench/bench_util.h"

using namespace hyperion;
using namespace hyperion::bench;

namespace {

enum class Plane { kEmulated, kVirtioPerFrame, kVirtioBatched };

const char* PlaneName(Plane p) {
  switch (p) {
    case Plane::kEmulated:
      return "emulated";
    case Plane::kVirtioPerFrame:
      return "vnet-frame";
    case Plane::kVirtioBatched:
      return "vnet-batch";
  }
  return "?";
}

struct NetOutcome {
  uint64_t frames = 0;      // frames accepted by the sink device
  uint64_t instructions = 0;  // stream + sink guest instructions
  uint64_t interrupts = 0;  // device interrupts on both ends
  uint64_t kicks_suppressed = 0;
  uint64_t interrupts_suppressed = 0;
  double seconds = 0;

  double fps() const { return frames ? static_cast<double>(frames) / seconds : 0; }
  double instr_per_frame() const {
    return frames ? static_cast<double>(instructions) / static_cast<double>(frames) : 0;
  }
  double intr_per_1k() const {
    return frames ? 1000.0 * static_cast<double>(interrupts) / static_cast<double>(frames)
                  : 0;
  }
};

NetOutcome RunStream(Plane plane, uint32_t payload, SimTime duration) {
  core::Host host;

  guest::NetStreamParams p;
  p.peer_mac = 2;
  p.payload_bytes = payload;
  if (plane == Plane::kVirtioPerFrame) {
    p.batch = 1;
    p.event_idx = false;
    p.honor_no_notify = false;
  }

  core::VmConfig stream_cfg;
  stream_cfg.name = "stream";
  stream_cfg.mac = 1;
  stream_cfg.net_model =
      plane == Plane::kEmulated ? core::IoModel::kEmulated : core::IoModel::kParavirt;
  core::VmConfig sink_cfg = stream_cfg;
  sink_cfg.name = "sink";
  sink_cfg.mac = 2;

  std::string stream_prog;
  std::string sink_prog;
  if (plane == Plane::kEmulated) {
    stream_prog = guest::EmulatedNetStreamProgram(p);
    sink_prog = guest::EmulatedNetSinkProgram();
  } else {
    stream_prog = guest::VirtioNetStreamProgram(p);
    sink_prog = guest::VirtioNetSinkProgram(p);
  }
  core::Vm* stream = MustBoot(host, stream_cfg, stream_prog);
  core::Vm* sink = MustBoot(host, sink_cfg, sink_prog);
  host.RunFor(duration);

  if (std::getenv("BENCH_NET_DEBUG") != nullptr && plane != Plane::kEmulated) {
    const auto& sw = host.vswitch().stats();
    const auto& sn = stream->virtio_net()->net_stats();
    const auto& sv = stream->virtio_net()->stats();
    const auto& kn = sink->virtio_net()->net_stats();
    const auto& kv = sink->virtio_net()->stats();
    Row("debug: stream tx=%llu kicks=%llu supp_kick=%llu polls=%llu intr=%llu supp=%llu",
        (unsigned long long)sn.tx_frames, (unsigned long long)sv.kicks,
        (unsigned long long)sn.kicks_suppressed, (unsigned long long)sn.poll_rounds,
        (unsigned long long)sv.interrupts, (unsigned long long)sv.interrupts_suppressed);
    Row("debug: switch sent=%llu delivered=%llu dropped=%llu bursts=%llu",
        (unsigned long long)sw.frames_sent, (unsigned long long)sw.frames_delivered,
        (unsigned long long)sw.frames_dropped, (unsigned long long)sw.bursts_delivered);
    Row("debug: sink rx=%llu drop=%llu hwm=%llu burst_frames=%llu chain_err=%llu "
        "intr=%llu supp=%llu kicks=%llu state=%d sinkst=%d",
        (unsigned long long)kn.rx_frames, (unsigned long long)kn.rx_dropped,
        (unsigned long long)kn.rx_backlog_hwm, (unsigned long long)kn.burst_frames,
        (unsigned long long)kn.rx_chain_errors, (unsigned long long)kv.interrupts,
        (unsigned long long)kv.interrupts_suppressed, (unsigned long long)kv.kicks,
        (int)stream->state(), (int)sink->state());
  }

  NetOutcome out;
  out.seconds = SimTimeToSec(duration);
  out.instructions = stream->TotalStats().instructions + sink->TotalStats().instructions;
  if (plane == Plane::kEmulated) {
    out.frames = sink->emulated_net()->stats().rx_frames;
    // The PIO NIC raises the line once per accepted frame (no coalescing).
    out.interrupts = out.frames;
  } else {
    const auto& sink_net = *sink->virtio_net();
    const auto& stream_net = *stream->virtio_net();
    out.frames = sink_net.net_stats().rx_frames;
    out.interrupts = sink_net.stats().interrupts + stream_net.stats().interrupts;
    out.interrupts_suppressed =
        sink_net.stats().interrupts_suppressed + stream_net.stats().interrupts_suppressed;
    out.kicks_suppressed = stream_net.net_stats().kicks_suppressed;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool gate_only = argc > 1 && std::strcmp(argv[1], "--gate") == 0;
  const SimTime duration = 10 * kSimTicksPerMs;

  Section("F8: net data plane — frames/sec, instr/frame, interrupts per 1k frames");
  Row("%-11s %8s %12s %12s %12s %10s %10s", "plane", "payload", "frames/s",
      "instr/frame", "intr/1k", "supp.intr", "supp.kick");

  double perframe_fps = 0;
  double batched_fps = 0;
  double batched_intr_1k = 0;
  for (uint32_t payload : {64u, 256u, 1024u}) {
    for (Plane plane :
         {Plane::kEmulated, Plane::kVirtioPerFrame, Plane::kVirtioBatched}) {
      if (gate_only && (plane == Plane::kEmulated || payload != 256)) {
        continue;
      }
      NetOutcome o = RunStream(plane, payload, duration);
      Row("%-11s %8u %12.0f %12.1f %12.1f %10llu %10llu", PlaneName(plane), payload,
          o.fps(), o.instr_per_frame(), o.intr_per_1k(),
          static_cast<unsigned long long>(o.interrupts_suppressed),
          static_cast<unsigned long long>(o.kicks_suppressed));
      if (payload == 256 && plane == Plane::kVirtioPerFrame) {
        perframe_fps = o.fps();
      }
      if (payload == 256 && plane == Plane::kVirtioBatched) {
        batched_fps = o.fps();
        batched_intr_1k = o.intr_per_1k();
      }
    }
  }

  // Machine-parseable gate summary (payload 256): tools/ci.sh enforces
  // batched/per-frame >= 3.0 and batched interrupts per 1k < 50.
  Row("gate: perframe_fps=%.0f batched_fps=%.0f ratio=%.2f batched_intr_per_1k=%.1f",
      perframe_fps, batched_fps, perframe_fps > 0 ? batched_fps / perframe_fps : 0,
      batched_intr_1k);
  return 0;
}
