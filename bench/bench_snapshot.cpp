// Experiment F5 — snapshots: save/restore latency vs RAM footprint, and
// incremental (dirty-only) checkpoints vs checkpoint interval.
//
// Expected shape: full snapshot cost scales with *touched* pages (zero pages
// are elided), restore with snapshot size; incremental snapshots scale with
// the dirty set, so tighter checkpoint intervals produce smaller deltas.

#include <chrono>

#include "bench/bench_util.h"
#include "src/snapshot/snapshot.h"
#include "src/util/phase.h"

using namespace hyperion;
using namespace hyperion::bench;

namespace {

// All driver code here runs on the main thread, outside any execute slice.
const hyperion::SerialPhase& Serial() {
  static hyperion::ScopedSerialPhase scope;
  return scope.get();
}

using WallClock = std::chrono::steady_clock;

double WallMs(WallClock::time_point a, WallClock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

int main() {
  Section("F5: full snapshot/restore vs touched footprint (8 MiB VM)");
  Row("%-12s %12s %12s %12s %12s %12s", "touched", "snap-bytes", "data-pages", "zero-pages",
      "save-wall", "restore-wall");

  for (uint32_t pages : {64u, 256u, 1024u}) {
    core::HostConfig hc;
    hc.ram_bytes = 64u << 20;
    core::Host host(hc);
    core::VmConfig cfg;
    cfg.name = "snap";
    cfg.ram_bytes = 8u << 20;
    std::string prog = guest::PatternFillProgram(pages, 0, 3);
    core::Vm* vm = MustBoot(host, cfg, prog);
    SimTime t0 = host.clock().now();
    while (Progress(vm, prog) == 0 && host.clock().now() - t0 < 10 * kSimTicksPerSec) {
      host.RunFor(5 * kSimTicksPerMs);
    }
    vm->Pause(Serial());

    snapshot::SnapshotInfo info;
    auto w0 = WallClock::now();
    auto snap = snapshot::SaveVm(*vm, {}, &info);
    auto w1 = WallClock::now();
    if (!snap.ok()) {
      std::abort();
    }
    core::VmConfig rcfg;
    rcfg.name = "restore";
    rcfg.ram_bytes = 8u << 20;
    auto w2 = WallClock::now();
    auto restored = snapshot::CloneVm(host, rcfg, *snap);
    auto w3 = WallClock::now();
    if (!restored.ok()) {
      std::abort();
    }
    Row("%9u pg %9.2f MiB %12u %12u %9.2f ms %9.2f ms", pages,
        static_cast<double>(snap->size()) / (1 << 20), info.pages_data, info.pages_zero,
        WallMs(w0, w1), WallMs(w2, w3));
  }

  Section("F5b: incremental checkpoints vs interval (hot set of 32 pages)");
  Row("%-14s %12s %12s %14s", "interval", "delta-bytes", "delta-pages", "vs-full");
  {
    core::HostConfig hc;
    hc.ram_bytes = 64u << 20;
    core::Host host(hc);
    core::VmConfig cfg;
    cfg.name = "ckpt";
    cfg.ram_bytes = 8u << 20;
    // ~200k pad cycles between page writes: one full 32-page sweep takes
    // ~13 ms, so sub-sweep intervals capture proportionally fewer pages.
    std::string prog = guest::DirtyRateProgram(32, 200000);
    core::Vm* vm = MustBoot(host, cfg, prog);
    host.RunFor(50 * kSimTicksPerMs);  // build the working set

    vm->Pause(Serial());
    auto full = snapshot::SaveVm(*vm);
    if (!full.ok()) {
      std::abort();
    }
    vm->memory().EnableDirtyLog();
    vm->Resume(Serial());

    for (SimTime interval : {kSimTicksPerMs, 4 * kSimTicksPerMs, 16 * kSimTicksPerMs,
                             64 * kSimTicksPerMs}) {
      host.RunFor(interval);
      vm->Pause(Serial());
      snapshot::SnapshotInfo info;
      snapshot::SaveOptions opts;
      opts.incremental = true;
      auto delta = snapshot::SaveVm(*vm, opts, &info);
      if (!delta.ok()) {
        std::abort();
      }
      Row("%11.2f ms %9.1f KiB %12u %13.1f%%", SimTimeToMs(interval),
          static_cast<double>(delta->size()) / 1024, info.pages_total,
          100.0 * static_cast<double>(delta->size()) / static_cast<double>(full->size()));
      vm->Resume(Serial());
    }
  }
  Row("\nshape check: delta size saturates at the hot-set size; short intervals");
  Row("capture proportionally fewer pages.");
  return 0;
}
