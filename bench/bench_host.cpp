// Experiment F7 — staged execution core scaling.
//
// The dispatch→execute→commit run loop (DESIGN.md §8) promises that worker
// threads buy wall-clock speed without changing simulation results. This
// harness measures the first half of that promise: aggregate guest MIPS
// (instructions retired per host wall second, summed over all VMs) for
// 1/2/4/8 single-vCPU compute VMs at 0/2/4 workers. The acceptance bar is
// >= 2x aggregate MIPS for 8 VMs at 4 workers vs. the serial loop on a
// >= 4-core host. The second half — bit-identical results — is enforced by
// tests/parallel_test.cc; this table also cross-checks that the retired
// instruction count is worker-invariant.

#include <chrono>

#include "bench/bench_util.h"

using namespace hyperion;
using namespace hyperion::bench;

namespace {

using WallClock = std::chrono::steady_clock;

struct RunResult {
  double mips = 0;
  uint64_t instructions = 0;
};

RunResult RunOne(uint32_t num_vms, int workers, SimTime sim_time) {
  core::HostConfig hc;
  hc.num_pcpus = 8;  // enough pCPUs that every VM gets a lane each round
  hc.worker_threads = workers;
  core::Host host(hc);

  std::string prog = guest::ComputeProgram(0);  // spin forever
  std::vector<core::Vm*> vms;
  for (uint32_t i = 0; i < num_vms; ++i) {
    core::VmConfig cfg;
    cfg.name = "cpu" + std::to_string(i);
    vms.push_back(MustBoot(host, cfg, prog));
  }

  host.RunFor(kSimTicksPerMs);  // warm up: code paths, worker pool spin-up
  uint64_t before = 0;
  for (core::Vm* vm : vms) {
    before += vm->TotalStats().instructions;
  }

  auto w0 = WallClock::now();
  host.RunFor(sim_time);
  auto w1 = WallClock::now();

  RunResult r;
  for (core::Vm* vm : vms) {
    r.instructions += vm->TotalStats().instructions;
  }
  r.instructions -= before;
  double wall_us = std::chrono::duration<double, std::micro>(w1 - w0).count();
  r.mips = static_cast<double>(r.instructions) / wall_us;
  return r;
}

// F7b: where the cycles went, pCPU by pCPU. The per-pCPU counters are the
// load signal the cluster DRS controller steers by (DESIGN.md §13), so the
// bench prints them for an asymmetric mix: more runnable vCPUs than pCPUs,
// which makes busy, steal and idle all nonzero at once.
void PerPcpuBreakdown() {
  core::HostConfig hc;
  hc.num_pcpus = 4;
  hc.worker_threads = 0;
  core::Host host(hc);
  std::string busy = guest::ComputeProgram(0);
  std::string idle = guest::IdleTickProgram(500'000);
  for (uint32_t i = 0; i < 6; ++i) {
    core::VmConfig cfg;
    cfg.name = "mix" + std::to_string(i);
    MustBoot(host, cfg, i % 3 == 2 ? idle : busy);
  }
  host.RunFor(30 * kSimTicksPerMs);

  const core::Host::HostStats& hs = host.stats();
  Section("F7b: per-pCPU cycle accounting (4 pCPUs, 6 VMs: 4 busy + 2 idle)");
  Row("%-6s %16s %16s %16s", "pcpu", "busy-cycles", "steal-cycles", "idle-ticks");
  uint64_t busy_sum = 0;
  uint64_t steal_sum = 0;
  for (size_t i = 0; i < hs.pcpu.size(); ++i) {
    const core::Host::PcpuStats& p = hs.pcpu[i];
    Row("%-6zu %16llu %16llu %16llu", i,
        static_cast<unsigned long long>(p.busy_cycles),
        static_cast<unsigned long long>(p.steal_cycles),
        static_cast<unsigned long long>(p.idle_time));
    busy_sum += p.busy_cycles;
    steal_sum += p.steal_cycles;
  }
  bool reconciles = busy_sum == hs.cycles_executed;
  Row("sum(busy)=%llu host.cycles_executed=%llu reconciles=%s sum(steal)=%llu",
      static_cast<unsigned long long>(busy_sum),
      static_cast<unsigned long long>(hs.cycles_executed),
      reconciles ? "yes" : "NO", static_cast<unsigned long long>(steal_sum));
}

}  // namespace

int main() {
  constexpr SimTime kSimTime = 30 * kSimTicksPerMs;
  Section("F7: staged run-loop scaling (aggregate guest MIPS, 8 pCPUs)");
  Row("%-6s %14s %14s %14s %10s %12s", "vms", "serial-MIPS", "2w-MIPS", "4w-MIPS",
      "4w-speedup", "instr-match");

  for (uint32_t vms : {1u, 2u, 4u, 8u}) {
    RunResult serial = RunOne(vms, 0, kSimTime);
    RunResult two = RunOne(vms, 2, kSimTime);
    RunResult four = RunOne(vms, 4, kSimTime);
    bool match =
        serial.instructions == two.instructions && serial.instructions == four.instructions;
    Row("%-6u %14.1f %14.1f %14.1f %9.2fx %12s", vms, serial.mips, two.mips, four.mips,
        four.mips / serial.mips, match ? "yes" : "NO");
  }
  PerPcpuBreakdown();
  return 0;
}
