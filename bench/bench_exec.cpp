// Experiments F2 + F10 — CPU execution engines: interpreter vs. dynamic
// binary translation, measured in host-side guest-MIPS with google-benchmark.
//
// Expected shape: once blocks are hot, the DBT engine retires guest
// instructions several times faster than the per-instruction decoder; the
// translation-cache stats show one translation amortized over thousands of
// executions. The cold variants include boot + translation of every block;
// the hot variants rerun the same image on a warmed machine (translation
// cache, superblocks and fast-translation array already populated). The SMC
// churn variant mixes a hot kernel with per-sweep self-modifying code and a
// helper working set larger than the translation cache, punishing full-flush
// eviction policies.
//
// The F10 tier breakdown (DESIGN.md §12): BM_DbtTier1* runs with the tier-2
// optimizer disabled, BM_Dbt*/BM_DbtHot run the full two-tier pipeline
// (tier-2 promotes at the default threshold), and BM_DbtRestorePrewarmed
// boots a fresh machine from a serialized translation cache — the
// linked-clone path, where the first pass must already run translated.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

using namespace hyperion;
using namespace hyperion::bench;

namespace {

void ReportEngineCounters(benchmark::State& state, const cpu::VcpuStats& stats,
                          uint64_t instructions, cpu::EngineKind kind) {
  state.counters["guest_mips"] = benchmark::Counter(
      static_cast<double>(instructions) / 1e6, benchmark::Counter::kIsRate);
  if (kind != cpu::EngineKind::kDbt) {
    return;
  }
  uint64_t executions = stats.block_executions + stats.trace_executions;
  if (stats.blocks_translated > 0) {
    state.counters["execs_per_translation"] =
        static_cast<double>(executions) / static_cast<double>(stats.blocks_translated);
  }
  state.counters["chain_hits"] = static_cast<double>(stats.chain_hits);
  state.counters["traces_formed"] = static_cast<double>(stats.traces_formed);
  state.counters["trace_execs"] = static_cast<double>(stats.trace_executions);
  state.counters["evict_surgical"] = static_cast<double>(stats.evictions_surgical);
  state.counters["evict_full"] = static_cast<double>(stats.evictions_full);
  state.counters["fastpath_hits"] = static_cast<double>(stats.mem_fastpath_hits);
  state.counters["t2_promotions"] = static_cast<double>(stats.tier2_promotions);
  state.counters["t2_execs"] = static_cast<double>(stats.tier2_executions);
  state.counters["t2_deopts"] = static_cast<double>(stats.deopts);
  state.counters["guards_elided"] = static_cast<double>(stats.guards_elided);
  state.counters["persist_hits"] = static_cast<double>(stats.persist_hits);
}

// Cold phase: every benchmark iteration boots a fresh machine, so the cost
// includes translating every block once.
void RunEngine(benchmark::State& state, cpu::EngineKind kind,
               cpu::DbtOptions dbt = {}) {
  const uint32_t iters = static_cast<uint32_t>(state.range(0));
  std::string prog = guest::ComputeProgram(iters);

  uint64_t instructions = 0;
  cpu::VcpuStats stats;
  for (auto _ : state) {
    MiniMachine m(1u << 20, mmu::PagingMode::kNested, kind,
                  cpu::VirtMode::kHardwareAssist, /*dbt_max_blocks=*/0, dbt);
    if (!m.Load(prog)) {
      state.SkipWithError("load failed");
      return;
    }
    auto r = m.RunToHalt();
    if (r.reason != cpu::ExitReason::kHalt) {
      state.SkipWithError("guest did not halt");
      return;
    }
    instructions += m.ctx().stats.instructions;
    stats = m.ctx().stats;
  }
  ReportEngineCounters(state, stats, instructions, kind);
}

void BM_Interpreter(benchmark::State& state) {
  RunEngine(state, cpu::EngineKind::kInterpreter);
}

void BM_Dbt(benchmark::State& state) { RunEngine(state, cpu::EngineKind::kDbt); }

cpu::DbtOptions Tier1Only() {
  cpu::DbtOptions o;
  o.enable_tier2 = false;
  return o;
}

void BM_DbtTier1(benchmark::State& state) {
  RunEngine(state, cpu::EngineKind::kDbt, Tier1Only());
}

// Hot phase: one machine, warmed once; each iteration rewinds architectural
// state and reruns the image against the warm translation cache.
void RunEngineHot(benchmark::State& state, cpu::EngineKind kind,
                  cpu::DbtOptions dbt = {}) {
  const uint32_t iters = static_cast<uint32_t>(state.range(0));
  std::string prog = guest::ComputeProgram(iters);

  MiniMachine m(1u << 20, mmu::PagingMode::kNested, kind,
                cpu::VirtMode::kHardwareAssist, /*dbt_max_blocks=*/0, dbt);
  if (!m.Load(prog)) {
    state.SkipWithError("load failed");
    return;
  }
  if (m.RunToHalt().reason != cpu::ExitReason::kHalt) {
    state.SkipWithError("warmup did not halt");
    return;
  }
  uint64_t start_instructions = m.ctx().stats.instructions;
  cpu::VcpuStats start_stats = m.ctx().stats;
  for (auto _ : state) {
    m.ResetGuest();
    auto r = m.RunToHalt();
    if (r.reason != cpu::ExitReason::kHalt) {
      state.SkipWithError("guest did not halt");
      return;
    }
  }
  cpu::VcpuStats stats = m.ctx().stats;
  stats.blocks_translated -= start_stats.blocks_translated;
  stats.block_executions -= start_stats.block_executions;
  stats.trace_executions -= start_stats.trace_executions;
  stats.chain_hits -= start_stats.chain_hits;
  stats.traces_formed -= start_stats.traces_formed;
  stats.evictions_surgical -= start_stats.evictions_surgical;
  stats.evictions_full -= start_stats.evictions_full;
  stats.mem_fastpath_hits -= start_stats.mem_fastpath_hits;
  stats.tier2_promotions -= start_stats.tier2_promotions;
  stats.tier2_executions -= start_stats.tier2_executions;
  stats.deopts -= start_stats.deopts;
  stats.guards_elided -= start_stats.guards_elided;
  stats.persist_hits -= start_stats.persist_hits;
  ReportEngineCounters(state, stats, m.ctx().stats.instructions - start_instructions, kind);
}

void BM_InterpreterHot(benchmark::State& state) {
  RunEngineHot(state, cpu::EngineKind::kInterpreter);
}

void BM_DbtHot(benchmark::State& state) { RunEngineHot(state, cpu::EngineKind::kDbt); }

void BM_DbtTier1Hot(benchmark::State& state) {
  RunEngineHot(state, cpu::EngineKind::kDbt, Tier1Only());
}

// Restore-prewarmed: warm one machine, serialize its translation cache, then
// boot fresh machines that install the blob before their first instruction —
// the linked-clone provisioning path. Unlike BM_Dbt (cold), no block is ever
// translated inside the timed loop; unlike BM_DbtHot, every iteration pays
// blob revalidation (page probes + code re-CRC) as a clone would.
void BM_DbtRestorePrewarmed(benchmark::State& state) {
  const uint32_t iters = static_cast<uint32_t>(state.range(0));
  std::string prog = guest::ComputeProgram(iters);

  MiniMachine warm(1u << 20, mmu::PagingMode::kNested, cpu::EngineKind::kDbt);
  if (!warm.Load(prog) || warm.RunToHalt().reason != cpu::ExitReason::kHalt) {
    state.SkipWithError("warmup failed");
    return;
  }
  std::vector<uint8_t> blob = warm.engine().SerializeTranslations();
  if (blob.empty()) {
    state.SkipWithError("no translations to persist");
    return;
  }

  uint64_t instructions = 0;
  cpu::VcpuStats stats;
  for (auto _ : state) {
    MiniMachine m(1u << 20, mmu::PagingMode::kNested, cpu::EngineKind::kDbt);
    if (!m.Load(prog)) {
      state.SkipWithError("load failed");
      return;
    }
    m.engine().InstallTranslations(m.ctx(), blob);
    auto r = m.RunToHalt();
    if (r.reason != cpu::ExitReason::kHalt) {
      state.SkipWithError("guest did not halt");
      return;
    }
    if (m.ctx().stats.blocks_translated != 0) {
      state.SkipWithError("restore-prewarmed run translated cold blocks");
      return;
    }
    instructions += m.ctx().stats.instructions;
    stats = m.ctx().stats;
  }
  ReportEngineCounters(state, stats, instructions, cpu::EngineKind::kDbt);
}

// Memory-heavy variant: translations interleave with TLB lookups.
void RunEngineMem(benchmark::State& state, cpu::EngineKind kind) {
  guest::MemTouchParams p;
  p.pages = 64;
  p.stride_bytes = 64;
  p.iterations = static_cast<uint32_t>(state.range(0));
  std::string prog = guest::MemTouchProgram(p);

  uint64_t instructions = 0;
  for (auto _ : state) {
    MiniMachine m(8u << 20, mmu::PagingMode::kNested, kind);
    if (!m.Load(prog)) {
      state.SkipWithError("load failed");
      return;
    }
    m.RunToHalt();
    instructions += m.ctx().stats.instructions;
  }
  state.counters["guest_mips"] = benchmark::Counter(
      static_cast<double>(instructions) / 1e6, benchmark::Counter::kIsRate);
}

void BM_InterpreterMemTouch(benchmark::State& state) {
  RunEngineMem(state, cpu::EngineKind::kInterpreter);
}

void BM_DbtMemTouch(benchmark::State& state) { RunEngineMem(state, cpu::EngineKind::kDbt); }

// Code churn: hot kernel + a rotating 8-wide window over 64 page-aligned
// helpers (one cold block each) + one helper rewritten per sweep, on a
// deliberately small 48-block translation cache. Capacity pressure builds
// across sweeps; a full-flush policy discards the hot kernel along with the
// cold helpers, a surgical policy retranslates only the helpers.
void RunEngineSmc(benchmark::State& state, cpu::EngineKind kind) {
  guest::SmcChurnParams p;
  p.funcs = 64;
  p.kernel_iters = 200;
  p.sweeps = static_cast<uint32_t>(state.range(0));
  std::string prog = guest::SmcChurnProgram(p);

  uint64_t instructions = 0;
  cpu::VcpuStats stats;
  for (auto _ : state) {
    MiniMachine m(1u << 20, mmu::PagingMode::kNested, kind,
                  cpu::VirtMode::kHardwareAssist, /*dbt_max_blocks=*/48);
    if (!m.Load(prog)) {
      state.SkipWithError("load failed");
      return;
    }
    auto r = m.RunToHalt();
    if (r.reason != cpu::ExitReason::kHalt) {
      state.SkipWithError("guest did not halt");
      return;
    }
    instructions += m.ctx().stats.instructions;
    stats = m.ctx().stats;
  }
  ReportEngineCounters(state, stats, instructions, kind);
}

void BM_InterpreterSmcChurn(benchmark::State& state) {
  RunEngineSmc(state, cpu::EngineKind::kInterpreter);
}

void BM_DbtSmcChurn(benchmark::State& state) { RunEngineSmc(state, cpu::EngineKind::kDbt); }

}  // namespace

BENCHMARK(BM_Interpreter)->Arg(20000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Dbt)->Arg(20000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DbtTier1)->Arg(20000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_InterpreterHot)->Arg(20000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DbtHot)->Arg(20000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DbtTier1Hot)->Arg(20000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DbtRestorePrewarmed)->Arg(20000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_InterpreterMemTouch)->Arg(50)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DbtMemTouch)->Arg(50)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_InterpreterSmcChurn)->Arg(200)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DbtSmcChurn)->Arg(200)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
