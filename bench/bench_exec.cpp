// Experiment F2 — CPU execution engines: interpreter vs. dynamic binary
// translation, measured in host-side guest-MIPS with google-benchmark.
//
// Expected shape: once blocks are hot, the DBT engine retires guest
// instructions several times faster than the per-instruction decoder; the
// translation-cache stats show one translation amortized over thousands of
// executions.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

using namespace hyperion;
using namespace hyperion::bench;

namespace {

// One compute kernel execution = `iters` outer loops of ~72 instructions.
void RunEngine(benchmark::State& state, cpu::EngineKind kind) {
  const uint32_t iters = static_cast<uint32_t>(state.range(0));
  std::string prog = guest::ComputeProgram(iters);

  uint64_t instructions = 0;
  uint64_t blocks_translated = 0;
  uint64_t block_executions = 0;
  for (auto _ : state) {
    MiniMachine m(1u << 20, mmu::PagingMode::kNested, kind);
    if (!m.Load(prog)) {
      state.SkipWithError("load failed");
      return;
    }
    auto r = m.RunToHalt();
    if (r.reason != cpu::ExitReason::kHalt) {
      state.SkipWithError("guest did not halt");
      return;
    }
    instructions += m.ctx().stats.instructions;
    blocks_translated += m.ctx().stats.blocks_translated;
    block_executions += m.ctx().stats.block_executions;
  }
  state.counters["guest_mips"] = benchmark::Counter(
      static_cast<double>(instructions) / 1e6, benchmark::Counter::kIsRate);
  if (kind == cpu::EngineKind::kDbt && blocks_translated > 0) {
    state.counters["execs_per_translation"] =
        static_cast<double>(block_executions) / static_cast<double>(blocks_translated);
  }
}

void BM_Interpreter(benchmark::State& state) {
  RunEngine(state, cpu::EngineKind::kInterpreter);
}

void BM_Dbt(benchmark::State& state) { RunEngine(state, cpu::EngineKind::kDbt); }

// Memory-heavy variant: translations interleave with TLB lookups.
void RunEngineMem(benchmark::State& state, cpu::EngineKind kind) {
  guest::MemTouchParams p;
  p.pages = 64;
  p.stride_bytes = 64;
  p.iterations = static_cast<uint32_t>(state.range(0));
  std::string prog = guest::MemTouchProgram(p);

  uint64_t instructions = 0;
  for (auto _ : state) {
    MiniMachine m(8u << 20, mmu::PagingMode::kNested, kind);
    if (!m.Load(prog)) {
      state.SkipWithError("load failed");
      return;
    }
    m.RunToHalt();
    instructions += m.ctx().stats.instructions;
  }
  state.counters["guest_mips"] = benchmark::Counter(
      static_cast<double>(instructions) / 1e6, benchmark::Counter::kIsRate);
}

void BM_InterpreterMemTouch(benchmark::State& state) {
  RunEngineMem(state, cpu::EngineKind::kInterpreter);
}

void BM_DbtMemTouch(benchmark::State& state) { RunEngineMem(state, cpu::EngineKind::kDbt); }

}  // namespace

BENCHMARK(BM_Interpreter)->Arg(20000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Dbt)->Arg(20000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_InterpreterMemTouch)->Arg(50)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DbtMemTouch)->Arg(50)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
