// Experiment T5 — cluster-scale consolidation with DRS rebalancing.
//
// The deck's end state is not one loaded host but a fleet: many physical
// boxes behind one pane of glass, VMs placed by the resource scheduler and
// moved by live migration as load shifts (DESIGN.md §13). This harness runs
// hundreds of VMs across an 8-host cluster through a realistic lifecycle —
// deliberately skewed initial placement, churn (arrivals + departures), a
// rolling-maintenance drain, and one injected host crash — and accounts for
// what the automation cost: migrations by reason, pages shipped, blackout
// percentiles, and whether every guest survived.
//
// `--gate` runs a smaller fixed scenario at 0 and 4 workers and prints a
// single machine-parseable line for tools/ci.sh: guests conserved, zero
// lost, every claimed migration reconciled against its MigrationReport, and
// bit-identical results across worker counts.

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cluster/cluster.h"
#include "src/fault/fault.h"
#include "src/util/crc32.h"

using namespace hyperion;
using namespace hyperion::bench;

namespace {

using WallClock = std::chrono::steady_clock;

core::Vm* MustBootCluster(cluster::Cluster& cl, core::VmConfig config,
                          const std::string& source, core::Host* pin = nullptr) {
  auto image = guest::Build(source);
  if (!image.ok()) {
    std::fprintf(stderr, "bench guest failed to assemble: %s\n",
                 image.status().ToString().c_str());
    std::abort();
  }
  auto vm = cl.CreateVm(std::move(config), pin);
  if (!vm.ok()) {
    std::fprintf(stderr, "CreateVm: %s\n", vm.status().ToString().c_str());
    std::abort();
  }
  if (!(*vm)->LoadImage(*image).ok()) {
    std::abort();
  }
  return *vm;
}

// Digest of guest RAM: presence map + contents of every present page.
uint32_t RamDigest(core::Vm& vm) {
  mem::GuestMemory& mem = vm.memory();
  uint32_t crc = 0;
  for (uint32_t gpn = 0; gpn < mem.num_pages(); ++gpn) {
    uint8_t present = mem.IsPresent(gpn) ? 1 : 0;
    crc = Crc32(&present, 1, crc);
    if (present) {
      crc = Crc32(mem.PageData(gpn), isa::kPageSize, crc);
    }
  }
  return crc;
}

void AddPingEchoPair(cluster::Cluster& cl, core::Host* ping_host,
                     core::Host* echo_host) {
  guest::NetParams np;
  np.peer_mac = 2;
  np.payload_bytes = 128;
  np.iterations = 0;
  core::VmConfig ping{.name = "ping"};
  ping.net_model = core::IoModel::kParavirt;
  ping.mac = 1;
  MustBootCluster(cl, std::move(ping), guest::VirtioNetPingProgram(np), ping_host);
  core::VmConfig echo{.name = "echo"};
  echo.net_model = core::IoModel::kParavirt;
  echo.mac = 2;
  MustBootCluster(cl, std::move(echo), guest::VirtioNetEchoProgram(np.payload_bytes),
                  echo_host);
}

// ---------------------------------------------------------------------------
// T5: the full fleet lifecycle.
// ---------------------------------------------------------------------------

void RunFleet() {
  constexpr int kHosts = 8;
  constexpr int kVms = 200;

  cluster::ClusterConfig cc;
  cc.worker_threads = 4;
  cc.cpu_overcommit = 32.0;
  cc.ram_overcommit = 4.0;
  cc.drs.interval = 4 * kSimTicksPerMs;
  cc.drs.hot_busy = 0.45;
  cc.drs.cool_until = 0.40;
  cc.drs.min_gain = 0.05;
  cluster::Cluster cl(cc);
  std::vector<core::Host*> hosts;
  for (int i = 0; i < kHosts; ++i) {
    hosts.push_back(
        cl.AddHost(core::HostConfig{.name = "t5-h" + std::to_string(i), .num_pcpus = 4}));
  }

  fault::FaultPlan plan;
  plan.AddHostCrash("t5:h5", 22 * kSimTicksPerMs);
  fault::FaultInjector inj(plan);
  hosts[5]->SetFaultInjector(&inj, "t5:h5");

  // Deliberately bad initial placement: everything lands on the first four
  // hosts (half the fleet idle), as after a rack migration. Every 8th VM is
  // a cycle burner; the rest tick idly — the mix DRS has to unskew.
  std::string busy = guest::ComputeProgram(0);
  std::string idle = guest::IdleTickProgram(500'000);
  std::vector<std::string> alive;
  for (int i = 0; i < kVms; ++i) {
    char name[8];
    std::snprintf(name, sizeof(name), "vm%03d", i);
    MustBootCluster(cl, core::VmConfig{.name = name}, i % 8 == 0 ? busy : idle,
                    hosts[i % 4]);
    alive.push_back(name);
  }
  AddPingEchoPair(cl, hosts[0], hosts[2]);
  alive.push_back("ping");
  alive.push_back("echo");

  auto w0 = WallClock::now();
  cl.RunFor(10 * kSimTicksPerMs);

  Section("T5: fleet skew after 10ms (200 VMs pinned onto 4 of 8 hosts)");
  Row("%-8s %10s %6s", "host", "busy-frac", "vms");
  for (core::Host* h : hosts) {
    Row("%-8s %9.0f%% %6zu", h->name().c_str(), cl.BusyFraction(h) * 100,
        h->vms().size());
  }

  // Churn: every 9th VM departs, as many arrive unpinned; then maintenance
  // begins on h7 and the crash on h5 fires mid-flight (t=22ms).
  for (int i = 0; i < kVms; i += 9) {
    char name[8];
    std::snprintf(name, sizeof(name), "vm%03d", i);
    if (!cl.DestroyVm(name).ok()) {
      std::abort();
    }
    alive.erase(std::find(alive.begin(), alive.end(), name));
  }
  for (int i = 0; i < kVms / 9 + 1; ++i) {
    std::string name = "new" + std::to_string(i);
    MustBootCluster(cl, core::VmConfig{.name = name}, idle);
    alive.push_back(name);
  }
  cl.RunFor(8 * kSimTicksPerMs);
  cl.CheckpointAll();
  if (!cl.DrainHost(hosts[7]).ok()) {
    std::abort();
  }
  cl.RunFor(14 * kSimTicksPerMs);
  auto w1 = WallClock::now();

  Section("T5b: fleet state after churn, drain of h7, crash of h5");
  Row("%-8s %10s %6s %9s", "host", "busy-frac", "vms", "state");
  for (core::Host* h : hosts) {
    Row("%-8s %9.0f%% %6zu %9s", h->name().c_str(), cl.BusyFraction(h) * 100,
        h->vms().size(),
        h->failed() ? "FAILED" : (cl.IsDraining(h) ? "draining" : "up"));
  }

  size_t survivors = 0;
  for (const std::string& name : alive) {
    if (cl.FindVm(name) != nullptr) {
      ++survivors;
    }
  }
  const cluster::ClusterStats& st = cl.stats();
  uint64_t pages = 0;
  uint64_t ok_moves = 0;
  SimTime downtime_max = 0;
  SimTime downtime_sum = 0;
  for (const cluster::MigrationRecord& rec : cl.migrations()) {
    if (!rec.ok) {
      continue;
    }
    ++ok_moves;
    pages += rec.report.pages_sent;
    downtime_sum += rec.report.downtime;
    downtime_max = std::max(downtime_max, rec.report.downtime);
  }
  double wall_s = std::chrono::duration<double>(w1 - w0).count();

  Section("T5c: automation cost accounting");
  Row("guests conserved        : %zu / %zu%s", survivors, alive.size(),
      survivors == alive.size() ? "" : "  (GUESTS LOST)");
  Row("rebalance migrations    : %llu", (unsigned long long)st.rebalance_migrations);
  Row("drain migrations        : %llu", (unsigned long long)st.drain_migrations);
  Row("failed migrations       : %llu", (unsigned long long)st.failed_migrations);
  Row("crash evacuations       : %llu respawned, %llu lost",
      (unsigned long long)st.evacuations_respawned,
      (unsigned long long)st.evacuations_lost);
  Row("pages shipped           : %llu", (unsigned long long)pages);
  if (ok_moves > 0) {
    Row("blackout per migration  : mean %.2fms, max %.2fms",
        (double)downtime_sum / ok_moves / kSimTicksPerMs,
        (double)downtime_max / kSimTicksPerMs);
  }
  Row("fabric frames forwarded : %llu (%llu flooded, %llu unroutable)",
      (unsigned long long)cl.fabric().stats().frames_forwarded,
      (unsigned long long)cl.fabric().stats().frames_flooded,
      (unsigned long long)cl.fabric().stats().frames_no_route);
  Row("wall clock for 32ms sim : %.2fs (%d hosts, %zu guests, 4 workers)",
      wall_s, kHosts, alive.size());
}

// ---------------------------------------------------------------------------
// --gate: fixed small scenario, bit-identity across worker counts.
// ---------------------------------------------------------------------------

struct GateResult {
  uint32_t digest = 0;  // everything observable, crushed to one word
  size_t guests = 0;
  uint64_t lost = 0;
  uint64_t migrations = 0;
  uint64_t reconciled = 0;
};

GateResult RunGate(int workers) {
  cluster::ClusterConfig cc;
  cc.worker_threads = workers;
  cc.cpu_overcommit = 32.0;
  cc.ram_overcommit = 4.0;
  cc.drs.interval = 4 * kSimTicksPerMs;
  cc.drs.hot_busy = 0.45;
  cc.drs.cool_until = 0.40;
  cc.drs.min_gain = 0.05;
  cluster::Cluster cl(cc);
  std::vector<core::Host*> hosts;
  for (int i = 0; i < 4; ++i) {
    hosts.push_back(
        cl.AddHost(core::HostConfig{.name = "g-h" + std::to_string(i), .num_pcpus = 2}));
  }
  fault::FaultPlan plan;
  plan.AddHostCrash("gate:h1", 14 * kSimTicksPerMs);
  fault::FaultInjector inj(plan);
  hosts[1]->SetFaultInjector(&inj, "gate:h1");

  std::string busy = guest::ComputeProgram(0);
  std::string idle = guest::IdleTickProgram(500'000);
  std::vector<std::string> alive;
  for (int i = 0; i < 46; ++i) {
    char name[8];
    std::snprintf(name, sizeof(name), "vm%02d", i);
    MustBootCluster(cl, core::VmConfig{.name = name}, i % 12 == 0 ? busy : idle,
                    hosts[i % 2]);
    alive.push_back(name);
  }
  AddPingEchoPair(cl, hosts[0], hosts[2]);
  alive.push_back("ping");
  alive.push_back("echo");
  std::sort(alive.begin(), alive.end());

  cl.RunFor(8 * kSimTicksPerMs);
  cl.CheckpointAll();
  if (!cl.DrainHost(hosts[3]).ok()) {
    std::abort();
  }
  cl.RunFor(16 * kSimTicksPerMs);

  GateResult out;
  uint32_t crc = 0;
  for (const std::string& name : alive) {
    core::Vm* vm = cl.FindVm(name);
    if (vm == nullptr) {
      continue;
    }
    ++out.guests;
    std::string line = name + "@" + cl.HostOf(name)->name() + " " +
                       std::to_string(static_cast<int>(vm->state())) + " " +
                       std::to_string(RamDigest(*vm)) + " " +
                       std::to_string(vm->TotalStats().instructions);
    crc = Crc32(line.data(), line.size(), crc);
  }
  const cluster::ClusterStats& st = cl.stats();
  crc = Crc32(&st, sizeof(st), crc);
  SimTime end = cl.clock().now();
  crc = Crc32(&end, sizeof(end), crc);
  out.digest = crc;
  out.lost = st.evacuations_lost;
  for (const cluster::MigrationRecord& rec : cl.migrations()) {
    if (!rec.ok) {
      continue;
    }
    ++out.migrations;
    if (rec.report.pages_sent > 0 && rec.report.total_time > 0 &&
        rec.report.downtime < 10 * kSimTicksPerMs) {
      ++out.reconciled;
    }
  }
  return out;
}

void RunGateMode() {
  GateResult serial = RunGate(/*workers=*/0);
  GateResult four = RunGate(/*workers=*/4);
  bool deterministic = serial.digest == four.digest && serial.guests == four.guests;
  Row("gate: vms=%zu lost=%llu migrations=%llu reconciled=%llu determinism=%s",
      serial.guests, (unsigned long long)serial.lost,
      (unsigned long long)serial.migrations, (unsigned long long)serial.reconciled,
      deterministic ? "ok" : "DIVERGED");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--gate") == 0) {
    RunGateMode();
    return 0;
  }
  RunFleet();
  return 0;
}
