// Experiment F6 — memory overcommit: KSM page sharing and ballooning.
//
// KSM: racks of VMs with a controlled fraction of identical page content;
// reports frames reclaimed vs. the content-similarity ratio and the
// unshare (COW-break) tax when a guest writes merged pages.
// Balloon: reclaim latency and achieved target as pressure rises.
//
// Expected shape: KSM savings scale ~linearly with the similarity ratio;
// ballooning reclaims exactly the requested pages, bounded by the guests'
// floors.

#include "bench/bench_util.h"
#include "src/balloon/balloon.h"
#include "src/ksm/ksm.h"

using namespace hyperion;
using namespace hyperion::bench;

int main() {
  Section("F6: KSM — savings vs content similarity (4 VMs x 256 filled pages)");
  // Untouched guest RAM is zero pages, which all merge regardless of the
  // similarity knob; the content signal is the *delta* over the 0% baseline.
  Row("%-12s %14s %14s %16s %14s", "similarity", "frames-freed", "zero-page-part",
      "content-merges", "content-MiB");
  uint64_t baseline_freed = 0;
  for (uint32_t percent : {0u, 25u, 50u, 75u, 100u}) {
    core::HostConfig hc;
    hc.ram_bytes = 256u << 20;
    core::Host host(hc);
    constexpr uint32_t kPages = 256;
    uint32_t shared_pages = kPages * percent / 100;

    std::vector<core::Vm*> vms;
    std::vector<std::string> progs;
    for (uint32_t i = 0; i < 4; ++i) {
      // Identical prefix across VMs; distinct tail (seed differs per VM).
      std::string prog = guest::PatternFillProgram(kPages, shared_pages, 100 + i);
      core::VmConfig cfg;
      cfg.name = "vm" + std::to_string(i);
      cfg.ram_bytes = 8u << 20;
      vms.push_back(MustBoot(host, cfg, prog));
      progs.push_back(prog);
    }
    host.RunFor(300 * kSimTicksPerMs);  // let every VM finish filling

    ksm::KsmDaemon daemon(&host.pool());
    for (auto* vm : vms) {
      daemon.AddClient(&vm->memory());
    }
    size_t before = host.pool().used_frames();
    (void)daemon.ScanOnce();
    size_t after = host.pool().used_frames();
    uint64_t freed = before - after;
    if (percent == 0) {
      baseline_freed = freed;
    }
    uint64_t content = freed > baseline_freed ? freed - baseline_freed : 0;
    Row("%9u %% %14llu %14llu %16llu %11.2f MiB", percent,
        static_cast<unsigned long long>(freed),
        static_cast<unsigned long long>(baseline_freed),
        static_cast<unsigned long long>(content),
        static_cast<double>(content * isa::kPageSize) / (1 << 20));
  }
  Row("expected content-merges at p%%: 3 x 256 x p/100 (3 duplicate copies of the");
  Row("shared prefix collapse onto one frame): 0 / 192 / 384 / 576 / 768");

  Section("F6b: COW-break tax — guest writes into merged pages");
  {
    core::HostConfig hc;
    hc.ram_bytes = 128u << 20;
    core::Host host(hc);
    // Two identical VMs; after merging, one rewrites its region.
    std::string fill = guest::PatternFillProgram(128, 128, 5);
    core::VmConfig cfg_a;
    cfg_a.name = "a";
    cfg_a.ram_bytes = 8u << 20;
    core::Vm* a = MustBoot(host, cfg_a, fill);
    core::VmConfig cfg_b;
    cfg_b.name = "b";
    cfg_b.ram_bytes = 8u << 20;
    core::Vm* b = MustBoot(host, cfg_b, fill);
    host.RunFor(300 * kSimTicksPerMs);

    ksm::KsmDaemon daemon(&host.pool());
    daemon.AddClient(&a->memory());
    daemon.AddClient(&b->memory());
    uint64_t merged = daemon.ScanOnce();

    // Host-side writes model the guest's post-merge write burst.
    uint64_t broken = 0;
    size_t used_before = host.pool().used_frames();
    for (uint32_t gpn = 0x100; gpn < 0x100 + 128; ++gpn) {
      if (a->memory().IsShared(gpn)) {
        (void)a->memory().WriteU32(gpn << 12, 0xD1157), ++broken;
      }
    }
    Row("merged %llu pages; rewriting one VM's region broke %llu shares "
        "(frames back in use: %zu)",
        static_cast<unsigned long long>(merged), static_cast<unsigned long long>(broken),
        host.pool().used_frames() - used_before);
  }

  Section("F6c: ballooning — reclaim across a 4-VM rack");
  {
    core::HostConfig hc;
    hc.ram_bytes = 128u << 20;
    core::Host host(hc);
    std::string driver = guest::BalloonDriverProgram(512, 512, 100000);
    for (int i = 0; i < 4; ++i) {
      core::VmConfig cfg;
      cfg.name = "vm" + std::to_string(i);
      MustBoot(host, cfg, driver);
    }
    balloon::BalloonController controller(&host);

    Row("%-16s %12s %12s %14s", "demand(pages)", "achieved", "free-before", "free-after");
    for (uint32_t demand : {100u, 400u, 1200u}) {
      size_t free_before = host.pool().free_frames();
      auto plan = controller.ReclaimPages(demand);
      if (!plan.ok()) {
        Row("%-16u %12s", demand, "rejected (overdraft)");
        continue;
      }
      host.RunFor(400 * kSimTicksPerMs);
      Row("%-16u %12u %12zu %14zu", demand, controller.TotalBallooned(), free_before,
          host.pool().free_frames());
      controller.ReleaseAll();
      host.RunFor(600 * kSimTicksPerMs);
    }
    Row("released: total ballooned now %u", controller.TotalBallooned());
  }
  return 0;
}
