// Experiment F9 — SMP guests: MCS-lock + shootdown gauntlet scaling.
//
// Runs guest::SmpMcsLockProgram (DESIGN.md §11) at 1/2/4 vCPUs on a 4-pCPU
// host and separates the two contended phases by differencing paired runs:
// the marginal simulated cost per MCS acquisition (lock_iters grows) and per
// remap+IPI shootdown round (shootdown_rounds grows).
//
// The dispatch window is a parameter, because it *is* the experiment: sim
// time advances in `RunFor(window)` steps, and within a window the same VM's
// slices execute lane-sequentially. A spinning vCPU parked in an MCS queue
// burns its whole slice, so under fine windows every lock handoff costs
// roughly one window rotation — contended spinlock performance inside a VM
// is scheduling-bound (the lock-holder-preemption result), which gang
// scheduling bounds at one round rather than one round *per spurious
// deschedule*. Under coarse windows each vCPU drains all its acquisitions
// inside a single slice and the marginal cost collapses to the uncontended
// instruction cost. Shootdown rounds always need a real cross-vCPU
// round-trip (doorbell raise, sibling sfence + acks), so their cost tracks
// the window in both regimes.
//
// All times are simulated and deterministic for a fixed window; rerunning
// the binary reproduces the table bit-for-bit on any machine.

#include "bench/bench_util.h"

using namespace hyperion;
using namespace hyperion::bench;

namespace {

struct GauntletResult {
  SimTime completion = 0;  // sim time from boot to the shutdown hypercall
  uint64_t ipis = 0;
  bool ok = false;
};

GauntletResult RunGauntlet(uint32_t vcpus, cpu::EngineKind engine,
                           SimTime window, uint32_t lock_iters,
                           uint32_t rounds) {
  core::HostConfig hc;
  hc.num_pcpus = 4;
  core::Host host(hc);

  guest::SmpLockParams params;
  params.num_vcpus = vcpus;
  params.lock_iters = lock_iters;
  params.shootdown_rounds = rounds;

  core::VmConfig cfg;
  cfg.name = "smp-bench";
  cfg.ram_bytes = 8u << 20;
  cfg.num_vcpus = vcpus;
  cfg.engine = engine;
  core::Vm* vm = MustBoot(host, cfg, guest::SmpMcsLockProgram(params));

  constexpr SimTime kCap = 5 * kSimTicksPerSec;
  while (host.clock().now() < kCap && vm->state() == core::VmState::kRunning) {
    host.RunFor(window);
  }

  GauntletResult r;
  r.ok = vm->state() == core::VmState::kShutdown;
  r.completion = host.clock().now();
  r.ipis = vm->TotalStats().ipis_received;
  return r;
}

constexpr uint32_t kBaseIters = 500;
constexpr uint32_t kMoreIters = 1500;
constexpr uint32_t kBaseRounds = 8;
constexpr uint32_t kMoreRounds = 40;

void RunTable(const char* label, cpu::EngineKind engine, SimTime window) {
  Section(std::string("F9: SMP gauntlet, ") + label + " (4 pCPUs; sim time)");
  Row("%-6s %10s %14s %16s %8s %12s", "vcpus", "sim-ms", "us/lock-acq",
      "us/shootdown", "ipis", "all-passed");
  for (uint32_t n : {1u, 2u, 4u}) {
    GauntletResult base = RunGauntlet(n, engine, window, kBaseIters, kBaseRounds);
    GauntletResult locks = RunGauntlet(n, engine, window, kMoreIters, kBaseRounds);
    GauntletResult rounds = RunGauntlet(n, engine, window, kBaseIters, kMoreRounds);
    double lock_us =
        static_cast<double>(locks.completion - base.completion) /
        (static_cast<double>(n) * (kMoreIters - kBaseIters)) / kSimTicksPerUs;
    double round_us =
        static_cast<double>(rounds.completion - base.completion) /
        (kMoreRounds - kBaseRounds) / kSimTicksPerUs;
    bool ok = base.ok && locks.ok && rounds.ok &&
              base.ipis == static_cast<uint64_t>(kBaseRounds) * (n - 1) &&
              rounds.ipis == static_cast<uint64_t>(kMoreRounds) * (n - 1);
    Row("%-6u %10.2f %14.3f %16.2f %8llu %12s", n,
        SimTimeToMs(base.completion), lock_us, round_us,
        static_cast<unsigned long long>(base.ipis), ok ? "yes" : "NO");
  }
}

}  // namespace

int main() {
  for (SimTime window_us : {SimTime{5}, SimTime{50}}) {
    SimTime window = window_us * kSimTicksPerUs;
    for (auto [name, kind] :
         {std::pair{"interpreter", cpu::EngineKind::kInterpreter},
          std::pair{"dbt", cpu::EngineKind::kDbt}}) {
      char label[64];
      std::snprintf(label, sizeof(label), "%s, %llu us windows", name,
                    static_cast<unsigned long long>(window_us));
      RunTable(label, kind, window);
    }
  }
  return 0;
}
