// Experiment T2 — vCPU scheduling under consolidation.
//
// Eight VMs with unequal weights share two pCPUs under (a) the credit
// scheduler and (b) round-robin. Reports each VM's achieved share against
// its weight-proportional entitlement, Jain fairness on the normalized
// shares, caps, and wake-to-run latency for an interactive (ticker) VM
// sharing the host with CPU hogs.
//
// Expected shape: credit tracks entitlements closely (normalized fairness
// ~1.0) where round-robin flattens everything; caps bound consumption; the
// interactive VM's latency stays bounded under credit.

#include "bench/bench_util.h"
#include "src/util/histogram.h"

using namespace hyperion;
using namespace hyperion::bench;

namespace {

constexpr SimTime kWindow = 60 * kSimTicksPerMs;

void WeightExperiment(sched::SchedPolicy policy, const char* label) {
  core::HostConfig hc;
  hc.num_pcpus = 2;
  hc.ram_bytes = 256u << 20;
  hc.sched_policy = policy;
  core::Host host(hc);

  const uint32_t weights[8] = {256, 256, 256, 256, 512, 512, 1024, 1024};
  std::string prog = guest::ComputeProgram(0);
  std::vector<core::Vm*> vms;
  uint32_t total_weight = 0;
  for (int i = 0; i < 8; ++i) {
    core::VmConfig cfg;
    cfg.name = "vm" + std::to_string(i);
    cfg.sched.weight = weights[i];
    vms.push_back(MustBoot(host, cfg, prog));
    total_weight += weights[i];
  }
  host.RunFor(kWindow);

  uint64_t total_work = 0;
  for (auto* vm : vms) {
    total_work += Progress(vm, prog);
  }

  Section(std::string("T2: ") + label + " — 8 VMs, weights 256/512/1024, 2 pCPUs");
  Row("%-6s %8s %12s %10s %12s", "vm", "weight", "work", "share%", "entitled%");
  std::vector<double> normalized;
  for (int i = 0; i < 8; ++i) {
    uint32_t work = Progress(vms[i], prog);
    double share = total_work ? 100.0 * work / static_cast<double>(total_work) : 0;
    double entitled = 100.0 * weights[i] / total_weight;
    normalized.push_back(share / entitled);
    Row("%-6d %8u %12u %9.1f%% %11.1f%%", i, weights[i], work, share, entitled);
  }
  Row("fairness on share/entitlement: %.3f (1.0 = perfectly weight-proportional)",
      JainFairness(normalized));
}

void CapExperiment() {
  core::HostConfig hc;
  hc.num_pcpus = 2;
  hc.ram_bytes = 128u << 20;
  core::Host host(hc);
  std::string prog = guest::ComputeProgram(0);

  core::VmConfig capped;
  capped.name = "capped25";
  capped.sched.cap_percent = 25;
  core::Vm* vc = MustBoot(host, capped, prog);
  core::VmConfig free_cfg;
  free_cfg.name = "uncapped";
  core::Vm* vf = MustBoot(host, free_cfg, prog);
  host.RunFor(kWindow);

  Section("T2b: caps — 25%-capped vs uncapped VM on 2 pCPUs");
  double cap_cycles = static_cast<double>(vc->TotalStats().cycles);
  double free_cycles = static_cast<double>(vf->TotalStats().cycles);
  Row("%-10s cpu-share %5.1f%% of one pCPU", "capped25",
      100.0 * cap_cycles / static_cast<double>(kWindow));
  Row("%-10s cpu-share %5.1f%% of one pCPU", "uncapped",
      100.0 * free_cycles / static_cast<double>(kWindow));
}

void LatencyExperiment(sched::SchedPolicy policy, const char* label) {
  core::HostConfig hc;
  hc.num_pcpus = 1;
  hc.ram_bytes = 128u << 20;
  hc.sched_policy = policy;
  core::Host host(hc);

  // One interactive ticker among 3 CPU hogs.
  std::string tick = guest::IdleTickProgram(1'000'000);  // 1 ms period
  std::string hog = guest::ComputeProgram(0);
  core::VmConfig tcfg;
  tcfg.name = "ticker";
  core::Vm* ticker = MustBoot(host, tcfg, tick);
  for (int i = 0; i < 3; ++i) {
    core::VmConfig cfg;
    cfg.name = "hog" + std::to_string(i);
    MustBoot(host, cfg, hog);
  }
  host.RunFor(kWindow);

  uint32_t ticks = Progress(ticker, tick);
  const auto& st = host.scheduler().stats().at(1);  // ticker is entity 1
  double avg_wait_us =
      st.runs ? SimTimeToUs(st.total_wait) / static_cast<double>(st.runs) : 0;
  Row("%-12s ticks=%4u (ideal %llu)  avg wake-to-run latency %7.1f us", label, ticks,
      static_cast<unsigned long long>(kWindow / 1'000'000), avg_wait_us);
}

}  // namespace

int main() {
  WeightExperiment(sched::SchedPolicy::kCredit, "credit scheduler");
  WeightExperiment(sched::SchedPolicy::kRoundRobin, "round-robin baseline");
  CapExperiment();
  Section("T2c: interactive latency next to CPU hogs (1 pCPU) — BOOST ablation");
  LatencyExperiment(sched::SchedPolicy::kCredit, "credit+boost");
  LatencyExperiment(sched::SchedPolicy::kCreditNoBoost, "credit-noboost");
  LatencyExperiment(sched::SchedPolicy::kRoundRobin, "round-robin");
  return 0;
}
