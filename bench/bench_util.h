// Shared helpers for the experiment harnesses in bench/.
//
// Each bench binary regenerates one table/figure of the reconstructed
// evaluation (see DESIGN.md §3): it sweeps parameters, runs deterministic
// simulations, and prints aligned rows.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/core/host.h"
#include "src/cpu/dbt.h"
#include "src/cpu/exec_core.h"
#include "src/cpu/interpreter.h"
#include "src/guest/programs.h"

namespace hyperion::bench {

// Prints a separator + title for one experiment section.
inline void Section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// printf-style row helper (keeps call sites compact).
inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
  std::fputc('\n', stdout);
}

// Boots `source` into a fresh VM; crashes the process on failure (benches
// run known-good programs).
inline core::Vm* MustBoot(core::Host& host, core::VmConfig config, const std::string& source) {
  auto image = guest::Build(source);
  if (!image.ok()) {
    std::fprintf(stderr, "bench guest failed to assemble: %s\n",
                 image.status().ToString().c_str());
    std::abort();
  }
  auto vm = host.CreateVm(std::move(config));
  if (!vm.ok()) {
    std::fprintf(stderr, "CreateVm: %s\n", vm.status().ToString().c_str());
    std::abort();
  }
  if (!(*vm)->LoadImage(*image).ok()) {
    std::abort();
  }
  return *vm;
}

// Reads the guest's progress counter.
inline uint32_t Progress(core::Vm* vm, const std::string& source) {
  auto image = guest::Build(source);
  auto addr = guest::ProgressAddress(*image);
  if (!addr.ok()) {
    return 0;
  }
  return vm->memory().ReadU32(*addr).value_or(0);
}

// ---------------------------------------------------------------------------
// MiniMachine: a single-vCPU CPU/MMU harness without a Host (for paging and
// engine experiments that do not need devices or scheduling).
// ---------------------------------------------------------------------------

class MiniMachine {
 public:
  // `dbt_max_blocks` != 0 sizes the DBT translation cache (capacity-pressure
  // experiments); 0 keeps the engine default. `dbt_options` carries the full
  // knob set (tier-2 enable/threshold); a nonzero dbt_max_blocks overrides
  // its capacity.
  MiniMachine(uint32_t ram_bytes, mmu::PagingMode paging, cpu::EngineKind engine,
              cpu::VirtMode virt_mode = cpu::VirtMode::kHardwareAssist,
              size_t dbt_max_blocks = 0, cpu::DbtOptions dbt_options = {})
      : pool_(2 * (ram_bytes / isa::kPageSize) + 64) {
    auto mem = mem::GuestMemory::Create(&pool_, ram_bytes);
    memory_ = std::move(mem).value();
    virt_ = mmu::MakeVirtualizer(paging, memory_.get());
    if (dbt_max_blocks != 0) {
      dbt_options.max_blocks = dbt_max_blocks;
    }
    engine_ = cpu::MakeEngine(engine, dbt_options);
    ctx_.memory = memory_.get();
    ctx_.virt = virt_.get();
    ctx_.virt_mode = virt_mode;
  }

  bool Load(const std::string& source) {
    auto image = assembler::Assemble(source);
    if (!image.ok()) {
      std::fprintf(stderr, "assemble: %s\n", image.status().ToString().c_str());
      return false;
    }
    if (!memory_->Write(image->base, image->bytes.data(), image->bytes.size()).ok()) {
      return false;
    }
    ctx_.state.pc = image->entry();
    entry_ = image->entry();
    return true;
  }

  // Rewinds the vCPU to the image entry with fresh architectural state while
  // keeping memory, TLB and translation-cache contents (hot-phase reruns).
  void ResetGuest() {
    ctx_.state = cpu::CpuState{};
    ctx_.state.pc = entry_;
  }

  cpu::RunResult RunToHalt(uint64_t max_cycles = 100'000'000'000ull) {
    cpu::RunResult last;
    uint64_t used = 0;
    while (used < max_cycles) {
      ctx_.slice_start = used;
      last = engine_->Run(ctx_, max_cycles - used);
      used += last.cycles;
      if (last.reason != cpu::ExitReason::kBudget &&
          last.reason != cpu::ExitReason::kHypercall) {
        break;
      }
    }
    return last;
  }

  cpu::VcpuContext& ctx() { return ctx_; }
  mmu::MemoryVirtualizer& virt() { return *virt_; }
  cpu::ExecutionEngine& engine() { return *engine_; }

 private:
  mem::FramePool pool_;
  std::unique_ptr<mem::GuestMemory> memory_;
  std::unique_ptr<mmu::MemoryVirtualizer> virt_;
  std::unique_ptr<cpu::ExecutionEngine> engine_;
  cpu::VcpuContext ctx_;
  uint32_t entry_ = 0;
};

}  // namespace hyperion::bench

#endif  // BENCH_BENCH_UTIL_H_
