// Experiment F1 — memory virtualization: shadow vs. nested paging.
//
// Three workload classes stress the two strategies' opposite corners:
//   stable-touch : warm working set, ~100% TLB hits          -> a wash
//   cold-touch   : working set far beyond the TLB            -> shadow wins
//                  (short software walk vs the 4x 2-D walk on every miss)
//   pt-churn     : continuous PTE rewrites + flushes         -> nested wins big
//                  (every guest PTE store traps under shadow)
//
// Reports simulated cycles per work unit plus the exit/walk anatomy.

#include "bench/bench_util.h"

using namespace hyperion;
using namespace hyperion::bench;

namespace {

struct Workload {
  const char* name;
  std::string source;
  uint32_t units;  // progress target for normalization
};

std::vector<Workload> Workloads() {
  std::vector<Workload> w;
  {
    guest::MemTouchParams p;
    p.pages = 32;  // fits the TLB comfortably
    p.stride_bytes = 256;
    p.iterations = 400;
    w.push_back({"stable-touch", guest::MemTouchProgram(p), p.iterations});
  }
  {
    guest::MemTouchParams p;
    p.pages = 700;  // far exceeds the 256-entry TLB
    p.stride_bytes = 4096;
    p.iterations = 400;
    w.push_back({"cold-touch", guest::MemTouchProgram(p), p.iterations});
  }
  w.push_back({"pt-churn", guest::PtChurnProgram(3000), 3000});
  return w;
}

struct Outcome {
  uint64_t cycles = 0;
  uint64_t pt_traps = 0;
  uint64_t hidden_faults = 0;
  uint64_t walk_steps = 0;
  double tlb_hit = 0;
};

Outcome RunOne(const Workload& w, mmu::PagingMode mode) {
  MiniMachine m(8u << 20, mode, cpu::EngineKind::kInterpreter);
  if (!m.Load(w.source)) {
    std::abort();
  }
  auto r = m.RunToHalt();
  if (r.reason != cpu::ExitReason::kHalt) {
    std::fprintf(stderr, "workload %s did not halt cleanly\n", w.name);
  }
  Outcome out;
  out.cycles = m.ctx().stats.cycles;
  out.pt_traps = m.ctx().stats.pt_write_exits;
  out.hidden_faults = m.virt().stats().hidden_faults;
  out.walk_steps = m.virt().stats().walk_steps;
  out.tlb_hit = m.virt().tlb().stats().HitRate();
  return out;
}

}  // namespace

namespace {

// F1c: a guest alternating between two address spaces (process context
// switches), touching `pages` pages in each. ASID-tagged TLBs keep both
// spaces warm; untagged TLBs flush on every PTBR write.
std::string AddressSpaceSwitchProgram(uint32_t pages, uint32_t iters) {
  auto touch = [pages]() {
    std::string t;
    t += "    li t0, 0x100000\n";
    t += "    li t2, " + std::to_string(0x100000 + pages * 4096) + "\n";
    static int n = 0;
    std::string label = "touch" + std::to_string(n++);
    t += label + ":\n";
    t += "    lw t3, 0(t0)\n";
    t += "    addi t0, t0, 4096\n";
    t += "    bltu t0, t2, " + label + "\n";
    return t;
  };
  std::string s = R"(.org 0x1000
_start:
    li t0, 0x80000
    li t1, 0x7F
    sw t1, 0(t0)
    li t1, 0xF0000067
    li t2, 0x80000 + 960*4
    sw t1, 0(t2)
    li t0, 0x90000
    li t1, 0x7F
    sw t1, 0(t0)
    li t1, 0xF0000067
    li t2, 0x90000 + 960*4
    sw t1, 0(t2)
    li t1, 0x80
    csrw ptbr, t1
    csrr t1, status
    ori t1, t1, 0x10
    csrw status, t1
    li s1, )" + std::to_string(iters) + "\n";
  s += "switch_loop:\n";
  s += "    li t1, 0x80\n    csrw ptbr, t1\n";
  s += touch();
  s += "    li t1, 0x90\n    csrw ptbr, t1\n";
  s += touch();
  s += "    addi s1, s1, -1\n    bnez s1, switch_loop\n    halt\n";
  return s;
}

}  // namespace

int main() {
  Section("F1: shadow vs nested paging — cycles per work unit");
  Row("%-14s %-8s %14s %12s %10s %12s %12s %8s", "workload", "mode", "cycles", "cyc/unit",
      "pt-traps", "hidden-flts", "walk-steps", "tlb%");

  for (const Workload& w : Workloads()) {
    Outcome shadow = RunOne(w, mmu::PagingMode::kShadow);
    Outcome nested = RunOne(w, mmu::PagingMode::kNested);
    for (auto [mode, o] : {std::pair{"shadow", shadow}, std::pair{"nested", nested}}) {
      Row("%-14s %-8s %14llu %12.0f %10llu %12llu %12llu %7.2f%%", w.name, mode,
          static_cast<unsigned long long>(o.cycles),
          static_cast<double>(o.cycles) / w.units,
          static_cast<unsigned long long>(o.pt_traps),
          static_cast<unsigned long long>(o.hidden_faults),
          static_cast<unsigned long long>(o.walk_steps), o.tlb_hit * 100);
    }
    double ratio = static_cast<double>(shadow.cycles) / static_cast<double>(nested.cycles);
    Row("%-14s -> shadow/nested cycle ratio: %.2f %s", w.name, ratio,
        ratio < 1.0 ? "(shadow wins)" : "(nested wins)");
  }

  Section("F1c: ASID ablation — 2-space context-switch churn (32 pages each, 500 switches)");
  Row("%-14s %14s %12s %12s %8s", "mode", "cycles", "walks", "walk-steps", "tlb%");
  for (auto mode : {mmu::PagingMode::kNested, mmu::PagingMode::kNestedAsid,
                    mmu::PagingMode::kShadow}) {
    MiniMachine m(16u << 20, mode, cpu::EngineKind::kInterpreter);
    if (!m.Load(AddressSpaceSwitchProgram(32, 500))) {
      std::abort();
    }
    auto r = m.RunToHalt();
    if (r.reason != cpu::ExitReason::kHalt) {
      std::fprintf(stderr, "asid workload did not halt\n");
    }
    Row("%-14s %14llu %12llu %12llu %7.2f%%", std::string(m.virt().name()).c_str(),
        static_cast<unsigned long long>(m.ctx().stats.cycles),
        static_cast<unsigned long long>(m.virt().stats().walks),
        static_cast<unsigned long long>(m.virt().stats().walk_steps),
        m.virt().tlb().stats().HitRate() * 100);
  }
  Row("shape check: ASID tagging eliminates the per-switch refill storm;");
  Row("shadow's per-root caches also survive switches but pay the switch exit.");

  Section("F1b: trap-and-emulate tax on the same workloads (shadow paging)");
  Row("%-14s %-18s %14s %10s", "workload", "cpu-virtualization", "cycles", "slowdown");
  for (const Workload& w : Workloads()) {
    MiniMachine hw(8u << 20, mmu::PagingMode::kShadow, cpu::EngineKind::kInterpreter,
                   cpu::VirtMode::kHardwareAssist);
    MiniMachine te(8u << 20, mmu::PagingMode::kShadow, cpu::EngineKind::kInterpreter,
                   cpu::VirtMode::kTrapAndEmulate);
    if (!hw.Load(w.source) || !te.Load(w.source)) {
      std::abort();
    }
    hw.RunToHalt();
    te.RunToHalt();
    uint64_t c_hw = hw.ctx().stats.cycles;
    uint64_t c_te = te.ctx().stats.cycles;
    Row("%-14s %-18s %14llu %10s", w.name, "hw-assist",
        static_cast<unsigned long long>(c_hw), "1.00x");
    Row("%-14s %-18s %14llu %9.2fx", w.name, "trap&emulate",
        static_cast<unsigned long long>(c_te),
        static_cast<double>(c_te) / static_cast<double>(c_hw));
  }
  return 0;
}
