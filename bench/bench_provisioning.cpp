// Experiment T3 — provisioning: cold install vs. template cloning.
//
// The deck asks for "instant (or very rapid) provisioning of servers".
// Three strategies are timed per VM size:
//   cold-install   : boot a fresh VM and run the "installer" workload that
//                    writes the OS footprint into memory and disk
//   template-clone : restore a captured golden snapshot (RAM state) plus an
//                    O(1) copy-on-write disk overlay
//   disk-overlay   : the storage-only cost of a clone (no RAM state)
//
// Expected shape: cold install scales with footprint; template cloning is
// orders of magnitude faster and scales only with *touched* RAM;
// the COW overlay is O(1) regardless of disk size.

#include <chrono>

#include "bench/bench_util.h"
#include "src/snapshot/snapshot.h"
#include "src/util/phase.h"
#include "src/storage/hvd.h"

using namespace hyperion;
using namespace hyperion::bench;

namespace {

// All driver code here runs on the main thread, outside any execute slice.
const hyperion::SerialPhase& Serial() {
  static hyperion::ScopedSerialPhase scope;
  return scope.get();
}

using WallClock = std::chrono::steady_clock;

double WallMs(WallClock::time_point a, WallClock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

// The "installer": fills `pages` pages of RAM (the OS image) and parks.
std::string InstallerProgram(uint32_t pages) {
  return guest::PatternFillProgram(pages, pages, /*seed=*/7);
}

}  // namespace

int main() {
  Section("T3: provisioning cost per strategy (simulated guest time + host wall time)");
  Row("%-16s %10s %16s %14s %14s", "strategy", "footprint", "sim-time", "host-wall",
      "bytes-moved");

  for (uint32_t pages : {128u, 512u, 1024u}) {
    uint32_t ram_mb = 8;
    std::string installer = InstallerProgram(pages);

    // --- Cold install --------------------------------------------------------
    {
      core::HostConfig hc;
      hc.ram_bytes = 64u << 20;
      core::Host host(hc);
      core::VmConfig cfg;
      cfg.name = "cold";
      cfg.ram_bytes = ram_mb << 20;
      auto w0 = WallClock::now();
      core::Vm* vm = MustBoot(host, cfg, installer);
      // Run until the installer parks (progress = 1).
      SimTime t0 = host.clock().now();
      while (Progress(vm, installer) == 0 && host.clock().now() - t0 < 10 * kSimTicksPerSec) {
        host.RunFor(kSimTicksPerMs / 4);  // fine-grained so sim-time resolves
      }
      auto w1 = WallClock::now();
      Row("%-16s %7u pg %13.2f ms %11.2f ms %11.1f MiB", "cold-install", pages,
          SimTimeToMs(host.clock().now() - t0), WallMs(w0, w1),
          static_cast<double>(pages) * isa::kPageSize / (1 << 20));
    }

    // --- Template clone -------------------------------------------------------
    {
      core::HostConfig hc;
      hc.ram_bytes = 128u << 20;
      core::Host host(hc);
      core::VmConfig cfg;
      cfg.name = "golden";
      cfg.ram_bytes = ram_mb << 20;
      core::Vm* golden = MustBoot(host, cfg, installer);
      SimTime t0 = host.clock().now();
      while (Progress(golden, installer) == 0 &&
             host.clock().now() - t0 < 10 * kSimTicksPerSec) {
        host.RunFor(5 * kSimTicksPerMs);
      }
      golden->Pause(Serial());
      auto tmpl = snapshot::SaveVm(*golden);
      if (!tmpl.ok()) {
        std::abort();
      }

      constexpr int kClones = 8;
      auto w0 = WallClock::now();
      for (int i = 0; i < kClones; ++i) {
        core::VmConfig ccfg;
        ccfg.name = "clone" + std::to_string(i);
        ccfg.ram_bytes = ram_mb << 20;
        auto clone = snapshot::CloneVm(host, ccfg, *tmpl);
        if (!clone.ok()) {
          std::abort();
        }
      }
      auto w1 = WallClock::now();
      // Cloning costs no simulated guest time at all: the clone starts live.
      Row("%-16s %7u pg %13.2f ms %11.2f ms %11.1f MiB  (template %zu KiB)",
          "template-clone", pages, 0.0, WallMs(w0, w1) / kClones,
          static_cast<double>(tmpl->size()) / (1 << 20),
          tmpl->size() / 1024);
    }

    // --- COW fork ---------------------------------------------------------------
    {
      core::HostConfig hc;
      hc.ram_bytes = 128u << 20;
      core::Host host(hc);
      core::VmConfig cfg;
      cfg.name = "parent";
      cfg.ram_bytes = ram_mb << 20;
      core::Vm* parent = MustBoot(host, cfg, installer);
      SimTime t0 = host.clock().now();
      while (Progress(parent, installer) == 0 &&
             host.clock().now() - t0 < 10 * kSimTicksPerSec) {
        host.RunFor(5 * kSimTicksPerMs);
      }
      parent->Pause(Serial());

      constexpr int kForks = 8;
      size_t frames_before = host.pool().used_frames();
      auto w0 = WallClock::now();
      for (int i = 0; i < kForks; ++i) {
        core::VmConfig fcfg;
        fcfg.name = "fork" + std::to_string(i);
        fcfg.ram_bytes = ram_mb << 20;
        auto child = snapshot::ForkVm(host, fcfg, *parent);
        if (!child.ok()) {
          std::abort();
        }
      }
      auto w1 = WallClock::now();
      size_t extra_frames = host.pool().used_frames() - frames_before;
      Row("%-16s %7u pg %13s %11.3f ms %13s  (+%zu frames for %d forks)", "cow-fork", pages,
          "0 (COW)", WallMs(w0, w1) / kForks, "shared frames", extra_frames, kForks);
    }

    // --- Disk overlay ----------------------------------------------------------
    {
      auto base = storage::HvdImage::Create(std::make_unique<storage::MemByteStore>(),
                                            uint64_t{pages} * 64 * 1024);
      if (!base.ok()) {
        std::abort();
      }
      std::shared_ptr<storage::BlockStore> base_shared = std::move(*base);
      auto w0 = WallClock::now();
      constexpr int kOverlays = 64;
      for (int i = 0; i < kOverlays; ++i) {
        auto overlay = storage::CreateOverlay(base_shared, "base",
                                              std::make_unique<storage::MemByteStore>());
        if (!overlay.ok()) {
          std::abort();
        }
      }
      auto w1 = WallClock::now();
      Row("%-16s %7u pg %13s %11.3f ms %13s", "disk-overlay", pages, "0 (O(1))",
          WallMs(w0, w1) / kOverlays, "metadata only");
    }
  }

  Row("\nshape check: cold install scales with footprint; template cloning moves");
  Row("only touched pages; COW forks move none; disk overlays are O(1) metadata.");
  return 0;
}
