// Experiment T1 — server consolidation ratio.
//
// The source deck reports "approximately 1 physical machine per 3–4 virtual
// servers". This harness sweeps the number of VMs packed onto a fixed host
// and reports aggregate throughput, per-VM share, consolidation efficiency
// (aggregate work relative to VMs run alone), and fairness.
//
// Expected shape: efficiency stays ~1.0 while the pCPUs have headroom, then
// per-VM share degrades as ~pCPUs/N past saturation; with the mixed (partly
// idle) workload the host sustains ~3–4 busy VMs per pCPU before per-VM
// degradation crosses 50%.

#include "bench/bench_util.h"
#include "src/util/histogram.h"

using namespace hyperion;
using namespace hyperion::bench;

namespace {

constexpr SimTime kWindow = 40 * kSimTicksPerMs;
constexpr uint32_t kPcpus = 2;

struct RackResult {
  uint64_t aggregate = 0;
  double per_vm_avg = 0;
  double fairness = 1.0;
};

// A "server" alternates compute with idle waits: ~60% duty cycle, like the
// deck's lightly loaded production servers.
std::string ServerProgram() {
  return guest::ComputeProgram(0);  // fully busy; mixed-duty handled below
}

RackResult RunRack(uint32_t num_vms, bool mixed_duty) {
  core::HostConfig hc;
  hc.num_pcpus = kPcpus;
  hc.ram_bytes = 512u << 20;
  core::Host host(hc);

  std::string busy = ServerProgram();
  std::string idle = guest::IdleTickProgram(500'000);  // ticks, mostly idle
  std::vector<core::Vm*> vms;
  std::vector<std::string> progs;
  for (uint32_t i = 0; i < num_vms; ++i) {
    // Mixed racks: every third VM is an idle-ish server.
    bool is_idle = mixed_duty && (i % 3 == 2);
    const std::string& prog = is_idle ? idle : busy;
    core::VmConfig cfg;
    cfg.name = "vm" + std::to_string(i);
    vms.push_back(MustBoot(host, cfg, prog));
    progs.push_back(prog);
  }
  host.RunFor(kWindow);

  RackResult result;
  std::vector<double> busy_shares;
  for (uint32_t i = 0; i < num_vms; ++i) {
    bool is_idle = mixed_duty && (i % 3 == 2);
    uint32_t p = Progress(vms[i], progs[i]);
    if (!is_idle) {
      result.aggregate += p;
      busy_shares.push_back(p);
    }
  }
  result.per_vm_avg = busy_shares.empty()
                          ? 0
                          : static_cast<double>(result.aggregate) / busy_shares.size();
  result.fairness = JainFairness(busy_shares);
  return result;
}

}  // namespace

int main() {
  Section("T1: consolidation — aggregate throughput vs. VMs per host (" +
          std::to_string(kPcpus) + " pCPUs, 40 ms window)");

  RackResult solo = RunRack(1, false);
  double solo_work = static_cast<double>(solo.aggregate);

  Row("%-6s %14s %12s %12s %10s %10s", "VMs", "aggregate", "per-VM", "per-VM/solo",
      "efficiency", "fairness");
  for (uint32_t n : {1u, 2u, 3u, 4u, 6u, 8u, 10u, 12u}) {
    RackResult r = RunRack(n, false);
    double ideal = solo_work * std::min<double>(n, kPcpus);
    double efficiency = ideal > 0 ? static_cast<double>(r.aggregate) / ideal : 0;
    double share = solo_work > 0 ? r.per_vm_avg / solo_work : 0;
    Row("%-6u %14llu %12.0f %11.0f%% %10.2f %10.3f", n,
        static_cast<unsigned long long>(r.aggregate), r.per_vm_avg, share * 100, efficiency,
        r.fairness);
  }

  Section("T1b: mixed rack (1 in 3 VMs mostly idle) — the deck's 3-4:1 case");
  Row("%-6s %14s %12s %12s", "VMs", "busy-aggregate", "per-busy-VM", "per-VM/solo");
  for (uint32_t n : {3u, 6u, 9u, 12u}) {
    RackResult r = RunRack(n, true);
    uint32_t busy = n - n / 3;
    double share = solo_work > 0 ? r.per_vm_avg / solo_work : 0;
    Row("%-6u %14llu %12.0f %11.0f%%  (%u busy + %u idle)", n,
        static_cast<unsigned long long>(r.aggregate), r.per_vm_avg, share * 100, busy, n / 3);
  }

  Row("\nshape check: efficiency ~1.0 until VMs > pCPUs, then per-VM share ~ pCPUs/N;");
  Row("idle VMs cost almost nothing, supporting the deck's 3-4 VMs per physical CPU.");
  return 0;
}
