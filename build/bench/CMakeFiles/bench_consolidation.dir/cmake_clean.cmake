file(REMOVE_RECURSE
  "CMakeFiles/bench_consolidation.dir/bench_consolidation.cpp.o"
  "CMakeFiles/bench_consolidation.dir/bench_consolidation.cpp.o.d"
  "bench_consolidation"
  "bench_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
