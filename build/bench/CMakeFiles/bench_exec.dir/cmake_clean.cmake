file(REMOVE_RECURSE
  "CMakeFiles/bench_exec.dir/bench_exec.cpp.o"
  "CMakeFiles/bench_exec.dir/bench_exec.cpp.o.d"
  "bench_exec"
  "bench_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
