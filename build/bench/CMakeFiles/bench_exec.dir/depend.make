# Empty dependencies file for bench_exec.
# This may be replaced when dependencies are built.
