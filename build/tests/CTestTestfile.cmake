# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/assembler_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/mmu_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/devices_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_diff_test[1]_include.cmake")
include("/root/repo/build/tests/hostile_guest_test[1]_include.cmake")
include("/root/repo/build/tests/migrate_test[1]_include.cmake")
