file(REMOVE_RECURSE
  "CMakeFiles/hostile_guest_test.dir/hostile_guest_test.cc.o"
  "CMakeFiles/hostile_guest_test.dir/hostile_guest_test.cc.o.d"
  "hostile_guest_test"
  "hostile_guest_test.pdb"
  "hostile_guest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hostile_guest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
