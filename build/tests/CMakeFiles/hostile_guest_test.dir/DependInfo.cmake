
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hostile_guest_test.cc" "tests/CMakeFiles/hostile_guest_test.dir/hostile_guest_test.cc.o" "gcc" "tests/CMakeFiles/hostile_guest_test.dir/hostile_guest_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hyperion_core.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/hyperion_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/virtio/CMakeFiles/hyperion_virtio.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/hyperion_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/hyperion_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/hyperion_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hyperion_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hyperion_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hyperion_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/hyperion_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/hyperion_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/hyperion_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hyperion_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
