# Empty dependencies file for hostile_guest_test.
# This may be replaced when dependencies are built.
