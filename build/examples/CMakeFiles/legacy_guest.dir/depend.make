# Empty dependencies file for legacy_guest.
# This may be replaced when dependencies are built.
