file(REMOVE_RECURSE
  "CMakeFiles/legacy_guest.dir/legacy_guest.cpp.o"
  "CMakeFiles/legacy_guest.dir/legacy_guest.cpp.o.d"
  "legacy_guest"
  "legacy_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legacy_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
