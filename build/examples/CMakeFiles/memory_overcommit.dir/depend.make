# Empty dependencies file for memory_overcommit.
# This may be replaced when dependencies are built.
