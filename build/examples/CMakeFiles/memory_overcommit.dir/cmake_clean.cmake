file(REMOVE_RECURSE
  "CMakeFiles/memory_overcommit.dir/memory_overcommit.cpp.o"
  "CMakeFiles/memory_overcommit.dir/memory_overcommit.cpp.o.d"
  "memory_overcommit"
  "memory_overcommit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_overcommit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
