# Empty dependencies file for snapshot_provisioning.
# This may be replaced when dependencies are built.
