file(REMOVE_RECURSE
  "CMakeFiles/snapshot_provisioning.dir/snapshot_provisioning.cpp.o"
  "CMakeFiles/snapshot_provisioning.dir/snapshot_provisioning.cpp.o.d"
  "snapshot_provisioning"
  "snapshot_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
