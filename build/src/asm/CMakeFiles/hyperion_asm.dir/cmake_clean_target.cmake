file(REMOVE_RECURSE
  "libhyperion_asm.a"
)
