file(REMOVE_RECURSE
  "CMakeFiles/hyperion_asm.dir/assembler.cc.o"
  "CMakeFiles/hyperion_asm.dir/assembler.cc.o.d"
  "libhyperion_asm.a"
  "libhyperion_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
