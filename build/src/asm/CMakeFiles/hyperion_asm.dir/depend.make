# Empty dependencies file for hyperion_asm.
# This may be replaced when dependencies are built.
