# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("isa")
subdirs("asm")
subdirs("mem")
subdirs("mmu")
subdirs("cpu")
subdirs("devices")
subdirs("virtio")
subdirs("storage")
subdirs("net")
subdirs("sched")
subdirs("core")
subdirs("balloon")
subdirs("ksm")
subdirs("snapshot")
subdirs("migrate")
subdirs("guest")
