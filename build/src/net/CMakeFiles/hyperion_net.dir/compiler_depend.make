# Empty compiler generated dependencies file for hyperion_net.
# This may be replaced when dependencies are built.
