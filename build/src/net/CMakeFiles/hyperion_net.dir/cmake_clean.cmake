file(REMOVE_RECURSE
  "CMakeFiles/hyperion_net.dir/network.cc.o"
  "CMakeFiles/hyperion_net.dir/network.cc.o.d"
  "libhyperion_net.a"
  "libhyperion_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
