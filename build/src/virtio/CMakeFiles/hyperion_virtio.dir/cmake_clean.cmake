file(REMOVE_RECURSE
  "CMakeFiles/hyperion_virtio.dir/virtio.cc.o"
  "CMakeFiles/hyperion_virtio.dir/virtio.cc.o.d"
  "CMakeFiles/hyperion_virtio.dir/virtio_blk.cc.o"
  "CMakeFiles/hyperion_virtio.dir/virtio_blk.cc.o.d"
  "CMakeFiles/hyperion_virtio.dir/virtio_console.cc.o"
  "CMakeFiles/hyperion_virtio.dir/virtio_console.cc.o.d"
  "CMakeFiles/hyperion_virtio.dir/virtio_net.cc.o"
  "CMakeFiles/hyperion_virtio.dir/virtio_net.cc.o.d"
  "libhyperion_virtio.a"
  "libhyperion_virtio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_virtio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
