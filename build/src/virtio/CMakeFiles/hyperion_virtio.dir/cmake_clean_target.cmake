file(REMOVE_RECURSE
  "libhyperion_virtio.a"
)
