# Empty compiler generated dependencies file for hyperion_virtio.
# This may be replaced when dependencies are built.
