file(REMOVE_RECURSE
  "CMakeFiles/hyperion_ksm.dir/ksm.cc.o"
  "CMakeFiles/hyperion_ksm.dir/ksm.cc.o.d"
  "libhyperion_ksm.a"
  "libhyperion_ksm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_ksm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
