file(REMOVE_RECURSE
  "libhyperion_ksm.a"
)
