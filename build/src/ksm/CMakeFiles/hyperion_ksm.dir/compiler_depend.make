# Empty compiler generated dependencies file for hyperion_ksm.
# This may be replaced when dependencies are built.
