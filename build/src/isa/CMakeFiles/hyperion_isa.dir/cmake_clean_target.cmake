file(REMOVE_RECURSE
  "libhyperion_isa.a"
)
