file(REMOVE_RECURSE
  "CMakeFiles/hyperion_isa.dir/disasm.cc.o"
  "CMakeFiles/hyperion_isa.dir/disasm.cc.o.d"
  "CMakeFiles/hyperion_isa.dir/encoding.cc.o"
  "CMakeFiles/hyperion_isa.dir/encoding.cc.o.d"
  "libhyperion_isa.a"
  "libhyperion_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
