# Empty dependencies file for hyperion_isa.
# This may be replaced when dependencies are built.
