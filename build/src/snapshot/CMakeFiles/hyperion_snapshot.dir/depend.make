# Empty dependencies file for hyperion_snapshot.
# This may be replaced when dependencies are built.
