file(REMOVE_RECURSE
  "libhyperion_snapshot.a"
)
