file(REMOVE_RECURSE
  "CMakeFiles/hyperion_snapshot.dir/snapshot.cc.o"
  "CMakeFiles/hyperion_snapshot.dir/snapshot.cc.o.d"
  "libhyperion_snapshot.a"
  "libhyperion_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
