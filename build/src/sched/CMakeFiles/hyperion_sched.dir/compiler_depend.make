# Empty compiler generated dependencies file for hyperion_sched.
# This may be replaced when dependencies are built.
