file(REMOVE_RECURSE
  "CMakeFiles/hyperion_sched.dir/scheduler.cc.o"
  "CMakeFiles/hyperion_sched.dir/scheduler.cc.o.d"
  "libhyperion_sched.a"
  "libhyperion_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
