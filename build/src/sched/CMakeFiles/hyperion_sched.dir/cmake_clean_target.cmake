file(REMOVE_RECURSE
  "libhyperion_sched.a"
)
