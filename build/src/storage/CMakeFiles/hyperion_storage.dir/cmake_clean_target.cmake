file(REMOVE_RECURSE
  "libhyperion_storage.a"
)
