file(REMOVE_RECURSE
  "CMakeFiles/hyperion_storage.dir/byte_store.cc.o"
  "CMakeFiles/hyperion_storage.dir/byte_store.cc.o.d"
  "CMakeFiles/hyperion_storage.dir/hvd.cc.o"
  "CMakeFiles/hyperion_storage.dir/hvd.cc.o.d"
  "libhyperion_storage.a"
  "libhyperion_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
