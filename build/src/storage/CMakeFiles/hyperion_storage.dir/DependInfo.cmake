
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/byte_store.cc" "src/storage/CMakeFiles/hyperion_storage.dir/byte_store.cc.o" "gcc" "src/storage/CMakeFiles/hyperion_storage.dir/byte_store.cc.o.d"
  "/root/repo/src/storage/hvd.cc" "src/storage/CMakeFiles/hyperion_storage.dir/hvd.cc.o" "gcc" "src/storage/CMakeFiles/hyperion_storage.dir/hvd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hyperion_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
