file(REMOVE_RECURSE
  "CMakeFiles/hyperion_core.dir/host.cc.o"
  "CMakeFiles/hyperion_core.dir/host.cc.o.d"
  "CMakeFiles/hyperion_core.dir/vm.cc.o"
  "CMakeFiles/hyperion_core.dir/vm.cc.o.d"
  "libhyperion_core.a"
  "libhyperion_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
