# Empty compiler generated dependencies file for hyperion_core.
# This may be replaced when dependencies are built.
