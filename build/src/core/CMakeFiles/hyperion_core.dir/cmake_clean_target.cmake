file(REMOVE_RECURSE
  "libhyperion_core.a"
)
