file(REMOVE_RECURSE
  "CMakeFiles/hyperion_mmu.dir/nested.cc.o"
  "CMakeFiles/hyperion_mmu.dir/nested.cc.o.d"
  "CMakeFiles/hyperion_mmu.dir/shadow.cc.o"
  "CMakeFiles/hyperion_mmu.dir/shadow.cc.o.d"
  "CMakeFiles/hyperion_mmu.dir/tlb.cc.o"
  "CMakeFiles/hyperion_mmu.dir/tlb.cc.o.d"
  "CMakeFiles/hyperion_mmu.dir/virtualizer.cc.o"
  "CMakeFiles/hyperion_mmu.dir/virtualizer.cc.o.d"
  "CMakeFiles/hyperion_mmu.dir/walker.cc.o"
  "CMakeFiles/hyperion_mmu.dir/walker.cc.o.d"
  "libhyperion_mmu.a"
  "libhyperion_mmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_mmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
