# Empty compiler generated dependencies file for hyperion_mmu.
# This may be replaced when dependencies are built.
