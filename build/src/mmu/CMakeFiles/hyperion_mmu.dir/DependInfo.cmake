
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mmu/nested.cc" "src/mmu/CMakeFiles/hyperion_mmu.dir/nested.cc.o" "gcc" "src/mmu/CMakeFiles/hyperion_mmu.dir/nested.cc.o.d"
  "/root/repo/src/mmu/shadow.cc" "src/mmu/CMakeFiles/hyperion_mmu.dir/shadow.cc.o" "gcc" "src/mmu/CMakeFiles/hyperion_mmu.dir/shadow.cc.o.d"
  "/root/repo/src/mmu/tlb.cc" "src/mmu/CMakeFiles/hyperion_mmu.dir/tlb.cc.o" "gcc" "src/mmu/CMakeFiles/hyperion_mmu.dir/tlb.cc.o.d"
  "/root/repo/src/mmu/virtualizer.cc" "src/mmu/CMakeFiles/hyperion_mmu.dir/virtualizer.cc.o" "gcc" "src/mmu/CMakeFiles/hyperion_mmu.dir/virtualizer.cc.o.d"
  "/root/repo/src/mmu/walker.cc" "src/mmu/CMakeFiles/hyperion_mmu.dir/walker.cc.o" "gcc" "src/mmu/CMakeFiles/hyperion_mmu.dir/walker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/hyperion_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/hyperion_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hyperion_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
