file(REMOVE_RECURSE
  "libhyperion_mmu.a"
)
