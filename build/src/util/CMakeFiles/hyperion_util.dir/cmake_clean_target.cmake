file(REMOVE_RECURSE
  "libhyperion_util.a"
)
