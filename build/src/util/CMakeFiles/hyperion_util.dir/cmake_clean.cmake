file(REMOVE_RECURSE
  "CMakeFiles/hyperion_util.dir/byte_stream.cc.o"
  "CMakeFiles/hyperion_util.dir/byte_stream.cc.o.d"
  "CMakeFiles/hyperion_util.dir/crc32.cc.o"
  "CMakeFiles/hyperion_util.dir/crc32.cc.o.d"
  "CMakeFiles/hyperion_util.dir/logging.cc.o"
  "CMakeFiles/hyperion_util.dir/logging.cc.o.d"
  "CMakeFiles/hyperion_util.dir/status.cc.o"
  "CMakeFiles/hyperion_util.dir/status.cc.o.d"
  "libhyperion_util.a"
  "libhyperion_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
