# Empty dependencies file for hyperion_util.
# This may be replaced when dependencies are built.
