file(REMOVE_RECURSE
  "libhyperion_balloon.a"
)
