# Empty compiler generated dependencies file for hyperion_balloon.
# This may be replaced when dependencies are built.
