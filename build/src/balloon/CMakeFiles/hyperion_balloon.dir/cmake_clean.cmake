file(REMOVE_RECURSE
  "CMakeFiles/hyperion_balloon.dir/balloon.cc.o"
  "CMakeFiles/hyperion_balloon.dir/balloon.cc.o.d"
  "libhyperion_balloon.a"
  "libhyperion_balloon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_balloon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
