file(REMOVE_RECURSE
  "CMakeFiles/hyperion_mem.dir/frame_pool.cc.o"
  "CMakeFiles/hyperion_mem.dir/frame_pool.cc.o.d"
  "CMakeFiles/hyperion_mem.dir/guest_memory.cc.o"
  "CMakeFiles/hyperion_mem.dir/guest_memory.cc.o.d"
  "libhyperion_mem.a"
  "libhyperion_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
