
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/frame_pool.cc" "src/mem/CMakeFiles/hyperion_mem.dir/frame_pool.cc.o" "gcc" "src/mem/CMakeFiles/hyperion_mem.dir/frame_pool.cc.o.d"
  "/root/repo/src/mem/guest_memory.cc" "src/mem/CMakeFiles/hyperion_mem.dir/guest_memory.cc.o" "gcc" "src/mem/CMakeFiles/hyperion_mem.dir/guest_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/hyperion_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hyperion_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
