# Empty dependencies file for hyperion_mem.
# This may be replaced when dependencies are built.
