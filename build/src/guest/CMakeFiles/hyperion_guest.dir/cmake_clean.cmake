file(REMOVE_RECURSE
  "CMakeFiles/hyperion_guest.dir/io_programs.cc.o"
  "CMakeFiles/hyperion_guest.dir/io_programs.cc.o.d"
  "CMakeFiles/hyperion_guest.dir/programs.cc.o"
  "CMakeFiles/hyperion_guest.dir/programs.cc.o.d"
  "libhyperion_guest.a"
  "libhyperion_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
