# Empty compiler generated dependencies file for hyperion_guest.
# This may be replaced when dependencies are built.
