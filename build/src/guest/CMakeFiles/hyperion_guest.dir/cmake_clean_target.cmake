file(REMOVE_RECURSE
  "libhyperion_guest.a"
)
