# Empty compiler generated dependencies file for hyperion_cpu.
# This may be replaced when dependencies are built.
