file(REMOVE_RECURSE
  "libhyperion_cpu.a"
)
