file(REMOVE_RECURSE
  "CMakeFiles/hyperion_cpu.dir/dbt.cc.o"
  "CMakeFiles/hyperion_cpu.dir/dbt.cc.o.d"
  "CMakeFiles/hyperion_cpu.dir/interpreter.cc.o"
  "CMakeFiles/hyperion_cpu.dir/interpreter.cc.o.d"
  "libhyperion_cpu.a"
  "libhyperion_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
