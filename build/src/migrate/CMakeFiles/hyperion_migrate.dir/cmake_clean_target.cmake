file(REMOVE_RECURSE
  "libhyperion_migrate.a"
)
