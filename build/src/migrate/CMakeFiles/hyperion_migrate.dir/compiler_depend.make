# Empty compiler generated dependencies file for hyperion_migrate.
# This may be replaced when dependencies are built.
