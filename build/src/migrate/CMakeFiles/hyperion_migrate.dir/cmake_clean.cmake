file(REMOVE_RECURSE
  "CMakeFiles/hyperion_migrate.dir/migrate.cc.o"
  "CMakeFiles/hyperion_migrate.dir/migrate.cc.o.d"
  "libhyperion_migrate.a"
  "libhyperion_migrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_migrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
