file(REMOVE_RECURSE
  "CMakeFiles/hyperion_devices.dir/emulated_blk.cc.o"
  "CMakeFiles/hyperion_devices.dir/emulated_blk.cc.o.d"
  "CMakeFiles/hyperion_devices.dir/emulated_net.cc.o"
  "CMakeFiles/hyperion_devices.dir/emulated_net.cc.o.d"
  "CMakeFiles/hyperion_devices.dir/mmio.cc.o"
  "CMakeFiles/hyperion_devices.dir/mmio.cc.o.d"
  "CMakeFiles/hyperion_devices.dir/pic.cc.o"
  "CMakeFiles/hyperion_devices.dir/pic.cc.o.d"
  "CMakeFiles/hyperion_devices.dir/uart.cc.o"
  "CMakeFiles/hyperion_devices.dir/uart.cc.o.d"
  "libhyperion_devices.a"
  "libhyperion_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperion_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
