file(REMOVE_RECURSE
  "libhyperion_devices.a"
)
