# Empty compiler generated dependencies file for hyperion_devices.
# This may be replaced when dependencies are built.
