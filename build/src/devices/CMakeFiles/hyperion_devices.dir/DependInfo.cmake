
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/devices/emulated_blk.cc" "src/devices/CMakeFiles/hyperion_devices.dir/emulated_blk.cc.o" "gcc" "src/devices/CMakeFiles/hyperion_devices.dir/emulated_blk.cc.o.d"
  "/root/repo/src/devices/emulated_net.cc" "src/devices/CMakeFiles/hyperion_devices.dir/emulated_net.cc.o" "gcc" "src/devices/CMakeFiles/hyperion_devices.dir/emulated_net.cc.o.d"
  "/root/repo/src/devices/mmio.cc" "src/devices/CMakeFiles/hyperion_devices.dir/mmio.cc.o" "gcc" "src/devices/CMakeFiles/hyperion_devices.dir/mmio.cc.o.d"
  "/root/repo/src/devices/pic.cc" "src/devices/CMakeFiles/hyperion_devices.dir/pic.cc.o" "gcc" "src/devices/CMakeFiles/hyperion_devices.dir/pic.cc.o.d"
  "/root/repo/src/devices/uart.cc" "src/devices/CMakeFiles/hyperion_devices.dir/uart.cc.o" "gcc" "src/devices/CMakeFiles/hyperion_devices.dir/uart.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/hyperion_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hyperion_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hyperion_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hyperion_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/hyperion_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/hyperion_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/hyperion_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
