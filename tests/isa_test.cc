// Unit and property tests for the HV32 ISA: encode/decode round trips,
// field limits, disassembly, and architectural helpers.

#include <gtest/gtest.h>

#include "src/isa/hv32.h"
#include "src/util/rng.h"

namespace hyperion::isa {
namespace {

Instruction MakeR(AluOp op, uint8_t rd, uint8_t rs1, uint8_t rs2) {
  Instruction i;
  i.opcode = Opcode::kOp;
  i.funct = static_cast<uint8_t>(op);
  i.rd = rd;
  i.rs1 = rs1;
  i.rs2 = rs2;
  return i;
}

Instruction MakeI(AluOp op, uint8_t rd, uint8_t rs1, int32_t imm) {
  Instruction i;
  i.opcode = Opcode::kOpImm;
  i.funct = static_cast<uint8_t>(op);
  i.rd = rd;
  i.rs1 = rs1;
  i.imm = imm;
  return i;
}

TEST(EncodingTest, RTypeRoundTrip) {
  Instruction in = MakeR(AluOp::kAdd, kA0, kA1, kT0);
  auto word = Encode(in);
  ASSERT_TRUE(word.ok());
  EXPECT_EQ(Decode(*word), in);
}

TEST(EncodingTest, ITypeRoundTripNegativeImm) {
  Instruction in = MakeI(AluOp::kAdd, kSp, kSp, -16);
  auto word = Encode(in);
  ASSERT_TRUE(word.ok());
  EXPECT_EQ(Decode(*word), in);
}

TEST(EncodingTest, ImmediateLimits) {
  EXPECT_TRUE(Encode(MakeI(AluOp::kAdd, kA0, kA0, 8191)).ok());
  EXPECT_TRUE(Encode(MakeI(AluOp::kAdd, kA0, kA0, -8192)).ok());
  EXPECT_FALSE(Encode(MakeI(AluOp::kAdd, kA0, kA0, 8192)).ok());
  EXPECT_FALSE(Encode(MakeI(AluOp::kAdd, kA0, kA0, -8193)).ok());
}

TEST(EncodingTest, LuiRoundTrip) {
  Instruction in;
  in.opcode = Opcode::kLui;
  in.rd = kT1;
  in.imm = static_cast<int32_t>(0xABCD0000u & ~((1u << 14) - 1));
  auto word = Encode(in);
  ASSERT_TRUE(word.ok());
  EXPECT_EQ(Decode(*word), in);
}

TEST(EncodingTest, LuiRejectsUnalignedImmediate) {
  Instruction in;
  in.opcode = Opcode::kLui;
  in.rd = kT1;
  in.imm = 0x1234;  // low 14 bits set
  EXPECT_FALSE(Encode(in).ok());
}

TEST(EncodingTest, JalRange) {
  Instruction in;
  in.opcode = Opcode::kJal;
  in.rd = kRa;
  in.imm = (1 << 17) * 4 - 4;  // max positive word offset
  EXPECT_TRUE(Encode(in).ok());
  in.imm = -(1 << 17) * 4;  // max negative
  EXPECT_TRUE(Encode(in).ok());
  in.imm = (1 << 17) * 4;  // one past
  EXPECT_FALSE(Encode(in).ok());
  in.imm = 6;  // unaligned
  EXPECT_FALSE(Encode(in).ok());
}

TEST(EncodingTest, BranchRoundTrip) {
  Instruction in;
  in.opcode = Opcode::kBranch;
  in.funct = static_cast<uint8_t>(BranchCond::kLtu);
  in.rs1 = kA0;
  in.rs2 = kA1;
  in.imm = -64;
  auto word = Encode(in);
  ASSERT_TRUE(word.ok());
  EXPECT_EQ(Decode(*word), in);
}

TEST(EncodingTest, BadBranchCondDecodesIllegal) {
  Instruction in;
  in.opcode = Opcode::kBranch;
  in.funct = 7;  // only 0..5 defined
  EXPECT_FALSE(Encode(in).ok());
  // Hand-craft the word with cond=7 in the rd slot.
  uint32_t word = (6u << 26) | (7u << 22);
  EXPECT_EQ(Decode(word).opcode, Opcode::kIllegal);
}

TEST(EncodingTest, CsrRoundTrip) {
  Instruction in;
  in.opcode = Opcode::kCsrrw;
  in.rd = kA0;
  in.rs1 = kA1;
  in.imm = static_cast<int32_t>(Csr::kPtbr);
  auto word = Encode(in);
  ASSERT_TRUE(word.ok());
  EXPECT_EQ(Decode(*word), in);
}

TEST(EncodingTest, LoadStoreRoundTrip) {
  for (Opcode op : {Opcode::kLw, Opcode::kLh, Opcode::kLhu, Opcode::kLb, Opcode::kLbu,
                    Opcode::kSw, Opcode::kSh, Opcode::kSb}) {
    Instruction in;
    in.opcode = op;
    in.rd = kA2;
    in.rs1 = kSp;
    in.imm = -4;
    auto word = Encode(in);
    ASSERT_TRUE(word.ok());
    EXPECT_EQ(Decode(*word), in) << Disassemble(in);
  }
}

TEST(EncodingTest, SystemOpsRoundTrip) {
  for (Opcode op : {Opcode::kEcall, Opcode::kEbreak, Opcode::kSret, Opcode::kWfi,
                    Opcode::kHcall, Opcode::kSfence, Opcode::kHalt}) {
    Instruction in;
    in.opcode = op;
    auto word = Encode(in);
    ASSERT_TRUE(word.ok());
    EXPECT_EQ(Decode(*word).opcode, op);
  }
}

TEST(EncodingTest, UnknownOpcodeDecodesIllegal) {
  uint32_t word = 63u << 26;
  EXPECT_EQ(Decode(word).opcode, Opcode::kIllegal);
  word = 40u << 26;
  EXPECT_EQ(Decode(word).opcode, Opcode::kIllegal);
}

TEST(EncodingTest, EncodeRejectsIllegal) {
  Instruction in;
  in.opcode = Opcode::kIllegal;
  EXPECT_FALSE(Encode(in).ok());
}

// Property: every word that decodes to a legal instruction re-encodes to a
// word that decodes identically (decode is a left inverse of encode on the
// decoded form).
TEST(EncodingTest, PropertyDecodeEncodeFixpoint) {
  Xoshiro256 rng(42);
  int legal = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    uint32_t word = static_cast<uint32_t>(rng.Next());
    Instruction d = Decode(word);
    if (d.opcode == Opcode::kIllegal) {
      continue;
    }
    ++legal;
    auto re = Encode(d);
    ASSERT_TRUE(re.ok()) << Disassemble(d) << " word=0x" << std::hex << word;
    EXPECT_EQ(Decode(*re), d) << Disassemble(d);
  }
  EXPECT_GT(legal, 1000);  // the opcode space is dense enough to exercise this
}

TEST(DisasmTest, RendersCanonicalForms) {
  EXPECT_EQ(Disassemble(MakeR(AluOp::kAdd, kA0, kA1, kT0)), "add a0, a1, t0");
  EXPECT_EQ(Disassemble(MakeI(AluOp::kXor, kA0, kA0, -1)), "xori a0, a0, -0x1");

  Instruction lw;
  lw.opcode = Opcode::kLw;
  lw.rd = kA0;
  lw.rs1 = kSp;
  lw.imm = 8;
  EXPECT_EQ(Disassemble(lw), "lw a0, 0x8(sp)");

  Instruction csr;
  csr.opcode = Opcode::kCsrrs;
  csr.rd = kA0;
  csr.rs1 = kZero;
  csr.imm = static_cast<int32_t>(Csr::kStatus);
  EXPECT_EQ(Disassemble(csr), "csrrs a0, status, zero");
}

TEST(DisasmTest, GprNames) {
  EXPECT_EQ(GprName(0), "zero");
  EXPECT_EQ(GprName(1), "ra");
  EXPECT_EQ(GprName(2), "sp");
  EXPECT_EQ(GprName(4), "a0");
  EXPECT_EQ(GprName(15), "s3");
}

TEST(ArchTest, VaSplitHelpers) {
  uint32_t va = 0xABCDE123;
  EXPECT_EQ(VaL1Index(va), 0xABCDE123u >> 22);
  EXPECT_EQ(VaL2Index(va), (0xABCDE123u >> 12) & 0x3FF);
  EXPECT_EQ(VaPageOffset(va), 0x123u);
  EXPECT_EQ(PageBase(va), 0xABCDE000u);
  EXPECT_EQ(PageNumber(va), 0xABCDEu);
}

TEST(ArchTest, PteHelpers) {
  uint32_t pte = Pte::Make(0x1234, Pte::kValid | Pte::kRead | Pte::kWrite);
  EXPECT_TRUE(Pte::IsValid(pte));
  EXPECT_TRUE(Pte::IsLeaf(pte));
  EXPECT_EQ(Pte::Ppn(pte), 0x1234u);
  uint32_t nonleaf = Pte::Make(0x55, Pte::kValid);
  EXPECT_TRUE(Pte::IsValid(nonleaf));
  EXPECT_FALSE(Pte::IsLeaf(nonleaf));
}

TEST(ArchTest, MmioRange) {
  EXPECT_FALSE(IsMmio(0));
  EXPECT_FALSE(IsMmio(0xEFFFFFFF));
  EXPECT_TRUE(IsMmio(kMmioBase));
  EXPECT_TRUE(IsMmio(0xF8000000));
  EXPECT_FALSE(IsMmio(0xFFFFF000));
}

TEST(ArchTest, PrivilegedOpcodes) {
  EXPECT_TRUE(IsPrivileged(Opcode::kSret));
  EXPECT_TRUE(IsPrivileged(Opcode::kWfi));
  EXPECT_TRUE(IsPrivileged(Opcode::kSfence));
  EXPECT_TRUE(IsPrivileged(Opcode::kHalt));
  EXPECT_TRUE(IsPrivileged(Opcode::kHcall));
  EXPECT_FALSE(IsPrivileged(Opcode::kEcall));
  EXPECT_FALSE(IsPrivileged(Opcode::kAuipc));
}

TEST(ArchTest, InterruptCauses) {
  EXPECT_TRUE(IsInterruptCause(TrapCause::kTimerInterrupt));
  EXPECT_TRUE(IsInterruptCause(TrapCause::kExternalInterrupt));
  EXPECT_FALSE(IsInterruptCause(TrapCause::kLoadPageFault));
}

}  // namespace
}  // namespace hyperion::isa
