// Differential fuzzing: random guest programs executed on both engines
// (interpreter, DBT) and both virtualizers must leave identical
// architectural state. Programs are generated to terminate by construction:
// only forward control flow, ending in HALT.

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "src/core/host.h"
#include "src/guest/programs.h"
#include "src/util/crc32.h"
#include "src/util/rng.h"
#include "tests/guest_harness.h"

namespace hyperion {
namespace {

using core::Host;
using core::HostConfig;
using core::VmConfig;
using core::VmState;
using isa::AluOp;
using isa::Instruction;
using isa::Opcode;

// Generates a random terminating program of `n` instructions.
//  - ALU ops over all registers
//  - loads/stores confined to a scratch window via masked addresses: the
//    generator emits `andi` to clamp a base register before each access
//  - forward-only branches and jumps
// Register 15 (s3) is reserved as the scratch-window base and is never a
// destination, so memory accesses stay inside [0x9000, 0xB000).
constexpr uint8_t kScratchBase = 15;
constexpr uint32_t kScratchAddr = 0x9000;

std::vector<uint32_t> RandomProgram(Xoshiro256& rng, size_t n) {
  std::vector<uint32_t> words;

  auto push = [&words](const Instruction& in) {
    auto w = isa::Encode(in);
    if (w.ok()) {
      words.push_back(*w);
    }
  };

  // Destinations exclude the reserved base register.
  auto reg = [&rng]() -> uint8_t { return static_cast<uint8_t>(rng.NextBelow(15)); };
  auto src = [&rng]() -> uint8_t { return static_cast<uint8_t>(rng.NextBelow(16)); };

  // s3 = kScratchAddr (0x8000 via lui + 0x1000 via addi).
  {
    Instruction lui;
    lui.opcode = Opcode::kLui;
    lui.rd = kScratchBase;
    lui.imm = 0x8000;
    push(lui);
    Instruction addi;
    addi.opcode = Opcode::kOpImm;
    addi.funct = static_cast<uint8_t>(AluOp::kAdd);
    addi.rd = kScratchBase;
    addi.rs1 = kScratchBase;
    addi.imm = static_cast<int32_t>(kScratchAddr) - 0x8000;
    push(addi);
  }

  // Seed a few registers with random values.
  for (int i = 0; i < 6; ++i) {
    Instruction lui;
    lui.opcode = Opcode::kLui;
    lui.rd = reg();
    lui.imm = static_cast<int32_t>((rng.Next() & 0x3FFFF) << 14);
    push(lui);
    Instruction addi;
    addi.opcode = Opcode::kOpImm;
    addi.funct = static_cast<uint8_t>(AluOp::kAdd);
    addi.rd = lui.rd;
    addi.rs1 = lui.rd;
    addi.imm = static_cast<int32_t>(rng.NextBelow(0x2000)) - 0x1000;
    push(addi);
  }

  while (words.size() < n) {
    switch (rng.NextBelow(10)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // R-type ALU
        Instruction in;
        in.opcode = Opcode::kOp;
        in.funct = static_cast<uint8_t>(rng.NextBelow(16));
        in.rd = reg();
        in.rs1 = reg();
        in.rs2 = reg();
        push(in);
        break;
      }
      case 4:
      case 5: {  // I-type ALU
        Instruction in;
        in.opcode = Opcode::kOpImm;
        in.funct = static_cast<uint8_t>(rng.NextBelow(16));
        in.rd = reg();
        in.rs1 = reg();
        in.imm = static_cast<int32_t>(rng.NextBelow(0x2000)) - 0x1000;
        push(in);
        break;
      }
      case 6:
      case 7: {  // memory access through the reserved scratch base
        static constexpr Opcode kMemOps[] = {Opcode::kLw, Opcode::kLh,  Opcode::kLhu,
                                             Opcode::kLb, Opcode::kLbu, Opcode::kSw,
                                             Opcode::kSh, Opcode::kSb};
        Instruction mem;
        mem.opcode = kMemOps[rng.NextBelow(8)];
        uint32_t align = 1;
        if (mem.opcode == Opcode::kLw || mem.opcode == Opcode::kSw) {
          align = 4;
        } else if (mem.opcode == Opcode::kLh || mem.opcode == Opcode::kLhu ||
                   mem.opcode == Opcode::kSh) {
          align = 2;
        }
        mem.rd = mem.opcode == Opcode::kSw || mem.opcode == Opcode::kSh ||
                         mem.opcode == Opcode::kSb
                     ? src()   // store data may come from any register
                     : reg();  // load destinations avoid the base
        mem.rs1 = kScratchBase;
        mem.imm = static_cast<int32_t>(rng.NextBelow(0x2000 / align)) * static_cast<int32_t>(align);
        push(mem);
        break;
      }
      case 8: {  // forward branch
        Instruction in;
        in.opcode = Opcode::kBranch;
        in.funct = static_cast<uint8_t>(rng.NextBelow(6));
        in.rs1 = src();
        in.rs2 = src();
        in.imm = static_cast<int32_t>(1 + rng.NextBelow(8)) * 4;  // forward only
        push(in);
        break;
      }
      default: {  // forward jump with link
        Instruction in;
        in.opcode = Opcode::kJal;
        in.rd = reg();
        in.imm = static_cast<int32_t>(1 + rng.NextBelow(8)) * 4;
        push(in);
        break;
      }
    }
  }
  // Branch/jump targets may point past the buffer: pad a landing zone of
  // NOPs, then HALT.
  Instruction nop;
  nop.opcode = Opcode::kOpImm;
  nop.funct = static_cast<uint8_t>(AluOp::kAdd);
  for (int i = 0; i < 9; ++i) {
    push(nop);
  }
  Instruction halt;
  halt.opcode = Opcode::kHalt;
  push(halt);
  return words;
}

// The DBT's tier axis: tier-1 only (superblock traces, no optimizer) versus
// tier-2 with a forced-low promotion threshold, so hot loops spend nearly
// all their iterations inside optimized units. Differential equality across
// this axis is what proves the optimizer preserves architectural semantics.
cpu::DbtOptions Tier1Only() {
  cpu::DbtOptions o;
  o.enable_tier2 = false;
  return o;
}

cpu::DbtOptions Tier2Hot() {
  cpu::DbtOptions o;
  o.tier2_threshold = 2;
  return o;
}

// Like RandomProgram, but wraps the random body in a counted hot loop so the
// DBT forms traces and (on the tier-2 axis) optimized units over it.
// Register 14 (s2) is additionally reserved as the loop counter; a pad of
// NOPs before the loop latch keeps the body's forward jumps (<= 8 instrs)
// from skipping the decrement.
std::vector<uint32_t> RandomLoopedProgram(Xoshiro256& rng, size_t n) {
  constexpr uint8_t kLoopCounter = 14;
  std::vector<uint32_t> words = RandomProgram(rng, n);
  // Strip RandomProgram's NOP pad + HALT tail; rebuild around the loop.
  words.resize(words.size() - 10);
  std::vector<uint32_t> out;
  auto push = [&out](const Instruction& in) {
    auto w = isa::Encode(in);
    if (w.ok()) {
      out.push_back(*w);
    }
  };
  Instruction li_cnt;
  li_cnt.opcode = Opcode::kOpImm;
  li_cnt.funct = static_cast<uint8_t>(AluOp::kAdd);
  li_cnt.rd = kLoopCounter;
  li_cnt.imm = 40;  // iterations: far past heat + tier-2 thresholds
  push(li_cnt);
  const size_t body_start = out.size();
  // The body: random code with rd != loop counter (and != scratch base).
  for (uint32_t w : words) {
    Instruction in = isa::Decode(w);
    bool writes = in.opcode == Opcode::kOp || in.opcode == Opcode::kOpImm ||
                  in.opcode == Opcode::kLui || in.opcode == Opcode::kJal ||
                  in.opcode == Opcode::kLw || in.opcode == Opcode::kLh ||
                  in.opcode == Opcode::kLhu || in.opcode == Opcode::kLb ||
                  in.opcode == Opcode::kLbu;
    if (writes && in.rd == kLoopCounter) {
      in.rd = 4;  // retarget to a0: keeps the instruction, guards the counter
    }
    auto rw = isa::Encode(in);
    if (rw.ok()) {
      out.push_back(*rw);
    }
  }
  Instruction nop;
  nop.opcode = Opcode::kOpImm;
  nop.funct = static_cast<uint8_t>(AluOp::kAdd);
  for (int i = 0; i < 8; ++i) {
    push(nop);  // landing zone: forward jumps resolve before the latch
  }
  Instruction dec;
  dec.opcode = Opcode::kOpImm;
  dec.funct = static_cast<uint8_t>(AluOp::kAdd);
  dec.rd = kLoopCounter;
  dec.rs1 = kLoopCounter;
  dec.imm = -1;
  push(dec);
  Instruction latch;
  latch.opcode = Opcode::kBranch;
  latch.funct = static_cast<uint8_t>(isa::BranchCond::kNe);
  latch.rs1 = kLoopCounter;
  latch.rs2 = 0;
  latch.imm = -static_cast<int32_t>(4 * (out.size() - body_start));
  push(latch);
  for (int i = 0; i < 9; ++i) {
    push(nop);
  }
  Instruction halt;
  halt.opcode = Opcode::kHalt;
  push(halt);
  return out;
}

struct MachineSnapshot {
  std::array<uint32_t, 16> regs;
  uint32_t pc;
  uint64_t instret;
  uint32_t mem_crc;
};

MachineSnapshot Execute(const std::vector<uint32_t>& words, mmu::PagingMode paging,
                        cpu::EngineKind engine, cpu::DbtOptions dbt = {},
                        cpu::VcpuStats* stats_out = nullptr) {
  testing::TestMachine m(1u << 20, paging, engine, cpu::VirtMode::kHardwareAssist,
                         /*dbt_max_blocks=*/0, dbt);
  // Load raw words at the reset pc.
  uint32_t addr = isa::kResetPc;
  for (uint32_t w : words) {
    EXPECT_TRUE(m.memory().WriteU32(addr, w).ok());
    addr += 4;
  }
  m.ctx().state.pc = isa::kResetPc;
  auto r = m.Run(5'000'000);
  EXPECT_EQ(r.reason, cpu::ExitReason::kHalt);

  MachineSnapshot snap;
  snap.regs = m.ctx().state.regs;
  snap.pc = m.ctx().state.pc;
  snap.instret = m.ctx().state.instret;
  // Checksum the scratch window the program may have written.
  std::vector<uint8_t> scratch(0x2000);
  EXPECT_TRUE(m.memory().Read(kScratchAddr, scratch.data(), scratch.size()).ok());
  snap.mem_crc = Crc32(scratch.data(), scratch.size());
  if (stats_out != nullptr) {
    *stats_out = m.ctx().stats;
  }
  return snap;
}

TEST(FuzzDiffTest, EnginesAgreeOnRandomPrograms) {
  Xoshiro256 rng(0xF00DF00D);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<uint32_t> words = RandomProgram(rng, 80 + rng.NextBelow(200));
    MachineSnapshot interp =
        Execute(words, mmu::PagingMode::kNested, cpu::EngineKind::kInterpreter);
    MachineSnapshot dbt = Execute(words, mmu::PagingMode::kNested, cpu::EngineKind::kDbt);
    ASSERT_EQ(interp.regs, dbt.regs) << "trial " << trial;
    ASSERT_EQ(interp.pc, dbt.pc) << "trial " << trial;
    ASSERT_EQ(interp.instret, dbt.instret) << "trial " << trial;
    ASSERT_EQ(interp.mem_crc, dbt.mem_crc) << "trial " << trial;
  }
}

// The tier axis over looped random programs: the interpreter, the tier-1-only
// DBT, and the tier-2 DBT with a forced-low promotion threshold must agree on
// every architectural bit -- including instret, since the optimizer's folded
// and eliminated micro-ops must still retire their original instructions.
// Non-vacuity: the counted loops are hot enough that tier-2 units actually
// form and execute across the trial set.
TEST(FuzzDiffTest, TiersAgreeOnRandomLoopedPrograms) {
  Xoshiro256 rng(0x7EE27EE2);
  uint64_t total_promotions = 0;
  uint64_t total_tier2_execs = 0;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<uint32_t> words = RandomLoopedProgram(rng, 60 + rng.NextBelow(120));
    MachineSnapshot interp =
        Execute(words, mmu::PagingMode::kNested, cpu::EngineKind::kInterpreter);
    MachineSnapshot tier1 =
        Execute(words, mmu::PagingMode::kNested, cpu::EngineKind::kDbt, Tier1Only());
    cpu::VcpuStats stats;
    MachineSnapshot tier2 = Execute(words, mmu::PagingMode::kNested, cpu::EngineKind::kDbt,
                                    Tier2Hot(), &stats);
    ASSERT_EQ(interp.regs, tier1.regs) << "trial " << trial;
    ASSERT_EQ(interp.pc, tier1.pc) << "trial " << trial;
    ASSERT_EQ(interp.instret, tier1.instret) << "trial " << trial;
    ASSERT_EQ(interp.mem_crc, tier1.mem_crc) << "trial " << trial;
    ASSERT_EQ(interp.regs, tier2.regs) << "trial " << trial;
    ASSERT_EQ(interp.pc, tier2.pc) << "trial " << trial;
    ASSERT_EQ(interp.instret, tier2.instret) << "trial " << trial;
    ASSERT_EQ(interp.mem_crc, tier2.mem_crc) << "trial " << trial;
    total_promotions += stats.tier2_promotions;
    total_tier2_execs += stats.tier2_executions;
  }
  EXPECT_GT(total_promotions, 0u);
  EXPECT_GT(total_tier2_execs, 0u);
}

TEST(FuzzDiffTest, VirtualizersAgreeOnRandomPrograms) {
  Xoshiro256 rng(0xCAFE1234);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<uint32_t> words = RandomProgram(rng, 80 + rng.NextBelow(150));
    MachineSnapshot shadow =
        Execute(words, mmu::PagingMode::kShadow, cpu::EngineKind::kInterpreter);
    MachineSnapshot nested =
        Execute(words, mmu::PagingMode::kNested, cpu::EngineKind::kInterpreter);
    ASSERT_EQ(shadow.regs, nested.regs) << "trial " << trial;
    ASSERT_EQ(shadow.mem_crc, nested.mem_crc) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// Adversarial differential tests targeting the DBT fast paths: block
// chaining, hot-trace superblocks, and the per-vCPU translation fast path.
// Each runs an assembled program under both engines and requires identical
// architectural state.
// ---------------------------------------------------------------------------

MachineSnapshot ExecuteAsm(const std::string& source, mmu::PagingMode paging,
                           cpu::EngineKind engine, uint64_t max_cycles = 100'000'000,
                           cpu::DbtOptions dbt = {}) {
  testing::TestMachine m(8u << 20, paging, engine, cpu::VirtMode::kHardwareAssist,
                         /*dbt_max_blocks=*/0, dbt);
  m.Load(source);
  auto r = m.Run(max_cycles);
  EXPECT_EQ(r.reason, cpu::ExitReason::kHalt) << "engine " << static_cast<int>(engine);

  MachineSnapshot snap;
  snap.regs = m.ctx().state.regs;
  snap.pc = m.ctx().state.pc;
  snap.instret = m.ctx().state.instret;
  std::vector<uint8_t> scratch(0x2000);
  EXPECT_TRUE(m.memory().Read(kScratchAddr, scratch.data(), scratch.size()).ok());
  snap.mem_crc = Crc32(scratch.data(), scratch.size());
  return snap;
}

TEST(FuzzDiffAdversarialTest, SmcRewritesChainedSuccessor) {
  // The caller loop chains to (and eventually splices a trace through) the
  // victim function, then keeps rewriting the victim's first instruction
  // between calls. A DBT that follows a stale chain link or trace would add
  // the wrong increment; the interpreter is the oracle, down to instret.
  const char* program = R"(
_start:
    li sp, 0x40000
    li s0, 200
    li a0, 0
    la s1, victim
    la s2, patch_a
    la s3, patch_b
loop:
    call victim
    andi t0, s0, 1
    beqz t0, even
    lw t1, 0(s3)
    j patch
even:
    lw t1, 0(s2)
patch:
    sw t1, 0(s1)          ; rewrite victim's first instruction
    addi s0, s0, -1
    bnez s0, loop
    halt
victim:
    addi a0, a0, 1
    ret
patch_a:
    addi a0, a0, 1
patch_b:
    addi a0, a0, 2
  )";
  MachineSnapshot interp =
      ExecuteAsm(program, mmu::PagingMode::kNested, cpu::EngineKind::kInterpreter);
  MachineSnapshot dbt = ExecuteAsm(program, mmu::PagingMode::kNested, cpu::EngineKind::kDbt);
  EXPECT_EQ(interp.regs, dbt.regs);
  EXPECT_EQ(interp.pc, dbt.pc);
  EXPECT_EQ(interp.instret, dbt.instret);
  EXPECT_GT(dbt.regs[isa::kA0], 200u);  // both increments actually landed
  // SMC under tier-2: the forced-low threshold promotes the caller loop (and
  // the victim) before the first rewrite, so the page-write guard must tear
  // down an optimized unit, not just a chained block.
  MachineSnapshot tier2 = ExecuteAsm(program, mmu::PagingMode::kNested,
                                     cpu::EngineKind::kDbt, 100'000'000, Tier2Hot());
  EXPECT_EQ(interp.regs, tier2.regs);
  EXPECT_EQ(interp.pc, tier2.pc);
  EXPECT_EQ(interp.instret, tier2.instret);
}

TEST(FuzzDiffAdversarialTest, SfenceAndPtbrSwitchLandMidTrace) {
  // A hot inner loop (which the DBT promotes to a superblock) is repeatedly
  // interrupted by SFENCE and a PTBR rewrite under active paging. Mapping
  // epochs must invalidate lazily without perturbing architectural state.
  const char* program = R"(
.org 0x1000
.equ PT_ROOT, 0x80000
_start:
    li t0, PT_ROOT
    li t1, 0x7F           ; identity 4MiB superpage V|R|W|X|U|A|D
    sw t1, 0(t0)
    li t1, 0x80
    csrw ptbr, t1
    csrr t1, status
    ori t1, t1, 0x10      ; STATUS.PG
    csrw status, t1
    li s0, 30
    li a0, 0
outer:
    li t0, 0x9000
    li s1, 400
inner:
    sw s1, 0(t0)
    lw t1, 0(t0)
    add a0, a0, t1
    addi s1, s1, -1
    bnez s1, inner
    sfence                ; cut chains, bump the mapping epoch mid-trace
    csrr t2, ptbr
    csrw ptbr, t2         ; address-space switch to the same root
    addi s0, s0, -1
    bnez s0, outer
    halt
  )";
  MachineSnapshot interp =
      ExecuteAsm(program, mmu::PagingMode::kNested, cpu::EngineKind::kInterpreter);
  MachineSnapshot dbt = ExecuteAsm(program, mmu::PagingMode::kNested, cpu::EngineKind::kDbt);
  EXPECT_EQ(interp.regs, dbt.regs);
  EXPECT_EQ(interp.pc, dbt.pc);
  EXPECT_EQ(interp.instret, dbt.instret);
  EXPECT_EQ(interp.mem_crc, dbt.mem_crc);
  MachineSnapshot shadow =
      ExecuteAsm(program, mmu::PagingMode::kShadow, cpu::EngineKind::kDbt);
  EXPECT_EQ(interp.regs, shadow.regs);
  EXPECT_EQ(interp.mem_crc, shadow.mem_crc);
  // Mid-trace sfence under tier-2: the inner loop promotes within the first
  // two episodes, so every later sfence + ptbr rewrite lands against a live
  // optimized unit and must revalidate (or kill) it without state skew.
  MachineSnapshot tier2 = ExecuteAsm(program, mmu::PagingMode::kNested,
                                     cpu::EngineKind::kDbt, 100'000'000, Tier2Hot());
  EXPECT_EQ(interp.regs, tier2.regs);
  EXPECT_EQ(interp.pc, tier2.pc);
  EXPECT_EQ(interp.instret, tier2.instret);
  EXPECT_EQ(interp.mem_crc, tier2.mem_crc);
  MachineSnapshot tier1 = ExecuteAsm(program, mmu::PagingMode::kNested,
                                     cpu::EngineKind::kDbt, 100'000'000, Tier1Only());
  EXPECT_EQ(interp.regs, tier1.regs);
  EXPECT_EQ(interp.instret, tier1.instret);
}

TEST(FuzzDiffAdversarialTest, InterruptsAssertedBetweenChainedBlocks) {
  // Timer interrupts preempt a chained/traced spin loop. The engines take
  // the interrupt at different cycle counts (translation costs differ), so
  // instret is NOT compared; every architectural register and all memory
  // must still converge because the handler's work is count-based: it fires
  // exactly five times, then disarms and releases the spinner via a flag.
  const char* program = R"(
_start:
    la t0, handler
    csrw tvec, t0
    li t1, 400
    csrw timecmp, t1
    csrr t1, status
    ori t1, t1, 1         ; STATUS.IE
    csrw status, t1
    li s0, 0x9000         ; count
    li s1, 0x9004         ; flag
spin:
    lw t0, 0(s1)
    beqz t0, spin
    lw a0, 0(s0)          ; a0 = final count
    halt
handler:
    li t2, 0x9000
    lw t1, 0(t2)
    addi t1, t1, 1
    sw t1, 0(t2)
    li t3, 5
    blt t1, t3, rearm
    li t3, 1
    sw t3, 4(t2)          ; release the spinner
    li t3, 0
    csrw timecmp, t3      ; disarm
    sret
rearm:
    li t3, 400
    csrw timecmp, t3
    sret
  )";
  MachineSnapshot interp =
      ExecuteAsm(program, mmu::PagingMode::kNested, cpu::EngineKind::kInterpreter);
  MachineSnapshot dbt = ExecuteAsm(program, mmu::PagingMode::kNested, cpu::EngineKind::kDbt);
  EXPECT_EQ(interp.regs, dbt.regs);
  EXPECT_EQ(interp.pc, dbt.pc);
  EXPECT_EQ(interp.mem_crc, dbt.mem_crc);
  EXPECT_EQ(dbt.regs[isa::kA0], 5u);
  // Timer interrupts must also preempt a tier-2 unit at its seams: the spin
  // loop promotes almost immediately at the forced-low threshold, so every
  // handler entry exits an optimized unit mid-flight.
  MachineSnapshot tier2 = ExecuteAsm(program, mmu::PagingMode::kNested,
                                     cpu::EngineKind::kDbt, 100'000'000, Tier2Hot());
  EXPECT_EQ(interp.regs, tier2.regs);
  EXPECT_EQ(interp.pc, tier2.pc);
  EXPECT_EQ(interp.mem_crc, tier2.mem_crc);
  EXPECT_EQ(tier2.regs[isa::kA0], 5u);
}

// ---------------------------------------------------------------------------
// SMP differential fuzzing: seeded random compute blocks spliced into a
// multi-vCPU skeleton that boots paging on every hart, runs TLB-shootdown
// rounds (so IPIs land while workers are mid-block — mid-trace for the DBT),
// and publishes per-hart results through an amoadd accumulator. For a fixed
// (seed, vcpus) the final per-vCPU register files, RAM regions, and IPI /
// shootdown counters must be identical across engine × paging × virt.
//
// Determinism notes baked into the skeleton:
//  * instret is NOT compared (engines take interrupts at different cycle
//    counts), and neither are worker pcs (a worker stopped by vCPU 0's
//    shutdown may sit on `halt` or one instruction before it).
//  * random blocks touch only a0-a3 plus loads/stores through s0 (a private
//    per-hart scratch page) and AMO addresses in t1; the IPI handler
//    saves/restores t0-t3, so a block is transparent to interrupt delivery.
//  * each hart zeroes its handler save area before raising its done flag, so
//    no timing-dependent bytes survive into the digested RAM.
// ---------------------------------------------------------------------------

// One straight-line compute block over a0-a3: ALU ops, loads/stores through
// s0 (per-hart scratch page), and amoswap/amoadd through t1. Ends in `ret`.
std::string RandomSmpBlock(Xoshiro256& rng, size_t n) {
  std::ostringstream out;
  out << "run_block:\n";
  auto emit = [&out](const Instruction& in) {
    auto w = isa::Encode(in);
    if (w.ok()) {
      out << "    .word " << *w << "\n";
    }
  };
  auto areg = [&rng]() -> uint8_t { return static_cast<uint8_t>(4 + rng.NextBelow(4)); };
  for (size_t i = 0; i < n; ++i) {
    switch (rng.NextBelow(8)) {
      case 0:
      case 1:
      case 2: {  // R-type ALU
        Instruction in;
        in.opcode = Opcode::kOp;
        in.funct = static_cast<uint8_t>(rng.NextBelow(16));
        in.rd = areg();
        in.rs1 = areg();
        in.rs2 = areg();
        emit(in);
        break;
      }
      case 3:
      case 4: {  // I-type ALU
        Instruction in;
        in.opcode = Opcode::kOpImm;
        in.funct = static_cast<uint8_t>(rng.NextBelow(16));
        in.rd = areg();
        in.rs1 = areg();
        in.imm = static_cast<int32_t>(rng.NextBelow(0x2000)) - 0x1000;
        emit(in);
        break;
      }
      case 5:
      case 6: {  // word load/store through the private scratch base
        Instruction in;
        in.opcode = rng.NextBelow(2) ? Opcode::kLw : Opcode::kSw;
        in.rd = areg();
        in.rs1 = 12;  // s0
        in.imm = static_cast<int32_t>(rng.NextBelow(0x400)) * 4;
        emit(in);
        break;
      }
      default: {  // AMO on a private scratch word: addi t1, s0, off; amo* a, t1, a
        Instruction addr;
        addr.opcode = Opcode::kOpImm;
        addr.funct = static_cast<uint8_t>(AluOp::kAdd);
        addr.rd = 9;  // t1
        addr.rs1 = 12;
        addr.imm = static_cast<int32_t>(rng.NextBelow(0x400)) * 4;
        emit(addr);
        Instruction amo;
        amo.opcode = rng.NextBelow(2) ? Opcode::kAmoSwap : Opcode::kAmoAdd;
        amo.rd = areg();
        amo.rs1 = 9;
        amo.rs2 = areg();
        emit(amo);
        break;
      }
    }
  }
  out << "    ret\n";
  return out.str();
}

// The SMP skeleton with the seeded block spliced in. Progress is a pass/fail
// flag (1 = every hart observed the final remapped probe value), not a sum,
// so the host-side assertion is seed-independent.
std::string SmpFuzzProgram(uint64_t seed, uint32_t vcpus) {
  Xoshiro256 rng(seed);
  constexpr uint32_t kRounds = 3;
  const uint32_t sibling_mask = ((1u << vcpus) - 1u) & ~1u;
  std::string block = RandomSmpBlock(rng, 24 + rng.NextBelow(24));
  // Per-hart initial a0-a3: base + hartid * stride, both seeded.
  uint32_t base[4];
  uint32_t stride[4];
  for (int i = 0; i < 4; ++i) {
    base[i] = static_cast<uint32_t>(rng.Next());
    stride[i] = static_cast<uint32_t>(rng.Next());
  }
  std::ostringstream out;
  out << R"(.org 0x1000
.equ HC_SHUTDOWN, 4
.equ HC_START_VCPU, 10
.equ PIC_BASE, 0xF0001000
.equ PT_ROOT, 0x80000
.equ VA_PAGE, 0x400000
    j _start
.align 4096
progress:
    .word 0
bar_count:
    .word 0
bar_sense:
    .word 0
rounds_done:
    .word 0
shared:
    .word 0
acks:
    .space 64
results:
    .space 64
done_flags:
    .space 64
save:
    .space 256
.align 4096
_start:
    li t0, PT_ROOT
    li t1, 0x7F              ; identity 4MiB superpage V|R|W|X|U|A|D
    sw t1, 0(t0)
    li t1, 0xF0000067        ; MMIO window superpage V|R|W|A|D
    li t2, PT_ROOT + 960*4
    sw t1, 0(t2)
    li t1, 0x82001           ; L1[1] -> L2 table at page 0x82
    li t2, PT_ROOT + 4
    sw t1, 0(t2)
    li t0, 0x82000
    li t1, 0x30006F          ; VA_PAGE -> pa 0x300000 initially
    sw t1, 0(t0)
    li t0, 0x300000
    li t1, 0xB0B0
    sw t1, 0(t0)
    li s0, 1
start_loop:
    li t0, )" << vcpus << R"(
    bgeu s0, t0, boot_done
    li a0, HC_START_VCPU
    mv a1, s0
    la a2, secondary
    mv a3, s0
    hcall
    addi s0, s0, 1
    j start_loop
boot_done:
    li a0, 0
secondary:
    mv s1, a0                ; s1 = hartid
    li t1, 0x80
    csrw ptbr, t1
    la t0, ipi_handler
    csrw tvec, t0
    la gp, save
    slli t0, s1, 4
    add gp, gp, t0
    li s3, 0                 ; barrier sense
    li s0, 0x200000          ; s0 = private scratch page
    slli t0, s1, 12
    add s0, s0, t0
)";
  for (int i = 0; i < 4; ++i) {
    out << "    li t0, " << stride[i] << "\n"
        << "    mul t0, t0, s1\n"
        << "    li a" << i << ", " << base[i] << "\n"
        << "    add a" << i << ", a" << i << ", t0\n";
  }
  out << R"(    csrr t0, status
    ori t0, t0, 0x11         ; STATUS.PG | STATUS.IE
    csrw status, t0

    jal barrier
    li t0, VA_PAGE           ; warm a TLB entry for the probe VA
    lw t1, 0(t0)
    jal barrier

    bnez s1, worker_path
    jal run_block            ; vCPU 0: one block pass, then shootdown rounds
    li s2, 1
init_round:
    li t0, )" << kRounds << R"(
    bgtu s2, t0, rounds_over
    li t0, 0x300000          ; prefill page (0x300 + round) with 0xB0B0+round
    slli t1, s2, 12
    add t0, t0, t1
    li t1, 0xB0B0
    add t1, t1, s2
    sw t1, 0(t0)
    li t0, 0x82000           ; remap VA_PAGE -> page (0x300 + round)
    li t1, 0x30006F
    slli t2, s2, 12
    add t1, t1, t2
    sw t1, 0(t0)
    sfence
    la t0, acks
    li t2, 1
clear_acks:
    li t1, )" << vcpus << R"(
    bgeu t2, t1, acks_cleared
    slli t3, t2, 2
    add t3, t0, t3
    sw zero, 0(t3)
    addi t2, t2, 1
    j clear_acks
acks_cleared:
    li t0, PIC_BASE
    li t1, )" << sibling_mask << R"(
    sw t1, 0x14(t0)          ; IPI_RAISE every sibling
    li t2, 1
wait_acks:
    li t1, )" << vcpus << R"(
    bgeu t2, t1, acks_in
    la t0, acks
    slli t3, t2, 2
    add t3, t0, t3
    lw t1, 0(t3)
    beqz t1, wait_acks
    addi t2, t2, 1
    j wait_acks
acks_in:
    la t0, rounds_done
    sw s2, 0(t0)
    addi s2, s2, 1
    j init_round
rounds_over:
    j after_rounds
worker_path:
    li t0, 10                ; workers grind the block while rounds land
wblock:
    jal run_block
    addi t0, t0, -1
    bnez t0, wblock
    la t0, rounds_done
wr_spin:
    lw t1, 0(t0)
    li t2, )" << kRounds << R"(
    bltu t1, t2, wr_spin
after_rounds:
    jal barrier
    li t0, VA_PAGE           ; stale TLB => old page => wrong value
    lw t1, 0(t0)
    la t0, results
    slli t2, s1, 2
    add t0, t0, t2
    sw t1, 0(t0)
    add a0, a0, a1           ; fold the accumulators and publish atomically
    add a0, a0, a2
    add a0, a0, a3
    la t1, shared
    amoadd t2, t1, a0
    jal barrier
    sw zero, 0(gp)           ; scrub timing-dependent handler save bytes
    sw zero, 4(gp)
    sw zero, 8(gp)
    sw zero, 12(gp)
    li t2, 0                 ; scrub the amoadd return (arrival-order value)
    la t0, done_flags
    slli t1, s1, 2
    add t0, t0, t1
    li t1, 1
    sw t1, 0(t0)
    bnez s1, worker_halt
    li t2, 1                 ; vCPU 0 waits for every worker's done flag
wait_done:
    li t1, )" << vcpus << R"(
    bgeu t2, t1, grade
    la t0, done_flags
    slli t3, t2, 2
    add t3, t0, t3
    lw t1, 0(t3)
    beqz t1, wait_done
    addi t2, t2, 1
    j wait_done
grade:
    li s2, 0
    li s0, 0
check_loop:
    li t0, )" << vcpus << R"(
    bgeu s0, t0, graded
    la t0, results
    slli t1, s0, 2
    add t0, t0, t1
    lw t1, 0(t0)
    li t2, )" << (0xB0B0 + kRounds) << R"(
    beq t1, t2, check_next
    li s2, 1
check_next:
    addi s0, s0, 1
    j check_loop
graded:
    bnez s2, finish          ; progress stays 0 on a stale probe
    la t0, progress
    li t1, 1
    sw t1, 0(t0)
finish:
    li a0, HC_SHUTDOWN
    hcall
    halt
worker_halt:
    halt

ipi_handler:
    sw t0, 0(gp)
    sw t1, 4(gp)
    sw t2, 8(gp)
    sw t3, 12(gp)
    sfence                   ; drop whatever the initiator just invalidated
    csrr t0, hartid
    li t1, PIC_BASE
    li t3, 1
    sll t3, t3, t0
    sw t3, 0x1C(t1)          ; IPI_ACK own doorbell bit first (edge rearm)
    la t1, acks
    slli t2, t0, 2
    add t1, t1, t2
    li t2, 1
    sw t2, 0(t1)
    lw t3, 12(gp)
    lw t2, 8(gp)
    lw t1, 4(gp)
    lw t0, 0(gp)
    sret

barrier:
    xori s3, s3, 1
    la t0, bar_count
    li t1, 1
    amoadd t2, t0, t1
    li t1, )" << vcpus - 1 << R"(
    bne t2, t1, bar_wait
    la t0, bar_count
    sw zero, 0(t0)
    la t0, bar_sense
    sw s3, 0(t0)
    ret
bar_wait:
    la t0, bar_sense
bar_spin:
    lw t1, 0(t0)
    bne t1, s3, bar_spin
    ret

)" << block;
  return out.str();
}

// Everything that must be bit-identical across engine/paging/virt for a
// fixed (seed, vcpus): per-vCPU register files, vCPU 0's stop pc, the RAM
// regions the program touches, and the SMP event counters. instret and
// worker pcs are deliberately absent (see the determinism notes above).
struct SmpSnapshot {
  std::vector<std::array<uint32_t, 16>> regs;
  uint32_t pc0 = 0;
  std::vector<uint32_t> region_crcs;
  uint64_t ipis_received = 0;
  uint64_t shootdowns = 0;
  bool operator==(const SmpSnapshot&) const = default;
};

// Field-level comparison so a matrix mismatch pinpoints the diverging
// component (which vCPU's registers, which RAM region, which counter).
void ExpectSnapshotsEqual(const SmpSnapshot& baseline, const SmpSnapshot& snap,
                          const std::string& label) {
  for (size_t i = 0; i < baseline.regs.size() && i < snap.regs.size(); ++i) {
    for (size_t r = 0; r < 16; ++r) {
      EXPECT_EQ(snap.regs[i][r], baseline.regs[i][r])
          << label << " vcpu " << i << " reg " << r;
    }
  }
  EXPECT_EQ(snap.pc0, baseline.pc0) << label;
  for (size_t i = 0; i < baseline.region_crcs.size() && i < snap.region_crcs.size(); ++i) {
    EXPECT_EQ(snap.region_crcs[i], baseline.region_crcs[i]) << label << " region " << i;
  }
  EXPECT_EQ(snap.ipis_received, baseline.ipis_received) << label;
  EXPECT_EQ(snap.shootdowns, baseline.shootdowns) << label;
}

SmpSnapshot SmpExecute(const std::string& program, uint32_t vcpus, cpu::EngineKind engine,
                       mmu::PagingMode paging, cpu::VirtMode virt,
                       cpu::DbtOptions dbt = {}) {
  HostConfig host_cfg;
  host_cfg.num_pcpus = 4;
  Host host(host_cfg);
  auto image = guest::Build(program);
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  VmConfig cfg;
  cfg.name = "smpfuzz";
  cfg.ram_bytes = 8u << 20;
  cfg.num_vcpus = vcpus;
  cfg.paging_mode = paging;
  cfg.engine = engine;
  cfg.virt_mode = virt;
  cfg.dbt = dbt;
  auto vm = host.CreateVm(cfg);
  EXPECT_TRUE(vm.ok());
  EXPECT_TRUE((*vm)->LoadImage(*image).ok());
  EXPECT_TRUE(host.RunUntilVmStops(*vm, 10 * kSimTicksPerSec));
  EXPECT_EQ((*vm)->state(), VmState::kShutdown) << (*vm)->crash_reason().ToString();

  // progress == 1 iff every hart probed the final remapped page: the
  // shootdown worked on this config, independent of the seed.
  auto progress_addr = guest::ProgressAddress(*image);
  EXPECT_TRUE(progress_addr.ok());
  EXPECT_EQ((*vm)->memory().ReadU32(*progress_addr).value_or(0), 1u);

  SmpSnapshot snap;
  for (uint32_t i = 0; i < vcpus; ++i) {
    const cpu::VcpuContext& ctx = (*vm)->vcpu(i);
    snap.regs.push_back(ctx.state.regs);
    snap.ipis_received += ctx.stats.ipis_received;
    snap.shootdowns += ctx.stats.shootdowns;
  }
  snap.pc0 = (*vm)->vcpu(0).state.pc;
  // CRC the touched RAM: the data page, the probe pages, and the per-hart
  // scratch pages.
  struct Region {
    uint32_t base;
    uint32_t size;
  };
  const Region regions[] = {{0x2000, 0x1000}, {0x300000, 0x4000}, {0x200000, 0x4000}};
  std::vector<uint8_t> buf;
  for (const Region& r : regions) {
    buf.resize(r.size);
    EXPECT_TRUE((*vm)->memory().Read(r.base, buf.data(), buf.size()).ok());
    snap.region_crcs.push_back(Crc32(buf.data(), buf.size()));
  }

  // Non-vacuity: three rounds kick every sibling exactly once (doorbell acks
  // re-arm the edge before the memory acks release the initiator).
  const uint64_t expected = 3u * (vcpus - 1);
  EXPECT_EQ(snap.ipis_received, expected);
  EXPECT_EQ(snap.shootdowns, expected);
  return snap;
}

// The full cross-engine differential matrix: for each seed and vcpu count,
// all engine-tier × paging × virt combinations must yield the same
// SmpSnapshot, with shootdowns observed mid-trace whenever there is more
// than one vCPU. The DBT runs twice -- tier-1 only, and tier-2 at a
// forced-low threshold so IPIs and shootdowns land against optimized units.
TEST(FuzzDiffSmpTest, MatrixAgreesAcrossVcpuCounts) {
  struct EngineTier {
    cpu::EngineKind kind;
    cpu::DbtOptions dbt;
    const char* name;
  };
  const EngineTier tiers[] = {
      {cpu::EngineKind::kInterpreter, {}, "interp"},
      {cpu::EngineKind::kDbt, Tier1Only(), "dbt-t1"},
      {cpu::EngineKind::kDbt, Tier2Hot(), "dbt-t2"},
  };
  const uint64_t seeds[] = {0x5EED0001, 0x5EED0002};
  for (uint64_t seed : seeds) {
    for (uint32_t vcpus : {1u, 2u, 4u}) {
      std::string program = SmpFuzzProgram(seed, vcpus);
      SmpSnapshot baseline;
      bool have_baseline = false;
      for (const EngineTier& tier : tiers) {
        for (auto paging : {mmu::PagingMode::kShadow, mmu::PagingMode::kNested}) {
          for (auto virt : {cpu::VirtMode::kTrapAndEmulate, cpu::VirtMode::kHardwareAssist}) {
            SmpSnapshot snap =
                SmpExecute(program, vcpus, tier.kind, paging, virt, tier.dbt);
            if (!have_baseline) {
              baseline = snap;
              have_baseline = true;
              continue;
            }
            std::ostringstream label;
            label << "seed " << seed << " vcpus " << vcpus << " tier " << tier.name
                  << " paging " << static_cast<int>(paging) << " virt "
                  << static_cast<int>(virt);
            ExpectSnapshotsEqual(baseline, snap, label.str());
          }
        }
      }
    }
  }
}

// Decoding random words must never crash or mis-encode (harness-level fuzz
// of the decoder's totality; legal decodes must re-encode losslessly).
TEST(FuzzDiffTest, DecoderTotalOnRandomWords) {
  Xoshiro256 rng(42424242);
  for (int i = 0; i < 100000; ++i) {
    uint32_t word = static_cast<uint32_t>(rng.Next());
    Instruction in = isa::Decode(word);
    if (in.opcode == Opcode::kIllegal) {
      continue;
    }
    auto re = isa::Encode(in);
    ASSERT_TRUE(re.ok());
    ASSERT_EQ(isa::Decode(*re), in);
  }
}

}  // namespace
}  // namespace hyperion
