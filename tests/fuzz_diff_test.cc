// Differential fuzzing: random guest programs executed on both engines
// (interpreter, DBT) and both virtualizers must leave identical
// architectural state. Programs are generated to terminate by construction:
// only forward control flow, ending in HALT.

#include <gtest/gtest.h>

#include <vector>

#include "src/util/crc32.h"
#include "src/util/rng.h"
#include "tests/guest_harness.h"

namespace hyperion {
namespace {

using isa::AluOp;
using isa::Instruction;
using isa::Opcode;

// Generates a random terminating program of `n` instructions.
//  - ALU ops over all registers
//  - loads/stores confined to a scratch window via masked addresses: the
//    generator emits `andi` to clamp a base register before each access
//  - forward-only branches and jumps
// Register 15 (s3) is reserved as the scratch-window base and is never a
// destination, so memory accesses stay inside [0x9000, 0xB000).
constexpr uint8_t kScratchBase = 15;
constexpr uint32_t kScratchAddr = 0x9000;

std::vector<uint32_t> RandomProgram(Xoshiro256& rng, size_t n) {
  std::vector<uint32_t> words;

  auto push = [&words](const Instruction& in) {
    auto w = isa::Encode(in);
    if (w.ok()) {
      words.push_back(*w);
    }
  };

  // Destinations exclude the reserved base register.
  auto reg = [&rng]() -> uint8_t { return static_cast<uint8_t>(rng.NextBelow(15)); };
  auto src = [&rng]() -> uint8_t { return static_cast<uint8_t>(rng.NextBelow(16)); };

  // s3 = kScratchAddr (0x8000 via lui + 0x1000 via addi).
  {
    Instruction lui;
    lui.opcode = Opcode::kLui;
    lui.rd = kScratchBase;
    lui.imm = 0x8000;
    push(lui);
    Instruction addi;
    addi.opcode = Opcode::kOpImm;
    addi.funct = static_cast<uint8_t>(AluOp::kAdd);
    addi.rd = kScratchBase;
    addi.rs1 = kScratchBase;
    addi.imm = static_cast<int32_t>(kScratchAddr) - 0x8000;
    push(addi);
  }

  // Seed a few registers with random values.
  for (int i = 0; i < 6; ++i) {
    Instruction lui;
    lui.opcode = Opcode::kLui;
    lui.rd = reg();
    lui.imm = static_cast<int32_t>((rng.Next() & 0x3FFFF) << 14);
    push(lui);
    Instruction addi;
    addi.opcode = Opcode::kOpImm;
    addi.funct = static_cast<uint8_t>(AluOp::kAdd);
    addi.rd = lui.rd;
    addi.rs1 = lui.rd;
    addi.imm = static_cast<int32_t>(rng.NextBelow(0x2000)) - 0x1000;
    push(addi);
  }

  while (words.size() < n) {
    switch (rng.NextBelow(10)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // R-type ALU
        Instruction in;
        in.opcode = Opcode::kOp;
        in.funct = static_cast<uint8_t>(rng.NextBelow(16));
        in.rd = reg();
        in.rs1 = reg();
        in.rs2 = reg();
        push(in);
        break;
      }
      case 4:
      case 5: {  // I-type ALU
        Instruction in;
        in.opcode = Opcode::kOpImm;
        in.funct = static_cast<uint8_t>(rng.NextBelow(16));
        in.rd = reg();
        in.rs1 = reg();
        in.imm = static_cast<int32_t>(rng.NextBelow(0x2000)) - 0x1000;
        push(in);
        break;
      }
      case 6:
      case 7: {  // memory access through the reserved scratch base
        static constexpr Opcode kMemOps[] = {Opcode::kLw, Opcode::kLh,  Opcode::kLhu,
                                             Opcode::kLb, Opcode::kLbu, Opcode::kSw,
                                             Opcode::kSh, Opcode::kSb};
        Instruction mem;
        mem.opcode = kMemOps[rng.NextBelow(8)];
        uint32_t align = 1;
        if (mem.opcode == Opcode::kLw || mem.opcode == Opcode::kSw) {
          align = 4;
        } else if (mem.opcode == Opcode::kLh || mem.opcode == Opcode::kLhu ||
                   mem.opcode == Opcode::kSh) {
          align = 2;
        }
        mem.rd = mem.opcode == Opcode::kSw || mem.opcode == Opcode::kSh ||
                         mem.opcode == Opcode::kSb
                     ? src()   // store data may come from any register
                     : reg();  // load destinations avoid the base
        mem.rs1 = kScratchBase;
        mem.imm = static_cast<int32_t>(rng.NextBelow(0x2000 / align)) * static_cast<int32_t>(align);
        push(mem);
        break;
      }
      case 8: {  // forward branch
        Instruction in;
        in.opcode = Opcode::kBranch;
        in.funct = static_cast<uint8_t>(rng.NextBelow(6));
        in.rs1 = src();
        in.rs2 = src();
        in.imm = static_cast<int32_t>(1 + rng.NextBelow(8)) * 4;  // forward only
        push(in);
        break;
      }
      default: {  // forward jump with link
        Instruction in;
        in.opcode = Opcode::kJal;
        in.rd = reg();
        in.imm = static_cast<int32_t>(1 + rng.NextBelow(8)) * 4;
        push(in);
        break;
      }
    }
  }
  // Branch/jump targets may point past the buffer: pad a landing zone of
  // NOPs, then HALT.
  Instruction nop;
  nop.opcode = Opcode::kOpImm;
  nop.funct = static_cast<uint8_t>(AluOp::kAdd);
  for (int i = 0; i < 9; ++i) {
    push(nop);
  }
  Instruction halt;
  halt.opcode = Opcode::kHalt;
  push(halt);
  return words;
}

struct MachineSnapshot {
  std::array<uint32_t, 16> regs;
  uint32_t pc;
  uint64_t instret;
  uint32_t mem_crc;
};

MachineSnapshot Execute(const std::vector<uint32_t>& words, mmu::PagingMode paging,
                        cpu::EngineKind engine) {
  testing::TestMachine m(1u << 20, paging, engine, cpu::VirtMode::kHardwareAssist);
  // Load raw words at the reset pc.
  uint32_t addr = isa::kResetPc;
  for (uint32_t w : words) {
    EXPECT_TRUE(m.memory().WriteU32(addr, w).ok());
    addr += 4;
  }
  m.ctx().state.pc = isa::kResetPc;
  auto r = m.Run(5'000'000);
  EXPECT_EQ(r.reason, cpu::ExitReason::kHalt);

  MachineSnapshot snap;
  snap.regs = m.ctx().state.regs;
  snap.pc = m.ctx().state.pc;
  snap.instret = m.ctx().state.instret;
  // Checksum the scratch window the program may have written.
  std::vector<uint8_t> scratch(0x2000);
  EXPECT_TRUE(m.memory().Read(kScratchAddr, scratch.data(), scratch.size()).ok());
  snap.mem_crc = Crc32(scratch.data(), scratch.size());
  return snap;
}

TEST(FuzzDiffTest, EnginesAgreeOnRandomPrograms) {
  Xoshiro256 rng(0xF00DF00D);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<uint32_t> words = RandomProgram(rng, 80 + rng.NextBelow(200));
    MachineSnapshot interp =
        Execute(words, mmu::PagingMode::kNested, cpu::EngineKind::kInterpreter);
    MachineSnapshot dbt = Execute(words, mmu::PagingMode::kNested, cpu::EngineKind::kDbt);
    ASSERT_EQ(interp.regs, dbt.regs) << "trial " << trial;
    ASSERT_EQ(interp.pc, dbt.pc) << "trial " << trial;
    ASSERT_EQ(interp.instret, dbt.instret) << "trial " << trial;
    ASSERT_EQ(interp.mem_crc, dbt.mem_crc) << "trial " << trial;
  }
}

TEST(FuzzDiffTest, VirtualizersAgreeOnRandomPrograms) {
  Xoshiro256 rng(0xCAFE1234);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<uint32_t> words = RandomProgram(rng, 80 + rng.NextBelow(150));
    MachineSnapshot shadow =
        Execute(words, mmu::PagingMode::kShadow, cpu::EngineKind::kInterpreter);
    MachineSnapshot nested =
        Execute(words, mmu::PagingMode::kNested, cpu::EngineKind::kInterpreter);
    ASSERT_EQ(shadow.regs, nested.regs) << "trial " << trial;
    ASSERT_EQ(shadow.mem_crc, nested.mem_crc) << "trial " << trial;
  }
}

// Decoding random words must never crash or mis-encode (harness-level fuzz
// of the decoder's totality; legal decodes must re-encode losslessly).
TEST(FuzzDiffTest, DecoderTotalOnRandomWords) {
  Xoshiro256 rng(42424242);
  for (int i = 0; i < 100000; ++i) {
    uint32_t word = static_cast<uint32_t>(rng.Next());
    Instruction in = isa::Decode(word);
    if (in.opcode == Opcode::kIllegal) {
      continue;
    }
    auto re = isa::Encode(in);
    ASSERT_TRUE(re.ok());
    ASSERT_EQ(isa::Decode(*re), in);
  }
}

}  // namespace
}  // namespace hyperion
