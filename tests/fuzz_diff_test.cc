// Differential fuzzing: random guest programs executed on both engines
// (interpreter, DBT) and both virtualizers must leave identical
// architectural state. Programs are generated to terminate by construction:
// only forward control flow, ending in HALT.

#include <gtest/gtest.h>

#include <vector>

#include "src/util/crc32.h"
#include "src/util/rng.h"
#include "tests/guest_harness.h"

namespace hyperion {
namespace {

using isa::AluOp;
using isa::Instruction;
using isa::Opcode;

// Generates a random terminating program of `n` instructions.
//  - ALU ops over all registers
//  - loads/stores confined to a scratch window via masked addresses: the
//    generator emits `andi` to clamp a base register before each access
//  - forward-only branches and jumps
// Register 15 (s3) is reserved as the scratch-window base and is never a
// destination, so memory accesses stay inside [0x9000, 0xB000).
constexpr uint8_t kScratchBase = 15;
constexpr uint32_t kScratchAddr = 0x9000;

std::vector<uint32_t> RandomProgram(Xoshiro256& rng, size_t n) {
  std::vector<uint32_t> words;

  auto push = [&words](const Instruction& in) {
    auto w = isa::Encode(in);
    if (w.ok()) {
      words.push_back(*w);
    }
  };

  // Destinations exclude the reserved base register.
  auto reg = [&rng]() -> uint8_t { return static_cast<uint8_t>(rng.NextBelow(15)); };
  auto src = [&rng]() -> uint8_t { return static_cast<uint8_t>(rng.NextBelow(16)); };

  // s3 = kScratchAddr (0x8000 via lui + 0x1000 via addi).
  {
    Instruction lui;
    lui.opcode = Opcode::kLui;
    lui.rd = kScratchBase;
    lui.imm = 0x8000;
    push(lui);
    Instruction addi;
    addi.opcode = Opcode::kOpImm;
    addi.funct = static_cast<uint8_t>(AluOp::kAdd);
    addi.rd = kScratchBase;
    addi.rs1 = kScratchBase;
    addi.imm = static_cast<int32_t>(kScratchAddr) - 0x8000;
    push(addi);
  }

  // Seed a few registers with random values.
  for (int i = 0; i < 6; ++i) {
    Instruction lui;
    lui.opcode = Opcode::kLui;
    lui.rd = reg();
    lui.imm = static_cast<int32_t>((rng.Next() & 0x3FFFF) << 14);
    push(lui);
    Instruction addi;
    addi.opcode = Opcode::kOpImm;
    addi.funct = static_cast<uint8_t>(AluOp::kAdd);
    addi.rd = lui.rd;
    addi.rs1 = lui.rd;
    addi.imm = static_cast<int32_t>(rng.NextBelow(0x2000)) - 0x1000;
    push(addi);
  }

  while (words.size() < n) {
    switch (rng.NextBelow(10)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // R-type ALU
        Instruction in;
        in.opcode = Opcode::kOp;
        in.funct = static_cast<uint8_t>(rng.NextBelow(16));
        in.rd = reg();
        in.rs1 = reg();
        in.rs2 = reg();
        push(in);
        break;
      }
      case 4:
      case 5: {  // I-type ALU
        Instruction in;
        in.opcode = Opcode::kOpImm;
        in.funct = static_cast<uint8_t>(rng.NextBelow(16));
        in.rd = reg();
        in.rs1 = reg();
        in.imm = static_cast<int32_t>(rng.NextBelow(0x2000)) - 0x1000;
        push(in);
        break;
      }
      case 6:
      case 7: {  // memory access through the reserved scratch base
        static constexpr Opcode kMemOps[] = {Opcode::kLw, Opcode::kLh,  Opcode::kLhu,
                                             Opcode::kLb, Opcode::kLbu, Opcode::kSw,
                                             Opcode::kSh, Opcode::kSb};
        Instruction mem;
        mem.opcode = kMemOps[rng.NextBelow(8)];
        uint32_t align = 1;
        if (mem.opcode == Opcode::kLw || mem.opcode == Opcode::kSw) {
          align = 4;
        } else if (mem.opcode == Opcode::kLh || mem.opcode == Opcode::kLhu ||
                   mem.opcode == Opcode::kSh) {
          align = 2;
        }
        mem.rd = mem.opcode == Opcode::kSw || mem.opcode == Opcode::kSh ||
                         mem.opcode == Opcode::kSb
                     ? src()   // store data may come from any register
                     : reg();  // load destinations avoid the base
        mem.rs1 = kScratchBase;
        mem.imm = static_cast<int32_t>(rng.NextBelow(0x2000 / align)) * static_cast<int32_t>(align);
        push(mem);
        break;
      }
      case 8: {  // forward branch
        Instruction in;
        in.opcode = Opcode::kBranch;
        in.funct = static_cast<uint8_t>(rng.NextBelow(6));
        in.rs1 = src();
        in.rs2 = src();
        in.imm = static_cast<int32_t>(1 + rng.NextBelow(8)) * 4;  // forward only
        push(in);
        break;
      }
      default: {  // forward jump with link
        Instruction in;
        in.opcode = Opcode::kJal;
        in.rd = reg();
        in.imm = static_cast<int32_t>(1 + rng.NextBelow(8)) * 4;
        push(in);
        break;
      }
    }
  }
  // Branch/jump targets may point past the buffer: pad a landing zone of
  // NOPs, then HALT.
  Instruction nop;
  nop.opcode = Opcode::kOpImm;
  nop.funct = static_cast<uint8_t>(AluOp::kAdd);
  for (int i = 0; i < 9; ++i) {
    push(nop);
  }
  Instruction halt;
  halt.opcode = Opcode::kHalt;
  push(halt);
  return words;
}

struct MachineSnapshot {
  std::array<uint32_t, 16> regs;
  uint32_t pc;
  uint64_t instret;
  uint32_t mem_crc;
};

MachineSnapshot Execute(const std::vector<uint32_t>& words, mmu::PagingMode paging,
                        cpu::EngineKind engine) {
  testing::TestMachine m(1u << 20, paging, engine, cpu::VirtMode::kHardwareAssist);
  // Load raw words at the reset pc.
  uint32_t addr = isa::kResetPc;
  for (uint32_t w : words) {
    EXPECT_TRUE(m.memory().WriteU32(addr, w).ok());
    addr += 4;
  }
  m.ctx().state.pc = isa::kResetPc;
  auto r = m.Run(5'000'000);
  EXPECT_EQ(r.reason, cpu::ExitReason::kHalt);

  MachineSnapshot snap;
  snap.regs = m.ctx().state.regs;
  snap.pc = m.ctx().state.pc;
  snap.instret = m.ctx().state.instret;
  // Checksum the scratch window the program may have written.
  std::vector<uint8_t> scratch(0x2000);
  EXPECT_TRUE(m.memory().Read(kScratchAddr, scratch.data(), scratch.size()).ok());
  snap.mem_crc = Crc32(scratch.data(), scratch.size());
  return snap;
}

TEST(FuzzDiffTest, EnginesAgreeOnRandomPrograms) {
  Xoshiro256 rng(0xF00DF00D);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<uint32_t> words = RandomProgram(rng, 80 + rng.NextBelow(200));
    MachineSnapshot interp =
        Execute(words, mmu::PagingMode::kNested, cpu::EngineKind::kInterpreter);
    MachineSnapshot dbt = Execute(words, mmu::PagingMode::kNested, cpu::EngineKind::kDbt);
    ASSERT_EQ(interp.regs, dbt.regs) << "trial " << trial;
    ASSERT_EQ(interp.pc, dbt.pc) << "trial " << trial;
    ASSERT_EQ(interp.instret, dbt.instret) << "trial " << trial;
    ASSERT_EQ(interp.mem_crc, dbt.mem_crc) << "trial " << trial;
  }
}

TEST(FuzzDiffTest, VirtualizersAgreeOnRandomPrograms) {
  Xoshiro256 rng(0xCAFE1234);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<uint32_t> words = RandomProgram(rng, 80 + rng.NextBelow(150));
    MachineSnapshot shadow =
        Execute(words, mmu::PagingMode::kShadow, cpu::EngineKind::kInterpreter);
    MachineSnapshot nested =
        Execute(words, mmu::PagingMode::kNested, cpu::EngineKind::kInterpreter);
    ASSERT_EQ(shadow.regs, nested.regs) << "trial " << trial;
    ASSERT_EQ(shadow.mem_crc, nested.mem_crc) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// Adversarial differential tests targeting the DBT fast paths: block
// chaining, hot-trace superblocks, and the per-vCPU translation fast path.
// Each runs an assembled program under both engines and requires identical
// architectural state.
// ---------------------------------------------------------------------------

MachineSnapshot ExecuteAsm(const std::string& source, mmu::PagingMode paging,
                           cpu::EngineKind engine, uint64_t max_cycles = 100'000'000) {
  testing::TestMachine m(8u << 20, paging, engine, cpu::VirtMode::kHardwareAssist);
  m.Load(source);
  auto r = m.Run(max_cycles);
  EXPECT_EQ(r.reason, cpu::ExitReason::kHalt) << "engine " << static_cast<int>(engine);

  MachineSnapshot snap;
  snap.regs = m.ctx().state.regs;
  snap.pc = m.ctx().state.pc;
  snap.instret = m.ctx().state.instret;
  std::vector<uint8_t> scratch(0x2000);
  EXPECT_TRUE(m.memory().Read(kScratchAddr, scratch.data(), scratch.size()).ok());
  snap.mem_crc = Crc32(scratch.data(), scratch.size());
  return snap;
}

TEST(FuzzDiffAdversarialTest, SmcRewritesChainedSuccessor) {
  // The caller loop chains to (and eventually splices a trace through) the
  // victim function, then keeps rewriting the victim's first instruction
  // between calls. A DBT that follows a stale chain link or trace would add
  // the wrong increment; the interpreter is the oracle, down to instret.
  const char* program = R"(
_start:
    li sp, 0x40000
    li s0, 200
    li a0, 0
    la s1, victim
    la s2, patch_a
    la s3, patch_b
loop:
    call victim
    andi t0, s0, 1
    beqz t0, even
    lw t1, 0(s3)
    j patch
even:
    lw t1, 0(s2)
patch:
    sw t1, 0(s1)          ; rewrite victim's first instruction
    addi s0, s0, -1
    bnez s0, loop
    halt
victim:
    addi a0, a0, 1
    ret
patch_a:
    addi a0, a0, 1
patch_b:
    addi a0, a0, 2
  )";
  MachineSnapshot interp =
      ExecuteAsm(program, mmu::PagingMode::kNested, cpu::EngineKind::kInterpreter);
  MachineSnapshot dbt = ExecuteAsm(program, mmu::PagingMode::kNested, cpu::EngineKind::kDbt);
  EXPECT_EQ(interp.regs, dbt.regs);
  EXPECT_EQ(interp.pc, dbt.pc);
  EXPECT_EQ(interp.instret, dbt.instret);
  EXPECT_GT(dbt.regs[isa::kA0], 200u);  // both increments actually landed
}

TEST(FuzzDiffAdversarialTest, SfenceAndPtbrSwitchLandMidTrace) {
  // A hot inner loop (which the DBT promotes to a superblock) is repeatedly
  // interrupted by SFENCE and a PTBR rewrite under active paging. Mapping
  // epochs must invalidate lazily without perturbing architectural state.
  const char* program = R"(
.org 0x1000
.equ PT_ROOT, 0x80000
_start:
    li t0, PT_ROOT
    li t1, 0x7F           ; identity 4MiB superpage V|R|W|X|U|A|D
    sw t1, 0(t0)
    li t1, 0x80
    csrw ptbr, t1
    csrr t1, status
    ori t1, t1, 0x10      ; STATUS.PG
    csrw status, t1
    li s0, 30
    li a0, 0
outer:
    li t0, 0x9000
    li s1, 400
inner:
    sw s1, 0(t0)
    lw t1, 0(t0)
    add a0, a0, t1
    addi s1, s1, -1
    bnez s1, inner
    sfence                ; cut chains, bump the mapping epoch mid-trace
    csrr t2, ptbr
    csrw ptbr, t2         ; address-space switch to the same root
    addi s0, s0, -1
    bnez s0, outer
    halt
  )";
  MachineSnapshot interp =
      ExecuteAsm(program, mmu::PagingMode::kNested, cpu::EngineKind::kInterpreter);
  MachineSnapshot dbt = ExecuteAsm(program, mmu::PagingMode::kNested, cpu::EngineKind::kDbt);
  EXPECT_EQ(interp.regs, dbt.regs);
  EXPECT_EQ(interp.pc, dbt.pc);
  EXPECT_EQ(interp.instret, dbt.instret);
  EXPECT_EQ(interp.mem_crc, dbt.mem_crc);
  MachineSnapshot shadow =
      ExecuteAsm(program, mmu::PagingMode::kShadow, cpu::EngineKind::kDbt);
  EXPECT_EQ(interp.regs, shadow.regs);
  EXPECT_EQ(interp.mem_crc, shadow.mem_crc);
}

TEST(FuzzDiffAdversarialTest, InterruptsAssertedBetweenChainedBlocks) {
  // Timer interrupts preempt a chained/traced spin loop. The engines take
  // the interrupt at different cycle counts (translation costs differ), so
  // instret is NOT compared; every architectural register and all memory
  // must still converge because the handler's work is count-based: it fires
  // exactly five times, then disarms and releases the spinner via a flag.
  const char* program = R"(
_start:
    la t0, handler
    csrw tvec, t0
    li t1, 400
    csrw timecmp, t1
    csrr t1, status
    ori t1, t1, 1         ; STATUS.IE
    csrw status, t1
    li s0, 0x9000         ; count
    li s1, 0x9004         ; flag
spin:
    lw t0, 0(s1)
    beqz t0, spin
    lw a0, 0(s0)          ; a0 = final count
    halt
handler:
    li t2, 0x9000
    lw t1, 0(t2)
    addi t1, t1, 1
    sw t1, 0(t2)
    li t3, 5
    blt t1, t3, rearm
    li t3, 1
    sw t3, 4(t2)          ; release the spinner
    li t3, 0
    csrw timecmp, t3      ; disarm
    sret
rearm:
    li t3, 400
    csrw timecmp, t3
    sret
  )";
  MachineSnapshot interp =
      ExecuteAsm(program, mmu::PagingMode::kNested, cpu::EngineKind::kInterpreter);
  MachineSnapshot dbt = ExecuteAsm(program, mmu::PagingMode::kNested, cpu::EngineKind::kDbt);
  EXPECT_EQ(interp.regs, dbt.regs);
  EXPECT_EQ(interp.pc, dbt.pc);
  EXPECT_EQ(interp.mem_crc, dbt.mem_crc);
  EXPECT_EQ(dbt.regs[isa::kA0], 5u);
}

// Decoding random words must never crash or mis-encode (harness-level fuzz
// of the decoder's totality; legal decodes must re-encode losslessly).
TEST(FuzzDiffTest, DecoderTotalOnRandomWords) {
  Xoshiro256 rng(42424242);
  for (int i = 0; i < 100000; ++i) {
    uint32_t word = static_cast<uint32_t>(rng.Next());
    Instruction in = isa::Decode(word);
    if (in.opcode == Opcode::kIllegal) {
      continue;
    }
    auto re = isa::Encode(in);
    ASSERT_TRUE(re.ok());
    ASSERT_EQ(isa::Decode(*re), in);
  }
}

}  // namespace
}  // namespace hyperion
