// Integration tests: Host + Vm + scheduler + devices + guest programs,
// exercised end-to-end the way the examples and benchmarks use them.

#include <gtest/gtest.h>

#include <cstring>

#include "src/balloon/balloon.h"
#include "tests/test_phase.h"
#include "src/core/host.h"
#include "src/guest/programs.h"
#include "src/ksm/ksm.h"
#include "src/migrate/migrate.h"
#include "src/snapshot/snapshot.h"
#include "src/util/crc32.h"
#include "src/util/histogram.h"

namespace hyperion {
namespace {

using core::Host;
using core::HostConfig;
using core::IoModel;
using core::Vm;
using core::VmConfig;
using core::VmState;

// Loads `source` into a fresh VM on `host`.
Vm* BootVm(Host& host, VmConfig config, const std::string& source) {
  auto image = guest::Build(source);
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  auto vm = host.CreateVm(std::move(config));
  EXPECT_TRUE(vm.ok()) << vm.status().ToString();
  EXPECT_TRUE((*vm)->LoadImage(*image).ok());
  return *vm;
}

uint32_t ReadProgress(Vm* vm, const std::string& source) {
  auto image = guest::Build(source);
  EXPECT_TRUE(image.ok());
  auto addr = guest::ProgressAddress(*image);
  EXPECT_TRUE(addr.ok());
  auto v = vm->memory().ReadU32(*addr);
  EXPECT_TRUE(v.ok());
  return v.value_or(0);
}

TEST(HostVmTest, HelloWorldPrintsAndShutsDown) {
  Host host;
  std::string prog = guest::HelloProgram("hello from the guest\n");
  Vm* vm = BootVm(host, VmConfig{.name = "hello"}, prog);
  ASSERT_TRUE(host.RunUntilVmStops(vm, 10 * kSimTicksPerSec));
  EXPECT_EQ(vm->state(), VmState::kShutdown);
  EXPECT_EQ(vm->console(), "hello from the guest\n");
}

TEST(HostVmTest, ComputeRunsToCompletion) {
  Host host;
  std::string prog = guest::ComputeProgram(500);
  Vm* vm = BootVm(host, VmConfig{.name = "compute"}, prog);
  ASSERT_TRUE(host.RunUntilVmStops(vm, 10 * kSimTicksPerSec));
  EXPECT_EQ(vm->state(), VmState::kShutdown);
  EXPECT_EQ(ReadProgress(vm, prog), 500u);
}

TEST(HostVmTest, CrashWithoutTrapHandlerIsReported) {
  Host host;
  Vm* vm = BootVm(host, VmConfig{.name = "crash"}, ".org 0x1000\n.word 0xFC000000\n");
  ASSERT_TRUE(host.RunUntilVmStops(vm, kSimTicksPerSec));
  EXPECT_EQ(vm->state(), VmState::kCrashed);
  EXPECT_FALSE(vm->crash_reason().ok());
}

TEST(HostVmTest, UartMmioPath) {
  Host host;
  Vm* vm = BootVm(host, VmConfig{.name = "uart"}, R"(
.org 0x1000
_start:
    li t0, 0xF0000000
    li t1, 'H'
    sw t1, 0(t0)
    li t1, 'i'
    sw t1, 0(t0)
    li t1, '\n'
    sw t1, 0(t0)
    halt
)");
  ASSERT_TRUE(host.RunUntilVmStops(vm, kSimTicksPerSec));
  EXPECT_EQ(vm->state(), VmState::kShutdown);
  EXPECT_EQ(vm->uart()->output(), "Hi\n");
  EXPECT_GE(vm->TotalStats().mmio_exits, 3u);
}

TEST(HostVmTest, IdleTickVmTicksOnSchedule) {
  Host host;
  std::string prog = guest::IdleTickProgram(static_cast<uint32_t>(kSimTicksPerMs));
  Vm* vm = BootVm(host, VmConfig{.name = "ticker"}, prog);
  host.RunFor(100 * kSimTicksPerMs);
  uint32_t ticks = ReadProgress(vm, prog);
  EXPECT_GE(ticks, 90u);
  EXPECT_LE(ticks, 110u);
  // The ticker must be nearly idle: far fewer executed cycles than wall time.
  EXPECT_LT(vm->TotalStats().cycles, 20 * kSimTicksPerMs);
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

TEST(SchedulingTest, EqualWeightsShareFairly) {
  HostConfig hc;
  hc.num_pcpus = 1;
  Host host(hc);
  std::string prog = guest::ComputeProgram(0);
  std::vector<Vm*> vms;
  for (int i = 0; i < 4; ++i) {
    vms.push_back(BootVm(host, VmConfig{.name = "vm" + std::to_string(i)}, prog));
  }
  host.RunFor(400 * kSimTicksPerMs);
  std::vector<double> shares;
  for (Vm* vm : vms) {
    shares.push_back(static_cast<double>(ReadProgress(vm, prog)));
    EXPECT_GT(shares.back(), 0);
  }
  EXPECT_GT(JainFairness(shares), 0.95);
}

TEST(SchedulingTest, CreditWeightsAreProportional) {
  HostConfig hc;
  hc.num_pcpus = 1;
  Host host(hc);
  std::string prog = guest::ComputeProgram(0);
  VmConfig heavy{.name = "heavy"};
  heavy.sched.weight = 768;
  VmConfig light{.name = "light"};
  light.sched.weight = 256;
  Vm* vh = BootVm(host, heavy, prog);
  Vm* vl = BootVm(host, light, prog);
  host.RunFor(600 * kSimTicksPerMs);
  double ratio = static_cast<double>(ReadProgress(vh, prog)) /
                 static_cast<double>(std::max(1u, ReadProgress(vl, prog)));
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 4.5);
}

TEST(SchedulingTest, CapLimitsConsumption) {
  HostConfig hc;
  hc.num_pcpus = 2;
  Host host(hc);
  std::string prog = guest::ComputeProgram(0);
  VmConfig capped{.name = "capped"};
  capped.sched.cap_percent = 25;
  Vm* vc = BootVm(host, capped, prog);
  Vm* vf = BootVm(host, VmConfig{.name = "free"}, prog);
  host.RunFor(600 * kSimTicksPerMs);
  // The capped VM should get roughly a quarter of one pCPU.
  uint64_t capped_cycles = host.scheduler().stats().at(1).cpu_cycles;
  uint64_t free_cycles = host.scheduler().stats().at(2).cpu_cycles;
  (void)vc;
  (void)vf;
  EXPECT_LT(capped_cycles, free_cycles / 2);
  EXPECT_GT(capped_cycles, 0u);
}

TEST(SchedulingTest, RoundRobinIgnoresWeights) {
  HostConfig hc;
  hc.num_pcpus = 1;
  hc.sched_policy = sched::SchedPolicy::kRoundRobin;
  Host host(hc);
  std::string prog = guest::ComputeProgram(0);
  VmConfig heavy{.name = "heavy"};
  heavy.sched.weight = 1024;
  Vm* vh = BootVm(host, heavy, prog);
  Vm* vl = BootVm(host, VmConfig{.name = "light"}, prog);
  host.RunFor(400 * kSimTicksPerMs);
  double ratio = static_cast<double>(ReadProgress(vh, prog)) /
                 static_cast<double>(std::max(1u, ReadProgress(vl, prog)));
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

// ---------------------------------------------------------------------------
// Block I/O
// ---------------------------------------------------------------------------

TEST(BlockIoTest, EmulatedPioWritesReachTheDisk) {
  Host host;
  auto disk = std::make_shared<storage::MemBlockStore>(256);
  VmConfig cfg{.name = "pio"};
  cfg.disk_model = IoModel::kEmulated;
  cfg.disk = disk;
  guest::BlkIoParams p;
  p.iterations = 10;
  p.sectors = 2;
  p.write = true;
  std::string prog = guest::EmulatedBlkProgram(p);
  Vm* vm = BootVm(host, cfg, prog);
  ASSERT_TRUE(host.RunUntilVmStops(vm, 10 * kSimTicksPerSec));
  ASSERT_EQ(vm->state(), VmState::kShutdown) << vm->crash_reason().ToString();
  EXPECT_EQ(ReadProgress(vm, prog), 10u);
  EXPECT_EQ(vm->emulated_blk()->stats().writes, 10u);
  EXPECT_EQ(vm->emulated_blk()->stats().sectors, 20u);
  // First command wrote words starting with its iteration counter at LBA 0.
  uint8_t sector[512] = {};
  ASSERT_TRUE(disk->ReadSectors(0, 1, sector).ok());
  uint32_t w0;
  std::memcpy(&w0, sector, 4);
  EXPECT_EQ(w0, 0u);  // iteration 0 pattern
}

TEST(BlockIoTest, EmulatedPioReadsComplete) {
  Host host;
  auto disk = std::make_shared<storage::MemBlockStore>(256);
  VmConfig cfg{.name = "pior"};
  cfg.disk_model = IoModel::kEmulated;
  cfg.disk = disk;
  guest::BlkIoParams p;
  p.iterations = 5;
  p.sectors = 1;
  p.write = false;
  std::string prog = guest::EmulatedBlkProgram(p);
  Vm* vm = BootVm(host, cfg, prog);
  ASSERT_TRUE(host.RunUntilVmStops(vm, 10 * kSimTicksPerSec));
  ASSERT_EQ(vm->state(), VmState::kShutdown) << vm->crash_reason().ToString();
  EXPECT_EQ(vm->emulated_blk()->stats().reads, 5u);
}

TEST(BlockIoTest, VirtioBlkWritesReachTheDisk) {
  Host host;
  auto disk = std::make_shared<storage::MemBlockStore>(1024);
  VmConfig cfg{.name = "vblk"};
  cfg.disk_model = IoModel::kParavirt;
  cfg.disk = disk;
  guest::BlkIoParams p;
  p.iterations = 8;
  p.sectors = 2;
  p.batch = 4;
  p.write = true;
  std::string prog = guest::VirtioBlkProgram(p);
  Vm* vm = BootVm(host, cfg, prog);
  ASSERT_TRUE(host.RunUntilVmStops(vm, 10 * kSimTicksPerSec));
  ASSERT_EQ(vm->state(), VmState::kShutdown) << vm->crash_reason().ToString();
  EXPECT_EQ(ReadProgress(vm, prog), 8u);
  EXPECT_EQ(vm->virtio_blk()->blk_stats().requests, 8u * 4);
  EXPECT_EQ(vm->virtio_blk()->blk_stats().errors, 0u);
  // Request 1's header points at sector 2; its payload begins with the
  // deterministic 0xB10C… pattern offset by one request's words.
  uint8_t sector[512] = {};
  ASSERT_TRUE(disk->ReadSectors(2, 1, sector).ok());
  uint32_t w0;
  std::memcpy(&w0, sector, 4);
  EXPECT_EQ(w0, 0xB10C0000u + 2 * 512 / 4);
}

TEST(BlockIoTest, VirtioBeatsEmulatedOnExitsPerSector) {
  auto run = [](bool paravirt) {
    Host host;
    auto disk = std::make_shared<storage::MemBlockStore>(1024);
    VmConfig cfg{.name = "io"};
    cfg.disk_model = paravirt ? IoModel::kParavirt : IoModel::kEmulated;
    cfg.disk = disk;
    guest::BlkIoParams p;
    p.iterations = 10;
    p.sectors = 4;
    p.batch = 4;
    p.write = true;
    std::string prog = paravirt ? guest::VirtioBlkProgram(p) : guest::EmulatedBlkProgram(p);
    Vm* vm = BootVm(host, cfg, prog);
    EXPECT_TRUE(host.RunUntilVmStops(vm, 30 * kSimTicksPerSec));
    EXPECT_EQ(vm->state(), VmState::kShutdown) << vm->crash_reason().ToString();
    auto stats = vm->TotalStats();
    uint64_t sectors = paravirt ? vm->virtio_blk()->blk_stats().sectors
                                : vm->emulated_blk()->stats().sectors;
    return static_cast<double>(stats.mmio_exits + stats.hypercalls) /
           static_cast<double>(sectors);
  };
  double emulated = run(false);
  double paravirt = run(true);
  EXPECT_GT(emulated, 10 * paravirt);  // order-of-magnitude gap
}

// ---------------------------------------------------------------------------
// Networking
// ---------------------------------------------------------------------------

TEST(NetworkTest, EmulatedPingPong) {
  Host host;
  guest::NetParams np;
  np.peer_mac = 2;
  np.payload_bytes = 128;
  np.iterations = 15;

  VmConfig ping_cfg{.name = "ping"};
  ping_cfg.net_model = IoModel::kEmulated;
  ping_cfg.mac = 1;
  VmConfig echo_cfg{.name = "echo"};
  echo_cfg.net_model = IoModel::kEmulated;
  echo_cfg.mac = 2;

  std::string ping_prog = guest::EmulatedNetPingProgram(np);
  Vm* ping = BootVm(host, ping_cfg, ping_prog);
  Vm* echo = BootVm(host, echo_cfg, guest::EmulatedNetEchoProgram());
  ASSERT_TRUE(host.RunUntilVmStops(ping, 30 * kSimTicksPerSec));
  ASSERT_EQ(ping->state(), VmState::kShutdown) << ping->crash_reason().ToString();
  EXPECT_EQ(ReadProgress(ping, ping_prog), 15u);
  EXPECT_GE(echo->emulated_net()->stats().tx_frames, 15u);
}

TEST(NetworkTest, VirtioPingPong) {
  Host host;
  guest::NetParams np;
  np.peer_mac = 2;
  np.payload_bytes = 256;
  np.iterations = 12;

  VmConfig ping_cfg{.name = "ping"};
  ping_cfg.net_model = IoModel::kParavirt;
  ping_cfg.mac = 1;
  VmConfig echo_cfg{.name = "echo"};
  echo_cfg.net_model = IoModel::kParavirt;
  echo_cfg.mac = 2;

  std::string ping_prog = guest::VirtioNetPingProgram(np);
  Vm* ping = BootVm(host, ping_cfg, ping_prog);
  Vm* echo = BootVm(host, echo_cfg, guest::VirtioNetEchoProgram(np.payload_bytes));
  ASSERT_TRUE(host.RunUntilVmStops(ping, 30 * kSimTicksPerSec));
  ASSERT_EQ(ping->state(), VmState::kShutdown) << ping->crash_reason().ToString();
  EXPECT_EQ(ReadProgress(ping, ping_prog), 12u);
  EXPECT_GE(echo->virtio_net()->net_stats().tx_frames, 12u);
  EXPECT_EQ(ping->virtio_net()->net_stats().rx_dropped, 0u);
}

// ---------------------------------------------------------------------------
// Snapshots and provisioning
// ---------------------------------------------------------------------------

TEST(SnapshotTest, SaveRestoreResumesExactly) {
  Host host;
  constexpr uint32_t kIters = 120000;
  std::string prog = guest::ComputeProgram(kIters);
  Vm* vm = BootVm(host, VmConfig{.name = "orig"}, prog);
  host.RunFor(5 * kSimTicksPerMs);  // run partway
  ASSERT_EQ(vm->state(), VmState::kRunning);
  vm->Pause(TestPhase());
  uint32_t progress_at_save = ReadProgress(vm, prog);
  ASSERT_GT(progress_at_save, 0u);
  ASSERT_LT(progress_at_save, kIters);

  snapshot::SnapshotInfo info;
  auto bytes = snapshot::SaveVm(*vm, {}, &info);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  EXPECT_GT(info.pages_data, 0u);
  EXPECT_GT(info.pages_zero, 0u);  // most RAM is untouched

  // Restore into a fresh VM and let both finish: identical outcomes.
  auto restored = snapshot::CloneVm(host, VmConfig{.name = "restored"}, *bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(ReadProgress(*restored, prog), progress_at_save);

  vm->Resume(TestPhase());
  ASSERT_TRUE(host.RunUntilVmStops(vm, 20 * kSimTicksPerSec));
  ASSERT_TRUE(host.RunUntilVmStops(*restored, 20 * kSimTicksPerSec));
  EXPECT_EQ(vm->state(), VmState::kShutdown);
  EXPECT_EQ((*restored)->state(), VmState::kShutdown);
  EXPECT_EQ(ReadProgress(vm, prog), kIters);
  EXPECT_EQ(ReadProgress(*restored, prog), kIters);
}

TEST(SnapshotTest, CorruptionDetected) {
  Host host;
  Vm* vm = BootVm(host, VmConfig{.name = "c"}, guest::ComputeProgram(10));
  vm->Pause(TestPhase());
  auto bytes = snapshot::SaveVm(*vm);
  ASSERT_TRUE(bytes.ok());
  (*bytes)[bytes->size() / 2] ^= 0xFF;
  Vm* target = BootVm(host, VmConfig{.name = "t"}, guest::ComputeProgram(10));
  target->Pause(TestPhase());
  EXPECT_EQ(snapshot::LoadVm(*target, *bytes).code(), StatusCode::kDataLoss);
}

TEST(SnapshotTest, GeometryMismatchRejected) {
  Host host;
  Vm* vm = BootVm(host, VmConfig{.name = "a"}, guest::ComputeProgram(10));
  vm->Pause(TestPhase());
  auto bytes = snapshot::SaveVm(*vm);
  ASSERT_TRUE(bytes.ok());
  VmConfig other{.name = "b"};
  other.ram_bytes = 8u << 20;  // different RAM size
  Vm* target = BootVm(host, other, guest::ComputeProgram(10));
  target->Pause(TestPhase());
  EXPECT_EQ(snapshot::LoadVm(*target, *bytes).code(), StatusCode::kFailedPrecondition);
}

TEST(SnapshotTest, IncrementalCapturesOnlyDirtyPages) {
  Host host;
  // Big cold footprint (128 filled pages), tiny hot set (2 pages dirtied in
  // the loop): incremental snapshots should be a fraction of full ones.
  std::string prog = R"(
.org 0x1000
    j _start
.align 8
progress:
    .word 0
_start:
    li t0, 0x100000
    li t1, 0x180000          ; fill 128 pages
coldfill:
    sw t0, 0(t0)
    addi t0, t0, 64
    bltu t0, t1, coldfill
hot:
    li t0, 0x100000
    lw t2, 0(t0)
    addi t2, t2, 1
    sw t2, 0(t0)
    li t0, 0x101000
    sw t2, 0(t0)
    la t3, progress
    lw t2, 0(t3)
    addi t2, t2, 1
    sw t2, 0(t3)
    j hot
)";
  Vm* vm = BootVm(host, VmConfig{.name = "inc"}, prog);
  host.RunFor(10 * kSimTicksPerMs);
  vm->Pause(TestPhase());

  auto full = snapshot::SaveVm(*vm);
  ASSERT_TRUE(full.ok());

  vm->memory().EnableDirtyLog();
  vm->Resume(TestPhase());
  host.RunFor(10 * kSimTicksPerMs);
  vm->Pause(TestPhase());

  snapshot::SnapshotInfo inc_info;
  snapshot::SaveOptions inc_opts;
  inc_opts.incremental = true;
  auto inc = snapshot::SaveVm(*vm, inc_opts, &inc_info);
  ASSERT_TRUE(inc.ok());
  EXPECT_LT(inc->size(), full->size() / 4);
  EXPECT_GT(inc_info.pages_total, 0u);

  // Applying full + incremental yields the current state.
  uint32_t want = ReadProgress(vm, prog);
  auto restored = snapshot::CloneVm(host, VmConfig{.name = "inc2"}, *full);
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE(snapshot::LoadVm(**restored, *inc).ok());
  EXPECT_EQ(ReadProgress(*restored, prog), want);
}

TEST(SnapshotTest, TemplateCloningProvisionsManyVms) {
  Host host;
  std::string prog = guest::ComputeProgram(300);
  Vm* golden = BootVm(host, VmConfig{.name = "golden"}, prog);
  golden->Pause(TestPhase());  // template captured pre-boot
  auto tmpl = snapshot::SaveVm(*golden);
  ASSERT_TRUE(tmpl.ok());

  std::vector<Vm*> clones;
  for (int i = 0; i < 5; ++i) {
    auto clone = snapshot::CloneVm(host, VmConfig{.name = "clone" + std::to_string(i)}, *tmpl);
    ASSERT_TRUE(clone.ok()) << clone.status().ToString();
    clones.push_back(*clone);
  }
  for (Vm* c : clones) {
    ASSERT_TRUE(host.RunUntilVmStops(c, 30 * kSimTicksPerSec));
    EXPECT_EQ(c->state(), VmState::kShutdown);
    EXPECT_EQ(ReadProgress(c, prog), 300u);
  }
}

// ---------------------------------------------------------------------------
// Persistent translations: a snapshot of a warmed DBT VM carries its
// validated translation units (snapshot v2, kFeatTranslations), so a
// restored clone starts hot instead of re-translating (DESIGN.md §12).
// ---------------------------------------------------------------------------

VmConfig WarmDbtConfig(const std::string& name) {
  VmConfig cfg{.name = name};
  cfg.engine = cpu::EngineKind::kDbt;
  cfg.dbt.tier2_threshold = 4;  // promote almost immediately
  return cfg;
}

// Boots a DBT VM on `prog`, runs it partway (hot + tiered up), and pauses it.
Vm* WarmPausedVm(Host& host, const std::string& name, const std::string& prog) {
  Vm* vm = BootVm(host, WarmDbtConfig(name), prog);
  host.RunFor(5 * kSimTicksPerMs);
  EXPECT_EQ(vm->state(), VmState::kRunning);
  vm->Pause(TestPhase());
  EXPECT_GT(vm->vcpu(0).stats.blocks_translated, 0u);
  EXPECT_GT(vm->vcpu(0).stats.tier2_promotions, 0u);
  return vm;
}

TEST(SnapshotTest, WarmTranslationsPrimeRestoredClone) {
  Host host;
  constexpr uint32_t kIters = 600000;
  std::string prog = guest::ComputeProgram(kIters);
  Vm* vm = WarmPausedVm(host, "warm", prog);
  uint32_t progress_at_save = ReadProgress(vm, prog);
  ASSERT_GT(progress_at_save, 0u);
  ASSERT_LT(progress_at_save, kIters);

  auto bytes = snapshot::SaveVm(*vm);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();

  // The clone installs the persisted units during restore: every unit
  // revalidates against the restored RAM, none is rejected.
  auto restored = snapshot::CloneVm(host, WarmDbtConfig("warm2"), *bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_GT((*restored)->vcpu(0).stats.persist_hits, 0u);
  EXPECT_EQ((*restored)->vcpu(0).stats.persist_misses, 0u);

  // First pass after restore: the clone's hot loop runs entirely on
  // pre-warmed translations -- zero cold translates, straight into tier-2.
  host.RunFor(5 * kSimTicksPerMs);
  (*restored)->Pause(TestPhase());
  EXPECT_GT(ReadProgress(*restored, prog), progress_at_save);
  EXPECT_EQ((*restored)->vcpu(0).stats.blocks_translated, 0u);
  EXPECT_GT((*restored)->vcpu(0).stats.tier2_executions, 0u);
  (*restored)->Resume(TestPhase());

  // Both finish with digest-identical architectural outcomes.
  vm->Resume(TestPhase());
  ASSERT_TRUE(host.RunUntilVmStops(vm, 30 * kSimTicksPerSec));
  ASSERT_TRUE(host.RunUntilVmStops(*restored, 30 * kSimTicksPerSec));
  EXPECT_EQ(vm->state(), VmState::kShutdown);
  EXPECT_EQ((*restored)->state(), VmState::kShutdown);
  EXPECT_EQ(ReadProgress(vm, prog), kIters);
  EXPECT_EQ(ReadProgress(*restored, prog), kIters);
  EXPECT_EQ((*restored)->vcpu(0).state.regs, vm->vcpu(0).state.regs);
  EXPECT_EQ((*restored)->vcpu(0).state.instret, vm->vcpu(0).state.instret);
}

TEST(SnapshotTest, LegacyV1ImageStillRestores) {
  // Backward compatibility: a v1-format snapshot (no feature-bits word, no
  // translation sections) must still restore on the current code -- the
  // clone just starts cold.
  Host host;
  constexpr uint32_t kIters = 600000;
  std::string prog = guest::ComputeProgram(kIters);
  Vm* vm = WarmPausedVm(host, "v1src", prog);

  snapshot::SaveOptions opts;
  opts.legacy_v1 = true;
  auto bytes = snapshot::SaveVm(*vm, opts);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();

  auto restored = snapshot::CloneVm(host, WarmDbtConfig("v1dst"), *bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->vcpu(0).stats.persist_hits, 0u);
  EXPECT_EQ((*restored)->vcpu(0).stats.persist_misses, 0u);

  ASSERT_TRUE(host.RunUntilVmStops(*restored, 30 * kSimTicksPerSec));
  EXPECT_EQ((*restored)->state(), VmState::kShutdown);
  EXPECT_EQ(ReadProgress(*restored, prog), kIters);
  EXPECT_GT((*restored)->vcpu(0).stats.blocks_translated, 0u);  // cold start
}

// Chaos: a torn write inside the persisted translation section. The outer
// snapshot still parses (its trailer CRC is re-sealed, the way a torn-then-
// rewritten file would checksum clean at the container level), so the
// corruption is only detectable by the translation blob's own CRC: the
// engine must reject the blob, count a persist miss, and degrade to cold
// translation with identical architectural results.
TEST(SnapshotTornWriteTest, TornTranslationBlobDegradesToColdTranslate) {
  Host host;
  constexpr uint32_t kIters = 600000;
  std::string prog = guest::ComputeProgram(kIters);
  Vm* vm = WarmPausedVm(host, "torn", prog);

  auto bytes = snapshot::SaveVm(*vm);
  ASSERT_TRUE(bytes.ok());

  // Locate the inner 'HCT2' translation header (the section sits near the
  // tail, after RAM and devices) and tear a byte inside the first unit.
  const uint8_t sig[4] = {'H', 'C', 'T', '2'};
  size_t pos = bytes->size();
  for (size_t i = bytes->size() - sizeof(sig); i-- > 0;) {
    if (std::memcmp(bytes->data() + i, sig, sizeof(sig)) == 0) {
      pos = i;
      break;
    }
  }
  ASSERT_LT(pos, bytes->size()) << "no translation section in the snapshot";
  ASSERT_LT(pos + 16, bytes->size() - 4);
  (*bytes)[pos + 16] ^= 0xA5;
  // Re-seal the outer CRC so only the inner blob checksum can catch it.
  uint32_t crc = Crc32(bytes->data(), bytes->size() - 4);
  for (int i = 0; i < 4; ++i) {
    (*bytes)[bytes->size() - 4 + i] = static_cast<uint8_t>(crc >> (8 * i));
  }

  auto restored = snapshot::CloneVm(host, WarmDbtConfig("torn2"), *bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->vcpu(0).stats.persist_hits, 0u);
  EXPECT_GT((*restored)->vcpu(0).stats.persist_misses, 0u);

  ASSERT_TRUE(host.RunUntilVmStops(*restored, 30 * kSimTicksPerSec));
  EXPECT_EQ((*restored)->state(), VmState::kShutdown);
  EXPECT_EQ(ReadProgress(*restored, prog), kIters);
  EXPECT_GT((*restored)->vcpu(0).stats.blocks_translated, 0u);  // cold fallback
}

// ---------------------------------------------------------------------------
// Migration
// ---------------------------------------------------------------------------

TEST(MigrationTest, PreCopyMovesARunningVm) {
  Host src, dst;
  std::string prog = guest::DirtyRateProgram(32, 2000);
  Vm* vm = BootVm(src, VmConfig{.name = "mig"}, prog);
  src.RunFor(20 * kSimTicksPerMs);
  uint32_t progress_before = ReadProgress(vm, prog);

  migrate::MigrationReport report;
  auto moved = migrate::PreCopyMigrate(src, vm, dst, migrate::MigrateOptions{}, &report);
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  EXPECT_EQ(vm->state(), VmState::kPaused);
  EXPECT_EQ((*moved)->state(), VmState::kRunning);
  EXPECT_GE(report.rounds, 1u);
  EXPECT_GT(report.downtime, 0u);
  EXPECT_GT(report.total_time, report.downtime);
  EXPECT_GT(report.pages_sent, vm->memory().num_pages() / 2);

  // The destination VM continues making progress from where it was.
  dst.RunFor(20 * kSimTicksPerMs);
  EXPECT_GE(ReadProgress(*moved, prog), progress_before);
}

TEST(MigrationTest, PreCopyDirtyRateDrivesRounds) {
  auto run = [](uint32_t compute_per_write) {
    Host src, dst;
    std::string prog = guest::DirtyRateProgram(64, compute_per_write);
    Vm* vm = BootVm(src, VmConfig{.name = "m"}, prog);
    src.RunFor(10 * kSimTicksPerMs);
    migrate::MigrationReport report;
    auto moved = migrate::PreCopyMigrate(src, vm, dst, migrate::MigrateOptions{}, &report);
    EXPECT_TRUE(moved.ok());
    return report;
  };
  migrate::MigrationReport fast_dirtier = run(100);     // dirties aggressively
  migrate::MigrationReport slow_dirtier = run(100000);  // mostly computes
  EXPECT_GE(fast_dirtier.pages_sent, slow_dirtier.pages_sent);
  EXPECT_GE(fast_dirtier.downtime, slow_dirtier.downtime);
}

TEST(MigrationTest, PostCopyHasTinyDowntime) {
  Host src, dst;
  std::string prog = guest::DirtyRateProgram(32, 2000);
  Vm* vm = BootVm(src, VmConfig{.name = "pc"}, prog);
  src.RunFor(20 * kSimTicksPerMs);

  migrate::MigrationReport pre_report;
  {
    // Measure pre-copy on an identical sibling for comparison.
    Host src2, dst2;
    Vm* vm2 = BootVm(src2, VmConfig{.name = "pc2"}, prog);
    src2.RunFor(20 * kSimTicksPerMs);
    auto moved2 = migrate::PreCopyMigrate(src2, vm2, dst2, migrate::MigrateOptions{}, &pre_report);
    ASSERT_TRUE(moved2.ok());
  }

  migrate::MigrationReport report;
  auto moved = migrate::PostCopyMigrate(src, vm, dst, migrate::MigrateOptions{}, &report);
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  EXPECT_EQ((*moved)->state(), VmState::kRunning) << (*moved)->crash_reason().ToString();
  EXPECT_LT(report.downtime, pre_report.downtime);
  EXPECT_GT(report.demand_fetches + report.pages_sent, 0u);

  // All pages resident; destination runs standalone afterwards.
  uint32_t p1 = ReadProgress(*moved, prog);
  dst.RunFor(20 * kSimTicksPerMs);
  EXPECT_GT(ReadProgress(*moved, prog), p1);
}

// ---------------------------------------------------------------------------
// VM fork (copy-on-write cloning)
// ---------------------------------------------------------------------------

TEST(ForkTest, ChildContinuesFromForkPoint) {
  Host host;
  constexpr uint32_t kIters = 100000;
  std::string prog = guest::ComputeProgram(kIters);
  Vm* parent = BootVm(host, VmConfig{.name = "parent"}, prog);
  host.RunFor(5 * kSimTicksPerMs);
  parent->Pause(TestPhase());
  uint32_t at_fork = ReadProgress(parent, prog);
  ASSERT_GT(at_fork, 0u);
  ASSERT_LT(at_fork, kIters);

  size_t frames_before = host.pool().used_frames();
  auto child = snapshot::ForkVm(host, VmConfig{.name = "child"}, *parent);
  ASSERT_TRUE(child.ok()) << child.status().ToString();
  // COW fork: almost no new frames consumed (metadata only).
  EXPECT_LT(host.pool().used_frames(), frames_before + 8);
  EXPECT_EQ(ReadProgress(*child, prog), at_fork);

  // Both finish with identical results.
  parent->Resume(TestPhase());
  ASSERT_TRUE(host.RunUntilVmStops(parent, 30 * kSimTicksPerSec));
  ASSERT_TRUE(host.RunUntilVmStops(*child, 30 * kSimTicksPerSec));
  EXPECT_EQ(parent->state(), VmState::kShutdown);
  EXPECT_EQ((*child)->state(), VmState::kShutdown) << (*child)->crash_reason().ToString();
  EXPECT_EQ(ReadProgress(parent, prog), kIters);
  EXPECT_EQ(ReadProgress(*child, prog), kIters);
}

TEST(ForkTest, LinkedClonesInheritWarmTranslations) {
  // A fork of a warmed DBT parent boots with the parent's translation units
  // already installed: the child's first pass runs hot with zero cold
  // translates (the pre-warmed linked-clone path of DESIGN.md §12).
  Host host;
  constexpr uint32_t kIters = 600000;
  std::string prog = guest::ComputeProgram(kIters);
  Vm* parent = WarmPausedVm(host, "warmparent", prog);
  uint32_t at_fork = ReadProgress(parent, prog);
  ASSERT_LT(at_fork, kIters);

  auto child = snapshot::ForkVm(host, WarmDbtConfig("warmchild"), *parent);
  ASSERT_TRUE(child.ok()) << child.status().ToString();
  EXPECT_GT((*child)->vcpu(0).stats.persist_hits, 0u);
  EXPECT_EQ((*child)->vcpu(0).stats.persist_misses, 0u);

  host.RunFor(5 * kSimTicksPerMs);
  (*child)->Pause(TestPhase());
  EXPECT_GT(ReadProgress(*child, prog), at_fork);
  EXPECT_EQ((*child)->vcpu(0).stats.blocks_translated, 0u);
  EXPECT_GT((*child)->vcpu(0).stats.tier2_executions, 0u);
  (*child)->Resume(TestPhase());

  parent->Resume(TestPhase());
  ASSERT_TRUE(host.RunUntilVmStops(parent, 30 * kSimTicksPerSec));
  ASSERT_TRUE(host.RunUntilVmStops(*child, 30 * kSimTicksPerSec));
  EXPECT_EQ(ReadProgress(parent, prog), kIters);
  EXPECT_EQ(ReadProgress(*child, prog), kIters);
  EXPECT_EQ((*child)->vcpu(0).state.regs, parent->vcpu(0).state.regs);
}

TEST(ForkTest, WritesDivergePrivately) {
  Host host;
  std::string prog = guest::ComputeProgram(0);
  Vm* parent = BootVm(host, VmConfig{.name = "parent"}, prog);
  host.RunFor(2 * kSimTicksPerMs);
  parent->Pause(TestPhase());
  auto child = snapshot::ForkVm(host, VmConfig{.name = "child"}, *parent);
  ASSERT_TRUE(child.ok());

  // Host-side writes to each side stay private.
  ASSERT_TRUE(parent->memory().WriteU32(0x9000, 0x1111).ok());
  ASSERT_TRUE((*child)->memory().WriteU32(0x9000, 0x2222).ok());
  EXPECT_EQ(*parent->memory().ReadU32(0x9000), 0x1111u);
  EXPECT_EQ(*(*child)->memory().ReadU32(0x9000), 0x2222u);

  // Guest-side divergence: run both; their progress counters move
  // independently on privatized pages.
  parent->Resume(TestPhase());
  host.RunFor(5 * kSimTicksPerMs);
  uint32_t pp = ReadProgress(parent, prog);
  uint32_t cp = ReadProgress(*child, prog);
  EXPECT_GT(pp, 0u);
  EXPECT_GT(cp, 0u);
  EXPECT_GT((*child)->TotalStats().cow_breaks + parent->TotalStats().cow_breaks, 0u);
}

TEST(ForkTest, GeometryMismatchRejected) {
  Host host;
  Vm* parent = BootVm(host, VmConfig{.name = "parent"}, guest::ComputeProgram(10));
  parent->Pause(TestPhase());
  VmConfig bad{.name = "child"};
  bad.ram_bytes = 8u << 20;
  EXPECT_EQ(snapshot::ForkVm(host, bad, *parent).status().code(),
            StatusCode::kInvalidArgument);
  // Running parent rejected too.
  parent->Resume(TestPhase());
  EXPECT_EQ(snapshot::ForkVm(host, VmConfig{.name = "child"}, *parent).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ForkTest, ManyForksShareUntilTouched) {
  Host host;
  std::string prog = guest::ComputeProgram(0);
  Vm* parent = BootVm(host, VmConfig{.name = "parent"}, prog);
  host.RunFor(2 * kSimTicksPerMs);
  parent->Pause(TestPhase());

  size_t before = host.pool().used_frames();
  std::vector<Vm*> children;
  for (int i = 0; i < 6; ++i) {
    auto child = snapshot::ForkVm(host, VmConfig{.name = "c" + std::to_string(i)}, *parent);
    ASSERT_TRUE(child.ok()) << child.status().ToString();
    children.push_back(*child);
  }
  // Six 4 MiB children for (almost) free.
  EXPECT_LT(host.pool().used_frames(), before + 16);

  // Running them privatizes only what they write.
  host.RunFor(10 * kSimTicksPerMs);
  size_t after_run = host.pool().used_frames();
  EXPECT_GT(after_run, before);                       // some pages privatized
  EXPECT_LT(after_run, before + 6 * 64);              // far from full copies
  for (Vm* c : children) {
    EXPECT_GT(ReadProgress(c, prog), 0u);
  }
}

// ---------------------------------------------------------------------------
// SMP guests
// ---------------------------------------------------------------------------

TEST(SmpTest, SecondaryVcpusStartAndCount) {
  core::HostConfig hc;
  hc.num_pcpus = 4;
  Host host(hc);
  std::string prog = guest::SmpCounterProgram(5000);
  VmConfig cfg{.name = "smp"};
  cfg.num_vcpus = 4;
  Vm* vm = BootVm(host, cfg, prog);
  ASSERT_TRUE(host.RunUntilVmStops(vm, 10 * kSimTicksPerSec));
  ASSERT_EQ(vm->state(), VmState::kShutdown) << vm->crash_reason().ToString();
  // 3 workers x 5000 increments.
  EXPECT_EQ(ReadProgress(vm, prog), 15000u);
}

TEST(SmpTest, WorkersRunInParallelOnMultiplePcpus) {
  auto run = [](uint32_t pcpus) {
    core::HostConfig hc;
    hc.num_pcpus = pcpus;
    Host host(hc);
    std::string prog = guest::SmpCounterProgram(200000);
    VmConfig cfg{.name = "smp"};
    cfg.num_vcpus = 4;
    Vm* vm = BootVm(host, cfg, prog);
    // Fine-grained steps so the completion time is measured precisely.
    while (vm->state() == VmState::kRunning &&
           host.clock().now() < 60 * kSimTicksPerSec) {
      host.RunFor(kSimTicksPerMs / 10);
    }
    EXPECT_EQ(vm->state(), VmState::kShutdown);
    return host.clock().now();
  };
  SimTime serial = run(1);
  SimTime parallel = run(4);
  // Three parallel workers must finish substantially faster than serialized.
  EXPECT_LT(parallel * 4, serial * 3);
}

TEST(SmpTest, StartVcpuValidation) {
  Host host;
  VmConfig cfg{.name = "smp"};
  cfg.num_vcpus = 2;
  // Bad index (0 = self, 5 = out of range) then double-start.
  Vm* vm = BootVm(host, cfg, R"(
.org 0x1000
_start:
    li a0, 10
    li a1, 0          ; cannot "start" the boot vCPU
    la a2, park
    hcall
    mv s0, a0
    li a0, 10
    li a1, 5          ; out of range
    la a2, park
    hcall
    mv s1, a0
    li a0, 10
    li a1, 1          ; valid
    la a2, park
    hcall
    mv s2, a0
    li a0, 10
    li a1, 1          ; double start
    la a2, park
    hcall
    mv s3, a0
    li a0, 4
    hcall
    halt
park:
    halt
)");
  ASSERT_TRUE(host.RunUntilVmStops(vm, kSimTicksPerSec));
  EXPECT_EQ(vm->vcpu(0).state.ReadReg(isa::kS0), 1u);
  EXPECT_EQ(vm->vcpu(0).state.ReadReg(isa::kS1), 1u);
  EXPECT_EQ(vm->vcpu(0).state.ReadReg(isa::kS2), 0u);
  EXPECT_EQ(vm->vcpu(0).state.ReadReg(isa::kS3), 2u);
}

// The SMP coherence gauntlet: MCS lock (amoswap), sense-reversing barriers
// (amoadd), and guest-initiated TLB shootdowns over the PIC IPI doorbell.
// Nested paging is load-bearing: guest PTE writes do not trap there, so a
// sibling's stale translation survives unless the shootdown IPI + sfence
// protocol actually works. progress != 4*iters means either a lost update
// under the lock or a stale TLB read after the remap rounds.
TEST(SmpTest, McsLockWithTlbShootdowns) {
  for (auto engine : {cpu::EngineKind::kInterpreter, cpu::EngineKind::kDbt}) {
    core::HostConfig hc;
    hc.num_pcpus = 4;
    Host host(hc);
    guest::SmpLockParams p;
    std::string prog = guest::SmpMcsLockProgram(p);
    VmConfig cfg{.name = "mcs"};
    cfg.ram_bytes = 8u << 20;
    cfg.num_vcpus = p.num_vcpus;
    cfg.paging_mode = mmu::PagingMode::kNested;
    cfg.engine = engine;
    Vm* vm = BootVm(host, cfg, prog);
    ASSERT_TRUE(host.RunUntilVmStops(vm, 60 * kSimTicksPerSec));
    ASSERT_EQ(vm->state(), VmState::kShutdown) << vm->crash_reason().ToString();
    EXPECT_EQ(ReadProgress(vm, prog), p.num_vcpus * p.lock_iters);
    // Non-vacuity: the IPI and shootdown machinery actually fired.
    cpu::VcpuStats total = vm->TotalStats();
    uint64_t expected_ipis = uint64_t{p.shootdown_rounds} * (p.num_vcpus - 1);
    EXPECT_EQ(vm->vcpu(0).stats.ipis_sent, expected_ipis);
    EXPECT_EQ(total.ipis_received, expected_ipis);
    EXPECT_EQ(total.shootdowns, expected_ipis);
    for (uint32_t i = 1; i < p.num_vcpus; ++i) {
      EXPECT_EQ(vm->vcpu(i).stats.shootdowns, p.shootdown_rounds) << "vcpu " << i;
    }
  }
}

// vCPU > 0 must be a first-class citizen on the hypercall and MMIO paths:
// console output, value logging, time reads and UART stores issued from a
// secondary must behave exactly as from the boot vCPU.
TEST(SmpTest, SecondaryVcpuHypercallsAndMmioMatchBoot) {
  auto run = [](bool from_secondary) {
    Host host;
    VmConfig cfg{.name = "io"};
    cfg.num_vcpus = 2;
    std::ostringstream prog;
    prog << R"(.org 0x1000
    j _start
.align 4096
progress:
    .word 0
.align 4096
_start:
)";
    if (from_secondary) {
      prog << R"(
    li a0, 10
    li a1, 1
    la a2, body
    hcall
park:
    wfi
    j park
)";
    } else {
      prog << "    j body\n";
    }
    prog << R"(
body:
    li a0, 0              ; putchar 'X'
    li t0, 'X'
    mv a1, t0
    hcall
    li a0, 8              ; log a value
    li a1, 0xC0FFEE
    hcall
    li a0, 3              ; gettime must not fault
    hcall
    li t0, 0xF0000000     ; UART MMIO store
    li t1, 'Y'
    sw t1, 0(t0)
    la t3, progress
    li t2, 1
    sw t2, 0(t3)
    li a0, 4              ; shutdown
    hcall
    halt
)";
    struct Out {
      std::string console;
      std::string uart;
      std::vector<uint32_t> logged;
    };
    Vm* vm = BootVm(host, cfg, prog.str());
    EXPECT_TRUE(host.RunUntilVmStops(vm, 10 * kSimTicksPerSec));
    EXPECT_EQ(vm->state(), VmState::kShutdown) << vm->crash_reason().ToString();
    return Out{vm->console(), vm->uart() ? vm->uart()->output() : "", vm->logged_values()};
  };
  auto boot = run(false);
  auto secondary = run(true);
  EXPECT_EQ(boot.console, secondary.console);
  EXPECT_EQ(boot.uart, secondary.uart);
  EXPECT_EQ(boot.logged, secondary.logged);
  EXPECT_EQ(secondary.console, "X");
  EXPECT_EQ(secondary.logged, std::vector<uint32_t>{0xC0FFEE});
}

TEST(SmpTest, UnstartedSecondariesStayParked) {
  Host host;
  VmConfig cfg{.name = "smp"};
  cfg.num_vcpus = 3;
  std::string prog = guest::ComputeProgram(100);  // vcpu0 only
  Vm* vm = BootVm(host, cfg, prog);
  ASSERT_TRUE(host.RunUntilVmStops(vm, 10 * kSimTicksPerSec));
  EXPECT_EQ(vm->state(), VmState::kShutdown);
  EXPECT_EQ(ReadProgress(vm, prog), 100u);
  // The parked vCPUs never executed anything meaningful.
  EXPECT_LT(vm->vcpu(1).stats.instructions, 5u);
  EXPECT_LT(vm->vcpu(2).stats.instructions, 5u);
}

// ---------------------------------------------------------------------------
// Ballooning
// ---------------------------------------------------------------------------

TEST(BalloonTest, GuestDriverFollowsTarget) {
  Host host;
  // Balloon pool: pages 512..1023 of a 4 MiB guest (2 MiB reclaimable).
  std::string prog = guest::BalloonDriverProgram(512, 512, 100000);
  Vm* vm = BootVm(host, VmConfig{.name = "bal"}, prog);
  size_t used_before = host.pool().used_frames();

  vm->SetBalloonTarget(128);
  host.RunFor(100 * kSimTicksPerMs);
  EXPECT_EQ(vm->ballooned_pages(), 128u);
  EXPECT_EQ(host.pool().used_frames(), used_before - 128);

  vm->SetBalloonTarget(32);
  host.RunFor(200 * kSimTicksPerMs);
  EXPECT_EQ(vm->ballooned_pages(), 32u);
  EXPECT_EQ(host.pool().used_frames(), used_before - 32);
}

TEST(BalloonTest, ControllerDistributesProportionally) {
  Host host;
  std::string prog = guest::BalloonDriverProgram(512, 512, 100000);
  Vm* a = BootVm(host, VmConfig{.name = "a"}, prog);
  Vm* b = BootVm(host, VmConfig{.name = "b"}, prog);

  balloon::BalloonController controller(&host);
  auto plan = controller.ReclaimPages(200);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->size(), 2u);
  host.RunFor(300 * kSimTicksPerMs);
  EXPECT_EQ(controller.TotalBallooned(), 200u);
  // Equal VMs: equal split (within rounding).
  EXPECT_NEAR(static_cast<double>(a->ballooned_pages()),
              static_cast<double>(b->ballooned_pages()), 2.0);

  controller.ReleaseAll();
  host.RunFor(400 * kSimTicksPerMs);
  EXPECT_EQ(controller.TotalBallooned(), 0u);
}

TEST(BalloonTest, OverdraftRejected) {
  Host host;
  std::string prog = guest::BalloonDriverProgram(512, 512, 100000);
  (void)BootVm(host, VmConfig{.name = "only"}, prog);
  balloon::BalloonController controller(&host);
  // A 4 MiB VM has 1024 pages; floor keeps 256, so max reclaim < 1024.
  auto plan = controller.ReclaimPages(2000);
  EXPECT_EQ(plan.status().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// KSM
// ---------------------------------------------------------------------------

TEST(KsmTest, MergesIdenticalPagesAcrossVms) {
  Host host;
  // Two VMs fill 64 pages each; the first 48 are identical across VMs.
  std::string prog_a = guest::PatternFillProgram(64, 48, 1);
  std::string prog_b = guest::PatternFillProgram(64, 48, 2);
  Vm* a = BootVm(host, VmConfig{.name = "a"}, prog_a);
  Vm* b = BootVm(host, VmConfig{.name = "b"}, prog_b);
  host.RunFor(200 * kSimTicksPerMs);
  ASSERT_EQ(ReadProgress(a, prog_a), 1u);
  ASSERT_EQ(ReadProgress(b, prog_b), 1u);

  ksm::KsmDaemon daemon(&host.pool());
  daemon.AddClient(&a->memory());
  daemon.AddClient(&b->memory());
  size_t used_before = host.pool().used_frames();
  uint64_t merged = daemon.ScanOnce();
  size_t used_after = host.pool().used_frames();

  // At least the 48 identical workload pages merge (plus zero pages).
  EXPECT_GE(merged, 48u);
  EXPECT_GE(used_before - used_after, 48u);
  EXPECT_GE(daemon.stats().BytesSaved(), 48u * isa::kPageSize);
}

TEST(KsmTest, CowBreakPreservesIsolation) {
  Host host;
  std::string prog = guest::PatternFillProgram(16, 16, 1);
  Vm* a = BootVm(host, VmConfig{.name = "a"}, prog);
  Vm* b = BootVm(host, VmConfig{.name = "b"}, prog);
  host.RunFor(200 * kSimTicksPerMs);

  ksm::KsmDaemon daemon(&host.pool());
  daemon.AddClient(&a->memory());
  daemon.AddClient(&b->memory());
  ASSERT_GT(daemon.ScanOnce(), 0u);

  // Host-side write to a shared page in A must not leak into B.
  uint32_t gpa = 0x100000;  // first pattern page
  uint32_t gpn = isa::PageNumber(gpa);
  ASSERT_TRUE(a->memory().IsShared(gpn));
  ASSERT_TRUE(a->memory().WriteU32(gpa, 0xDEADBEEF).ok());
  EXPECT_EQ(*a->memory().ReadU32(gpa), 0xDEADBEEFu);
  EXPECT_NE(*b->memory().ReadU32(gpa), 0xDEADBEEFu);
  EXPECT_FALSE(a->memory().IsShared(gpn));
}

TEST(KsmTest, RescanIsStable) {
  Host host;
  std::string prog = guest::PatternFillProgram(32, 32, 1);
  Vm* a = BootVm(host, VmConfig{.name = "a"}, prog);
  Vm* b = BootVm(host, VmConfig{.name = "b"}, prog);
  host.RunFor(200 * kSimTicksPerMs);

  ksm::KsmDaemon daemon(&host.pool());
  daemon.AddClient(&a->memory());
  daemon.AddClient(&b->memory());
  uint64_t first = daemon.ScanOnce();
  EXPECT_GT(first, 0u);
  size_t used_after_first = host.pool().used_frames();
  uint64_t second = daemon.ScanOnce();
  EXPECT_EQ(second, 0u);  // nothing new to merge
  EXPECT_EQ(host.pool().used_frames(), used_after_first);
}

}  // namespace
}  // namespace hyperion
