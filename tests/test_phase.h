// Serial-context phase token for tests.
//
// Every gtest body runs on the main test thread, outside any execute slice,
// so one process-wide ScopedSerialPhase is sound evidence for all direct
// effects a test performs (scheduling, switch sends, refcount edits, ...).
// Tests that specifically exercise the staged/execute regime go through
// Host::RunRound like production code and never touch this token.

#ifndef TESTS_TEST_PHASE_H_
#define TESTS_TEST_PHASE_H_

#include "src/util/phase.h"

namespace hyperion {

inline const SerialPhase& TestPhase() {
  static ScopedSerialPhase scope;
  return scope.get();
}

}  // namespace hyperion

#endif  // TESTS_TEST_PHASE_H_
