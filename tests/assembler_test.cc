// Tests for the HV32 two-pass assembler: syntax, directives, pseudo-ops,
// label resolution, error reporting, and round-trips through the decoder.

#include <gtest/gtest.h>

#include "src/asm/assembler.h"
#include "src/isa/hv32.h"

namespace hyperion::assembler {
namespace {

using isa::AluOp;
using isa::BranchCond;
using isa::Decode;
using isa::Instruction;
using isa::Opcode;

uint32_t WordAt(const Image& image, uint32_t addr) {
  EXPECT_GE(addr, image.base);
  size_t off = addr - image.base;
  EXPECT_LE(off + 4, image.bytes.size());
  uint32_t w = 0;
  for (int b = 3; b >= 0; --b) {
    w = (w << 8) | image.bytes[off + static_cast<size_t>(b)];
  }
  return w;
}

TEST(AssemblerTest, EmptySourceYieldsEmptyImage) {
  auto image = Assemble("");
  ASSERT_TRUE(image.ok());
  EXPECT_TRUE(image->bytes.empty());
}

TEST(AssemblerTest, SingleInstructionAtDefaultOrigin) {
  auto image = Assemble("add a0, a1, a2");
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->base, isa::kResetPc);
  Instruction i = Decode(WordAt(*image, isa::kResetPc));
  EXPECT_EQ(i.opcode, Opcode::kOp);
  EXPECT_EQ(i.funct, static_cast<uint8_t>(AluOp::kAdd));
  EXPECT_EQ(i.rd, isa::kA0);
  EXPECT_EQ(i.rs1, isa::kA1);
  EXPECT_EQ(i.rs2, isa::kA2);
}

TEST(AssemblerTest, CommentsAndBlankLines) {
  auto image = Assemble(R"(
    ; full line comment
    # another
    addi a0, zero, 5   ; trailing comment
  )");
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->bytes.size(), 4u);
}

TEST(AssemblerTest, OrgMovesLocationCounter) {
  auto image = Assemble(".org 0x2000\nnop\n");
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->base, 0x2000u);
}

TEST(AssemblerTest, LabelsAndBranchBackward) {
  auto image = Assemble(R"(
loop:
    addi a0, a0, 1
    bne a0, a1, loop
  )");
  ASSERT_TRUE(image.ok());
  Instruction br = Decode(WordAt(*image, image->base + 4));
  EXPECT_EQ(br.opcode, Opcode::kBranch);
  EXPECT_EQ(br.funct, static_cast<uint8_t>(BranchCond::kNe));
  EXPECT_EQ(br.imm, -4);  // branch back one instruction
}

TEST(AssemblerTest, ForwardReferenceResolves) {
  auto image = Assemble(R"(
    j done
    nop
done:
    halt
  )");
  ASSERT_TRUE(image.ok());
  Instruction j = Decode(WordAt(*image, image->base));
  EXPECT_EQ(j.opcode, Opcode::kJal);
  EXPECT_EQ(j.rd, isa::kZero);
  EXPECT_EQ(j.imm, 8);
}

TEST(AssemblerTest, LiSmallAndLargeValues) {
  auto image = Assemble("li a0, 42\nli a1, 0xDEADBEEF\n");
  ASSERT_TRUE(image.ok());
  // Every li is a lui+addi pair.
  Instruction lui0 = Decode(WordAt(*image, image->base + 0));
  Instruction addi0 = Decode(WordAt(*image, image->base + 4));
  EXPECT_EQ(lui0.opcode, Opcode::kLui);
  EXPECT_EQ(addi0.opcode, Opcode::kOpImm);
  // Simulate the pair: rd = (lui imm) + (addi imm).
  uint32_t v0 = static_cast<uint32_t>(lui0.imm) + static_cast<uint32_t>(addi0.imm);
  EXPECT_EQ(v0, 42u);

  Instruction lui1 = Decode(WordAt(*image, image->base + 8));
  Instruction addi1 = Decode(WordAt(*image, image->base + 12));
  uint32_t v1 = static_cast<uint32_t>(lui1.imm) + static_cast<uint32_t>(addi1.imm);
  EXPECT_EQ(v1, 0xDEADBEEFu);
}

TEST(AssemblerTest, PropertyLiReconstructsValue) {
  // Sweep tricky values: sign-bit boundaries of the 14-bit immediate.
  for (uint64_t v64 : {0ull, 1ull, 0x1FFFull, 0x2000ull, 0x3FFFull, 0x4000ull,
                       0x7FFFFFFFull, 0x80000000ull, 0xFFFFFFFFull, 0xDEAD2000ull,
                       0x00002001ull, 0xFFFFE000ull}) {
    uint32_t v = static_cast<uint32_t>(v64);
    auto image = Assemble("li a0, " + std::to_string(v) + "\n");
    ASSERT_TRUE(image.ok()) << v;
    Instruction lui = Decode(WordAt(*image, image->base));
    Instruction addi = Decode(WordAt(*image, image->base + 4));
    uint32_t got = static_cast<uint32_t>(lui.imm) + static_cast<uint32_t>(addi.imm);
    EXPECT_EQ(got, v) << "value " << std::hex << v;
  }
}

TEST(AssemblerTest, LaUsesSymbolAddress) {
  auto image = Assemble(R"(
    la a0, message
    halt
message:
    .asciz "hi"
  )");
  ASSERT_TRUE(image.ok());
  auto addr = image->SymbolAddress("message");
  ASSERT_TRUE(addr.ok());
  Instruction lui = Decode(WordAt(*image, image->base));
  Instruction addi = Decode(WordAt(*image, image->base + 4));
  EXPECT_EQ(static_cast<uint32_t>(lui.imm) + static_cast<uint32_t>(addi.imm), *addr);
}

TEST(AssemblerTest, MemoryOperands) {
  auto image = Assemble("lw a0, 8(sp)\nsw a1, -4(t0)\nlw a2, (gp)\n");
  ASSERT_TRUE(image.ok());
  Instruction lw = Decode(WordAt(*image, image->base));
  EXPECT_EQ(lw.opcode, Opcode::kLw);
  EXPECT_EQ(lw.rs1, isa::kSp);
  EXPECT_EQ(lw.imm, 8);
  Instruction sw = Decode(WordAt(*image, image->base + 4));
  EXPECT_EQ(sw.opcode, Opcode::kSw);
  EXPECT_EQ(sw.rd, isa::kA1);  // store source rides in rd
  EXPECT_EQ(sw.rs1, isa::kT0);
  EXPECT_EQ(sw.imm, -4);
  Instruction lw2 = Decode(WordAt(*image, image->base + 8));
  EXPECT_EQ(lw2.imm, 0);
}

TEST(AssemblerTest, CsrOpsAndPseudos) {
  auto image = Assemble(R"(
    csrrw a0, status, a1
    csrr a2, ptbr
    csrw timecmp, a3
  )");
  ASSERT_TRUE(image.ok());
  Instruction w = Decode(WordAt(*image, image->base));
  EXPECT_EQ(w.opcode, Opcode::kCsrrw);
  EXPECT_EQ(w.imm, 0x000);
  Instruction r = Decode(WordAt(*image, image->base + 4));
  EXPECT_EQ(r.opcode, Opcode::kCsrrs);
  EXPECT_EQ(r.rs1, isa::kZero);
  EXPECT_EQ(r.imm, 0x006);
  Instruction ww = Decode(WordAt(*image, image->base + 8));
  EXPECT_EQ(ww.opcode, Opcode::kCsrrw);
  EXPECT_EQ(ww.rd, isa::kZero);
  EXPECT_EQ(ww.imm, 0x011);
}

TEST(AssemblerTest, EquConstants) {
  auto image = Assemble(R"(
    .equ UART_BASE, 0xF0000000
    .equ OFFSET, 8
    li a0, UART_BASE + OFFSET
  )");
  ASSERT_TRUE(image.ok());
  Instruction lui = Decode(WordAt(*image, image->base));
  Instruction addi = Decode(WordAt(*image, image->base + 4));
  EXPECT_EQ(static_cast<uint32_t>(lui.imm) + static_cast<uint32_t>(addi.imm), 0xF0000008u);
}

TEST(AssemblerTest, WordAndByteData) {
  auto image = Assemble(R"(
    .org 0x1000
data:
    .word 0x11223344, data
    .byte 1, 2, 3
  )");
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(WordAt(*image, 0x1000), 0x11223344u);
  EXPECT_EQ(WordAt(*image, 0x1004), 0x1000u);  // self-referential symbol
  EXPECT_EQ(image->bytes[8], 1);
  EXPECT_EQ(image->bytes[9], 2);
  EXPECT_EQ(image->bytes[10], 3);
}

TEST(AssemblerTest, AlignPadsWithZeros) {
  auto image = Assemble(".byte 1\n.align 8\n.byte 2\n");
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->bytes.size(), 9u);
  EXPECT_EQ(image->bytes[0], 1);
  EXPECT_EQ(image->bytes[8], 2);
  for (int i = 1; i < 8; ++i) {
    EXPECT_EQ(image->bytes[i], 0);
  }
}

TEST(AssemblerTest, SpaceReserves) {
  auto image = Assemble(".byte 7\n.space 16\n.byte 9\n");
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->bytes.size(), 18u);
}

TEST(AssemblerTest, AsciiEscapes) {
  auto image = Assemble(R"(.asciz "a\n\t\"b\\")");
  ASSERT_TRUE(image.ok());
  std::string s(image->bytes.begin(), image->bytes.end());
  EXPECT_EQ(s, std::string("a\n\t\"b\\") + '\0');
}

TEST(AssemblerTest, StartSymbolDefinesEntry) {
  auto image = Assemble(".org 0x1000\nnop\n_start:\nhalt\n");
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->entry(), 0x1004u);
}

TEST(AssemblerTest, EntryDefaultsToBase) {
  auto image = Assemble(".org 0x3000\nnop\n");
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->entry(), 0x3000u);
}

TEST(AssemblerTest, MultipleLabelsSameAddress) {
  auto image = Assemble("a:\nb: c: nop\n");
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(*image->SymbolAddress("a"), *image->SymbolAddress("b"));
  EXPECT_EQ(*image->SymbolAddress("b"), *image->SymbolAddress("c"));
}

TEST(AssemblerTest, PseudoOps) {
  auto image = Assemble(R"(
    mv a0, a1
    not a2, a3
    neg t0, t1
    jr ra
    ret
    nop
  )");
  ASSERT_TRUE(image.ok());
  Instruction mv = Decode(WordAt(*image, image->base));
  EXPECT_EQ(mv.opcode, Opcode::kOpImm);
  EXPECT_EQ(mv.imm, 0);
  Instruction nt = Decode(WordAt(*image, image->base + 4));
  EXPECT_EQ(nt.funct, static_cast<uint8_t>(AluOp::kXor));
  EXPECT_EQ(nt.imm, -1);
  Instruction ng = Decode(WordAt(*image, image->base + 8));
  EXPECT_EQ(ng.opcode, Opcode::kOp);
  EXPECT_EQ(ng.funct, static_cast<uint8_t>(AluOp::kSub));
  EXPECT_EQ(ng.rs1, isa::kZero);
}

TEST(AssemblerTest, BranchSwappedPseudos) {
  auto image = Assemble("x: bgt a0, a1, x\nble t0, t1, x\n");
  ASSERT_TRUE(image.ok());
  Instruction bgt = Decode(WordAt(*image, image->base));
  EXPECT_EQ(bgt.funct, static_cast<uint8_t>(BranchCond::kLt));
  EXPECT_EQ(bgt.rs1, isa::kA1);  // operands swapped
  EXPECT_EQ(bgt.rs2, isa::kA0);
}

TEST(AssemblerTest, ErrorsCarryLineNumbers) {
  auto r1 = Assemble("nop\nbogus a0\n");
  ASSERT_FALSE(r1.ok());
  EXPECT_NE(r1.status().message().find("line 2"), std::string::npos);

  auto r2 = Assemble("add a0, a1\n");
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.status().message().find("line 1"), std::string::npos);
}

TEST(AssemblerTest, UndefinedSymbolFails) {
  auto r = Assemble("j nowhere\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("nowhere"), std::string::npos);
}

TEST(AssemblerTest, DuplicateLabelFails) {
  auto r = Assemble("x: nop\nx: nop\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("duplicate"), std::string::npos);
}

TEST(AssemblerTest, BadRegisterFails) {
  auto r = Assemble("add a0, a9, a1\n");
  ASSERT_FALSE(r.ok());
}

TEST(AssemblerTest, BranchOutOfRangeFails) {
  // A branch target ~64 KiB away exceeds the 14-bit word offset.
  std::string src = "start: nop\n.org 0x40000\nbeq a0, a1, start\n";
  auto r = Assemble(src);
  ASSERT_FALSE(r.ok());
}

TEST(AssemblerTest, CharLiteralsInExpressions) {
  auto image = Assemble("li a0, 'A'\nli a1, '\\n'\n");
  ASSERT_TRUE(image.ok());
  Instruction addi = Decode(WordAt(*image, image->base + 4));
  EXPECT_EQ(static_cast<uint32_t>(addi.imm), 'A');
}

TEST(AssemblerTest, HcallEncodes) {
  auto image = Assemble("hcall\n");
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(Decode(WordAt(*image, image->base)).opcode, Opcode::kHcall);
}

TEST(AssemblerTest, EntryDirectiveRecordsEntryPoints) {
  auto image = Assemble(
      "_start:\n  halt\n"
      "umain:\n  nop\n  halt\n"
      ".entry _start\n"
      ".entry umain, user\n");
  ASSERT_TRUE(image.ok());
  ASSERT_EQ(image->entry_points.size(), 2u);
  EXPECT_EQ(image->entry_points[0].name, "_start");
  EXPECT_EQ(image->entry_points[0].addr, image->base);
  EXPECT_EQ(image->entry_points[0].priv, isa::PrivMode::kSupervisor);
  EXPECT_EQ(image->entry_points[1].name, "umain");
  EXPECT_EQ(image->entry_points[1].addr, image->base + 4);
  EXPECT_EQ(image->entry_points[1].priv, isa::PrivMode::kUser);
}

TEST(AssemblerTest, EntryDirectiveRejectsUndefinedSymbol) {
  EXPECT_FALSE(Assemble(".entry nowhere\nhalt\n").ok());
}

TEST(AssemblerTest, EntryDirectiveRejectsBadPrivilege) {
  EXPECT_FALSE(Assemble("_start: halt\n.entry _start, hypervisor\n").ok());
}

TEST(AssemblerTest, SfenceWithAndWithoutOperand) {
  auto image = Assemble("sfence\nsfence a0\n");
  ASSERT_TRUE(image.ok());
  Instruction all = Decode(WordAt(*image, image->base));
  EXPECT_EQ(all.rs1, isa::kZero);
  Instruction one = Decode(WordAt(*image, image->base + 4));
  EXPECT_EQ(one.rs1, isa::kA0);
}

}  // namespace
}  // namespace hyperion::assembler
