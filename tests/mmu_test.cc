// MMU tests: guest page walker, TLB behavior, shadow and nested
// virtualizers driven directly (no CPU engine in the loop).

#include <gtest/gtest.h>

#include <memory>

#include "src/mem/frame_pool.h"
#include "tests/test_phase.h"
#include "src/mem/guest_memory.h"
#include "src/mmu/tlb.h"
#include "src/mmu/virtualizer.h"
#include "src/mmu/walker.h"
#include "src/util/rng.h"

namespace hyperion::mmu {
namespace {

using isa::kPageSize;
using isa::Pte;

constexpr uint32_t kRamBytes = 2u << 20;  // 2 MiB
constexpr uint32_t kRoot = 0x80;          // root PT at page 0x80
constexpr uint32_t kL2 = 0x81;            // L2 table page

class MmuFixture : public ::testing::Test {
 protected:
  MmuFixture() : pool_(2048) {
    auto m = mem::GuestMemory::Create(&pool_, kRamBytes);
    EXPECT_TRUE(m.ok());
    memory_ = std::move(m).value();
  }

  void WritePte(uint32_t table_page, uint32_t index, uint32_t pte) {
    ASSERT_TRUE(memory_->WriteU32((table_page << 12) + index * 4, pte).ok());
  }

  // Standard layout: L1[0] -> L2 table; L2[i] entries added by tests.
  void SetupL2() { WritePte(kRoot, 0, Pte::Make(kL2, Pte::kValid)); }

  mem::FramePool pool_;
  std::unique_ptr<mem::GuestMemory> memory_;
};

// ---------------------------------------------------------------------------
// Walker
// ---------------------------------------------------------------------------

class WalkerTest : public MmuFixture {};

TEST_F(WalkerTest, TranslatesTwoLevelMapping) {
  SetupL2();
  WritePte(kL2, 5, Pte::Make(0x42, Pte::kValid | Pte::kRead | Pte::kWrite));
  WalkResult r = WalkGuest(*memory_, kRoot, 0x5123, Access::kLoad, isa::PrivMode::kSupervisor);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.gpa, (0x42u << 12) | 0x123u);
  EXPECT_EQ(r.steps, 2);
  EXPECT_FALSE(r.superpage);
}

TEST_F(WalkerTest, TranslatesSuperpage) {
  // L1[1]: 4 MiB leaf at ppn 0 (identity for the second 4 MiB... ppn must be
  // superpage aligned; use ppn 0).
  WritePte(kRoot, 1, Pte::Make(0, Pte::kValid | Pte::kRead | Pte::kWrite | Pte::kExec));
  uint32_t va = (1u << 22) | 0x1234;
  WalkResult r = WalkGuest(*memory_, kRoot, va, Access::kLoad, isa::PrivMode::kSupervisor);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.superpage);
  EXPECT_EQ(r.gpa, va & ((1u << 22) - 1));
  EXPECT_EQ(r.steps, 1);
}

TEST_F(WalkerTest, MisalignedSuperpageFaults) {
  WritePte(kRoot, 0, Pte::Make(3, Pte::kValid | Pte::kRead));  // ppn 3 not aligned
  WalkResult r = WalkGuest(*memory_, kRoot, 0x100, Access::kLoad, isa::PrivMode::kSupervisor);
  EXPECT_FALSE(r.ok);
}

TEST_F(WalkerTest, InvalidEntriesFault) {
  WalkResult r = WalkGuest(*memory_, kRoot, 0x5000, Access::kLoad, isa::PrivMode::kSupervisor);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.fault, isa::TrapCause::kLoadPageFault);

  SetupL2();  // valid L1, invalid L2
  r = WalkGuest(*memory_, kRoot, 0x5000, Access::kStore, isa::PrivMode::kSupervisor);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.fault, isa::TrapCause::kStorePageFault);
}

TEST_F(WalkerTest, PermissionChecks) {
  SetupL2();
  WritePte(kL2, 1, Pte::Make(0x40, Pte::kValid | Pte::kRead));               // RO kernel
  WritePte(kL2, 2, Pte::Make(0x41, Pte::kValid | Pte::kRead | Pte::kUser));  // RO user
  WritePte(kL2, 3, Pte::Make(0x42, Pte::kValid | Pte::kExec));               // X only

  // Store to read-only faults.
  EXPECT_FALSE(WalkGuest(*memory_, kRoot, 0x1000, Access::kStore, isa::PrivMode::kSupervisor).ok);
  // User cannot read a kernel page.
  EXPECT_FALSE(WalkGuest(*memory_, kRoot, 0x1000, Access::kLoad, isa::PrivMode::kUser).ok);
  // User can read a user page; supervisor can too.
  EXPECT_TRUE(WalkGuest(*memory_, kRoot, 0x2000, Access::kLoad, isa::PrivMode::kUser).ok);
  EXPECT_TRUE(WalkGuest(*memory_, kRoot, 0x2000, Access::kLoad, isa::PrivMode::kSupervisor).ok);
  // Fetch needs X; load from X-only faults.
  EXPECT_TRUE(WalkGuest(*memory_, kRoot, 0x3000, Access::kFetch, isa::PrivMode::kSupervisor).ok);
  EXPECT_FALSE(WalkGuest(*memory_, kRoot, 0x3000, Access::kLoad, isa::PrivMode::kSupervisor).ok);
}

TEST_F(WalkerTest, SetsAccessedAndDirtyBits) {
  SetupL2();
  WritePte(kL2, 7, Pte::Make(0x50, Pte::kValid | Pte::kRead | Pte::kWrite));
  uint32_t pte_gpa = (kL2 << 12) + 7 * 4;

  WalkResult r = WalkGuest(*memory_, kRoot, 0x7000, Access::kLoad, isa::PrivMode::kSupervisor);
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.writable);  // D not yet set: stores must still take the slow path
  uint32_t pte = *memory_->ReadU32(pte_gpa);
  EXPECT_TRUE(pte & Pte::kAccessed);
  EXPECT_FALSE(pte & Pte::kDirty);

  r = WalkGuest(*memory_, kRoot, 0x7000, Access::kStore, isa::PrivMode::kSupervisor);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.writable);
  pte = *memory_->ReadU32(pte_gpa);
  EXPECT_TRUE(pte & Pte::kDirty);
  EXPECT_EQ(r.leaf_pte_gpa, pte_gpa);
}

TEST_F(WalkerTest, PtOutsideRamFaults) {
  WalkResult r = WalkGuest(*memory_, 0xFFFFF, 0x1000, Access::kLoad, isa::PrivMode::kSupervisor);
  EXPECT_FALSE(r.ok);
}

// ---------------------------------------------------------------------------
// TLB
// ---------------------------------------------------------------------------

TEST(TlbTest, InsertLookup) {
  Tlb tlb(64);
  TlbEntry e;
  e.vpn = 0x123;
  e.gpn = 0x45;
  e.frame = 7;
  e.writable = true;
  tlb.Insert(e);
  const TlbEntry* hit = tlb.Lookup(0x123);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->frame, 7u);
  EXPECT_EQ(tlb.Lookup(0x124), nullptr);
  EXPECT_EQ(tlb.stats().hits, 1u);
  EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(TlbTest, LruEvictionWithinSet) {
  Tlb tlb(16);  // 4 sets x 4 ways
  // Five entries mapping to the same set (vpn % 4 == 0).
  for (uint32_t i = 0; i < 5; ++i) {
    TlbEntry e;
    e.vpn = i * 4;
    e.frame = i;
    tlb.Insert(e);
  }
  EXPECT_EQ(tlb.Lookup(0), nullptr);  // oldest evicted
  for (uint32_t i = 1; i < 5; ++i) {
    EXPECT_NE(tlb.Lookup(i * 4), nullptr) << i;
  }
}

TEST(TlbTest, FlushVariants) {
  Tlb tlb(64);
  for (uint32_t i = 0; i < 8; ++i) {
    TlbEntry e;
    e.vpn = i;
    e.gpn = 100 + (i % 2);
    tlb.Insert(e);
  }
  tlb.FlushPage(3);
  EXPECT_EQ(tlb.Lookup(3), nullptr);
  EXPECT_NE(tlb.Lookup(4), nullptr);

  tlb.FlushGpn(100);  // drops all even-gpn entries
  EXPECT_EQ(tlb.Lookup(0), nullptr);
  EXPECT_NE(tlb.Lookup(1), nullptr);

  tlb.FlushAll();
  EXPECT_EQ(tlb.Lookup(1), nullptr);
}

TEST(TlbTest, ReinsertSameVpnUpdates) {
  Tlb tlb(16);
  TlbEntry e;
  e.vpn = 9;
  e.writable = false;
  tlb.Insert(e);
  e.writable = true;
  tlb.Insert(e);
  const TlbEntry* hit = tlb.Lookup(9);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->writable);
}

// ---------------------------------------------------------------------------
// Virtualizers
// ---------------------------------------------------------------------------

struct VirtParam {
  PagingMode mode;
};

class VirtualizerTest : public MmuFixture,
                        public ::testing::WithParamInterface<PagingMode> {
 protected:
  std::unique_ptr<MemoryVirtualizer> Make() {
    return MakeVirtualizer(GetParam(), memory_.get());
  }
};

INSTANTIATE_TEST_SUITE_P(Modes, VirtualizerTest,
                         ::testing::Values(PagingMode::kShadow, PagingMode::kNested),
                         [](const ::testing::TestParamInfo<PagingMode>& param_info) {
                           return param_info.param == PagingMode::kShadow ? "Shadow" : "Nested";
                         });

TEST_P(VirtualizerTest, BareModeIdentity) {
  auto v = Make();
  auto out = v->Translate(0x3123, Access::kLoad, isa::PrivMode::kSupervisor, false, 0);
  EXPECT_EQ(out.event, MemEvent::kNone);
  EXPECT_EQ(out.gpa, 0x3123u);
  EXPECT_EQ(out.frame, memory_->FrameForPage(3));
}

TEST_P(VirtualizerTest, BareModeMmio) {
  auto v = Make();
  auto out = v->Translate(0xF0000010, Access::kStore, isa::PrivMode::kSupervisor, false, 0);
  EXPECT_TRUE(out.is_mmio);
}

TEST_P(VirtualizerTest, BareModeOutOfRangeFaults) {
  auto v = Make();
  auto out = v->Translate(kRamBytes + 0x1000, Access::kLoad, isa::PrivMode::kSupervisor, false, 0);
  EXPECT_EQ(out.event, MemEvent::kGuestFault);
}

TEST_P(VirtualizerTest, PagedTranslationAndTlbReuse) {
  SetupL2();
  WritePte(kL2, 5, Pte::Make(0x42, Pte::kValid | Pte::kRead | Pte::kWrite));
  auto v = Make();
  v->OnPtbrWrite(kRoot);

  auto out1 = v->Translate(0x5000, Access::kLoad, isa::PrivMode::kSupervisor, true, kRoot);
  ASSERT_EQ(out1.event, MemEvent::kNone);
  EXPECT_EQ(out1.gpa, 0x42u << 12);
  EXPECT_GT(out1.cost, 0u);

  auto out2 = v->Translate(0x5004, Access::kLoad, isa::PrivMode::kSupervisor, true, kRoot);
  ASSERT_EQ(out2.event, MemEvent::kNone);
  EXPECT_EQ(out2.gpa, (0x42u << 12) + 4);
  EXPECT_LT(out2.cost, out1.cost);  // TLB hit is cheaper than the walk
  EXPECT_GT(v->tlb().stats().hits, 0u);
}

TEST_P(VirtualizerTest, GuestFaultPropagates) {
  auto v = Make();
  v->OnPtbrWrite(kRoot);
  auto out = v->Translate(0x9000, Access::kLoad, isa::PrivMode::kSupervisor, true, kRoot);
  EXPECT_EQ(out.event, MemEvent::kGuestFault);
  EXPECT_EQ(out.fault_cause, isa::TrapCause::kLoadPageFault);
}

TEST_P(VirtualizerTest, SharedPageStoreYieldsCowBreak) {
  SetupL2();
  WritePte(kL2, 5, Pte::Make(0x42, Pte::kValid | Pte::kRead | Pte::kWrite | Pte::kDirty |
                                       Pte::kAccessed));
  memory_->SetShared(0x42, true);
  auto v = Make();
  v->OnPtbrWrite(kRoot);

  auto load = v->Translate(0x5000, Access::kLoad, isa::PrivMode::kSupervisor, true, kRoot);
  EXPECT_EQ(load.event, MemEvent::kNone);  // reads pass through sharing
  auto store = v->Translate(0x5000, Access::kStore, isa::PrivMode::kSupervisor, true, kRoot);
  EXPECT_EQ(store.event, MemEvent::kCowBreak);
  EXPECT_EQ(isa::PageNumber(store.gpa), 0x42u);
}

TEST_P(VirtualizerTest, MissingPageSurfaces) {
  SetupL2();
  WritePte(kL2, 5, Pte::Make(0x42, Pte::kValid | Pte::kRead | Pte::kWrite));
  ASSERT_TRUE(memory_->ReleasePage(TestPhase(), 0x42).ok());
  auto v = Make();
  v->OnPtbrWrite(kRoot);
  auto out = v->Translate(0x5000, Access::kLoad, isa::PrivMode::kSupervisor, true, kRoot);
  EXPECT_EQ(out.event, MemEvent::kMissingPage);
}

TEST_P(VirtualizerTest, InvalidateGpnDropsCachedTranslations) {
  SetupL2();
  WritePte(kL2, 5, Pte::Make(0x42, Pte::kValid | Pte::kRead | Pte::kWrite | Pte::kDirty |
                                       Pte::kAccessed));
  auto v = Make();
  v->OnPtbrWrite(kRoot);
  auto out = v->Translate(0x5000, Access::kStore, isa::PrivMode::kSupervisor, true, kRoot);
  ASSERT_EQ(out.event, MemEvent::kNone);
  ASSERT_TRUE(out.writable);

  // Simulate KSM: share the page, invalidate; the next store must see it.
  memory_->SetShared(0x42, true);
  v->InvalidateGpn(0x42);
  auto store = v->Translate(0x5000, Access::kStore, isa::PrivMode::kSupervisor, true, kRoot);
  EXPECT_EQ(store.event, MemEvent::kCowBreak);
}

// Property: for random guest page tables and random accesses, shadow and
// nested virtualizers must produce identical outcomes (gpa, fault-or-not),
// differing only in cost and exit profile.
TEST_F(MmuFixture, PropertyShadowNestedEquivalence) {
  Xoshiro256 rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    // Rebuild random tables each trial.
    auto fresh = mem::GuestMemory::Create(&pool_, kRamBytes);
    ASSERT_TRUE(fresh.ok());
    memory_ = std::move(fresh).value();

    WritePte(kRoot, 0, Pte::Make(kL2, Pte::kValid));
    for (uint32_t i = 0; i < 64; ++i) {
      if (rng.NextBool(0.6)) {
        uint32_t flags = Pte::kValid;
        if (rng.NextBool(0.9)) flags |= Pte::kRead;
        if (rng.NextBool(0.6)) flags |= Pte::kWrite;
        if (rng.NextBool(0.5)) flags |= Pte::kExec;
        if (rng.NextBool(0.5)) flags |= Pte::kUser;
        WritePte(kL2, i, Pte::Make(0x100 + i, flags));
      }
    }

    auto shadow = MakeShadowPaging(memory_.get());
    auto nested = MakeNestedPaging(memory_.get());
    shadow->OnPtbrWrite(kRoot);
    nested->OnPtbrWrite(kRoot);

    for (int access = 0; access < 200; ++access) {
      uint32_t va = static_cast<uint32_t>(rng.NextBelow(64)) * kPageSize +
                    static_cast<uint32_t>(rng.NextBelow(kPageSize)) % (kPageSize - 4);
      auto acc = static_cast<Access>(rng.NextBelow(3));
      auto priv = rng.NextBool(0.5) ? isa::PrivMode::kSupervisor : isa::PrivMode::kUser;

      auto so = shadow->Translate(va, acc, priv, true, kRoot);
      auto no = nested->Translate(va, acc, priv, true, kRoot);

      // A/D bit write-back ordering can differ, but the outcome class and
      // translation must agree.
      EXPECT_EQ(so.event == MemEvent::kGuestFault, no.event == MemEvent::kGuestFault)
          << "va=0x" << std::hex << va << " acc=" << static_cast<int>(acc);
      if (so.event == MemEvent::kNone && no.event == MemEvent::kNone) {
        EXPECT_EQ(so.gpa, no.gpa) << "va=0x" << std::hex << va;
        EXPECT_EQ(so.frame, no.frame);
      }
    }
  }
}

TEST_F(MmuFixture, ShadowPtWriteTrapInvalidatesDerivedEntries) {
  SetupL2();
  WritePte(kL2, 5, Pte::Make(0x42, Pte::kValid | Pte::kRead | Pte::kWrite));
  auto v = MakeShadowPaging(memory_.get());
  v->OnPtbrWrite(kRoot);

  // Populate the shadow through a translation: L2's page becomes WP.
  auto out = v->Translate(0x5000, Access::kLoad, isa::PrivMode::kSupervisor, true, kRoot);
  ASSERT_EQ(out.event, MemEvent::kNone);
  EXPECT_TRUE(memory_->IsWriteProtected(kL2));

  // A guest store to the L2 page must trap.
  uint32_t pte_va = (kL2 << 12) + 5 * 4;  // identity-style access via bare? No:
  // in paged mode the guest would access its PT through some mapping; here we
  // drive the virtualizer directly with a store whose translation target IS
  // the PT page, using bare mode (paging off) to keep the test focused.
  auto store = v->Translate(pte_va, Access::kStore, isa::PrivMode::kSupervisor, false, kRoot);
  EXPECT_EQ(store.event, MemEvent::kPtWriteTrap);

  // Emulate the VMM: change the PTE and notify.
  ASSERT_TRUE(memory_->WriteU32(pte_va, Pte::Make(0x55, Pte::kValid | Pte::kRead)).ok());
  v->OnPtWriteEmulated(pte_va, 4);

  // The translation now reflects the new mapping.
  auto out2 = v->Translate(0x5000, Access::kLoad, isa::PrivMode::kSupervisor, true, kRoot);
  ASSERT_EQ(out2.event, MemEvent::kNone);
  EXPECT_EQ(isa::PageNumber(out2.gpa), 0x55u);
}

TEST_F(MmuFixture, ShadowRootSwitchIsCheapForCachedRoots) {
  SetupL2();
  WritePte(kL2, 5, Pte::Make(0x42, Pte::kValid | Pte::kRead));
  // Second address space at page 0x90.
  WritePte(0x90, 0, Pte::Make(kL2, Pte::kValid));

  auto v = MakeShadowPaging(memory_.get());
  uint64_t build1 = v->OnPtbrWrite(kRoot);
  uint64_t build2 = v->OnPtbrWrite(0x90);
  uint64_t sw = v->OnPtbrWrite(kRoot);  // back to a cached root
  EXPECT_LT(sw, build1);
  EXPECT_EQ(build1, build2);
  EXPECT_EQ(v->stats().root_builds, 2u);
  EXPECT_EQ(v->stats().root_switches, 1u);
}

TEST_F(MmuFixture, NestedWalkCostsMoreStepsThanShadowWalk) {
  SetupL2();
  WritePte(kL2, 5, Pte::Make(0x42, Pte::kValid | Pte::kRead));
  auto shadow = MakeShadowPaging(memory_.get());
  auto nested = MakeNestedPaging(memory_.get());
  shadow->OnPtbrWrite(kRoot);
  nested->OnPtbrWrite(kRoot);
  (void)shadow->Translate(0x5000, Access::kLoad, isa::PrivMode::kSupervisor, true, kRoot);
  (void)nested->Translate(0x5000, Access::kLoad, isa::PrivMode::kSupervisor, true, kRoot);
  // 2-D walk touches 8 PT entries where the software walk touches 2.
  EXPECT_EQ(shadow->stats().walk_steps, 2u);
  EXPECT_EQ(nested->stats().walk_steps, 8u);
  // But shadow paid a modeled VM exit for the hidden fault.
  EXPECT_EQ(shadow->stats().hidden_faults, 1u);
  EXPECT_EQ(nested->stats().hidden_faults, 0u);
}

TEST(TlbAsidTest, MismatchedAsidMisses) {
  Tlb tlb(64);
  TlbEntry e;
  e.vpn = 5;
  e.asid = 1;
  e.frame = 9;
  tlb.Insert(e);
  EXPECT_EQ(tlb.Lookup(5, 2), nullptr);
  EXPECT_NE(tlb.Lookup(5, 1), nullptr);
  EXPECT_EQ(tlb.Lookup(5, 0), nullptr);
}

TEST(TlbAsidTest, SameVpnDifferentAsidsCoexist) {
  Tlb tlb(64);
  TlbEntry a;
  a.vpn = 7;
  a.asid = 1;
  a.frame = 10;
  TlbEntry b;
  b.vpn = 7;
  b.asid = 2;
  b.frame = 20;
  tlb.Insert(a);
  tlb.Insert(b);
  EXPECT_EQ(tlb.Lookup(7, 1)->frame, 10u);
  EXPECT_EQ(tlb.Lookup(7, 2)->frame, 20u);
}

TEST(TlbAsidTest, FlushAsidIsSelective) {
  Tlb tlb(64);
  TlbEntry a;
  a.vpn = 1;
  a.asid = 1;
  TlbEntry b;
  b.vpn = 2;
  b.asid = 2;
  tlb.Insert(a);
  tlb.Insert(b);
  tlb.FlushAsid(1);
  EXPECT_EQ(tlb.Lookup(1, 1), nullptr);
  EXPECT_NE(tlb.Lookup(2, 2), nullptr);
}

TEST_F(MmuFixture, NestedAsidSurvivesPtbrSwitch) {
  SetupL2();
  WritePte(kL2, 5, Pte::Make(0x42, Pte::kValid | Pte::kRead | Pte::kAccessed));
  // Second address space at page 0x90 with the same L2.
  WritePte(0x90, 0, Pte::Make(kL2, Pte::kValid));

  auto plain = MakeNestedPaging(memory_.get());
  auto asid = MakeNestedPaging(memory_.get(), CostModel::Default(), 256, /*asid_tlb=*/true);
  for (auto* v : {plain.get(), asid.get()}) {
    v->OnPtbrWrite(kRoot);
    (void)v->Translate(0x5000, Access::kLoad, isa::PrivMode::kSupervisor, true, kRoot);
    v->OnPtbrWrite(0x90);
    (void)v->Translate(0x5000, Access::kLoad, isa::PrivMode::kSupervisor, true, 0x90);
    v->OnPtbrWrite(kRoot);
    (void)v->Translate(0x5000, Access::kLoad, isa::PrivMode::kSupervisor, true, kRoot);
  }
  // Untagged: 3 walks (every switch flushes). Tagged: 2 walks, 3rd is a hit.
  EXPECT_EQ(plain->stats().walks, 3u);
  EXPECT_EQ(asid->stats().walks, 2u);
  EXPECT_GT(asid->tlb().stats().hits, 0u);
}

TEST_F(MmuFixture, NestedAsidInvalidateGpnCrossesSpaces) {
  SetupL2();
  WritePte(kL2, 5, Pte::Make(0x42, Pte::kValid | Pte::kRead | Pte::kWrite | Pte::kDirty |
                                       Pte::kAccessed));
  WritePte(0x90, 0, Pte::Make(kL2, Pte::kValid));
  auto v = MakeNestedPaging(memory_.get(), CostModel::Default(), 256, /*asid_tlb=*/true);
  v->OnPtbrWrite(kRoot);
  (void)v->Translate(0x5000, Access::kStore, isa::PrivMode::kSupervisor, true, kRoot);
  v->OnPtbrWrite(0x90);
  (void)v->Translate(0x5000, Access::kStore, isa::PrivMode::kSupervisor, true, 0x90);

  // Sharing the target page must drop the cached writable entries of BOTH
  // address spaces.
  memory_->SetShared(0x42, true);
  v->InvalidateGpn(0x42);
  auto s1 = v->Translate(0x5000, Access::kStore, isa::PrivMode::kSupervisor, true, 0x90);
  EXPECT_EQ(s1.event, MemEvent::kCowBreak);
  v->OnPtbrWrite(kRoot);
  auto s2 = v->Translate(0x5000, Access::kStore, isa::PrivMode::kSupervisor, true, kRoot);
  EXPECT_EQ(s2.event, MemEvent::kCowBreak);
}

}  // namespace
}  // namespace hyperion::mmu
