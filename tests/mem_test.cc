// Tests for host frame pool and guest memory: allocation, refcounting,
// byte access, dirty logging, ballooning primitives, COW.

#include <gtest/gtest.h>

#include "src/mem/frame_pool.h"
#include "tests/test_phase.h"
#include "src/mem/guest_memory.h"
#include "src/util/rng.h"

namespace hyperion::mem {
namespace {

using isa::kPageSize;

TEST(FramePoolTest, AllocateAndFree) {
  FramePool pool(4);
  EXPECT_EQ(pool.free_frames(), 4u);
  auto a = pool.Allocate();
  auto b = pool.Allocate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(pool.used_frames(), 2u);
  pool.DecRef(TestPhase(), *a);
  EXPECT_EQ(pool.used_frames(), 1u);
}

TEST(FramePoolTest, ExhaustionIsReported) {
  FramePool pool(2);
  ASSERT_TRUE(pool.Allocate().ok());
  ASSERT_TRUE(pool.Allocate().ok());
  auto r = pool.Allocate();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(FramePoolTest, FramesAreZeroedOnAllocate) {
  FramePool pool(2);
  auto a = pool.Allocate();
  ASSERT_TRUE(a.ok());
  pool.FrameData(*a)[0] = 0xFF;
  pool.FrameData(*a)[kPageSize - 1] = 0xFF;
  pool.DecRef(TestPhase(), *a);
  // The same frame comes back (next-fit wraps) and must be clean.
  auto b = pool.Allocate();
  auto c = pool.Allocate();
  for (HostFrame f : {*b, *c}) {
    EXPECT_EQ(pool.FrameData(f)[0], 0);
    EXPECT_EQ(pool.FrameData(f)[kPageSize - 1], 0);
  }
}

TEST(FramePoolTest, RefCountingKeepsFrameAlive) {
  FramePool pool(2);
  auto f = pool.Allocate();
  ASSERT_TRUE(f.ok());
  pool.AddRef(TestPhase(), *f);
  EXPECT_EQ(pool.RefCount(*f), 2u);
  pool.DecRef(TestPhase(), *f);
  EXPECT_EQ(pool.used_frames(), 1u);  // still alive
  pool.DecRef(TestPhase(), *f);
  EXPECT_EQ(pool.used_frames(), 0u);
}

TEST(GuestMemoryTest, CreateValidation) {
  FramePool pool(16);
  EXPECT_FALSE(GuestMemory::Create(&pool, 0).ok());
  EXPECT_FALSE(GuestMemory::Create(&pool, 100).ok());  // not page aligned
  EXPECT_FALSE(GuestMemory::Create(&pool, 1u << 20).ok());  // pool too small
  auto m = GuestMemory::Create(&pool, 8 * kPageSize);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ((*m)->num_pages(), 8u);
  EXPECT_EQ(pool.used_frames(), 8u);
}

TEST(GuestMemoryTest, DestructorReturnsFrames) {
  FramePool pool(16);
  {
    auto m = GuestMemory::Create(&pool, 8 * kPageSize);
    ASSERT_TRUE(m.ok());
  }
  EXPECT_EQ(pool.used_frames(), 0u);
}

TEST(GuestMemoryTest, ReadWriteCrossesPages) {
  FramePool pool(16);
  auto m = GuestMemory::Create(&pool, 4 * kPageSize);
  ASSERT_TRUE(m.ok());
  std::vector<uint8_t> data(kPageSize + 100);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 7);
  }
  uint32_t gpa = kPageSize - 50;  // straddles a boundary
  ASSERT_TRUE((*m)->Write(gpa, data.data(), data.size()).ok());
  std::vector<uint8_t> back(data.size());
  ASSERT_TRUE((*m)->Read(gpa, back.data(), back.size()).ok());
  EXPECT_EQ(back, data);
}

TEST(GuestMemoryTest, OutOfRangeRejected) {
  FramePool pool(16);
  auto m = GuestMemory::Create(&pool, 2 * kPageSize);
  ASSERT_TRUE(m.ok());
  uint8_t b = 0;
  EXPECT_EQ((*m)->Read(2 * kPageSize, &b, 1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ((*m)->Write(2 * kPageSize - 1, &b, 2).code(), StatusCode::kOutOfRange);
  EXPECT_TRUE((*m)->Write(2 * kPageSize - 1, &b, 1).ok());
}

TEST(GuestMemoryTest, ScalarAccessors) {
  FramePool pool(16);
  auto m = GuestMemory::Create(&pool, 2 * kPageSize);
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE((*m)->WriteU32(100, 0xAABBCCDD).ok());
  EXPECT_EQ(*(*m)->ReadU32(100), 0xAABBCCDDu);
  EXPECT_EQ(*(*m)->ReadU16(100), 0xCCDDu);
  EXPECT_EQ(*(*m)->ReadU8(103), 0xAAu);
}

TEST(GuestMemoryTest, DirtyLogging) {
  FramePool pool(16);
  auto mm = GuestMemory::Create(&pool, 8 * kPageSize);
  ASSERT_TRUE(mm.ok());
  GuestMemory& m = **mm;

  // Writes before logging are not recorded.
  ASSERT_TRUE(m.WriteU32(0, 1).ok());
  m.EnableDirtyLog();
  EXPECT_EQ(m.DirtyCount(), 0u);

  EXPECT_TRUE(m.MarkDirty(3));   // first write: true
  EXPECT_FALSE(m.MarkDirty(3));  // second: false
  ASSERT_TRUE(m.WriteU32(5 * kPageSize, 7).ok());
  EXPECT_EQ(m.DirtyCount(), 2u);

  Bitmap harvest = m.HarvestDirty();
  EXPECT_EQ(harvest.SetBits(), (std::vector<size_t>{3, 5}));
  EXPECT_EQ(m.DirtyCount(), 0u);
  EXPECT_TRUE(m.MarkDirty(3));  // dirties again after harvest
}

TEST(GuestMemoryTest, BalloonReleaseAndPopulate) {
  FramePool pool(16);
  auto mm = GuestMemory::Create(&pool, 8 * kPageSize);
  ASSERT_TRUE(mm.ok());
  GuestMemory& m = **mm;

  size_t used_before = pool.used_frames();
  ASSERT_TRUE(m.ReleasePage(TestPhase(), 2).ok());
  EXPECT_EQ(pool.used_frames(), used_before - 1);
  EXPECT_FALSE(m.IsPresent(2));
  EXPECT_EQ(m.ReleasePage(TestPhase(), 2).code(), StatusCode::kFailedPrecondition);

  uint8_t b;
  EXPECT_FALSE(m.Read(2 * kPageSize, &b, 1).ok());

  ASSERT_TRUE(m.PopulatePage(2).ok());
  EXPECT_TRUE(m.IsPresent(2));
  EXPECT_EQ(*m.ReadU8(2 * kPageSize), 0u);  // fresh page is zeroed
  EXPECT_EQ(m.PopulatePage(2).code(), StatusCode::kFailedPrecondition);
}

TEST(GuestMemoryTest, SharingAndBreakSharing) {
  FramePool pool(32);
  auto a = GuestMemory::Create(&pool, 4 * kPageSize);
  auto b = GuestMemory::Create(&pool, 4 * kPageSize);
  ASSERT_TRUE(a.ok() && b.ok());
  GuestMemory& ma = **a;
  GuestMemory& mb = **b;

  // Simulate a KSM merge: both map the same frame.
  ASSERT_TRUE(ma.WriteU32(0, 0x1111).ok());
  HostFrame shared = ma.FrameForPage(0);
  ASSERT_TRUE(mb.RemapPage(TestPhase(), 0, shared).ok());
  ma.SetShared(0, true);
  mb.SetShared(0, true);
  EXPECT_EQ(pool.RefCount(shared), 2u);
  EXPECT_EQ(*mb.ReadU32(0), 0x1111u);

  // Break sharing on b: content copies, frames diverge.
  ASSERT_TRUE(mb.BreakSharing(TestPhase(), 0).ok());
  EXPECT_NE(mb.FrameForPage(0), shared);
  EXPECT_EQ(pool.RefCount(shared), 1u);
  EXPECT_EQ(*mb.ReadU32(0), 0x1111u);
  ASSERT_TRUE(mb.WriteU32(0, 0x2222).ok());
  EXPECT_EQ(*ma.ReadU32(0), 0x1111u);  // a unaffected

  EXPECT_EQ(mb.BreakSharing(TestPhase(), 0).code(), StatusCode::kFailedPrecondition);
}

TEST(GuestMemoryTest, WriteProtectFlags) {
  FramePool pool(16);
  auto mm = GuestMemory::Create(&pool, 4 * kPageSize);
  ASSERT_TRUE(mm.ok());
  GuestMemory& m = **mm;
  EXPECT_FALSE(m.IsWriteProtected(1));
  m.SetWriteProtected(1, true);
  EXPECT_TRUE(m.IsWriteProtected(1));
  EXPECT_EQ(m.WriteProtectedCount(), 1u);
  m.SetWriteProtected(1, false);
  EXPECT_EQ(m.WriteProtectedCount(), 0u);
}

// Property: random interleavings of release/populate/write keep the pool's
// accounting consistent with the guest's presence map.
TEST(GuestMemoryTest, PropertyBalloonAccountingConsistent) {
  FramePool pool(64);
  auto mm = GuestMemory::Create(&pool, 32 * kPageSize);
  ASSERT_TRUE(mm.ok());
  GuestMemory& m = **mm;
  Xoshiro256 rng(777);

  for (int step = 0; step < 500; ++step) {
    uint32_t gpn = static_cast<uint32_t>(rng.NextBelow(32));
    if (m.IsPresent(gpn)) {
      if (rng.NextBool(0.5)) {
        ASSERT_TRUE(m.ReleasePage(TestPhase(), gpn).ok());
      } else {
        ASSERT_TRUE(m.WriteU32(gpn * kPageSize, static_cast<uint32_t>(step)).ok());
      }
    } else {
      ASSERT_TRUE(m.PopulatePage(gpn).ok());
    }
    size_t present = 0;
    for (uint32_t i = 0; i < 32; ++i) {
      present += m.IsPresent(i);
    }
    EXPECT_EQ(pool.used_frames(), present);
  }
}

}  // namespace
}  // namespace hyperion::mem
