// Cluster layer tests (DESIGN.md §13).
//
// The cluster promises four things on top of the single-host core:
//
//  * Degeneracy: a cluster of one is a standalone host — same code path,
//    bit-identical results.
//  * Fabric: guests on different hosts exchange frames through their
//    switches' uplinks with realistic latency, and routing follows a port
//    across a live migration with no state to invalidate.
//  * Placement: admission enforces overcommit headroom; initial placement
//    and DRS rebalancing act only on barrier-committed load signals.
//  * Resilience: draining empties a host via live migration, and an injected
//    host crash respawns every checkpointed victim elsewhere.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/core/host.h"
#include "src/fault/fault.h"
#include "src/guest/programs.h"
#include "src/util/crc32.h"
#include "tests/test_phase.h"

namespace hyperion {
namespace {

using cluster::Cluster;
using cluster::ClusterConfig;
using core::Host;
using core::HostConfig;
using core::IoModel;
using core::Vm;
using core::VmConfig;
using core::VmState;

Vm* Boot(Cluster& cluster, VmConfig config, const std::string& source,
         Host* pin = nullptr) {
  auto image = guest::Build(source);
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  auto vm = cluster.CreateVm(std::move(config), pin);
  EXPECT_TRUE(vm.ok()) << vm.status().ToString();
  EXPECT_TRUE((*vm)->LoadImage(*image).ok());
  return *vm;
}

Vm* BootHost(Host& host, VmConfig config, const std::string& source) {
  auto image = guest::Build(source);
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  auto vm = host.CreateVm(std::move(config));
  EXPECT_TRUE(vm.ok()) << vm.status().ToString();
  EXPECT_TRUE((*vm)->LoadImage(*image).ok());
  return *vm;
}

uint32_t ReadProgress(Vm* vm, const std::string& source) {
  auto image = guest::Build(source);
  EXPECT_TRUE(image.ok());
  auto addr = guest::ProgressAddress(*image);
  EXPECT_TRUE(addr.ok());
  auto v = vm->memory().ReadU32(*addr);
  EXPECT_TRUE(v.ok());
  return v.value_or(0);
}

// Digest of guest RAM: presence map + contents of every present page.
uint32_t RamDigest(Vm& vm) {
  mem::GuestMemory& mem = vm.memory();
  uint32_t crc = 0;
  for (uint32_t gpn = 0; gpn < mem.num_pages(); ++gpn) {
    uint8_t present = mem.IsPresent(gpn) ? 1 : 0;
    crc = Crc32(&present, 1, crc);
    if (present) {
      crc = Crc32(mem.PageData(gpn), isa::kPageSize, crc);
    }
  }
  return crc;
}

// --- Degeneracy ------------------------------------------------------------

// A cluster of one host must be the standalone host: the domain round loop
// is the only run loop, so the same workload produces bit-identical guest
// state and host accounting either way.
TEST(ClusterTest, ClusterOfOneMatchesStandaloneHost) {
  std::string compute = guest::ComputeProgram(0);
  std::string idle = guest::IdleTickProgram(200'000);

  Host alone((HostConfig{.name = "solo", .worker_threads = 0}));
  Vm* a0 = BootHost(alone, VmConfig{.name = "c"}, compute);
  Vm* a1 = BootHost(alone, VmConfig{.name = "i"}, idle);
  alone.RunFor(20 * kSimTicksPerMs);

  ClusterConfig cc;
  cc.worker_threads = 0;
  cc.drs.interval = 0;  // pure pass-through to the domain
  Cluster one(cc);
  Host* member = one.AddHost(HostConfig{.name = "solo", .worker_threads = 0});
  Vm* b0 = Boot(one, VmConfig{.name = "c"}, compute);
  Vm* b1 = Boot(one, VmConfig{.name = "i"}, idle);
  one.RunFor(20 * kSimTicksPerMs);

  EXPECT_EQ(RamDigest(*a0), RamDigest(*b0));
  EXPECT_EQ(RamDigest(*a1), RamDigest(*b1));
  EXPECT_EQ(a0->TotalStats().instructions, b0->TotalStats().instructions);
  EXPECT_EQ(a1->TotalStats().instructions, b1->TotalStats().instructions);
  EXPECT_EQ(alone.stats(), member->stats());
  EXPECT_EQ(alone.clock().now(), one.clock().now());
}

// --- Fabric ----------------------------------------------------------------

// Ping and echo guests on different hosts: every round trip crosses the
// fabric twice. The uplink/fabric/ingress counters must all see the
// traffic, and the guest must still complete its round trips.
TEST(ClusterTest, CrossHostPingEchoThroughFabric) {
  ClusterConfig cc;
  cc.worker_threads = 0;
  cc.drs.enabled = false;
  Cluster cl(cc);
  Host* h0 = cl.AddHost(HostConfig{.num_pcpus = 2});
  Host* h1 = cl.AddHost(HostConfig{.num_pcpus = 2});

  guest::NetParams np;
  np.peer_mac = 2;
  np.payload_bytes = 256;
  np.iterations = 12;
  std::string ping_prog = guest::VirtioNetPingProgram(np);

  VmConfig ping_cfg{.name = "ping"};
  ping_cfg.net_model = IoModel::kParavirt;
  ping_cfg.mac = 1;
  VmConfig echo_cfg{.name = "echo"};
  echo_cfg.net_model = IoModel::kParavirt;
  echo_cfg.mac = 2;

  Vm* ping = Boot(cl, ping_cfg, ping_prog, h0);
  Boot(cl, echo_cfg, guest::VirtioNetEchoProgram(np.payload_bytes), h1);

  cl.RunFor(2 * kSimTicksPerSec);
  ASSERT_EQ(ping->state(), VmState::kShutdown) << ping->crash_reason().ToString();
  EXPECT_EQ(ReadProgress(ping, ping_prog), 12u);

  // 12 requests out of h0 plus 12 replies out of h1, at minimum.
  EXPECT_GE(h0->vswitch().stats().frames_uplinked, 12u);
  EXPECT_GE(h1->vswitch().stats().frames_uplinked, 12u);
  EXPECT_GE(h0->vswitch().stats().frames_from_fabric, 12u);
  EXPECT_GE(h1->vswitch().stats().frames_from_fabric, 12u);
  EXPECT_GE(cl.fabric().stats().frames_forwarded, 24u);
  EXPECT_EQ(cl.fabric().stats().frames_no_route, 0u);
}

// Cross-host frames pay the fabric's wire costs: with a high-latency cable
// the same ping workload completes far fewer round trips in a fixed window.
TEST(ClusterTest, FabricLatencyIsCharged) {
  guest::NetParams np;
  np.peer_mac = 2;
  np.payload_bytes = 64;
  np.iterations = 0;  // ping forever; progress counts round trips
  std::string ping_prog = guest::VirtioNetPingProgram(np);

  auto run = [&](SimTime cable_latency) {
    ClusterConfig cc;
    cc.worker_threads = 0;
    cc.drs.enabled = false;
    cc.fabric.latency = cable_latency;
    Cluster cl(cc);
    Host* h0 = cl.AddHost();
    Host* h1 = cl.AddHost();
    VmConfig ping_cfg{.name = "ping"};
    ping_cfg.net_model = IoModel::kParavirt;
    ping_cfg.mac = 1;
    VmConfig echo_cfg{.name = "echo"};
    echo_cfg.net_model = IoModel::kParavirt;
    echo_cfg.mac = 2;
    Vm* ping = Boot(cl, ping_cfg, ping_prog, h0);
    Boot(cl, echo_cfg, guest::VirtioNetEchoProgram(np.payload_bytes), h1);
    cl.RunFor(20 * kSimTicksPerMs);
    return ReadProgress(ping, ping_prog);
  };

  uint32_t fast = run(5 * kSimTicksPerUs);
  // 500us each way caps a round trip at <20 per 20ms window.
  uint32_t slow = run(500 * kSimTicksPerUs);
  EXPECT_GT(fast, slow);
  EXPECT_LE(slow, 20u);
  EXPECT_GT(slow, 0u);
}

// --- Admission & placement -------------------------------------------------

TEST(ClusterTest, AdmissionEnforcesOvercommitCaps) {
  ClusterConfig cc;
  cc.worker_threads = 0;
  cc.cpu_overcommit = 1.0;
  cc.ram_overcommit = 1.0;
  Cluster cl(cc);
  cl.AddHost(HostConfig{.num_pcpus = 2, .ram_bytes = 16u << 20});

  std::string idle = guest::IdleTickProgram(200'000);
  Boot(cl, VmConfig{.name = "a"}, idle);
  Boot(cl, VmConfig{.name = "b"}, idle);
  // Third vCPU would exceed cpu_overcommit * 2 pcpus.
  auto rejected = cl.CreateVm(VmConfig{.name = "c"});
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  // A duplicate name is not an admission failure.
  auto dup = cl.CreateVm(VmConfig{.name = "a"});
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(cl.stats().vms_admitted, 2u);
  EXPECT_EQ(cl.stats().vms_rejected, 1u);

  // RAM cap binds independently of the vCPU cap.
  ClusterConfig rc;
  rc.worker_threads = 0;
  rc.cpu_overcommit = 16.0;
  rc.ram_overcommit = 1.0;
  Cluster ram_bound(rc);
  ram_bound.AddHost(HostConfig{.num_pcpus = 4, .ram_bytes = 8u << 20});
  VmConfig big{.name = "big"};
  big.ram_bytes = 6u << 20;
  Boot(ram_bound, big, idle);
  VmConfig big2{.name = "big2"};
  big2.ram_bytes = 6u << 20;
  auto no_ram = ram_bound.CreateVm(big2);
  EXPECT_EQ(no_ram.status().code(), StatusCode::kResourceExhausted);
}

TEST(ClusterTest, PlacementSpreadsAcrossLeastCommittedHosts) {
  ClusterConfig cc;
  cc.worker_threads = 0;
  Cluster cl(cc);
  Host* h0 = cl.AddHost(HostConfig{.num_pcpus = 2});
  Host* h1 = cl.AddHost(HostConfig{.num_pcpus = 2});

  std::string idle = guest::IdleTickProgram(200'000);
  for (int i = 0; i < 4; ++i) {
    Boot(cl, VmConfig{.name = "vm" + std::to_string(i)}, idle);
  }
  EXPECT_EQ(h0->vms().size(), 2u);
  EXPECT_EQ(h1->vms().size(), 2u);
  // Ties broke toward member order: vm0 landed on h0.
  EXPECT_EQ(cl.HostOf("vm0"), h0);
  EXPECT_EQ(cl.HostOf("vm1"), h1);
}

// --- Drain -----------------------------------------------------------------

TEST(ClusterTest, DrainLiveMigratesEveryVmOff) {
  ClusterConfig cc;
  cc.worker_threads = 0;
  Cluster cl(cc);
  Host* h0 = cl.AddHost();
  Host* h1 = cl.AddHost();

  std::string idle = guest::IdleTickProgram(200'000);
  std::vector<std::string> names = {"a", "b", "c"};
  for (const std::string& name : names) {
    Boot(cl, VmConfig{.name = name}, idle, h0);
  }
  cl.RunFor(5 * kSimTicksPerMs);

  ASSERT_TRUE(cl.DrainHost(h0).ok());
  // A draining host admits nothing new.
  auto refused = cl.CreateVm(VmConfig{.name = "d"}, h0);
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);

  cl.DrsTick();
  EXPECT_TRUE(h0->vms().empty());
  EXPECT_EQ(h1->vms().size(), 3u);
  EXPECT_EQ(cl.stats().drain_migrations, 3u);
  ASSERT_EQ(cl.migrations().size(), 3u);
  for (const cluster::MigrationRecord& rec : cl.migrations()) {
    EXPECT_TRUE(rec.ok);
    EXPECT_EQ(rec.reason, "drain");
    EXPECT_EQ(rec.from, h0->name());
    EXPECT_EQ(rec.to, h1->name());
    // Reconciliation: a successful move shipped the VM's pages and stopped
    // the source for a measured downtime window.
    EXPECT_GT(rec.report.pages_sent, 0u);
    EXPECT_GT(rec.report.downtime, 0u);
  }
  for (const std::string& name : names) {
    Vm* vm = cl.FindVm(name);
    ASSERT_NE(vm, nullptr);
    EXPECT_EQ(cl.HostOf(name), h1);
    EXPECT_EQ(vm->state(), VmState::kRunning);
  }
  // The drained host rejoins placement after UndrainHost.
  cl.UndrainHost(h0);
  Boot(cl, VmConfig{.name = "e"}, idle);
  EXPECT_EQ(cl.HostOf("e"), h0);
}

// --- Rebalance -------------------------------------------------------------

TEST(ClusterTest, DrsMovesLoadOffHotHost) {
  ClusterConfig cc;
  cc.worker_threads = 0;
  cc.drs.interval = 5 * kSimTicksPerMs;
  cc.drs.hot_busy = 0.5;
  cc.drs.cool_until = 0.4;
  cc.drs.min_gain = 0.1;
  cc.drs.max_migrations_per_tick = 1;
  Cluster cl(cc);
  Host* h0 = cl.AddHost(HostConfig{.num_pcpus = 2});
  Host* h1 = cl.AddHost(HostConfig{.num_pcpus = 2});

  // Pin all the load on h0; h1 idles at 0%.
  std::string compute = guest::ComputeProgram(0);
  for (int i = 0; i < 4; ++i) {
    Boot(cl, VmConfig{.name = "busy" + std::to_string(i)}, compute, h0);
  }
  cl.RunFor(30 * kSimTicksPerMs);

  EXPECT_GE(cl.stats().rebalance_migrations, 1u);
  EXPECT_FALSE(h1->vms().empty());
  EXPECT_GT(cl.BusyFraction(h0), 0.0);
  for (const cluster::MigrationRecord& rec : cl.migrations()) {
    EXPECT_TRUE(rec.ok);
    EXPECT_EQ(rec.reason, "rebalance");
    EXPECT_GT(rec.report.pages_sent, 0u);
  }
  // Per-pCPU accounting backs the signal: the hot host's pCPUs accrued busy
  // cycles, and totals reconcile with the aggregate counter.
  uint64_t busy = 0;
  for (const Host::PcpuStats& pcpu : h0->stats().pcpu) {
    busy += pcpu.busy_cycles;
  }
  EXPECT_GT(busy, 0u);
  EXPECT_EQ(busy, h0->stats().cycles_executed);
}

// --- Crash evacuation ------------------------------------------------------

TEST(ClusterTest, HostCrashRespawnsCheckpointedVmsElsewhere) {
  ClusterConfig cc;
  cc.worker_threads = 0;
  cc.drs.interval = 5 * kSimTicksPerMs;
  Cluster cl(cc);
  Host* h0 = cl.AddHost();
  Host* h1 = cl.AddHost();

  std::string prog = guest::ComputeProgram(0);
  std::vector<std::string> names = {"v0", "v1"};
  for (const std::string& name : names) {
    Boot(cl, VmConfig{.name = name}, prog, h0);
  }

  fault::FaultPlan plan;
  plan.AddHostCrash("h0:host", 12 * kSimTicksPerMs);
  fault::FaultInjector inj(plan);
  h0->SetFaultInjector(&inj, "h0:host");

  cl.RunFor(8 * kSimTicksPerMs);
  EXPECT_EQ(cl.CheckpointAll(), 2u);
  std::vector<uint32_t> at_checkpoint;
  for (const std::string& name : names) {
    at_checkpoint.push_back(ReadProgress(cl.FindVm(name), prog));
  }

  cl.RunFor(20 * kSimTicksPerMs);
  EXPECT_TRUE(h0->failed());
  EXPECT_EQ(cl.stats().evacuations_respawned, 2u);
  EXPECT_EQ(cl.stats().evacuations_lost, 0u);
  for (size_t i = 0; i < names.size(); ++i) {
    Vm* vm = cl.FindVm(names[i]);
    ASSERT_NE(vm, nullptr) << names[i];
    EXPECT_EQ(cl.HostOf(names[i]), h1);
    EXPECT_EQ(vm->state(), VmState::kRunning);
    // Respawn resumed from the checkpoint and kept computing: progress is
    // conserved up to the template, then grows again on the new host.
    EXPECT_GE(ReadProgress(vm, prog), at_checkpoint[i]);
  }
  uint64_t insns_after_respawn = cl.FindVm("v0")->TotalStats().instructions;
  cl.RunFor(5 * kSimTicksPerMs);
  EXPECT_GT(cl.FindVm("v0")->TotalStats().instructions, insns_after_respawn);
}

// A victim with no checkpoint template cannot be respawned: it is counted
// lost, not silently resurrected from nothing.
TEST(ClusterTest, UncheckpointedCrashVictimIsCountedLost) {
  ClusterConfig cc;
  cc.worker_threads = 0;
  cc.drs.interval = 5 * kSimTicksPerMs;
  Cluster cl(cc);
  Host* h0 = cl.AddHost();
  cl.AddHost();

  Boot(cl, VmConfig{.name = "doomed"}, guest::ComputeProgram(0), h0);

  fault::FaultPlan plan;
  plan.AddHostCrash("h0:host", 2 * kSimTicksPerMs);
  fault::FaultInjector inj(plan);
  h0->SetFaultInjector(&inj, "h0:host");

  cl.RunFor(10 * kSimTicksPerMs);
  EXPECT_TRUE(h0->failed());
  EXPECT_EQ(cl.stats().evacuations_lost, 1u);
  EXPECT_EQ(cl.stats().evacuations_respawned, 0u);
  EXPECT_EQ(cl.FindVm("doomed"), nullptr);
  EXPECT_EQ(cl.GuestCount(), 0u);
}

}  // namespace
}  // namespace hyperion
