// Device-level unit tests: MMIO bus dispatch, PIC, UART, emulated block and
// net devices, virtio rings (driven host-side without a CPU).

#include <gtest/gtest.h>

#include "src/devices/emulated_blk.h"
#include "tests/test_phase.h"
#include "src/devices/emulated_net.h"
#include "src/devices/mmio.h"
#include "src/devices/pic.h"
#include "src/devices/uart.h"
#include "src/mem/frame_pool.h"
#include "src/virtio/virtio_blk.h"
#include "src/virtio/virtio_console.h"
#include "src/virtio/virtio_net.h"

namespace hyperion {
namespace {

using devices::EmulatedBlockDevice;
using devices::EmulatedNetDevice;
using devices::InterruptController;
using devices::IrqLine;
using devices::MmioBus;
using devices::MmioDevice;
using devices::Uart;

// ---------------------------------------------------------------------------
// MmioBus
// ---------------------------------------------------------------------------

class StubDevice final : public MmioDevice {
 public:
  explicit StubDevice(std::string_view name) : name_(name) {}
  std::string_view name() const override { return name_; }
  Result<uint32_t> Read(uint32_t offset, uint32_t size) override {
    (void)size;
    return offset;
  }
  Status Write(const Phase& ph, uint32_t offset, uint32_t size, uint32_t value) override {
    (void)ph;
    (void)size;
    last_offset = offset;
    last_value = value;
    return OkStatus();
  }
  uint32_t last_offset = 0;
  uint32_t last_value = 0;

 private:
  std::string_view name_;
};

TEST(MmioBusTest, DispatchByRange) {
  MmioBus bus;
  StubDevice a("a"), b("b");
  ASSERT_TRUE(bus.Map(0xF0000000, 0x1000, &a).ok());
  ASSERT_TRUE(bus.Map(0xF0001000, 0x1000, &b).ok());

  EXPECT_EQ(*bus.MmioRead(0xF0000010, 4), 0x10u);
  ASSERT_TRUE(bus.MmioWrite(TestPhase(), 0xF0001020, 4, 77).ok());
  EXPECT_EQ(b.last_offset, 0x20u);
  EXPECT_EQ(b.last_value, 77u);
}

TEST(MmioBusTest, OverlapRejected) {
  MmioBus bus;
  StubDevice a("a"), b("b");
  ASSERT_TRUE(bus.Map(0xF0000000, 0x2000, &a).ok());
  EXPECT_EQ(bus.Map(0xF0001000, 0x1000, &b).code(), StatusCode::kAlreadyExists);
}

TEST(MmioBusTest, UnmappedIsNotFound) {
  MmioBus bus;
  EXPECT_EQ(bus.MmioRead(0xF0000000, 4).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(bus.MmioWrite(TestPhase(), 0xF0000000, 4, 0).code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// InterruptController
// ---------------------------------------------------------------------------

TEST(PicTest, AssertEnableAckFlow) {
  InterruptController pic;
  bool level = false;
  pic.SetSink([&](const Phase& ph, bool l) {
    (void)ph;
    level = l;
  });

  pic.Assert(TestPhase(), 3);
  EXPECT_FALSE(level);  // not enabled yet
  ASSERT_TRUE(pic.Write(TestPhase(), 0x04, 4, 1u << 3).ok());
  EXPECT_TRUE(level);

  // CLAIM returns the line; ACK clears it.
  EXPECT_EQ(*pic.Read(0x10, 4), 3u);
  ASSERT_TRUE(pic.Write(TestPhase(), 0x08, 4, 1u << 3).ok());
  EXPECT_FALSE(level);
  EXPECT_EQ(*pic.Read(0x10, 4), 0xFFFFFFFFu);
}

TEST(PicTest, ClaimReturnsLowestActive) {
  InterruptController pic;
  ASSERT_TRUE(pic.Write(TestPhase(), 0x04, 4, 0xFF).ok());
  pic.Assert(TestPhase(), 5);
  pic.Assert(TestPhase(), 2);
  EXPECT_EQ(*pic.Read(0x10, 4), 2u);
}

TEST(PicTest, SoftwareRaise) {
  InterruptController pic;
  bool level = false;
  pic.SetSink([&](const Phase& ph, bool l) {
    (void)ph;
    level = l;
  });
  ASSERT_TRUE(pic.Write(TestPhase(), 0x04, 4, 0x3).ok());
  ASSERT_TRUE(pic.Write(TestPhase(), 0x0C, 4, 0x2).ok());  // RAISE line 1
  EXPECT_TRUE(level);
  EXPECT_EQ(pic.pending(), 2u);
}

TEST(PicTest, SerializeRoundTrip) {
  InterruptController pic;
  ASSERT_TRUE(pic.Write(TestPhase(), 0x04, 4, 0xAB).ok());
  pic.Assert(TestPhase(), 1);
  ByteWriter w;
  pic.Serialize(w);

  InterruptController restored;
  ByteReader r(w.buffer());
  ASSERT_TRUE(restored.Deserialize(TestPhase(), r).ok());
  EXPECT_EQ(restored.pending(), pic.pending());
  EXPECT_EQ(restored.enable(), pic.enable());
}

TEST(PicTest, WordOnlyAccess) {
  InterruptController pic;
  EXPECT_FALSE(pic.Read(0x00, 2).ok());
  EXPECT_FALSE(pic.Write(TestPhase(), 0x04, 1, 1).ok());
}

// ---------------------------------------------------------------------------
// UART
// ---------------------------------------------------------------------------

TEST(UartTest, TransmitCollectsOutput) {
  Uart uart;
  for (char c : std::string("ok\n")) {
    ASSERT_TRUE(uart.Write(TestPhase(), 0x00, 4, static_cast<uint32_t>(c)).ok());
  }
  EXPECT_EQ(uart.output(), "ok\n");
}

TEST(UartTest, ReceivePath) {
  InterruptController pic;
  Uart uart(IrqLine(&pic, devices::kUartIrq));
  ASSERT_TRUE(pic.Write(TestPhase(), 0x04, 4, 1u << devices::kUartIrq).ok());
  ASSERT_TRUE(uart.Write(TestPhase(), 0x0C, 4, 1).ok());  // enable rx irq

  EXPECT_EQ(*uart.Read(0x08, 4) & 1u, 0u);  // no rx data
  uart.InjectInput(TestPhase(), "ab");
  EXPECT_EQ(pic.pending() & (1u << devices::kUartIrq), 1u << devices::kUartIrq);
  EXPECT_EQ(*uart.Read(0x08, 4) & 1u, 1u);
  EXPECT_EQ(*uart.Read(0x04, 4), static_cast<uint32_t>('a'));
  EXPECT_EQ(*uart.Read(0x04, 4), static_cast<uint32_t>('b'));
  EXPECT_EQ(*uart.Read(0x04, 4), 0u);  // empty reads zero
}

TEST(UartTest, SerializeRoundTrip) {
  Uart uart;
  ASSERT_TRUE(uart.Write(TestPhase(), 0x00, 4, 'x').ok());
  uart.InjectInput(TestPhase(), "queued");
  ByteWriter w;
  uart.Serialize(w);

  Uart restored;
  ByteReader r(w.buffer());
  ASSERT_TRUE(restored.Deserialize(TestPhase(), r).ok());
  EXPECT_EQ(restored.output(), "x");
  EXPECT_EQ(*restored.Read(0x04, 4), static_cast<uint32_t>('q'));
}

// ---------------------------------------------------------------------------
// Emulated block device (host-driven)
// ---------------------------------------------------------------------------

class EmuBlkTest : public ::testing::Test {
 protected:
  EmuBlkTest()
      : store_(64), dev_(&store_, IrqLine(&pic_, devices::kBlkIrq), /*clock=*/nullptr) {
    (void)pic_.Write(TestPhase(), 0x04, 4, 1u << devices::kBlkIrq);
  }

  InterruptController pic_;
  storage::MemBlockStore store_;
  EmulatedBlockDevice dev_;
};

TEST_F(EmuBlkTest, WriteCommandPersists) {
  ASSERT_TRUE(dev_.Write(TestPhase(), 0x00, 4, 5).ok());  // LBA 5
  ASSERT_TRUE(dev_.Write(TestPhase(), 0x04, 4, 1).ok());  // one sector
  ASSERT_TRUE(dev_.Write(TestPhase(), 0x14, 4, 0).ok());  // rewind pointer
  for (uint32_t i = 0; i < 128; ++i) {
    ASSERT_TRUE(dev_.Write(TestPhase(), 0x10, 4, 0x1000 + i).ok());
  }
  ASSERT_TRUE(dev_.Write(TestPhase(), 0x08, 4, 2).ok());  // CMD write (synchronous: no clock)
  EXPECT_EQ(*dev_.Read(0x0C, 4), 2u);        // data_ready, not busy

  uint8_t sector[512] = {};
  ASSERT_TRUE(store_.ReadSectors(5, 1, sector).ok());
  uint32_t w;
  std::memcpy(&w, sector, 4);
  EXPECT_EQ(w, 0x1000u);
  EXPECT_EQ(pic_.pending() & (1u << devices::kBlkIrq), 1u << devices::kBlkIrq);
}

TEST_F(EmuBlkTest, ReadCommandReturnsData) {
  uint8_t sector[512] = {0xAA, 0xBB, 0xCC, 0xDD};
  ASSERT_TRUE(store_.WriteSectors(7, 1, sector).ok());
  ASSERT_TRUE(dev_.Write(TestPhase(), 0x00, 4, 7).ok());
  ASSERT_TRUE(dev_.Write(TestPhase(), 0x04, 4, 1).ok());
  ASSERT_TRUE(dev_.Write(TestPhase(), 0x08, 4, 1).ok());  // CMD read (synchronous)
  EXPECT_EQ(*dev_.Read(0x10, 4), 0xDDCCBBAAu);
}

TEST_F(EmuBlkTest, BadCountRejected) {
  EXPECT_FALSE(dev_.Write(TestPhase(), 0x04, 4, 0).ok());
  EXPECT_FALSE(dev_.Write(TestPhase(), 0x04, 4, 9).ok());
}

TEST_F(EmuBlkTest, OutOfRangeCommandSetsError) {
  ASSERT_TRUE(dev_.Write(TestPhase(), 0x00, 4, 63).ok());
  ASSERT_TRUE(dev_.Write(TestPhase(), 0x04, 4, 8).ok());  // 63..70 exceeds 64-sector disk
  ASSERT_TRUE(dev_.Write(TestPhase(), 0x08, 4, 1).ok());
  EXPECT_EQ(*dev_.Read(0x0C, 4) & 4u, 4u);  // error bit
}

TEST_F(EmuBlkTest, DeferredCompletionWithClock) {
  SimClock clock;
  EmulatedBlockDevice timed(&store_, IrqLine(&pic_, devices::kBlkIrq), &clock);
  ASSERT_TRUE(timed.Write(TestPhase(), 0x00, 4, 0).ok());
  ASSERT_TRUE(timed.Write(TestPhase(), 0x04, 4, 4).ok());
  ASSERT_TRUE(timed.Write(TestPhase(), 0x08, 4, 1).ok());
  EXPECT_EQ(*timed.Read(0x0C, 4) & 1u, 1u);  // busy
  clock.RunAll(TestPhase());
  EXPECT_EQ(*timed.Read(0x0C, 4) & 1u, 0u);  // done
  EXPECT_GE(clock.now(), 4 * CostModel::Default().blk_sector_cost);
}

TEST_F(EmuBlkTest, SerializeRoundTrip) {
  ASSERT_TRUE(dev_.Write(TestPhase(), 0x00, 4, 9).ok());
  ASSERT_TRUE(dev_.Write(TestPhase(), 0x04, 4, 3).ok());
  ByteWriter w;
  dev_.Serialize(w);
  EmulatedBlockDevice restored(&store_, IrqLine(&pic_, devices::kBlkIrq), nullptr);
  ByteReader r(w.buffer());
  ASSERT_TRUE(restored.Deserialize(TestPhase(), r).ok());
  EXPECT_EQ(*restored.Read(0x00, 4), 9u);
  EXPECT_EQ(*restored.Read(0x04, 4), 3u);
}

// ---------------------------------------------------------------------------
// Emulated net device + virtual switch (host-driven)
// ---------------------------------------------------------------------------

TEST(EmuNetTest, SendAndReceiveThroughSwitch) {
  SimClock clock;
  net::VirtualSwitch vswitch(&clock);
  InterruptController pic;
  EmulatedNetDevice a(&vswitch, 1, IrqLine(&pic, devices::kNetIrq));
  EmulatedNetDevice b(&vswitch, 2, IrqLine(&pic, devices::kNetIrq));
  ASSERT_TRUE(vswitch.Attach(TestPhase(), 1, &a).ok());
  ASSERT_TRUE(vswitch.Attach(TestPhase(), 2, &b).ok());

  // a sends 8 bytes to b.
  ASSERT_TRUE(a.Write(TestPhase(), 0x1C, 4, 0).ok());
  ASSERT_TRUE(a.Write(TestPhase(), 0x10, 4, 0x11111111).ok());
  ASSERT_TRUE(a.Write(TestPhase(), 0x10, 4, 0x22222222).ok());
  ASSERT_TRUE(a.Write(TestPhase(), 0x00, 4, 8).ok());
  ASSERT_TRUE(a.Write(TestPhase(), 0x04, 4, 2).ok());
  ASSERT_TRUE(a.Write(TestPhase(), 0x08, 4, 1).ok());
  EXPECT_EQ(a.stats().tx_frames, 1u);

  clock.RunAll(TestPhase());  // deliver
  EXPECT_EQ(b.stats().rx_frames, 1u);
  EXPECT_EQ(*b.Read(0x0C, 4) & 1u, 1u);  // rx available

  ASSERT_TRUE(b.Write(TestPhase(), 0x08, 4, 2).ok());  // pop
  EXPECT_EQ(*b.Read(0x14, 4), 8u);
  EXPECT_EQ(*b.Read(0x18, 4), 1u);
  EXPECT_EQ(*b.Read(0x10, 4), 0x11111111u);
  EXPECT_EQ(*b.Read(0x10, 4), 0x22222222u);
}

TEST(EmuNetTest, OversizedTxRejected) {
  SimClock clock;
  net::VirtualSwitch vswitch(&clock);
  InterruptController pic;
  EmulatedNetDevice a(&vswitch, 1, IrqLine(&pic, devices::kNetIrq));
  EXPECT_FALSE(a.Write(TestPhase(), 0x00, 4, EmulatedNetDevice::kBufBytes + 4).ok());
}

// ---------------------------------------------------------------------------
// Virtio rings (host-driven through guest memory)
// ---------------------------------------------------------------------------

class VirtioRingTest : public ::testing::Test {
 protected:
  VirtioRingTest() : pool_(512) {
    auto m = mem::GuestMemory::Create(&pool_, 1u << 20);
    EXPECT_TRUE(m.ok());
    memory_ = std::move(m).value();
  }

  // Builds a 4-entry queue at fixed addresses.
  virtio::VirtQueue MakeQueue() {
    virtio::VirtQueue q;
    q.Configure(0x10000, 0x10100, 0x10200, 4);
    q.set_ready(true);
    return q;
  }

  void WriteDesc(uint32_t index, uint32_t gpa, uint32_t len, uint16_t flags, uint16_t next) {
    uint32_t base = 0x10000 + index * 12;
    ASSERT_TRUE(memory_->WriteU32(base, gpa).ok());
    ASSERT_TRUE(memory_->WriteU32(base + 4, len).ok());
    ASSERT_TRUE(memory_->WriteU16(base + 8, flags).ok());
    ASSERT_TRUE(memory_->WriteU16(base + 10, next).ok());
  }

  void PostAvail(std::vector<uint16_t> heads) {
    auto idx = memory_->ReadU16(0x10100 + 2);
    ASSERT_TRUE(idx.ok());
    uint16_t i = *idx;
    for (uint16_t head : heads) {
      ASSERT_TRUE(memory_->WriteU16(0x10100 + 4 + (i % 4) * 2, head).ok());
      ++i;
    }
    ASSERT_TRUE(memory_->WriteU16(0x10100 + 2, i).ok());
  }

  mem::FramePool pool_;
  std::unique_ptr<mem::GuestMemory> memory_;
};

TEST_F(VirtioRingTest, PopSingleDescriptor) {
  virtio::VirtQueue q = MakeQueue();
  WriteDesc(0, 0x20000, 64, 0, 0);
  PostAvail({0});

  ASSERT_TRUE(*q.HasWork(*memory_));
  auto chain = q.Pop(*memory_);
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->head, 0);
  ASSERT_EQ(chain->elems.size(), 1u);
  EXPECT_EQ(chain->elems[0].gpa, 0x20000u);
  EXPECT_EQ(chain->elems[0].len, 64u);
  EXPECT_FALSE(chain->elems[0].device_writes);
  EXPECT_FALSE(*q.HasWork(*memory_));
}

TEST_F(VirtioRingTest, PopChainFollowsNext) {
  virtio::VirtQueue q = MakeQueue();
  WriteDesc(1, 0x20000, 16, virtio::kDescNext, 2);
  WriteDesc(2, 0x21000, 512, virtio::kDescNext | virtio::kDescWrite, 3);
  WriteDesc(3, 0x22000, 1, virtio::kDescWrite, 0);
  PostAvail({1});

  auto chain = q.Pop(*memory_);
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain->elems.size(), 3u);
  EXPECT_EQ(chain->TotalReadable(), 16u);
  EXPECT_EQ(chain->TotalWritable(), 513u);
}

TEST_F(VirtioRingTest, LoopingChainDetected) {
  virtio::VirtQueue q = MakeQueue();
  WriteDesc(0, 0x20000, 16, virtio::kDescNext, 1);
  WriteDesc(1, 0x21000, 16, virtio::kDescNext, 0);  // back to 0
  PostAvail({0});
  EXPECT_EQ(q.Pop(*memory_).status().code(), StatusCode::kDataLoss);
}

TEST_F(VirtioRingTest, OutOfRangeDescriptorDetected) {
  virtio::VirtQueue q = MakeQueue();
  WriteDesc(0, 0x20000, 16, virtio::kDescNext, 9);  // next past qsize
  PostAvail({0});
  EXPECT_EQ(q.Pop(*memory_).status().code(), StatusCode::kDataLoss);
}

TEST_F(VirtioRingTest, UsedRingPublishes) {
  virtio::VirtQueue q = MakeQueue();
  ASSERT_TRUE(q.PushUsed(*memory_, 2, 100).ok());
  EXPECT_EQ(*memory_->ReadU16(0x10200 + 2), 1u);    // used.idx
  EXPECT_EQ(*memory_->ReadU32(0x10200 + 4), 2u);    // elem.id
  EXPECT_EQ(*memory_->ReadU32(0x10200 + 8), 100u);  // elem.len
}

TEST_F(VirtioRingTest, BlkDeviceExecutesWriteRequest) {
  storage::MemBlockStore disk(64);
  InterruptController pic;
  virtio::VirtioBlk blk(memory_.get(), IrqLine(&pic, 8), &disk, /*clock=*/nullptr);
  ASSERT_TRUE(pic.Write(TestPhase(), 0x04, 4, 1u << 8).ok());

  // Configure queue 0 via registers.
  ASSERT_TRUE(blk.Write(TestPhase(), 0x04, 4, 0).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x08, 4, 4).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x0C, 4, 0x10000).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x10, 4, 0x10100).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x14, 4, 0x10200).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x18, 4, 1).ok());

  // Request: header (type=1 write, sector=3) + 512B data + status.
  ASSERT_TRUE(memory_->WriteU32(0x30000, 1).ok());
  ASSERT_TRUE(memory_->WriteU32(0x30008, 3).ok());
  ASSERT_TRUE(memory_->WriteU32(0x3000C, 0).ok());
  for (uint32_t i = 0; i < 128; ++i) {
    ASSERT_TRUE(memory_->WriteU32(0x31000 + i * 4, 0xF00D0000 + i).ok());
  }
  WriteDesc(0, 0x30000, 16, virtio::kDescNext, 1);
  WriteDesc(1, 0x31000, 512, virtio::kDescNext, 2);
  WriteDesc(2, 0x32000, 1, virtio::kDescWrite, 0);
  PostAvail({0});

  ASSERT_TRUE(blk.Write(TestPhase(), 0x1C, 4, 0).ok());  // doorbell

  EXPECT_EQ(blk.blk_stats().requests, 1u);
  EXPECT_EQ(blk.blk_stats().errors, 0u);
  EXPECT_EQ(*memory_->ReadU8(0x32000), virtio::kBlkStatusOk);
  uint8_t sector[512] = {};
  ASSERT_TRUE(disk.ReadSectors(3, 1, sector).ok());
  uint32_t w;
  std::memcpy(&w, sector, 4);
  EXPECT_EQ(w, 0xF00D0000u);
  EXPECT_NE(pic.pending() & (1u << 8), 0u);
}

TEST_F(VirtioRingTest, BlkReadRequestFillsBuffers) {
  storage::MemBlockStore disk(64);
  uint8_t sector[512] = {};
  for (int i = 0; i < 512; ++i) {
    sector[i] = static_cast<uint8_t>(i * 3);
  }
  ASSERT_TRUE(disk.WriteSectors(9, 1, sector).ok());

  InterruptController pic;
  virtio::VirtioBlk blk(memory_.get(), IrqLine(&pic, 8), &disk, nullptr);
  ASSERT_TRUE(blk.Write(TestPhase(), 0x04, 4, 0).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x08, 4, 4).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x0C, 4, 0x10000).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x10, 4, 0x10100).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x14, 4, 0x10200).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x18, 4, 1).ok());

  ASSERT_TRUE(memory_->WriteU32(0x30000, 0).ok());  // type read
  ASSERT_TRUE(memory_->WriteU32(0x30008, 9).ok());
  WriteDesc(0, 0x30000, 16, virtio::kDescNext, 1);
  WriteDesc(1, 0x31000, 512, virtio::kDescNext | virtio::kDescWrite, 2);
  WriteDesc(2, 0x32000, 1, virtio::kDescWrite, 0);
  PostAvail({0});
  ASSERT_TRUE(blk.Write(TestPhase(), 0x1C, 4, 0).ok());

  EXPECT_EQ(*memory_->ReadU8(0x32000), virtio::kBlkStatusOk);
  std::vector<uint8_t> got(512);
  ASSERT_TRUE(memory_->Read(0x31000, got.data(), got.size()).ok());
  EXPECT_EQ(std::memcmp(got.data(), sector, 512), 0);
}

TEST_F(VirtioRingTest, BlkMalformedRequestGetsErrorStatus) {
  storage::MemBlockStore disk(64);
  InterruptController pic;
  virtio::VirtioBlk blk(memory_.get(), IrqLine(&pic, 8), &disk, nullptr);
  ASSERT_TRUE(blk.Write(TestPhase(), 0x04, 4, 0).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x08, 4, 4).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x0C, 4, 0x10000).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x10, 4, 0x10100).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x14, 4, 0x10200).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x18, 4, 1).ok());

  ASSERT_TRUE(memory_->WriteU32(0x30000, 9999).ok());  // bogus request type
  WriteDesc(0, 0x30000, 16, virtio::kDescNext, 1);
  WriteDesc(1, 0x32000, 1, virtio::kDescWrite, 0);
  PostAvail({0});
  ASSERT_TRUE(blk.Write(TestPhase(), 0x1C, 4, 0).ok());
  EXPECT_EQ(blk.blk_stats().errors, 1u);
  EXPECT_EQ(*memory_->ReadU8(0x32000), virtio::kBlkStatusUnsupported);
}

TEST_F(VirtioRingTest, ConsoleTxCollects) {
  InterruptController pic;
  virtio::VirtioConsole con(memory_.get(), IrqLine(&pic, 10));
  // Configure TX queue (1).
  ASSERT_TRUE(con.Write(TestPhase(), 0x04, 4, 1).ok());
  ASSERT_TRUE(con.Write(TestPhase(), 0x08, 4, 4).ok());
  ASSERT_TRUE(con.Write(TestPhase(), 0x0C, 4, 0x10000).ok());
  ASSERT_TRUE(con.Write(TestPhase(), 0x10, 4, 0x10100).ok());
  ASSERT_TRUE(con.Write(TestPhase(), 0x14, 4, 0x10200).ok());
  ASSERT_TRUE(con.Write(TestPhase(), 0x18, 4, 1).ok());

  const char msg[] = "virtio says hi";
  ASSERT_TRUE(memory_->Write(0x30000, msg, sizeof(msg) - 1).ok());
  WriteDesc(0, 0x30000, sizeof(msg) - 1, 0, 0);
  PostAvail({0});
  ASSERT_TRUE(con.Write(TestPhase(), 0x1C, 4, 1).ok());
  EXPECT_EQ(con.output(), "virtio says hi");
}

TEST_F(VirtioRingTest, ConsoleRxDeliversIntoPostedBuffers) {
  InterruptController pic;
  virtio::VirtioConsole con(memory_.get(), IrqLine(&pic, 10));
  // Configure RX queue (0) and post one 16-byte buffer.
  ASSERT_TRUE(con.Write(TestPhase(), 0x04, 4, 0).ok());
  ASSERT_TRUE(con.Write(TestPhase(), 0x08, 4, 4).ok());
  ASSERT_TRUE(con.Write(TestPhase(), 0x0C, 4, 0x10000).ok());
  ASSERT_TRUE(con.Write(TestPhase(), 0x10, 4, 0x10100).ok());
  ASSERT_TRUE(con.Write(TestPhase(), 0x14, 4, 0x10200).ok());
  ASSERT_TRUE(con.Write(TestPhase(), 0x18, 4, 1).ok());
  WriteDesc(0, 0x30000, 16, virtio::kDescWrite, 0);
  PostAvail({0});

  con.InjectInput(TestPhase(), "hello");
  std::vector<uint8_t> buf(5);
  ASSERT_TRUE(memory_->Read(0x30000, buf.data(), 5).ok());
  EXPECT_EQ(std::string(buf.begin(), buf.end()), "hello");
  EXPECT_EQ(*memory_->ReadU16(0x10200 + 2), 1u);  // one used entry
}

TEST_F(VirtioRingTest, DeviceStateSerializeRoundTrip) {
  storage::MemBlockStore disk(64);
  InterruptController pic;
  virtio::VirtioBlk blk(memory_.get(), IrqLine(&pic, 8), &disk, nullptr);
  ASSERT_TRUE(blk.Write(TestPhase(), 0x04, 4, 0).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x08, 4, 8).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x0C, 4, 0x10000).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x18, 4, 1).ok());

  ByteWriter w;
  blk.Serialize(w);
  virtio::VirtioBlk restored(memory_.get(), IrqLine(&pic, 8), &disk, nullptr);
  ByteReader r(w.buffer());
  ASSERT_TRUE(restored.Deserialize(TestPhase(), r).ok());
  EXPECT_EQ(*restored.Read(0x08, 4), 8u);
  EXPECT_EQ(*restored.Read(0x0C, 4), 0x10000u);
  EXPECT_EQ(*restored.Read(0x18, 4), 1u);
}

TEST_F(VirtioRingTest, RegisterValidation) {
  storage::MemBlockStore disk(64);
  InterruptController pic;
  virtio::VirtioBlk blk(memory_.get(), IrqLine(&pic, 8), &disk, nullptr);
  EXPECT_EQ(*blk.Read(0x00, 4), virtio::kVirtioIdBlk);
  EXPECT_FALSE(blk.Write(TestPhase(), 0x04, 4, 5).ok());      // queue_sel out of range
  EXPECT_FALSE(blk.Write(TestPhase(), 0x08, 4, 3).ok());      // not a power of two
  EXPECT_FALSE(blk.Write(TestPhase(), 0x08, 4, 512).ok());    // too large
  EXPECT_FALSE(blk.Write(TestPhase(), 0x1C, 4, 7).ok());      // notify unknown queue
  EXPECT_FALSE(blk.Read(0x00, 2).ok());          // sub-word access
}

}  // namespace
}  // namespace hyperion
