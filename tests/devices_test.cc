// Device-level unit tests: MMIO bus dispatch, PIC, UART, emulated block and
// net devices, virtio rings (driven host-side without a CPU).

#include <gtest/gtest.h>

#include "src/devices/emulated_blk.h"
#include "tests/test_phase.h"
#include "src/devices/emulated_net.h"
#include "src/devices/mmio.h"
#include "src/devices/pic.h"
#include "src/devices/uart.h"
#include "src/mem/frame_pool.h"
#include "src/virtio/virtio_blk.h"
#include "src/virtio/virtio_console.h"
#include "src/virtio/virtio_net.h"

namespace hyperion {
namespace {

using devices::EmulatedBlockDevice;
using devices::EmulatedNetDevice;
using devices::InterruptController;
using devices::IrqLine;
using devices::MmioBus;
using devices::MmioDevice;
using devices::Uart;

// ---------------------------------------------------------------------------
// MmioBus
// ---------------------------------------------------------------------------

class StubDevice final : public MmioDevice {
 public:
  explicit StubDevice(std::string_view name) : name_(name) {}
  std::string_view name() const override { return name_; }
  Result<uint32_t> Read(uint32_t offset, uint32_t size) override {
    (void)size;
    return offset;
  }
  Status Write(const Phase& ph, uint32_t offset, uint32_t size, uint32_t value) override {
    (void)ph;
    (void)size;
    last_offset = offset;
    last_value = value;
    return OkStatus();
  }
  uint32_t last_offset = 0;
  uint32_t last_value = 0;

 private:
  std::string_view name_;
};

TEST(MmioBusTest, DispatchByRange) {
  MmioBus bus;
  StubDevice a("a"), b("b");
  ASSERT_TRUE(bus.Map(0xF0000000, 0x1000, &a).ok());
  ASSERT_TRUE(bus.Map(0xF0001000, 0x1000, &b).ok());

  EXPECT_EQ(*bus.MmioRead(0xF0000010, 4), 0x10u);
  ASSERT_TRUE(bus.MmioWrite(TestPhase(), 0xF0001020, 4, 77).ok());
  EXPECT_EQ(b.last_offset, 0x20u);
  EXPECT_EQ(b.last_value, 77u);
}

TEST(MmioBusTest, OverlapRejected) {
  MmioBus bus;
  StubDevice a("a"), b("b");
  ASSERT_TRUE(bus.Map(0xF0000000, 0x2000, &a).ok());
  EXPECT_EQ(bus.Map(0xF0001000, 0x1000, &b).code(), StatusCode::kAlreadyExists);
}

TEST(MmioBusTest, UnmappedIsNotFound) {
  MmioBus bus;
  EXPECT_EQ(bus.MmioRead(0xF0000000, 4).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(bus.MmioWrite(TestPhase(), 0xF0000000, 4, 0).code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// InterruptController
// ---------------------------------------------------------------------------

TEST(PicTest, AssertEnableAckFlow) {
  InterruptController pic;
  bool level = false;
  pic.SetSink([&](const Phase& ph, bool l) {
    (void)ph;
    level = l;
  });

  pic.Assert(TestPhase(), 3);
  EXPECT_FALSE(level);  // not enabled yet
  ASSERT_TRUE(pic.Write(TestPhase(), 0x04, 4, 1u << 3).ok());
  EXPECT_TRUE(level);

  // CLAIM returns the line; ACK clears it.
  EXPECT_EQ(*pic.Read(0x10, 4), 3u);
  ASSERT_TRUE(pic.Write(TestPhase(), 0x08, 4, 1u << 3).ok());
  EXPECT_FALSE(level);
  EXPECT_EQ(*pic.Read(0x10, 4), 0xFFFFFFFFu);
}

TEST(PicTest, ClaimReturnsLowestActive) {
  InterruptController pic;
  ASSERT_TRUE(pic.Write(TestPhase(), 0x04, 4, 0xFF).ok());
  pic.Assert(TestPhase(), 5);
  pic.Assert(TestPhase(), 2);
  EXPECT_EQ(*pic.Read(0x10, 4), 2u);
}

TEST(PicTest, SoftwareRaise) {
  InterruptController pic;
  bool level = false;
  pic.SetSink([&](const Phase& ph, bool l) {
    (void)ph;
    level = l;
  });
  ASSERT_TRUE(pic.Write(TestPhase(), 0x04, 4, 0x3).ok());
  ASSERT_TRUE(pic.Write(TestPhase(), 0x0C, 4, 0x2).ok());  // RAISE line 1
  EXPECT_TRUE(level);
  EXPECT_EQ(pic.pending(), 2u);
}

TEST(PicTest, SerializeRoundTrip) {
  InterruptController pic;
  ASSERT_TRUE(pic.Write(TestPhase(), 0x04, 4, 0xAB).ok());
  pic.Assert(TestPhase(), 1);
  ByteWriter w;
  pic.Serialize(w);

  InterruptController restored;
  ByteReader r(w.buffer());
  ASSERT_TRUE(restored.Deserialize(TestPhase(), r).ok());
  EXPECT_EQ(restored.pending(), pic.pending());
  EXPECT_EQ(restored.enable(), pic.enable());
}

TEST(PicTest, WordOnlyAccess) {
  InterruptController pic;
  EXPECT_FALSE(pic.Read(0x00, 2).ok());
  EXPECT_FALSE(pic.Write(TestPhase(), 0x04, 1, 1).ok());
}

// ---------------------------------------------------------------------------
// UART
// ---------------------------------------------------------------------------

TEST(UartTest, TransmitCollectsOutput) {
  Uart uart;
  for (char c : std::string("ok\n")) {
    ASSERT_TRUE(uart.Write(TestPhase(), 0x00, 4, static_cast<uint32_t>(c)).ok());
  }
  EXPECT_EQ(uart.output(), "ok\n");
}

TEST(UartTest, ReceivePath) {
  InterruptController pic;
  Uart uart(IrqLine(&pic, devices::kUartIrq));
  ASSERT_TRUE(pic.Write(TestPhase(), 0x04, 4, 1u << devices::kUartIrq).ok());
  ASSERT_TRUE(uart.Write(TestPhase(), 0x0C, 4, 1).ok());  // enable rx irq

  EXPECT_EQ(*uart.Read(0x08, 4) & 1u, 0u);  // no rx data
  uart.InjectInput(TestPhase(), "ab");
  EXPECT_EQ(pic.pending() & (1u << devices::kUartIrq), 1u << devices::kUartIrq);
  EXPECT_EQ(*uart.Read(0x08, 4) & 1u, 1u);
  EXPECT_EQ(*uart.Read(0x04, 4), static_cast<uint32_t>('a'));
  EXPECT_EQ(*uart.Read(0x04, 4), static_cast<uint32_t>('b'));
  EXPECT_EQ(*uart.Read(0x04, 4), 0u);  // empty reads zero
}

TEST(UartTest, SerializeRoundTrip) {
  Uart uart;
  ASSERT_TRUE(uart.Write(TestPhase(), 0x00, 4, 'x').ok());
  uart.InjectInput(TestPhase(), "queued");
  ByteWriter w;
  uart.Serialize(w);

  Uart restored;
  ByteReader r(w.buffer());
  ASSERT_TRUE(restored.Deserialize(TestPhase(), r).ok());
  EXPECT_EQ(restored.output(), "x");
  EXPECT_EQ(*restored.Read(0x04, 4), static_cast<uint32_t>('q'));
}

// ---------------------------------------------------------------------------
// Emulated block device (host-driven)
// ---------------------------------------------------------------------------

class EmuBlkTest : public ::testing::Test {
 protected:
  EmuBlkTest()
      : store_(64), dev_(&store_, IrqLine(&pic_, devices::kBlkIrq), /*clock=*/nullptr) {
    (void)pic_.Write(TestPhase(), 0x04, 4, 1u << devices::kBlkIrq);
  }

  InterruptController pic_;
  storage::MemBlockStore store_;
  EmulatedBlockDevice dev_;
};

TEST_F(EmuBlkTest, WriteCommandPersists) {
  ASSERT_TRUE(dev_.Write(TestPhase(), 0x00, 4, 5).ok());  // LBA 5
  ASSERT_TRUE(dev_.Write(TestPhase(), 0x04, 4, 1).ok());  // one sector
  ASSERT_TRUE(dev_.Write(TestPhase(), 0x14, 4, 0).ok());  // rewind pointer
  for (uint32_t i = 0; i < 128; ++i) {
    ASSERT_TRUE(dev_.Write(TestPhase(), 0x10, 4, 0x1000 + i).ok());
  }
  ASSERT_TRUE(dev_.Write(TestPhase(), 0x08, 4, 2).ok());  // CMD write (synchronous: no clock)
  EXPECT_EQ(*dev_.Read(0x0C, 4), 2u);        // data_ready, not busy

  uint8_t sector[512] = {};
  ASSERT_TRUE(store_.ReadSectors(5, 1, sector).ok());
  uint32_t w;
  std::memcpy(&w, sector, 4);
  EXPECT_EQ(w, 0x1000u);
  EXPECT_EQ(pic_.pending() & (1u << devices::kBlkIrq), 1u << devices::kBlkIrq);
}

TEST_F(EmuBlkTest, ReadCommandReturnsData) {
  uint8_t sector[512] = {0xAA, 0xBB, 0xCC, 0xDD};
  ASSERT_TRUE(store_.WriteSectors(7, 1, sector).ok());
  ASSERT_TRUE(dev_.Write(TestPhase(), 0x00, 4, 7).ok());
  ASSERT_TRUE(dev_.Write(TestPhase(), 0x04, 4, 1).ok());
  ASSERT_TRUE(dev_.Write(TestPhase(), 0x08, 4, 1).ok());  // CMD read (synchronous)
  EXPECT_EQ(*dev_.Read(0x10, 4), 0xDDCCBBAAu);
}

TEST_F(EmuBlkTest, BadCountRejected) {
  EXPECT_FALSE(dev_.Write(TestPhase(), 0x04, 4, 0).ok());
  EXPECT_FALSE(dev_.Write(TestPhase(), 0x04, 4, 9).ok());
}

TEST_F(EmuBlkTest, OutOfRangeCommandSetsError) {
  ASSERT_TRUE(dev_.Write(TestPhase(), 0x00, 4, 63).ok());
  ASSERT_TRUE(dev_.Write(TestPhase(), 0x04, 4, 8).ok());  // 63..70 exceeds 64-sector disk
  ASSERT_TRUE(dev_.Write(TestPhase(), 0x08, 4, 1).ok());
  EXPECT_EQ(*dev_.Read(0x0C, 4) & 4u, 4u);  // error bit
}

TEST_F(EmuBlkTest, DeferredCompletionWithClock) {
  SimClock clock;
  EmulatedBlockDevice timed(&store_, IrqLine(&pic_, devices::kBlkIrq), &clock);
  ASSERT_TRUE(timed.Write(TestPhase(), 0x00, 4, 0).ok());
  ASSERT_TRUE(timed.Write(TestPhase(), 0x04, 4, 4).ok());
  ASSERT_TRUE(timed.Write(TestPhase(), 0x08, 4, 1).ok());
  EXPECT_EQ(*timed.Read(0x0C, 4) & 1u, 1u);  // busy
  clock.RunAll(TestPhase());
  EXPECT_EQ(*timed.Read(0x0C, 4) & 1u, 0u);  // done
  EXPECT_GE(clock.now(), 4 * CostModel::Default().blk_sector_cost);
}

TEST_F(EmuBlkTest, SerializeRoundTrip) {
  ASSERT_TRUE(dev_.Write(TestPhase(), 0x00, 4, 9).ok());
  ASSERT_TRUE(dev_.Write(TestPhase(), 0x04, 4, 3).ok());
  ByteWriter w;
  dev_.Serialize(w);
  EmulatedBlockDevice restored(&store_, IrqLine(&pic_, devices::kBlkIrq), nullptr);
  ByteReader r(w.buffer());
  ASSERT_TRUE(restored.Deserialize(TestPhase(), r).ok());
  EXPECT_EQ(*restored.Read(0x00, 4), 9u);
  EXPECT_EQ(*restored.Read(0x04, 4), 3u);
}

// ---------------------------------------------------------------------------
// Emulated net device + virtual switch (host-driven)
// ---------------------------------------------------------------------------

TEST(EmuNetTest, SendAndReceiveThroughSwitch) {
  SimClock clock;
  net::VirtualSwitch vswitch(&clock);
  InterruptController pic;
  EmulatedNetDevice a(&vswitch, 1, IrqLine(&pic, devices::kNetIrq));
  EmulatedNetDevice b(&vswitch, 2, IrqLine(&pic, devices::kNetIrq));
  ASSERT_TRUE(vswitch.Attach(TestPhase(), 1, &a).ok());
  ASSERT_TRUE(vswitch.Attach(TestPhase(), 2, &b).ok());

  // a sends 8 bytes to b.
  ASSERT_TRUE(a.Write(TestPhase(), 0x1C, 4, 0).ok());
  ASSERT_TRUE(a.Write(TestPhase(), 0x10, 4, 0x11111111).ok());
  ASSERT_TRUE(a.Write(TestPhase(), 0x10, 4, 0x22222222).ok());
  ASSERT_TRUE(a.Write(TestPhase(), 0x00, 4, 8).ok());
  ASSERT_TRUE(a.Write(TestPhase(), 0x04, 4, 2).ok());
  ASSERT_TRUE(a.Write(TestPhase(), 0x08, 4, 1).ok());
  EXPECT_EQ(a.stats().tx_frames, 1u);

  clock.RunAll(TestPhase());  // deliver
  EXPECT_EQ(b.stats().rx_frames, 1u);
  EXPECT_EQ(*b.Read(0x0C, 4) & 1u, 1u);  // rx available

  ASSERT_TRUE(b.Write(TestPhase(), 0x08, 4, 2).ok());  // pop
  EXPECT_EQ(*b.Read(0x14, 4), 8u);
  EXPECT_EQ(*b.Read(0x18, 4), 1u);
  EXPECT_EQ(*b.Read(0x10, 4), 0x11111111u);
  EXPECT_EQ(*b.Read(0x10, 4), 0x22222222u);
}

TEST(EmuNetTest, OversizedTxRejected) {
  SimClock clock;
  net::VirtualSwitch vswitch(&clock);
  InterruptController pic;
  EmulatedNetDevice a(&vswitch, 1, IrqLine(&pic, devices::kNetIrq));
  EXPECT_FALSE(a.Write(TestPhase(), 0x00, 4, EmulatedNetDevice::kBufBytes + 4).ok());
}

// ---------------------------------------------------------------------------
// Virtio rings (host-driven through guest memory)
// ---------------------------------------------------------------------------

class VirtioRingTest : public ::testing::Test {
 protected:
  VirtioRingTest() : pool_(512) {
    auto m = mem::GuestMemory::Create(&pool_, 1u << 20);
    EXPECT_TRUE(m.ok());
    memory_ = std::move(m).value();
  }

  // Builds a 4-entry queue at fixed addresses.
  virtio::VirtQueue MakeQueue() {
    virtio::VirtQueue q;
    q.Configure(0x10000, 0x10100, 0x10200, 4);
    q.set_ready(true);
    return q;
  }

  void WriteDesc(uint32_t index, uint32_t gpa, uint32_t len, uint16_t flags, uint16_t next) {
    uint32_t base = 0x10000 + index * 12;
    ASSERT_TRUE(memory_->WriteU32(base, gpa).ok());
    ASSERT_TRUE(memory_->WriteU32(base + 4, len).ok());
    ASSERT_TRUE(memory_->WriteU16(base + 8, flags).ok());
    ASSERT_TRUE(memory_->WriteU16(base + 10, next).ok());
  }

  void PostAvail(std::vector<uint16_t> heads) {
    auto idx = memory_->ReadU16(0x10100 + 2);
    ASSERT_TRUE(idx.ok());
    uint16_t i = *idx;
    for (uint16_t head : heads) {
      ASSERT_TRUE(memory_->WriteU16(0x10100 + 4 + (i % 4) * 2, head).ok());
      ++i;
    }
    ASSERT_TRUE(memory_->WriteU16(0x10100 + 2, i).ok());
  }

  mem::FramePool pool_;
  std::unique_ptr<mem::GuestMemory> memory_;
};

TEST_F(VirtioRingTest, PopSingleDescriptor) {
  virtio::VirtQueue q = MakeQueue();
  WriteDesc(0, 0x20000, 64, 0, 0);
  PostAvail({0});

  ASSERT_TRUE(*q.HasWork(*memory_));
  auto chain = q.Pop(*memory_);
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->head, 0);
  ASSERT_EQ(chain->elems.size(), 1u);
  EXPECT_EQ(chain->elems[0].gpa, 0x20000u);
  EXPECT_EQ(chain->elems[0].len, 64u);
  EXPECT_FALSE(chain->elems[0].device_writes);
  EXPECT_FALSE(*q.HasWork(*memory_));
}

TEST_F(VirtioRingTest, PopChainFollowsNext) {
  virtio::VirtQueue q = MakeQueue();
  WriteDesc(1, 0x20000, 16, virtio::kDescNext, 2);
  WriteDesc(2, 0x21000, 512, virtio::kDescNext | virtio::kDescWrite, 3);
  WriteDesc(3, 0x22000, 1, virtio::kDescWrite, 0);
  PostAvail({1});

  auto chain = q.Pop(*memory_);
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain->elems.size(), 3u);
  EXPECT_EQ(chain->TotalReadable(), 16u);
  EXPECT_EQ(chain->TotalWritable(), 513u);
}

TEST_F(VirtioRingTest, LoopingChainDetected) {
  virtio::VirtQueue q = MakeQueue();
  WriteDesc(0, 0x20000, 16, virtio::kDescNext, 1);
  WriteDesc(1, 0x21000, 16, virtio::kDescNext, 0);  // back to 0
  PostAvail({0});
  EXPECT_EQ(q.Pop(*memory_).status().code(), StatusCode::kDataLoss);
}

TEST_F(VirtioRingTest, OutOfRangeDescriptorDetected) {
  virtio::VirtQueue q = MakeQueue();
  WriteDesc(0, 0x20000, 16, virtio::kDescNext, 9);  // next past qsize
  PostAvail({0});
  EXPECT_EQ(q.Pop(*memory_).status().code(), StatusCode::kDataLoss);
}

TEST_F(VirtioRingTest, UsedRingPublishes) {
  virtio::VirtQueue q = MakeQueue();
  ASSERT_TRUE(q.PushUsed(*memory_, 2, 100).ok());
  EXPECT_EQ(*memory_->ReadU16(0x10200 + 2), 1u);    // used.idx
  EXPECT_EQ(*memory_->ReadU32(0x10200 + 4), 2u);    // elem.id
  EXPECT_EQ(*memory_->ReadU32(0x10200 + 8), 100u);  // elem.len
}

TEST_F(VirtioRingTest, BlkDeviceExecutesWriteRequest) {
  storage::MemBlockStore disk(64);
  InterruptController pic;
  virtio::VirtioBlk blk(memory_.get(), IrqLine(&pic, 8), &disk, /*clock=*/nullptr);
  ASSERT_TRUE(pic.Write(TestPhase(), 0x04, 4, 1u << 8).ok());

  // Configure queue 0 via registers.
  ASSERT_TRUE(blk.Write(TestPhase(), 0x04, 4, 0).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x08, 4, 4).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x0C, 4, 0x10000).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x10, 4, 0x10100).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x14, 4, 0x10200).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x18, 4, 1).ok());

  // Request: header (type=1 write, sector=3) + 512B data + status.
  ASSERT_TRUE(memory_->WriteU32(0x30000, 1).ok());
  ASSERT_TRUE(memory_->WriteU32(0x30008, 3).ok());
  ASSERT_TRUE(memory_->WriteU32(0x3000C, 0).ok());
  for (uint32_t i = 0; i < 128; ++i) {
    ASSERT_TRUE(memory_->WriteU32(0x31000 + i * 4, 0xF00D0000 + i).ok());
  }
  WriteDesc(0, 0x30000, 16, virtio::kDescNext, 1);
  WriteDesc(1, 0x31000, 512, virtio::kDescNext, 2);
  WriteDesc(2, 0x32000, 1, virtio::kDescWrite, 0);
  PostAvail({0});

  ASSERT_TRUE(blk.Write(TestPhase(), 0x1C, 4, 0).ok());  // doorbell

  EXPECT_EQ(blk.blk_stats().requests, 1u);
  EXPECT_EQ(blk.blk_stats().errors, 0u);
  EXPECT_EQ(*memory_->ReadU8(0x32000), virtio::kBlkStatusOk);
  uint8_t sector[512] = {};
  ASSERT_TRUE(disk.ReadSectors(3, 1, sector).ok());
  uint32_t w;
  std::memcpy(&w, sector, 4);
  EXPECT_EQ(w, 0xF00D0000u);
  EXPECT_NE(pic.pending() & (1u << 8), 0u);
}

TEST_F(VirtioRingTest, BlkReadRequestFillsBuffers) {
  storage::MemBlockStore disk(64);
  uint8_t sector[512] = {};
  for (int i = 0; i < 512; ++i) {
    sector[i] = static_cast<uint8_t>(i * 3);
  }
  ASSERT_TRUE(disk.WriteSectors(9, 1, sector).ok());

  InterruptController pic;
  virtio::VirtioBlk blk(memory_.get(), IrqLine(&pic, 8), &disk, nullptr);
  ASSERT_TRUE(blk.Write(TestPhase(), 0x04, 4, 0).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x08, 4, 4).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x0C, 4, 0x10000).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x10, 4, 0x10100).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x14, 4, 0x10200).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x18, 4, 1).ok());

  ASSERT_TRUE(memory_->WriteU32(0x30000, 0).ok());  // type read
  ASSERT_TRUE(memory_->WriteU32(0x30008, 9).ok());
  WriteDesc(0, 0x30000, 16, virtio::kDescNext, 1);
  WriteDesc(1, 0x31000, 512, virtio::kDescNext | virtio::kDescWrite, 2);
  WriteDesc(2, 0x32000, 1, virtio::kDescWrite, 0);
  PostAvail({0});
  ASSERT_TRUE(blk.Write(TestPhase(), 0x1C, 4, 0).ok());

  EXPECT_EQ(*memory_->ReadU8(0x32000), virtio::kBlkStatusOk);
  std::vector<uint8_t> got(512);
  ASSERT_TRUE(memory_->Read(0x31000, got.data(), got.size()).ok());
  EXPECT_EQ(std::memcmp(got.data(), sector, 512), 0);
}

TEST_F(VirtioRingTest, BlkMalformedRequestGetsErrorStatus) {
  storage::MemBlockStore disk(64);
  InterruptController pic;
  virtio::VirtioBlk blk(memory_.get(), IrqLine(&pic, 8), &disk, nullptr);
  ASSERT_TRUE(blk.Write(TestPhase(), 0x04, 4, 0).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x08, 4, 4).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x0C, 4, 0x10000).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x10, 4, 0x10100).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x14, 4, 0x10200).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x18, 4, 1).ok());

  ASSERT_TRUE(memory_->WriteU32(0x30000, 9999).ok());  // bogus request type
  WriteDesc(0, 0x30000, 16, virtio::kDescNext, 1);
  WriteDesc(1, 0x32000, 1, virtio::kDescWrite, 0);
  PostAvail({0});
  ASSERT_TRUE(blk.Write(TestPhase(), 0x1C, 4, 0).ok());
  EXPECT_EQ(blk.blk_stats().errors, 1u);
  EXPECT_EQ(*memory_->ReadU8(0x32000), virtio::kBlkStatusUnsupported);
}

TEST_F(VirtioRingTest, ConsoleTxCollects) {
  InterruptController pic;
  virtio::VirtioConsole con(memory_.get(), IrqLine(&pic, 10));
  // Configure TX queue (1).
  ASSERT_TRUE(con.Write(TestPhase(), 0x04, 4, 1).ok());
  ASSERT_TRUE(con.Write(TestPhase(), 0x08, 4, 4).ok());
  ASSERT_TRUE(con.Write(TestPhase(), 0x0C, 4, 0x10000).ok());
  ASSERT_TRUE(con.Write(TestPhase(), 0x10, 4, 0x10100).ok());
  ASSERT_TRUE(con.Write(TestPhase(), 0x14, 4, 0x10200).ok());
  ASSERT_TRUE(con.Write(TestPhase(), 0x18, 4, 1).ok());

  const char msg[] = "virtio says hi";
  ASSERT_TRUE(memory_->Write(0x30000, msg, sizeof(msg) - 1).ok());
  WriteDesc(0, 0x30000, sizeof(msg) - 1, 0, 0);
  PostAvail({0});
  ASSERT_TRUE(con.Write(TestPhase(), 0x1C, 4, 1).ok());
  EXPECT_EQ(con.output(), "virtio says hi");
}

TEST_F(VirtioRingTest, ConsoleRxDeliversIntoPostedBuffers) {
  InterruptController pic;
  virtio::VirtioConsole con(memory_.get(), IrqLine(&pic, 10));
  // Configure RX queue (0) and post one 16-byte buffer.
  ASSERT_TRUE(con.Write(TestPhase(), 0x04, 4, 0).ok());
  ASSERT_TRUE(con.Write(TestPhase(), 0x08, 4, 4).ok());
  ASSERT_TRUE(con.Write(TestPhase(), 0x0C, 4, 0x10000).ok());
  ASSERT_TRUE(con.Write(TestPhase(), 0x10, 4, 0x10100).ok());
  ASSERT_TRUE(con.Write(TestPhase(), 0x14, 4, 0x10200).ok());
  ASSERT_TRUE(con.Write(TestPhase(), 0x18, 4, 1).ok());
  WriteDesc(0, 0x30000, 16, virtio::kDescWrite, 0);
  PostAvail({0});

  con.InjectInput(TestPhase(), "hello");
  std::vector<uint8_t> buf(5);
  ASSERT_TRUE(memory_->Read(0x30000, buf.data(), 5).ok());
  EXPECT_EQ(std::string(buf.begin(), buf.end()), "hello");
  EXPECT_EQ(*memory_->ReadU16(0x10200 + 2), 1u);  // one used entry
}

TEST_F(VirtioRingTest, DeviceStateSerializeRoundTrip) {
  storage::MemBlockStore disk(64);
  InterruptController pic;
  virtio::VirtioBlk blk(memory_.get(), IrqLine(&pic, 8), &disk, nullptr);
  ASSERT_TRUE(blk.Write(TestPhase(), 0x04, 4, 0).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x08, 4, 8).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x0C, 4, 0x10000).ok());
  ASSERT_TRUE(blk.Write(TestPhase(), 0x18, 4, 1).ok());

  ByteWriter w;
  blk.Serialize(w);
  virtio::VirtioBlk restored(memory_.get(), IrqLine(&pic, 8), &disk, nullptr);
  ByteReader r(w.buffer());
  ASSERT_TRUE(restored.Deserialize(TestPhase(), r).ok());
  EXPECT_EQ(*restored.Read(0x08, 4), 8u);
  EXPECT_EQ(*restored.Read(0x0C, 4), 0x10000u);
  EXPECT_EQ(*restored.Read(0x18, 4), 1u);
}

// ---------------------------------------------------------------------------
// EVENT_IDX suppression semantics (VirtQueue::NeedEvent + used-index wrap)
// ---------------------------------------------------------------------------

TEST(VirtQueueEventTest, NeedEventCrossingAndWraparound) {
  using virtio::VirtQueue;
  EXPECT_TRUE(VirtQueue::NeedEvent(0, 1, 0));
  EXPECT_TRUE(VirtQueue::NeedEvent(5, 6, 3));    // 3 -> 6 crosses event 5
  EXPECT_FALSE(VirtQueue::NeedEvent(5, 5, 3));   // stopped at the event
  EXPECT_FALSE(VirtQueue::NeedEvent(10, 5, 0));  // event parked ahead
  EXPECT_FALSE(VirtQueue::NeedEvent(7, 7, 5));   // parked at published idx
  // Wrap at 2^16: 0xFFF0 -> 2 crosses an event at 0xFFFE.
  EXPECT_TRUE(VirtQueue::NeedEvent(0xFFFE, 2, 0xFFF0));
  // Event on the far side of the wrap, not yet reached.
  EXPECT_FALSE(VirtQueue::NeedEvent(0x000A, 2, 0xFFF0));
  // Event exactly at the old index fires on the wrapping push.
  EXPECT_TRUE(VirtQueue::NeedEvent(0xFFFF, 0, 0xFFFF));
}

TEST_F(VirtioRingTest, PushUsedWrapsAtSixtyFourK) {
  // The device-side used index is private by design; craft a queue one push
  // from the 2^16 wrap through the serialization path (whose layout the
  // round-trip test pins).
  ByteWriter w;
  w.WriteU32(0x10000);  // desc
  w.WriteU32(0x10100);  // avail
  w.WriteU32(0x10200);  // used
  w.WriteU16(4);        // size
  w.WriteU16(0xFFFF);   // last_avail
  w.WriteU16(0xFFFF);   // used_idx
  w.WriteU8(1);         // ready
  virtio::VirtQueue q;
  ByteReader r(w.buffer());
  ASSERT_TRUE(q.Deserialize(r).ok());
  ASSERT_TRUE(memory_->WriteU16(0x10200 + 2, 0xFFFF).ok());  // guest's view

  ASSERT_TRUE(q.PushUsed(*memory_, 2, 100).ok());
  EXPECT_EQ(q.used_idx(), 0u);                         // wrapped
  EXPECT_EQ(*memory_->ReadU16(0x10200 + 2), 0u);       // published wrap
  EXPECT_EQ(*memory_->ReadU32(0x10200 + 4 + 3 * 8), 2u);  // slot 0xFFFF % 4
}

TEST_F(VirtioRingTest, RegisterValidation) {
  storage::MemBlockStore disk(64);
  InterruptController pic;
  virtio::VirtioBlk blk(memory_.get(), IrqLine(&pic, 8), &disk, nullptr);
  EXPECT_EQ(*blk.Read(0x00, 4), virtio::kVirtioIdBlk);
  EXPECT_FALSE(blk.Write(TestPhase(), 0x04, 4, 5).ok());      // queue_sel out of range
  EXPECT_FALSE(blk.Write(TestPhase(), 0x08, 4, 3).ok());      // not a power of two
  EXPECT_FALSE(blk.Write(TestPhase(), 0x08, 4, 512).ok());    // too large
  EXPECT_FALSE(blk.Write(TestPhase(), 0x1C, 4, 7).ok());      // notify unknown queue
  EXPECT_FALSE(blk.Read(0x00, 2).ok());          // sub-word access
}

// ---------------------------------------------------------------------------
// Virtio-net data plane: coalescing, kick suppression, backlog, chain errors
// ---------------------------------------------------------------------------

// Switch port standing in for the remote NIC on TX tests.
struct CountingSink final : net::FrameSink {
  std::vector<net::Frame> frames;
  uint64_t bursts = 0;
  void OnFrame(const SerialPhase&, const net::Frame& f) override { frames.push_back(f); }
  void OnFrameBurst(const SerialPhase& ph, std::span<const net::Frame> fs) override {
    ++bursts;
    net::FrameSink::OnFrameBurst(ph, fs);
  }
};

class VirtioNetTest : public VirtioRingTest {
 protected:
  static constexpr uint32_t kRxDesc = 0x10000, kRxAvail = 0x10100, kRxUsed = 0x10200;
  static constexpr uint32_t kTxDesc = 0x11000, kTxAvail = 0x11100, kTxUsed = 0x11200;
  static constexpr uint16_t kQ = 4;
  static constexpr uint32_t kRxQueue = virtio::VirtioNet::kRxQueue;
  static constexpr uint32_t kTxQueue = virtio::VirtioNet::kTxQueue;

  VirtioNetTest() : vswitch_(&clock_) {}

  void Boot(virtio::VirtioNetOptions opts = {}, bool with_clock = true) {
    net_ = std::make_unique<virtio::VirtioNet>(
        memory_.get(), IrqLine(&pic_, devices::kNetIrq), &vswitch_, /*addr=*/1,
        with_clock ? ClockRef(&clock_) : ClockRef(), opts);
    ASSERT_TRUE(vswitch_.Attach(TestPhase(), 1, net_.get()).ok());
    ASSERT_TRUE(vswitch_.Attach(TestPhase(), 2, &peer_).ok());
    ConfigureQueue(kRxQueue, kRxDesc, kRxAvail, kRxUsed);
    ConfigureQueue(kTxQueue, kTxDesc, kTxAvail, kTxUsed);
  }

  void ConfigureQueue(uint16_t q, uint32_t desc, uint32_t avail, uint32_t used) {
    ASSERT_TRUE(net_->Write(TestPhase(), 0x04, 4, q).ok());
    ASSERT_TRUE(net_->Write(TestPhase(), 0x08, 4, kQ).ok());
    ASSERT_TRUE(net_->Write(TestPhase(), 0x0C, 4, desc).ok());
    ASSERT_TRUE(net_->Write(TestPhase(), 0x10, 4, avail).ok());
    ASSERT_TRUE(net_->Write(TestPhase(), 0x14, 4, used).ok());
    ASSERT_TRUE(net_->Write(TestPhase(), 0x18, 4, 1).ok());
  }

  void WriteDescAt(uint32_t base, uint32_t index, uint32_t gpa, uint32_t len,
                   uint16_t flags, uint16_t next = 0) {
    uint32_t d = base + index * virtio::kDescBytes;
    ASSERT_TRUE(memory_->WriteU32(d, gpa).ok());
    ASSERT_TRUE(memory_->WriteU32(d + 4, len).ok());
    ASSERT_TRUE(memory_->WriteU16(d + 8, flags).ok());
    ASSERT_TRUE(memory_->WriteU16(d + 10, next).ok());
  }

  void PostAvailAt(uint32_t avail, std::vector<uint16_t> heads) {
    uint16_t i = *memory_->ReadU16(avail + 2);
    for (uint16_t head : heads) {
      ASSERT_TRUE(memory_->WriteU16(avail + 4 + (i % kQ) * 2, head).ok());
      ++i;
    }
    ASSERT_TRUE(memory_->WriteU16(avail + 2, i).ok());
  }

  // Stages a TX frame (8-byte header + payload) in guest memory and posts it.
  void PostTxFrame(uint16_t slot, uint32_t dst, uint32_t payload_len) {
    uint32_t buf = 0x20000 + slot * 0x1000;
    ASSERT_TRUE(memory_->WriteU32(buf, dst).ok());
    ASSERT_TRUE(memory_->WriteU32(buf + 4, payload_len).ok());
    for (uint32_t i = 0; i < payload_len; ++i) {
      ASSERT_TRUE(memory_->WriteU8(buf + 8 + i, static_cast<uint8_t>(slot + i)).ok());
    }
    WriteDescAt(kTxDesc, slot, buf, 8 + payload_len, 0);
    PostAvailAt(kTxAvail, {slot});
  }

  void PostRxBuffer(uint16_t slot, uint32_t len = 512, uint32_t gpa = 0) {
    if (gpa == 0) {
      gpa = 0x40000 + slot * 0x1000;
    }
    WriteDescAt(kRxDesc, slot, gpa, len, virtio::kDescWrite);
    PostAvailAt(kRxAvail, {slot});
  }

  net::Frame MakeRxFrame(uint32_t src, size_t payload) {
    net::Frame f;
    f.src = src;
    f.dst = 1;
    f.payload.Assign(payload, 0xAB);
    return f;
  }

  void SetUsedEvent(uint32_t avail_gpa, uint16_t value) {
    ASSERT_TRUE(memory_->WriteU16(avail_gpa + 4 + 2u * kQ, value).ok());
  }

  SimClock clock_;
  net::VirtualSwitch vswitch_;
  InterruptController pic_;
  CountingSink peer_;
  std::unique_ptr<virtio::VirtioNet> net_;
};

TEST_F(VirtioNetTest, EventIdxParkedSuppressesTxCompletions) {
  Boot();
  ASSERT_TRUE(net_->Write(TestPhase(), 0x2C, 4, virtio::kFeatureEventIdx).ok());

  // The guest parks used_event at the index it publishes (2): it wants no
  // completion interrupt until something beyond this batch completes.
  PostTxFrame(0, /*dst=*/2, 64);
  PostTxFrame(1, /*dst=*/2, 64);
  SetUsedEvent(kTxAvail, 2);
  ASSERT_TRUE(net_->Kick(TestPhase(), kTxQueue).ok());

  EXPECT_EQ(net_->net_stats().tx_frames, 2u);
  EXPECT_EQ(net_->stats().interrupts, 0u);
  EXPECT_EQ(net_->stats().interrupts_suppressed, 1u);
  EXPECT_EQ(pic_.pending() & (1u << devices::kNetIrq), 0u);

  // Re-armed behind the next completion: used 2 -> 3 crosses event 2.
  PostTxFrame(2, /*dst=*/2, 64);
  ASSERT_TRUE(net_->Kick(TestPhase(), kTxQueue).ok());
  EXPECT_EQ(net_->stats().interrupts, 1u);
  EXPECT_NE(pic_.pending() & (1u << devices::kNetIrq), 0u);

  clock_.RunAll(TestPhase());
  EXPECT_EQ(peer_.frames.size(), 3u);
}

TEST_F(VirtioNetTest, LegacyAvailFlagsSuppressWithoutEventIdx) {
  Boot();
  // No features acked: bit0 of avail.flags is the only suppression.
  ASSERT_TRUE(memory_->WriteU16(kRxAvail, 1).ok());
  PostRxBuffer(0);
  net_->OnFrame(TestPhase(), MakeRxFrame(2, 100));
  EXPECT_EQ(net_->net_stats().rx_frames, 1u);
  EXPECT_EQ(net_->stats().interrupts, 0u);
  EXPECT_EQ(net_->stats().interrupts_suppressed, 1u);

  ASSERT_TRUE(memory_->WriteU16(kRxAvail, 0).ok());
  PostRxBuffer(1);
  net_->OnFrame(TestPhase(), MakeRxFrame(2, 100));
  EXPECT_EQ(net_->stats().interrupts, 1u);
}

TEST_F(VirtioNetTest, EventIdxSuppressionAcrossUsedIndexWrap) {
  Boot();
  // Restore the device with the RX queue one completion from the 2^16 wrap
  // (the used index is private; the snapshot path is the supported way in).
  ByteWriter w;
  w.WriteU32(kRxDesc);
  w.WriteU32(kRxAvail);
  w.WriteU32(kRxUsed);
  w.WriteU16(kQ);
  w.WriteU16(0xFFFE);  // last_avail
  w.WriteU16(0xFFFE);  // used_idx
  w.WriteU8(1);
  for (int i = 0; i < 2; ++i) {  // TX queue: unconfigured
    w.WriteU32(0);
  }
  w.WriteU32(0);
  w.WriteU16(0);
  w.WriteU16(0);
  w.WriteU16(0);
  w.WriteU8(0);
  w.WriteU16(0);                         // queue_sel
  w.WriteU32(0);                         // isr
  w.WriteU32(0);                         // device_status
  w.WriteU32(virtio::kFeatureEventIdx);  // features
  w.WriteU8(0);                          // tx_polling
  ByteReader r(w.buffer());
  ASSERT_TRUE(net_->Deserialize(TestPhase(), r).ok());
  ASSERT_TRUE(memory_->WriteU16(kRxAvail + 2, 0xFFFE).ok());
  ASSERT_TRUE(memory_->WriteU16(kRxUsed + 2, 0xFFFE).ok());

  // Guest armed used_event at 0xFFFF: the delivery moving used to 0xFFFF
  // stops AT the event (suppressed); the next one wraps 0xFFFF -> 0 and
  // crosses it (interrupt), exercising NeedEvent's modulo arithmetic end
  // to end.
  SetUsedEvent(kRxAvail, 0xFFFF);
  PostRxBuffer(2);
  net_->OnFrame(TestPhase(), MakeRxFrame(2, 64));
  EXPECT_EQ(net_->stats().interrupts, 0u);
  EXPECT_EQ(net_->stats().interrupts_suppressed, 1u);

  PostRxBuffer(3);
  net_->OnFrame(TestPhase(), MakeRxFrame(2, 64));
  EXPECT_EQ(net_->stats().interrupts, 1u);
  EXPECT_EQ(net_->net_stats().rx_frames, 2u);
  EXPECT_EQ(*memory_->ReadU16(kRxUsed + 2), 0u);  // published index wrapped
}

TEST_F(VirtioNetTest, PollingSuppressesKicksAndReArmsWhenDry) {
  virtio::VirtioNetOptions opts;
  opts.tx_poll_budget = 2;
  Boot(opts);

  for (uint16_t s = 0; s < 4; ++s) {
    PostTxFrame(s, /*dst=*/2, 32);
  }
  ASSERT_TRUE(net_->Kick(TestPhase(), kTxQueue).ok());

  // Budget (2) < backlog (4): the kick drained one round and entered
  // polling — doorbells now suppressed via used.flags NO_NOTIFY.
  EXPECT_TRUE(net_->tx_polling());
  EXPECT_EQ(net_->net_stats().tx_frames, 2u);
  EXPECT_EQ(*memory_->ReadU16(kTxUsed), virtio::kUsedNoNotify);

  // A doorbell racing the poll is a no-op: the poll event owns the queue.
  ASSERT_TRUE(net_->Kick(TestPhase(), kTxQueue).ok());
  EXPECT_EQ(net_->net_stats().tx_frames, 2u);

  // The poll finds the remaining chains with no doorbell (kick suppressed),
  // drains dry, and re-arms notifications.
  clock_.RunAll(TestPhase());
  EXPECT_FALSE(net_->tx_polling());
  EXPECT_EQ(net_->net_stats().tx_frames, 4u);
  EXPECT_GE(net_->net_stats().poll_rounds, 1u);
  EXPECT_GE(net_->net_stats().kicks_suppressed, 1u);
  EXPECT_EQ(*memory_->ReadU16(kTxUsed), 0u);  // NO_NOTIFY cleared
  EXPECT_EQ(peer_.frames.size(), 4u);

  // Re-armed: a fresh kick works the queue synchronously again.
  PostTxFrame(0, /*dst=*/2, 32);
  ASSERT_TRUE(net_->Kick(TestPhase(), kTxQueue).ok());
  EXPECT_EQ(net_->net_stats().tx_frames, 5u);
}

TEST_F(VirtioNetTest, RuntTxChainCompletedAsMalformed) {
  Boot();
  // 4 readable bytes: no room for even the 8-byte frame header.
  WriteDescAt(kTxDesc, 0, 0x20000, 4, 0);
  PostAvailAt(kTxAvail, {0});
  ASSERT_TRUE(net_->Kick(TestPhase(), kTxQueue).ok());

  EXPECT_EQ(net_->net_stats().tx_malformed, 1u);
  EXPECT_EQ(net_->net_stats().tx_frames, 0u);
  EXPECT_EQ(*memory_->ReadU16(kTxUsed + 2), 1u);  // chain returned, len 0
  EXPECT_EQ(*memory_->ReadU32(kTxUsed + 8), 0u);
  clock_.RunAll(TestPhase());
  EXPECT_TRUE(peer_.frames.empty());
  EXPECT_EQ(vswitch_.stats().frames_sent, 0u);
}

TEST_F(VirtioNetTest, BadRxChainReturnedWithoutLosingFrame) {
  Boot();
  // Chain 0 points outside guest RAM; chain 1 is good. The frame must ride
  // out the bad buffer: chain 0 comes back len 0, the frame lands in
  // chain 1, and nothing leaks.
  PostRxBuffer(0, 512, /*gpa=*/0x200000);
  PostRxBuffer(1);
  net_->OnFrame(TestPhase(), MakeRxFrame(2, 100));

  EXPECT_EQ(net_->net_stats().rx_chain_errors, 1u);
  EXPECT_EQ(net_->net_stats().rx_frames, 1u);
  EXPECT_EQ(net_->net_stats().rx_dropped, 0u);
  EXPECT_EQ(*memory_->ReadU16(kRxUsed + 2), 2u);
  EXPECT_EQ(*memory_->ReadU32(kRxUsed + 4), 0u);       // id 0...
  EXPECT_EQ(*memory_->ReadU32(kRxUsed + 8), 0u);       // ...len 0
  EXPECT_EQ(*memory_->ReadU32(kRxUsed + 4 + 8), 1u);   // id 1...
  EXPECT_EQ(*memory_->ReadU32(kRxUsed + 8 + 8), 108u);  // ...header+payload
}

TEST_F(VirtioNetTest, RxBacklogCapDropsAndRecordsHighWatermark) {
  virtio::VirtioNetOptions opts;
  opts.rx_backlog_cap = 3;
  Boot(opts);

  // No RX buffers posted: frames queue host-side up to the cap.
  for (int i = 0; i < 5; ++i) {
    net_->OnFrame(TestPhase(), MakeRxFrame(2, 64));
  }
  EXPECT_EQ(net_->net_stats().rx_dropped, 2u);
  EXPECT_EQ(net_->net_stats().rx_backlog_hwm, 3u);
  EXPECT_EQ(net_->net_stats().rx_frames, 0u);

  // Buffers arrive: the RX kick drains the surviving backlog.
  for (uint16_t s = 0; s < 3; ++s) {
    PostRxBuffer(s);
  }
  ASSERT_TRUE(net_->Kick(TestPhase(), kRxQueue).ok());
  EXPECT_EQ(net_->net_stats().rx_frames, 3u);
  EXPECT_EQ(net_->net_stats().rx_backlog_hwm, 3u);
}

TEST_F(VirtioNetTest, BurstDeliveryCoalescesRxInterrupt) {
  Boot();
  for (uint16_t s = 0; s < 4; ++s) {
    PostRxBuffer(s);
  }
  net::Frame fs[3] = {MakeRxFrame(2, 64), MakeRxFrame(2, 64), MakeRxFrame(2, 64)};
  net_->OnFrameBurst(TestPhase(), std::span<const net::Frame>(fs, 3));

  EXPECT_EQ(net_->net_stats().burst_frames, 3u);
  EXPECT_EQ(net_->net_stats().rx_frames, 3u);
  EXPECT_EQ(net_->stats().interrupts, 1u);  // one pump, one interrupt
}

}  // namespace
}  // namespace hyperion
