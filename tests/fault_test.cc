// Fault-injection framework tests: plan construction, injector determinism,
// site/op/time scoping, the faulty storage wrappers, switch-level frame
// faults, and end-to-end error surfacing through the block devices into a
// running guest.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/core/host.h"
#include "src/fault/fault.h"
#include "tests/test_phase.h"
#include "src/fault/faulty_store.h"
#include "src/guest/programs.h"
#include "src/net/network.h"
#include "src/storage/block_store.h"
#include "src/storage/byte_store.h"
#include "src/virtio/virtio_blk.h"

namespace hyperion::fault {
namespace {

// ---------------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, RandomIsDeterministic) {
  ChaosProfile profile;
  profile.link_site = "link";
  profile.host_site = "host";
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    FaultPlan a = FaultPlan::Random(seed, profile);
    FaultPlan b = FaultPlan::Random(seed, profile);
    ASSERT_EQ(a.events.size(), b.events.size()) << "seed " << seed;
    for (size_t i = 0; i < a.events.size(); ++i) {
      EXPECT_EQ(a.events[i].kind, b.events[i].kind);
      EXPECT_EQ(a.events[i].site, b.events[i].site);
      EXPECT_EQ(a.events[i].from, b.events[i].from);
      EXPECT_EQ(a.events[i].until, b.events[i].until);
      EXPECT_EQ(a.events[i].probability, b.events[i].probability);
      EXPECT_EQ(a.events[i].param, b.events[i].param);
    }
    EXPECT_GE(a.events.size(), 1u);
    EXPECT_LE(a.events.size(), profile.max_events);
  }
}

TEST(FaultPlanTest, RandomVariesWithSeed) {
  ChaosProfile profile;
  profile.link_site = "link";
  std::set<SimTime> starts;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    FaultPlan plan = FaultPlan::Random(seed, profile);
    for (const FaultEvent& e : plan.events) {
      starts.insert(e.from);
    }
  }
  // 20 seeds of 1..4 events each: window starts must not all collide.
  EXPECT_GT(starts.size(), 10u);
}

// ---------------------------------------------------------------------------
// FaultInjector: transfers
// ---------------------------------------------------------------------------

TEST(InjectorTest, DropOnceLosesExactlyThatOp) {
  FaultPlan plan;
  plan.AddDropOnce("link", 2);
  FaultInjector inj(plan);
  for (uint64_t op = 0; op < 5; ++op) {
    TransferFault f = inj.OnTransfer("link", 1000 * op, 100);
    EXPECT_EQ(f.lost, op == 2) << "op " << op;
  }
  EXPECT_EQ(inj.stats().transfers_lost, 1u);
  EXPECT_EQ(inj.OpCount("link", OpClass::kTransfer), 5u);
}

TEST(InjectorTest, ProbabilisticLossReplaysIdentically) {
  FaultPlan plan;
  plan.seed = 42;
  plan.AddTransferLoss("link", 0.3);
  auto pattern = [&] {
    FaultInjector inj(plan);
    std::vector<bool> lost;
    for (int i = 0; i < 200; ++i) {
      lost.push_back(inj.OnTransfer("link", i, 10).lost);
    }
    return lost;
  };
  std::vector<bool> a = pattern();
  std::vector<bool> b = pattern();
  EXPECT_EQ(a, b);
  size_t losses = static_cast<size_t>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(losses, 20u);  // ~60 expected
  EXPECT_LT(losses, 140u);

  FaultPlan other = plan;
  other.seed = 43;
  FaultInjector inj2(other);
  std::vector<bool> c;
  for (int i = 0; i < 200; ++i) {
    c.push_back(inj2.OnTransfer("link", i, 10).lost);
  }
  EXPECT_NE(a, c);  // different seed, different draw sequence
}

TEST(InjectorTest, LinkDownLosesIntersectingTransfers) {
  FaultPlan plan;
  plan.AddLinkDown("link", 1000, 2000);
  FaultInjector inj(plan);
  // Entirely before the outage.
  EXPECT_FALSE(inj.OnTransfer("link", 0, 900).lost);
  // Ends inside the outage.
  EXPECT_TRUE(inj.OnTransfer("link", 900, 200).lost);
  // Entirely inside.
  EXPECT_TRUE(inj.OnTransfer("link", 1500, 100).lost);
  // Starts inside, ends after.
  EXPECT_TRUE(inj.OnTransfer("link", 1900, 500).lost);
  // Entirely after.
  EXPECT_FALSE(inj.OnTransfer("link", 2000, 100).lost);
  EXPECT_TRUE(inj.LinkDown("link", 1500));
  EXPECT_FALSE(inj.LinkDown("link", 2500));
}

TEST(InjectorTest, LatencySpikeExtendsTransfers) {
  FaultPlan plan;
  plan.AddLatencySpike("link", 777, 1.0);
  FaultInjector inj(plan);
  TransferFault f = inj.OnTransfer("link", 0, 100);
  EXPECT_FALSE(f.lost);
  EXPECT_EQ(f.extra_latency, 777u);
  EXPECT_EQ(inj.stats().transfers_delayed, 1u);
}

TEST(InjectorTest, SitesAreIsolated) {
  FaultPlan plan;
  plan.AddDropOnce("a", 0);
  FaultInjector inj(plan);
  EXPECT_FALSE(inj.OnTransfer("b", 0, 10).lost);  // b's op 0: no event for b
  EXPECT_TRUE(inj.OnTransfer("a", 0, 10).lost);   // a's op 0 still fresh
  // Op counters are per site.
  EXPECT_EQ(inj.OpCount("a", OpClass::kTransfer), 1u);
  EXPECT_EQ(inj.OpCount("b", OpClass::kTransfer), 1u);
}

TEST(InjectorTest, EmptySiteMatchesEverySite) {
  FaultPlan plan;
  plan.AddTransferLoss("", 1.0);
  FaultInjector inj(plan);
  EXPECT_TRUE(inj.OnTransfer("x", 0, 10).lost);
  EXPECT_TRUE(inj.OnTransfer("y", 0, 10).lost);
}

// ---------------------------------------------------------------------------
// FaultInjector: storage and host
// ---------------------------------------------------------------------------

TEST(InjectorTest, ReadWriteErrorOpWindows) {
  FaultPlan plan;
  plan.AddReadError("disk", 1, 2);   // ops 1 and 2
  plan.AddWriteError("disk", 0, 1);  // op 0
  FaultInjector inj(plan);
  EXPECT_TRUE(inj.OnBlockRead("disk", 0).ok());
  EXPECT_EQ(inj.OnBlockRead("disk", 0).code(), StatusCode::kUnavailable);
  EXPECT_EQ(inj.OnBlockRead("disk", 0).code(), StatusCode::kUnavailable);
  EXPECT_TRUE(inj.OnBlockRead("disk", 0).ok());
  EXPECT_EQ(inj.OnBlockWrite("disk", 0).code(), StatusCode::kUnavailable);
  EXPECT_TRUE(inj.OnBlockWrite("disk", 0).ok());
  EXPECT_EQ(inj.stats().read_errors, 2u);
  EXPECT_EQ(inj.stats().write_errors, 1u);
}

TEST(InjectorTest, TornWriteCutsAtSectorBoundary) {
  // A 2000-byte write at offset 100 spans [100, 2100): interior sector
  // boundaries 512, 1024, 1536, 2048 -> prefixes 412, 924, 1436, 1948,
  // plus 0.
  std::set<uint64_t> seen;
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.AddTornWrite("store", 0);
    FaultInjector inj(plan);
    auto torn = inj.OnByteWrite("store", 0, 100, 2000);
    ASSERT_TRUE(torn.has_value());
    seen.insert(*torn);
  }
  std::set<uint64_t> expected = {0, 412, 924, 1436, 1948};
  for (uint64_t cut : seen) {
    EXPECT_TRUE(expected.count(cut)) << "unexpected cut " << cut;
  }
  EXPECT_GT(seen.size(), 1u);  // across seeds, more than one cut point shows up
}

TEST(InjectorTest, TornWriteWithinOneSectorPersistsNothing) {
  FaultPlan plan;
  plan.AddTornWrite("store", 0);
  FaultInjector inj(plan);
  // A 16-byte aligned write never straddles a sector: the only tear outcome
  // is "nothing landed" — the basis of the HVD publish atomicity argument.
  auto torn = inj.OnByteWrite("store", 0, 512, 16);
  ASSERT_TRUE(torn.has_value());
  EXPECT_EQ(*torn, 0u);
}

TEST(InjectorTest, HostPauseWindowAndOneShotCrash) {
  FaultPlan plan;
  plan.AddHostPause("host", 100, 200);
  plan.AddHostCrash("host", 500);
  FaultInjector inj(plan);
  EXPECT_FALSE(inj.PauseUntil("host", 50).has_value());
  ASSERT_TRUE(inj.PauseUntil("host", 150).has_value());
  EXPECT_EQ(*inj.PauseUntil("host", 150), 200u);
  EXPECT_FALSE(inj.PauseUntil("host", 200).has_value());
  EXPECT_FALSE(inj.TakeCrash("host", 499));
  EXPECT_TRUE(inj.TakeCrash("host", 500));
  EXPECT_FALSE(inj.TakeCrash("host", 501));  // consumed
  EXPECT_EQ(inj.stats().host_crashes, 1u);
}

// ---------------------------------------------------------------------------
// Faulty storage wrappers
// ---------------------------------------------------------------------------

TEST(FaultyStoreTest, BlockStoreSurfacesTransientErrors) {
  FaultPlan plan;
  plan.AddReadError("disk", 0);
  plan.AddWriteError("disk", 1);
  FaultInjector inj(plan);
  FaultyBlockStore store(std::make_shared<storage::MemBlockStore>(16), &inj, "disk");

  std::vector<uint8_t> buf(storage::kSectorSize, 0xAA);
  EXPECT_EQ(store.ReadSectors(0, 1, buf.data()).code(), StatusCode::kUnavailable);
  EXPECT_TRUE(store.ReadSectors(0, 1, buf.data()).ok());  // transient: op 1 fine
  // The successful read pulled zeros from the fresh medium; refill the
  // pattern before writing it so the final verification is meaningful.
  std::fill(buf.begin(), buf.end(), 0xAA);
  EXPECT_TRUE(store.WriteSectors(0, 1, buf.data()).ok());
  EXPECT_EQ(store.WriteSectors(0, 1, buf.data()).code(), StatusCode::kUnavailable);
  // The failed write left the medium untouched and later ops see the store.
  EXPECT_TRUE(store.ReadSectors(0, 1, buf.data()).ok());
  EXPECT_EQ(buf[0], 0xAA);
}

TEST(FaultyStoreTest, ByteStoreTornWriteKillsDevice) {
  FaultPlan plan;
  plan.seed = 7;
  plan.AddTornWrite("img", 1);
  FaultInjector inj(plan);
  auto inner = std::make_unique<storage::MemByteStore>();
  storage::MemByteStore* raw = inner.get();
  FaultyByteStore store(std::move(inner), &inj, "img");

  std::vector<uint8_t> a(1024, 0x11), b(1024, 0x22);
  ASSERT_TRUE(store.WriteAt(0, a.data(), a.size()).ok());  // op 0: clean
  Status torn = store.WriteAt(0, b.data(), b.size());      // op 1: tears
  EXPECT_EQ(torn.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(store.dead());
  // Everything after the power loss fails.
  EXPECT_FALSE(store.WriteAt(0, a.data(), 4).ok());
  EXPECT_FALSE(store.Sync().ok());
  uint8_t byte;
  EXPECT_FALSE(store.ReadAt(0, &byte, 1).ok());
  // The medium holds a sector-aligned prefix of b over a: each sector is
  // entirely old or entirely new.
  const std::vector<uint8_t>& data = raw->data();
  ASSERT_EQ(data.size(), 1024u);
  for (size_t sector = 0; sector < 2; ++sector) {
    uint8_t first = data[sector * 512];
    EXPECT_TRUE(first == 0x11 || first == 0x22);
    for (size_t i = 0; i < 512; ++i) {
      EXPECT_EQ(data[sector * 512 + i], first) << "mixed sector " << sector;
    }
  }
}

// ---------------------------------------------------------------------------
// Switch-level frame faults
// ---------------------------------------------------------------------------

class RecordingSink : public net::FrameSink {
 public:
  void OnFrame(const SerialPhase& ph, const net::Frame& frame) override {
    (void)ph;
    frames.push_back(frame);
  }
  std::vector<net::Frame> frames;
};

net::Frame MakeFrame(net::MacAddr src, net::MacAddr dst, size_t payload = 64) {
  net::Frame f;
  f.src = src;
  f.dst = dst;
  f.payload.Assign(payload, 0xCD);
  return f;
}

TEST(SwitchFaultTest, InjectedDropIsCounted) {
  SimClock clock;
  net::VirtualSwitch sw(&clock);
  RecordingSink a;
  ASSERT_TRUE(sw.Attach(TestPhase(), 1, &a).ok());
  FaultPlan plan;
  plan.AddTransferLoss("sw", 1.0);  // kFrameDrop fires for frames too
  FaultInjector inj(plan);
  sw.SetFault(&inj, "sw");

  sw.Send(TestPhase(), MakeFrame(2, 1));
  clock.RunAll(TestPhase());
  EXPECT_TRUE(a.frames.empty());
  EXPECT_EQ(sw.stats().frames_injected_dropped, 1u);
  EXPECT_EQ(sw.stats().frames_delivered, 0u);
}

TEST(SwitchFaultTest, InjectedDuplicateDeliversCopies) {
  SimClock clock;
  net::VirtualSwitch sw(&clock);
  RecordingSink a;
  ASSERT_TRUE(sw.Attach(TestPhase(), 1, &a).ok());
  FaultPlan plan;
  FaultEvent dup;
  dup.site = "sw";
  dup.kind = FaultKind::kFrameDuplicate;
  dup.first_op = 0;
  dup.last_op = 0;  // only the first frame
  plan.Add(dup);
  FaultInjector inj(plan);
  sw.SetFault(&inj, "sw");

  sw.Send(TestPhase(), MakeFrame(2, 1));
  sw.Send(TestPhase(), MakeFrame(2, 1));
  clock.RunAll(TestPhase());
  EXPECT_EQ(a.frames.size(), 3u);  // 2 copies of the first + 1 of the second
  EXPECT_EQ(sw.stats().frames_injected_duplicated, 1u);
}

TEST(SwitchFaultTest, LatencySpikeDelaysDelivery) {
  SimClock clock;
  net::VirtualSwitch sw(&clock);
  RecordingSink a;
  ASSERT_TRUE(sw.Attach(TestPhase(), 1, &a).ok());

  // Baseline delivery time without faults.
  sw.Send(TestPhase(), MakeFrame(2, 1));
  clock.RunAll(TestPhase());
  SimTime baseline = clock.now();
  ASSERT_EQ(a.frames.size(), 1u);

  FaultPlan plan;
  plan.AddLatencySpike("sw", 5 * kSimTicksPerMs, 1.0);
  FaultInjector inj(plan);
  sw.SetFault(&inj, "sw");
  sw.Send(TestPhase(), MakeFrame(2, 1));
  clock.RunUntil(TestPhase(), baseline + baseline);  // twice the fault-free time: not there
  EXPECT_EQ(a.frames.size(), 1u);
  clock.RunAll(TestPhase());
  EXPECT_EQ(a.frames.size(), 2u);
  EXPECT_GE(clock.now(), 5 * kSimTicksPerMs);
  EXPECT_EQ(sw.stats().frames_injected_delayed, 1u);
}

TEST(SwitchFaultTest, PartitionBlocksBothDirectionsDuringWindow) {
  SimClock clock;
  net::VirtualSwitch sw(&clock);
  RecordingSink a, b, c;
  ASSERT_TRUE(sw.Attach(TestPhase(), 1, &a).ok());
  ASSERT_TRUE(sw.Attach(TestPhase(), 2, &b).ok());
  ASSERT_TRUE(sw.Attach(TestPhase(), 3, &c).ok());
  FaultPlan plan;
  plan.AddPartition("sw", {1}, {2}, 0, kSimTicksPerMs);
  FaultInjector inj(plan);
  sw.SetFault(&inj, "sw");

  sw.Send(TestPhase(), MakeFrame(1, 2));  // blocked
  sw.Send(TestPhase(), MakeFrame(2, 1));  // blocked
  sw.Send(TestPhase(), MakeFrame(1, 3));  // unaffected side
  clock.RunAll(TestPhase());
  EXPECT_TRUE(a.frames.empty());
  EXPECT_TRUE(b.frames.empty());
  EXPECT_EQ(c.frames.size(), 1u);
  EXPECT_EQ(sw.stats().frames_injected_dropped, 2u);

  // After the window the pair talks again.
  clock.RunUntil(TestPhase(), 2 * kSimTicksPerMs);
  sw.Send(TestPhase(), MakeFrame(1, 2));
  clock.RunAll(TestPhase());
  EXPECT_EQ(b.frames.size(), 1u);
}

// ---------------------------------------------------------------------------
// Block devices surface injected I/O errors to a running guest
// ---------------------------------------------------------------------------

core::Vm* Boot(core::Host& host, core::VmConfig config, const std::string& source) {
  auto image = guest::Build(source);
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  auto vm = host.CreateVm(std::move(config));
  EXPECT_TRUE(vm.ok()) << vm.status().ToString();
  EXPECT_TRUE((*vm)->LoadImage(*image).ok());
  return *vm;
}

TEST(DeviceFaultTest, VirtioBlkReportsIoErrStatusToGuest) {
  FaultPlan plan;
  plan.AddWriteError("vm:disk", 1);  // the second request fails
  FaultInjector inj(plan);

  core::Host host;
  core::VmConfig cfg{.name = "vblk-err"};
  cfg.disk_model = core::IoModel::kParavirt;
  cfg.disk = std::make_shared<FaultyBlockStore>(
      std::make_shared<storage::MemBlockStore>(256), &inj, "vm:disk",
      &host.clock());
  guest::BlkIoParams p;
  p.iterations = 2;
  p.sectors = 1;
  p.batch = 1;
  p.write = true;
  core::Vm* vm = Boot(host, cfg, guest::VirtioBlkProgram(p));
  ASSERT_TRUE(host.RunUntilVmStops(vm, kSimTicksPerSec));

  // The guest survived the error (completed both kicks and shut down), and
  // the device reported it: one errored request, and the status byte of the
  // final request (batch slot 0 at the ring's status buffer) reads IOERR.
  EXPECT_NE(vm->state(), core::VmState::kCrashed) << vm->crash_reason().ToString();
  EXPECT_EQ(vm->virtio_blk()->blk_stats().errors, 1u);
  EXPECT_EQ(vm->virtio_blk()->blk_stats().requests, 2u);
  auto status = vm->memory().ReadU8(0x21800);  // VirtioBlkProgram status buffer
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(*status, virtio::kBlkStatusIoErr);
  EXPECT_EQ(inj.stats().write_errors, 1u);
}

TEST(DeviceFaultTest, EmulatedBlkSignalsErrorAndGuestContinues) {
  FaultPlan plan;
  plan.AddReadError("vm:disk", 0);  // the first read command fails
  FaultInjector inj(plan);

  core::Host host;
  core::VmConfig cfg{.name = "eblk-err"};
  cfg.disk_model = core::IoModel::kEmulated;
  cfg.disk = std::make_shared<FaultyBlockStore>(
      std::make_shared<storage::MemBlockStore>(256), &inj, "vm:disk",
      &host.clock());
  guest::BlkIoParams p;
  p.iterations = 3;
  p.sectors = 1;
  p.write = false;
  core::Vm* vm = Boot(host, cfg, guest::EmulatedBlkProgram(p));
  ASSERT_TRUE(host.RunUntilVmStops(vm, kSimTicksPerSec));

  // The completion interrupt fired despite the error (the guest's wfi did
  // not hang), the device counted the command, and the VM ran to shutdown.
  EXPECT_NE(vm->state(), core::VmState::kCrashed) << vm->crash_reason().ToString();
  EXPECT_EQ(vm->emulated_blk()->stats().reads, 3u);
  EXPECT_EQ(inj.stats().read_errors, 1u);
}

}  // namespace
}  // namespace hyperion::fault
