// CPU engine tests: instruction semantics, traps, privilege, paging,
// interrupts, virtualization exits. Most suites are parameterized over
// {shadow, nested} x {interpreter, DBT} x {hardware-assist, trap&emulate}
// so every engine/virtualizer combination proves the same architecture.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/util/cost_model.h"
#include "src/util/crc32.h"
#include "tests/test_phase.h"
#include "src/verify/audit.h"
#include "tests/guest_harness.h"

namespace hyperion {
namespace {

using cpu::EngineKind;
using cpu::ExitReason;
using cpu::VirtMode;
using mmu::PagingMode;
using testing::AllMachineParams;
using testing::MachineParam;
using testing::MachineParamName;
using testing::TestMachine;

// Boot stub: builds an identity map (one 4 MiB user-accessible superpage) plus
// an MMIO superpage, loads PTBR, and turns paging on. Appended tests run with
// translation active.
constexpr char kPagingBoot[] = R"(
.org 0x1000
.equ PT_ROOT, 0x80000
_start:
    li t0, PT_ROOT
    li t1, 0x7F              ; identity 4MiB superpage V|R|W|X|U|A|D
    sw t1, 0(t0)
    li t1, 0xF0000067        ; MMIO window superpage V|R|W|A|D
    li t2, PT_ROOT + 960*4
    sw t1, 0(t2)
    li t1, 0x80              ; root PT page number
    csrw ptbr, t1
    csrr t1, status
    ori t1, t1, 0x10         ; STATUS.PG
    csrw status, t1
)";

class MachineTest : public ::testing::TestWithParam<MachineParam> {
 protected:
  TestMachine MakeMachine(uint32_t ram = 1u << 20) {
    const MachineParam& p = GetParam();
    return TestMachine(ram, p.paging, p.engine, p.virt_mode);
  }
};

INSTANTIATE_TEST_SUITE_P(AllModes, MachineTest, ::testing::ValuesIn(AllMachineParams()),
                         MachineParamName);

// ---------------------------------------------------------------------------
// Basic computation
// ---------------------------------------------------------------------------

TEST_P(MachineTest, ArithmeticLoop) {
  TestMachine m = MakeMachine();
  // 10! = 3628800 computed by repeated multiplication.
  m.Load(R"(
_start:
    li a0, 1
    li t0, 1
    li t1, 10
loop:
    mul a0, a0, t0
    addi t0, t0, 1
    ble t0, t1, loop
    halt
  )");
  m.RunToHalt();
  EXPECT_EQ(m.Reg(isa::kA0), 3628800u);
}

TEST_P(MachineTest, LoadStoreWidths) {
  TestMachine m = MakeMachine();
  m.Load(R"(
_start:
    li t0, 0x9000
    li t1, 0x80FF80FF
    sw t1, 0(t0)
    lb a0, 0(t0)       ; 0xFF sign-extended -> 0xFFFFFFFF
    lbu a1, 0(t0)      ; 0xFF zero-extended
    lh a2, 0(t0)       ; 0x80FF sign-extended
    lhu a3, 2(t0)      ; 0x80FF zero-extended
    sb a1, 4(t0)
    sh a3, 8(t0)
    halt
  )");
  m.RunToHalt();
  EXPECT_EQ(m.Reg(isa::kA0), 0xFFFFFFFFu);
  EXPECT_EQ(m.Reg(isa::kA1), 0xFFu);
  EXPECT_EQ(m.Reg(isa::kA2), 0xFFFF80FFu);
  EXPECT_EQ(m.Reg(isa::kA3), 0x80FFu);
  EXPECT_EQ(m.Word(0x9004) & 0xFF, 0xFFu);
  EXPECT_EQ(m.Word(0x9008) & 0xFFFF, 0x80FFu);
}

TEST_P(MachineTest, DivisionEdgeCases) {
  TestMachine m = MakeMachine();
  m.Load(R"(
_start:
    li t0, 7
    li t1, 0
    div a0, t0, t1      ; /0 -> -1
    remu a1, t0, t1     ; %0 -> dividend
    li t0, 0x80000000   ; INT_MIN
    li t1, -1
    div a2, t0, t1      ; overflow -> INT_MIN
    rem a3, t0, t1      ; overflow -> 0
    halt
  )");
  m.RunToHalt();
  EXPECT_EQ(m.Reg(isa::kA0), 0xFFFFFFFFu);
  EXPECT_EQ(m.Reg(isa::kA1), 7u);
  EXPECT_EQ(m.Reg(isa::kA2), 0x80000000u);
  EXPECT_EQ(m.Reg(isa::kA3), 0u);
}

TEST_P(MachineTest, RecursiveCallsViaStack) {
  TestMachine m = MakeMachine();
  // fib(12) = 144 with a classic recursive implementation.
  m.Load(R"(
_start:
    li sp, 0x40000
    li a0, 12
    call fib
    halt
fib:
    li t0, 2
    blt a0, t0, base
    addi sp, sp, -12
    sw ra, 0(sp)
    sw a0, 4(sp)
    addi a0, a0, -1
    call fib
    sw a0, 8(sp)
    lw a0, 4(sp)
    addi a0, a0, -2
    call fib
    lw t1, 8(sp)
    add a0, a0, t1
    lw ra, 0(sp)
    addi sp, sp, 12
base:
    ret
  )");
  m.RunToHalt();
  EXPECT_EQ(m.Reg(isa::kA0), 144u);
}

TEST_P(MachineTest, ZeroRegisterIsImmutable) {
  TestMachine m = MakeMachine();
  m.Load(R"(
_start:
    li t0, 99
    add zero, t0, t0
    mv a0, zero
    halt
  )");
  m.RunToHalt();
  EXPECT_EQ(m.Reg(isa::kZero), 0u);
  EXPECT_EQ(m.Reg(isa::kA0), 0u);
}

// ---------------------------------------------------------------------------
// Traps and privilege
// ---------------------------------------------------------------------------

TEST_P(MachineTest, EcallTrapAndSret) {
  TestMachine m = MakeMachine();
  m.Load(R"(
_start:
    la t0, handler
    csrw tvec, t0
    li a0, 0
    ecall                 ; supervisor ecall
    li a1, 77             ; resumed here after sret
    halt
handler:
    csrr a2, cause        ; 9 = ecall from supervisor
    csrr t1, epc
    addi t1, t1, 4
    csrw epc, t1
    li a0, 1
    sret
  )");
  m.RunToHalt();
  EXPECT_EQ(m.Reg(isa::kA0), 1u);
  EXPECT_EQ(m.Reg(isa::kA1), 77u);
  EXPECT_EQ(m.Reg(isa::kA2),
            static_cast<uint32_t>(isa::TrapCause::kEcallFromSupervisor));
  EXPECT_GE(m.ctx().stats.guest_traps, 1u);
}

TEST_P(MachineTest, UserModeEcall) {
  TestMachine m = MakeMachine();
  m.Load(R"(
_start:
    la t0, handler
    csrw tvec, t0
    la t0, user_code
    csrw epc, t0
    csrr t1, status       ; clear PPRV so sret drops to user
    li t2, 8
    not t2, t2
    and t1, t1, t2
    csrw status, t1
    sret
user_code:
    li a3, 5
    ecall
spin:
    j spin
handler:
    csrr a2, cause        ; 8 = ecall from user
    halt
  )");
  m.RunToHalt();
  EXPECT_EQ(m.Reg(isa::kA2), static_cast<uint32_t>(isa::TrapCause::kEcallFromUser));
  EXPECT_EQ(m.Reg(isa::kA3), 5u);  // user code actually ran
}

TEST_P(MachineTest, PrivilegedInstructionInUserModeTraps) {
  TestMachine m = MakeMachine();
  m.Load(R"(
_start:
    la t0, handler
    csrw tvec, t0
    la t0, user_code
    csrw epc, t0
    csrr t1, status
    li t2, 8
    not t2, t2
    and t1, t1, t2
    csrw status, t1
    sret
user_code:
    halt                  ; privileged -> trap
spin:
    j spin
handler:
    csrr a2, cause
    halt
  )");
  m.RunToHalt();
  EXPECT_EQ(m.Reg(isa::kA2), static_cast<uint32_t>(isa::TrapCause::kPrivilegeViolation));
}

TEST_P(MachineTest, IllegalInstructionTraps) {
  TestMachine m = MakeMachine();
  m.Load(R"(
_start:
    la t0, handler
    csrw tvec, t0
    .word 0xFC000000      ; opcode 63: illegal
spin:
    j spin
handler:
    csrr a2, cause
    halt
  )");
  m.RunToHalt();
  EXPECT_EQ(m.Reg(isa::kA2), static_cast<uint32_t>(isa::TrapCause::kIllegalInstruction));
}

TEST_P(MachineTest, MisalignedLoadTraps) {
  TestMachine m = MakeMachine();
  m.Load(R"(
_start:
    la t0, handler
    csrw tvec, t0
    li t1, 0x9002
    lw a0, 0(t1)
spin:
    j spin
handler:
    csrr a2, cause
    csrr a3, tval
    halt
  )");
  m.RunToHalt();
  EXPECT_EQ(m.Reg(isa::kA2), static_cast<uint32_t>(isa::TrapCause::kLoadMisaligned));
  EXPECT_EQ(m.Reg(isa::kA3), 0x9002u);
}

TEST_P(MachineTest, TrapWithoutHandlerIsFatal) {
  TestMachine m = MakeMachine();
  m.Load(R"(
_start:
    .word 0xFC000000
  )");
  auto r = m.Run();
  EXPECT_EQ(r.reason, ExitReason::kError);
  EXPECT_FALSE(r.error.ok());
}

TEST_P(MachineTest, EpcAndStatusStacking) {
  TestMachine m = MakeMachine();
  m.Load(R"(
_start:
    la t0, handler
    csrw tvec, t0
    csrr t1, status
    ori t1, t1, 1         ; IE on
    csrw status, t1
    ecall
resume:
    csrr a1, status       ; IE must be restored by sret
    halt
handler:
    csrr a0, status       ; IE must be off inside the handler
    csrr t1, epc
    addi t1, t1, 4
    csrw epc, t1
    sret
  )");
  m.RunToHalt();
  EXPECT_EQ(m.Reg(isa::kA0) & isa::StatusBits::kIe, 0u);
  EXPECT_EQ(m.Reg(isa::kA1) & isa::StatusBits::kIe, isa::StatusBits::kIe);
}

// ---------------------------------------------------------------------------
// Paging
// ---------------------------------------------------------------------------

TEST_P(MachineTest, PagingIdentityMapRuns) {
  TestMachine m = MakeMachine(8u << 20);
  m.Load(std::string(kPagingBoot) + R"(
    li a0, 0
    li t0, 1
    li t1, 100
sum:
    add a0, a0, t0
    addi t0, t0, 1
    ble t0, t1, sum
    halt
  )");
  m.RunToHalt();
  EXPECT_EQ(m.Reg(isa::kA0), 5050u);
  EXPECT_GT(m.virt().stats().walks, 0u);
}

TEST_P(MachineTest, PagingRemapTakesEffect) {
  TestMachine m = MakeMachine(8u << 20);
  m.Load(std::string(kPagingBoot) + R"(
    ; L1[1] -> L2 table at 0x82000; L2[0] -> pa page 0x10
    li t0, PT_ROOT + 4
    li t1, 0x82001
    sw t1, 0(t0)
    li t0, 0x82000
    li t1, 0x1006F
    sw t1, 0(t0)
    sfence
    li t2, 0x400000
    li t3, 0xAAAA
    sw t3, 0(t2)
    ; remap the same va to pa page 0x11
    li t1, 0x1106F
    sw t1, 0(t0)
    sfence
    li t3, 0xBBBB
    sw t3, 0(t2)
    halt
  )");
  m.RunToHalt();
  EXPECT_EQ(m.Word(0x10000), 0xAAAAu);
  EXPECT_EQ(m.Word(0x11000), 0xBBBBu);
}

TEST_P(MachineTest, PageFaultOnUnmappedAddress) {
  TestMachine m = MakeMachine(8u << 20);
  m.Load(std::string(kPagingBoot) + R"(
    la t0, handler
    csrw tvec, t0
    li t1, 0x700000       ; no L1 entry for this region
    lw a0, 0(t1)
spin:
    j spin
handler:
    csrr a2, cause
    csrr a3, tval
    halt
  )");
  m.RunToHalt();
  EXPECT_EQ(m.Reg(isa::kA2), static_cast<uint32_t>(isa::TrapCause::kLoadPageFault));
  EXPECT_EQ(m.Reg(isa::kA3), 0x700000u);
}

TEST_P(MachineTest, UserCannotTouchKernelOnlyPage) {
  TestMachine m = MakeMachine(8u << 20);
  // Map va 0x400000 -> pa 0x10000 without the U bit, then drop to user and
  // attempt a load: must fault with kLoadPageFault.
  m.Load(std::string(kPagingBoot) + R"(
    li t0, PT_ROOT + 4
    li t1, 0x82001
    sw t1, 0(t0)
    li t0, 0x82000
    li t1, 0x1006F        ; V|R|W|X|A|D but no U
    sw t1, 0(t0)
    sfence
    la t0, handler
    csrw tvec, t0
    la t0, user_code
    csrw epc, t0
    csrr t1, status
    li t2, 8
    not t2, t2
    and t1, t1, t2
    csrw status, t1
    sret
user_code:
    li t1, 0x400000
    lw a0, 0(t1)
spin:
    j spin
handler:
    csrr a2, cause
    halt
  )");
  m.RunToHalt();
  EXPECT_EQ(m.Reg(isa::kA2), static_cast<uint32_t>(isa::TrapCause::kLoadPageFault));
}

TEST_P(MachineTest, DirtyAndAccessedBitsSet) {
  TestMachine m = MakeMachine(8u << 20);
  m.Load(std::string(kPagingBoot) + R"(
    li t0, PT_ROOT + 4
    li t1, 0x82001
    sw t1, 0(t0)
    li t0, 0x82000
    li t1, 0x1000F        ; V|R|W|X, A/D clear
    sw t1, 0(t0)
    sfence
    li t2, 0x400000
    lw a0, 0(t2)          ; sets A
    sw a0, 0(t2)          ; sets D
    halt
  )");
  m.RunToHalt();
  uint32_t pte = m.Word(0x82000);
  EXPECT_TRUE(pte & isa::Pte::kAccessed);
  EXPECT_TRUE(pte & isa::Pte::kDirty);
}

// ---------------------------------------------------------------------------
// Interrupts, WFI, timer
// ---------------------------------------------------------------------------

TEST_P(MachineTest, TimerInterruptFires) {
  TestMachine m = MakeMachine();
  m.Load(R"(
_start:
    la t0, handler
    csrw tvec, t0
    li t1, 5000
    csrw timecmp, t1
    csrr t1, status
    ori t1, t1, 1
    csrw status, t1
spin:
    j spin
handler:
    csrr a1, cause
    halt
  )");
  m.RunToHalt();
  EXPECT_EQ(m.Reg(isa::kA1), static_cast<uint32_t>(isa::TrapCause::kTimerInterrupt));
  EXPECT_GE(m.ctx().stats.interrupts_delivered, 1u);
}

TEST_P(MachineTest, WfiParksAndWakes) {
  TestMachine m = MakeMachine();
  m.Load(R"(
_start:
    li t1, 100000
    csrw timecmp, t1      ; due far in the future
    wfi
    li a0, 42             ; IE off: pending wakes us without vectoring
    halt
  )");
  auto r = m.Run();
  EXPECT_EQ(r.reason, ExitReason::kWfi);
  EXPECT_TRUE(m.ctx().state.waiting);

  // Model the host idling until the timer is due.
  m.ctx().slice_start = 200000;
  m.RunToHalt();
  EXPECT_EQ(m.Reg(isa::kA0), 42u);
}

TEST_P(MachineTest, ExternalInterruptDelivery) {
  TestMachine m = MakeMachine();
  m.Load(R"(
_start:
    la t0, handler
    csrw tvec, t0
    csrr t1, status
    ori t1, t1, 1
    csrw status, t1
spin:
    j spin
handler:
    csrr a1, cause
    csrr a2, ipend
    halt
  )");
  m.ctx().state.RaisePending(isa::Interrupt::kExternal);
  m.RunToHalt();
  EXPECT_EQ(m.Reg(isa::kA1), static_cast<uint32_t>(isa::TrapCause::kExternalInterrupt));
  EXPECT_NE(m.Reg(isa::kA2), 0u);
}

// ---------------------------------------------------------------------------
// Virtualization exits
// ---------------------------------------------------------------------------

TEST_P(MachineTest, HypercallExitsWithAdvancedPc) {
  TestMachine m = MakeMachine();
  m.Load(R"(
_start:
    li a0, 3              ; hypercall number
    li a1, 1234
    hcall
    mv a3, a0             ; VMM writes the result into a0
    halt
  )");
  auto r = m.Run();
  ASSERT_EQ(r.reason, ExitReason::kHypercall);
  EXPECT_EQ(m.Reg(isa::kA0), 3u);
  EXPECT_EQ(m.Reg(isa::kA1), 1234u);
  // Emulate the VMM: return a value and resume.
  m.ctx().state.WriteReg(isa::kA0, 999);
  m.RunToHalt();
  EXPECT_EQ(m.Reg(isa::kA3), 999u);
  EXPECT_EQ(m.ctx().stats.hypercalls, 1u);
}

struct RecordingMmio : cpu::MmioHandler {
  struct Op {
    uint32_t gpa;
    uint32_t size;
    bool write;
    uint32_t value;
  };
  std::vector<Op> ops;
  Result<uint32_t> MmioRead(uint32_t gpa, uint32_t size) override {
    ops.push_back({gpa, size, false, 0});
    return 0xCAFE0000u | size;
  }
  Status MmioWrite(const Phase& ph, uint32_t gpa, uint32_t size, uint32_t value) override {
    (void)ph;
    ops.push_back({gpa, size, true, value});
    return OkStatus();
  }
};

TEST_P(MachineTest, MmioAccessDispatchesToHandler) {
  TestMachine m = MakeMachine();
  RecordingMmio mmio;
  m.ctx().mmio = &mmio;
  m.Load(R"(
_start:
    li t0, 0xF0000000
    li t1, 0x1234
    sw t1, 8(t0)
    lw a0, 12(t0)
    halt
  )");
  m.RunToHalt();
  ASSERT_EQ(mmio.ops.size(), 2u);
  EXPECT_TRUE(mmio.ops[0].write);
  EXPECT_EQ(mmio.ops[0].gpa, 0xF0000008u);
  EXPECT_EQ(mmio.ops[0].value, 0x1234u);
  EXPECT_FALSE(mmio.ops[1].write);
  EXPECT_EQ(m.Reg(isa::kA0), 0xCAFE0004u);
  EXPECT_EQ(m.ctx().stats.mmio_exits, 2u);
}

TEST_P(MachineTest, MmioUnderPaging) {
  TestMachine m = MakeMachine(8u << 20);
  RecordingMmio mmio;
  m.ctx().mmio = &mmio;
  m.Load(std::string(kPagingBoot) + R"(
    li t0, 0xF0000000
    li t1, 0x77
    sw t1, 0(t0)
    halt
  )");
  m.RunToHalt();
  ASSERT_EQ(mmio.ops.size(), 1u);
  EXPECT_EQ(mmio.ops[0].gpa, 0xF0000000u);
}

TEST_P(MachineTest, MmioWithoutHandlerFaultsGuest) {
  TestMachine m = MakeMachine();
  m.Load(R"(
_start:
    la t0, handler
    csrw tvec, t0
    li t1, 0xF0000000
    lw a0, 0(t1)
spin:
    j spin
handler:
    csrr a2, cause
    halt
  )");
  m.RunToHalt();
  EXPECT_EQ(m.Reg(isa::kA2), static_cast<uint32_t>(isa::TrapCause::kLoadPageFault));
}

TEST_P(MachineTest, HaltedVcpuStaysHalted) {
  TestMachine m = MakeMachine();
  m.Load("_start:\n halt\n");
  m.RunToHalt();
  auto r = m.Run();
  EXPECT_EQ(r.reason, ExitReason::kHalt);
  EXPECT_EQ(r.instructions, 0u);
}

TEST_P(MachineTest, CowBreakOnSharedPageStore) {
  TestMachine m = MakeMachine();
  // Pre-populate the page, then mark it COW-shared as KSM would.
  ASSERT_TRUE(m.memory().WriteU32(0x30000, 0x5555).ok());
  m.memory().SetShared(0x30, true);
  m.virt().InvalidateGpn(0x30);

  m.Load(R"(
_start:
    li t0, 0x30000
    lw a0, 0(t0)          ; reads through the shared mapping
    li t1, 0x6666
    sw t1, 4(t0)          ; must break sharing first
    lw a1, 4(t0)
    halt
  )");
  m.RunToHalt();
  EXPECT_EQ(m.Reg(isa::kA0), 0x5555u);
  EXPECT_EQ(m.Reg(isa::kA1), 0x6666u);
  EXPECT_EQ(m.ctx().stats.cow_breaks, 1u);
  EXPECT_FALSE(m.memory().IsShared(0x30));
  EXPECT_EQ(m.Word(0x30000), 0x5555u);  // original data carried to the copy
}

TEST_P(MachineTest, MissingPageExitsAndResumes) {
  TestMachine m = MakeMachine();
  m.Load(R"(
_start:
    li t0, 0x40000
    lw a0, 0(t0)
    halt
  )");
  ASSERT_TRUE(m.memory().ReleasePage(TestPhase(), 0x40).ok());
  m.virt().InvalidateGpn(0x40);

  auto r = m.Run();
  ASSERT_EQ(r.reason, ExitReason::kMissingPage);
  EXPECT_EQ(r.missing_gpn, 0x40u);

  // Emulate post-copy: the page arrives with content, then the vCPU resumes
  // and re-executes the faulting load.
  ASSERT_TRUE(m.memory().PopulatePage(0x40).ok());
  ASSERT_TRUE(m.memory().WriteU32(0x40000, 0xD00D).ok());
  m.virt().InvalidateGpn(0x40);
  m.RunToHalt();
  EXPECT_EQ(m.Reg(isa::kA0), 0xD00Du);
}

TEST_P(MachineTest, BudgetExhaustionPreemptsAndResumes) {
  TestMachine m = MakeMachine();
  m.Load(R"(
_start:
    li a0, 0
    li t1, 200000
loop:
    addi a0, a0, 1
    blt a0, t1, loop
    halt
  )");
  int slices = 0;
  cpu::RunResult r;
  do {
    r = m.Run(10000);  // tiny timeslices
    ++slices;
    ASSERT_LT(slices, 1000);
  } while (r.reason == ExitReason::kBudget);
  EXPECT_EQ(r.reason, ExitReason::kHalt);
  EXPECT_GT(slices, 10);  // preemption actually happened
  EXPECT_EQ(m.Reg(isa::kA0), 200000u);
}

// ---------------------------------------------------------------------------
// Mode-specific behaviors
// ---------------------------------------------------------------------------

std::string PtChurnProgram() {
  // Builds an L2 mapping and rewrites it in a loop: heavy PT churn.
  return std::string(kPagingBoot) + R"(
    li t0, PT_ROOT + 4
    li t1, 0x82001
    sw t1, 0(t0)
    li s0, 0x82000        ; L2 base
    li s1, 50             ; iterations
    li s2, 0x400000       ; test va
churn:
    li t1, 0x1006F
    sw t1, 0(s0)          ; map va -> pa 0x10000
    sfence
    sw s1, 0(s2)          ; touch through the fresh mapping
    li t1, 0x1106F
    sw t1, 0(s0)          ; remap va -> pa 0x11000
    sfence
    sw s1, 0(s2)
    addi s1, s1, -1
    bnez s1, churn
    halt
  )";
}

TEST(ShadowPagingTest, PtWritesTrap) {
  TestMachine m(8u << 20, PagingMode::kShadow, EngineKind::kInterpreter,
                VirtMode::kHardwareAssist);
  m.Load(PtChurnProgram());
  m.RunToHalt(100'000'000);
  EXPECT_GT(m.ctx().stats.pt_write_exits, 50u);
  EXPECT_GT(m.virt().stats().pt_write_traps, 50u);
}

TEST(NestedPagingTest, PtWritesDoNotTrap) {
  TestMachine m(8u << 20, PagingMode::kNested, EngineKind::kInterpreter,
                VirtMode::kHardwareAssist);
  m.Load(PtChurnProgram());
  m.RunToHalt(100'000'000);
  EXPECT_EQ(m.ctx().stats.pt_write_exits, 0u);
}

TEST(PagingCompareTest, ShadowCheaperOnStableNestedCheaperOnChurn) {
  // The headline F1 crossover, verified at unit scale.
  auto run_cycles = [](PagingMode mode, const std::string& program) {
    TestMachine m(8u << 20, mode, EngineKind::kInterpreter, VirtMode::kHardwareAssist);
    m.Load(program);
    m.RunToHalt(1'000'000'000);
    return m.ctx().stats.cycles;
  };

  // Stable workload: touch the same pages repeatedly after one setup.
  std::string stable = std::string(kPagingBoot) + R"(
    li s1, 2000
    li s2, 0x9000
loop:
    lw t1, 0(s2)
    sw t1, 4(s2)
    addi s1, s1, -1
    bnez s1, loop
    halt
  )";
  uint64_t shadow_stable = run_cycles(PagingMode::kShadow, stable);
  uint64_t nested_stable = run_cycles(PagingMode::kNested, stable);

  uint64_t shadow_churn = run_cycles(PagingMode::kShadow, PtChurnProgram());
  uint64_t nested_churn = run_cycles(PagingMode::kNested, PtChurnProgram());

  // On churn, nested must win decisively.
  EXPECT_LT(nested_churn, shadow_churn);
  // Relative penalty of churn must be far worse under shadow.
  double shadow_ratio = static_cast<double>(shadow_churn) / shadow_stable;
  double nested_ratio = static_cast<double>(nested_churn) / nested_stable;
  EXPECT_GT(shadow_ratio, nested_ratio);
}

TEST(TrapAndEmulateTest, CostsMoreThanHardwareAssist) {
  auto run = [](VirtMode mode) {
    TestMachine m(1u << 20, PagingMode::kNested, EngineKind::kInterpreter, mode);
    m.Load(R"(
_start:
    li s1, 200
loop:
    csrr t1, scratch
    addi t1, t1, 1
    csrw scratch, t1
    addi s1, s1, -1
    bnez s1, loop
    halt
    )");
    m.RunToHalt(1'000'000'000);
    return m.ctx();
  };
  auto hw = run(VirtMode::kHardwareAssist);
  auto te = run(VirtMode::kTrapAndEmulate);
  EXPECT_EQ(hw.state.scratch, te.state.scratch);
  EXPECT_GT(te.stats.priv_emulations, 400u);
  EXPECT_EQ(hw.stats.priv_emulations, 0u);
  EXPECT_GT(te.stats.cycles, 2 * hw.stats.cycles);
}

TEST(DbtTest, SelfModifyingCodeInvalidates) {
  TestMachine m(1u << 20, PagingMode::kNested, EngineKind::kDbt, VirtMode::kHardwareAssist);
  // Call `bump` twice; between the calls, patch its addi immediate from 1 to
  // 2 by rewriting the instruction word. A stale block would add 1 again.
  m.Load(R"(
_start:
    li sp, 0x40000
    li a0, 0
    call bump             ; a0 += 1
    la t0, patch_site
    lw t1, 0(t0)
    la t2, bump
    sw t1, 0(t2)          ; overwrite "addi a0, a0, 1" with "addi a0, a0, 2"
    call bump             ; a0 += 2 if invalidation worked
    halt
bump:
    addi a0, a0, 1
    ret
patch_site:
    addi a0, a0, 2
  )");
  m.RunToHalt();
  EXPECT_EQ(m.Reg(isa::kA0), 3u);
  EXPECT_GT(m.ctx().stats.blocks_translated, 0u);
}

TEST(DbtTest, HotLoopReusesBlocks) {
  TestMachine m(1u << 20, PagingMode::kNested, EngineKind::kDbt, VirtMode::kHardwareAssist);
  m.Load(R"(
_start:
    li a0, 0
    li t1, 10000
loop:
    addi a0, a0, 1
    blt a0, t1, loop
    halt
  )");
  m.RunToHalt();
  EXPECT_EQ(m.Reg(isa::kA0), 10000u);
  // The loop body must be translated once; steady-state iterations run as
  // superblock passes once the loop head crosses the heat threshold, so the
  // combined execution count covers ~10000 iterations.
  EXPECT_LT(m.ctx().stats.blocks_translated, 20u);
  EXPECT_GT(m.ctx().stats.block_executions + m.ctx().stats.trace_executions, 9000u);
  EXPECT_GE(m.ctx().stats.traces_formed, 1u);
  EXPECT_GT(m.ctx().stats.chain_hits, 0u);
}

TEST(DbtTest, SurgicalEvictionProtectsCorrectness) {
  // 34-odd blocks cycled through an 8-block cache: capacity pressure must be
  // absorbed by surgical (per-block) eviction, never a full flush, and the
  // program still computes the right answer.
  std::string source = R"(
_start:
    li s0, 5
    li a0, 0
again:
    j b0
)";
  constexpr int kBlocks = 32;
  for (int i = 0; i < kBlocks; ++i) {
    source += "b" + std::to_string(i) + ":\n    addi a0, a0, 1\n";
    if (i + 1 < kBlocks) {
      source += "    j b" + std::to_string(i + 1) + "\n";
    }
  }
  source += R"(
    addi s0, s0, -1
    bnez s0, again
    halt
)";
  TestMachine m(1u << 20, PagingMode::kNested, EngineKind::kDbt, VirtMode::kHardwareAssist,
                /*dbt_max_blocks=*/8);
  m.Load(source);
  m.RunToHalt();
  EXPECT_EQ(m.Reg(isa::kA0), 5u * kBlocks);
  EXPECT_GT(m.ctx().stats.evictions_surgical, 0u);
  EXPECT_EQ(m.ctx().stats.evictions_full, 0u);
}

// ---------------------------------------------------------------------------
// Tier-2 optimizing JIT (src/cpu/ir/)
// ---------------------------------------------------------------------------

cpu::DbtOptions LowTier2Threshold() {
  cpu::DbtOptions o;
  o.tier2_threshold = 2;  // promote almost immediately, for unit tests
  return o;
}

TestMachine MakeTier2Machine() {
  return TestMachine(1u << 20, PagingMode::kNested, EngineKind::kDbt,
                     VirtMode::kHardwareAssist, /*dbt_max_blocks=*/0,
                     LowTier2Threshold());
}

// A data-dependent compute loop: enough ALU work per iteration that tier-2's
// batched retirement matters, and a final value that any skipped or
// double-retired instruction would change.
constexpr char kComputeLoop[] = R"(
_start:
    li a0, 0
    li t1, 20000
    li s0, 3
    li s1, 7
loop:
    addi a0, a0, 1
    mul t2, a0, s0
    xor t3, t2, s1
    add s1, s1, t3
    srli t0, s1, 3
    xor s1, s1, t0
    blt a0, t1, loop
    halt
)";

TEST(Tier2Test, PromotesHotLoopAndMatchesInterpreter) {
  TestMachine interp(1u << 20, PagingMode::kNested, EngineKind::kInterpreter);
  interp.Load(kComputeLoop);
  interp.RunToHalt(100'000'000);

  TestMachine m = MakeTier2Machine();
  m.Load(kComputeLoop);
  m.RunToHalt(100'000'000);

  // Bit-identical architectural outcome, including the retirement count.
  for (uint8_t r = 0; r < 16; ++r) {
    EXPECT_EQ(m.Reg(r), interp.Reg(r)) << "register x" << int(r);
  }
  EXPECT_EQ(m.ctx().state.instret, interp.ctx().state.instret);

  const cpu::VcpuStats& st = m.ctx().stats;
  EXPECT_GE(st.tier2_promotions, 1u);
  EXPECT_GT(st.tier2_executions, 15000u);  // steady state runs in tier-2
  EXPECT_GT(st.guards_elided, 0u);         // per-chunk pc guards removed
  EXPECT_EQ(st.deopts, 0u);                // nothing in this loop bails out
}

TEST(Tier2Test, ConstantFoldingAndDeadCodeFireAndStayCorrect) {
  // `li a1, 11` is fully overwritten by `li a1, 22` (dead), and both `li`
  // expansions give the optimizer lui+addi pairs to fold into single
  // constants. s1 accumulates t5 so the surviving write stays observable.
  constexpr char kSrc[] = R"(
_start:
    li a0, 0
    li t1, 5000
    li s1, 0
loop:
    li a1, 11
    li a1, 22
    add s1, s1, a1
    addi a0, a0, 1
    blt a0, t1, loop
    halt
)";
  TestMachine m = MakeTier2Machine();
  m.Load(kSrc);
  m.RunToHalt(100'000'000);
  EXPECT_EQ(m.Reg(isa::kA0), 5000u);
  EXPECT_EQ(m.Reg(isa::kS1), 5000u * 22u);
  EXPECT_GE(m.ctx().stats.tier2_promotions, 1u);
  EXPECT_GT(m.ctx().stats.tier2_ops_folded, 0u);
  EXPECT_GT(m.ctx().stats.tier2_ops_dead, 0u);
}

TEST(Tier2Test, DeadScratchWriteElided) {
  // Two back-to-back scratch writes per iteration: the first is dead (no
  // read between them, no seam — scratch CSR ops sit mid-block) and must be
  // demoted to a bare privilege check. The final csrr observes the second.
  constexpr char kSrc[] = R"(
_start:
    li a0, 0
    li t1, 5000
loop:
    csrw scratch, a0
    csrw scratch, t1
    addi a0, a0, 1
    blt a0, t1, loop
    csrr s2, scratch
    halt
)";
  TestMachine interp(1u << 20, PagingMode::kNested, EngineKind::kInterpreter);
  interp.Load(kSrc);
  interp.RunToHalt(100'000'000);

  TestMachine m = MakeTier2Machine();
  m.Load(kSrc);
  m.RunToHalt(100'000'000);
  EXPECT_EQ(m.Reg(isa::kS2), interp.Reg(isa::kS2));
  EXPECT_EQ(m.Reg(isa::kS2), 5000u);
  EXPECT_EQ(m.ctx().state.scratch, interp.ctx().state.scratch);
  EXPECT_EQ(m.ctx().state.instret, interp.ctx().state.instret);
  EXPECT_GE(m.ctx().stats.tier2_promotions, 1u);
  EXPECT_GT(m.ctx().stats.csr_writes_elided, 0u);
}

TEST(Tier2Test, FallbackTrapDeoptsPrecisely) {
  // The load address gains +1 exactly once (iteration 1500 of 3000), which
  // misaligns it: the in-unit fallback load traps, the unit deopts with a
  // precise pc, and the handler observes the same state the interpreter
  // produces.
  constexpr char kSrc[] = R"(
_start:
    la t0, handler
    csrw tvec, t0
    li a1, 0x40000
    li a0, 0
    li t1, 3000
    li a2, 1500
loop:
    lw t2, 0(a1)
    addi a0, a0, 1
    xor t3, a0, a2
    sltui t3, t3, 1       ; t3 = (a0 == 1500) ? 1 : 0
    add a1, a1, t3
    blt a0, t1, loop
    halt
handler:
    csrr s2, epc
    csrr s3, cause
    halt
)";
  TestMachine interp(1u << 20, PagingMode::kNested, EngineKind::kInterpreter);
  interp.Load(kSrc);
  interp.RunToHalt(100'000'000);

  TestMachine m = MakeTier2Machine();
  m.Load(kSrc);
  m.RunToHalt(100'000'000);
  EXPECT_EQ(m.Reg(isa::kA0), interp.Reg(isa::kA0));
  EXPECT_EQ(m.Reg(isa::kS2), interp.Reg(isa::kS2));  // epc: the faulting lw
  EXPECT_EQ(m.Reg(isa::kS3), interp.Reg(isa::kS3));  // cause: misaligned load
  EXPECT_EQ(m.ctx().state.instret, interp.ctx().state.instret);
  EXPECT_GE(m.ctx().stats.tier2_promotions, 1u);
  EXPECT_GE(m.ctx().stats.deopts, 1u);
}

TEST(Tier2Test, SelfModifyingCodeInvalidatesTier2Unit) {
  // The loop runs 500 iterations at +1, then patches its own increment
  // instruction to +2 and runs 500 more — while the loop body is a hot
  // tier-2 unit. The store must kill the unit at the next seam.
  constexpr char kSrc[] = R"(
_start:
    li a0, 0
    li t1, 1000
    li a2, 500
loop:
    addi a0, a0, 1
inc_site:
    addi s1, s1, 1
    beq a0, a2, patch
back:
    blt a0, t1, loop
    halt
patch:
    la t0, patch_word
    lw t2, 0(t0)
    la t3, inc_site
    sw t2, 0(t3)          ; addi s1, s1, 1  ->  addi s1, s1, 2
    j back
patch_word:
    addi s1, s1, 2
)";
  TestMachine m = MakeTier2Machine();
  m.Load(kSrc);
  m.RunToHalt(100'000'000);
  EXPECT_EQ(m.Reg(isa::kA0), 1000u);
  EXPECT_EQ(m.Reg(isa::kS1), 500u * 1 + 500u * 2);
  EXPECT_GE(m.ctx().stats.tier2_promotions, 1u);
  EXPECT_GT(m.ctx().stats.tier2_executions, 0u);
}

TEST(Tier2Test, SfenceRevalidatesTier2UnitWithoutRetranslation) {
  // An sfence between hot-loop episodes bumps the mapping epoch; the tier-2
  // unit must revalidate via its guard probes and keep running rather than
  // being dropped and recompiled from scratch.
  constexpr char kSrc[] = R"(
_start:
    li s0, 40
    li s1, 0
outer:
    li a0, 0
    li t1, 400
inner:
    addi a0, a0, 1
    add s1, s1, a0
    blt a0, t1, inner
    sfence
    addi s0, s0, -1
    bnez s0, outer
    halt
)";
  TestMachine m = MakeTier2Machine();
  m.Load(kSrc);
  m.RunToHalt(100'000'000);
  EXPECT_EQ(m.Reg(isa::kS1), 40u * (400u * 401u / 2));
  const cpu::VcpuStats& st = m.ctx().stats;
  EXPECT_GE(st.tier2_promotions, 1u);
  // One compile total: every sfence afterwards revalidates instead of
  // killing the unit (a kill would force a fresh promotion per episode).
  EXPECT_LE(st.tier2_promotions, 2u);
  EXPECT_GT(st.tier2_executions, 35u * 1u);
}

TEST(Tier2Test, PersistRoundTripInstallsWithZeroColdTranslates) {
  TestMachine warm = MakeTier2Machine();
  warm.Load(kComputeLoop);
  warm.RunToHalt(100'000'000);
  ASSERT_GE(warm.ctx().stats.tier2_promotions, 1u);
  std::vector<uint8_t> blob = warm.engine().SerializeTranslations();
  ASSERT_FALSE(blob.empty());

  // Fresh machine, same image: install the persisted cache, then run. Every
  // block must come from the blob — zero cold translates — and the run must
  // be bit-identical to the warm machine's.
  TestMachine fresh = MakeTier2Machine();
  fresh.Load(kComputeLoop);
  fresh.engine().InstallTranslations(fresh.ctx(), blob);
  EXPECT_GT(fresh.ctx().stats.persist_hits, 0u);
  EXPECT_EQ(fresh.ctx().stats.persist_misses, 0u);
  fresh.RunToHalt(100'000'000);
  EXPECT_EQ(fresh.ctx().stats.blocks_translated, 0u);
  for (uint8_t r = 0; r < 16; ++r) {
    EXPECT_EQ(fresh.Reg(r), warm.Reg(r)) << "register x" << int(r);
  }
  EXPECT_EQ(fresh.ctx().state.instret, warm.ctx().state.instret);
  // The pre-warmed cache starts hot: tier-2 units run without re-promotion.
  EXPECT_GT(fresh.ctx().stats.tier2_executions, 0u);
  EXPECT_EQ(fresh.ctx().stats.tier2_promotions, 0u);
}

TEST(Tier2Test, CorruptOrMismatchedBlobRejectedCleanly) {
  TestMachine warm = MakeTier2Machine();
  warm.Load(kComputeLoop);
  warm.RunToHalt(100'000'000);
  std::vector<uint8_t> blob = warm.engine().SerializeTranslations();
  ASSERT_GT(blob.size(), 32u);

  {
    // Bit flip in the middle: the trailer CRC must reject the whole blob.
    std::vector<uint8_t> bad = blob;
    bad[bad.size() / 2] ^= 0x40;
    TestMachine m = MakeTier2Machine();
    m.Load(kComputeLoop);
    m.engine().InstallTranslations(m.ctx(), bad);
    EXPECT_EQ(m.ctx().stats.persist_hits, 0u);
    EXPECT_GT(m.ctx().stats.persist_misses, 0u);
    m.RunToHalt(100'000'000);  // falls back to cold translation
    EXPECT_GT(m.ctx().stats.blocks_translated, 0u);
    EXPECT_EQ(m.Reg(isa::kS1), warm.Reg(isa::kS1));
  }
  {
    // Version bump with a re-sealed CRC: rejected as a format mismatch.
    std::vector<uint8_t> bad = blob;
    bad[4] ^= 0xFF;  // version word
    uint32_t crc = Crc32(bad.data(), bad.size() - 4);
    std::memcpy(bad.data() + bad.size() - 4, &crc, 4);
    TestMachine m = MakeTier2Machine();
    m.Load(kComputeLoop);
    m.engine().InstallTranslations(m.ctx(), bad);
    EXPECT_EQ(m.ctx().stats.persist_hits, 0u);
    EXPECT_GT(m.ctx().stats.persist_misses, 0u);
  }
  {
    // Truncation mid-stream.
    std::vector<uint8_t> bad(blob.begin(), blob.begin() + blob.size() / 2);
    TestMachine m = MakeTier2Machine();
    m.Load(kComputeLoop);
    m.engine().InstallTranslations(m.ctx(), bad);
    EXPECT_EQ(m.ctx().stats.persist_hits, 0u);
    EXPECT_GT(m.ctx().stats.persist_misses, 0u);
  }
}

TEST(Tier2Test, StaleBlobAgainstDifferentImageRevalidatesAway) {
  // Persist from one program, install into a machine running another: the
  // code-CRC check must reject every block (the translation would be stale),
  // and the run proceeds correctly via cold translation.
  TestMachine warm = MakeTier2Machine();
  warm.Load(kComputeLoop);
  warm.RunToHalt(100'000'000);
  std::vector<uint8_t> blob = warm.engine().SerializeTranslations();

  constexpr char kOther[] = R"(
_start:
    li a0, 0
    li t1, 100
loop:
    addi a0, a0, 3
    blt a0, t1, loop
    halt
)";
  TestMachine m = MakeTier2Machine();
  m.Load(kOther);
  m.engine().InstallTranslations(m.ctx(), blob);
  EXPECT_GT(m.ctx().stats.persist_misses, 0u);
  m.RunToHalt(100'000'000);
  EXPECT_EQ(m.Reg(isa::kA0), 102u);
  EXPECT_GT(m.ctx().stats.blocks_translated, 0u);
}

TEST(Tier2Test, Tier1OnlyOptionDisablesPromotion) {
  cpu::DbtOptions o;
  o.enable_tier2 = false;
  TestMachine m(1u << 20, PagingMode::kNested, EngineKind::kDbt,
                VirtMode::kHardwareAssist, /*dbt_max_blocks=*/0, o);
  m.Load(kComputeLoop);
  m.RunToHalt(100'000'000);
  EXPECT_EQ(m.ctx().stats.tier2_promotions, 0u);
  EXPECT_EQ(m.ctx().stats.tier2_executions, 0u);
  EXPECT_GT(m.ctx().stats.trace_executions, 0u);  // tier-1 still traces
}

TEST_P(MachineTest, MemoryFastPathCountersAdvance) {
  // A store/load loop over one page: after the first touches install the
  // fast-translation entry, nearly every access should hit it.
  TestMachine m = MakeMachine();
  m.Load(R"(
_start:
    li t0, 0x9000
    li s0, 1000
loop:
    sw s0, 0(t0)
    lw a0, 0(t0)
    addi s0, s0, -1
    bnez s0, loop
    halt
  )");
  m.RunToHalt();
  EXPECT_EQ(m.Reg(isa::kA0), 1u);
  EXPECT_GT(m.ctx().stats.mem_fastpath_hits, 1000u);
  EXPECT_GT(m.ctx().stats.mem_fastpath_hits, m.ctx().stats.mem_fastpath_misses);
}

TEST_P(MachineTest, FastPathStateAuditsCleanUnderPaging) {
  // With paging on and the per-vCPU fast-translation array hot, the MMU
  // coherence auditor must still pass: the fast array is derived state that
  // is invisible to (and must never outlive) the TLB it shadows.
  TestMachine m = MakeMachine(8u << 20);
  m.Load(std::string(kPagingBoot) + R"(
    li t0, 0x9000
    li s0, 500
loop:
    sw s0, 0(t0)
    lw a0, 0(t0)
    addi s0, s0, -1
    bnez s0, loop
    halt
  )");
  m.RunToHalt();
  EXPECT_GT(m.ctx().stats.mem_fastpath_hits, 0u);
  verify::AuditReport report;
  verify::AuditMmuCoherence(m.virt(), /*paging=*/true, /*ptbr=*/0x80, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_P(MachineTest, FastPathDoesNotLeakExecFromLoadWarmedEntry) {
  // Map va 0x400000 -> pa 0x10000 readable+writable but NOT executable, warm
  // the fast-translation array with loads, then jump there: the fetch must
  // still take kInstrPageFault. A load-warmed entry proves R, not X — serving
  // it to a fetch would be an NX bypass.
  TestMachine m = MakeMachine(8u << 20);
  m.Load(std::string(kPagingBoot) + R"(
    li t0, PT_ROOT + 4
    li t1, 0x82001        ; L1 -> PT page 0x82
    sw t1, 0(t0)
    li t0, 0x82000
    li t1, 0x10067        ; leaf: V|R|W|A|D, no X
    sw t1, 0(t0)
    sfence
    la t0, handler
    csrw tvec, t0
    li t1, 0x400000
    lw a0, 0(t1)          ; fills the fast entry (R proven)
    lw a0, 0(t1)          ; second load hits the fast path
    jalr ra, t1, 0        ; fetch from the NX page must fault
    halt                  ; not reached
handler:
    csrr a2, cause
    csrr a3, tval
    halt
  )");
  m.RunToHalt();
  EXPECT_EQ(m.Reg(isa::kA2), static_cast<uint32_t>(isa::TrapCause::kInstrPageFault));
  EXPECT_EQ(m.Reg(isa::kA3), 0x400000u);
}

TEST_P(MachineTest, FastPathDoesNotLeakReadFromFetchWarmedEntry) {
  // The converse: map va 0x400000 -> pa 0x10000 execute-only, call through it
  // so fetches warm the fast-translation array, then load from it: the load
  // must still take kLoadPageFault (a fetch-warmed entry proves X, not R).
  TestMachine m = MakeMachine(8u << 20);
  m.Load(std::string(kPagingBoot) + R"(
    li t0, PT_ROOT + 4
    li t1, 0x82001        ; L1 -> PT page 0x82
    sw t1, 0(t0)
    li t0, 0x82000
    li t1, 0x10069        ; leaf: V|X|A|D, no R/W
    sw t1, 0(t0)
    sfence
    la t0, handler
    csrw tvec, t0
    li t1, 0x400000
    jalr ra, t1, 0        ; execute from the X-only page (fills the entry)
    jalr ra, t1, 0        ; second call fetches via the fast path
    lw a0, 0(t1)          ; load from the X-only page must fault
    halt                  ; not reached
handler:
    csrr a2, cause
    csrr a3, tval
    halt
.org 0x10000
xonly:
    ret
  )");
  m.RunToHalt();
  EXPECT_EQ(m.Reg(isa::kA2), static_cast<uint32_t>(isa::TrapCause::kLoadPageFault));
  EXPECT_EQ(m.Reg(isa::kA3), 0x400000u);
}

TEST(DbtTest, MatchesInterpreterState) {
  // Differential test: the same program must leave identical architectural
  // state under both engines.
  const char* program = R"(
_start:
    li sp, 0x40000
    li a0, 17
    li a1, 31
    mul a2, a0, a1
    div a3, a2, a0
    li t0, 0x9000
    sw a2, 0(t0)
    lw t1, 0(t0)
    add a2, a2, t1
    la t2, sub
    jalr ra, t2, 0
    halt
sub:
    slt t3, a0, a1
    sll s0, a0, t3
    ret
  )";
  TestMachine mi(1u << 20, PagingMode::kNested, EngineKind::kInterpreter,
                 VirtMode::kHardwareAssist);
  TestMachine md(1u << 20, PagingMode::kNested, EngineKind::kDbt, VirtMode::kHardwareAssist);
  mi.Load(program);
  md.Load(program);
  mi.RunToHalt();
  md.RunToHalt();
  EXPECT_EQ(mi.ctx().state.regs, md.ctx().state.regs);
  EXPECT_EQ(mi.ctx().state.pc, md.ctx().state.pc);
  EXPECT_EQ(mi.ctx().state.instret, md.ctx().state.instret);
}

TEST(TlbTest, HotLoopHitsTlb) {
  TestMachine m(8u << 20, PagingMode::kNested, EngineKind::kInterpreter,
                VirtMode::kHardwareAssist);
  m.Load(std::string(kPagingBoot) + R"(
    li s1, 5000
    li s2, 0x9000
loop:
    lw t1, 0(s2)
    addi s1, s1, -1
    bnez s1, loop
    halt
  )");
  m.RunToHalt(1'000'000'000);
  EXPECT_GT(m.virt().tlb().stats().HitRate(), 0.99);
}

TEST(CpuStateTest, SerializeRoundTrip) {
  cpu::CpuState s;
  s.regs[5] = 0xDEAD;
  s.pc = 0x1234;
  s.status = 0x15;
  s.cause = 7;
  s.epc = 0x999;
  s.ptbr = 0x80;
  s.timecmp = 123456789ull;
  s.cycle = 42;
  s.instret = 41;
  s.ipend = 3;
  s.waiting = true;

  ByteWriter w;
  s.Serialize(w);
  ByteReader r(w.buffer());
  auto restored = cpu::CpuState::Deserialize(r);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, s);
  EXPECT_TRUE(r.AtEnd());
}

}  // namespace
}  // namespace hyperion
