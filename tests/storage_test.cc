// Storage tests: byte stores, the HVD copy-on-write image format, backing
// chains, overlays, and the on-disk (file) representation.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/fault/fault.h"
#include "src/fault/faulty_store.h"
#include "src/storage/block_store.h"
#include "src/storage/byte_store.h"
#include "src/storage/hvd.h"
#include "src/util/rng.h"

namespace hyperion::storage {
namespace {

std::vector<uint8_t> PatternSector(uint32_t tag) {
  std::vector<uint8_t> s(kSectorSize);
  for (size_t i = 0; i < s.size(); ++i) {
    s[i] = static_cast<uint8_t>(tag * 31 + i);
  }
  return s;
}

// ---------------------------------------------------------------------------
// Byte stores
// ---------------------------------------------------------------------------

TEST(MemByteStoreTest, GrowsOnWrite) {
  MemByteStore store;
  EXPECT_EQ(store.size(), 0u);
  uint32_t v = 0x12345678;
  ASSERT_TRUE(store.WriteAt(100, &v, 4).ok());
  EXPECT_EQ(store.size(), 104u);
  uint32_t back = 0;
  ASSERT_TRUE(store.ReadAt(100, &back, 4).ok());
  EXPECT_EQ(back, v);
  // The gap reads as zero.
  uint8_t b = 0xFF;
  ASSERT_TRUE(store.ReadAt(50, &b, 1).ok());
  EXPECT_EQ(b, 0u);
}

TEST(MemByteStoreTest, ReadPastEndFails) {
  MemByteStore store;
  uint8_t b;
  EXPECT_EQ(store.ReadAt(0, &b, 1).code(), StatusCode::kOutOfRange);
}

TEST(FileByteStoreTest, PersistsAcrossReopen) {
  std::string path = ::testing::TempDir() + "/hyperion_bytestore_test.bin";
  std::filesystem::remove(path);
  {
    auto store = FileByteStore::Open(path);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    uint64_t v = 0xDEADBEEFCAFEF00Dull;
    ASSERT_TRUE((*store)->WriteAt(4096, &v, 8).ok());
    ASSERT_TRUE((*store)->Sync().ok());
  }
  {
    auto store = FileByteStore::Open(path);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ((*store)->size(), 4104u);
    uint64_t v = 0;
    ASSERT_TRUE((*store)->ReadAt(4096, &v, 8).ok());
    EXPECT_EQ(v, 0xDEADBEEFCAFEF00Dull);
  }
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// MemBlockStore
// ---------------------------------------------------------------------------

TEST(MemBlockStoreTest, ReadWriteRoundTrip) {
  MemBlockStore store(16);
  auto data = PatternSector(1);
  ASSERT_TRUE(store.WriteSectors(3, 1, data.data()).ok());
  std::vector<uint8_t> back(kSectorSize);
  ASSERT_TRUE(store.ReadSectors(3, 1, back.data()).ok());
  EXPECT_EQ(back, data);
}

TEST(MemBlockStoreTest, RangeChecked) {
  MemBlockStore store(4);
  std::vector<uint8_t> buf(2 * kSectorSize);
  EXPECT_FALSE(store.ReadSectors(3, 2, buf.data()).ok());
  EXPECT_FALSE(store.WriteSectors(4, 1, buf.data()).ok());
  EXPECT_TRUE(store.ReadSectors(2, 2, buf.data()).ok());
}

// ---------------------------------------------------------------------------
// HVD images
// ---------------------------------------------------------------------------

TEST(HvdTest, CreateValidation) {
  EXPECT_FALSE(HvdImage::Create(std::make_unique<MemByteStore>(), 0).ok());
  EXPECT_FALSE(HvdImage::Create(std::make_unique<MemByteStore>(), 100).ok());
  EXPECT_FALSE(HvdImage::Create(std::make_unique<MemByteStore>(), 1 << 20, 8).ok());
  auto image = HvdImage::Create(std::make_unique<MemByteStore>(), 1 << 20);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ((*image)->virtual_size(), 1u << 20);
  EXPECT_EQ((*image)->num_sectors(), (1u << 20) / kSectorSize);
  EXPECT_EQ((*image)->allocated_clusters(), 0u);
}

TEST(HvdTest, UnwrittenReadsZero) {
  auto image = HvdImage::Create(std::make_unique<MemByteStore>(), 1 << 20);
  ASSERT_TRUE(image.ok());
  std::vector<uint8_t> buf(kSectorSize, 0xFF);
  ASSERT_TRUE((*image)->ReadSectors(100, 1, buf.data()).ok());
  for (uint8_t b : buf) {
    EXPECT_EQ(b, 0u);
  }
}

TEST(HvdTest, WriteReadRoundTrip) {
  auto image = HvdImage::Create(std::make_unique<MemByteStore>(), 4 << 20);
  ASSERT_TRUE(image.ok());
  auto data = PatternSector(7);
  ASSERT_TRUE((*image)->WriteSectors(1000, 1, data.data()).ok());
  std::vector<uint8_t> back(kSectorSize);
  ASSERT_TRUE((*image)->ReadSectors(1000, 1, back.data()).ok());
  EXPECT_EQ(back, data);
  EXPECT_EQ((*image)->allocated_clusters(), 1u);
}

TEST(HvdTest, ThinProvisioning) {
  // A 64 MiB virtual disk with one written sector occupies ~3 clusters
  // (header + L1 pre-allocation + L2 + data), far below its virtual size.
  auto image = HvdImage::Create(std::make_unique<MemByteStore>(), 64u << 20);
  ASSERT_TRUE(image.ok());
  auto data = PatternSector(1);
  ASSERT_TRUE((*image)->WriteSectors(50000, 1, data.data()).ok());
  EXPECT_LT((*image)->store_size(), 1u << 20);
}

TEST(HvdTest, CrossClusterWrites) {
  auto image = HvdImage::Create(std::make_unique<MemByteStore>(), 4 << 20, 12);  // 4 KiB clusters
  ASSERT_TRUE(image.ok());
  // Write 16 sectors straddling cluster boundaries.
  std::vector<uint8_t> data(16 * kSectorSize);
  Xoshiro256 rng(5);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  ASSERT_TRUE((*image)->WriteSectors(5, 16, data.data()).ok());
  std::vector<uint8_t> back(data.size());
  ASSERT_TRUE((*image)->ReadSectors(5, 16, back.data()).ok());
  EXPECT_EQ(back, data);
}

TEST(HvdTest, OutOfRangeRejected) {
  auto image = HvdImage::Create(std::make_unique<MemByteStore>(), 1 << 20);
  ASSERT_TRUE(image.ok());
  std::vector<uint8_t> buf(kSectorSize);
  uint64_t last = (*image)->num_sectors();
  EXPECT_FALSE((*image)->ReadSectors(last, 1, buf.data()).ok());
  EXPECT_FALSE((*image)->WriteSectors(last - 1, 2, buf.data()).ok());
}

TEST(HvdTest, OverlayReadsThroughToBase) {
  auto base = HvdImage::Create(std::make_unique<MemByteStore>(), 1 << 20);
  ASSERT_TRUE(base.ok());
  auto data = PatternSector(9);
  ASSERT_TRUE((*base)->WriteSectors(10, 1, data.data()).ok());

  std::shared_ptr<BlockStore> base_shared = std::move(*base);
  auto overlay = CreateOverlay(base_shared, "base", std::make_unique<MemByteStore>());
  ASSERT_TRUE(overlay.ok());
  EXPECT_EQ((*overlay)->backing_name(), "base");

  std::vector<uint8_t> back(kSectorSize);
  ASSERT_TRUE((*overlay)->ReadSectors(10, 1, back.data()).ok());
  EXPECT_EQ(back, data);  // falls through
  EXPECT_EQ((*overlay)->allocated_clusters(), 0u);  // O(1) creation
}

TEST(HvdTest, OverlayCowPreservesBase) {
  auto base_img = HvdImage::Create(std::make_unique<MemByteStore>(), 1 << 20);
  ASSERT_TRUE(base_img.ok());
  auto original = PatternSector(1);
  ASSERT_TRUE((*base_img)->WriteSectors(10, 1, original.data()).ok());
  std::shared_ptr<BlockStore> base = std::move(*base_img);

  auto overlay = CreateOverlay(base, "base", std::make_unique<MemByteStore>());
  ASSERT_TRUE(overlay.ok());
  auto modified = PatternSector(2);
  ASSERT_TRUE((*overlay)->WriteSectors(10, 1, modified.data()).ok());

  std::vector<uint8_t> back(kSectorSize);
  ASSERT_TRUE((*overlay)->ReadSectors(10, 1, back.data()).ok());
  EXPECT_EQ(back, modified);
  ASSERT_TRUE(base->ReadSectors(10, 1, back.data()).ok());
  EXPECT_EQ(back, original);  // base untouched

  // COW fill: the sector next to the written one came from the base.
  auto neighbor = PatternSector(3);
  ASSERT_TRUE(base->WriteSectors(11, 1, neighbor.data()).ok());
  // Note: sector 11 is in the same cluster as 10, which was already COW'd
  // with the base contents at overlay-write time, so the overlay now shows
  // the OLD (zero) data for 11, not the late base write.
  ASSERT_TRUE((*overlay)->ReadSectors(11, 1, back.data()).ok());
  for (uint8_t b : back) {
    EXPECT_EQ(b, 0u);
  }
}

TEST(HvdTest, OverlayChain) {
  // base -> snap1 -> snap2, each layer overriding one sector.
  auto l0 = HvdImage::Create(std::make_unique<MemByteStore>(), 1 << 20);
  ASSERT_TRUE(l0.ok());
  auto s0 = PatternSector(10);
  auto s1 = PatternSector(11);
  auto s2 = PatternSector(12);
  ASSERT_TRUE((*l0)->WriteSectors(0, 1, s0.data()).ok());
  ASSERT_TRUE((*l0)->WriteSectors(200, 1, s1.data()).ok());
  std::shared_ptr<BlockStore> base = std::move(*l0);

  auto l1r = CreateOverlay(base, "l0", std::make_unique<MemByteStore>());
  ASSERT_TRUE(l1r.ok());
  std::shared_ptr<BlockStore> l1 = std::move(*l1r);
  auto s1b = PatternSector(21);
  ASSERT_TRUE(l1->WriteSectors(200, 1, s1b.data()).ok());

  auto l2r = CreateOverlay(l1, "l1", std::make_unique<MemByteStore>());
  ASSERT_TRUE(l2r.ok());
  auto s2b = PatternSector(32);
  ASSERT_TRUE((*l2r)->WriteSectors(400, 1, s2b.data()).ok());

  std::vector<uint8_t> back(kSectorSize);
  ASSERT_TRUE((*l2r)->ReadSectors(0, 1, back.data()).ok());
  EXPECT_EQ(back, s0);  // from l0 through two layers
  ASSERT_TRUE((*l2r)->ReadSectors(200, 1, back.data()).ok());
  EXPECT_EQ(back, s1b);  // overridden in l1
  ASSERT_TRUE((*l2r)->ReadSectors(400, 1, back.data()).ok());
  EXPECT_EQ(back, s2b);  // overridden in l2
  (void)s2;
}

TEST(HvdTest, OpenAfterCreateRestoresMetadata) {
  auto store = std::make_unique<MemByteStore>();
  MemByteStore* raw = store.get();
  auto image = HvdImage::Create(std::move(store), 2 << 20, 14, "backing-name");
  ASSERT_TRUE(image.ok());
  auto data = PatternSector(4);
  ASSERT_TRUE((*image)->WriteSectors(77, 1, data.data()).ok());

  // Clone the bytes and reopen.
  auto copy = std::make_unique<MemByteStore>();
  std::vector<uint8_t> bytes = raw->data();
  ASSERT_TRUE(copy->WriteAt(0, bytes.data(), bytes.size()).ok());
  auto reopened = HvdImage::Open(std::move(copy));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->virtual_size(), 2u << 20);
  EXPECT_EQ((*reopened)->cluster_size(), 1u << 14);
  EXPECT_EQ((*reopened)->backing_name(), "backing-name");
  EXPECT_EQ((*reopened)->allocated_clusters(), 1u);
  std::vector<uint8_t> back(kSectorSize);
  ASSERT_TRUE((*reopened)->ReadSectors(77, 1, back.data()).ok());
  EXPECT_EQ(back, data);
}

TEST(HvdTest, CorruptHeaderRejected) {
  auto store = std::make_unique<MemByteStore>();
  MemByteStore* raw = store.get();
  auto image = HvdImage::Create(std::move(store), 1 << 20);
  ASSERT_TRUE(image.ok());

  auto copy = std::make_unique<MemByteStore>();
  std::vector<uint8_t> bytes = raw->data();
  bytes[9] ^= 0xFF;  // flip a header byte
  ASSERT_TRUE(copy->WriteAt(0, bytes.data(), bytes.size()).ok());
  EXPECT_EQ(HvdImage::Open(std::move(copy)).status().code(), StatusCode::kDataLoss);
}

TEST(HvdTest, FileBackedImageWorks) {
  std::string path = ::testing::TempDir() + "/hyperion_hvd_test.hvd";
  std::filesystem::remove(path);
  {
    auto store = FileByteStore::Open(path);
    ASSERT_TRUE(store.ok());
    auto image = HvdImage::Create(std::move(*store), 8 << 20);
    ASSERT_TRUE(image.ok());
    auto data = PatternSector(42);
    ASSERT_TRUE((*image)->WriteSectors(1234, 1, data.data()).ok());
    ASSERT_TRUE((*image)->Flush().ok());
  }
  {
    auto store = FileByteStore::Open(path);
    ASSERT_TRUE(store.ok());
    auto image = HvdImage::Open(std::move(*store));
    ASSERT_TRUE(image.ok()) << image.status().ToString();
    std::vector<uint8_t> back(kSectorSize);
    ASSERT_TRUE((*image)->ReadSectors(1234, 1, back.data()).ok());
    EXPECT_EQ(back, PatternSector(42));
  }
  std::filesystem::remove(path);
}

// Property: an HVD image behaves identically to a flat store under random
// sector operations.
TEST(HvdTest, PropertyMatchesFlatStore) {
  constexpr uint64_t kSectors = 512;
  auto image = HvdImage::Create(std::make_unique<MemByteStore>(), kSectors * kSectorSize, 13);
  ASSERT_TRUE(image.ok());
  MemBlockStore flat(kSectors);
  Xoshiro256 rng(99);

  for (int op = 0; op < 300; ++op) {
    uint64_t lba = rng.NextBelow(kSectors);
    uint32_t count = static_cast<uint32_t>(rng.NextInRange(1, std::min<uint64_t>(8, kSectors - lba)));
    if (rng.NextBool(0.5)) {
      std::vector<uint8_t> data(count * kSectorSize);
      for (auto& b : data) {
        b = static_cast<uint8_t>(rng.Next());
      }
      ASSERT_TRUE((*image)->WriteSectors(lba, count, data.data()).ok());
      ASSERT_TRUE(flat.WriteSectors(lba, count, data.data()).ok());
    } else {
      std::vector<uint8_t> a(count * kSectorSize), b(count * kSectorSize);
      ASSERT_TRUE((*image)->ReadSectors(lba, count, a.data()).ok());
      ASSERT_TRUE(flat.ReadSectors(lba, count, b.data()).ok());
      ASSERT_EQ(a, b) << "divergence at op " << op;
    }
  }
}

// ---------------------------------------------------------------------------
// Crash consistency under torn writes
// ---------------------------------------------------------------------------

// Property: power loss during any byte-store write leaves an HVD image that
// reopens clean and shows the OLD or the NEW contents of the sector being
// overwritten — never garbage. The sweep tears every write op the sequence
// "write A to S; write B to S; write C elsewhere" performs, so the tear
// lands in cluster data, the L2 entry publish, and everything in between.
TEST(HvdCrashTest, TornWriteLeavesOldOrNewNeverGarbage) {
  constexpr uint64_t kSector = 10;
  auto sector_a = PatternSector(0xA);
  auto sector_b = PatternSector(0xB);
  auto sector_c = PatternSector(0xC);

  // The full sequence against an instrumented store with no fault events,
  // recording which byte-write ops belong to which phase. Returns a copy of
  // the raw medium bytes — the store itself dies with the image.
  auto run_sequence = [&](fault::FaultInjector& inj)
      -> std::pair<std::vector<uint8_t>, std::vector<uint64_t>> {
    auto inner = std::make_unique<MemByteStore>();
    MemByteStore* raw = inner.get();
    auto faulty = std::make_unique<fault::FaultyByteStore>(std::move(inner), &inj, "img");
    std::vector<uint64_t> marks;
    auto image = HvdImage::Create(std::move(faulty), 1 << 20, 13);  // 8 KiB clusters
    EXPECT_TRUE(image.ok());
    marks.push_back(inj.OpCount("img", fault::OpClass::kByteWrite));
    (void)(*image)->WriteSectors(kSector, 1, sector_a.data());
    marks.push_back(inj.OpCount("img", fault::OpClass::kByteWrite));
    (void)(*image)->WriteSectors(kSector, 1, sector_b.data());
    (void)(*image)->WriteSectors(kSector + 100, 1, sector_c.data());
    marks.push_back(inj.OpCount("img", fault::OpClass::kByteWrite));
    return {raw->data(), marks};
  };

  fault::FaultInjector dry(fault::FaultPlan{});
  auto [dry_bytes, marks] = run_sequence(dry);
  (void)dry_bytes;
  uint64_t after_a = marks[1];
  uint64_t total_ops = marks[2];
  ASSERT_GT(total_ops, after_a + 2);  // B and C cost at least 2 writes each

  bool saw_old = false, saw_new = false;
  for (uint64_t tear_op = after_a; tear_op < total_ops; ++tear_op) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {  // vary the tear cut point
      fault::FaultPlan plan;
      plan.seed = seed;
      plan.AddTornWrite("img", tear_op);
      fault::FaultInjector inj(plan);
      auto [bytes, run_marks] = run_sequence(inj);
      (void)run_marks;
      ASSERT_EQ(inj.stats().torn_writes, 1u) << "tear op " << tear_op;

      // Reopen what survived on the medium. Open re-verifies every cluster
      // CRC, so a half-written cluster or entry would be caught here.
      auto survivor = std::make_unique<MemByteStore>();
      ASSERT_TRUE(survivor->WriteAt(0, bytes.data(), bytes.size()).ok());
      auto reopened = HvdImage::Open(std::move(survivor));
      ASSERT_TRUE(reopened.ok())
          << "tear op " << tear_op << " seed " << seed << ": "
          << reopened.status().ToString();

      std::vector<uint8_t> back(kSectorSize);
      ASSERT_TRUE((*reopened)->ReadSectors(kSector, 1, back.data()).ok());
      if (back == sector_a) {
        saw_old = true;
      } else if (back == sector_b) {
        saw_new = true;
      } else {
        FAIL() << "garbage sector after tear op " << tear_op << " seed " << seed;
      }
    }
  }
  // The sweep must produce both outcomes: tears during B's redirect leave A
  // (the publish never lands), tears during C leave B fully published.
  EXPECT_TRUE(saw_old);
  EXPECT_TRUE(saw_new);
}

}  // namespace
}  // namespace hyperion::storage
