// Migration and snapshot robustness tests beyond the core happy paths:
// zero-page elision, migration under device I/O, state preservation, and
// corruption fuzzing of the snapshot decoder.

#include <gtest/gtest.h>

#include "src/core/host.h"
#include "tests/test_phase.h"
#include "src/guest/programs.h"
#include "src/migrate/migrate.h"
#include "src/snapshot/snapshot.h"
#include "src/util/crc32.h"
#include "src/util/rng.h"

namespace hyperion {
namespace {

using core::Host;
using core::HostConfig;
using core::IoModel;
using core::Vm;
using core::VmConfig;
using core::VmState;

Vm* Boot(Host& host, VmConfig config, const std::string& source) {
  auto image = guest::Build(source);
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  auto vm = host.CreateVm(std::move(config));
  EXPECT_TRUE(vm.ok()) << vm.status().ToString();
  EXPECT_TRUE((*vm)->LoadImage(*image).ok());
  return *vm;
}

TEST(MigrateZeroPageTest, ElisionShrinksWireBytes) {
  auto run = [](bool skip_zero) {
    Host src, dst;
    // A small working set in a mostly-zero 4 MiB VM.
    std::string prog = guest::DirtyRateProgram(16, 5000);
    Vm* vm = Boot(src, VmConfig{.name = "z"}, prog);
    src.RunFor(10 * kSimTicksPerMs);
    migrate::MigrateOptions options;
    options.skip_zero_pages = skip_zero;
    migrate::MigrationReport report;
    auto moved = migrate::PreCopyMigrate(src, vm, dst, options, &report);
    EXPECT_TRUE(moved.ok());
    EXPECT_EQ((*moved)->state(), VmState::kRunning);
    return report;
  };
  migrate::MigrationReport with = run(true);
  migrate::MigrationReport without = run(false);
  // ~1000 of 1024 pages are zero: the elided transfer is many times smaller.
  EXPECT_LT(with.bytes_sent * 5, without.bytes_sent);
  // Both moved the same page population.
  EXPECT_EQ(with.pages_sent, without.pages_sent);
  // And the smaller transfer finishes sooner.
  EXPECT_LT(with.total_time, without.total_time);
}

TEST(MigrateIoTest, PreCopyMigratesAVmDoingDiskIo) {
  Host src, dst;
  auto disk = std::make_shared<storage::MemBlockStore>(4096);  // shared storage
  VmConfig cfg{.name = "io-mig"};
  cfg.disk_model = IoModel::kParavirt;
  cfg.disk = disk;
  guest::BlkIoParams p;
  p.iterations = 1000000;  // effectively endless within the test window
  p.sectors = 2;
  p.batch = 2;
  p.write = true;
  std::string prog = guest::VirtioBlkProgram(p);
  Vm* vm = Boot(src, cfg, prog);
  src.RunFor(20 * kSimTicksPerMs);
  ASSERT_EQ(vm->state(), VmState::kRunning);
  uint64_t sectors_before = vm->virtio_blk()->blk_stats().sectors;
  ASSERT_GT(sectors_before, 0u);

  migrate::MigrationReport report;
  auto moved = migrate::PreCopyMigrate(src, vm, dst, migrate::MigrateOptions{}, &report);
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();

  // The destination VM keeps issuing I/O against the shared disk.
  dst.RunFor(50 * kSimTicksPerMs);
  EXPECT_NE((*moved)->state(), VmState::kCrashed)
      << (*moved)->crash_reason().ToString();
  EXPECT_GT((*moved)->virtio_blk()->blk_stats().sectors, 0u);
}

TEST(MigrateIoTest, PostCopyMigratesAVmDoingDiskIo) {
  Host src, dst;
  auto disk = std::make_shared<storage::MemBlockStore>(4096);
  VmConfig cfg{.name = "io-pc"};
  cfg.disk_model = IoModel::kParavirt;
  cfg.disk = disk;
  guest::BlkIoParams p;
  p.iterations = 1000000;
  p.sectors = 2;
  p.batch = 2;
  p.write = true;
  std::string prog = guest::VirtioBlkProgram(p);
  Vm* vm = Boot(src, cfg, prog);
  src.RunFor(20 * kSimTicksPerMs);

  migrate::MigrationReport report;
  auto moved = migrate::PostCopyMigrate(src, vm, dst, migrate::MigrateOptions{}, &report);
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  dst.RunFor(50 * kSimTicksPerMs);
  EXPECT_NE((*moved)->state(), VmState::kCrashed)
      << (*moved)->crash_reason().ToString();
  EXPECT_GT((*moved)->virtio_blk()->blk_stats().sectors, 0u);
}

TEST(MigrateStateTest, ConsoleAndLogsSurviveMigration) {
  Host src, dst;
  Vm* vm = Boot(src, VmConfig{.name = "st"}, R"(
.org 0x1000
_start:
    li a0, 1
    la a1, msg
    li a2, 6
    hcall
    li a0, 8
    li a1, 12345
    hcall
loop:
    j loop
msg:
    .ascii "moved\n"
)");
  src.RunFor(5 * kSimTicksPerMs);
  ASSERT_EQ(vm->console(), "moved\n");

  migrate::MigrationReport report;
  auto moved = migrate::PreCopyMigrate(src, vm, dst, migrate::MigrateOptions{}, &report);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ((*moved)->console(), "moved\n");
  ASSERT_EQ((*moved)->logged_values().size(), 1u);
  EXPECT_EQ((*moved)->logged_values()[0], 12345u);
}

TEST(MigrateStateTest, BalloonedPagesStayAbsentAcrossPreCopy) {
  Host src, dst;
  std::string prog = guest::BalloonDriverProgram(512, 512, 50000);
  Vm* vm = Boot(src, VmConfig{.name = "bal-mig"}, prog);
  vm->SetBalloonTarget(64);
  src.RunFor(100 * kSimTicksPerMs);
  ASSERT_EQ(vm->ballooned_pages(), 64u);

  migrate::MigrationReport report;
  auto moved = migrate::PreCopyMigrate(src, vm, dst, migrate::MigrateOptions{}, &report);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ((*moved)->ballooned_pages(), 64u);
  // Ballooned pages were not shipped.
  uint32_t present = 0;
  for (uint32_t gpn = 0; gpn < (*moved)->memory().num_pages(); ++gpn) {
    present += (*moved)->memory().IsPresent(gpn) ? 1 : 0;
  }
  EXPECT_EQ(present, (*moved)->memory().num_pages() - 64);
}

// ---------------------------------------------------------------------------
// SMP migration and snapshotting: a 4-vCPU guest is moved / checkpointed in
// the middle of its TLB-shootdown gauntlet. The restored machine must carry
// the whole IPI protocol state — doorbell levels, per-vCPU ipend bits,
// in-handler flags, ack words — or some vCPU ends up spinning on an ack that
// will never arrive and the guest never reaches its shutdown hypercall.
// ---------------------------------------------------------------------------

// Digest of guest RAM: presence map + contents of every present page.
uint32_t SmpRamDigest(Vm& vm) {
  mem::GuestMemory& mem = vm.memory();
  uint32_t crc = 0;
  for (uint32_t gpn = 0; gpn < mem.num_pages(); ++gpn) {
    uint8_t present = mem.IsPresent(gpn) ? 1 : 0;
    crc = Crc32(&present, 1, crc);
    if (present) {
      crc = Crc32(mem.PageData(gpn), isa::kPageSize, crc);
    }
  }
  return crc;
}

guest::SmpLockParams SmpGauntletParams() {
  guest::SmpLockParams p;
  p.num_vcpus = 4;
  p.lock_iters = 100;
  p.shootdown_rounds = 40;  // long phase C so the migration lands inside it
  return p;
}

VmConfig SmpVmConfig(const char* name) {
  VmConfig cfg;
  cfg.name = name;
  cfg.ram_bytes = 8u << 20;
  cfg.num_vcpus = 4;
  cfg.paging_mode = mmu::PagingMode::kNested;
  return cfg;
}

HostConfig SmpHostConfig() {
  HostConfig hc;
  hc.num_pcpus = 4;
  return hc;
}

TEST(MigrateSmpTest, PreCopyMovesAFourVcpuVmMidShootdown) {
  Host src(SmpHostConfig()), dst(SmpHostConfig());
  guest::SmpLockParams params = SmpGauntletParams();
  std::string prog = guest::SmpMcsLockProgram(params);
  Vm* vm = Boot(src, SmpVmConfig("smp-mig"), prog);
  src.RunFor(4 * kSimTicksPerMs);
  ASSERT_EQ(vm->state(), VmState::kRunning);

  migrate::MigrationReport report;
  auto moved = migrate::PreCopyMigrate(src, vm, dst, migrate::MigrateOptions{}, &report);
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  // Fidelity at the switchover point: the paused source and the not-yet-run
  // destination hold identical RAM.
  EXPECT_EQ(vm->state(), VmState::kPaused);
  EXPECT_EQ(SmpRamDigest(*vm), SmpRamDigest(**moved));

  // The destination finishes the gauntlet: every post-restore shootdown
  // round completes, so no vCPU is left spinning on a dead ack.
  ASSERT_TRUE(dst.RunUntilVmStops(*moved, 5 * kSimTicksPerSec));
  EXPECT_EQ((*moved)->state(), VmState::kShutdown)
      << (*moved)->crash_reason().ToString();
  auto image = guest::Build(prog);
  auto v = (*moved)->memory().ReadU32(*guest::ProgressAddress(*image));
  EXPECT_EQ(v.value_or(0), params.num_vcpus * params.lock_iters);

  // Shootdown events split across the two hosts but none is lost or
  // double-counted: the totals add up exactly, and both sides saw some.
  const uint64_t expected = params.shootdown_rounds * (params.num_vcpus - 1);
  cpu::VcpuStats src_total = vm->TotalStats();
  cpu::VcpuStats dst_total = (*moved)->TotalStats();
  EXPECT_EQ(src_total.shootdowns + dst_total.shootdowns, expected);
  EXPECT_EQ(src_total.ipis_received + dst_total.ipis_received, expected);
  EXPECT_EQ(src_total.ipis_sent + dst_total.ipis_sent, expected);
  EXPECT_GT(src_total.ipis_sent, 0u);
  EXPECT_GT(dst_total.shootdowns, 0u);
}

TEST(MigrateSmpTest, SnapshotClonesAFourVcpuVmMidShootdown) {
  Host host(SmpHostConfig());
  guest::SmpLockParams params = SmpGauntletParams();
  std::string prog = guest::SmpMcsLockProgram(params);
  auto image = guest::Build(prog);
  uint32_t progress_addr = *guest::ProgressAddress(*image);
  Vm* vm = Boot(host, SmpVmConfig("smp-snap"), prog);
  host.RunFor(10 * kSimTicksPerMs);
  ASSERT_EQ(vm->state(), VmState::kRunning);
  vm->Pause(TestPhase());

  // The checkpoint really is mid-protocol: some shootdown rounds remain.
  uint32_t rounds_at_save = vm->memory().ReadU32(progress_addr + 16).value_or(0);
  EXPECT_GT(rounds_at_save, 0u);
  EXPECT_LT(rounds_at_save, params.shootdown_rounds);

  auto bytes = snapshot::SaveVm(*vm);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  auto clone = snapshot::CloneVm(host, SmpVmConfig("smp-clone"), *bytes);
  ASSERT_TRUE(clone.ok()) << clone.status().ToString();

  // Original and clone resume from identical state and execution is
  // deterministic, so both finish the gauntlet with identical RAM.
  vm->Resume(TestPhase());
  ASSERT_TRUE(host.RunUntilVmStops(vm, 5 * kSimTicksPerSec));
  ASSERT_TRUE(host.RunUntilVmStops(*clone, 5 * kSimTicksPerSec));
  EXPECT_EQ(vm->state(), VmState::kShutdown) << vm->crash_reason().ToString();
  EXPECT_EQ((*clone)->state(), VmState::kShutdown)
      << (*clone)->crash_reason().ToString();
  const uint32_t want = params.num_vcpus * params.lock_iters;
  EXPECT_EQ(vm->memory().ReadU32(progress_addr).value_or(0), want);
  EXPECT_EQ((*clone)->memory().ReadU32(progress_addr).value_or(0), want);
  EXPECT_EQ(SmpRamDigest(*vm), SmpRamDigest(**clone));
}

// Property: random corruption of a valid snapshot must never crash the
// decoder; it either detects the damage (DataLoss via CRC) or, for the
// 4-byte CRC trailer itself being the corrupted region, still fails cleanly.
TEST(SnapshotFuzzTest, RandomCorruptionIsAlwaysRejectedCleanly) {
  Host host;
  Vm* vm = Boot(host, VmConfig{.name = "fz"}, guest::ComputeProgram(500));
  host.RunFor(2 * kSimTicksPerMs);
  vm->Pause(TestPhase());
  auto snap = snapshot::SaveVm(*vm);
  ASSERT_TRUE(snap.ok());

  Xoshiro256 rng(0xBADF00D);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> corrupt = *snap;
    int flips = 1 + static_cast<int>(rng.NextBelow(8));
    for (int f = 0; f < flips; ++f) {
      corrupt[rng.NextBelow(corrupt.size())] ^= static_cast<uint8_t>(1 + rng.NextBelow(255));
    }
    Vm* target = Boot(host, VmConfig{.name = "t" + std::to_string(trial)},
                      guest::ComputeProgram(1));
    target->Pause(TestPhase());
    Status st = snapshot::LoadVm(*target, corrupt);
    EXPECT_FALSE(st.ok()) << "corruption accepted at trial " << trial;
    ASSERT_TRUE(host.DestroyVm(target).ok());
  }
}

// Property: truncating a snapshot anywhere must also fail cleanly.
TEST(SnapshotFuzzTest, TruncationIsAlwaysRejected) {
  Host host;
  Vm* vm = Boot(host, VmConfig{.name = "tr"}, guest::ComputeProgram(100));
  vm->Pause(TestPhase());
  auto snap = snapshot::SaveVm(*vm);
  ASSERT_TRUE(snap.ok());

  Xoshiro256 rng(777);
  for (int trial = 0; trial < 50; ++trial) {
    size_t keep = rng.NextBelow(snap->size());
    std::vector<uint8_t> cut(snap->begin(), snap->begin() + static_cast<ptrdiff_t>(keep));
    Vm* target = Boot(host, VmConfig{.name = "u" + std::to_string(trial)},
                      guest::ComputeProgram(1));
    target->Pause(TestPhase());
    EXPECT_FALSE(snapshot::LoadVm(*target, cut).ok()) << "kept " << keep;
    ASSERT_TRUE(host.DestroyVm(target).ok());
  }
}

}  // namespace
}  // namespace hyperion
