// MUST NOT COMPILE: direct clock scheduling from inside an execute slice.
//
// SimClock::ScheduleAt demands a DirectPhase token. The only phase evidence
// code running on a worker lane holds is the slice's ExecutePhase, which is
// deliberately not convertible — slice code must stage via StageAt/StageAfter
// (or the dual-context ClockRef::ScheduleAt(const Phase&, ...)) so the event
// lands in the per-slice buffer and commits in dispatch order.

#include "src/util/phase.h"
#include "src/util/sim_clock.h"

namespace hyperion {

void Violation(const ExecutePhase& ep, SimClock& clock) {
  clock.ScheduleAt(ep, 100, [](const SerialPhase&) {});
}

}  // namespace hyperion
