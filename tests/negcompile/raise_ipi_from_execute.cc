// MUST NOT COMPILE: VMM-side IPI delivery from inside an execute slice.
//
// InterruptController::RaiseIpi demands a DirectPhase token: host-side code
// rings doorbells only from the serial regimes (setup, clock callbacks,
// snapshot restore, commit), where the wake it triggers may touch the
// scheduler immediately. A worker lane holds only its slice's ExecutePhase —
// ringing another VM's doorbell from there would race that PIC's pending
// word and bypass the staged wake path. Guest-initiated IPIs go through the
// MMIO Write() on the owning VM's lane, which stages downstream effects.

#include "src/devices/pic.h"
#include "src/util/phase.h"

namespace hyperion {

void Violation(const ExecutePhase& ep, devices::InterruptController& pic) {
  pic.RaiseIpi(ep, 0b0110);
}

}  // namespace hyperion
