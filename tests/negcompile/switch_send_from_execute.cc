// MUST NOT COMPILE: direct switch transmission from inside an execute slice.
//
// VirtualSwitch::Send demands a DirectPhase token; delivering (or even
// enqueueing) a frame directly from a worker lane would order cross-VM
// traffic by thread timing. Slice code goes through Transmit(const Phase&,
// ...), which routes to the per-slice TxStage.

#include <utility>

#include "src/net/network.h"
#include "src/util/phase.h"

namespace hyperion {

void Violation(const ExecutePhase& ep, net::VirtualSwitch& sw, net::Frame frame) {
  sw.Send(ep, std::move(frame));
}

}  // namespace hyperion
