// MUST NOT COMPILE: writing the shared log sink from inside an execute
// slice.
//
// internal::WriteLogText demands a DirectPhase token; bypassing the
// per-slice log buffer from a worker lane would interleave log lines by
// thread timing and break the bit-identical-across-worker-counts guarantee.
// Slice logging goes through HYP_LOG, which appends to the buffer installed
// by SetThreadLogSink and is flushed at commit.

#include <string>

#include "src/util/logging.h"
#include "src/util/phase.h"

namespace hyperion {

void Violation(const ExecutePhase& ep) {
  internal::WriteLogText(ep, std::string("smuggled past the stage"));
}

}  // namespace hyperion
