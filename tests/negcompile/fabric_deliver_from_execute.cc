// MUST NOT COMPILE: fabric-side frame delivery from inside an execute slice.
//
// VirtualSwitch::DeliverFromFabric is the cluster fabric's ingress into a
// member host's switch and demands a DirectPhase token: it runs only from
// clock callbacks between rounds (the relay event the fabric schedules).
// Calling it from a worker lane would deliver cross-host traffic ordered by
// thread timing instead of by the shared domain's event queue. Slice code
// can only stage frames at its own switch; the uplink crossing happens at
// the barrier.

#include <utility>

#include "src/net/network.h"
#include "src/util/phase.h"

namespace hyperion {

void Violation(const ExecutePhase& ep, net::VirtualSwitch& sw, net::Frame frame) {
  sw.DeliverFromFabric(ep, std::move(frame), 0);
}

}  // namespace hyperion
