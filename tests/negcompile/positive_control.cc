// MUST COMPILE: control for the negative-compile suite.
//
// Performs, with a legitimate DirectPhase token (SerialPhase is one of its
// two leaves), exactly the operations the sibling *.cc files attempt with an
// ExecutePhase. If this file ever stops compiling, the negative tests are
// failing for the wrong reason (broken headers, stale include paths) and
// their WILL_FAIL results are meaningless.

#include <span>
#include <string>

#include "src/devices/pic.h"
#include "src/mem/frame_pool.h"
#include "src/net/network.h"
#include "src/util/logging.h"
#include "src/util/phase.h"
#include "src/util/sim_clock.h"

namespace hyperion {

void Control(const SerialPhase& sp, SimClock& clock, net::VirtualSwitch& sw,
             mem::FramePool& pool, net::Frame frame, net::Frame fabric_frame,
             mem::HostFrame f, net::FrameSink& sink,
             std::span<const net::Frame> frames, devices::InterruptController& pic) {
  clock.ScheduleAt(sp, 100, [](const SerialPhase&) {});
  pic.RaiseIpi(sp, 0b0110);
  sw.Send(sp, std::move(frame));
  sw.DeliverFromFabric(sp, std::move(fabric_frame), 0);
  pool.DecRefImmediate(sp, f);
  internal::WriteLogText(sp, std::string("direct log line"));
  sink.OnFrameBurst(sp, frames);
}

}  // namespace hyperion
