// MUST NOT COMPILE: minting an ExecutePhase outside the host run loop.
//
// ExecutePhase's constructor is private (friend: core::Host). If arbitrary
// code could fabricate the token, every staging-only signature in the tree
// would be decorative. The only sources of phase evidence are Host's run
// loop (ExecutePhase/CommitPhase/SerialPhase) and ScopedSerialPhase, whose
// constructor runtime-asserts the thread is not inside a slice.

#include "src/util/phase.h"

namespace hyperion {

void Violation() {
  ExecutePhase forged;
  (void)forged;
}

}  // namespace hyperion
