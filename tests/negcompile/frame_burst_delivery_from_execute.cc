// MUST NOT COMPILE: coalesced frame delivery from inside an execute slice.
//
// FrameSink::OnFrameBurst demands a SerialPhase token: burst delivery runs
// only from the dispatch loop's clock callbacks, where it mutates shared NIC
// state (RX rings, backlog, interrupt lines) without a lock. Invoking it
// from a worker lane would race those structures; slice code transmits via
// VirtualSwitch::TransmitBurst, which stages the frames for the barrier.

#include <span>

#include "src/net/network.h"
#include "src/util/phase.h"

namespace hyperion {

void Violation(const ExecutePhase& ep, net::FrameSink& sink,
               std::span<const net::Frame> frames) {
  sink.OnFrameBurst(ep, frames);
}

}  // namespace hyperion
