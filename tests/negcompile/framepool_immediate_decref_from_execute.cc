// MUST NOT COMPILE: immediate frame refcount drop from inside an execute
// slice.
//
// FramePool::DecRefImmediate demands a DirectPhase token: dropping a
// refcount in place from a worker lane races the commit-ordered DecRefs of
// other slices and can free a frame another lane still reads. Slice code
// stages through DecRef(const ExecutePhase&, ...) instead.

#include "src/mem/frame_pool.h"
#include "src/util/phase.h"

namespace hyperion {

void Violation(const ExecutePhase& ep, mem::FramePool& pool, mem::HostFrame f) {
  pool.DecRefImmediate(ep, f);
}

}  // namespace hyperion
