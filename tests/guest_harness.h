// Shared test scaffolding: assemble guest programs, load them into guest
// memory, and run them on a chosen engine/virtualizer combination.

#ifndef TESTS_GUEST_HARNESS_H_
#define TESTS_GUEST_HARNESS_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/asm/assembler.h"
#include "src/cpu/dbt.h"
#include "src/cpu/exec_core.h"
#include "src/cpu/interpreter.h"
#include "src/mem/frame_pool.h"
#include "src/mem/guest_memory.h"
#include "src/mmu/virtualizer.h"

namespace hyperion::testing {

// A self-contained single-vCPU machine for unit tests (no devices, no
// scheduler). Examples and the full VMM live in src/core; this harness
// exercises the CPU/MMU layers in isolation.
class TestMachine {
 public:
  // `dbt_max_blocks` overrides the DBT block-cache capacity (0 = default);
  // tiny caches force the eviction machinery in unit tests. `dbt_options`
  // passes the full knob set (tier-2 threshold etc.); a nonzero
  // dbt_max_blocks overrides its capacity for backward compatibility.
  explicit TestMachine(uint32_t ram_bytes = 1u << 20,
                       mmu::PagingMode paging = mmu::PagingMode::kNested,
                       cpu::EngineKind engine = cpu::EngineKind::kInterpreter,
                       cpu::VirtMode virt_mode = cpu::VirtMode::kHardwareAssist,
                       size_t dbt_max_blocks = 0,
                       cpu::DbtOptions dbt_options = {})
      : pool_(2 * (ram_bytes / isa::kPageSize) + 64) {
    auto mem = mem::GuestMemory::Create(&pool_, ram_bytes);
    EXPECT_TRUE(mem.ok()) << mem.status().ToString();
    memory_ = std::move(mem).value();
    virt_ = mmu::MakeVirtualizer(paging, memory_.get());
    if (dbt_max_blocks != 0) {
      dbt_options.max_blocks = dbt_max_blocks;
    }
    engine_ = cpu::MakeEngine(engine, dbt_options);
    ctx_.memory = memory_.get();
    ctx_.virt = virt_.get();
    ctx_.virt_mode = virt_mode;
  }

  // Assembles and loads `source`; sets pc to the image entry point.
  void Load(const std::string& source) {
    auto image = assembler::Assemble(source);
    ASSERT_TRUE(image.ok()) << image.status().ToString();
    ASSERT_TRUE(memory_->Write(image->base, image->bytes.data(), image->bytes.size()).ok());
    ctx_.state.pc = image->entry();
    image_ = std::move(image).value();
  }

  // Runs until halt/exit or `max_cycles`; returns the final RunResult.
  cpu::RunResult Run(uint64_t max_cycles = 10'000'000) {
    return engine_->Run(ctx_, max_cycles);
  }

  // Runs and requires a clean HALT.
  cpu::RunResult RunToHalt(uint64_t max_cycles = 10'000'000) {
    cpu::RunResult r = engine_->Run(ctx_, max_cycles);
    EXPECT_EQ(r.reason, cpu::ExitReason::kHalt)
        << "exit=" << static_cast<int>(r.reason) << " pc=0x" << std::hex << ctx_.state.pc
        << " error=" << r.error.ToString();
    return r;
  }

  uint32_t Reg(uint8_t r) const { return ctx_.state.ReadReg(r); }
  uint32_t Word(uint32_t gpa) const {
    auto v = memory_->ReadU32(gpa);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return v.value_or(0);
  }
  uint32_t Symbol(const std::string& name) const {
    auto a = image_.SymbolAddress(name);
    EXPECT_TRUE(a.ok()) << a.status().ToString();
    return a.value_or(0);
  }

  cpu::VcpuContext& ctx() { return ctx_; }
  mem::GuestMemory& memory() { return *memory_; }
  mem::FramePool& pool() { return pool_; }
  mmu::MemoryVirtualizer& virt() { return *virt_; }
  cpu::ExecutionEngine& engine() { return *engine_; }

 private:
  mem::FramePool pool_;
  std::unique_ptr<mem::GuestMemory> memory_;
  std::unique_ptr<mmu::MemoryVirtualizer> virt_;
  std::unique_ptr<cpu::ExecutionEngine> engine_;
  cpu::VcpuContext ctx_;
  assembler::Image image_;
};

struct MachineParam {
  mmu::PagingMode paging;
  cpu::EngineKind engine;
  cpu::VirtMode virt_mode;
};

inline std::string MachineParamName(
    const ::testing::TestParamInfo<MachineParam>& info) {
  std::string name;
  name += info.param.paging == mmu::PagingMode::kShadow ? "Shadow" : "Nested";
  name += info.param.engine == cpu::EngineKind::kInterpreter ? "Interp" : "Dbt";
  name += info.param.virt_mode == cpu::VirtMode::kTrapAndEmulate ? "TE" : "HW";
  return name;
}

inline std::vector<MachineParam> AllMachineParams() {
  std::vector<MachineParam> params;
  for (auto paging : {mmu::PagingMode::kShadow, mmu::PagingMode::kNested}) {
    for (auto engine : {cpu::EngineKind::kInterpreter, cpu::EngineKind::kDbt}) {
      for (auto mode : {cpu::VirtMode::kHardwareAssist, cpu::VirtMode::kTrapAndEmulate}) {
        params.push_back({paging, engine, mode});
      }
    }
  }
  return params;
}

}  // namespace hyperion::testing

#endif  // TESTS_GUEST_HARNESS_H_
