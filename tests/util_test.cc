// Unit tests for the util substrate: Status/Result, bitmap, byte streams,
// CRC32, RNG, simulated clock, statistics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <set>
#include <vector>

#include "src/util/bitmap.h"
#include "src/util/byte_stream.h"
#include "src/util/crc32.h"
#include "src/util/histogram.h"
#include "src/util/rng.h"
#include "src/util/sim_clock.h"
#include "src/util/status.h"
#include "tests/test_phase.h"

namespace hyperion {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = OutOfRangeError("gpa 0x100 past end");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(s.message(), "gpa 0x100 past end");
  EXPECT_EQ(s.ToString(), "OUT_OF_RANGE: gpa 0x100 past end");
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(ResourceExhaustedError("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(FailedPreconditionError("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) {
    return InvalidArgumentError("odd");
  }
  return x / 2;
}

Result<int> Quarter(int x) {
  HYP_ASSIGN_OR_RETURN(int h, Half(x));
  HYP_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Quarter(7).status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Bitmap
// ---------------------------------------------------------------------------

TEST(BitmapTest, SetClearTest) {
  Bitmap b(130);
  EXPECT_EQ(b.Count(), 0u);
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(BitmapTest, FindFirstSetAcrossWords) {
  Bitmap b(200);
  EXPECT_EQ(b.FindFirstSet(), 200u);
  b.Set(130);
  EXPECT_EQ(b.FindFirstSet(), 130u);
  EXPECT_EQ(b.FindFirstSet(130), 130u);
  EXPECT_EQ(b.FindFirstSet(131), 200u);
}

TEST(BitmapTest, FindFirstClear) {
  Bitmap b(70);
  b.SetAll();
  EXPECT_EQ(b.FindFirstClear(), 70u);
  b.Clear(65);
  EXPECT_EQ(b.FindFirstClear(), 65u);
  EXPECT_EQ(b.FindFirstClear(66), 70u);
}

TEST(BitmapTest, SetAllRespectsSize) {
  Bitmap b(67);
  b.SetAll();
  EXPECT_EQ(b.Count(), 67u);
}

TEST(BitmapTest, SetBitsEnumerates) {
  Bitmap b(128);
  b.Set(3);
  b.Set(64);
  b.Set(127);
  EXPECT_EQ(b.SetBits(), (std::vector<size_t>{3, 64, 127}));
}

TEST(BitmapTest, ExchangeClearHarvests) {
  Bitmap b(64);
  b.Set(5);
  b.Set(42);
  Bitmap snap = b.ExchangeClear();
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_EQ(snap.Count(), 2u);
  EXPECT_TRUE(snap.Test(5));
  EXPECT_TRUE(snap.Test(42));
}

TEST(BitmapTest, OrWithMerges) {
  Bitmap a(64), b(64);
  a.Set(1);
  b.Set(2);
  a.OrWith(b);
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(2));
}

// Property: FindFirstSet agrees with a naive scan for random bitmaps.
TEST(BitmapTest, PropertyFindFirstMatchesNaive) {
  Xoshiro256 rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    size_t bits = 1 + rng.NextBelow(300);
    Bitmap b(bits);
    std::set<size_t> set_bits;
    for (size_t i = 0; i < bits / 3; ++i) {
      size_t idx = rng.NextBelow(bits);
      b.Set(idx);
      set_bits.insert(idx);
    }
    for (size_t from = 0; from < bits; from += 1 + rng.NextBelow(7)) {
      auto it = set_bits.lower_bound(from);
      size_t expect = it == set_bits.end() ? bits : *it;
      EXPECT_EQ(b.FindFirstSet(from), expect) << "bits=" << bits << " from=" << from;
    }
  }
}

// ---------------------------------------------------------------------------
// Byte streams
// ---------------------------------------------------------------------------

TEST(ByteStreamTest, RoundTripScalars) {
  ByteWriter w;
  w.WriteU8(0xAB);
  w.WriteU16(0x1234);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0123456789ABCDEFull);

  ByteReader r(w.buffer());
  EXPECT_EQ(*r.ReadU8(), 0xAB);
  EXPECT_EQ(*r.ReadU16(), 0x1234);
  EXPECT_EQ(*r.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.ReadU64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteStreamTest, RoundTripBlobAndString) {
  ByteWriter w;
  std::vector<uint8_t> blob = {1, 2, 3, 4, 5};
  w.WriteBlob(blob);
  w.WriteString("hello");

  ByteReader r(w.buffer());
  EXPECT_EQ(*r.ReadBlob(), blob);
  EXPECT_EQ(*r.ReadString(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteStreamTest, TruncationIsDataLoss) {
  ByteWriter w;
  w.WriteU16(7);
  ByteReader r(w.buffer());
  EXPECT_EQ(r.ReadU32().status().code(), StatusCode::kDataLoss);
}

TEST(ByteStreamTest, BlobLengthPastEndIsDataLoss) {
  ByteWriter w;
  w.WriteU32(1000);  // claims 1000 bytes follow
  w.WriteU8(1);
  ByteReader r(w.buffer());
  EXPECT_EQ(r.ReadBlob().status().code(), StatusCode::kDataLoss);
}

TEST(ByteStreamTest, PatchU32BackPatches) {
  ByteWriter w;
  size_t at = w.size();
  w.WriteU32(0);
  w.WriteU32(0x11111111);
  w.PatchU32(at, 0x22222222);
  ByteReader r(w.buffer());
  EXPECT_EQ(*r.ReadU32(), 0x22222222u);
  EXPECT_EQ(*r.ReadU32(), 0x11111111u);
}

TEST(ByteStreamTest, SkipBoundsChecked) {
  ByteWriter w;
  w.WriteU32(1);
  ByteReader r(w.buffer());
  EXPECT_TRUE(r.Skip(4).ok());
  EXPECT_EQ(r.Skip(1).code(), StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

TEST(Crc32Test, KnownVector) {
  // The canonical IEEE test vector.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32("", 0), 0u); }

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const char data[] = "the quick brown fox jumps over the lazy dog";
  size_t n = sizeof(data) - 1;
  uint32_t whole = Crc32(data, n);
  for (size_t split = 0; split <= n; ++split) {
    uint32_t part = Crc32(data, split);
    uint32_t chained = Crc32(data + split, n - split, part);
    EXPECT_EQ(chained, whole) << "split=" << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  uint8_t buf[64] = {};
  uint32_t base = Crc32(buf, sizeof(buf));
  for (int bit = 0; bit < 64 * 8; bit += 37) {
    buf[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_NE(Crc32(buf, sizeof(buf)), base);
    buf[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.Next() == b.Next();
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Xoshiro256 rng(7);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.NextInRange(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    hit_lo |= v == 3;
    hit_hi |= v == 6;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, RoughUniformity) {
  Xoshiro256 rng(5);
  std::vector<int> buckets(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++buckets[rng.NextBelow(10)];
  }
  for (int count : buckets) {
    EXPECT_NEAR(count, kDraws / 10, kDraws / 100);
  }
}

// ---------------------------------------------------------------------------
// SimClock
// ---------------------------------------------------------------------------

TEST(SimClockTest, StartsAtZeroAndAdvances) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.Advance(TestPhase(), 100);
  EXPECT_EQ(clock.now(), 100u);
}

TEST(SimClockTest, EventsFireInTimeOrder) {
  SimClock clock;
  std::vector<int> order;
  clock.ScheduleAt(TestPhase(), 30, [&] { order.push_back(3); });
  clock.ScheduleAt(TestPhase(), 10, [&] { order.push_back(1); });
  clock.ScheduleAt(TestPhase(), 20, [&] { order.push_back(2); });
  clock.RunAll(TestPhase());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.now(), 30u);
}

TEST(SimClockTest, SameTimeEventsFifo) {
  SimClock clock;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    clock.ScheduleAt(TestPhase(), 50, [&order, i] { order.push_back(i); });
  }
  clock.RunAll(TestPhase());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimClockTest, RunUntilStopsAtBoundary) {
  SimClock clock;
  int fired = 0;
  clock.ScheduleAt(TestPhase(), 10, [&] { ++fired; });
  clock.ScheduleAt(TestPhase(), 20, [&] { ++fired; });
  clock.RunUntil(TestPhase(), 15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(clock.now(), 15u);
  clock.RunUntil(TestPhase(), 25);
  EXPECT_EQ(fired, 2);
}

TEST(SimClockTest, EventsCanScheduleEvents) {
  SimClock clock;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) {
      clock.ScheduleAfter(TestPhase(), 10, step);
    }
  };
  clock.ScheduleAfter(TestPhase(), 10, step);
  clock.RunAll(TestPhase());
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(clock.now(), 50u);
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(SummaryStatsTest, BasicMoments) {
  SummaryStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
}

TEST(LogHistogramTest, PercentileMonotone) {
  LogHistogram h;
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    h.Add(rng.NextBelow(100000));
  }
  EXPECT_LE(h.Percentile(0.5), h.Percentile(0.9));
  EXPECT_LE(h.Percentile(0.9), h.Percentile(0.99));
}

TEST(LogHistogramTest, ExactForConstants) {
  LogHistogram h;
  for (int i = 0; i < 100; ++i) {
    h.Add(1000);
  }
  // 1000 lands in bucket [512, 1023]; upper bound is 1023.
  EXPECT_EQ(h.Percentile(0.5), 1023u);
  EXPECT_DOUBLE_EQ(h.mean(), 1000.0);
}

TEST(JainFairnessTest, PerfectAndWorstCase) {
  EXPECT_DOUBLE_EQ(JainFairness({1, 1, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(JainFairness({1, 0, 0, 0}), 0.25);
  double mid = JainFairness({2, 1, 1, 1});
  EXPECT_GT(mid, 0.25);
  EXPECT_LT(mid, 1.0);
}

}  // namespace
}  // namespace hyperion
