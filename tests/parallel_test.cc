// Staged execution core tests (DESIGN.md §8).
//
// The dispatch→execute→commit pipeline promises that simulation results are
// bit-identical for every worker count: the commit step replays staged side
// effects in dispatch order, so threads only change wall-clock speed, never
// outcomes. These tests hold the pipeline to that promise with a dense
// consolidation scenario (8 VMs mixing compute, timers, dirtying, SMP, disk
// and network I/O) plus a faulty live migration, replayed at worker counts
// {0, 1, 4}, and with a seeded chaos sweep at 4 workers under the runtime
// auditors. They also pin down the DestroyVm lifetime fix: clock events
// owned by a VM (armed timers, in-flight block completions) die with it.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/core/host.h"
#include "tests/test_phase.h"
#include "src/core/worker_pool.h"
#include "src/fault/fault.h"
#include "src/guest/programs.h"
#include "src/migrate/migrate.h"
#include "src/net/network.h"
#include "src/storage/block_store.h"
#include "src/virtio/virtio_net.h"
#include "src/util/crc32.h"
#include "src/verify/audit.h"

namespace hyperion {
namespace {

using core::Host;
using core::HostConfig;
using core::IoModel;
using core::Vm;
using core::VmConfig;
using core::VmState;

constexpr char kLinkSite[] = "migrate:link";
constexpr char kHostSite[] = "src:host";

Vm* Boot(Host& host, VmConfig config, const std::string& source) {
  auto image = guest::Build(source);
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  auto vm = host.CreateVm(std::move(config));
  EXPECT_TRUE(vm.ok()) << vm.status().ToString();
  EXPECT_TRUE((*vm)->LoadImage(*image).ok());
  return *vm;
}

// Digest of guest RAM: presence map + contents of every present page.
uint32_t RamDigest(Vm& vm) {
  mem::GuestMemory& mem = vm.memory();
  uint32_t crc = 0;
  for (uint32_t gpn = 0; gpn < mem.num_pages(); ++gpn) {
    uint8_t present = mem.IsPresent(gpn) ? 1 : 0;
    crc = Crc32(&present, 1, crc);
    if (present) {
      crc = Crc32(mem.PageData(gpn), isa::kPageSize, crc);
    }
  }
  return crc;
}

migrate::MigrateOptions FaultyOptions(fault::FaultInjector* inj) {
  migrate::MigrateOptions options;
  options.fault = inj;
  options.fault_site = kLinkSite;
  options.retry_backoff = kSimTicksPerMs;
  options.retry_backoff_cap = 20 * kSimTicksPerMs;
  options.round_timeout = 50 * kSimTicksPerMs;
  options.postcopy_run_limit = 5 * kSimTicksPerSec;
  return options;
}

// Everything observable a scenario produces. Field-for-field equality is the
// determinism oracle.
struct ScenarioResult {
  Host::HostStats src_stats;
  Host::HostStats dst_stats;
  std::vector<uint32_t> digests;       // per VM, creation order; migrated VM last
  std::vector<std::string> consoles;   // same order
  std::vector<uint64_t> instructions;  // same order
  // Data-plane counters: the coalescing machinery (EVENT_IDX suppression,
  // NAPI polling, burst delivery) must also replay bit-identically.
  net::VirtualSwitch::Stats switch_stats;
  std::vector<virtio::VirtioNet::NetStats> nic_stats;     // per paravirt NIC
  std::vector<virtio::VirtioDevice::Stats> nic_dev_stats;  // same order
  migrate::MigrationReport report;
  bool migrate_ok = false;
  StatusCode code = StatusCode::kOk;
  SimTime src_now = 0;
  SimTime dst_now = 0;

  bool operator==(const ScenarioResult&) const = default;
};

// A dense consolidation scenario: 8 VMs covering every staged subsystem
// (pure compute, timer sleeps via the clock, page dirtying through the frame
// pool, a 2-vCPU SMP lane, emulated and virtio disks, a virtio-net
// ping/echo pair through the switch), run under an injected host-pause/link
// fault plan, with one VM live-migrating away mid-run.
ScenarioResult RunScenario(int workers, uint64_t seed, bool short_run = false) {
  fault::ChaosProfile profile;
  profile.link_site = kLinkSite;
  profile.host_site = kHostSite;
  profile.horizon = 60 * kSimTicksPerMs;
  fault::FaultInjector inj(fault::FaultPlan::Random(seed, profile));

  HostConfig hc;
  hc.worker_threads = workers;
  Host src(hc), dst(hc);
  src.SetFaultInjector(&inj, kHostSite);

  std::vector<Vm*> vms;
  vms.push_back(Boot(src, VmConfig{.name = "compute"}, guest::ComputeProgram(0)));
  vms.push_back(Boot(src, VmConfig{.name = "idle"}, guest::IdleTickProgram(200'000)));
  vms.push_back(Boot(src, VmConfig{.name = "dirty"}, guest::DirtyRateProgram(48, 400)));
  vms.push_back(Boot(src, VmConfig{.name = "fill"},
                     guest::PatternFillProgram(64, 8, static_cast<uint32_t>(seed))));

  VmConfig smp{.name = "smp"};
  smp.num_vcpus = 2;
  vms.push_back(Boot(src, smp, guest::SmpCounterProgram(100'000)));

  auto edisk = std::make_shared<storage::MemBlockStore>(256);
  VmConfig eblk{.name = "eblk"};
  eblk.disk_model = IoModel::kEmulated;
  eblk.disk = edisk;
  guest::BlkIoParams ep;
  ep.iterations = 1'000'000;  // effectively forever: I/O flows all scenario
  ep.sectors = 2;
  ep.write = true;
  vms.push_back(Boot(src, eblk, guest::EmulatedBlkProgram(ep)));

  auto vdisk = std::make_shared<storage::MemBlockStore>(1024);
  VmConfig vblk{.name = "vblk"};
  vblk.disk_model = IoModel::kParavirt;
  vblk.disk = vdisk;
  guest::BlkIoParams vp;
  vp.iterations = 1'000'000;
  vp.sectors = 4;
  vp.batch = 4;
  vp.write = true;
  vms.push_back(Boot(src, vblk, guest::VirtioBlkProgram(vp)));

  guest::NetParams np;
  np.peer_mac = 2;
  np.payload_bytes = 128;
  np.iterations = 0;  // ping forever
  VmConfig ping{.name = "ping"};
  ping.net_model = IoModel::kParavirt;
  ping.mac = 1;
  vms.push_back(Boot(src, ping, guest::VirtioNetPingProgram(np)));
  VmConfig echo{.name = "echo"};
  echo.net_model = IoModel::kParavirt;
  echo.mac = 2;
  vms.push_back(Boot(src, echo, guest::VirtioNetEchoProgram(np.payload_bytes)));

  // A bulk stream/sink pair with the full coalescing data plane engaged:
  // EVENT_IDX completions, kick-suppressed NAPI polling, burst delivery.
  guest::NetStreamParams sp;
  sp.peer_mac = 4;
  sp.payload_bytes = 256;
  VmConfig stream{.name = "stream"};
  stream.net_model = IoModel::kParavirt;
  stream.mac = 3;
  vms.push_back(Boot(src, stream, guest::VirtioNetStreamProgram(sp)));
  VmConfig bulk_sink{.name = "sink"};
  bulk_sink.net_model = IoModel::kParavirt;
  bulk_sink.mac = 4;
  vms.push_back(Boot(src, bulk_sink, guest::VirtioNetSinkProgram(sp)));

  SimTime unit = short_run ? 2 * kSimTicksPerMs : 10 * kSimTicksPerMs;
  src.RunFor(3 * unit);

  ScenarioResult out;
  Vm* mover = src.FindVm("idle");
  auto moved = migrate::PreCopyMigrate(src, mover, dst, FaultyOptions(&inj), &out.report);
  out.migrate_ok = moved.ok();
  out.code = moved.status().code();

  src.RunFor(2 * unit);
  dst.RunFor(2 * unit);

  for (Vm* vm : vms) {
    out.digests.push_back(RamDigest(*vm));
    out.consoles.push_back(vm->console());
    out.instructions.push_back(vm->TotalStats().instructions);
  }
  if (moved.ok()) {
    out.digests.push_back(RamDigest(**moved));
    out.consoles.push_back((*moved)->console());
    out.instructions.push_back((*moved)->TotalStats().instructions);
  }
  out.switch_stats = src.vswitch().stats();
  for (Vm* vm : vms) {
    if (vm->virtio_net() != nullptr) {
      out.nic_stats.push_back(vm->virtio_net()->net_stats());
      out.nic_dev_stats.push_back(vm->virtio_net()->stats());
    }
  }
  out.src_stats = src.stats();
  out.dst_stats = dst.stats();
  out.src_now = src.clock().now();
  out.dst_now = dst.clock().now();
  return out;
}

// The tentpole guarantee: worker count changes wall-clock speed only. The
// whole observable state — RAM digests, consoles, instruction counts,
// HostStats, the MigrationReport, final clocks — must match bit-for-bit
// across {0, 1, 4} workers.
TEST(StagedExecutionTest, ResultsAreIdenticalAcrossWorkerCounts) {
  ScenarioResult serial = RunScenario(/*workers=*/0, /*seed=*/42);
  ScenarioResult one = RunScenario(/*workers=*/1, /*seed=*/42);
  ScenarioResult four = RunScenario(/*workers=*/4, /*seed=*/42);
  // The equality below must not hold vacuously: the stream/sink pair has to
  // actually exercise kick suppression and burst delivery in this scenario.
  uint64_t suppressed = 0;
  uint64_t burst_frames = 0;
  for (const auto& s : serial.nic_stats) {
    suppressed += s.kicks_suppressed;
    burst_frames += s.burst_frames;
  }
  EXPECT_GT(suppressed, 0u) << "NAPI polling never engaged";
  EXPECT_GT(burst_frames, 0u) << "no coalesced burst deliveries";
  EXPECT_GT(serial.switch_stats.bursts_delivered, 0u);
  EXPECT_TRUE(serial == one) << "1-worker run diverged from serial";
  EXPECT_TRUE(serial == four) << "4-worker run diverged from serial";
  // And the scenario itself replays deterministically at a fixed count.
  ScenarioResult again = RunScenario(/*workers=*/4, /*seed=*/42);
  EXPECT_TRUE(four == again) << "4-worker run is not replay-deterministic";
}

// Ten chaos seeds at 4 workers, with the runtime auditors armed the whole
// time: staging must never let a worker observe (or commit) an incoherent
// MMU, virtio ring, or frame refcount, and every seed must replay the serial
// outcome exactly.
TEST(StagedExecutionTest, ChaosSweepAtFourWorkersMatchesSerialUnderAudit) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    verify::SetAuditEnabled(true);
    ScenarioResult serial = RunScenario(/*workers=*/0, seed, /*short_run=*/true);
    ScenarioResult four = RunScenario(/*workers=*/4, seed, /*short_run=*/true);
    verify::SetAuditEnabled(false);
    EXPECT_TRUE(serial == four) << "divergence at seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// SMP bit-identity
// ---------------------------------------------------------------------------

// Everything a 4-vCPU MCS-lock/shootdown run can observably produce,
// including the whole per-vCPU stat blocks (ipis_sent, ipis_received,
// shootdowns among them).
struct SmpResult {
  uint32_t digest = 0;
  std::string console;
  std::vector<cpu::VcpuStats> stats;
  VmState state = VmState::kRunning;
  uint32_t progress = 0;
  SimTime now = 0;

  bool operator==(const SmpResult&) const = default;
};

SmpResult RunSmpMcsScenario(int workers) {
  HostConfig hc;
  hc.worker_threads = workers;
  hc.num_pcpus = 4;
  Host host(hc);
  guest::SmpLockParams p;
  std::string prog = guest::SmpMcsLockProgram(p);
  VmConfig cfg{.name = "mcs"};
  cfg.ram_bytes = 8u << 20;
  cfg.num_vcpus = p.num_vcpus;
  cfg.paging_mode = mmu::PagingMode::kNested;
  Vm* vm = Boot(host, cfg, prog);
  // A second VM so multi-worker runs genuinely execute concurrent lanes.
  Vm* other = Boot(host, VmConfig{.name = "compute"}, guest::ComputeProgram(0));
  // The MCS gauntlet completes in ~20 simulated ms; 50 ms is deterministic
  // headroom without simulating the compute VM for long after.
  host.RunFor(50 * kSimTicksPerMs);

  SmpResult out;
  out.digest = RamDigest(*vm);
  out.console = vm->console();
  for (uint32_t i = 0; i < vm->num_vcpus(); ++i) {
    out.stats.push_back(vm->vcpu(i).stats);
  }
  out.state = vm->state();
  auto image = guest::Build(prog);
  EXPECT_TRUE(image.ok());
  auto addr = guest::ProgressAddress(*image);
  EXPECT_TRUE(addr.ok());
  out.progress = vm->memory().ReadU32(*addr).value_or(0);
  out.now = host.clock().now();
  EXPECT_GT(other->TotalStats().instructions, 0u);
  return out;
}

// An SMP guest whose vCPUs genuinely interact — MCS lock handoffs, IPI
// doorbells, cross-vCPU TLB shootdowns — must replay bit-identically at any
// worker count: same RAM digest, same console, same per-vCPU stat blocks.
TEST(StagedExecutionTest, SmpMcsLockIsIdenticalAcrossWorkerCounts) {
  SmpResult serial = RunSmpMcsScenario(/*workers=*/0);
  // Non-vacuity: the run finished, held the lock, and actually shot down.
  guest::SmpLockParams p;
  EXPECT_EQ(serial.state, VmState::kShutdown);
  EXPECT_EQ(serial.progress, p.num_vcpus * p.lock_iters);
  EXPECT_GT(serial.stats[0].ipis_sent, 0u);
  for (uint32_t i = 1; i < p.num_vcpus; ++i) {
    EXPECT_GT(serial.stats[i].ipis_received, 0u) << "vcpu " << i;
    EXPECT_GT(serial.stats[i].shootdowns, 0u) << "vcpu " << i;
  }
  SmpResult one = RunSmpMcsScenario(/*workers=*/1);
  SmpResult four = RunSmpMcsScenario(/*workers=*/4);
  EXPECT_TRUE(serial == one) << "1-worker SMP run diverged from serial";
  EXPECT_TRUE(serial == four) << "4-worker SMP run diverged from serial";
}

// ---------------------------------------------------------------------------
// DestroyVm lifetime
// ---------------------------------------------------------------------------

// Destroying a VM with an armed wfi timer and an in-flight block completion
// must cancel both events. Before owner-tagged events, the queued closures
// captured the freed Vm/device and fired into dead memory (caught by ASan).
TEST(DestroyVmTest, CancelsArmedTimerAndInflightBlockIo) {
  Host host;

  // A guest sleeping in wfi with a timer armed well in the future.
  Vm* sleeper = Boot(host, VmConfig{.name = "sleeper"}, guest::IdleTickProgram(5'000'000));
  host.RunFor(2 * kSimTicksPerMs);

  // A VM with a block command mid-flight: start it through the register
  // interface so the completion event is deterministically pending.
  auto disk = std::make_shared<storage::MemBlockStore>(64);
  VmConfig cfg{.name = "io"};
  cfg.disk_model = IoModel::kEmulated;
  cfg.disk = disk;
  Vm* io = Boot(host, cfg, guest::ComputeProgram(0));
  ASSERT_TRUE(io->emulated_blk()->Write(TestPhase(), 0x00, 4, 0).ok());  // LBA
  ASSERT_TRUE(io->emulated_blk()->Write(TestPhase(), 0x04, 4, 8).ok());  // COUNT
  ASSERT_TRUE(io->emulated_blk()->Write(TestPhase(), 0x08, 4, 2).ok());  // CMD: write
  ASSERT_TRUE(host.clock().HasPending());

  ASSERT_TRUE(host.DestroyVm(sleeper).ok());
  ASSERT_TRUE(host.DestroyVm(io).ok());

  // Drain every remaining event, then keep simulating. Without CancelOwner
  // these dereference the destroyed VMs.
  host.clock().RunAll(TestPhase());
  host.RunFor(20 * kSimTicksPerMs);
  EXPECT_TRUE(host.vms().empty());
}

// The virtio completion path stages through the same owner tag.
TEST(DestroyVmTest, CancelsInflightVirtioBlkCompletion) {
  Host host;
  auto disk = std::make_shared<storage::MemBlockStore>(1024);
  VmConfig cfg{.name = "vio"};
  cfg.disk_model = IoModel::kParavirt;
  cfg.disk = disk;
  guest::BlkIoParams p;
  p.iterations = 1'000'000;  // keep I/O flowing until destroyed
  p.sectors = 4;
  p.batch = 2;
  p.write = true;
  Vm* vm = Boot(host, cfg, guest::VirtioBlkProgram(p));
  host.RunFor(2 * kSimTicksPerMs);
  ASSERT_EQ(vm->state(), VmState::kRunning) << vm->crash_reason().ToString();
  ASSERT_TRUE(host.DestroyVm(vm).ok());
  host.clock().RunAll(TestPhase());
  host.RunFor(10 * kSimTicksPerMs);
  EXPECT_TRUE(host.vms().empty());
}

// ---------------------------------------------------------------------------
// WorkerPool
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Cluster acceptance scenario (DESIGN.md §13): a 4-host fleet of 64 VMs under
// churn — arrivals and departures, one rolling-maintenance drain, one
// injected host crash with checkpoint respawn, DRS rebalancing, and a
// cross-host ping/echo pair through the fabric. The whole observable cluster
// history must be bit-identical across worker counts: member hosts share one
// TimeDomain, so the same staged-commit argument covers the fleet.
// ---------------------------------------------------------------------------

struct ClusterScenarioResult {
  // "name@host state digest insns", sorted by name — one line per surviving
  // guest, including respawned crash victims.
  std::vector<std::string> guests;
  std::vector<Host::HostStats> host_stats;
  std::vector<net::VirtualSwitch::Stats> switch_stats;
  cluster::Fabric::Stats fabric_stats;
  cluster::ClusterStats cluster_stats;
  std::vector<cluster::MigrationRecord> migrations;
  SimTime now = 0;

  bool operator==(const ClusterScenarioResult&) const = default;
};

ClusterScenarioResult RunClusterScenario(int workers) {
  cluster::ClusterConfig cc;
  cc.worker_threads = workers;
  cc.cpu_overcommit = 32.0;
  cc.ram_overcommit = 4.0;
  cc.drs.interval = 4 * kSimTicksPerMs;
  cc.drs.hot_busy = 0.45;
  cc.drs.cool_until = 0.40;
  cc.drs.min_gain = 0.05;
  cluster::Cluster cl(cc);
  std::vector<Host*> hosts;
  for (int i = 0; i < 4; ++i) {
    hosts.push_back(cl.AddHost(HostConfig{.num_pcpus = 2}));
  }

  fault::FaultPlan plan;
  plan.AddHostCrash("fleet:h1", 14 * kSimTicksPerMs);
  fault::FaultInjector inj(plan);
  hosts[1]->SetFaultInjector(&inj, "fleet:h1");

  std::string idle = guest::IdleTickProgram(500'000);
  std::string compute = guest::ComputeProgram(0);
  auto boot = [&](VmConfig config, const std::string& source, Host* pin = nullptr) {
    auto image = guest::Build(source);
    EXPECT_TRUE(image.ok()) << image.status().ToString();
    auto vm = cl.CreateVm(std::move(config), pin);
    EXPECT_TRUE(vm.ok()) << vm.status().ToString();
    EXPECT_TRUE((*vm)->LoadImage(*image).ok());
  };

  // 62 bulk VMs (every 16th is a cycle burner, the rest tick idly) plus a
  // pinned cross-host ping/echo pair: 64 guests.
  for (int i = 0; i < 62; ++i) {
    char name[8];
    std::snprintf(name, sizeof(name), "vm%02d", i);
    boot(VmConfig{.name = name}, i % 16 == 0 ? compute : idle);
  }
  guest::NetParams np;
  np.peer_mac = 2;
  np.payload_bytes = 128;
  np.iterations = 0;
  VmConfig ping{.name = "ping"};
  ping.net_model = IoModel::kParavirt;
  ping.mac = 1;
  boot(ping, guest::VirtioNetPingProgram(np), hosts[0]);
  VmConfig echo{.name = "echo"};
  echo.net_model = IoModel::kParavirt;
  echo.mac = 2;
  boot(echo, guest::VirtioNetEchoProgram(np.payload_bytes), hosts[2]);

  cl.RunFor(6 * kSimTicksPerMs);

  // Churn: nine departures, nine arrivals.
  for (int i = 0; i < 62; i += 7) {
    char name[8];
    std::snprintf(name, sizeof(name), "vm%02d", i);
    EXPECT_TRUE(cl.DestroyVm(name).ok());
  }
  for (int i = 0; i < 9; ++i) {
    boot(VmConfig{.name = "new" + std::to_string(i)}, idle);
  }
  cl.RunFor(6 * kSimTicksPerMs);

  // Fresh respawn templates for everyone, then maintenance begins on h3 and
  // the crash on h1 fires mid-flight (t=14ms).
  cl.CheckpointAll();
  EXPECT_TRUE(cl.DrainHost(hosts[3]).ok());
  cl.RunFor(13 * kSimTicksPerMs);

  ClusterScenarioResult out;
  std::vector<std::string> names;
  for (int i = 0; i < 62; ++i) {
    if (i % 7 == 0) {
      continue;  // departed
    }
    char name[8];
    std::snprintf(name, sizeof(name), "vm%02d", i);
    names.push_back(name);
  }
  for (int i = 0; i < 9; ++i) {
    names.push_back("new" + std::to_string(i));
  }
  names.push_back("ping");
  names.push_back("echo");
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    Vm* vm = cl.FindVm(name);
    EXPECT_NE(vm, nullptr) << "guest lost: " << name;
    if (vm == nullptr) {
      continue;
    }
    out.guests.push_back(name + "@" + cl.HostOf(name)->name() + " " +
                         std::to_string(static_cast<int>(vm->state())) + " " +
                         std::to_string(RamDigest(*vm)) + " " +
                         std::to_string(vm->TotalStats().instructions));
  }
  for (Host* h : hosts) {
    out.host_stats.push_back(h->stats());
    out.switch_stats.push_back(h->vswitch().stats());
  }
  out.fabric_stats = cl.fabric().stats();
  out.cluster_stats = cl.stats();
  out.migrations = cl.migrations();
  out.now = cl.clock().now();
  return out;
}

TEST(ClusterStagedTest, FleetUnderChurnIsIdenticalAcrossWorkerCounts) {
  ClusterScenarioResult serial = RunClusterScenario(/*workers=*/0);

  // Non-vacuity: the scenario must actually have exercised every moving
  // part — evacuation, drain, the fabric, and DRS accounting.
  EXPECT_EQ(serial.guests.size(), 64u);
  EXPECT_EQ(serial.cluster_stats.evacuations_lost, 0u);
  EXPECT_GT(serial.cluster_stats.evacuations_respawned, 0u);
  EXPECT_GT(serial.cluster_stats.drain_migrations, 0u);
  EXPECT_GT(serial.fabric_stats.frames_forwarded, 0u);
  EXPECT_EQ(serial.fabric_stats.frames_no_route, 0u);
  // Every DRS move reconciles against its MigrationReport: a claimed success
  // shipped pages and kept blackout bounded; totals match the stats.
  uint64_t ok_moves = 0;
  for (const cluster::MigrationRecord& rec : serial.migrations) {
    if (rec.ok) {
      ++ok_moves;
      EXPECT_GT(rec.report.pages_sent, 0u) << rec.vm;
      EXPECT_GT(rec.report.total_time, 0u) << rec.vm;
      EXPECT_LT(rec.report.downtime, 10 * kSimTicksPerMs) << rec.vm;
    }
  }
  EXPECT_EQ(ok_moves, serial.cluster_stats.drain_migrations +
                          serial.cluster_stats.rebalance_migrations);

  ClusterScenarioResult one = RunClusterScenario(/*workers=*/1);
  ClusterScenarioResult four = RunClusterScenario(/*workers=*/4);
  EXPECT_TRUE(serial == one) << "1-worker fleet diverged from serial";
  EXPECT_TRUE(serial == four) << "4-worker fleet diverged from serial";
}

TEST(WorkerPoolTest, RunsEveryLaneExactlyOnceAcrossBatches) {
  core::WorkerPool pool(3);
  for (int batch = 0; batch < 50; ++batch) {
    size_t count = 1 + static_cast<size_t>(batch % 7);
    std::vector<std::atomic<int>> hits(count);
    pool.Run(count, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "batch " << batch << " lane " << i;
    }
  }
}

TEST(WorkerPoolTest, ZeroThreadPoolRunsInline) {
  core::WorkerPool pool(0);
  std::vector<int> order;
  pool.Run(4, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace hyperion
