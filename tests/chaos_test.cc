// Seeded chaos harness for migration under fault injection (DESIGN.md §7).
//
// Each seed derives a random FaultPlan (loss, outages, latency spikes, host
// stalls) and runs a live migration under it — twice. The oracles:
//
//  * Determinism: the same seed yields bit-identical MigrationReports; faults
//    are reproducible inputs, not flaky noise.
//  * Fidelity: a migration that claims success shipped every present page
//    byte-for-byte (RAM digests match at the switchover point).
//  * Atomicity: a migration that fails leaves the source VM running and
//    consistent (runtime auditors pass) and leaves nothing on the
//    destination — never a half-VM.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/core/host.h"
#include "src/fault/fault.h"
#include "src/guest/programs.h"
#include "src/migrate/migrate.h"
#include "src/util/crc32.h"
#include "src/verify/audit.h"

namespace hyperion {
namespace {

using core::Host;
using core::HostConfig;
using core::Vm;
using core::VmConfig;
using core::VmState;

constexpr char kLinkSite[] = "migrate:link";
constexpr char kHostSite[] = "src:host";

Vm* Boot(Host& host, VmConfig config, const std::string& source) {
  auto image = guest::Build(source);
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  auto vm = host.CreateVm(std::move(config));
  EXPECT_TRUE(vm.ok()) << vm.status().ToString();
  EXPECT_TRUE((*vm)->LoadImage(*image).ok());
  return *vm;
}

// Digest of guest RAM: presence map + contents of every present page.
uint32_t RamDigest(Vm& vm) {
  mem::GuestMemory& mem = vm.memory();
  uint32_t crc = 0;
  for (uint32_t gpn = 0; gpn < mem.num_pages(); ++gpn) {
    uint8_t present = mem.IsPresent(gpn) ? 1 : 0;
    crc = Crc32(&present, 1, crc);
    if (present) {
      crc = Crc32(mem.PageData(gpn), isa::kPageSize, crc);
    }
  }
  return crc;
}

// Fault-tolerance knobs scaled down so even retry-heavy seeds finish fast.
migrate::MigrateOptions ChaosOptions(fault::FaultInjector* inj) {
  migrate::MigrateOptions options;
  options.fault = inj;
  options.fault_site = kLinkSite;
  options.retry_backoff = kSimTicksPerMs;
  options.retry_backoff_cap = 20 * kSimTicksPerMs;
  options.round_timeout = 50 * kSimTicksPerMs;
  options.postcopy_run_limit = 5 * kSimTicksPerSec;
  return options;
}

struct ChaosOutcome {
  bool ok = false;
  StatusCode code = StatusCode::kOk;
  migrate::MigrationReport report;
  uint32_t src_digest = 0;
  uint32_t dst_digest = 0;

  bool operator==(const ChaosOutcome& other) const {
    return ok == other.ok && code == other.code && report == other.report &&
           src_digest == other.src_digest && dst_digest == other.dst_digest;
  }
};

// One full chaos scenario: boot, run, migrate under the seed's random plan,
// then apply the fidelity/atomicity oracles. The guest idles via wfi between
// timer ticks (pre-copy) or parks after filling memory (post-copy), keeping
// long injected outages cheap to simulate.
ChaosOutcome RunChaos(uint64_t seed, bool post_copy) {
  fault::ChaosProfile profile;
  profile.link_site = kLinkSite;
  profile.host_site = kHostSite;
  profile.horizon = 100 * kSimTicksPerMs;
  fault::FaultInjector inj(fault::FaultPlan::Random(seed, profile));

  Host src, dst;
  src.SetFaultInjector(&inj, kHostSite);
  std::string prog = post_copy
                         ? guest::PatternFillProgram(96, 16, static_cast<uint32_t>(seed))
                         : guest::IdleTickProgram(200'000);
  Vm* vm = Boot(src, VmConfig{.name = "chaos"}, prog);
  src.RunFor(10 * kSimTicksPerMs);
  EXPECT_EQ(vm->state(), VmState::kRunning) << "seed " << seed;

  migrate::MigrateOptions options = ChaosOptions(&inj);
  ChaosOutcome out;
  out.src_digest = RamDigest(*vm);  // pre-migration digest (determinism input)
  auto moved = post_copy ? migrate::PostCopyMigrate(src, vm, dst, options, &out.report)
                         : migrate::PreCopyMigrate(src, vm, dst, options, &out.report);
  out.ok = moved.ok();
  out.code = moved.status().code();

  if (moved.ok()) {
    // Fidelity: the source is paused at the switchover point; the
    // destination has executed nothing (pre-copy) or only parked (post-copy
    // guests write nothing after their fill completes). Every present page
    // must match.
    EXPECT_EQ(vm->state(), VmState::kPaused) << "seed " << seed;
    EXPECT_EQ((*moved)->state(), VmState::kRunning) << "seed " << seed;
    out.src_digest = RamDigest(*vm);
    out.dst_digest = RamDigest(**moved);
    EXPECT_EQ(out.src_digest, out.dst_digest)
        << "guest memory diverged, seed " << seed;
  } else {
    // Atomicity: clean abort. The source keeps running, the destination is
    // empty, and the runtime auditors stay green while the source continues.
    EXPECT_EQ(out.code, StatusCode::kAborted)
        << "seed " << seed << ": " << moved.status().ToString();
    EXPECT_EQ(vm->state(), VmState::kRunning) << "seed " << seed;
    EXPECT_TRUE(dst.vms().empty()) << "half-VM left behind, seed " << seed;
    verify::SetAuditEnabled(true);
    src.RunFor(5 * kSimTicksPerMs);
    verify::SetAuditEnabled(false);
    EXPECT_EQ(vm->state(), VmState::kRunning)
        << "auditor violation after aborted migration, seed " << seed << ": "
        << vm->crash_reason().ToString();
    verify::AuditReport frames = src.AuditFrameAccounting();
    EXPECT_TRUE(frames.ok()) << "seed " << seed << ":\n" << frames.ToString();
    out.dst_digest = RamDigest(*vm);  // post-abort digest, still deterministic
  }
  return out;
}

TEST(ChaosTest, PreCopySweepIsDeterministicAndSafe) {
  int aborted = 0;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    ChaosOutcome first = RunChaos(seed, /*post_copy=*/false);
    ChaosOutcome second = RunChaos(seed, /*post_copy=*/false);
    EXPECT_TRUE(first == second) << "non-deterministic replay, seed " << seed;
    aborted += first.ok ? 0 : 1;
  }
  // The sweep must exercise both outcomes; if every plan aborts (or none
  // does), the generator stopped covering the interesting region.
  EXPECT_LT(aborted, 25);
}

TEST(ChaosTest, PostCopySweepIsDeterministicAndSafe) {
  for (uint64_t seed = 100; seed < 125; ++seed) {
    ChaosOutcome first = RunChaos(seed, /*post_copy=*/true);
    ChaosOutcome second = RunChaos(seed, /*post_copy=*/true);
    EXPECT_TRUE(first == second) << "non-deterministic replay, seed " << seed;
  }
}

// Acceptance scenario: exactly one transient loss on the wire. The migration
// must succeed after a single retry with zero guest-memory divergence.
TEST(ChaosTest, PreCopySurvivesOneTransientLinkFailure) {
  fault::FaultPlan plan;
  plan.AddDropOnce(kLinkSite, 0);  // the very first chunk vanishes
  fault::FaultInjector inj(plan);

  Host src, dst;
  Vm* vm = Boot(src, VmConfig{.name = "one-loss"}, guest::IdleTickProgram(200'000));
  src.RunFor(10 * kSimTicksPerMs);

  migrate::MigrationReport report;
  auto moved = migrate::PreCopyMigrate(src, vm, dst, ChaosOptions(&inj), &report);
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  EXPECT_EQ(report.retries, 1u);
  EXPECT_GT(report.pages_resent, 0u);
  EXPECT_EQ(RamDigest(*vm), RamDigest(**moved));

  // The fault-free control run moves the same pages with no retries and
  // strictly less wire traffic.
  Host src2, dst2;
  Vm* vm2 = Boot(src2, VmConfig{.name = "one-loss"}, guest::IdleTickProgram(200'000));
  src2.RunFor(10 * kSimTicksPerMs);
  migrate::MigrationReport control;
  ASSERT_TRUE(migrate::PreCopyMigrate(src2, vm2, dst2, ChaosOptions(nullptr), &control).ok());
  EXPECT_EQ(control.retries, 0u);
  EXPECT_LT(control.bytes_sent, report.bytes_sent);
}

// A permanent loss must exhaust the retry budget and roll back atomically.
TEST(ChaosTest, PreCopyAbortsCleanlyUnderTotalLoss) {
  fault::FaultPlan plan;
  plan.AddTransferLoss(kLinkSite, 1.0);  // nothing ever gets through
  fault::FaultInjector inj(plan);

  Host src, dst;
  Vm* vm = Boot(src, VmConfig{.name = "dead-link"}, guest::IdleTickProgram(200'000));
  src.RunFor(10 * kSimTicksPerMs);

  migrate::MigrationReport report;
  auto moved = migrate::PreCopyMigrate(src, vm, dst, ChaosOptions(&inj), &report);
  ASSERT_FALSE(moved.ok());
  EXPECT_EQ(moved.status().code(), StatusCode::kAborted);
  EXPECT_EQ(vm->state(), VmState::kRunning);
  EXPECT_TRUE(dst.vms().empty());
  // The report records the robustness cost of the doomed attempt.
  EXPECT_EQ(report.retries, ChaosOptions(nullptr).max_chunk_retries - 1);
  EXPECT_GT(report.pages_resent, 0u);
  // The source is unharmed: it keeps making progress afterwards.
  verify::SetAuditEnabled(true);
  src.RunFor(10 * kSimTicksPerMs);
  verify::SetAuditEnabled(false);
  EXPECT_EQ(vm->state(), VmState::kRunning) << vm->crash_reason().ToString();
}

// Post-copy demand-fetch failure: the link dies right after switchover, so
// the destination can never reach residency. The run limit must fail the
// migration cleanly — destination destroyed, source resumed.
TEST(ChaosTest, PostCopyLinkDownHitsRunLimitAndRollsBack) {
  fault::FaultPlan plan;
  // Op 0 on the migrate link is the machine-state chunk (source side); every
  // transfer after it — background pushes and demand fetches — is lost.
  fault::FaultEvent e;
  e.site = kLinkSite;
  e.kind = fault::FaultKind::kFrameDrop;
  e.first_op = 1;
  plan.Add(e);
  fault::FaultInjector inj(plan);

  Host src, dst;
  Vm* vm = Boot(src, VmConfig{.name = "pc-dead"},
                guest::PatternFillProgram(96, 16, 7));
  src.RunFor(10 * kSimTicksPerMs);

  migrate::MigrateOptions options = ChaosOptions(&inj);
  options.postcopy_run_limit = 300 * kSimTicksPerMs;
  migrate::MigrationReport report;
  auto moved = migrate::PostCopyMigrate(src, vm, dst, options, &report);
  ASSERT_FALSE(moved.ok());
  EXPECT_EQ(moved.status().code(), StatusCode::kAborted);
  EXPECT_EQ(report.timeouts, 1u);
  EXPECT_GT(report.retries, 0u);  // the fetches kept trying until the limit
  EXPECT_EQ(vm->state(), VmState::kRunning);
  EXPECT_TRUE(dst.vms().empty());
  // The rolled-back source still audits clean.
  verify::SetAuditEnabled(true);
  src.RunFor(5 * kSimTicksPerMs);
  verify::SetAuditEnabled(false);
  EXPECT_EQ(vm->state(), VmState::kRunning) << vm->crash_reason().ToString();
}

// Round timeouts keep rounds bounded and carry the remainder forward; the
// migration still converges and the report counts the expiries.
TEST(ChaosTest, RoundTimeoutCarriesRemainderForward) {
  Host src, dst;
  Vm* vm = Boot(src, VmConfig{.name = "slow"}, guest::IdleTickProgram(200'000));
  src.RunFor(10 * kSimTicksPerMs);

  migrate::MigrateOptions options;  // fault-free, 1 Gb/s default link
  options.chunk_pages = 16;
  options.skip_zero_pages = false;         // full 4 KiB per page: slow rounds
  options.round_timeout = kSimTicksPerMs;  // ~30 pages of wire time per round
  migrate::MigrationReport report;
  auto moved = migrate::PreCopyMigrate(src, vm, dst, options, &report);
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  EXPECT_GT(report.timeouts, 0u);
  EXPECT_GT(report.rounds, 1u);
  EXPECT_EQ(RamDigest(*vm), RamDigest(**moved));
}

// ---------------------------------------------------------------------------
// SMP chaos: the same seeded fault plans, but the workload is a 4-vCPU guest
// running its IPI/TLB-shootdown gauntlet while the migration fights the link.
// On top of the single-vCPU oracles this adds a liveness oracle: whichever VM
// survives the scenario — the destination on success, the rolled-back source
// on abort — must still finish the gauntlet and reach its shutdown hypercall
// with every shootdown accounted for. A migration that drops a doorbell or an
// ack word leaves a vCPU spinning forever and fails the run-limit instead.
// ---------------------------------------------------------------------------

struct SmpChaosOutcome {
  bool ok = false;
  StatusCode code = StatusCode::kOk;
  migrate::MigrationReport report;
  uint32_t progress = 0;
  uint32_t end_digest = 0;
  uint64_t shootdowns = 0;
  uint64_t ipis_sent = 0;

  bool operator==(const SmpChaosOutcome& other) const {
    return ok == other.ok && code == other.code && report == other.report &&
           progress == other.progress && end_digest == other.end_digest &&
           shootdowns == other.shootdowns && ipis_sent == other.ipis_sent;
  }
};

SmpChaosOutcome RunSmpChaos(uint64_t seed) {
  fault::ChaosProfile profile;
  profile.link_site = kLinkSite;
  profile.host_site = kHostSite;
  profile.horizon = 100 * kSimTicksPerMs;
  fault::FaultInjector inj(fault::FaultPlan::Random(seed, profile));

  HostConfig hc;
  hc.num_pcpus = 4;
  Host src(hc), dst(hc);
  src.SetFaultInjector(&inj, kHostSite);

  guest::SmpLockParams params;
  params.num_vcpus = 4;
  params.lock_iters = 64;
  params.shootdown_rounds = 20;
  std::string prog = guest::SmpMcsLockProgram(params);
  auto image = guest::Build(prog);
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  uint32_t progress_addr = *guest::ProgressAddress(*image);

  VmConfig cfg;
  cfg.name = "smp-chaos";
  cfg.ram_bytes = 8u << 20;
  cfg.num_vcpus = 4;
  cfg.paging_mode = mmu::PagingMode::kNested;
  Vm* vm = Boot(src, cfg, prog);
  src.RunFor(4 * kSimTicksPerMs);  // migration lands inside the gauntlet
  EXPECT_EQ(vm->state(), VmState::kRunning) << "seed " << seed;

  migrate::MigrateOptions options = ChaosOptions(&inj);
  SmpChaosOutcome out;
  migrate::MigrationReport report;
  auto moved = migrate::PreCopyMigrate(src, vm, dst, options, &report);
  out.ok = moved.ok();
  out.code = moved.status().code();
  out.report = report;

  const uint32_t want_progress = params.num_vcpus * params.lock_iters;
  const uint64_t expected_events =
      static_cast<uint64_t>(params.shootdown_rounds) * (params.num_vcpus - 1);
  if (moved.ok()) {
    // Fidelity at switchover, then liveness on the destination: the restored
    // machine must carry the whole IPI protocol state across the wire.
    EXPECT_EQ(vm->state(), VmState::kPaused) << "seed " << seed;
    EXPECT_EQ(RamDigest(*vm), RamDigest(**moved)) << "seed " << seed;
    EXPECT_TRUE(dst.RunUntilVmStops(*moved, 10 * kSimTicksPerSec))
        << "seed " << seed << ": destination never stopped";
    EXPECT_EQ((*moved)->state(), VmState::kShutdown)
        << "seed " << seed << ": " << (*moved)->crash_reason().ToString();
    out.progress = (*moved)->memory().ReadU32(progress_addr).value_or(0);
    cpu::VcpuStats total = vm->TotalStats();
    cpu::VcpuStats dst_total = (*moved)->TotalStats();
    out.shootdowns = total.shootdowns + dst_total.shootdowns;
    out.ipis_sent = total.ipis_sent + dst_total.ipis_sent;
    out.end_digest = RamDigest(**moved);
  } else {
    // Atomicity + liveness on the rolled-back source: the abort may not leave
    // a vCPU stuck on an ack from a half-delivered shootdown.
    EXPECT_EQ(out.code, StatusCode::kAborted)
        << "seed " << seed << ": " << moved.status().ToString();
    EXPECT_EQ(vm->state(), VmState::kRunning) << "seed " << seed;
    EXPECT_TRUE(dst.vms().empty()) << "half-VM left behind, seed " << seed;
    verify::SetAuditEnabled(true);
    src.RunFor(2 * kSimTicksPerMs);
    verify::SetAuditEnabled(false);
    EXPECT_TRUE(src.RunUntilVmStops(vm, 10 * kSimTicksPerSec))
        << "seed " << seed << ": source never stopped after rollback";
    EXPECT_EQ(vm->state(), VmState::kShutdown)
        << "seed " << seed << ": " << vm->crash_reason().ToString();
    verify::AuditReport frames = src.AuditFrameAccounting();
    EXPECT_TRUE(frames.ok()) << "seed " << seed << ":\n" << frames.ToString();
    out.progress = vm->memory().ReadU32(progress_addr).value_or(0);
    cpu::VcpuStats total = vm->TotalStats();
    out.shootdowns = total.shootdowns;
    out.ipis_sent = total.ipis_sent;
    out.end_digest = RamDigest(*vm);
  }
  // Either way the gauntlet finished: all vCPUs graded, every shootdown
  // delivered exactly once across however many hosts the VM lived on.
  EXPECT_EQ(out.progress, want_progress) << "seed " << seed;
  EXPECT_EQ(out.shootdowns, expected_events) << "seed " << seed;
  EXPECT_EQ(out.ipis_sent, expected_events) << "seed " << seed;
  return out;
}

TEST(ChaosSmpTest, PreCopySweepOnFourVcpuGuestIsDeterministicAndLive) {
  for (uint64_t seed : {uint64_t{9101}, uint64_t{9102}}) {
    SmpChaosOutcome first = RunSmpChaos(seed);
    SmpChaosOutcome second = RunSmpChaos(seed);
    EXPECT_TRUE(first == second) << "non-deterministic replay, seed " << seed;
  }
}

// --- Cluster under chaos ---------------------------------------------------
//
// A two-host cluster with cross-host traffic runs under a seeded random
// fault plan aimed at the fabric wire and at host h0 (pause windows from the
// random plan, plus a scripted crash mid-flight). Checkpoints are taken
// before the crash so every casualty has a respawn template. Oracles:
//
//  * Determinism: the same seed replays to a bit-identical fleet — same
//    guests on the same hosts with the same RAM digests and stats, same
//    fabric counters — faults included.
//  * Conservation: no guest is lost; every crash victim respawns elsewhere.

struct ClusterChaosOutcome {
  std::vector<std::string> guests;  // "name@host state digest insns", sorted
  cluster::Fabric::Stats fabric;
  cluster::ClusterStats stats;
  bool h0_failed = false;
  SimTime end = 0;

  bool operator==(const ClusterChaosOutcome&) const = default;
};

ClusterChaosOutcome RunClusterChaos(uint64_t seed) {
  constexpr char kWireSite[] = "fabric:wire";
  constexpr char kCrashSite[] = "h0:host";

  cluster::ClusterConfig cc;
  cc.worker_threads = 0;
  cc.cpu_overcommit = 8.0;
  cc.drs.interval = 4 * kSimTicksPerMs;
  cluster::Cluster cl(cc);
  Host* h0 = cl.AddHost(HostConfig{.name = "h0", .num_pcpus = 2});
  Host* h1 = cl.AddHost(HostConfig{.name = "h1", .num_pcpus = 2});

  fault::ChaosProfile profile;
  profile.link_site = kWireSite;
  profile.host_site = kCrashSite;
  profile.horizon = 20 * kSimTicksPerMs;
  fault::FaultPlan plan = fault::FaultPlan::Random(seed, profile);
  plan.AddHostCrash(kCrashSite, 12 * kSimTicksPerMs);
  fault::FaultInjector inj(plan);
  cl.fabric().SetFaultInjector(&inj, kWireSite);
  h0->SetFaultInjector(&inj, kCrashSite);

  auto boot = [&](VmConfig config, const std::string& source, Host* pin) {
    auto image = guest::Build(source);
    EXPECT_TRUE(image.ok()) << image.status().ToString();
    auto vm = cl.CreateVm(std::move(config), pin);
    EXPECT_TRUE(vm.ok()) << vm.status().ToString();
    EXPECT_TRUE((*vm)->LoadImage(*image).ok());
  };
  std::vector<std::string> names;
  boot(VmConfig{.name = "burn"}, guest::ComputeProgram(0), nullptr);
  names.push_back("burn");
  std::string idle = guest::IdleTickProgram(500'000);
  for (int i = 0; i < 5; ++i) {
    std::string name = "idle" + std::to_string(i);
    boot(VmConfig{.name = name}, idle, nullptr);
    names.push_back(name);
  }
  guest::NetParams np;
  np.peer_mac = 2;
  np.payload_bytes = 64;
  np.iterations = 0;
  VmConfig ping{.name = "ping"};
  ping.net_model = core::IoModel::kParavirt;
  ping.mac = 1;
  boot(ping, guest::VirtioNetPingProgram(np), h0);  // pinned on the doomed host
  names.push_back("ping");
  VmConfig echo{.name = "echo"};
  echo.net_model = core::IoModel::kParavirt;
  echo.mac = 2;
  boot(echo, guest::VirtioNetEchoProgram(np.payload_bytes), h1);
  names.push_back("echo");
  std::sort(names.begin(), names.end());

  cl.RunFor(8 * kSimTicksPerMs);
  cl.CheckpointAll();  // respawn templates, taken before the crash at t=12ms
  cl.RunFor(16 * kSimTicksPerMs);

  ClusterChaosOutcome out;
  for (const std::string& name : names) {
    Vm* vm = cl.FindVm(name);
    EXPECT_NE(vm, nullptr) << "seed " << seed << ": guest lost: " << name;
    if (vm == nullptr) {
      continue;
    }
    out.guests.push_back(name + "@" + cl.HostOf(name)->name() + " " +
                         std::to_string(static_cast<int>(vm->state())) + " " +
                         std::to_string(RamDigest(*vm)) + " " +
                         std::to_string(vm->TotalStats().instructions));
  }
  out.fabric = cl.fabric().stats();
  out.stats = cl.stats();
  out.h0_failed = h0->failed();
  out.end = cl.clock().now();
  return out;
}

TEST(ClusterChaosTest, FabricFaultSweepIsDeterministicAndConservesGuests) {
  for (uint64_t seed : {uint64_t{11}, uint64_t{12}, uint64_t{13}}) {
    ClusterChaosOutcome first = RunClusterChaos(seed);
    EXPECT_TRUE(first.h0_failed) << "seed " << seed;
    EXPECT_EQ(first.guests.size(), 8u) << "seed " << seed;
    EXPECT_EQ(first.stats.evacuations_lost, 0u) << "seed " << seed;
    EXPECT_GT(first.stats.evacuations_respawned, 0u) << "seed " << seed;
    ClusterChaosOutcome second = RunClusterChaos(seed);
    EXPECT_TRUE(first == second) << "non-deterministic replay, seed " << seed;
  }
}

}  // namespace
}  // namespace hyperion
