// Network substrate tests: links (bandwidth/latency/serialization) and the
// virtual switch (unicast, broadcast, drops, in-flight detach).

#include <gtest/gtest.h>

#include "src/net/network.h"
#include "tests/test_phase.h"

namespace hyperion::net {
namespace {

class RecordingSink : public FrameSink {
 public:
  void OnFrame(const SerialPhase& ph, const Frame& frame) override { (void)ph; frames.push_back(frame); }
  std::vector<Frame> frames;
};

Frame MakeFrame(MacAddr src, MacAddr dst, size_t payload = 100) {
  Frame f;
  f.src = src;
  f.dst = dst;
  f.payload.assign(payload, 0xAB);
  return f;
}

TEST(LinkParamsTest, TransmitTimeScalesWithSize) {
  LinkParams p;
  p.bandwidth_bps = 1'000'000'000;  // 1 Gb/s
  // 1250 bytes = 10^4 bits at 10^9 bps = 10 us = 10000 cycles.
  EXPECT_EQ(p.TransmitTime(1250), 10000u);
  EXPECT_EQ(p.TransmitTime(2500), 2 * p.TransmitTime(1250));
}

TEST(LinkParamsTest, TransmitTimeIsExactForHugeTransfers) {
  // At 8 Gb/s one byte costs exactly one cycle, so TransmitTime must be the
  // identity for every size — including past 2^53, where the old
  // double-based arithmetic rounded the product and drifted.
  LinkParams p;
  p.bandwidth_bps = 8'000'000'000ull;
  EXPECT_EQ(p.TransmitTime(1), 1u);
  EXPECT_EQ(p.TransmitTime((1ull << 53) + 1), (1ull << 53) + 1);
  EXPECT_EQ(p.TransmitTime((1ull << 60) + 12345), (1ull << 60) + 12345);
  // Strict monotonicity survives at the scale where doubles collapse
  // adjacent integers.
  EXPECT_LT(p.TransmitTime(1ull << 53), p.TransmitTime((1ull << 53) + 1));
}

TEST(LinkTest, TransferCompletesAfterLatencyPlusTransmit) {
  SimClock clock;
  LinkParams p;
  p.bandwidth_bps = 1'000'000'000;
  p.latency = 500;
  Link link(&clock, p);

  bool done = false;
  SimTime at = link.Transfer(TestPhase(), 1250, [&] { done = true; });
  EXPECT_EQ(at, 10000u + 500u);
  clock.RunUntil(TestPhase(), at - 1);
  EXPECT_FALSE(done);
  clock.RunUntil(TestPhase(), at);
  EXPECT_TRUE(done);
  EXPECT_EQ(link.bytes_carried(), 1250u);
}

TEST(LinkTest, BackToBackTransfersSerialize) {
  SimClock clock;
  LinkParams p;
  p.bandwidth_bps = 1'000'000'000;
  p.latency = 0;
  Link link(&clock, p);
  SimTime first = link.ScheduleTransfer(1250);
  SimTime second = link.ScheduleTransfer(1250);
  EXPECT_EQ(first, 10000u);
  EXPECT_EQ(second, 20000u);  // queued behind the first
}

TEST(SwitchTest, UnicastDelivery) {
  SimClock clock;
  VirtualSwitch sw(&clock);
  RecordingSink a, b;
  ASSERT_TRUE(sw.Attach(TestPhase(), 1, &a).ok());
  ASSERT_TRUE(sw.Attach(TestPhase(), 2, &b).ok());

  sw.Send(TestPhase(), MakeFrame(1, 2));
  clock.RunAll(TestPhase());
  EXPECT_EQ(b.frames.size(), 1u);
  EXPECT_TRUE(a.frames.empty());
  EXPECT_EQ(b.frames[0].src, 1u);
  EXPECT_EQ(sw.stats().frames_delivered, 1u);
}

TEST(SwitchTest, BroadcastSkipsSender) {
  SimClock clock;
  VirtualSwitch sw(&clock);
  RecordingSink a, b, c;
  ASSERT_TRUE(sw.Attach(TestPhase(), 1, &a).ok());
  ASSERT_TRUE(sw.Attach(TestPhase(), 2, &b).ok());
  ASSERT_TRUE(sw.Attach(TestPhase(), 3, &c).ok());

  sw.Send(TestPhase(), MakeFrame(1, kBroadcast));
  clock.RunAll(TestPhase());
  EXPECT_TRUE(a.frames.empty());
  EXPECT_EQ(b.frames.size(), 1u);
  EXPECT_EQ(c.frames.size(), 1u);
}

TEST(SwitchTest, UnknownDestinationDropped) {
  SimClock clock;
  VirtualSwitch sw(&clock);
  RecordingSink a;
  ASSERT_TRUE(sw.Attach(TestPhase(), 1, &a).ok());
  sw.Send(TestPhase(), MakeFrame(1, 99));
  clock.RunAll(TestPhase());
  EXPECT_EQ(sw.stats().frames_dropped, 1u);
}

TEST(SwitchTest, OversizedFrameDropped) {
  SimClock clock;
  VirtualSwitch sw(&clock);
  RecordingSink a;
  ASSERT_TRUE(sw.Attach(TestPhase(), 1, &a).ok());
  sw.Send(TestPhase(), MakeFrame(2, 1, kMaxFrameBytes + 1));
  clock.RunAll(TestPhase());
  EXPECT_EQ(sw.stats().frames_dropped, 1u);
  EXPECT_TRUE(a.frames.empty());
}

TEST(SwitchTest, DuplicateAttachRejected) {
  SimClock clock;
  VirtualSwitch sw(&clock);
  RecordingSink a, b;
  ASSERT_TRUE(sw.Attach(TestPhase(), 1, &a).ok());
  EXPECT_EQ(sw.Attach(TestPhase(), 1, &b).code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(sw.Attach(TestPhase(), kBroadcast, &b).ok());
}

TEST(SwitchTest, DetachInFlightDropsSafely) {
  SimClock clock;
  VirtualSwitch sw(&clock);
  RecordingSink a, b;
  ASSERT_TRUE(sw.Attach(TestPhase(), 1, &a).ok());
  ASSERT_TRUE(sw.Attach(TestPhase(), 2, &b).ok());
  sw.Send(TestPhase(), MakeFrame(1, 2));
  ASSERT_TRUE(sw.Detach(TestPhase(), 2).ok());  // before delivery fires
  clock.RunAll(TestPhase());                  // must not crash
  EXPECT_TRUE(b.frames.empty());
  EXPECT_EQ(sw.stats().frames_dropped, 1u);
}

TEST(SwitchTest, DeliveryRespectsLinkTiming) {
  SimClock clock;
  VirtualSwitch sw(&clock);
  RecordingSink slow_sink;
  LinkParams slow;
  slow.bandwidth_bps = 1'000'000;  // 1 Mb/s
  slow.latency = 1000;
  ASSERT_TRUE(sw.Attach(TestPhase(), 1, &slow_sink, slow).ok());

  sw.Send(TestPhase(), MakeFrame(2, 1, 1000));
  clock.RunUntil(TestPhase(), 1000);
  EXPECT_TRUE(slow_sink.frames.empty());  // still in flight
  clock.RunAll(TestPhase());
  EXPECT_EQ(slow_sink.frames.size(), 1u);
  // ~(1018 bytes * 8) / 1e6 bps ~= 8.1 ms.
  EXPECT_GT(clock.now(), 8 * kSimTicksPerMs);
}

TEST(SwitchTest, ManyFramesKeepOrderPerPort) {
  SimClock clock;
  VirtualSwitch sw(&clock);
  RecordingSink a;
  ASSERT_TRUE(sw.Attach(TestPhase(), 1, &a).ok());
  for (uint32_t i = 0; i < 10; ++i) {
    Frame f = MakeFrame(2, 1, 64);
    f.payload[0] = static_cast<uint8_t>(i);
    sw.Send(TestPhase(), std::move(f));
  }
  clock.RunAll(TestPhase());
  ASSERT_EQ(a.frames.size(), 10u);
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a.frames[i].payload[0], i);  // FIFO per link
  }
}

}  // namespace
}  // namespace hyperion::net
