// Network substrate tests: links (bandwidth/latency/serialization) and the
// virtual switch (unicast, broadcast, drops, in-flight detach).

#include <gtest/gtest.h>

#include <cstring>

#include "src/fault/fault.h"
#include "src/mem/frame_pool.h"
#include "src/net/network.h"
#include "tests/test_phase.h"

namespace hyperion::net {
namespace {

class RecordingSink : public FrameSink {
 public:
  void OnFrame(const SerialPhase& ph, const Frame& frame) override { (void)ph; frames.push_back(frame); }
  std::vector<Frame> frames;
};

Frame MakeFrame(MacAddr src, MacAddr dst, size_t payload = 100) {
  Frame f;
  f.src = src;
  f.dst = dst;
  f.payload.Assign(payload, 0xAB);
  return f;
}

TEST(LinkParamsTest, TransmitTimeScalesWithSize) {
  LinkParams p;
  p.bandwidth_bps = 1'000'000'000;  // 1 Gb/s
  // 1250 bytes = 10^4 bits at 10^9 bps = 10 us = 10000 cycles.
  EXPECT_EQ(p.TransmitTime(1250), 10000u);
  EXPECT_EQ(p.TransmitTime(2500), 2 * p.TransmitTime(1250));
}

TEST(LinkParamsTest, TransmitTimeIsExactForHugeTransfers) {
  // At 8 Gb/s one byte costs exactly one cycle, so TransmitTime must be the
  // identity for every size — including past 2^53, where the old
  // double-based arithmetic rounded the product and drifted.
  LinkParams p;
  p.bandwidth_bps = 8'000'000'000ull;
  EXPECT_EQ(p.TransmitTime(1), 1u);
  EXPECT_EQ(p.TransmitTime((1ull << 53) + 1), (1ull << 53) + 1);
  EXPECT_EQ(p.TransmitTime((1ull << 60) + 12345), (1ull << 60) + 12345);
  // Strict monotonicity survives at the scale where doubles collapse
  // adjacent integers.
  EXPECT_LT(p.TransmitTime(1ull << 53), p.TransmitTime((1ull << 53) + 1));
}

TEST(LinkTest, TransferCompletesAfterLatencyPlusTransmit) {
  SimClock clock;
  LinkParams p;
  p.bandwidth_bps = 1'000'000'000;
  p.latency = 500;
  Link link(&clock, p);

  bool done = false;
  SimTime at = link.Transfer(TestPhase(), 1250, [&] { done = true; });
  EXPECT_EQ(at, 10000u + 500u);
  clock.RunUntil(TestPhase(), at - 1);
  EXPECT_FALSE(done);
  clock.RunUntil(TestPhase(), at);
  EXPECT_TRUE(done);
  EXPECT_EQ(link.bytes_carried(), 1250u);
}

TEST(LinkTest, BackToBackTransfersSerialize) {
  SimClock clock;
  LinkParams p;
  p.bandwidth_bps = 1'000'000'000;
  p.latency = 0;
  Link link(&clock, p);
  SimTime first = link.ScheduleTransfer(1250);
  SimTime second = link.ScheduleTransfer(1250);
  EXPECT_EQ(first, 10000u);
  EXPECT_EQ(second, 20000u);  // queued behind the first
}

TEST(SwitchTest, UnicastDelivery) {
  SimClock clock;
  VirtualSwitch sw(&clock);
  RecordingSink a, b;
  ASSERT_TRUE(sw.Attach(TestPhase(), 1, &a).ok());
  ASSERT_TRUE(sw.Attach(TestPhase(), 2, &b).ok());

  sw.Send(TestPhase(), MakeFrame(1, 2));
  clock.RunAll(TestPhase());
  EXPECT_EQ(b.frames.size(), 1u);
  EXPECT_TRUE(a.frames.empty());
  EXPECT_EQ(b.frames[0].src, 1u);
  EXPECT_EQ(sw.stats().frames_delivered, 1u);
}

TEST(SwitchTest, BroadcastSkipsSender) {
  SimClock clock;
  VirtualSwitch sw(&clock);
  RecordingSink a, b, c;
  ASSERT_TRUE(sw.Attach(TestPhase(), 1, &a).ok());
  ASSERT_TRUE(sw.Attach(TestPhase(), 2, &b).ok());
  ASSERT_TRUE(sw.Attach(TestPhase(), 3, &c).ok());

  sw.Send(TestPhase(), MakeFrame(1, kBroadcast));
  clock.RunAll(TestPhase());
  EXPECT_TRUE(a.frames.empty());
  EXPECT_EQ(b.frames.size(), 1u);
  EXPECT_EQ(c.frames.size(), 1u);
}

TEST(SwitchTest, UnknownDestinationDropped) {
  SimClock clock;
  VirtualSwitch sw(&clock);
  RecordingSink a;
  ASSERT_TRUE(sw.Attach(TestPhase(), 1, &a).ok());
  sw.Send(TestPhase(), MakeFrame(1, 99));
  clock.RunAll(TestPhase());
  EXPECT_EQ(sw.stats().frames_dropped, 1u);
}

TEST(SwitchTest, OversizedFrameDropped) {
  SimClock clock;
  VirtualSwitch sw(&clock);
  RecordingSink a;
  ASSERT_TRUE(sw.Attach(TestPhase(), 1, &a).ok());
  sw.Send(TestPhase(), MakeFrame(2, 1, kMaxFrameBytes + 1));
  clock.RunAll(TestPhase());
  EXPECT_EQ(sw.stats().frames_dropped, 1u);
  EXPECT_TRUE(a.frames.empty());
}

TEST(SwitchTest, DuplicateAttachRejected) {
  SimClock clock;
  VirtualSwitch sw(&clock);
  RecordingSink a, b;
  ASSERT_TRUE(sw.Attach(TestPhase(), 1, &a).ok());
  EXPECT_EQ(sw.Attach(TestPhase(), 1, &b).code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(sw.Attach(TestPhase(), kBroadcast, &b).ok());
}

TEST(SwitchTest, DetachInFlightDropsSafely) {
  SimClock clock;
  VirtualSwitch sw(&clock);
  RecordingSink a, b;
  ASSERT_TRUE(sw.Attach(TestPhase(), 1, &a).ok());
  ASSERT_TRUE(sw.Attach(TestPhase(), 2, &b).ok());
  sw.Send(TestPhase(), MakeFrame(1, 2));
  ASSERT_TRUE(sw.Detach(TestPhase(), 2).ok());  // before delivery fires
  clock.RunAll(TestPhase());                  // must not crash
  EXPECT_TRUE(b.frames.empty());
  EXPECT_EQ(sw.stats().frames_dropped, 1u);
}

TEST(SwitchTest, DeliveryRespectsLinkTiming) {
  SimClock clock;
  VirtualSwitch sw(&clock);
  RecordingSink slow_sink;
  LinkParams slow;
  slow.bandwidth_bps = 1'000'000;  // 1 Mb/s
  slow.latency = 1000;
  ASSERT_TRUE(sw.Attach(TestPhase(), 1, &slow_sink, slow).ok());

  sw.Send(TestPhase(), MakeFrame(2, 1, 1000));
  clock.RunUntil(TestPhase(), 1000);
  EXPECT_TRUE(slow_sink.frames.empty());  // still in flight
  clock.RunAll(TestPhase());
  EXPECT_EQ(slow_sink.frames.size(), 1u);
  // ~(1018 bytes * 8) / 1e6 bps ~= 8.1 ms.
  EXPECT_GT(clock.now(), 8 * kSimTicksPerMs);
}

TEST(SwitchTest, ManyFramesKeepOrderPerPort) {
  SimClock clock;
  VirtualSwitch sw(&clock);
  RecordingSink a;
  ASSERT_TRUE(sw.Attach(TestPhase(), 1, &a).ok());
  for (uint32_t i = 0; i < 10; ++i) {
    Frame f = MakeFrame(2, 1, 64);
    f.payload.set_byte(0, static_cast<uint8_t>(i));
    sw.Send(TestPhase(), std::move(f));
  }
  clock.RunAll(TestPhase());
  ASSERT_EQ(a.frames.size(), 10u);
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a.frames[i].payload[0], i);  // FIFO per link
  }
}

// ---------------------------------------------------------------------------
// Burst delivery (TransmitBurst coalescing) and zero-copy payload handoff
// ---------------------------------------------------------------------------

// Records how frames arrived: per-frame OnFrame vs coalesced OnFrameBurst.
class BurstRecordingSink : public FrameSink {
 public:
  void OnFrame(const SerialPhase&, const Frame& f) override {
    frames.push_back(f);
    burst_sizes.push_back(1);
  }
  void OnFrameBurst(const SerialPhase&, std::span<const Frame> fs) override {
    for (const Frame& f : fs) {
      frames.push_back(f);
    }
    burst_sizes.push_back(fs.size());
  }
  std::vector<Frame> frames;
  std::vector<size_t> burst_sizes;
};

TEST(SwitchBurstTest, SameDestinationRunsCoalesce) {
  SimClock clock;
  VirtualSwitch sw(&clock);
  BurstRecordingSink a;
  BurstRecordingSink b;
  ASSERT_TRUE(sw.Attach(TestPhase(), 1, &a).ok());
  ASSERT_TRUE(sw.Attach(TestPhase(), 2, &b).ok());

  // Runs: [1,1,1] burst, [2] single (exact legacy path), [1,1] burst.
  std::vector<Frame> batch;
  const MacAddr dsts[6] = {1, 1, 1, 2, 1, 1};
  for (uint32_t i = 0; i < 6; ++i) {
    Frame f = MakeFrame(3, dsts[i], 64);
    f.payload.set_byte(0, static_cast<uint8_t>(i));
    batch.push_back(std::move(f));
  }
  SimTime clear = sw.TransmitBurst(TestPhase(), std::move(batch));
  EXPECT_GT(clear, 0u);  // backpressure signal: egress busy-until

  clock.RunAll(TestPhase());
  EXPECT_EQ(sw.stats().frames_sent, 6u);
  EXPECT_EQ(sw.stats().frames_delivered, 6u);
  EXPECT_EQ(sw.stats().bursts_delivered, 2u);
  ASSERT_EQ(a.burst_sizes, (std::vector<size_t>{3, 2}));
  EXPECT_EQ(b.burst_sizes, (std::vector<size_t>{1}));
  // Order within the port is the transmit order.
  ASSERT_EQ(a.frames.size(), 5u);
  const uint8_t want[5] = {0, 1, 2, 4, 5};
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a.frames[i].payload[0], want[i]);
  }
}

TEST(SwitchBurstTest, RunsChunkAtMaxBurstFrames) {
  SimClock clock;
  VirtualSwitch sw(&clock);
  BurstRecordingSink a;
  ASSERT_TRUE(sw.Attach(TestPhase(), 1, &a).ok());

  std::vector<Frame> batch;
  for (size_t i = 0; i < kMaxBurstFrames + 10; ++i) {
    batch.push_back(MakeFrame(2, 1, 64));
  }
  sw.TransmitBurst(TestPhase(), std::move(batch));
  clock.RunAll(TestPhase());

  // One run longer than the cap leaves as two delivery events, so a single
  // commit cannot turn a whole timeslice of traffic into one giant burst.
  EXPECT_EQ(a.burst_sizes, (std::vector<size_t>{kMaxBurstFrames, 10}));
  EXPECT_EQ(sw.stats().frames_delivered, kMaxBurstFrames + 10);
  EXPECT_EQ(sw.stats().bursts_delivered, 2u);
}

TEST(SwitchBurstTest, DeliverySharesPayloadStorage) {
  SimClock clock;
  VirtualSwitch sw(&clock);
  BurstRecordingSink a;
  ASSERT_TRUE(sw.Attach(TestPhase(), 1, &a).ok());

  std::vector<Frame> batch;
  for (int i = 0; i < 2; ++i) {
    batch.push_back(MakeFrame(2, 1, 256));
  }
  FrameBuf origin = batch[0].payload;  // handle copy, not a byte copy
  const uint8_t* storage = origin.chunk(0).data();
  sw.TransmitBurst(TestPhase(), std::move(batch));
  clock.RunAll(TestPhase());

  // The frame the sink got is the same storage the sender filled: the only
  // copies on the path are handle refcounts.
  ASSERT_EQ(a.frames.size(), 2u);
  EXPECT_EQ(a.frames[0].payload.chunk(0).data(), storage);
  EXPECT_GE(a.frames[0].payload.use_count(), 2);
}

TEST(SwitchBurstTest, InjectedDropAndDuplicateKeepPoolBalanced) {
  mem::FramePool pool(64);  // outlives the clock: pending events hold handles
  {
    SimClock clock;
    VirtualSwitch sw(&clock);
    BurstRecordingSink a;
    ASSERT_TRUE(sw.Attach(TestPhase(), 1, &a).ok());

    fault::FaultPlan plan;
    fault::FaultEvent drop;
    drop.site = "sw";
    drop.kind = fault::FaultKind::kFrameDrop;
    drop.first_op = 1;
    drop.last_op = 1;
    plan.Add(drop);
    fault::FaultEvent dup;
    dup.site = "sw";
    dup.kind = fault::FaultKind::kFrameDuplicate;
    dup.first_op = 3;
    dup.last_op = 3;
    plan.Add(dup);
    fault::FaultInjector inj(plan);
    sw.SetFault(&inj, "sw");

    std::vector<Frame> batch;
    for (uint32_t i = 0; i < 6; ++i) {
      Frame f;
      f.src = 2;
      f.dst = 1;
      f.payload = FrameBuf::Allocate(&pool, 600);
      for (size_t c = 0; c < f.payload.num_chunks(); ++c) {
        std::span<uint8_t> span = f.payload.chunk(c);
        std::memset(span.data(), static_cast<int>(i), span.size());
      }
      batch.push_back(std::move(f));
    }
    EXPECT_GT(pool.netbuf_frames(), 0u);

    sw.TransmitBurst(TestPhase(), std::move(batch));
    clock.RunAll(TestPhase());
    EXPECT_EQ(a.frames.size(), 6u);  // 6 sent - 1 dropped + 1 duplicate
    EXPECT_EQ(sw.stats().frames_injected_dropped, 1u);
    EXPECT_EQ(sw.stats().frames_injected_duplicated, 1u);
  }
  // Every handle (burst copies, duplicates, sink copies) released: the pool
  // audit sees no leaked network frames.
  EXPECT_EQ(pool.netbuf_frames(), 0u);
}

}  // namespace
}  // namespace hyperion::net
