// Tests for the verification layer (src/verify):
//  * encode -> decode -> disassemble -> assemble -> re-encode round-trips
//    over every HV32 opcode,
//  * the hvlint static verifier (one accepted and one rejected image per
//    rule, plus acceptance of the builtin guest programs),
//  * the runtime invariant auditors (MMU coherence, frame accounting,
//    virtqueue sanity) including end-to-end Host/Vm hooks.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/asm/assembler.h"
#include "tests/test_phase.h"
#include "src/core/host.h"
#include "src/guest/programs.h"
#include "src/isa/hv32.h"
#include "src/mem/frame_pool.h"
#include "src/mem/guest_memory.h"
#include "src/mmu/virtualizer.h"
#include "src/verify/audit.h"
#include "src/verify/hvlint.h"
#include "src/virtio/virtio.h"

namespace hyperion {
namespace {

using isa::Instruction;
using isa::Opcode;

// ---------------------------------------------------------------------------
// Round-trip: Encode -> Decode -> Disassemble -> Assemble -> same word
// ---------------------------------------------------------------------------

Instruction I(Opcode op, uint8_t rd = 0, uint8_t rs1 = 0, uint8_t rs2 = 0,
              int32_t imm = 0, uint8_t funct = 0) {
  Instruction in;
  in.opcode = op;
  in.rd = rd;
  in.rs1 = rs1;
  in.rs2 = rs2;
  in.imm = imm;
  in.funct = funct;
  return in;
}

// Encodes `in`, decodes the word back (must equal `in` field-for-field),
// renders it to text, assembles that single line at address 0 (so the
// assembler's absolute branch/jal targets coincide with the disassembler's
// pc-relative offsets), and requires the identical word back out.
void ExpectRoundTrip(const Instruction& in) {
  auto word = isa::Encode(in);
  ASSERT_TRUE(word.ok()) << isa::Disassemble(in) << ": " << word.status().ToString();

  Instruction dec = isa::Decode(*word);
  EXPECT_EQ(dec, in) << "decode mismatch for " << isa::Disassemble(in);

  std::string text = isa::Disassemble(dec);
  // `.org 0` pins the instruction at address 0 so the assembler's absolute
  // branch/jal targets equal the disassembler's pc-relative offsets.
  auto image = assembler::Assemble(".org 0\n" + text + "\n");
  ASSERT_TRUE(image.ok()) << "\"" << text << "\": " << image.status().ToString();
  ASSERT_EQ(image->bytes.size(), 4u) << "\"" << text << "\"";
  uint32_t reword = static_cast<uint32_t>(image->bytes[0]) |
                    static_cast<uint32_t>(image->bytes[1]) << 8 |
                    static_cast<uint32_t>(image->bytes[2]) << 16 |
                    static_cast<uint32_t>(image->bytes[3]) << 24;
  EXPECT_EQ(reword, *word) << "\"" << text << "\" reassembled differently";
}

TEST(RoundTripTest, AllRegisterAluOps) {
  for (uint8_t f = 0; f < 16; ++f) {
    ExpectRoundTrip(I(Opcode::kOp, isa::kA0, isa::kA1, isa::kT0, 0, f));
  }
}

TEST(RoundTripTest, AllImmediateAluOps) {
  for (uint8_t f = 0; f < 16; ++f) {
    ExpectRoundTrip(I(Opcode::kOpImm, isa::kA0, isa::kA1, 0, 7, f));
  }
  ExpectRoundTrip(I(Opcode::kOpImm, isa::kSp, isa::kSp, 0, -16,
                    static_cast<uint8_t>(isa::AluOp::kAdd)));
}

TEST(RoundTripTest, UpperImmediates) {
  ExpectRoundTrip(I(Opcode::kLui, isa::kT0, 0, 0, 0));
  ExpectRoundTrip(I(Opcode::kLui, isa::kT0, 0, 0, 1 << 14));
  ExpectRoundTrip(I(Opcode::kLui, isa::kT0, 0, 0, -(1 << 14)));
  ExpectRoundTrip(I(Opcode::kAuipc, isa::kS0, 0, 0, 1 << 14));
}

TEST(RoundTripTest, JumpsAndBranches) {
  ExpectRoundTrip(I(Opcode::kJal, isa::kRa, 0, 0, 0x10));
  ExpectRoundTrip(I(Opcode::kJal, isa::kZero, 0, 0, 0x1000));
  ExpectRoundTrip(I(Opcode::kJal, isa::kRa, 0, 0, -8));
  ExpectRoundTrip(I(Opcode::kJalr, isa::kRa, isa::kT0, 0, 0));
  ExpectRoundTrip(I(Opcode::kJalr, isa::kZero, isa::kRa, 0, 0x10));
  for (uint8_t cond = 0; cond < 6; ++cond) {
    ExpectRoundTrip(I(Opcode::kBranch, 0, isa::kA0, isa::kA1, 8, cond));
  }
  ExpectRoundTrip(I(Opcode::kBranch, 0, isa::kT0, isa::kZero, -4,
                    static_cast<uint8_t>(isa::BranchCond::kNe)));
}

TEST(RoundTripTest, LoadsAndStores) {
  for (Opcode op : {Opcode::kLw, Opcode::kLh, Opcode::kLhu, Opcode::kLb, Opcode::kLbu}) {
    ExpectRoundTrip(I(op, isa::kA0, isa::kSp, 0, 8));
    ExpectRoundTrip(I(op, isa::kA0, isa::kSp, 0, -4));
  }
  for (Opcode op : {Opcode::kSw, Opcode::kSh, Opcode::kSb}) {
    ExpectRoundTrip(I(op, isa::kA0, isa::kSp, 0, 8));
    ExpectRoundTrip(I(op, isa::kT1, isa::kGp, 0, -12));
  }
}

TEST(RoundTripTest, CsrOps) {
  for (Opcode op : {Opcode::kCsrrw, Opcode::kCsrrs, Opcode::kCsrrc}) {
    for (isa::Csr csr : {isa::Csr::kStatus, isa::Csr::kCause, isa::Csr::kEpc,
                         isa::Csr::kTvec, isa::Csr::kCycle, isa::Csr::kHartid}) {
      ExpectRoundTrip(I(op, isa::kA0, isa::kA1, 0, static_cast<int32_t>(csr)));
    }
  }
}

TEST(RoundTripTest, SystemOps) {
  ExpectRoundTrip(I(Opcode::kEcall));
  ExpectRoundTrip(I(Opcode::kEbreak));
  ExpectRoundTrip(I(Opcode::kSret));
  ExpectRoundTrip(I(Opcode::kWfi));
  ExpectRoundTrip(I(Opcode::kHcall));
  ExpectRoundTrip(I(Opcode::kSfence));
  ExpectRoundTrip(I(Opcode::kSfence, 0, isa::kA1));
  ExpectRoundTrip(I(Opcode::kHalt));
}

TEST(RoundTripTest, IllegalWordDecodesToIllegal) {
  EXPECT_EQ(isa::Decode(0xFFFFFFFFu).opcode, Opcode::kIllegal);
  EXPECT_EQ(isa::Disassemble(isa::Decode(0xFFFFFFFFu)), "illegal");
  EXPECT_FALSE(isa::Encode(I(Opcode::kIllegal)).ok());
}

// ---------------------------------------------------------------------------
// hvlint: per-rule accept/reject pairs
// ---------------------------------------------------------------------------

verify::LintReport Lint(const std::string& source) {
  auto image = assembler::Assemble(source);
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  if (!image.ok()) {
    return {};
  }
  return verify::LintImage(*image);
}

bool HasRule(const verify::LintReport& report, std::string_view rule) {
  for (const verify::Diagnostic& d : report.diagnostics) {
    if (d.rule == rule) {
      return true;
    }
  }
  return false;
}

TEST(HvlintTest, AcceptsMinimalProgram) {
  verify::LintReport r = Lint("_start:\n  addi a0, zero, 1\n  halt\n");
  EXPECT_TRUE(r.ok()) << r.ToString();
  EXPECT_EQ(r.reachable_instructions, 2u);
}

TEST(HvlintTest, RejectsIllegalEncoding) {
  verify::LintReport r = Lint("_start:\n  .word 0xffffffff\n  halt\n");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(HasRule(r, "illegal-encoding")) << r.ToString();
}

TEST(HvlintTest, RejectsJumpOutOfRange) {
  EXPECT_TRUE(Lint("_start:\n  j done\n  nop\ndone:\n  halt\n").ok());
  verify::LintReport r = Lint("_start:\n  j 0x4000\n  halt\n");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(HasRule(r, "jump-out-of-range")) << r.ToString();
}

TEST(HvlintTest, RejectsFallthroughOffImage) {
  verify::LintReport r = Lint("_start:\n  addi a0, a0, 1\n");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(HasRule(r, "fallthrough-off-image")) << r.ToString();
}

TEST(HvlintTest, RejectsR0Write) {
  EXPECT_TRUE(Lint("_start:\n  nop\n  halt\n").ok());  // canonical nop exempt
  verify::LintReport r = Lint("_start:\n  add zero, a0, a1\n  halt\n");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(HasRule(r, "r0-write")) << r.ToString();
}

TEST(HvlintTest, RejectsPrivilegedReachableFromUserEntry) {
  // An unprivileged user loop (ecall is legal in user mode) is accepted...
  verify::LintReport ok = Lint(
      "_start:\n  halt\n"
      "user_main:\n  addi a0, zero, 1\n  ecall\n  j user_main\n"
      ".entry user_main, user\n");
  EXPECT_TRUE(ok.ok()) << ok.ToString();

  // ...but a privileged opcode on a user-reachable path is rejected, even
  // though the same instruction is fine from the supervisor entry.
  verify::LintReport bad = Lint(
      "_start:\n  halt\n"
      "user_main:\n  wfi\n  j user_main\n"
      ".entry user_main, user\n");
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(HasRule(bad, "privileged-in-user")) << bad.ToString();

  // CSR access is supervisor-only as well.
  verify::LintReport csr = Lint(
      "_start:\n  halt\n"
      "user_main:\n  csrr a0, cycle\n  j user_main\n"
      ".entry user_main, user\n");
  EXPECT_FALSE(csr.ok());
  EXPECT_TRUE(HasRule(csr, "privileged-in-user")) << csr.ToString();
}

TEST(HvlintTest, RejectsMmioOutsideMappedWindows) {
  // UART data register: inside a mapped window.
  EXPECT_TRUE(Lint("_start:\n  li t0, 0xF0000000\n  sw zero, 0(t0)\n  halt\n").ok());
  // 0xF0005000 is MMIO space but no device window is mapped there.
  verify::LintReport r =
      Lint("_start:\n  li t0, 0xF0005000\n  sw zero, 0(t0)\n  halt\n");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(HasRule(r, "mmio-out-of-window")) << r.ToString();
}

TEST(HvlintTest, RejectsProvablyMisalignedAccess) {
  EXPECT_TRUE(Lint("_start:\n  li t0, 0x2000\n  lw a0, 0(t0)\n  halt\n").ok());
  verify::LintReport r = Lint("_start:\n  li t0, 0x2002\n  lw a0, 0(t0)\n  halt\n");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(HasRule(r, "misaligned-access")) << r.ToString();
}

TEST(HvlintTest, RejectsStackImbalance) {
  EXPECT_TRUE(Lint(
      "_start:\n  li sp, 0x8000\n  call leaf\n  halt\n"
      "leaf:\n  addi sp, sp, -16\n  addi sp, sp, 16\n  ret\n").ok());
  verify::LintReport r = Lint(
      "_start:\n  li sp, 0x8000\n  call leaf\n  halt\n"
      "leaf:\n  addi sp, sp, -16\n  ret\n");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(HasRule(r, "sp-imbalance")) << r.ToString();
}

TEST(HvlintTest, RejectsWriteToReadOnlyCsr) {
  // The canonical read idiom (csrr = csrrs rd, csr, zero) is fine.
  EXPECT_TRUE(Lint("_start:\n  csrr a0, cycle\n  halt\n").ok());
  // A csrrs whose mask may be zero is admitted (conservative direction).
  EXPECT_TRUE(Lint("_start:\n  csrrs a0, hartid, a1\n  halt\n").ok());

  // A full write to a read-only CSR is always lost.
  verify::LintReport w = Lint("_start:\n  csrw cycle, a0\n  halt\n");
  EXPECT_FALSE(w.ok());
  EXPECT_TRUE(HasRule(w, "write-to-readonly-csr")) << w.ToString();

  // So is a csrrs with a provably nonzero mask.
  verify::LintReport s =
      Lint("_start:\n  li t0, 4\n  csrrs a0, hartid, t0\n  halt\n");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(HasRule(s, "write-to-readonly-csr")) << s.ToString();
}

TEST(HvlintTest, WarnsOnWfiWithoutEnabledInterrupts) {
  // Timer armed before parking: the wfi has a self-wake source.
  verify::LintReport timer =
      Lint("_start:\n  li t0, 1000\n  csrw timecmp, t0\n  wfi\n  halt\n");
  EXPECT_FALSE(HasRule(timer, "wfi-without-enabled-interrupts"))
      << timer.ToString();

  // Interrupts enabled with a known constant: accepted.
  verify::LintReport ie =
      Lint("_start:\n  li t0, 1\n  csrw status, t0\n  wfi\n  halt\n");
  EXPECT_FALSE(HasRule(ie, "wfi-without-enabled-interrupts")) << ie.ToString();

  // An unknown STATUS value (read-modify-write) may have enabled IE; the
  // rule only fires on proven facts.
  verify::LintReport rmw = Lint(
      "_start:\n  csrr t0, status\n  ori t0, t0, 1\n  csrw status, t0\n"
      "  wfi\n  halt\n");
  EXPECT_FALSE(HasRule(rmw, "wfi-without-enabled-interrupts")) << rmw.ToString();

  // Cold entry, IE never set, timer never armed: flagged, but as a warning —
  // parking a finished worker forever is a legitimate idiom.
  verify::LintReport r = Lint("_start:\n  wfi\n  halt\n");
  EXPECT_TRUE(HasRule(r, "wfi-without-enabled-interrupts")) << r.ToString();
  EXPECT_TRUE(r.ok()) << "advisory rule must not reject the image";
}

TEST(HvlintTest, DiscoversTrapHandlerBehindTvecWrite) {
  // The handler is never branched to directly; it is only reachable through
  // the trap vector. A bad instruction inside it must still be found.
  verify::LintReport r = Lint(
      "_start:\n  la t0, handler\n  csrw tvec, t0\n  halt\n"
      "handler:\n  add zero, a0, a1\n  sret\n");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(HasRule(r, "r0-write")) << r.ToString();
}

TEST(HvlintTest, VerifyImageGate) {
  auto good = assembler::Assemble("_start:\n  halt\n");
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(verify::VerifyImage(*good).ok());

  auto bad = assembler::Assemble("_start:\n  .word 0xffffffff\n");
  ASSERT_TRUE(bad.ok());
  Status s = verify::VerifyImage(*bad);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("illegal-encoding"), std::string::npos) << s.ToString();
}

TEST(HvlintTest, AcceptsBuiltinGuestPrograms) {
  const struct {
    const char* name;
    std::string source;
  } programs[] = {
      {"hello", guest::HelloProgram("hi\n")},
      {"compute", guest::ComputeProgram(10)},
      {"idle_tick", guest::IdleTickProgram(10'000)},
      {"smp_counter", guest::SmpCounterProgram(4)},
      {"mem_touch", guest::MemTouchProgram({.iterations = 2})},
      {"pt_churn", guest::PtChurnProgram(3)},
      {"dirty_rate", guest::DirtyRateProgram(8, 4)},
      {"pattern_fill", guest::PatternFillProgram(8, 2, 1)},
      {"virtio_blk", guest::VirtioBlkProgram({})},
      {"virtio_net_echo", guest::VirtioNetEchoProgram()},
  };
  for (const auto& p : programs) {
    auto image = guest::Build(p.source);
    ASSERT_TRUE(image.ok()) << p.name << ": " << image.status().ToString();
    verify::LintReport r = verify::LintImage(*image);
    EXPECT_TRUE(r.ok()) << p.name << ":\n" << r.ToString();
    EXPECT_GT(r.reachable_instructions, 0u) << p.name;
  }
}

// ---------------------------------------------------------------------------
// Runtime auditors: MMU coherence
// ---------------------------------------------------------------------------

using isa::Pte;

class MmuAuditTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kRamBytes = 2u << 20;
  static constexpr uint32_t kRoot = 0x80;  // root PT page
  static constexpr uint32_t kL2 = 0x81;    // L2 PT page

  MmuAuditTest() : pool_(2048) {
    auto m = mem::GuestMemory::Create(&pool_, kRamBytes);
    EXPECT_TRUE(m.ok());
    memory_ = std::move(m).value();
  }

  void WritePte(uint32_t table_page, uint32_t index, uint32_t pte) {
    ASSERT_TRUE(memory_->WriteU32((table_page << 12) + index * 4, pte).ok());
  }

  mem::FramePool pool_;
  std::unique_ptr<mem::GuestMemory> memory_;
};

TEST_F(MmuAuditTest, CleanNestedStateAudits) {
  auto virt = mmu::MakeVirtualizer(mmu::PagingMode::kNested, memory_.get());
  auto out = virt->Translate(0x3000, mmu::Access::kLoad, isa::PrivMode::kSupervisor,
                             /*paging=*/false, 0);
  ASSERT_EQ(out.event, mmu::MemEvent::kNone);

  verify::AuditReport report;
  verify::AuditMmuCoherence(*virt, /*paging=*/false, 0, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(MmuAuditTest, DetectsPoisonedTlbEntry) {
  auto virt = mmu::MakeVirtualizer(mmu::PagingMode::kNested, memory_.get());
  ASSERT_EQ(virt->Translate(0x3000, mmu::Access::kLoad, isa::PrivMode::kSupervisor,
                            false, 0).event,
            mmu::MemEvent::kNone);

  // A cached translation whose frame is not what backs the page: the exact
  // staleness the auditor exists to catch.
  mmu::TlbEntry e;
  e.vpn = 5;
  e.gpn = 5;
  e.frame = memory_->FrameForPage(6);  // wrong frame
  e.valid = true;
  virt->tlb().Insert(e);

  verify::AuditReport report;
  verify::AuditMmuCoherence(*virt, false, 0, &report);
  EXPECT_FALSE(report.ok());
}

TEST_F(MmuAuditTest, DetectsWritableEntryOverSharedPage) {
  auto virt = mmu::MakeVirtualizer(mmu::PagingMode::kNested, memory_.get());
  memory_->SetShared(6, true);  // KSM-shared: stores must trap for COW

  mmu::TlbEntry e;
  e.vpn = 6;
  e.gpn = 6;
  e.frame = memory_->FrameForPage(6);
  e.valid = true;
  e.writable = true;  // would let stores bypass the COW break
  virt->tlb().Insert(e);

  verify::AuditReport report;
  verify::AuditMmuCoherence(*virt, false, 0, &report);
  EXPECT_FALSE(report.ok());
}

TEST_F(MmuAuditTest, ShadowDetectsStaleGuestPte) {
  auto virt = mmu::MakeVirtualizer(mmu::PagingMode::kShadow, memory_.get());
  WritePte(kRoot, 0, Pte::Make(kL2, Pte::kValid));
  WritePte(kL2, 5, Pte::Make(0x42, Pte::kValid | Pte::kRead | Pte::kWrite));

  auto out = virt->Translate(0x5123, mmu::Access::kLoad, isa::PrivMode::kSupervisor,
                             /*paging=*/true, kRoot);
  ASSERT_EQ(out.event, mmu::MemEvent::kNone);

  verify::AuditReport clean;
  verify::AuditMmuCoherence(*virt, true, kRoot, &clean);
  EXPECT_TRUE(clean.ok()) << clean.ToString();

  // Rewrite the leaf PTE from the host side, bypassing the write-protect
  // trap that would normally resync the shadow. The shadow entry now maps
  // the old frame.
  WritePte(kL2, 5, Pte::Make(0x43, Pte::kValid | Pte::kRead | Pte::kWrite));

  verify::AuditReport stale;
  verify::AuditMmuCoherence(*virt, true, kRoot, &stale);
  EXPECT_FALSE(stale.ok());
}

TEST_F(MmuAuditTest, ShadowDetectsUnprotectedPageTablePage) {
  auto virt = mmu::MakeVirtualizer(mmu::PagingMode::kShadow, memory_.get());
  WritePte(kRoot, 0, Pte::Make(kL2, Pte::kValid));
  WritePte(kL2, 5, Pte::Make(0x42, Pte::kValid | Pte::kRead));
  ASSERT_EQ(virt->Translate(0x5000, mmu::Access::kLoad, isa::PrivMode::kSupervisor,
                            true, kRoot).event,
            mmu::MemEvent::kNone);
  ASSERT_TRUE(memory_->IsWriteProtected(kRoot));

  // Dropping the write protection silently would let guest PT stores go
  // unnoticed; the auditor must flag the inconsistency.
  memory_->SetWriteProtected(kRoot, false);

  verify::AuditReport report;
  verify::AuditMmuCoherence(*virt, true, kRoot, &report);
  EXPECT_FALSE(report.ok());
}

// ---------------------------------------------------------------------------
// Runtime auditors: frame accounting
// ---------------------------------------------------------------------------

TEST(FrameAuditTest, CleanSpaceAudits) {
  mem::FramePool pool(128);
  auto m = mem::GuestMemory::Create(&pool, 16 * isa::kPageSize);
  ASSERT_TRUE(m.ok());
  verify::AuditReport report;
  verify::AuditFrameAccounting(pool, {m->get()}, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(FrameAuditTest, DetectsRefcountLeak) {
  mem::FramePool pool(128);
  auto m = mem::GuestMemory::Create(&pool, 16 * isa::kPageSize);
  ASSERT_TRUE(m.ok());

  mem::HostFrame f = (*m)->FrameForPage(0);
  pool.AddRef(TestPhase(), f);  // a reference no mapping accounts for

  verify::AuditReport report;
  verify::AuditFrameAccounting(pool, {m->get()}, &report);
  EXPECT_FALSE(report.ok());
  pool.DecRef(TestPhase(), f);
}

TEST(FrameAuditTest, DetectsSharedFrameWithoutCowBit) {
  mem::FramePool pool(128);
  auto m = mem::GuestMemory::Create(&pool, 16 * isa::kPageSize);
  ASSERT_TRUE(m.ok());

  // Map page 1 onto page 0's frame the way KSM does, but "forget" the COW
  // shared bits.
  mem::HostFrame f = (*m)->FrameForPage(0);
  ASSERT_TRUE((*m)->RemapPage(TestPhase(), 1, f).ok());

  verify::AuditReport missing;
  verify::AuditFrameAccounting(pool, {m->get()}, &missing);
  EXPECT_FALSE(missing.ok());

  // With both mappings marked shared the state is a legitimate KSM merge.
  (*m)->SetShared(0, true);
  (*m)->SetShared(1, true);
  verify::AuditReport merged;
  verify::AuditFrameAccounting(pool, {m->get()}, &merged);
  EXPECT_TRUE(merged.ok()) << merged.ToString();
}

// ---------------------------------------------------------------------------
// Runtime auditors: virtqueues
// ---------------------------------------------------------------------------

class VirtQueueAuditTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kDesc = 0x1000;
  static constexpr uint32_t kAvail = 0x2000;
  static constexpr uint32_t kUsed = 0x3000;
  static constexpr uint16_t kSize = 4;

  VirtQueueAuditTest() : pool_(64) {
    auto m = mem::GuestMemory::Create(&pool_, 16 * isa::kPageSize);
    EXPECT_TRUE(m.ok());
    memory_ = std::move(m).value();
    queue_.Configure(kDesc, kAvail, kUsed, kSize);
    queue_.set_ready(true);
  }

  void WriteDesc(uint16_t i, uint32_t gpa, uint32_t len, uint16_t flags,
                 uint16_t next) {
    uint32_t d = kDesc + virtio::kDescBytes * i;
    ASSERT_TRUE(memory_->WriteU32(d, gpa).ok());
    ASSERT_TRUE(memory_->WriteU32(d + 4, len).ok());
    ASSERT_TRUE(memory_->WriteU16(d + 8, flags).ok());
    ASSERT_TRUE(memory_->WriteU16(d + 10, next).ok());
  }

  // Publishes `head` in avail slot 0 and bumps avail idx to 1.
  void PostChain(uint16_t head) {
    ASSERT_TRUE(memory_->WriteU16(kAvail + 4, head).ok());
    ASSERT_TRUE(memory_->WriteU16(kAvail + 2, 1).ok());
  }

  verify::AuditReport Audit() {
    verify::AuditReport report;
    verify::AuditVirtQueue(queue_, *memory_, "q", &report);
    return report;
  }

  mem::FramePool pool_;
  std::unique_ptr<mem::GuestMemory> memory_;
  virtio::VirtQueue queue_;
};

TEST_F(VirtQueueAuditTest, CleanRingAudits) {
  WriteDesc(0, 0x4000, 64, virtio::kDescNext, 1);
  WriteDesc(1, 0x5000, 64, virtio::kDescWrite, 0);
  PostChain(0);
  verify::AuditReport r = Audit();
  EXPECT_TRUE(r.ok()) << r.ToString();
}

TEST_F(VirtQueueAuditTest, NotReadyRingIsSkipped) {
  queue_.set_ready(false);
  PostChain(99);  // garbage everywhere, but the ring is not enabled
  EXPECT_TRUE(Audit().ok());
}

TEST_F(VirtQueueAuditTest, DetectsHeadBeyondRing) {
  PostChain(9);  // >= kSize
  EXPECT_FALSE(Audit().ok());
}

TEST_F(VirtQueueAuditTest, DetectsDescriptorLoop) {
  WriteDesc(0, 0x4000, 16, virtio::kDescNext, 1);
  WriteDesc(1, 0x4000, 16, virtio::kDescNext, 0);  // 0 -> 1 -> 0
  PostChain(0);
  EXPECT_FALSE(Audit().ok());
}

TEST_F(VirtQueueAuditTest, DetectsBufferOutsideRam) {
  WriteDesc(0, 0x00FF0000, 64, 0, 0);  // far past the 64 KiB of RAM
  PostChain(0);
  EXPECT_FALSE(Audit().ok());
}

TEST_F(VirtQueueAuditTest, DetectsRingOutsideRam) {
  queue_.Configure(memory_->ram_size() - 8, kAvail, kUsed, kSize);
  EXPECT_FALSE(Audit().ok());
}

TEST_F(VirtQueueAuditTest, DetectsUsedIndexDivergence) {
  // Guest memory claims 5 completions; the device counter says 0.
  ASSERT_TRUE(memory_->WriteU16(kUsed + 2, 5).ok());
  EXPECT_FALSE(Audit().ok());
}

// ---------------------------------------------------------------------------
// End-to-end: Host/Vm audit hooks
// ---------------------------------------------------------------------------

class RuntimeAuditTest : public ::testing::Test {
 protected:
  void SetUp() override { verify::SetAuditEnabled(true); }
  void TearDown() override { verify::SetAuditEnabled(false); }
};

TEST_F(RuntimeAuditTest, SetAuditEnabledOverridesEnvironment) {
  EXPECT_TRUE(verify::AuditEnabled());
  verify::SetAuditEnabled(false);
  EXPECT_FALSE(verify::AuditEnabled());
  verify::SetAuditEnabled(true);
  EXPECT_TRUE(verify::AuditEnabled());
}

TEST_F(RuntimeAuditTest, CleanGuestPassesVmAndHostAudits) {
  core::Host host;
  auto image = guest::Build(guest::HelloProgram("audited\n"));
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  auto vm = host.CreateVm(core::VmConfig{.name = "audited"});
  ASSERT_TRUE(vm.ok()) << vm.status().ToString();
  ASSERT_TRUE((*vm)->LoadImage(*image).ok());

  // With auditing on, every slice boundary runs the invariant checks; a
  // violation would crash the VM instead of letting it shut down cleanly.
  ASSERT_TRUE(host.RunUntilVmStops(*vm, 10 * kSimTicksPerSec));
  EXPECT_EQ((*vm)->state(), core::VmState::kShutdown);

  EXPECT_TRUE(host.AuditFrameAccounting().ok());
  EXPECT_TRUE((*vm)->AuditInvariants().ok());
}

TEST_F(RuntimeAuditTest, HostAuditCatchesInjectedLeak) {
  core::Host host;
  auto image = guest::Build(guest::HelloProgram("leak\n"));
  ASSERT_TRUE(image.ok());
  auto vm = host.CreateVm(core::VmConfig{.name = "leak"});
  ASSERT_TRUE(vm.ok());
  ASSERT_TRUE((*vm)->LoadImage(*image).ok());
  ASSERT_TRUE(host.RunUntilVmStops(*vm, 10 * kSimTicksPerSec));

  mem::GuestMemory& memory = (*vm)->memory();
  mem::HostFrame f = memory.FrameForPage(0);
  memory.pool().AddRef(TestPhase(), f);
  EXPECT_FALSE(host.AuditFrameAccounting().ok());
  memory.pool().DecRef(TestPhase(), f);
  EXPECT_TRUE(host.AuditFrameAccounting().ok());
}

}  // namespace
}  // namespace hyperion
