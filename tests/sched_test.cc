// Scheduler unit tests: credit accounting, weights, caps, priorities,
// round-robin baseline. The scheduler is driven directly (no VMs), except
// the per-pCPU accounting test at the end, which needs a real Host.

#include <gtest/gtest.h>

#include "src/core/host.h"
#include "src/guest/programs.h"
#include "src/sched/scheduler.h"

namespace hyperion::sched {
namespace {

constexpr uint64_t kPeriod = 1'000'000;

// Simulates `rounds` scheduling decisions of `slice` cycles each, returning
// per-entity granted cycles.
std::map<EntityId, uint64_t> Simulate(Scheduler& sched, uint64_t rounds, uint64_t slice) {
  std::map<EntityId, uint64_t> granted;
  SimTime now = 0;
  for (uint64_t i = 0; i < rounds; ++i) {
    EntityId id = sched.PickNext(now);
    if (id == kIdle) {
      now += slice;
      continue;
    }
    granted[id] += slice;
    now += slice;
    sched.Account(id, slice, /*still_runnable=*/true, now);
  }
  return granted;
}

TEST(CreditSchedulerTest, RegistrationRules) {
  auto s = MakeCreditScheduler(1, kPeriod);
  EXPECT_TRUE(s->AddEntity(1, {}).ok());
  EXPECT_EQ(s->AddEntity(1, {}).code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(s->AddEntity(2, {.weight = 0}).ok());
  EXPECT_TRUE(s->RemoveEntity(1).ok());
  EXPECT_EQ(s->RemoveEntity(1).code(), StatusCode::kNotFound);
}

TEST(CreditSchedulerTest, IdleWhenNothingRunnable) {
  auto s = MakeCreditScheduler(1, kPeriod);
  ASSERT_TRUE(s->AddEntity(1, {}).ok());
  EXPECT_EQ(s->PickNext(0), kIdle);
  s->SetRunnable(1, true, 0);
  EXPECT_EQ(s->PickNext(0), 1u);
}

TEST(CreditSchedulerTest, EqualWeightsAlternate) {
  auto s = MakeCreditScheduler(1, kPeriod);
  for (EntityId id : {1u, 2u}) {
    ASSERT_TRUE(s->AddEntity(id, {}).ok());
    s->SetRunnable(id, true, 0);
  }
  auto granted = Simulate(*s, 100, kPeriod / 100);
  EXPECT_NEAR(static_cast<double>(granted[1]), static_cast<double>(granted[2]),
              static_cast<double>(kPeriod) / 20);
}

TEST(CreditSchedulerTest, WeightsGiveProportionalShares) {
  auto s = MakeCreditScheduler(1, kPeriod);
  ASSERT_TRUE(s->AddEntity(1, {.weight = 256}).ok());
  ASSERT_TRUE(s->AddEntity(2, {.weight = 768}).ok());
  s->SetRunnable(1, true, 0);
  s->SetRunnable(2, true, 0);
  auto granted = Simulate(*s, 400, kPeriod / 100);
  double ratio = static_cast<double>(granted[2]) / static_cast<double>(granted[1]);
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 4.0);
}

TEST(CreditSchedulerTest, CapParksEntityWithinPeriod) {
  auto s = MakeCreditScheduler(1, kPeriod);
  ASSERT_TRUE(s->AddEntity(1, {.cap_percent = 10}).ok());
  s->SetRunnable(1, true, 0);

  // The lone entity may only consume 10% of the period even when alone.
  uint64_t slice = kPeriod / 100;
  uint64_t granted = 0;
  SimTime now = 0;
  for (int i = 0; i < 50; ++i) {
    EntityId id = s->PickNext(now);
    now += slice;
    if (id == 1) {
      granted += slice;
      s->Account(1, slice, true, now);
    }
  }
  EXPECT_LE(granted, kPeriod / 10);
  EXPECT_GT(granted, 0u);
}

TEST(CreditSchedulerTest, CapResetsNextPeriod) {
  auto s = MakeCreditScheduler(1, kPeriod);
  ASSERT_TRUE(s->AddEntity(1, {.cap_percent = 10}).ok());
  s->SetRunnable(1, true, 0);
  // Exhaust the cap in period 0.
  EXPECT_EQ(s->PickNext(0), 1u);
  s->Account(1, kPeriod / 10, true, kPeriod / 10);
  EXPECT_EQ(s->PickNext(kPeriod / 10), kIdle);
  // A new period refreshes the allowance.
  EXPECT_EQ(s->PickNext(kPeriod + 1), 1u);
}

TEST(CreditSchedulerTest, UnderPriorityBeatsOver) {
  auto s = MakeCreditScheduler(1, kPeriod);
  ASSERT_TRUE(s->AddEntity(1, {}).ok());
  ASSERT_TRUE(s->AddEntity(2, {}).ok());
  s->SetRunnable(1, true, 0);
  // Entity 1 burns through its credits alone.
  EntityId id = s->PickNext(0);
  ASSERT_EQ(id, 1u);
  s->Account(1, kPeriod, true, 10);  // far over budget -> OVER priority

  // Entity 2 wakes with fresh credits: it must preempt in the pick order.
  s->SetRunnable(2, true, 10);
  EXPECT_EQ(s->PickNext(10), 2u);
}

TEST(CreditSchedulerTest, BlockedEntityNotPicked) {
  auto s = MakeCreditScheduler(1, kPeriod);
  ASSERT_TRUE(s->AddEntity(1, {}).ok());
  s->SetRunnable(1, true, 0);
  s->SetRunnable(1, false, 0);
  EXPECT_EQ(s->PickNext(0), kIdle);
}

TEST(CreditSchedulerTest, StatsTrackRunsAndCycles) {
  auto s = MakeCreditScheduler(1, kPeriod);
  ASSERT_TRUE(s->AddEntity(1, {}).ok());
  s->SetRunnable(1, true, 0);
  ASSERT_EQ(s->PickNext(5), 1u);
  s->Account(1, 1000, false, 1005);
  const EntityStats& st = s->stats().at(1);
  EXPECT_EQ(st.runs, 1u);
  EXPECT_EQ(st.cpu_cycles, 1000u);
  EXPECT_EQ(st.total_wait, 5u);
}

TEST(CreditSchedulerTest, BoostedWakerPreemptsPickOrder) {
  auto s = MakeCreditScheduler(1, kPeriod);
  ASSERT_TRUE(s->AddEntity(1, {}).ok());  // CPU hog
  ASSERT_TRUE(s->AddEntity(2, {}).ok());  // sleeper (interactive)
  s->SetRunnable(1, true, 0);

  // The hog runs a couple of slices, staying ahead in the FIFO.
  ASSERT_EQ(s->PickNext(0), 1u);
  s->Account(1, 1000, true, 1000);

  // The sleeper wakes with fresh credit: boosted past the hog.
  s->SetRunnable(2, true, 1000);
  EXPECT_EQ(s->PickNext(1000), 2u);
  s->Account(2, 100, false, 1100);

  // Boost is one-shot: after blocking and re-waking with no credits spent it
  // boosts again, but a requeued-without-wake entity does not.
  EXPECT_EQ(s->PickNext(1100), 1u);
}

TEST(CreditSchedulerTest, NoBoostVariantKeepsFifoOrder) {
  auto s = MakeCreditScheduler(1, kPeriod, /*boost=*/false);
  ASSERT_TRUE(s->AddEntity(1, {}).ok());
  ASSERT_TRUE(s->AddEntity(2, {}).ok());
  s->SetRunnable(1, true, 0);
  ASSERT_EQ(s->PickNext(0), 1u);
  s->Account(1, 1000, true, 1000);
  s->SetRunnable(2, true, 1000);
  // Without boost, the hog re-queued first keeps its position.
  EXPECT_EQ(s->PickNext(1000), 1u);
}

TEST(CreditSchedulerTest, ExhaustedWakerGetsNoBoost) {
  auto s = MakeCreditScheduler(1, kPeriod);
  ASSERT_TRUE(s->AddEntity(1, {}).ok());
  ASSERT_TRUE(s->AddEntity(2, {}).ok());
  s->SetRunnable(2, true, 0);
  ASSERT_EQ(s->PickNext(0), 2u);
  s->Account(2, 2 * kPeriod, false, 100);  // burned far past its credit

  s->SetRunnable(1, true, 100);
  ASSERT_EQ(s->PickNext(100), 1u);
  s->Account(1, 1000, true, 1100);

  // Entity 2 wakes with negative credits: no boost, the hog stays ahead.
  s->SetRunnable(2, true, 1100);
  EXPECT_EQ(s->PickNext(1100), 1u);
}

TEST(RoundRobinTest, CyclesThroughEntities) {
  auto s = MakeRoundRobinScheduler();
  for (EntityId id : {1u, 2u, 3u}) {
    ASSERT_TRUE(s->AddEntity(id, {}).ok());
    s->SetRunnable(id, true, 0);
  }
  std::vector<EntityId> order;
  SimTime now = 0;
  for (int i = 0; i < 6; ++i) {
    EntityId id = s->PickNext(now);
    order.push_back(id);
    s->Account(id, 100, true, ++now);
  }
  EXPECT_EQ(order, (std::vector<EntityId>{1, 2, 3, 1, 2, 3}));
}

TEST(RoundRobinTest, WeightsIgnored) {
  auto s = MakeRoundRobinScheduler();
  ASSERT_TRUE(s->AddEntity(1, {.weight = 10000}).ok());
  ASSERT_TRUE(s->AddEntity(2, {.weight = 1}).ok());
  s->SetRunnable(1, true, 0);
  s->SetRunnable(2, true, 0);
  auto granted = Simulate(*s, 100, 1000);
  EXPECT_EQ(granted[1], granted[2]);
}

TEST(RoundRobinTest, MidSliceWakeDoesNotDuplicate) {
  auto s = MakeRoundRobinScheduler();
  ASSERT_TRUE(s->AddEntity(1, {}).ok());
  s->SetRunnable(1, true, 0);
  ASSERT_EQ(s->PickNext(0), 1u);
  // A device interrupt "wakes" the already-running entity mid-slice.
  s->SetRunnable(1, true, 50);
  s->Account(1, 100, true, 100);
  // It must appear exactly once in the queue.
  EXPECT_EQ(s->PickNext(100), 1u);
  s->Account(1, 100, true, 200);
  EXPECT_EQ(s->PickNext(200), 1u);
}

TEST(RoundRobinTest, RemoveWhileQueued) {
  auto s = MakeRoundRobinScheduler();
  ASSERT_TRUE(s->AddEntity(1, {}).ok());
  ASSERT_TRUE(s->AddEntity(2, {}).ok());
  s->SetRunnable(1, true, 0);
  s->SetRunnable(2, true, 0);
  ASSERT_TRUE(s->RemoveEntity(1).ok());
  EXPECT_EQ(s->PickNext(0), 2u);
  s->Account(2, 10, true, 10);
  EXPECT_EQ(s->PickNext(10), 2u);
}

// --- Gang (co-)scheduling ---------------------------------------------------
// The host gangs the vCPUs of every SMP guest: once one member dispatches in
// a round, its runnable gang-mates jump the pick order for the round's
// remaining pCPUs (lowest entity id first). Boost is disabled below so the
// FIFO baseline order is unambiguous.

TEST(GangSchedulerTest, GangMatesJumpThePickOrderWithinARound) {
  auto s = MakeCreditScheduler(4, kPeriod, /*boost=*/false);
  // Two 2-vCPU "VMs": gang 1 = {1, 2}, gang 2 = {3, 4}.
  ASSERT_TRUE(s->AddEntity(1, {.gang = 1}).ok());
  ASSERT_TRUE(s->AddEntity(2, {.gang = 1}).ok());
  ASSERT_TRUE(s->AddEntity(3, {.gang = 2}).ok());
  ASSERT_TRUE(s->AddEntity(4, {.gang = 2}).ok());
  // Wake order interleaves the gangs: 1, 3, 2, 4.
  for (EntityId id : {1u, 3u, 2u, 4u}) {
    s->SetRunnable(id, true, 0);
  }

  s->BeginRound();
  EXPECT_EQ(s->PickNext(0), 1u);  // queue head
  // Plain FIFO would hand the second pCPU to 3; co-scheduling hands it to
  // 1's gang-mate so both halves of the VM run the same round.
  EXPECT_EQ(s->PickNext(0), 2u);
  EXPECT_EQ(s->PickNext(0), 3u);
  EXPECT_EQ(s->PickNext(0), 4u);
}

TEST(GangSchedulerTest, GangMatesDispatchInEntityIdOrder) {
  auto s = MakeCreditScheduler(4, kPeriod, /*boost=*/false);
  for (EntityId id : {5u, 6u, 7u, 8u}) {
    ASSERT_TRUE(s->AddEntity(id, {.gang = 9}).ok());
  }
  // Wake in scrambled order; 7 sits at the head of the FIFO queue.
  for (EntityId id : {7u, 8u, 5u, 6u}) {
    s->SetRunnable(id, true, 0);
  }

  s->BeginRound();
  EXPECT_EQ(s->PickNext(0), 7u);
  // Once the gang is live its remaining members come in entity-id order, not
  // wake order — the fixed dispatch order the SMP bit-identity oracle
  // depends on (vCPU slices serialize by index within a round).
  EXPECT_EQ(s->PickNext(0), 5u);
  EXPECT_EQ(s->PickNext(0), 6u);
  EXPECT_EQ(s->PickNext(0), 8u);
}

TEST(GangSchedulerTest, BeginRoundResetsGangStateThenReestablishesIt) {
  auto s = MakeCreditScheduler(2, kPeriod, /*boost=*/false);
  ASSERT_TRUE(s->AddEntity(1, {.gang = 1}).ok());
  ASSERT_TRUE(s->AddEntity(2, {.gang = 1}).ok());
  ASSERT_TRUE(s->AddEntity(3, {}).ok());
  for (EntityId id : {3u, 1u, 2u}) {
    s->SetRunnable(id, true, 0);
  }

  // Round 1 (2 pCPUs): 3 leads, then 1 by FIFO; 2 misses the round.
  s->BeginRound();
  EXPECT_EQ(s->PickNext(0), 3u);
  EXPECT_EQ(s->PickNext(0), 1u);
  s->Account(3, 1000, /*still_runnable=*/true, 1000);
  s->Account(1, 1000, /*still_runnable=*/true, 1000);

  // Round 2: the gang state from round 1 is gone, so the queue head (2)
  // opens the round by FIFO — but dispatching it makes gang 1 live again and
  // its mate 1 jumps ahead of 3.
  s->BeginRound();
  EXPECT_EQ(s->PickNext(1000), 2u);
  EXPECT_EQ(s->PickNext(1000), 1u);
}

// Per-pCPU time accounting (the cluster DRS load signal) must be
// non-vacuous and reconcile with the aggregate host counters: busy cycles
// sum to cycles_executed, steal sums to context_switches * world-switch
// cost, and a loaded host accrues busy on more than one pCPU while a parked
// one accrues idle time.
TEST(PcpuStatsTest, PerPcpuAccountingReconcilesWithAggregates) {
  core::HostConfig hc;
  hc.num_pcpus = 3;
  hc.worker_threads = 0;
  core::Host host(hc);
  ASSERT_EQ(host.stats().pcpu.size(), 3u);

  auto boot = [&](const std::string& name, const std::string& source) {
    auto image = guest::Build(source);
    ASSERT_TRUE(image.ok());
    auto vm = host.CreateVm(core::VmConfig{.name = name});
    ASSERT_TRUE(vm.ok());
    ASSERT_TRUE((*vm)->LoadImage(*image).ok());
  };
  // Two busy VMs over three pCPUs: two pCPUs run, the third parks.
  boot("busy0", guest::ComputeProgram(0));
  boot("busy1", guest::ComputeProgram(0));
  host.RunFor(10 * kSimTicksPerMs);

  uint64_t busy = 0;
  uint64_t steal = 0;
  SimTime idle = 0;
  uint32_t busy_pcpus = 0;
  for (const core::Host::PcpuStats& pcpu : host.stats().pcpu) {
    busy += pcpu.busy_cycles;
    steal += pcpu.steal_cycles;
    idle += pcpu.idle_time;
    busy_pcpus += pcpu.busy_cycles > 0 ? 1 : 0;
  }
  EXPECT_GT(busy, 0u);
  EXPECT_EQ(busy, host.stats().cycles_executed);
  EXPECT_EQ(steal, host.stats().context_switches * host.costs().context_switch);
  EXPECT_EQ(busy_pcpus, 2u);
  EXPECT_GT(idle, 0u);  // the third pCPU parked for most of the run
}

}  // namespace
}  // namespace hyperion::sched
