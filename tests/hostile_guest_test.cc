// Hostile-guest robustness: buggy or malicious guest programs must never
// crash the host or corrupt other VMs — at worst they crash themselves.

#include <gtest/gtest.h>

#include "src/core/host.h"
#include "src/guest/programs.h"

namespace hyperion {
namespace {

using core::Host;
using core::IoModel;
using core::Vm;
using core::VmConfig;
using core::VmState;

Vm* Boot(Host& host, VmConfig config, const std::string& source) {
  auto image = guest::Build(source);
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  auto vm = host.CreateVm(std::move(config));
  EXPECT_TRUE(vm.ok()) << vm.status().ToString();
  EXPECT_TRUE((*vm)->LoadImage(*image).ok());
  return *vm;
}

// The common prologue that points tvec at a counting handler so guest-level
// faults do not crash the VM outright.
constexpr char kFaultTolerantBoot[] = R"(
.org 0x1000
    j _start
.align 8
progress:
    .word 0
faults:
    .word 0
handler:
    la t3, faults
    lw t2, 0(t3)
    addi t2, t2, 1
    sw t2, 0(t3)
    csrr t1, epc
    addi t1, t1, 4     ; skip the faulting instruction
    csrw epc, t1
    sret
_start:
    la t0, handler
    csrw tvec, t0
)";

TEST(HostileGuestTest, WildMemoryAccessesFaultTheGuestOnly) {
  Host host;
  Vm* vm = Boot(host, VmConfig{.name = "wild"}, std::string(kFaultTolerantBoot) + R"(
    li t0, 0xE0000000     ; far past RAM, below MMIO
    lw a0, 0(t0)
    sw a0, 0(t0)
    li t0, 0xFFFFF000     ; above the MMIO window
    lw a0, 0(t0)
    li a0, 4
    hcall
    halt
)");
  ASSERT_TRUE(host.RunUntilVmStops(vm, kSimTicksPerSec));
  EXPECT_EQ(vm->state(), VmState::kShutdown);
  auto image = guest::Build(std::string(kFaultTolerantBoot) + "halt\n");
  uint32_t faults = vm->memory().ReadU32(*image->SymbolAddress("faults")).value_or(0);
  EXPECT_EQ(faults, 3u);
}

TEST(HostileGuestTest, UnmappedMmioFaultsGuest) {
  Host host;
  Vm* vm = Boot(host, VmConfig{.name = "mmio"}, std::string(kFaultTolerantBoot) + R"(
    li t0, 0xF0500000     ; inside the MMIO window, no device
    lw a0, 0(t0)
    sw a0, 0(t0)
    li a0, 4
    hcall
    halt
)");
  ASSERT_TRUE(host.RunUntilVmStops(vm, kSimTicksPerSec));
  EXPECT_EQ(vm->state(), VmState::kShutdown);
}

TEST(HostileGuestTest, VirtioRingPointingOutsideRamFailsSafely) {
  Host host;
  auto disk = std::make_shared<storage::MemBlockStore>(64);
  VmConfig cfg{.name = "evil-ring"};
  cfg.disk_model = IoModel::kParavirt;
  cfg.disk = disk;
  // Configure the queue with ring addresses far past RAM, then kick.
  Vm* vm = Boot(host, cfg, R"(
.org 0x1000
_start:
    li gp, 0xF0100000
    sw zero, 0x04(gp)
    li t1, 4
    sw t1, 0x08(gp)
    li t1, 0x7F000000      ; desc table "address"
    sw t1, 0x0C(gp)
    li t1, 0x7F001000
    sw t1, 0x10(gp)
    li t1, 0x7F002000
    sw t1, 0x14(gp)
    li t1, 1
    sw t1, 0x18(gp)
    li a0, 7               ; kick via hypercall
    li a1, 0
    li a2, 0
    hcall
    mv s0, a0              ; hypercall reports failure, host survives
    halt
)");
  ASSERT_TRUE(host.RunUntilVmStops(vm, 2 * kSimTicksPerSec));
  EXPECT_EQ(vm->state(), VmState::kShutdown);
  EXPECT_EQ(vm->vcpu(0).state.ReadReg(isa::kS0), 1u);  // kick failed cleanly
}

TEST(HostileGuestTest, VirtioDescriptorChainLoopRejected) {
  Host host;
  auto disk = std::make_shared<storage::MemBlockStore>(64);
  VmConfig cfg{.name = "loop-ring"};
  cfg.disk_model = IoModel::kParavirt;
  cfg.disk = disk;
  Vm* vm = Boot(host, cfg, R"(
.org 0x20000
; desc 0 -> desc 1 -> desc 0 (loop)
.word 0x30000, 16, 0x00010001    ; gpa, len, flags=NEXT next=1
.word 0x30000, 16, 0x00000001    ; flags=NEXT next=0
.word 0, 0, 0
.word 0, 0, 0
.org 0x20100
.word 0x00010000                 ; avail: flags=0 idx=1
.word 0x00000000                 ; ring[0]=0
.org 0x20200
.space 36
.org 0x1000
_start:
    li gp, 0xF0100000
    sw zero, 0x04(gp)
    li t1, 4
    sw t1, 0x08(gp)
    li t1, 0x20000
    sw t1, 0x0C(gp)
    li t1, 0x20100
    sw t1, 0x10(gp)
    li t1, 0x20200
    sw t1, 0x14(gp)
    li t1, 1
    sw t1, 0x18(gp)
    li a0, 7
    li a1, 0
    li a2, 0
    hcall
    mv s0, a0
    halt
)");
  ASSERT_TRUE(host.RunUntilVmStops(vm, 2 * kSimTicksPerSec));
  EXPECT_EQ(vm->state(), VmState::kShutdown);
  EXPECT_EQ(vm->vcpu(0).state.ReadReg(isa::kS0), 1u);  // rejected, not hung
}

TEST(HostileGuestTest, BalloonAbuseIsBounded) {
  Host host;
  // Inflate pages that do not exist and deflate pages that are present.
  Vm* vm = Boot(host, VmConfig{.name = "balloon-abuse"}, R"(
.org 0x1000
_start:
    li a0, 5
    li a1, 0x999999       ; way past RAM
    hcall
    mv s0, a0             ; must fail (1)
    li a0, 6
    li a1, 2              ; deflate a present page
    hcall
    mv s1, a0             ; must fail (1)
    li a0, 5
    li a1, 1              ; inflating the page holding this code!
    hcall
    mv s2, a0             ; allowed (guest's own problem)
    li a0, 4
    hcall
    halt
)");
  // The guest released its own code page: it will fault on the next fetch
  // (missing page, no handler -> crash) OR manage to shut down first,
  // depending on where the code lives. Either way the HOST survives.
  host.RunUntilVmStops(vm, 2 * kSimTicksPerSec);
  EXPECT_NE(vm->state(), VmState::kRunning);
  EXPECT_EQ(vm->vcpu(0).state.ReadReg(isa::kS0), 1u);
  EXPECT_EQ(vm->vcpu(0).state.ReadReg(isa::kS1), 1u);
}

TEST(HostileGuestTest, RunawayGuestCannotStarveOthers) {
  core::HostConfig hc;
  hc.num_pcpus = 1;
  Host host(hc);
  // A tight infinite loop that never yields...
  Vm* hog = Boot(host, VmConfig{.name = "hog"}, ".org 0x1000\nspin: j spin\n");
  // ...must not prevent a sibling from finishing.
  std::string prog = guest::ComputeProgram(50);
  Vm* victim = Boot(host, VmConfig{.name = "victim"}, prog);
  ASSERT_TRUE(host.RunUntilVmStops(victim, kSimTicksPerSec));
  EXPECT_EQ(victim->state(), VmState::kShutdown);
  EXPECT_EQ(hog->state(), VmState::kRunning);
}

TEST(HostileGuestTest, StackSmashIntoPageTablesOnlyHurtsSelf) {
  Host host;
  // Guest enables paging, then scribbles over its own page tables. It
  // crashes itself (fetch faults with a clobbered handler) but the host and
  // a sibling VM continue untouched.
  std::string prog = guest::ComputeProgram(200);
  Vm* good = Boot(host, VmConfig{.name = "good"}, prog);
  Vm* evil = Boot(host, {.name = "evil", .ram_bytes = 8u << 20},
                  std::string(guest::PagingBootPrelude().insert(0, ".org 0x1000\n_start:\n")) + R"(
    li t0, 0x80000
    li t1, 0
    sw t1, 0(t0)          ; wipe L1[0]: the identity map vanishes
    sfence
    nop
    halt
)");
  host.RunUntilVmStops(evil, kSimTicksPerSec);
  EXPECT_EQ(evil->state(), VmState::kCrashed);
  ASSERT_TRUE(host.RunUntilVmStops(good, 2 * kSimTicksPerSec));
  EXPECT_EQ(good->state(), VmState::kShutdown);
}

TEST(HostileGuestTest, PioDeviceAbuse) {
  Host host;
  auto disk = std::make_shared<storage::MemBlockStore>(64);
  VmConfig cfg{.name = "pio-abuse"};
  cfg.disk_model = IoModel::kEmulated;
  cfg.disk = disk;
  // Data-port access outside a transfer and commands while busy fault the
  // guest (handled), never the host.
  Vm* vm = Boot(host, cfg, std::string(kFaultTolerantBoot) + R"(
    li gp, 0xF0010000
    li t1, 8
    sw t1, 0x04(gp)        ; COUNT=8
    li t2, 1200            ; write past the 8-sector buffer
flood:
    sw t2, 0x10(gp)
    addi t2, t2, -1
    bnez t2, flood
    li a0, 4
    hcall
    halt
)");
  ASSERT_TRUE(host.RunUntilVmStops(vm, 10 * kSimTicksPerSec));
  EXPECT_EQ(vm->state(), VmState::kShutdown);
  auto image = guest::Build(std::string(kFaultTolerantBoot) + "halt\n");
  uint32_t faults = vm->memory().ReadU32(*image->SymbolAddress("faults")).value_or(0);
  EXPECT_GT(faults, 0u);  // overflow writes faulted, guest kept going
}

}  // namespace
}  // namespace hyperion
