#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over the first-party sources:
# src/, bench/, and tests/ (negative-compile sources are excluded — they are
# designed not to compile).
#
# The check set includes concurrency-* (see .clang-tidy): since the staged
# execution core runs guest slices on worker threads, mt-unsafe libc calls
# anywhere under src/ are lint findings, not style nits. bugprone-* and
# concurrency-* findings are errors (WarningsAsErrors), so a finding in
# either group fails this script and tools/ci.sh with it.
#
# Degrades gracefully: containers that ship only gcc have no clang-tidy, and
# the lint pass is advisory there — we print a notice and exit 0 so that
# tools/ci.sh keeps working everywhere. Set LINT_STRICT=1 to turn a missing
# binary into a failure (for environments that are supposed to have it).
#
# Usage: tools/run_lint.sh [build-dir]   (default: build)

set -u

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_lint: clang-tidy not found; skipping lint (set LINT_STRICT=1 to fail)"
  [ "${LINT_STRICT:-0}" = "1" ] && exit 1
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_lint: $BUILD_DIR/compile_commands.json missing; configuring..."
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || exit 1
fi

FILES=$(find src bench tests \( -name '*.cc' -o -name '*.cpp' \) \
          -not -path 'tests/negcompile/*' | sort)
echo "run_lint: clang-tidy over $(echo "$FILES" | wc -l) files"
# shellcheck disable=SC2086
clang-tidy -p "$BUILD_DIR" --quiet $FILES
STATUS=$?
if [ $STATUS -eq 0 ]; then
  echo "run_lint: clean"
fi
exit $STATUS
