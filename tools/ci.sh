#!/usr/bin/env bash
# Full verification pipeline, in increasing order of cost:
#
#   1. plain build + tier-1 test suite
#   2. the same suite with the runtime invariant auditors on (HYPERION_AUDIT=1)
#   3. chaos: the seeded fault-injection sweeps (fixed seed ranges baked into
#      tests/chaos_test.cc) rerun with the auditors on — migration must either
#      converge with zero divergence or roll back to a source that still
#      passes every invariant audit
#   4. AddressSanitizer build + suite (includes the chaos sweeps)
#   5. UndefinedBehaviorSanitizer build + suite (includes the chaos sweeps)
#   6. clang-tidy lint (skipped gracefully where clang-tidy is absent)
#
# Usage: tools/ci.sh [--fast]     --fast skips the sanitizer builds.

set -eu

cd "$(dirname "$0")/.."
FAST=0
[ "${1:-}" = "--fast" ] && FAST=1
JOBS=$(nproc 2>/dev/null || echo 4)

run_suite() {  # run_suite <build-dir> [extra cmake flags...]
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j "$JOBS"
  (cd "$dir" && ctest --output-on-failure -j "$JOBS")
}

CHAOS_FILTER='ChaosTest|FaultPlanTest|InjectorTest|FaultyStoreTest|SwitchFaultTest|DeviceFaultTest|HvdCrashTest'

echo "=== [1/6] plain build + tests ==="
run_suite build

echo "=== [2/6] tests under HYPERION_AUDIT=1 ==="
(cd build && HYPERION_AUDIT=1 ctest --output-on-failure -j "$JOBS")

echo "=== [3/6] chaos: seeded fault-injection sweeps under audit ==="
(cd build && HYPERION_AUDIT=1 ctest -R "$CHAOS_FILTER" --output-on-failure -j "$JOBS")

if [ "$FAST" = "0" ]; then
  echo "=== [4/6] AddressSanitizer (suite + chaos sweeps) ==="
  run_suite build-asan -DHYPERION_SANITIZE=address

  echo "=== [5/6] UndefinedBehaviorSanitizer (suite + chaos sweeps) ==="
  run_suite build-ubsan -DHYPERION_SANITIZE=undefined
else
  echo "=== [4/6][5/6] sanitizers skipped (--fast) ==="
fi

echo "=== [6/6] lint ==="
tools/run_lint.sh build

echo "ci: all stages passed"
