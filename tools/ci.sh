#!/usr/bin/env bash
# Full verification pipeline, in increasing order of cost:
#
#   1. plain build + tier-1 test suite
#   2. the same suite with the runtime invariant auditors on (HYPERION_AUDIT=1)
#   3. AddressSanitizer build + suite
#   4. UndefinedBehaviorSanitizer build + suite
#   5. clang-tidy lint (skipped gracefully where clang-tidy is absent)
#
# Usage: tools/ci.sh [--fast]     --fast skips the sanitizer builds.

set -eu

cd "$(dirname "$0")/.."
FAST=0
[ "${1:-}" = "--fast" ] && FAST=1
JOBS=$(nproc 2>/dev/null || echo 4)

run_suite() {  # run_suite <build-dir> [extra cmake flags...]
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j "$JOBS"
  (cd "$dir" && ctest --output-on-failure -j "$JOBS")
}

echo "=== [1/5] plain build + tests ==="
run_suite build

echo "=== [2/5] tests under HYPERION_AUDIT=1 ==="
(cd build && HYPERION_AUDIT=1 ctest --output-on-failure -j "$JOBS")

if [ "$FAST" = "0" ]; then
  echo "=== [3/5] AddressSanitizer ==="
  run_suite build-asan -DHYPERION_SANITIZE=address

  echo "=== [4/5] UndefinedBehaviorSanitizer ==="
  run_suite build-ubsan -DHYPERION_SANITIZE=undefined
else
  echo "=== [3/5][4/5] sanitizers skipped (--fast) ==="
fi

echo "=== [5/5] lint ==="
tools/run_lint.sh build

echo "ci: all stages passed"
