#!/usr/bin/env bash
# Full verification pipeline, in increasing order of cost:
#
#   * plain build + tier-1 test suite
#   * the same suite with the runtime invariant auditors on (HYPERION_AUDIT=1)
#   * chaos: the seeded fault-injection sweeps (fixed seed ranges baked into
#     tests/chaos_test.cc) rerun with the auditors on — migration must either
#     converge with zero divergence or roll back to a source that still
#     passes every invariant audit; the cluster sweep must conserve every
#     guest across an injected host crash
#   * SMP suites under audit with a real 4-thread worker pool
#   * AddressSanitizer build + suite (includes the chaos sweeps)
#   * UndefinedBehaviorSanitizer build + suite (includes the chaos sweeps)
#   * ThreadSanitizer build + the concurrency-relevant suites with
#     HYPERION_WORKERS=4, so the staged execution core's worker pool and
#     every per-slice staging buffer actually run multi-threaded under TSan
#   * static staging discipline: the negative-compile suite (phase-token
#     violations must fail to build; see tests/negcompile/) plus, where
#     clang is available, a -DHYPERION_THREAD_SAFETY=ON build that enforces
#     clang -Wthread-safety over the annotated core
#   * clang-tidy lint (skipped gracefully where clang-tidy is absent)
#   * perf smoke: Release bench_exec and bench_net. The DBT engine must
#     clear 2x the interpreter's guest-MIPS on the hot compute kernel — a
#     coarse anti-regression tripwire, not a microbench gate (steady-state
#     margin is ~3x; 2x absorbs shared-runner noise). The net data plane
#     gate is exact: batched virtio must clear 3x the per-frame path's
#     frames/sec and stay under 50 interrupts per 1k frames, measured in
#     deterministic simulated time (immune to runner noise)
#   * cluster gate: Release bench_cluster --gate runs the fixed fleet
#     scenario (4 hosts, churn, drain, injected crash) at 0 and 4 workers —
#     zero guests lost, every migration reconciled against its
#     MigrationReport, bit-identical results across worker counts
#
# Stage numbers are printed by the stage() helper, so inserting a stage never
# desynchronizes the [N/TOTAL] banners again.
#
# Usage: tools/ci.sh [--fast]     --fast skips the sanitizer builds.

set -eu

cd "$(dirname "$0")/.."
FAST=0
[ "${1:-}" = "--fast" ] && FAST=1
JOBS=$(nproc 2>/dev/null || echo 4)

TOTAL=11
STAGE=0
stage() {  # stage <banner text>
  STAGE=$((STAGE + 1))
  echo "=== [$STAGE/$TOTAL] $1 ==="
}

run_suite() {  # run_suite <build-dir> [extra cmake flags...]
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j "$JOBS"
  (cd "$dir" && ctest --output-on-failure -j "$JOBS")
}

CHAOS_FILTER='ChaosTest|ChaosSmpTest|ClusterChaosTest|FaultPlanTest|InjectorTest|FaultyStoreTest|SwitchFaultTest|DeviceFaultTest|HvdCrashTest|SnapshotTornWriteTest'
# Everything that drives a multi-vCPU guest: the IPI/TLB-shootdown gauntlet,
# the cross-engine SMP differential matrix, SMP migration/snapshot/chaos, and
# the gang-scheduling unit tests.
SMP_FILTER='SmpTest|FuzzDiffSmpTest|MigrateSmpTest|ChaosSmpTest|GangSchedulerTest|StagedExecutionTest'

stage "plain build + tests"
run_suite build

stage "tests under HYPERION_AUDIT=1"
(cd build && HYPERION_AUDIT=1 ctest --output-on-failure -j "$JOBS")

stage "chaos: seeded fault-injection sweeps under audit"
(cd build && HYPERION_AUDIT=1 ctest -R "$CHAOS_FILTER" --output-on-failure -j "$JOBS")

stage "SMP suites under audit with a 4-thread worker pool"
# The audit stage already ran these serially; this rerun pins that per-vCPU
# TLB audits, IPI accounting, and the shootdown protocol stay green when
# same-VM lanes execute on a real worker pool.
(cd build && HYPERION_AUDIT=1 HYPERION_WORKERS=4 ctest -R "$SMP_FILTER" --output-on-failure -j "$JOBS")

if [ "$FAST" = "0" ]; then
  stage "AddressSanitizer (suite + chaos sweeps)"
  run_suite build-asan -DHYPERION_SANITIZE=address

  stage "UndefinedBehaviorSanitizer (suite + chaos sweeps)"
  run_suite build-ubsan -DHYPERION_SANITIZE=undefined

  stage "ThreadSanitizer (HYPERION_WORKERS=4, staged-core suites)"
  # The filter covers everything that exercises the worker pool end to end:
  # the host run loop and its staging buffers (Host/Smp/Staged/WorkerPool),
  # VM teardown concurrent with in-flight events (DestroyVm), the migration +
  # fault-injection paths whose shared state is queried from worker threads,
  # and the cluster suites that run a whole fleet on one shared pool.
  # HYPERION_WORKERS=4 overrides the serial default so the pool genuinely
  # runs multi-threaded even for configs that leave worker_threads unset.
  TSAN_FILTER='HostVmTest|SmpTest|FuzzDiffSmpTest|SchedulingTest|StagedExecutionTest|DestroyVmTest|WorkerPoolTest|MigrationTest|MigrateIoTest|MigrateStateTest|MigrateSmpTest|ChaosTest|ChaosSmpTest|FaultPlanTest|InjectorTest|HvdCrashTest|ClusterTest|ClusterStagedTest|ClusterChaosTest'
  cmake -B build-tsan -S . -DHYPERION_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS"
  (cd build-tsan && HYPERION_WORKERS=4 ctest -R "$TSAN_FILTER" --output-on-failure -j "$JOBS")
else
  STAGE=$((STAGE + 3))
  echo "=== sanitizers skipped (--fast) ==="
fi

stage "static staging discipline: negative-compile + thread-safety"
# The negative-compile tests already ran inside the first stage's ctest;
# rerunning them by name here keeps the discipline visible as its own gate
# and fails fast when someone weakens a token signature.
(cd build && ctest -R '^negcompile\.' --output-on-failure)
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DHYPERION_THREAD_SAFETY=ON >/dev/null
  cmake --build build-tsa -j "$JOBS"
else
  echo "thread-safety: clang++ not found; -Wthread-safety analysis skipped"
fi

stage "lint"
tools/run_lint.sh build

stage "perf smoke: hot DBT vs interpreter; tier-2 vs tier-1; net data plane"
cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-perf -j "$JOBS" --target bench_exec bench_net bench_cluster
# --benchmark_min_time takes a bare seconds value (no "s" suffix). Ratios are
# computed from per-benchmark medians of 3 repetitions, and the stage retries
# once on failure, so a single noisy sample on an oversubscribed shared
# runner cannot fail the build on its own. Two gates on the hot compute
# kernel: the full DBT must clear 2x the interpreter (steady-state margin is
# ~4x), and the tier-2 optimizer must clear 1.10x the tier-1-only DBT
# (steady-state margin is ~1.4x) — the optimizer has to pay for itself.
perf_smoke() {
  build-perf/bench/bench_exec \
    --benchmark_filter='BM_InterpreterHot|BM_DbtHot|BM_DbtTier1Hot' \
    --benchmark_min_time=0.2 --benchmark_repetitions=3 \
    --benchmark_format=json >build-perf/perf_smoke.json
  python3 - build-perf/perf_smoke.json <<'EOF'
import json, sys, statistics
reps = {}
for b in json.load(open(sys.argv[1]))["benchmarks"]:
    if b.get("run_type") == "aggregate":
        continue
    reps.setdefault(b["name"].split("/")[0], []).append(b["guest_mips"])
interp = statistics.median(reps["BM_InterpreterHot"])
tier1 = statistics.median(reps["BM_DbtTier1Hot"])
tier2 = statistics.median(reps["BM_DbtHot"])
ratio = tier2 / interp
tier_ratio = tier2 / tier1
print(f"perf smoke: interpreter {interp:.1f} MIPS, dbt tier-1 {tier1:.1f} MIPS, "
      f"dbt tier-2 {tier2:.1f} MIPS; dbt/interp {ratio:.2f}x (floor 2.0), "
      f"tier-2/tier-1 {tier_ratio:.2f}x (floor 1.10)")
sys.exit(0 if ratio >= 2.0 and tier_ratio >= 1.10 else 1)
EOF
}
if ! perf_smoke; then
  echo "perf smoke: ratio below threshold once; retrying to absorb runner noise"
  perf_smoke
fi

# Net data-plane gate: bench_net measures simulated time, so the numbers are
# bit-identical run to run — one run, no retry. Enforces the batched path's
# reason to exist: >=3x the per-frame seed throughput with <50 interrupts
# per 1k frames at the 256-byte payload point.
build-perf/bench/bench_net --gate | tee build-perf/bench_net_gate.txt
python3 - build-perf/bench_net_gate.txt <<'EOF'
import re, sys
text = open(sys.argv[1]).read()
m = re.search(r"gate: perframe_fps=(\S+) batched_fps=(\S+) ratio=(\S+) "
              r"batched_intr_per_1k=(\S+)", text)
if not m:
    print("net gate: summary line missing from bench_net output")
    sys.exit(1)
ratio, intr = float(m.group(3)), float(m.group(4))
print(f"net gate: batched/per-frame ratio {ratio:.2f}x (floor 3.0), "
      f"{intr:.1f} interrupts per 1k batched frames (ceiling 50)")
sys.exit(0 if ratio >= 3.0 and intr < 50.0 else 1)
EOF

stage "cluster gate: fleet lifecycle, worker-count bit-identity"
# Deterministic like the net gate: simulated time, fixed scenario, one run.
# The binary itself replays the scenario at 0 and 4 workers and compares
# digests; the parser enforces conservation and reconciliation.
build-perf/bench/bench_cluster --gate | tee build-perf/bench_cluster_gate.txt
python3 - build-perf/bench_cluster_gate.txt <<'EOF'
import re, sys
text = open(sys.argv[1]).read()
m = re.search(r"gate: vms=(\d+) lost=(\d+) migrations=(\d+) reconciled=(\d+) "
              r"determinism=(\S+)", text)
if not m:
    print("cluster gate: summary line missing from bench_cluster output")
    sys.exit(1)
vms, lost, migrations, reconciled, det = m.groups()
ok = int(lost) == 0 and int(migrations) > 0 and reconciled == migrations and det == "ok"
print(f"cluster gate: {vms} guests, {lost} lost, {migrations} migrations "
      f"({reconciled} reconciled), determinism {det}")
sys.exit(0 if ok else 1)
EOF

echo "ci: all stages passed"
