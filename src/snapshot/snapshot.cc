#include "src/snapshot/snapshot.h"

#include <cstring>

#include "src/util/byte_stream.h"
#include "src/util/crc32.h"

namespace hyperion::snapshot {

namespace {

constexpr uint32_t kMagic = 0x504E5348;  // "HSNP"
// v1: no feature-bits word. v2 adds a u32 feature-bit mask right after the
// version; each bit gates an optional trailing section, so a v2 reader can
// restore any v1 image and reject (rather than misparse) images from a
// future writer that set bits it does not know.
constexpr uint32_t kVersion = 2;
constexpr uint32_t kFeatTranslations = 1u << 0;  // per-vCPU translation cache
constexpr uint32_t kKnownFeatures = kFeatTranslations;

constexpr uint8_t kPageData = 0;
constexpr uint8_t kPageZero = 1;
constexpr uint8_t kPageAbsent = 2;

constexpr uint8_t kFlagIncremental = 1;

}  // namespace

Result<std::vector<uint8_t>> SaveVm(core::Vm& vm, SaveOptions options, SnapshotInfo* info) {
  ByteWriter w;
  w.WriteU32(kMagic);
  uint32_t version = options.legacy_v1 ? 1 : kVersion;
  w.WriteU32(version);
  // Translation sections are collected up front so the feature word can say
  // definitively whether the trailing sections exist. An interpreter engine
  // serializes to an empty blob; that still counts as the section being
  // present (restore passes it through and the engine ignores it).
  uint32_t features = 0;
  std::vector<std::vector<uint8_t>> translations;
  if (version >= 2 && options.translations) {
    features |= kFeatTranslations;
    translations.reserve(vm.num_vcpus());
    for (uint32_t i = 0; i < vm.num_vcpus(); ++i) {
      translations.push_back(vm.engine(i).SerializeTranslations());
    }
  }
  if (version >= 2) {
    w.WriteU32(features);
  }
  w.WriteU8(options.incremental ? kFlagIncremental : 0);
  w.WriteU32(vm.memory().ram_size());
  w.WriteU32(vm.num_vcpus());

  for (uint32_t i = 0; i < vm.num_vcpus(); ++i) {
    vm.vcpu(i).state.Serialize(w);
  }

  w.WriteString(vm.console());
  w.WriteU32(static_cast<uint32_t>(vm.logged_values().size()));
  for (uint32_t v : vm.logged_values()) {
    w.WriteU32(v);
  }
  w.WriteU32(vm.balloon_target());

  // Page section.
  SnapshotInfo local_info;
  mem::GuestMemory& mem = vm.memory();
  std::vector<uint32_t> pages;
  if (options.incremental) {
    Bitmap dirty = mem.HarvestDirty();
    for (size_t gpn : dirty.SetBits()) {
      pages.push_back(static_cast<uint32_t>(gpn));
    }
  } else {
    pages.reserve(mem.num_pages());
    for (uint32_t gpn = 0; gpn < mem.num_pages(); ++gpn) {
      pages.push_back(gpn);
    }
  }

  size_t count_at = w.size();
  w.WriteU32(0);  // patched below with the emitted entry count
  uint32_t emitted = 0;
  for (uint32_t gpn : pages) {
    ++local_info.pages_total;
    if (!mem.IsPresent(gpn)) {
      w.WriteU32(gpn);
      w.WriteU8(kPageAbsent);
      ++local_info.pages_absent;
      ++emitted;
      continue;
    }
    const uint8_t* data = mem.PageData(gpn);
    if (mem.PageIsZero(gpn)) {
      if (options.incremental) {
        // Incremental restores patch over existing state, so a page that
        // became zero must be recorded explicitly.
        w.WriteU32(gpn);
        w.WriteU8(kPageZero);
        ++emitted;
      }
      ++local_info.pages_zero;
      continue;  // full snapshots elide zero pages entirely
    }
    w.WriteU32(gpn);
    w.WriteU8(kPageData);
    w.WriteBytes(data, isa::kPageSize);
    ++local_info.pages_data;
    ++emitted;
  }
  w.PatchU32(count_at, emitted);

  // Device section, in bus mapping order.
  const auto& devs = vm.bus().devices();
  w.WriteU32(static_cast<uint32_t>(devs.size()));
  for (const devices::MmioDevice* dev : devs) {
    w.WriteString(std::string(dev->name()));
    ByteWriter dw;
    dev->Serialize(dw);
    w.WriteBlob(dw.buffer());
  }

  // Translation cache sections, one blob per vCPU, inside the outer CRC.
  if ((features & kFeatTranslations) != 0) {
    for (const std::vector<uint8_t>& blob : translations) {
      w.WriteBlob(blob);
    }
  }

  uint32_t crc = Crc32(w.buffer().data(), w.size());
  w.WriteU32(crc);

  local_info.bytes = w.size();
  if (info != nullptr) {
    *info = local_info;
  }
  return w.TakeBuffer();
}

Status LoadVm(core::Vm& vm, std::span<const uint8_t> bytes) {
  if (bytes.size() < 8) {
    return DataLossError("snapshot too small");
  }
  uint32_t crc_stored;
  std::memcpy(&crc_stored, bytes.data() + bytes.size() - 4, 4);
  if (Crc32(bytes.data(), bytes.size() - 4) != crc_stored) {
    return DataLossError("snapshot checksum mismatch");
  }

  ByteReader r(bytes.first(bytes.size() - 4));
  HYP_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kMagic) {
    return DataLossError("bad snapshot magic");
  }
  HYP_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version < 1 || version > kVersion) {
    return UnimplementedError("unsupported snapshot version");
  }
  uint32_t features = 0;
  if (version >= 2) {
    HYP_ASSIGN_OR_RETURN(features, r.ReadU32());
    if ((features & ~kKnownFeatures) != 0) {
      return UnimplementedError("snapshot carries unknown feature bits");
    }
  }
  HYP_ASSIGN_OR_RETURN(uint8_t flags, r.ReadU8());
  bool incremental = flags & kFlagIncremental;

  HYP_ASSIGN_OR_RETURN(uint32_t ram, r.ReadU32());
  HYP_ASSIGN_OR_RETURN(uint32_t vcpus, r.ReadU32());
  if (ram != vm.memory().ram_size() || vcpus != vm.num_vcpus()) {
    return FailedPreconditionError("snapshot geometry does not match the target VM");
  }

  for (uint32_t i = 0; i < vcpus; ++i) {
    HYP_ASSIGN_OR_RETURN(vm.vcpu(i).state, cpu::CpuState::Deserialize(r));
  }

  HYP_ASSIGN_OR_RETURN(std::string console, r.ReadString());
  HYP_ASSIGN_OR_RETURN(uint32_t nlog, r.ReadU32());
  std::vector<uint32_t> logged(nlog);
  for (auto& v : logged) {
    HYP_ASSIGN_OR_RETURN(v, r.ReadU32());
  }
  HYP_ASSIGN_OR_RETURN(uint32_t balloon_target, r.ReadU32());

  mem::GuestMemory& mem = vm.memory();
  // Restore runs serially between rounds; the token is runtime-checked once.
  ScopedSerialPhase serial;
  if (!incremental) {
    // Full restore baseline: every page present and zeroed.
    for (uint32_t gpn = 0; gpn < mem.num_pages(); ++gpn) {
      if (!mem.IsPresent(gpn)) {
        HYP_RETURN_IF_ERROR(mem.PopulatePage(gpn));
      } else {
        std::memset(mem.PageData(gpn), 0, isa::kPageSize);
      }
    }
  }

  HYP_ASSIGN_OR_RETURN(uint32_t entries, r.ReadU32());
  for (uint32_t i = 0; i < entries; ++i) {
    HYP_ASSIGN_OR_RETURN(uint32_t gpn, r.ReadU32());
    HYP_ASSIGN_OR_RETURN(uint8_t kind, r.ReadU8());
    if (gpn >= mem.num_pages()) {
      return DataLossError("snapshot page out of range");
    }
    switch (kind) {
      case kPageData: {
        if (!mem.IsPresent(gpn)) {
          HYP_RETURN_IF_ERROR(mem.PopulatePage(gpn));
        }
        HYP_RETURN_IF_ERROR(r.ReadBytes(mem.PageData(gpn), isa::kPageSize));
        break;
      }
      case kPageZero:
        if (!mem.IsPresent(gpn)) {
          HYP_RETURN_IF_ERROR(mem.PopulatePage(gpn));
        } else {
          std::memset(mem.PageData(gpn), 0, isa::kPageSize);
        }
        break;
      case kPageAbsent:
        if (mem.IsPresent(gpn)) {
          HYP_RETURN_IF_ERROR(mem.ReleasePage(serial, gpn));
        }
        break;
      default:
        return DataLossError("bad page kind in snapshot");
    }
  }

  HYP_ASSIGN_OR_RETURN(uint32_t ndev, r.ReadU32());
  const auto& devs = vm.bus().devices();
  if (ndev != devs.size()) {
    return FailedPreconditionError("snapshot device set does not match the target VM");
  }
  for (uint32_t i = 0; i < ndev; ++i) {
    HYP_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    if (name != devs[i]->name()) {
      return FailedPreconditionError("device order mismatch: snapshot has '" + name +
                                     "', vm has '" + std::string(devs[i]->name()) + "'");
    }
    HYP_ASSIGN_OR_RETURN(std::vector<uint8_t> blob, r.ReadBlob());
    ByteReader dr(blob);
    HYP_RETURN_IF_ERROR(devs[i]->Deserialize(serial, dr));
  }

  std::vector<std::vector<uint8_t>> translations;
  if ((features & kFeatTranslations) != 0) {
    translations.reserve(vcpus);
    for (uint32_t i = 0; i < vcpus; ++i) {
      HYP_ASSIGN_OR_RETURN(std::vector<uint8_t> blob, r.ReadBlob());
      translations.push_back(std::move(blob));
    }
  }

  // Host-side state last: balloon accounting depends on final page presence.
  vm.RestoreHostSideState(std::move(console), std::move(logged), balloon_target);

  // Every cached translation is now stale.
  vm.virt().FlushAll();
  for (uint32_t i = 0; i < vm.num_vcpus(); ++i) {
    vm.engine(i).FlushCodeCache();
  }
  // Then pre-warm from the snapshot's own translation cache: each engine
  // revalidates every persisted unit against the memory restored above and
  // installs what survives. A corrupt or stale blob degrades to cold
  // translation — the restore itself still succeeds.
  for (uint32_t i = 0; i < translations.size(); ++i) {
    vm.engine(i).InstallTranslations(vm.vcpu(i), translations[i]);
  }
  return OkStatus();
}

Result<core::Vm*> CloneVm(core::Host& host, core::VmConfig config,
                          std::span<const uint8_t> template_snapshot) {
  HYP_ASSIGN_OR_RETURN(core::Vm * vm, host.CreateVm(std::move(config)));
  Status st = LoadVm(*vm, template_snapshot);
  if (!st.ok()) {
    (void)host.DestroyVm(vm);
    return st;
  }
  return vm;
}

Result<core::Vm*> ForkVm(core::Host& host, core::VmConfig config, core::Vm& parent) {
  if (parent.state() != core::VmState::kPaused) {
    return FailedPreconditionError("fork requires a paused parent");
  }
  if (config.ram_bytes != parent.memory().ram_size() ||
      config.num_vcpus != parent.num_vcpus()) {
    return InvalidArgumentError("fork config geometry must match the parent");
  }

  HYP_ASSIGN_OR_RETURN(core::Vm * child, host.CreateVm(std::move(config)));
  auto fail = [&host, child](Status st) -> Result<core::Vm*> {
    (void)host.DestroyVm(child);
    return st;
  };

  // Non-RAM machine state transfers through a RAM-less snapshot: serialize
  // the parent with an empty incremental page set (the dirty log is off, so
  // an incremental save carries zero pages), which copies CPU, device and
  // console state only.
  parent.memory().DisableDirtyLog();
  SaveOptions opts;
  opts.incremental = true;
  // Translations cannot ride the state image: the child's RAM is not shared
  // yet, so revalidation would reject every unit. They install below, after
  // the COW remap, straight from the parent's engines.
  opts.translations = false;
  auto state_image = SaveVm(parent, opts);
  if (!state_image.ok()) {
    return fail(state_image.status());
  }
  if (Status st = LoadVm(*child, *state_image); !st.ok()) {
    return fail(st);
  }

  // Share every present parent page into the child, copy-on-write.
  ScopedSerialPhase serial;
  mem::GuestMemory& pmem = parent.memory();
  mem::GuestMemory& cmem = child->memory();
  for (uint32_t gpn = 0; gpn < pmem.num_pages(); ++gpn) {
    if (!pmem.IsPresent(gpn)) {
      if (cmem.IsPresent(gpn)) {
        if (Status st = cmem.ReleasePage(serial, gpn); !st.ok()) {
          return fail(st);
        }
      }
      continue;
    }
    if (Status st = cmem.RemapPage(serial, gpn, pmem.FrameForPage(gpn)); !st.ok()) {
      return fail(st);
    }
    cmem.SetShared(gpn, true);
    pmem.SetShared(gpn, true);
    pmem.NotifySharedExternally(gpn);
  }
  child->virt().FlushAll();
  for (uint32_t i = 0; i < child->num_vcpus(); ++i) {
    child->engine(i).FlushCodeCache();
  }
  // Pre-warm the child's code caches from the parent now that its pages
  // share the parent's frames: revalidation reads the shared frames, so a
  // fork of a warmed parent starts with zero cold translates.
  for (uint32_t i = 0; i < child->num_vcpus(); ++i) {
    std::vector<uint8_t> blob = parent.engine(i).SerializeTranslations();
    child->engine(i).InstallTranslations(child->vcpu(i), blob);
  }
  child->Pause(serial);
  child->Resume(serial);
  return child;
}

}  // namespace hyperion::snapshot
