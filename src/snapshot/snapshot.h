// Whole-VM snapshots: CPU state, RAM (zero-page elided), device registers,
// console state. Supports full snapshots, incremental (dirty-only)
// snapshots for checkpointing, and template cloning for fast provisioning.
//
// Disk contents are NOT captured here: block storage snapshots by stacking
// HVD overlays (src/storage), the standard split in production VMMs.

#ifndef SRC_SNAPSHOT_SNAPSHOT_H_
#define SRC_SNAPSHOT_SNAPSHOT_H_

#include <span>
#include <vector>

#include "src/core/host.h"
#include "src/core/vm.h"

namespace hyperion::snapshot {

struct SaveOptions {
  // Capture only pages dirtied since the last dirty-log harvest. The restore
  // target must already hold the base state.
  bool incremental = false;
  // Capture each vCPU engine's validated translation cache so a restored or
  // cloned VM starts with pre-warmed code caches (zero cold translates on
  // its first pass). Restore revalidates every unit against the restored
  // memory; anything stale degrades to cold translation.
  bool translations = true;
  // Emit the pre-translation v1 layout (no feature-bits word, no optional
  // sections) for downgrade paths and compatibility testing.
  bool legacy_v1 = false;
};

struct SnapshotInfo {
  uint32_t pages_total = 0;
  uint32_t pages_data = 0;   // pages with payload bytes in the snapshot
  uint32_t pages_zero = 0;   // elided all-zero pages
  uint32_t pages_absent = 0; // ballooned-out pages
  size_t bytes = 0;          // encoded size
};

// Serializes `vm`. The VM should be paused (or otherwise not running) for a
// consistent image; this is the caller's responsibility.
Result<std::vector<uint8_t>> SaveVm(core::Vm& vm, SaveOptions options = {},
                                    SnapshotInfo* info = nullptr);

// Restores a snapshot into `vm`, which must have the same RAM size and vCPU
// count. Full snapshots reset unmentioned pages to zero; incremental ones
// patch on top of current state.
Status LoadVm(core::Vm& vm, std::span<const uint8_t> bytes);

// Provisioning: creates a new VM from `config` and a template snapshot.
Result<core::Vm*> CloneVm(core::Host& host, core::VmConfig config,
                          std::span<const uint8_t> template_snapshot);

// VM fork (SnowFlock-style): creates a child VM on the same host whose RAM
// pages *share* the parent's host frames copy-on-write — O(pages) metadata,
// zero page copies up front. Writes on either side privatize the touched
// page through the regular COW-break machinery. The parent must be paused
// for the fork instant; config must match the parent's geometry and device
// complement (same RAM size, vCPUs, device models).
Result<core::Vm*> ForkVm(core::Host& host, core::VmConfig config, core::Vm& parent);

}  // namespace hyperion::snapshot

#endif  // SRC_SNAPSHOT_SNAPSHOT_H_
