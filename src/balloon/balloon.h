// Memory ballooning: host-driven cooperative reclaim.
//
// The host sets a per-VM balloon target (pages to give back). The guest's
// balloon driver (see guest::BalloonDriverProgram) polls the target with the
// kBalloonGetTarget hypercall and inflates/deflates with kBalloonInflate /
// kBalloonDeflate, releasing its own chosen pages — which is the whole point
// of ballooning: only the guest knows which pages are cheap to give up.
//
// BalloonController implements the host-side policy: distributing a reclaim
// demand across VMs proportionally to their reclaimable memory.

#ifndef SRC_BALLOON_BALLOON_H_
#define SRC_BALLOON_BALLOON_H_

#include <cstdint>
#include <vector>

#include "src/core/host.h"

namespace hyperion::balloon {

struct BalloonPlanEntry {
  core::Vm* vm = nullptr;
  uint32_t target_pages = 0;
};

class BalloonController {
 public:
  explicit BalloonController(core::Host* host) : host_(host) {}

  // Computes and applies balloon targets so that at least `pages_needed`
  // host frames become reclaimable, spread proportionally to each VM's
  // unballooned RAM. Returns the plan for inspection.
  Result<std::vector<BalloonPlanEntry>> ReclaimPages(uint32_t pages_needed);

  // Clears every VM's target (guests deflate on their next poll).
  void ReleaseAll();

  // Frames currently ballooned out across all VMs.
  uint32_t TotalBallooned() const;

 private:
  core::Host* host_;
};

}  // namespace hyperion::balloon

#endif  // SRC_BALLOON_BALLOON_H_
