#include "src/balloon/balloon.h"

namespace hyperion::balloon {

Result<std::vector<BalloonPlanEntry>> BalloonController::ReclaimPages(uint32_t pages_needed) {
  // Reclaimable capacity per VM: pages not yet ballooned, keeping a floor of
  // 25% of RAM so guests stay functional.
  struct Candidate {
    core::Vm* vm;
    uint32_t reclaimable;
  };
  std::vector<Candidate> candidates;
  uint64_t total_reclaimable = 0;
  for (const auto& vm : host_->vms()) {
    if (vm->state() != core::VmState::kRunning) {
      continue;
    }
    uint32_t pages = vm->memory().num_pages();
    uint32_t floor = pages / 4;
    uint32_t ballooned = vm->ballooned_pages();
    uint32_t reclaimable = pages - floor > ballooned ? pages - floor - ballooned : 0;
    if (reclaimable > 0) {
      candidates.push_back({vm.get(), reclaimable});
      total_reclaimable += reclaimable;
    }
  }
  if (total_reclaimable < pages_needed) {
    return ResourceExhaustedError("cannot reclaim " + std::to_string(pages_needed) +
                                  " pages; only " + std::to_string(total_reclaimable) +
                                  " reclaimable");
  }

  std::vector<BalloonPlanEntry> plan;
  uint32_t assigned = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const Candidate& c = candidates[i];
    uint32_t share;
    if (i + 1 == candidates.size()) {
      share = pages_needed - assigned;  // remainder to the last VM
    } else {
      share = static_cast<uint32_t>(static_cast<uint64_t>(pages_needed) * c.reclaimable /
                                    total_reclaimable);
    }
    share = std::min(share, c.reclaimable);
    assigned += share;
    uint32_t target = c.vm->ballooned_pages() + share;
    c.vm->SetBalloonTarget(target);
    plan.push_back({c.vm, target});
  }
  return plan;
}

void BalloonController::ReleaseAll() {
  for (const auto& vm : host_->vms()) {
    vm->SetBalloonTarget(0);
  }
}

uint32_t BalloonController::TotalBallooned() const {
  uint32_t total = 0;
  for (const auto& vm : host_->vms()) {
    total += vm->ballooned_pages();
  }
  return total;
}

}  // namespace hyperion::balloon
