#include "src/storage/hvd.h"

#include <cstring>
#include <vector>

#include "src/util/byte_stream.h"
#include "src/util/crc32.h"

namespace hyperion::storage {

namespace {

constexpr uint64_t RoundUp(uint64_t v, uint64_t align) { return (v + align - 1) / align * align; }

}  // namespace

Result<std::unique_ptr<HvdImage>> HvdImage::Create(std::unique_ptr<ByteStore> store,
                                                   uint64_t virtual_size, uint32_t cluster_bits,
                                                   std::string backing_name) {
  if (virtual_size == 0 || virtual_size % kSectorSize != 0) {
    return InvalidArgumentError("virtual size must be a positive multiple of 512");
  }
  if (cluster_bits < 12 || cluster_bits > 22) {
    return InvalidArgumentError("cluster_bits must be in [12, 22]");
  }
  if (store->size() != 0) {
    return InvalidArgumentError("store is not empty");
  }
  auto image = std::unique_ptr<HvdImage>(new HvdImage());
  image->store_ = std::move(store);
  image->virtual_size_ = virtual_size;
  image->cluster_bits_ = cluster_bits;
  image->backing_name_ = std::move(backing_name);

  uint64_t cluster = image->cluster_size();
  uint64_t entries_per_l2 = cluster / kL2EntryBytes;
  uint64_t clusters = RoundUp(virtual_size, cluster) / cluster;
  image->l1_entries_ = static_cast<uint32_t>((clusters + entries_per_l2 - 1) / entries_per_l2);
  image->l1_offset_ = cluster;  // header occupies cluster 0

  HYP_RETURN_IF_ERROR(image->WriteHeader());
  // Zero-fill the L1 table.
  std::vector<uint8_t> zeros(image->l1_entries_ * 8, 0);
  HYP_RETURN_IF_ERROR(image->store_->WriteAt(image->l1_offset_, zeros.data(), zeros.size()));
  image->next_alloc_ = RoundUp(image->l1_offset_ + zeros.size(), cluster);
  return image;
}

Result<std::unique_ptr<HvdImage>> HvdImage::Open(std::unique_ptr<ByteStore> store) {
  // Header layout: magic, version, virtual_size, cluster_bits, l1_entries,
  // l1_offset, backing string, crc over the preceding fields.
  uint8_t fixed[32];
  if (store->size() < sizeof(fixed)) {
    return DataLossError("image too small for an HVD header");
  }
  HYP_RETURN_IF_ERROR(store->ReadAt(0, fixed, sizeof(fixed)));
  ByteReader r(std::span<const uint8_t>(fixed, sizeof(fixed)));
  HYP_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kMagic) {
    return DataLossError("bad HVD magic");
  }
  HYP_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kVersion) {
    return UnimplementedError("unsupported HVD version " + std::to_string(version));
  }
  auto image = std::unique_ptr<HvdImage>(new HvdImage());
  HYP_ASSIGN_OR_RETURN(image->virtual_size_, r.ReadU64());
  HYP_ASSIGN_OR_RETURN(image->cluster_bits_, r.ReadU32());
  HYP_ASSIGN_OR_RETURN(image->l1_entries_, r.ReadU32());
  HYP_ASSIGN_OR_RETURN(image->l1_offset_, r.ReadU64());

  // Variable part: backing name length + bytes + crc.
  uint8_t len_buf[4];
  HYP_RETURN_IF_ERROR(store->ReadAt(sizeof(fixed), len_buf, 4));
  uint32_t name_len;
  std::memcpy(&name_len, len_buf, 4);
  if (name_len > 4096) {
    return DataLossError("implausible backing name length");
  }
  std::vector<uint8_t> var(name_len + 4);
  HYP_RETURN_IF_ERROR(store->ReadAt(sizeof(fixed) + 4, var.data(), var.size()));
  image->backing_name_.assign(var.begin(), var.begin() + name_len);
  uint32_t stored_crc;
  std::memcpy(&stored_crc, var.data() + name_len, 4);
  uint32_t crc = Crc32(fixed, sizeof(fixed));
  crc = Crc32(len_buf, 4, crc);
  crc = Crc32(var.data(), name_len, crc);
  if (crc != stored_crc) {
    return DataLossError("HVD header checksum mismatch");
  }

  if (image->cluster_bits_ < 12 || image->cluster_bits_ > 22 || image->virtual_size_ == 0) {
    return DataLossError("corrupt HVD geometry");
  }
  image->store_ = std::move(store);
  image->next_alloc_ = RoundUp(image->store_->size(), image->cluster_size());

  // Count allocated clusters for reporting, and verify every one against
  // its CRC — a crash may have torn an unpublished cluster (harmless, it is
  // unreachable), but a published cluster that fails its checksum means the
  // medium lied and the image must be rejected.
  uint64_t entries_per_l2 = image->cluster_size() / kL2EntryBytes;
  for (uint32_t i = 0; i < image->l1_entries_; ++i) {
    HYP_ASSIGN_OR_RETURN(uint64_t l2_off, image->ReadTableEntry(image->l1_offset_ + i * 8));
    if (l2_off == 0) {
      continue;
    }
    for (uint64_t j = 0; j < entries_per_l2; ++j) {
      HYP_ASSIGN_OR_RETURN(ClusterRef ref,
                           image->ReadClusterRef(l2_off + j * kL2EntryBytes));
      if (ref.offset != 0) {
        ++image->allocated_clusters_;
      }
    }
  }
  HYP_RETURN_IF_ERROR(image->VerifyAllClusters());
  return image;
}

Status HvdImage::VerifyAllClusters() {
  uint64_t entries_per_l2 = cluster_size() / kL2EntryBytes;
  std::vector<uint8_t> buf(cluster_size());
  for (uint32_t i = 0; i < l1_entries_; ++i) {
    HYP_ASSIGN_OR_RETURN(uint64_t l2_off, ReadTableEntry(l1_offset_ + i * 8));
    if (l2_off == 0) {
      continue;
    }
    for (uint64_t j = 0; j < entries_per_l2; ++j) {
      HYP_ASSIGN_OR_RETURN(ClusterRef ref, ReadClusterRef(l2_off + j * kL2EntryBytes));
      if (ref.offset == 0) {
        continue;
      }
      HYP_RETURN_IF_ERROR(ReadVerifiedCluster(ref, buf.data()));
    }
  }
  return OkStatus();
}

Status HvdImage::WriteHeader() {
  ByteWriter w;
  w.WriteU32(kMagic);
  w.WriteU32(kVersion);
  w.WriteU64(virtual_size_);
  w.WriteU32(cluster_bits_);
  w.WriteU32(l1_entries_);
  w.WriteU64(l1_offset_);
  w.WriteString(backing_name_);
  uint32_t crc = Crc32(w.buffer().data(), w.size());
  w.WriteU32(crc);
  if (w.size() > cluster_size()) {
    return InvalidArgumentError("backing name too long for the header cluster");
  }
  return store_->WriteAt(0, w.buffer().data(), w.size());
}

Result<uint64_t> HvdImage::ReadTableEntry(uint64_t entry_offset) {
  uint64_t v = 0;
  if (entry_offset + 8 > store_->size()) {
    return v;  // sparse region never written: entry is zero
  }
  HYP_RETURN_IF_ERROR(store_->ReadAt(entry_offset, &v, 8));
  return v;
}

Status HvdImage::WriteTableEntry(uint64_t entry_offset, uint64_t value) {
  return store_->WriteAt(entry_offset, &value, 8);
}

Result<HvdImage::ClusterRef> HvdImage::ReadClusterRef(uint64_t entry_offset) {
  ClusterRef ref;
  if (entry_offset + kL2EntryBytes > store_->size()) {
    return ref;  // sparse region never written: entry is zero
  }
  uint8_t raw[kL2EntryBytes];
  HYP_RETURN_IF_ERROR(store_->ReadAt(entry_offset, raw, sizeof(raw)));
  std::memcpy(&ref.offset, raw, 8);
  std::memcpy(&ref.crc, raw + 8, 4);
  return ref;
}

Status HvdImage::WriteClusterRef(uint64_t entry_offset, const ClusterRef& ref) {
  // One 16-byte write, 16-byte aligned within its table cluster, so it never
  // straddles a sector: the publish is all-or-nothing on a torn medium.
  uint8_t raw[kL2EntryBytes] = {0};
  std::memcpy(raw, &ref.offset, 8);
  std::memcpy(raw + 8, &ref.crc, 4);
  return store_->WriteAt(entry_offset, raw, sizeof(raw));
}

Status HvdImage::ReadVerifiedCluster(const ClusterRef& ref, uint8_t* out) {
  HYP_RETURN_IF_ERROR(store_->ReadAt(ref.offset, out, cluster_size()));
  uint32_t crc = Crc32(out, cluster_size());
  if (crc != ref.crc) {
    return DataLossError("HVD cluster at offset " + std::to_string(ref.offset) +
                         " fails its CRC (torn write or corruption)");
  }
  return OkStatus();
}

uint64_t HvdImage::AllocateRaw() {
  uint64_t off = next_alloc_;
  next_alloc_ += cluster_size();
  return off;
}

Result<HvdImage::ClusterRef> HvdImage::LookupCluster(uint64_t voff) {
  uint64_t cluster = cluster_size();
  uint64_t index = voff / cluster;
  uint64_t entries_per_l2 = cluster / kL2EntryBytes;
  uint32_t l1 = static_cast<uint32_t>(index / entries_per_l2);
  uint64_t l2_index = index % entries_per_l2;
  if (l1 >= l1_entries_) {
    return OutOfRangeError("virtual offset past image end");
  }
  HYP_ASSIGN_OR_RETURN(uint64_t l2_off, ReadTableEntry(l1_offset_ + l1 * 8));
  if (l2_off == 0) {
    return ClusterRef{};
  }
  return ReadClusterRef(l2_off + l2_index * kL2EntryBytes);
}

Result<uint64_t> HvdImage::EnsureL2Table(uint64_t index) {
  uint64_t cluster = cluster_size();
  uint64_t entries_per_l2 = cluster / kL2EntryBytes;
  uint32_t l1 = static_cast<uint32_t>(index / entries_per_l2);
  if (l1 >= l1_entries_) {
    return OutOfRangeError("virtual offset past image end");
  }
  HYP_ASSIGN_OR_RETURN(uint64_t l2_off, ReadTableEntry(l1_offset_ + l1 * 8));
  if (l2_off == 0) {
    // Zero-fill the fresh table before publishing its L1 entry: a crash
    // between the two leaves the table unreachable, not half-initialized.
    l2_off = AllocateRaw();
    std::vector<uint8_t> zeros(cluster, 0);
    HYP_RETURN_IF_ERROR(store_->WriteAt(l2_off, zeros.data(), zeros.size()));
    HYP_RETURN_IF_ERROR(WriteTableEntry(l1_offset_ + l1 * 8, l2_off));
  }
  return l2_off;
}

Status HvdImage::WriteClusterSpan(uint64_t voff, uint64_t in_cluster,
                                  const uint8_t* data, uint64_t chunk) {
  uint64_t cluster = cluster_size();
  uint64_t index = voff / cluster;
  uint64_t entries_per_l2 = cluster / kL2EntryBytes;
  uint64_t l2_index = index % entries_per_l2;
  HYP_ASSIGN_OR_RETURN(uint64_t l2_off, EnsureL2Table(index));
  uint64_t entry_off = l2_off + l2_index * kL2EntryBytes;
  HYP_ASSIGN_OR_RETURN(ClusterRef old_ref, ReadClusterRef(entry_off));

  // Build the cluster's new contents: the written span merged over the old
  // cluster (verified), the backing image, or zeros.
  std::vector<uint8_t> buf(cluster, 0);
  if (chunk < cluster) {
    if (old_ref.offset != 0) {
      HYP_RETURN_IF_ERROR(ReadVerifiedCluster(old_ref, buf.data()));
    } else if (backing_ != nullptr) {
      uint64_t cluster_voff = index * cluster;
      uint64_t backing_bytes = backing_->num_sectors() * kSectorSize;
      if (cluster_voff < backing_bytes) {
        uint64_t n = std::min<uint64_t>(cluster, backing_bytes - cluster_voff);
        HYP_RETURN_IF_ERROR(backing_->ReadSectors(cluster_voff / kSectorSize,
                                                  static_cast<uint32_t>(n / kSectorSize),
                                                  buf.data()));
      }
    }
  }
  std::memcpy(buf.data() + in_cluster, data, chunk);

  // Redirect-on-write: land the bytes out of place, then publish atomically.
  // A tear during the data write leaves the old entry (and cluster) intact.
  uint64_t fresh = AllocateRaw();
  HYP_RETURN_IF_ERROR(store_->WriteAt(fresh, buf.data(), buf.size()));
  ClusterRef new_ref{fresh, Crc32(buf.data(), buf.size())};
  HYP_RETURN_IF_ERROR(WriteClusterRef(entry_off, new_ref));
  if (old_ref.offset == 0) {
    ++allocated_clusters_;
  }
  return OkStatus();
}

Status HvdImage::ReadSectors(uint64_t lba, uint32_t count, uint8_t* out) {
  HYP_RETURN_IF_ERROR(CheckRange(lba, count));
  return ReadRange(lba * kSectorSize, out, static_cast<uint64_t>(count) * kSectorSize);
}

Status HvdImage::WriteSectors(uint64_t lba, uint32_t count, const uint8_t* data) {
  HYP_RETURN_IF_ERROR(CheckRange(lba, count));
  return WriteRange(lba * kSectorSize, data, static_cast<uint64_t>(count) * kSectorSize);
}

Status HvdImage::ReadRange(uint64_t offset, uint8_t* out, uint64_t n) {
  uint64_t cluster = cluster_size();
  std::vector<uint8_t> scratch(cluster);
  while (n > 0) {
    uint64_t in_cluster = offset % cluster;
    uint64_t chunk = std::min(n, cluster - in_cluster);
    HYP_ASSIGN_OR_RETURN(ClusterRef ref, LookupCluster(offset));
    if (ref.offset != 0) {
      // Whole-cluster read so the CRC can vouch for the returned span.
      HYP_RETURN_IF_ERROR(ReadVerifiedCluster(ref, scratch.data()));
      std::memcpy(out, scratch.data() + in_cluster, chunk);
    } else if (backing_ != nullptr) {
      // Fall through to the backing image sector-by-sector-aligned range.
      uint64_t backing_bytes = backing_->num_sectors() * kSectorSize;
      if (offset < backing_bytes) {
        uint64_t avail = std::min(chunk, backing_bytes - offset);
        HYP_RETURN_IF_ERROR(backing_->ReadSectors(offset / kSectorSize,
                                                  static_cast<uint32_t>(avail / kSectorSize),
                                                  out));
        if (avail < chunk) {
          std::memset(out + avail, 0, chunk - avail);
        }
      } else {
        std::memset(out, 0, chunk);
      }
    } else {
      std::memset(out, 0, chunk);
    }
    out += chunk;
    offset += chunk;
    n -= chunk;
  }
  return OkStatus();
}

Status HvdImage::WriteRange(uint64_t offset, const uint8_t* data, uint64_t n) {
  uint64_t cluster = cluster_size();
  while (n > 0) {
    uint64_t in_cluster = offset % cluster;
    uint64_t chunk = std::min(n, cluster - in_cluster);
    HYP_RETURN_IF_ERROR(WriteClusterSpan(offset, in_cluster, data, chunk));
    data += chunk;
    offset += chunk;
    n -= chunk;
  }
  return OkStatus();
}

Result<std::unique_ptr<HvdImage>> CreateOverlay(std::shared_ptr<BlockStore> base,
                                                std::string base_name,
                                                std::unique_ptr<ByteStore> store,
                                                uint32_t cluster_bits) {
  uint64_t size = base->num_sectors() * kSectorSize;
  HYP_ASSIGN_OR_RETURN(auto overlay,
                       HvdImage::Create(std::move(store), size, cluster_bits, std::move(base_name)));
  overlay->SetBacking(std::move(base));
  return overlay;
}

}  // namespace hyperion::storage
