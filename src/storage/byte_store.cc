#include "src/storage/byte_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hyperion::storage {

Status MemByteStore::ReadAt(uint64_t offset, void* out, size_t n) const {
  if (offset + n > data_.size()) {
    return OutOfRangeError("read past end of byte store");
  }
  std::memcpy(out, data_.data() + offset, n);
  return OkStatus();
}

Status MemByteStore::WriteAt(uint64_t offset, const void* data, size_t n) {
  if (offset + n > data_.size()) {
    data_.resize(offset + n, 0);
  }
  std::memcpy(data_.data() + offset, data, n);
  return OkStatus();
}

Result<std::unique_ptr<FileByteStore>> FileByteStore::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return InternalError("open(" + path + "): " + std::strerror(errno));
  }
  off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return InternalError("lseek(" + path + "): " + std::strerror(errno));
  }
  return std::unique_ptr<FileByteStore>(new FileByteStore(fd, static_cast<uint64_t>(end)));
}

FileByteStore::~FileByteStore() { ::close(fd_); }

Status FileByteStore::ReadAt(uint64_t offset, void* out, size_t n) const {
  if (offset + n > size_) {
    return OutOfRangeError("read past end of file store");
  }
  size_t done = 0;
  while (done < n) {
    ssize_t got = ::pread(fd_, static_cast<uint8_t*>(out) + done, n - done,
                          static_cast<off_t>(offset + done));
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      return InternalError(std::string("pread: ") + std::strerror(errno));
    }
    if (got == 0) {
      return DataLossError("unexpected EOF in file store");
    }
    done += static_cast<size_t>(got);
  }
  return OkStatus();
}

Status FileByteStore::WriteAt(uint64_t offset, const void* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    ssize_t put = ::pwrite(fd_, static_cast<const uint8_t*>(data) + done, n - done,
                           static_cast<off_t>(offset + done));
    if (put < 0) {
      if (errno == EINTR) {
        continue;
      }
      return InternalError(std::string("pwrite: ") + std::strerror(errno));
    }
    done += static_cast<size_t>(put);
  }
  size_ = std::max(size_, offset + n);
  return OkStatus();
}

Status FileByteStore::Sync() {
  if (::fsync(fd_) != 0) {
    return InternalError(std::string("fsync: ") + std::strerror(errno));
  }
  return OkStatus();
}

}  // namespace hyperion::storage
