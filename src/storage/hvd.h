// HVD: hyperion virtual disk — a qcow-style copy-on-write image format.
//
// Layout: a header cluster, an L1 table of offsets to L2 tables, L2 tables
// of 16-byte entries {data cluster offset, CRC32 of the cluster's contents}.
// Unallocated clusters read through to the backing image (or zeros). Writes
// allocate at end-of-file and COW the backing contents, so overlays ("clone
// from template", "disk snapshot") are O(1) to create regardless of image
// size.
//
// Crash consistency (v2): data clusters are never updated in place. Every
// guest write builds the cluster's new contents in a freshly allocated
// cluster and then publishes {offset, crc} with a single 16-byte L2 entry
// update. The medium persists whole 512-byte sectors atomically and an L2
// entry never straddles a sector boundary, so a write torn at any point
// leaves the entry either old or new — the old data cluster is untouched
// either way. The per-cluster CRC side-structure turns any other torn state
// (a half-written data or table cluster that was not yet published) into a
// detected error instead of silent garbage; VerifyAllClusters() runs the
// full check and Open() performs it automatically. Superseded clusters leak
// until offline compaction (not modeled), the standard log-structured trade.
//
// Snapshot model: external/overlay snapshots only — freeze an image by
// stacking a fresh overlay on top of it — so no refcount tables are needed.

#ifndef SRC_STORAGE_HVD_H_
#define SRC_STORAGE_HVD_H_

#include <memory>
#include <string>

#include "src/storage/block_store.h"
#include "src/storage/byte_store.h"

namespace hyperion::storage {

class HvdImage final : public BlockStore {
 public:
  static constexpr uint32_t kMagic = 0x31445648;  // "HVD1"
  static constexpr uint32_t kVersion = 2;         // 2: CRC'd redirect-on-write
  static constexpr uint32_t kDefaultClusterBits = 16;  // 64 KiB clusters
  static constexpr uint32_t kL2EntryBytes = 16;   // {u64 offset, u32 crc, pad}

  // Creates a fresh, fully sparse image of `virtual_size` bytes (must be a
  // multiple of the sector size) in `store`. `backing_name` is recorded in
  // the header; attach the actual backing store after opening.
  static Result<std::unique_ptr<HvdImage>> Create(std::unique_ptr<ByteStore> store,
                                                  uint64_t virtual_size,
                                                  uint32_t cluster_bits = kDefaultClusterBits,
                                                  std::string backing_name = "");

  // Opens an existing image, validating the header.
  static Result<std::unique_ptr<HvdImage>> Open(std::unique_ptr<ByteStore> store);

  // Attaches the backing image named in the header (resolved by the caller).
  // The backing store is used read-only.
  void SetBacking(std::shared_ptr<BlockStore> backing) { backing_ = std::move(backing); }

  const std::string& backing_name() const { return backing_name_; }
  uint64_t virtual_size() const { return virtual_size_; }
  uint32_t cluster_size() const { return 1u << cluster_bits_; }
  uint64_t allocated_clusters() const { return allocated_clusters_; }
  // Bytes the image occupies in its store (the "thin-provisioned" size).
  uint64_t store_size() const { return store_->size(); }

  // BlockStore interface.
  uint64_t num_sectors() const override { return virtual_size_ / kSectorSize; }
  Status ReadSectors(uint64_t lba, uint32_t count, uint8_t* out) override;
  Status WriteSectors(uint64_t lba, uint32_t count, const uint8_t* data) override;
  Status Flush() override { return store_->Sync(); }

  // Reads every allocated data cluster and checks it against its L2 CRC.
  // A mismatch (torn or bit-rotted cluster) returns kDataLoss.
  Status VerifyAllClusters();

 private:
  HvdImage() = default;

  // A published data cluster: its store offset and contents CRC.
  struct ClusterRef {
    uint64_t offset = 0;  // 0 = unallocated
    uint32_t crc = 0;
  };

  Status WriteHeader();
  Status ReadRange(uint64_t offset, uint8_t* out, uint64_t n);
  Status WriteRange(uint64_t offset, const uint8_t* data, uint64_t n);

  // Returns the entry for the data cluster covering virtual offset `voff`
  // (offset 0 when unallocated).
  Result<ClusterRef> LookupCluster(uint64_t voff);
  // Redirect-on-write: writes [in_cluster, in_cluster+chunk) of the cluster
  // covering `voff` into a fresh cluster (merging old/backing contents) and
  // atomically publishes the new {offset, crc}.
  Status WriteClusterSpan(uint64_t voff, uint64_t in_cluster,
                          const uint8_t* data, uint64_t chunk);
  // Reads the full data cluster at `ref` into `out` and verifies its CRC.
  Status ReadVerifiedCluster(const ClusterRef& ref, uint8_t* out);

  Result<uint64_t> ReadTableEntry(uint64_t entry_offset);   // L1 (8 bytes)
  Status WriteTableEntry(uint64_t entry_offset, uint64_t value);
  Result<ClusterRef> ReadClusterRef(uint64_t entry_offset);  // L2 (16 bytes)
  Status WriteClusterRef(uint64_t entry_offset, const ClusterRef& ref);
  // Finds (or allocates and publishes) the L2 table for cluster `index`.
  Result<uint64_t> EnsureL2Table(uint64_t index);
  uint64_t AllocateRaw();  // reserves one cluster-aligned region at EOF

  std::unique_ptr<ByteStore> store_;
  std::shared_ptr<BlockStore> backing_;
  std::string backing_name_;
  uint64_t virtual_size_ = 0;
  uint32_t cluster_bits_ = kDefaultClusterBits;
  uint32_t l1_entries_ = 0;
  uint64_t l1_offset_ = 0;
  uint64_t next_alloc_ = 0;
  uint64_t allocated_clusters_ = 0;
};

// Creates an O(1) overlay (clone/snapshot) on `store` whose reads fall
// through to `base`. `base_name` is recorded for later re-open resolution.
Result<std::unique_ptr<HvdImage>> CreateOverlay(std::shared_ptr<BlockStore> base,
                                                std::string base_name,
                                                std::unique_ptr<ByteStore> store,
                                                uint32_t cluster_bits = HvdImage::kDefaultClusterBits);

}  // namespace hyperion::storage

#endif  // SRC_STORAGE_HVD_H_
