// Block storage interface used by the emulated and virtio block devices,
// plus a trivial RAM-backed implementation.

#ifndef SRC_STORAGE_BLOCK_STORE_H_
#define SRC_STORAGE_BLOCK_STORE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/util/status.h"

namespace hyperion::storage {

inline constexpr uint32_t kSectorSize = 512;

class BlockStore {
 public:
  virtual ~BlockStore() = default;

  virtual uint64_t num_sectors() const = 0;

  // Reads `count` sectors starting at `lba` into `out` (count*512 bytes).
  virtual Status ReadSectors(uint64_t lba, uint32_t count, uint8_t* out) = 0;

  // Writes `count` sectors starting at `lba` from `data`.
  virtual Status WriteSectors(uint64_t lba, uint32_t count, const uint8_t* data) = 0;

  virtual Status Flush() { return OkStatus(); }

 protected:
  Status CheckRange(uint64_t lba, uint32_t count) const {
    if (lba + count > num_sectors() || lba + count < lba) {
      return OutOfRangeError("sector range [" + std::to_string(lba) + ", +" +
                             std::to_string(count) + ") past device end");
    }
    return OkStatus();
  }
};

// RAM-backed store, mainly for tests and small scratch disks.
class MemBlockStore final : public BlockStore {
 public:
  explicit MemBlockStore(uint64_t num_sectors)
      : data_(num_sectors * kSectorSize), sectors_(num_sectors) {}

  uint64_t num_sectors() const override { return sectors_; }

  Status ReadSectors(uint64_t lba, uint32_t count, uint8_t* out) override {
    HYP_RETURN_IF_ERROR(CheckRange(lba, count));
    std::copy_n(data_.begin() + static_cast<ptrdiff_t>(lba * kSectorSize),
                static_cast<size_t>(count) * kSectorSize, out);
    return OkStatus();
  }

  Status WriteSectors(uint64_t lba, uint32_t count, const uint8_t* data) override {
    HYP_RETURN_IF_ERROR(CheckRange(lba, count));
    std::copy_n(data, static_cast<size_t>(count) * kSectorSize,
                data_.begin() + static_cast<ptrdiff_t>(lba * kSectorSize));
    return OkStatus();
  }

 private:
  std::vector<uint8_t> data_;
  uint64_t sectors_;
};

}  // namespace hyperion::storage

#endif  // SRC_STORAGE_BLOCK_STORE_H_
