// Growable random-access byte containers backing HVD images: an in-memory
// implementation for tests/benches and a file-backed one proving the on-disk
// format.

#ifndef SRC_STORAGE_BYTE_STORE_H_
#define SRC_STORAGE_BYTE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace hyperion::storage {

class ByteStore {
 public:
  virtual ~ByteStore() = default;

  virtual uint64_t size() const = 0;

  // Reads `n` bytes at `offset`; reading past EOF is an error.
  virtual Status ReadAt(uint64_t offset, void* out, size_t n) const = 0;

  // Writes `n` bytes at `offset`, growing the store as needed.
  virtual Status WriteAt(uint64_t offset, const void* data, size_t n) = 0;

  virtual Status Sync() { return OkStatus(); }
};

class MemByteStore final : public ByteStore {
 public:
  uint64_t size() const override { return data_.size(); }

  Status ReadAt(uint64_t offset, void* out, size_t n) const override;
  Status WriteAt(uint64_t offset, const void* data, size_t n) override;

  const std::vector<uint8_t>& data() const { return data_; }

 private:
  std::vector<uint8_t> data_;
};

class FileByteStore final : public ByteStore {
 public:
  // Opens (creating if absent) the file at `path` for read/write.
  static Result<std::unique_ptr<FileByteStore>> Open(const std::string& path);
  ~FileByteStore() override;

  uint64_t size() const override { return size_; }
  Status ReadAt(uint64_t offset, void* out, size_t n) const override;
  Status WriteAt(uint64_t offset, const void* data, size_t n) override;
  Status Sync() override;

 private:
  FileByteStore(int fd, uint64_t file_size) : fd_(fd), size_(file_size) {}

  int fd_;
  uint64_t size_;
};

}  // namespace hyperion::storage

#endif  // SRC_STORAGE_BYTE_STORE_H_
