// FrameBuf: the refcounted payload buffer behind net::Frame (DESIGN.md §10).
//
// A frame gathered from guest TX memory is written into a FrameBuf once and
// then travels by handle: VirtualSwitch staging, Link scheduling, fault
// injection (drop/duplicate/delay all copy or discard handles, never bytes),
// and the staged-core TxStage commit all share the same storage. The scatter
// into the receiving guest's RX chain is the only second touch of the bytes.
//
// Storage comes from the host FramePool when one is available — up to
// kMaxChunks non-contiguous 4 KiB host frames, enough for a jumbo frame —
// and falls back to a heap vector when the pool is exhausted or absent
// (unit tests, frames built outside a VM). Pool-backed storage is released
// through FramePool::ReleaseNetBuf, which stages the decref when the last
// handle dies inside an execute slice; that keeps pool state bit-identical
// across worker counts even though handle lifetimes end on worker threads.
//
// Handles are cheap to copy (one shared_ptr); the control block's atomic
// refcount makes cross-thread handle copies safe without further locking.
// The bytes themselves are written only by the producer before the first
// handoff — everything downstream reads.

#ifndef SRC_NET_FRAME_BUF_H_
#define SRC_NET_FRAME_BUF_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/mem/frame_pool.h"

namespace hyperion::net {

class FrameBuf {
 public:
  // Enough 4 KiB chunks for kMaxFrameBytes (9216) of payload.
  static constexpr size_t kMaxChunks = 3;

  FrameBuf() = default;  // empty: size() == 0, no storage

  // Allocates `size` bytes, preferring `pool` frames; falls back to the heap
  // when the pool is null, exhausted, or `size` exceeds kMaxChunks pages.
  // Contents are uninitialized — callers fill every byte before handoff.
  static FrameBuf Allocate(mem::FramePool* pool, size_t size);

  // Heap-backed construction for tests and devices without a pool.
  void Assign(const uint8_t* data, size_t n);
  void Assign(size_t n, uint8_t value);

  size_t size() const { return s_ ? s_->size : 0; }
  bool empty() const { return size() == 0; }
  bool pool_backed() const { return s_ && s_->pool != nullptr; }
  long use_count() const { return s_.use_count(); }

  // The storage as a sequence of contiguous spans (1 for heap-backed, up to
  // kMaxChunks for pool-backed). Writers iterate chunks; the last chunk may
  // be partial.
  size_t num_chunks() const;
  std::span<uint8_t> chunk(size_t i);
  std::span<const uint8_t> chunk(size_t i) const;

  uint8_t operator[](size_t i) const;
  void set_byte(size_t i, uint8_t v);

  // Copies min(n, size()) bytes to dst.
  void CopyTo(uint8_t* dst, size_t n) const;

 private:
  struct Storage {
    Storage() = default;
    Storage(const Storage&) = delete;
    Storage& operator=(const Storage&) = delete;
    ~Storage();  // releases pool frames via FramePool::ReleaseNetBuf

    mem::FramePool* pool = nullptr;  // null => heap-backed
    std::array<mem::HostFrame, kMaxChunks> frames{};
    uint32_t nframes = 0;
    std::vector<uint8_t> heap;
    size_t size = 0;
  };

  std::shared_ptr<Storage> s_;
};

}  // namespace hyperion::net

#endif  // SRC_NET_FRAME_BUF_H_
