#include "src/net/network.h"

namespace hyperion::net {

Status VirtualSwitch::Attach(MacAddr addr, FrameSink* sink, LinkParams params) {
  if (addr == kBroadcast) {
    return InvalidArgumentError("cannot attach at the broadcast address");
  }
  auto [it, inserted] =
      ports_.emplace(addr, std::make_unique<PortState>(PortState{sink, Link(clock_, params)}));
  if (!inserted) {
    return AlreadyExistsError("port address already attached");
  }
  return OkStatus();
}

Status VirtualSwitch::Detach(MacAddr addr) {
  if (ports_.erase(addr) == 0) {
    return NotFoundError("no port at that address");
  }
  return OkStatus();
}

void VirtualSwitch::Send(Frame frame) {
  ++stats_.frames_sent;
  if (frame.payload.size() > kMaxFrameBytes) {
    ++stats_.frames_dropped;
    return;
  }
  if (frame.dst == kBroadcast) {
    for (auto& [addr, port] : ports_) {
      if (addr != frame.src) {
        DeliverTo(addr, *port, frame);
      }
    }
    return;
  }
  auto it = ports_.find(frame.dst);
  if (it == ports_.end()) {
    ++stats_.frames_dropped;
    return;
  }
  DeliverTo(it->first, *it->second, frame);
}

void VirtualSwitch::DeliverTo(MacAddr dst_key, PortState& port, const Frame& frame) {
  // The port may detach while the frame is in flight, so the closure looks
  // the port up again by address at delivery time.
  size_t wire = frame.wire_bytes();
  port.link.Transfer(wire, [this, dst_key, frame] {
    auto it = ports_.find(dst_key);
    if (it == ports_.end()) {
      ++stats_.frames_dropped;  // port detached in flight
      return;
    }
    ++stats_.frames_delivered;
    stats_.bytes_delivered += frame.wire_bytes();
    it->second->sink->OnFrame(frame);
  });
}

}  // namespace hyperion::net
