#include "src/net/network.h"

#include <cassert>

#include "src/fault/fault.h"

namespace hyperion::net {

SimTime Link::TransferFaultyImpl(const Phase& ph, size_t bytes, SimClock::Callback on_done,
                                 SimClock::Callback on_lost) {
  if (injector_ == nullptr) {
    return Transfer(ph, bytes, std::move(on_done));
  }
  SimTime start = std::max(clock_.now(), busy_until_);
  SimTime base = params_.TransmitTime(bytes) + params_.latency;
  fault::TransferFault f = injector_->OnTransfer(fault_site_, start, base);
  SimTime done = start + base + f.extra_latency;
  busy_until_ = start + params_.TransmitTime(bytes);
  bytes_carried_ += bytes;
  if (f.lost) {
    ++transfers_lost_;
    clock_.ScheduleAt(ph, done, std::move(on_lost));
  } else {
    clock_.ScheduleAt(ph, done, std::move(on_done));
  }
  return done;
}

Status VirtualSwitch::Attach(const DirectPhase&, MacAddr addr, FrameSink* sink,
                             LinkParams params) {
  if (addr == kBroadcast) {
    return InvalidArgumentError("cannot attach at the broadcast address");
  }
  auto [it, inserted] =
      ports_.emplace(addr, std::make_unique<PortState>(PortState{sink, Link(clock_, params)}));
  if (!inserted) {
    return AlreadyExistsError("port address already attached");
  }
  return OkStatus();
}

Status VirtualSwitch::Detach(const DirectPhase&, MacAddr addr) {
  if (ports_.erase(addr) == 0) {
    return NotFoundError("no port at that address");
  }
  return OkStatus();
}

void VirtualSwitch::SendAny(const Phase& ph, Frame frame) {
  TxStage* stage = tls_stage_;
  if (stage != nullptr && stage->sw == this) {
    stage->frames.push_back(std::move(frame));
    return;
  }
  // Execute-phase sends always target the staged switch (each NIC talks to
  // its own host's switch), so a non-staged send must carry a direct token.
  const DirectPhase* dp = ph.AsDirect();
  assert(dp != nullptr && "cross-switch send from an executing slice");
  if (dp != nullptr) {
    SendAt(*dp, std::move(frame), clock_->now());
  }
}

void VirtualSwitch::Send(const DirectPhase& ph, Frame frame) { SendAny(ph, std::move(frame)); }

void VirtualSwitch::StageTx(const ExecutePhase& ph, Frame frame) {
  SendAny(ph, std::move(frame));
}

void VirtualSwitch::Transmit(const Phase& ph, Frame frame) { SendAny(ph, std::move(frame)); }

void VirtualSwitch::CommitStage(const CommitPhase& ph, TxStage& stage) {
  for (Frame& frame : stage.frames) {
    SendAt(ph, std::move(frame), stage.vnow);
  }
  stage.frames.clear();
}

void VirtualSwitch::SendAt(const DirectPhase& ph, Frame frame, SimTime at) {
  ++stats_.frames_sent;
  if (frame.payload.size() > kMaxFrameBytes) {
    ++stats_.frames_dropped;
    return;
  }
  if (frame.dst == kBroadcast) {
    for (auto& [addr, port] : ports_) {
      if (addr != frame.src) {
        DeliverTo(ph, addr, *port, frame, at);
      }
    }
    return;
  }
  auto it = ports_.find(frame.dst);
  if (it == ports_.end()) {
    ++stats_.frames_dropped;
    return;
  }
  DeliverTo(ph, it->first, *it->second, frame, at);
}

void VirtualSwitch::DeliverTo(const DirectPhase& ph, MacAddr dst_key, PortState& port,
                              const Frame& frame, SimTime at) {
  size_t wire = frame.wire_bytes();
  uint32_t copies = 1;
  SimTime extra_latency = 0;
  if (injector_ != nullptr) {
    fault::FrameFault ff = injector_->OnFrame(fault_site_, at, frame.src, dst_key);
    if (ff.drop) {
      ++stats_.frames_dropped;
      ++stats_.frames_injected_dropped;
      return;
    }
    copies += ff.duplicates;
    stats_.frames_injected_duplicated += ff.duplicates;
    extra_latency = ff.extra_latency;
    if (extra_latency != 0) {
      ++stats_.frames_injected_delayed;
    }
  }
  // The port may detach while the frame is in flight, so the closure looks
  // the port up again by address at delivery time. An injected delay lands
  // after the wire time, so delayed frames are genuinely overtaken by
  // later undelayed traffic (reordering).
  auto deliver = [this, dst_key, frame](const SerialPhase& sp) {
    auto it = ports_.find(dst_key);
    if (it == ports_.end()) {
      ++stats_.frames_dropped;  // port detached in flight
      return;
    }
    ++stats_.frames_delivered;
    stats_.bytes_delivered += frame.wire_bytes();
    it->second->sink->OnFrame(sp, frame);
  };
  for (uint32_t c = 0; c < copies; ++c) {
    SimTime done = port.link.ScheduleTransferAt(at, wire);
    clock_->ScheduleAt(ph, done + extra_latency, deliver);
  }
}

}  // namespace hyperion::net
