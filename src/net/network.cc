#include "src/net/network.h"

#include <algorithm>
#include <cassert>

#include "src/fault/fault.h"

namespace hyperion::net {

SimTime Link::TransferFaultyImpl(const Phase& ph, size_t bytes, SimClock::Callback on_done,
                                 SimClock::Callback on_lost) {
  if (injector_ == nullptr) {
    return Transfer(ph, bytes, std::move(on_done));
  }
  SimTime start = std::max(clock_.now(), busy_until_);
  SimTime base = params_.TransmitTime(bytes) + params_.latency;
  fault::TransferFault f = injector_->OnTransfer(fault_site_, start, base);
  SimTime done = start + base + f.extra_latency;
  busy_until_ = start + params_.TransmitTime(bytes);
  bytes_carried_ += bytes;
  if (f.lost) {
    ++transfers_lost_;
    clock_.ScheduleAt(ph, done, std::move(on_lost));
  } else {
    clock_.ScheduleAt(ph, done, std::move(on_done));
  }
  return done;
}

Status VirtualSwitch::Attach(const DirectPhase&, MacAddr addr, FrameSink* sink,
                             LinkParams params) {
  if (addr == kBroadcast) {
    return InvalidArgumentError("cannot attach at the broadcast address");
  }
  auto [it, inserted] =
      ports_.emplace(addr, std::make_unique<PortState>(PortState{sink, Link(clock_, params)}));
  if (!inserted) {
    return AlreadyExistsError("port address already attached");
  }
  return OkStatus();
}

Status VirtualSwitch::Detach(const DirectPhase&, MacAddr addr) {
  if (ports_.erase(addr) == 0) {
    return NotFoundError("no port at that address");
  }
  return OkStatus();
}

void VirtualSwitch::SendAny(const Phase& ph, Frame frame) {
  TxStage* stage = tls_stage_;
  if (stage != nullptr && stage->sw == this) {
    stage->frames.push_back(std::move(frame));
    return;
  }
  // Execute-phase sends always target the staged switch (each NIC talks to
  // its own host's switch), so a non-staged send must carry a direct token.
  const DirectPhase* dp = ph.AsDirect();
  assert(dp != nullptr && "cross-switch send from an executing slice");
  if (dp != nullptr) {
    SendAt(*dp, std::move(frame), clock_->now());
  }
}

void VirtualSwitch::Send(const DirectPhase& ph, Frame frame) { SendAny(ph, std::move(frame)); }

void VirtualSwitch::StageTx(const ExecutePhase& ph, Frame frame) {
  SendAny(ph, std::move(frame));
}

void VirtualSwitch::Transmit(const Phase& ph, Frame frame) { SendAny(ph, std::move(frame)); }

SimTime VirtualSwitch::TransmitBurst(const Phase& ph, std::vector<Frame> frames) {
  TxStage* stage = tls_stage_;
  if (stage != nullptr && stage->sw == this) {
    for (Frame& frame : frames) {
      stage->frames.push_back(std::move(frame));
    }
    return 0;  // egress unknown until the barrier commit
  }
  const DirectPhase* dp = ph.AsDirect();
  assert(dp != nullptr && "cross-switch burst from an executing slice");
  if (dp != nullptr) {
    return SendRunAt(*dp, frames, clock_->now());
  }
  return 0;
}

void VirtualSwitch::CommitStage(const CommitPhase& ph, TxStage& stage) {
  SendRunAt(ph, stage.frames, stage.vnow);
  stage.frames.clear();
}

SimTime VirtualSwitch::SendRunAt(const DirectPhase& ph, std::vector<Frame>& frames,
                                 SimTime at) {
  SimTime clear = 0;
  size_t i = 0;
  while (i < frames.size()) {
    size_t j = i + 1;
    if (frames[i].dst != kBroadcast) {
      size_t cap = std::min(frames.size(), i + kMaxBurstFrames);
      while (j < cap && frames[j].dst == frames[i].dst) {
        ++j;
      }
    }
    if (j - i == 1) {
      SendAt(ph, std::move(frames[i]), at);
    } else {
      clear = std::max(clear, SendBurstAt(ph, std::span<Frame>(frames.data() + i, j - i), at));
    }
    i = j;
  }
  return clear;
}

SimTime VirtualSwitch::SendBurstAt(const DirectPhase& ph, std::span<Frame> group, SimTime at) {
  stats_.frames_sent += group.size();
  auto it = ports_.find(group.front().dst);
  if (it == ports_.end()) {
    if (uplink_ != nullptr) {
      // Cross-host run: each frame egresses to the fabric individually (the
      // fabric's links re-serialize them; coalescing happens again at the
      // remote switch's ingress if the sink supports it).
      for (Frame& frame : group) {
        if (frame.payload.size() > kMaxFrameBytes) {
          ++stats_.frames_dropped;
          continue;
        }
        ++stats_.frames_uplinked;
        uplink_->OnUplinkFrame(ph, std::move(frame), at);
      }
      return 0;
    }
    stats_.frames_dropped += group.size();
    return 0;
  }
  return DeliverBurstTo(ph, it->first, *it->second, group, at);
}

void VirtualSwitch::SendAt(const DirectPhase& ph, Frame frame, SimTime at) {
  ++stats_.frames_sent;
  if (frame.payload.size() > kMaxFrameBytes) {
    ++stats_.frames_dropped;
    return;
  }
  if (frame.dst == kBroadcast) {
    for (auto& [addr, port] : ports_) {
      if (addr != frame.src) {
        DeliverTo(ph, addr, *port, frame, at);
      }
    }
    if (uplink_ != nullptr) {
      // Flood the fabric too; remote switches deliver locally only (split
      // horizon in DeliverFromFabric), so the broadcast cannot loop back.
      ++stats_.frames_uplinked;
      uplink_->OnUplinkFrame(ph, std::move(frame), at);
    }
    return;
  }
  auto it = ports_.find(frame.dst);
  if (it == ports_.end()) {
    if (uplink_ != nullptr) {
      ++stats_.frames_uplinked;
      uplink_->OnUplinkFrame(ph, std::move(frame), at);
      return;
    }
    ++stats_.frames_dropped;
    return;
  }
  DeliverTo(ph, it->first, *it->second, frame, at);
}

void VirtualSwitch::DeliverFromFabric(const DirectPhase& ph, Frame frame, SimTime at) {
  ++stats_.frames_from_fabric;
  if (frame.payload.size() > kMaxFrameBytes) {
    ++stats_.frames_dropped;
    return;
  }
  if (frame.dst == kBroadcast) {
    for (auto& [addr, port] : ports_) {
      if (addr != frame.src) {
        DeliverTo(ph, addr, *port, frame, at);
      }
    }
    return;
  }
  auto it = ports_.find(frame.dst);
  if (it == ports_.end()) {
    // The port moved or detached while the frame crossed the fabric (live
    // migration switchover): drop, exactly like an in-flight local frame.
    ++stats_.frames_dropped;
    return;
  }
  DeliverTo(ph, it->first, *it->second, frame, at);
}

void VirtualSwitch::DeliverTo(const DirectPhase& ph, MacAddr dst_key, PortState& port,
                              const Frame& frame, SimTime at) {
  size_t wire = frame.wire_bytes();
  uint32_t copies = 1;
  SimTime extra_latency = 0;
  if (injector_ != nullptr) {
    fault::FrameFault ff = injector_->OnFrame(fault_site_, at, frame.src, dst_key);
    if (ff.drop) {
      ++stats_.frames_dropped;
      ++stats_.frames_injected_dropped;
      return;
    }
    copies += ff.duplicates;
    stats_.frames_injected_duplicated += ff.duplicates;
    extra_latency = ff.extra_latency;
    if (extra_latency != 0) {
      ++stats_.frames_injected_delayed;
    }
  }
  for (uint32_t c = 0; c < copies; ++c) {
    SimTime done = port.link.ScheduleTransferAt(at, wire);
    ScheduleDeliver(ph, dst_key, frame, done + extra_latency);
  }
}

void VirtualSwitch::ScheduleDeliver(const DirectPhase& ph, MacAddr dst_key, Frame frame,
                                    SimTime fire) {
  // The port may detach while the frame is in flight, so the closure looks
  // the port up again by address at delivery time. An injected delay lands
  // after the wire time, so delayed frames are genuinely overtaken by
  // later undelayed traffic (reordering).
  clock_->ScheduleAt(ph, fire, [this, dst_key, frame = std::move(frame)](const SerialPhase& sp) {
    auto it = ports_.find(dst_key);
    if (it == ports_.end()) {
      ++stats_.frames_dropped;  // port detached in flight
      return;
    }
    ++stats_.frames_delivered;
    stats_.bytes_delivered += frame.wire_bytes();
    it->second->sink->OnFrame(sp, frame);
  });
}

SimTime VirtualSwitch::DeliverBurstTo(const DirectPhase& ph, MacAddr dst_key, PortState& port,
                                      std::span<Frame> group, SimTime at) {
  // Frames that survive injection undelayed accumulate into one delivery
  // event at the last frame's link-completion time (ScheduleTransferAt is
  // monotone across the loop, so that is also the burst's max). A delayed
  // copy leaves the burst and is scheduled individually — coalescing must
  // not defeat injected reordering.
  auto burst = std::make_shared<std::vector<Frame>>();
  burst->reserve(group.size());
  SimTime last_done = 0;
  for (Frame& frame : group) {
    if (frame.payload.size() > kMaxFrameBytes) {
      ++stats_.frames_dropped;
      continue;
    }
    size_t wire = frame.wire_bytes();
    uint32_t copies = 1;
    SimTime extra_latency = 0;
    if (injector_ != nullptr) {
      fault::FrameFault ff = injector_->OnFrame(fault_site_, at, frame.src, dst_key);
      if (ff.drop) {
        ++stats_.frames_dropped;
        ++stats_.frames_injected_dropped;
        continue;
      }
      copies += ff.duplicates;
      stats_.frames_injected_duplicated += ff.duplicates;
      extra_latency = ff.extra_latency;
      if (extra_latency != 0) {
        ++stats_.frames_injected_delayed;
      }
    }
    for (uint32_t c = 0; c < copies; ++c) {
      SimTime done = port.link.ScheduleTransferAt(at, wire);
      if (extra_latency != 0) {
        ScheduleDeliver(ph, dst_key, frame, done + extra_latency);
      } else {
        burst->push_back(frame);
        last_done = done;
      }
    }
  }
  SimTime clear = port.link.busy_until();
  if (burst->empty()) {
    return clear;
  }
  if (burst->size() == 1) {
    ScheduleDeliver(ph, dst_key, std::move(burst->front()), last_done);
    return clear;
  }
  clock_->ScheduleAt(ph, last_done, [this, dst_key, burst](const SerialPhase& sp) {
    auto it = ports_.find(dst_key);
    if (it == ports_.end()) {
      stats_.frames_dropped += burst->size();  // port detached in flight
      return;
    }
    stats_.frames_delivered += burst->size();
    for (const Frame& f : *burst) {
      stats_.bytes_delivered += f.wire_bytes();
    }
    ++stats_.bursts_delivered;
    it->second->sink->OnFrameBurst(sp, std::span<const Frame>(burst->data(), burst->size()));
  });
  return clear;
}

}  // namespace hyperion::net
