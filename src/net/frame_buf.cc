#include "src/net/frame_buf.h"

#include <cassert>
#include <cstring>

namespace hyperion::net {

FrameBuf::Storage::~Storage() {
  if (pool != nullptr) {
    for (uint32_t i = 0; i < nframes; ++i) {
      pool->ReleaseNetBuf(frames[i]);
    }
  }
}

FrameBuf FrameBuf::Allocate(mem::FramePool* pool, size_t size) {
  FrameBuf buf;
  buf.s_ = std::make_shared<Storage>();
  buf.s_->size = size;
  size_t need = (size + isa::kPageSize - 1) / isa::kPageSize;
  if (pool != nullptr && need <= kMaxChunks) {
    Storage& s = *buf.s_;
    s.pool = pool;
    bool ok = true;
    for (size_t i = 0; i < need; ++i) {
      auto frame = pool->AllocateNetBuf();
      if (!frame.ok()) {
        ok = false;
        break;
      }
      s.frames[s.nframes++] = *frame;
    }
    if (ok) {
      return buf;
    }
    // Pool exhausted mid-allocation: give the partial frames back and fall
    // through to the heap so frame construction never fails.
    for (uint32_t i = 0; i < s.nframes; ++i) {
      pool->ReleaseNetBuf(s.frames[i]);
    }
    s.nframes = 0;
    s.pool = nullptr;
  }
  buf.s_->heap.resize(size);
  return buf;
}

void FrameBuf::Assign(const uint8_t* data, size_t n) {
  s_ = std::make_shared<Storage>();
  s_->size = n;
  s_->heap.assign(data, data + n);
}

void FrameBuf::Assign(size_t n, uint8_t value) {
  s_ = std::make_shared<Storage>();
  s_->size = n;
  s_->heap.assign(n, value);
}

size_t FrameBuf::num_chunks() const {
  if (!s_ || s_->size == 0) {
    return 0;
  }
  if (s_->pool == nullptr) {
    return 1;
  }
  return s_->nframes;
}

std::span<uint8_t> FrameBuf::chunk(size_t i) {
  assert(s_ && i < num_chunks());
  Storage& s = *s_;
  if (s.pool == nullptr) {
    return {s.heap.data(), s.size};
  }
  size_t off = i * isa::kPageSize;
  size_t len = s.size - off < isa::kPageSize ? s.size - off : isa::kPageSize;
  return {s.pool->FrameData(s.frames[i]), len};
}

std::span<const uint8_t> FrameBuf::chunk(size_t i) const {
  assert(s_ && i < num_chunks());
  const Storage& s = *s_;
  if (s.pool == nullptr) {
    return {s.heap.data(), s.size};
  }
  size_t off = i * isa::kPageSize;
  size_t len = s.size - off < isa::kPageSize ? s.size - off : isa::kPageSize;
  return {s.pool->FrameData(s.frames[i]), len};
}

uint8_t FrameBuf::operator[](size_t i) const {
  assert(s_ && i < s_->size);
  const Storage& s = *s_;
  if (s.pool == nullptr) {
    return s.heap[i];
  }
  return s.pool->FrameData(s.frames[i / isa::kPageSize])[i % isa::kPageSize];
}

void FrameBuf::set_byte(size_t i, uint8_t v) {
  assert(s_ && i < s_->size);
  Storage& s = *s_;
  if (s.pool == nullptr) {
    s.heap[i] = v;
    return;
  }
  s.pool->FrameData(s.frames[i / isa::kPageSize])[i % isa::kPageSize] = v;
}

void FrameBuf::CopyTo(uint8_t* dst, size_t n) const {
  size_t total = n < size() ? n : size();
  size_t off = 0;
  for (size_t c = 0; c < num_chunks() && off < total; ++c) {
    std::span<const uint8_t> span = chunk(c);
    size_t take = span.size() < total - off ? span.size() : total - off;
    std::memcpy(dst + off, span.data(), take);
    off += take;
  }
}

}  // namespace hyperion::net
