// Simulated networking: point-to-point links with a bandwidth/latency model
// and an L2-style virtual switch connecting VM NICs on a host.
//
// Time is the host's SimClock; a frame of S bytes on a link with bandwidth B
// and propagation delay D arrives D + S/B after transmission begins, and a
// link serializes back-to-back transmissions (store-and-forward).

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/util/sim_clock.h"
#include "src/util/status.h"

namespace hyperion::net {

inline constexpr size_t kMaxFrameBytes = 9216;  // jumbo frame cap

// A network endpoint address (flat L2 space).
using MacAddr = uint32_t;
inline constexpr MacAddr kBroadcast = 0xFFFFFFFFu;

struct Frame {
  MacAddr src = 0;
  MacAddr dst = 0;
  std::vector<uint8_t> payload;

  size_t wire_bytes() const { return payload.size() + 18; }  // header+fcs overhead
};

// Transmission characteristics of a link or switch port.
struct LinkParams {
  uint64_t bandwidth_bps = 10'000'000'000ull;  // 10 Gb/s
  SimTime latency = 5 * kSimTicksPerUs;        // propagation + switching

  SimTime TransmitTime(size_t bytes) const {
    return static_cast<SimTime>(static_cast<double>(bytes) * 8.0 * 1e9 /
                                static_cast<double>(bandwidth_bps));
  }
};

// A unidirectional-capacity, bidirectional link that serializes transfers.
// Used directly by live migration and by switch ports.
class Link {
 public:
  Link(SimClock* clock, LinkParams params) : clock_(clock), params_(params) {}

  const LinkParams& params() const { return params_; }

  // Schedules a transfer of `bytes`; returns its completion time. Transfers
  // queue behind one another (the link is busy while transmitting).
  SimTime ScheduleTransfer(size_t bytes) {
    SimTime start = std::max(clock_->now(), busy_until_);
    SimTime done = start + params_.TransmitTime(bytes) + params_.latency;
    busy_until_ = start + params_.TransmitTime(bytes);
    bytes_carried_ += bytes;
    return done;
  }

  // Convenience: transfer and invoke `on_done` at completion.
  SimTime Transfer(size_t bytes, std::function<void()> on_done) {
    SimTime done = ScheduleTransfer(bytes);
    clock_->ScheduleAt(done, std::move(on_done));
    return done;
  }

  uint64_t bytes_carried() const { return bytes_carried_; }
  SimTime busy_until() const { return busy_until_; }

 private:
  SimClock* clock_;
  LinkParams params_;
  SimTime busy_until_ = 0;
  uint64_t bytes_carried_ = 0;
};

// Receives frames delivered by the switch.
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual void OnFrame(const Frame& frame) = 0;
};

// A learningless switch: ports register with their address; unicast goes to
// the owning port, broadcast to everyone else. Each port has its own link
// characteristics; delivery happens through the SimClock.
class VirtualSwitch {
 public:
  explicit VirtualSwitch(SimClock* clock) : clock_(clock) {}

  // Attaches `sink` with address `addr`. Fails on duplicate addresses.
  Status Attach(MacAddr addr, FrameSink* sink, LinkParams params = LinkParams{});
  Status Detach(MacAddr addr);

  // Queues `frame` for delivery. Invalid frames are counted and dropped.
  void Send(Frame frame);

  struct Stats {
    uint64_t frames_sent = 0;
    uint64_t frames_delivered = 0;
    uint64_t frames_dropped = 0;  // unknown destination or oversized
    uint64_t bytes_delivered = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct PortState {
    FrameSink* sink;
    Link link;
  };

  void DeliverTo(MacAddr dst_key, PortState& port, const Frame& frame);

  SimClock* clock_;
  std::map<MacAddr, std::unique_ptr<PortState>> ports_;
  Stats stats_;
};

}  // namespace hyperion::net

#endif  // SRC_NET_NETWORK_H_
