// Simulated networking: point-to-point links with a bandwidth/latency model
// and an L2-style virtual switch connecting VM NICs on a host.
//
// Time is the host's SimClock; a frame of S bytes on a link with bandwidth B
// and propagation delay D arrives D + S/B after transmission begins, and a
// link serializes back-to-back transmissions (store-and-forward).

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/net/frame_buf.h"
#include "src/util/sim_clock.h"
#include "src/util/status.h"

namespace hyperion::fault {
class FaultInjector;
}  // namespace hyperion::fault

namespace hyperion::net {

inline constexpr size_t kMaxFrameBytes = 9216;  // jumbo frame cap

// Longest same-destination run the switch coalesces into one delivery
// event. Bounds burst latency (the sink hears nothing until the last frame
// of a burst clears the link) and keeps a single commit from turning a
// whole timeslice of traffic into one delivery.
inline constexpr size_t kMaxBurstFrames = 64;

// A network endpoint address (flat L2 space).
using MacAddr = uint32_t;
inline constexpr MacAddr kBroadcast = 0xFFFFFFFFu;

// A frame's payload is a refcounted FrameBuf: copying a Frame copies a
// handle, so staging, fault-injected duplication, and burst delivery never
// touch the bytes (DESIGN.md §10).
struct Frame {
  MacAddr src = 0;
  MacAddr dst = 0;
  FrameBuf payload;

  size_t wire_bytes() const { return payload.size() + 18; }  // header+fcs overhead
};

// Transmission characteristics of a link or switch port.
struct LinkParams {
  uint64_t bandwidth_bps = 10'000'000'000ull;  // 10 Gb/s
  SimTime latency = 5 * kSimTicksPerUs;        // propagation + switching

  // Serialization delay in cycles (1 cycle == 1 ns), in pure integer
  // arithmetic: `double` loses integer precision past 2^53 intermediate
  // values (a multi-GiB transfer), making timings platform/rounding
  // dependent. The 128-bit product cannot overflow for any size_t input.
  SimTime TransmitTime(size_t bytes) const {
    return static_cast<SimTime>(static_cast<unsigned __int128>(bytes) * 8u *
                                1'000'000'000ull / bandwidth_bps);
  }
};

// A unidirectional-capacity, bidirectional link that serializes transfers.
// Used directly by live migration and by switch ports.
//
// Transfer/TransferFaulty run in both phases (migration drivers are serial;
// post-copy demand fetch fires from an executing slice), so they take
// `const Phase&` and dispatch through the ClockRef. The link-occupancy
// fields they mutate are safe without a lock because each link is queried
// from at most one slice per round (see FaultInjector's site contract).
class Link {
 public:
  Link(SimClock* clock, LinkParams params) : clock_(clock), params_(params) {}

  const LinkParams& params() const { return params_; }

  // Schedules a transfer of `bytes`; returns its completion time. Transfers
  // queue behind one another (the link is busy while transmitting).
  SimTime ScheduleTransfer(size_t bytes) { return ScheduleTransferAt(clock_.now(), bytes); }

  // Like ScheduleTransfer, but with an explicit submission time `at` (>= any
  // previous submission). Used when the switch commits staged frames whose
  // logical send time is the originating slice's start, not the commit time.
  SimTime ScheduleTransferAt(SimTime at, size_t bytes) {
    SimTime start = std::max(at, busy_until_);
    SimTime done = start + params_.TransmitTime(bytes) + params_.latency;
    busy_until_ = start + params_.TransmitTime(bytes);
    bytes_carried_ += bytes;
    return done;
  }

  // Convenience: transfer and invoke `on_done` at completion.
  template <typename F>
  SimTime Transfer(const Phase& ph, size_t bytes, F on_done) {
    SimTime done = ScheduleTransfer(bytes);
    clock_.ScheduleAt(ph, done, std::move(on_done));
    return done;
  }

  // Attaches a fault injector; `site` names this link in the FaultPlan.
  void SetFault(fault::FaultInjector* injector, std::string site) {
    injector_ = injector;
    fault_site_ = std::move(site);
  }

  // Like Transfer, but consults the fault injector: exactly one of
  // `on_done` (delivered) or `on_lost` (transfer lost in flight) fires at
  // the transfer's would-be completion time. Without an injector this is
  // Transfer(). Injected latency spikes extend the completion time.
  template <typename F, typename G>
  SimTime TransferFaulty(const Phase& ph, size_t bytes, F on_done, G on_lost) {
    return TransferFaultyImpl(ph, bytes, SimClock::WrapCallback(std::move(on_done)),
                              SimClock::WrapCallback(std::move(on_lost)));
  }

  uint64_t bytes_carried() const { return bytes_carried_; }
  uint64_t transfers_lost() const { return transfers_lost_; }
  SimTime busy_until() const { return busy_until_; }

 private:
  SimTime TransferFaultyImpl(const Phase& ph, size_t bytes, SimClock::Callback on_done,
                             SimClock::Callback on_lost);

  ClockRef clock_;
  LinkParams params_;
  fault::FaultInjector* injector_ = nullptr;
  std::string fault_site_;
  SimTime busy_until_ = 0;
  uint64_t bytes_carried_ = 0;
  uint64_t transfers_lost_ = 0;
};

// Receives frames delivered by the switch. Delivery always happens from a
// clock callback, so sinks receive the dispatch loop's serial token.
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual void OnFrame(const SerialPhase& ph, const Frame& frame) = 0;

  // A coalesced delivery: back-to-back frames to this port arriving as one
  // clock event (the last frame's link-completion time). Sinks that can
  // amortize per-delivery work (one RX interrupt per burst) override this;
  // the default preserves per-frame semantics.
  virtual void OnFrameBurst(const SerialPhase& ph, std::span<const Frame> frames) {
    for (const Frame& f : frames) {
      OnFrame(ph, f);
    }
  }
};

// A switch uplink: receives frames whose destination is not attached to this
// switch (plus broadcast floods), for forwarding across a multi-host fabric
// (src/cluster/fabric.h). Egress to the uplink happens only at commit/serial
// time — the token requirement makes forwarding from an execute lane a type
// error, like every other direct switch effect.
class UplinkPort {
 public:
  virtual ~UplinkPort() = default;
  // `at` is the frame's logical send time (the originating slice's start).
  virtual void OnUplinkFrame(const DirectPhase& ph, Frame frame, SimTime at) = 0;
};

// A learningless switch: ports register with their address; unicast goes to
// the owning port, broadcast to everyone else. Each port has its own link
// characteristics; delivery happens through the SimClock. With an uplink
// attached, unknown unicast destinations and broadcasts additionally egress
// to the fabric instead of being dropped.
class VirtualSwitch {
 public:
  explicit VirtualSwitch(SimClock* clock) : clock_(clock) {}

  // Per-slice staging buffer (DESIGN.md §8): while a vCPU slice executes on
  // a worker thread, its transmitted frames are queued here instead of going
  // through the shared port/link/clock state. The host thread commits them
  // at the round barrier, in deterministic dispatch order, stamped with the
  // slice's start time — exactly when the serial loop would have sent them.
  struct TxStage {
    VirtualSwitch* sw = nullptr;
    SimTime vnow = 0;
    std::vector<Frame> frames;
  };

  // Installs `stage` as the current thread's staging buffer (nullptr to
  // clear). Only the host run loop does this, around each slice.
  static void SetStage(const ExecutePhase&, TxStage* stage) { tls_stage_ = stage; }

  // Delivers a slice's staged frames, in staging order (round barrier).
  void CommitStage(const CommitPhase&, TxStage& stage);

  // Attaches `sink` with address `addr`. Fails on duplicate addresses.
  Status Attach(const DirectPhase&, MacAddr addr, FrameSink* sink,
                LinkParams params = LinkParams{});
  Status Detach(const DirectPhase&, MacAddr addr);

  // True when a port with address `addr` is attached. The fabric resolves
  // destination hosts with this at send time, so a migrated VM's frames
  // follow its NIC to the new host with no forwarding-table invalidation.
  bool HasPort(MacAddr addr) const { return ports_.find(addr) != ports_.end(); }

  // Joins this switch to a cluster fabric (nullptr to detach). Unknown
  // unicast destinations and broadcast frames then egress through `uplink`.
  void SetUplink(UplinkPort* uplink) { uplink_ = uplink; }

  // Fabric ingress: delivers a frame arriving from the uplink to local ports
  // only — never back out the uplink (split horizon), so a destination
  // unknown fabric-wide cannot loop. Direct phases only: fabric delivery is
  // a clock-event effect, off limits from execute lanes.
  void DeliverFromFabric(const DirectPhase& ph, Frame frame, SimTime at);

  // Queues `frame` for immediate delivery scheduling (serial/commit only).
  // Invalid frames are counted and dropped.
  void Send(const DirectPhase&, Frame frame);

  // Appends `frame` to the executing slice's TxStage for delivery at the
  // round barrier (worker lanes).
  void StageTx(const ExecutePhase&, Frame frame);

  // Phase-dispatching transmit for code that runs in both regimes (NIC
  // doorbells): stages under an ExecutePhase, sends under a direct phase.
  void Transmit(const Phase& ph, Frame frame);

  // Transmits a batch in order. Staged regime: the batch is appended to the
  // slice's TxStage (committed as one contiguous run at the barrier). Direct
  // regime: consecutive frames to the same unicast destination leave as one
  // burst event; everything else degrades to per-frame Send semantics.
  //
  // Returns when the last egress link touched by a direct-regime burst
  // clears (its busy-until), or 0 when unknown (staged, dropped, or no
  // bursts formed). NICs use this as backpressure: polling faster than the
  // wire drains only piles frames into the event queue.
  SimTime TransmitBurst(const Phase& ph, std::vector<Frame> frames);

  // Attaches a fault injector; every frame delivery attempt is then subject
  // to the plan's drop/duplicate/reorder/latency/partition events under
  // `site`. Injected effects are tallied separately in Stats.
  void SetFault(fault::FaultInjector* injector, std::string site) {
    injector_ = injector;
    fault_site_ = std::move(site);
  }

  struct Stats {
    uint64_t frames_sent = 0;
    uint64_t frames_delivered = 0;
    uint64_t frames_dropped = 0;  // unknown destination or oversized
    uint64_t bytes_delivered = 0;
    uint64_t bursts_delivered = 0;  // multi-frame coalesced deliveries
    uint64_t frames_uplinked = 0;     // egressed to the cluster fabric
    uint64_t frames_from_fabric = 0;  // ingressed from the cluster fabric
    // Fault-injection tallies (subsets of the counters above).
    uint64_t frames_injected_dropped = 0;
    uint64_t frames_injected_duplicated = 0;
    uint64_t frames_injected_delayed = 0;

    bool operator==(const Stats&) const = default;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct PortState {
    FrameSink* sink;
    Link link;
  };

  // Shared leaf under the token-typed entry points: stage when the current
  // thread is staging for this switch, deliver otherwise (PR 5 Send body).
  void SendAny(const Phase& ph, Frame frame);

  void SendAt(const DirectPhase& ph, Frame frame, SimTime at);
  void DeliverTo(const DirectPhase& ph, MacAddr dst_key, PortState& port,
                 const Frame& frame, SimTime at);

  // Sends a batch with logical send time `at`, grouping consecutive frames
  // to the same unicast destination into bursts of at most kMaxBurstFrames
  // (runs of length 1 and broadcast frames keep the exact single-frame
  // path). Consumes `frames`. Returns the latest egress busy-until among
  // the bursts formed (0 if none).
  SimTime SendRunAt(const DirectPhase& ph, std::vector<Frame>& frames, SimTime at);
  // One same-destination unicast run: per-frame fault consultation and link
  // serialization, a single delivery event at the last frame's completion.
  // Returns the egress link's busy-until (0 if the port is unknown).
  SimTime SendBurstAt(const DirectPhase& ph, std::span<Frame> group, SimTime at);
  SimTime DeliverBurstTo(const DirectPhase& ph, MacAddr dst_key, PortState& port,
                         std::span<Frame> group, SimTime at);
  // Schedules one frame's delivery event at `fire` (port re-looked-up by
  // address when the event runs; shared by DeliverTo and delayed burst
  // stragglers).
  void ScheduleDeliver(const DirectPhase& ph, MacAddr dst_key, Frame frame, SimTime fire);

  static inline thread_local TxStage* tls_stage_ = nullptr;

  SimClock* clock_;
  std::map<MacAddr, std::unique_ptr<PortState>> ports_;
  UplinkPort* uplink_ = nullptr;
  fault::FaultInjector* injector_ = nullptr;
  std::string fault_site_;
  Stats stats_;
};

}  // namespace hyperion::net

#endif  // SRC_NET_NETWORK_H_
