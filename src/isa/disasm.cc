#include <array>
#include <cstdio>
#include <string>

#include "src/isa/hv32.h"

namespace hyperion::isa {

namespace {

constexpr std::array<std::string_view, kNumGprs> kGprNames = {
    "zero", "ra", "sp", "gp", "a0", "a1", "a2", "a3",
    "t0",   "t1", "t2", "t3", "s0", "s1", "s2", "s3"};

constexpr std::array<std::string_view, 16> kAluNames = {
    "add", "sub", "and", "or",  "xor", "sll", "srl",  "sra",
    "slt", "sltu", "mul", "mulhu", "div", "divu", "rem", "remu"};

constexpr std::array<std::string_view, 6> kBranchNames = {"beq", "bne", "blt",
                                                          "bge", "bltu", "bgeu"};

std::string Hex(int32_t v) {
  char buf[16];
  if (v < 0) {
    std::snprintf(buf, sizeof(buf), "-0x%x", static_cast<uint32_t>(-v));
  } else {
    std::snprintf(buf, sizeof(buf), "0x%x", static_cast<uint32_t>(v));
  }
  return buf;
}

std::string R(uint8_t r) { return std::string(GprName(r)); }

}  // namespace

std::string_view GprName(uint8_t r) {
  return r < kNumGprs ? kGprNames[r] : std::string_view("r?");
}

std::string CsrName(uint16_t csr) {
  switch (static_cast<Csr>(csr)) {
    case Csr::kStatus:
      return "status";
    case Csr::kCause:
      return "cause";
    case Csr::kEpc:
      return "epc";
    case Csr::kTvec:
      return "tvec";
    case Csr::kTval:
      return "tval";
    case Csr::kScratch:
      return "scratch";
    case Csr::kPtbr:
      return "ptbr";
    case Csr::kTime:
      return "time";
    case Csr::kTimecmp:
      return "timecmp";
    case Csr::kCycle:
      return "cycle";
    case Csr::kInstret:
      return "instret";
    case Csr::kHartid:
      return "hartid";
    case Csr::kIpend:
      return "ipend";
  }
  char buf[16];
  std::snprintf(buf, sizeof(buf), "csr0x%x", csr);
  return buf;
}

std::string Disassemble(const Instruction& i) {
  switch (i.opcode) {
    case Opcode::kOp:
      if (i.funct < kAluNames.size()) {
        return std::string(kAluNames[i.funct]) + " " + R(i.rd) + ", " + R(i.rs1) + ", " + R(i.rs2);
      }
      return "op.bad";
    case Opcode::kOpImm:
      if (i.funct < kAluNames.size()) {
        return std::string(kAluNames[i.funct]) + "i " + R(i.rd) + ", " + R(i.rs1) + ", " +
               Hex(i.imm);
      }
      return "opimm.bad";
    case Opcode::kLui:
      return "lui " + R(i.rd) + ", " + Hex(i.imm);
    case Opcode::kAuipc:
      return "auipc " + R(i.rd) + ", " + Hex(i.imm);
    case Opcode::kJal:
      return "jal " + R(i.rd) + ", " + Hex(i.imm);
    case Opcode::kJalr:
      return "jalr " + R(i.rd) + ", " + R(i.rs1) + ", " + Hex(i.imm);
    case Opcode::kBranch:
      if (i.funct < kBranchNames.size()) {
        return std::string(kBranchNames[i.funct]) + " " + R(i.rs1) + ", " + R(i.rs2) + ", " +
               Hex(i.imm);
      }
      return "branch.bad";
    case Opcode::kLw:
      return "lw " + R(i.rd) + ", " + Hex(i.imm) + "(" + R(i.rs1) + ")";
    case Opcode::kLh:
      return "lh " + R(i.rd) + ", " + Hex(i.imm) + "(" + R(i.rs1) + ")";
    case Opcode::kLhu:
      return "lhu " + R(i.rd) + ", " + Hex(i.imm) + "(" + R(i.rs1) + ")";
    case Opcode::kLb:
      return "lb " + R(i.rd) + ", " + Hex(i.imm) + "(" + R(i.rs1) + ")";
    case Opcode::kLbu:
      return "lbu " + R(i.rd) + ", " + Hex(i.imm) + "(" + R(i.rs1) + ")";
    case Opcode::kSw:
      return "sw " + R(i.rd) + ", " + Hex(i.imm) + "(" + R(i.rs1) + ")";
    case Opcode::kSh:
      return "sh " + R(i.rd) + ", " + Hex(i.imm) + "(" + R(i.rs1) + ")";
    case Opcode::kSb:
      return "sb " + R(i.rd) + ", " + Hex(i.imm) + "(" + R(i.rs1) + ")";
    case Opcode::kCsrrw:
      return "csrrw " + R(i.rd) + ", " + CsrName(static_cast<uint16_t>(i.imm)) + ", " + R(i.rs1);
    case Opcode::kCsrrs:
      return "csrrs " + R(i.rd) + ", " + CsrName(static_cast<uint16_t>(i.imm)) + ", " + R(i.rs1);
    case Opcode::kCsrrc:
      return "csrrc " + R(i.rd) + ", " + CsrName(static_cast<uint16_t>(i.imm)) + ", " + R(i.rs1);
    case Opcode::kEcall:
      return "ecall";
    case Opcode::kEbreak:
      return "ebreak";
    case Opcode::kSret:
      return "sret";
    case Opcode::kWfi:
      return "wfi";
    case Opcode::kHcall:
      return "hcall";
    case Opcode::kSfence:
      return i.rs1 == 0 ? "sfence" : "sfence " + R(i.rs1);
    case Opcode::kHalt:
      return "halt";
    case Opcode::kAmoSwap:
      return "amoswap " + R(i.rd) + ", " + R(i.rs1) + ", " + R(i.rs2);
    case Opcode::kAmoAdd:
      return "amoadd " + R(i.rd) + ", " + R(i.rs1) + ", " + R(i.rs2);
    default:
      return "illegal";
  }
}

std::string DisassembleWord(uint32_t word) { return Disassemble(Decode(word)); }

}  // namespace hyperion::isa
