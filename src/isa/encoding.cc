#include <cstdint>

#include "src/isa/hv32.h"

namespace hyperion::isa {

namespace {

constexpr uint32_t kOpcodeShift = 26;
constexpr uint32_t kRdShift = 22;
constexpr uint32_t kRs1Shift = 18;
constexpr uint32_t kRs2Shift = 14;
constexpr uint32_t kFieldMask = 0xF;
constexpr uint32_t kImm14Mask = 0x3FFF;
constexpr uint32_t kImm18Mask = 0x3FFFF;

constexpr int32_t SignExtend(uint32_t value, int bits) {
  uint32_t shift = 32 - static_cast<uint32_t>(bits);
  return static_cast<int32_t>(value << shift) >> shift;
}

constexpr bool FitsSigned(int64_t value, int bits) {
  int64_t lo = -(int64_t{1} << (bits - 1));
  int64_t hi = (int64_t{1} << (bits - 1)) - 1;
  return value >= lo && value <= hi;
}

// True when the opcode uses the imm18 layout (rd + 18-bit immediate).
constexpr bool UsesImm18(Opcode op) {
  return op == Opcode::kLui || op == Opcode::kAuipc || op == Opcode::kJal;
}

}  // namespace

Result<uint32_t> Encode(const Instruction& instr) {
  if (instr.opcode > Opcode::kMaxOpcode) {
    return InvalidArgumentError("cannot encode illegal opcode");
  }
  if (instr.rd >= kNumGprs || instr.rs1 >= kNumGprs || instr.rs2 >= kNumGprs) {
    return InvalidArgumentError("register operand out of range");
  }

  uint32_t word = static_cast<uint32_t>(instr.opcode) << kOpcodeShift;

  switch (instr.opcode) {
    case Opcode::kLui: {
      // LUI's immediate is the *upper* 18 bits, stored unshifted.
      uint32_t imm = static_cast<uint32_t>(instr.imm);
      if ((imm & ((1u << 14) - 1)) != 0) {
        return InvalidArgumentError("lui immediate must be a multiple of 1<<14");
      }
      word |= static_cast<uint32_t>(instr.rd) << kRdShift;
      word |= (imm >> 14) & kImm18Mask;
      return word;
    }
    case Opcode::kAuipc: {
      uint32_t imm = static_cast<uint32_t>(instr.imm);
      if ((imm & ((1u << 14) - 1)) != 0) {
        return InvalidArgumentError("auipc immediate must be a multiple of 1<<14");
      }
      word |= static_cast<uint32_t>(instr.rd) << kRdShift;
      word |= (imm >> 14) & kImm18Mask;
      return word;
    }
    case Opcode::kJal: {
      if (instr.imm % 4 != 0) {
        return InvalidArgumentError("jal offset must be 4-byte aligned");
      }
      int32_t words = instr.imm / 4;
      if (!FitsSigned(words, 18)) {
        return OutOfRangeError("jal offset does not fit in 18 bits");
      }
      word |= static_cast<uint32_t>(instr.rd) << kRdShift;
      word |= static_cast<uint32_t>(words) & kImm18Mask;
      return word;
    }
    case Opcode::kBranch: {
      if (instr.imm % 4 != 0) {
        return InvalidArgumentError("branch offset must be 4-byte aligned");
      }
      int32_t words = instr.imm / 4;
      if (!FitsSigned(words, 14)) {
        return OutOfRangeError("branch offset does not fit in 14 bits");
      }
      if (instr.funct > static_cast<uint8_t>(BranchCond::kGeu)) {
        return InvalidArgumentError("bad branch condition");
      }
      word |= static_cast<uint32_t>(instr.funct) << kRdShift;  // cond in rd slot
      word |= static_cast<uint32_t>(instr.rs1) << kRs1Shift;
      word |= static_cast<uint32_t>(instr.rs2) << kRs2Shift;
      word |= static_cast<uint32_t>(words) & kImm14Mask;
      return word;
    }
    case Opcode::kOp: {
      word |= static_cast<uint32_t>(instr.rd) << kRdShift;
      word |= static_cast<uint32_t>(instr.rs1) << kRs1Shift;
      word |= static_cast<uint32_t>(instr.rs2) << kRs2Shift;
      word |= static_cast<uint32_t>(instr.funct) & kImm14Mask;
      return word;
    }
    case Opcode::kOpImm: {
      if (!FitsSigned(instr.imm, 14)) {
        return OutOfRangeError("immediate does not fit in 14 bits");
      }
      word |= static_cast<uint32_t>(instr.rd) << kRdShift;
      word |= static_cast<uint32_t>(instr.rs1) << kRs1Shift;
      word |= (static_cast<uint32_t>(instr.funct) & kFieldMask) << kRs2Shift;  // aluop
      word |= static_cast<uint32_t>(instr.imm) & kImm14Mask;
      return word;
    }
    case Opcode::kCsrrw:
    case Opcode::kCsrrs:
    case Opcode::kCsrrc: {
      if (instr.imm < 0 || instr.imm > static_cast<int32_t>(kImm14Mask)) {
        return OutOfRangeError("csr number does not fit in 14 bits");
      }
      word |= static_cast<uint32_t>(instr.rd) << kRdShift;
      word |= static_cast<uint32_t>(instr.rs1) << kRs1Shift;
      word |= static_cast<uint32_t>(instr.imm) & kImm14Mask;
      return word;
    }
    default: {
      // Uniform rd/rs1/imm14 layout: loads, stores, jalr, and the zero-operand
      // system instructions (whose fields are simply zero).
      if (!FitsSigned(instr.imm, 14)) {
        return OutOfRangeError("immediate does not fit in 14 bits");
      }
      word |= static_cast<uint32_t>(instr.rd) << kRdShift;
      word |= static_cast<uint32_t>(instr.rs1) << kRs1Shift;
      word |= static_cast<uint32_t>(instr.rs2) << kRs2Shift;
      word |= static_cast<uint32_t>(instr.imm) & kImm14Mask;
      return word;
    }
  }
}

Instruction Decode(uint32_t word) {
  Instruction instr;
  uint8_t op = static_cast<uint8_t>(word >> kOpcodeShift);
  if (op > static_cast<uint8_t>(Opcode::kMaxOpcode)) {
    instr.opcode = Opcode::kIllegal;
    return instr;
  }
  instr.opcode = static_cast<Opcode>(op);
  instr.rd = static_cast<uint8_t>((word >> kRdShift) & kFieldMask);
  instr.rs1 = static_cast<uint8_t>((word >> kRs1Shift) & kFieldMask);
  instr.rs2 = static_cast<uint8_t>((word >> kRs2Shift) & kFieldMask);

  switch (instr.opcode) {
    case Opcode::kLui:
    case Opcode::kAuipc:
      instr.rs1 = instr.rs2 = 0;
      instr.imm = static_cast<int32_t>((word & kImm18Mask) << 14);
      break;
    case Opcode::kJal:
      instr.rs1 = instr.rs2 = 0;
      instr.imm = SignExtend(word & kImm18Mask, 18) * 4;
      break;
    case Opcode::kBranch:
      instr.funct = instr.rd;  // condition rides in the rd slot
      instr.rd = 0;
      instr.imm = SignExtend(word & kImm14Mask, 14) * 4;
      if (instr.funct > static_cast<uint8_t>(BranchCond::kGeu)) {
        instr.opcode = Opcode::kIllegal;
      }
      break;
    case Opcode::kOp:
      instr.funct = static_cast<uint8_t>(word & kFieldMask);
      instr.imm = 0;
      break;
    case Opcode::kOpImm:
      instr.funct = instr.rs2;  // aluop rides in the rs2 slot
      instr.rs2 = 0;
      instr.imm = SignExtend(word & kImm14Mask, 14);
      break;
    case Opcode::kCsrrw:
    case Opcode::kCsrrs:
    case Opcode::kCsrrc:
      instr.rs2 = 0;  // field unused by CSR ops
      instr.imm = static_cast<int32_t>(word & kImm14Mask);  // csr number, unsigned
      break;
    default:
      instr.imm = SignExtend(word & kImm14Mask, 14);
      break;
  }
  return instr;
}

}  // namespace hyperion::isa
