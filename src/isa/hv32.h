// HV32: hyperion's guest instruction-set architecture.
//
// HV32 is a small 32-bit RISC machine purpose-built for virtualization
// research: fixed 32-bit instructions, 16 GPRs, two privilege levels
// (user/supervisor), a CSR file, precise traps, and 2-level 4 KiB paging
// with optional 4 MiB superpages. It stands in for x86/ARM in all
// experiments (DESIGN.md §1): every classic VMM mechanism — trap-and-
// emulate, shadow vs. nested paging, MMIO exits, hypercalls — exercises
// the same code paths it would on real hardware.
//
// Instruction word layout (MSB..LSB):
//   [31:26] opcode   [25:22] rd   [21:18] rs1   [17:14] rs2   [13:0] imm14/funct
// Formats that need a wider immediate (LUI/AUIPC/JAL) reuse rs1/rs2 bits:
//   [31:26] opcode   [25:22] rd   [17:0] imm18

#ifndef SRC_ISA_HV32_H_
#define SRC_ISA_HV32_H_

#include <cstdint>
#include <string>

#include "src/util/status.h"

namespace hyperion::isa {

// ---------------------------------------------------------------------------
// Architectural constants
// ---------------------------------------------------------------------------

inline constexpr int kNumGprs = 16;
inline constexpr uint32_t kInstrBytes = 4;

// Register ABI names (r0 is hardwired to zero).
enum Gpr : uint8_t {
  kZero = 0,  // always reads 0; writes discarded
  kRa = 1,    // return address
  kSp = 2,    // stack pointer
  kGp = 3,    // global pointer
  kA0 = 4,    // argument / return 0
  kA1 = 5,
  kA2 = 6,
  kA3 = 7,
  kT0 = 8,    // temporaries
  kT1 = 9,
  kT2 = 10,
  kT3 = 11,
  kS0 = 12,   // saved
  kS1 = 13,
  kS2 = 14,
  kS3 = 15,
};

enum class PrivMode : uint8_t { kUser = 0, kSupervisor = 1 };

// Paging geometry: 32-bit VA, two levels, 4 KiB pages, 4 MiB superpages.
inline constexpr uint32_t kPageBits = 12;
inline constexpr uint32_t kPageSize = 1u << kPageBits;       // 4096
inline constexpr uint32_t kPtIndexBits = 10;                 // 1024 PTEs per table
inline constexpr uint32_t kPtEntries = 1u << kPtIndexBits;
inline constexpr uint32_t kSuperPageBits = kPageBits + kPtIndexBits;  // 22
inline constexpr uint32_t kSuperPageSize = 1u << kSuperPageBits;      // 4 MiB

inline constexpr uint32_t VaL1Index(uint32_t va) { return va >> 22; }
inline constexpr uint32_t VaL2Index(uint32_t va) { return (va >> 12) & (kPtEntries - 1); }
inline constexpr uint32_t VaPageOffset(uint32_t va) { return va & (kPageSize - 1); }
inline constexpr uint32_t PageNumber(uint32_t addr) { return addr >> kPageBits; }
inline constexpr uint32_t PageBase(uint32_t addr) { return addr & ~(kPageSize - 1); }

// Page-table entry bits. A non-leaf L1 entry has V set and R=W=X=0.
struct Pte {
  static constexpr uint32_t kValid = 1u << 0;
  static constexpr uint32_t kRead = 1u << 1;
  static constexpr uint32_t kWrite = 1u << 2;
  static constexpr uint32_t kExec = 1u << 3;
  static constexpr uint32_t kUser = 1u << 4;
  static constexpr uint32_t kAccessed = 1u << 5;
  static constexpr uint32_t kDirty = 1u << 6;
  static constexpr uint32_t kGlobal = 1u << 7;

  static constexpr uint32_t kFlagsMask = (1u << kPageBits) - 1;

  static constexpr uint32_t Make(uint32_t ppn, uint32_t flags) {
    return (ppn << kPageBits) | (flags & kFlagsMask);
  }
  static constexpr uint32_t Ppn(uint32_t pte) { return pte >> kPageBits; }
  static constexpr uint32_t Flags(uint32_t pte) { return pte & kFlagsMask; }
  static constexpr bool IsValid(uint32_t pte) { return pte & kValid; }
  static constexpr bool IsLeaf(uint32_t pte) { return pte & (kRead | kWrite | kExec); }
};

// Guest-physical memory map. RAM starts at 0; the MMIO window sits high.
inline constexpr uint32_t kResetPc = 0x1000;
inline constexpr uint32_t kMmioBase = 0xF0000000u;
inline constexpr uint32_t kMmioLimit = 0xFFFFF000u;
inline constexpr bool IsMmio(uint32_t gpa) { return gpa >= kMmioBase && gpa < kMmioLimit; }

// ---------------------------------------------------------------------------
// Opcodes
// ---------------------------------------------------------------------------

enum class Opcode : uint8_t {
  kOp = 0,      // R-type ALU; AluOp in funct
  kOpImm = 1,   // I-type ALU; AluOp in the rs2 field, imm14
  kLui = 2,     // rd = imm18 << 14
  kAuipc = 3,   // rd = pc + (imm18 << 14)
  kJal = 4,     // rd = pc+4; pc += imm18*4
  kJalr = 5,    // rd = pc+4; pc = (rs1 + imm14) & ~3
  kBranch = 6,  // BranchCond in the rd field; if (rs1 ? rs2) pc += imm14*4
  kLw = 7,
  kLh = 8,
  kLhu = 9,
  kLb = 10,
  kLbu = 11,
  kSw = 12,     // mem[rs1+imm14] = rd  (store value lives in the rd field)
  kSh = 13,
  kSb = 14,
  kCsrrw = 15,  // rd = csr; csr = rs1        (csr number in imm14)
  kCsrrs = 16,  // rd = csr; csr |= rs1
  kCsrrc = 17,  // rd = csr; csr &= ~rs1
  kEcall = 18,  // environment call (guest syscall)
  kEbreak = 19,
  kSret = 20,   // return from trap (privileged)
  kWfi = 21,    // wait for interrupt (privileged)
  kHcall = 22,  // hypercall to the VMM; number in a0, args a1..a3
  kSfence = 23, // TLB flush (privileged); rs1!=zero flushes one VA
  kHalt = 24,   // stop the virtual machine (privileged)
  kAmoSwap = 25, // rd = mem[rs1]; mem[rs1] = rs2   (word, rs1 4-aligned)
  kAmoAdd = 26,  // rd = mem[rs1]; mem[rs1] += rs2  (word, rs1 4-aligned)

  kMaxOpcode = kAmoAdd,
  kIllegal = 63,
};

enum class AluOp : uint8_t {
  kAdd = 0,
  kSub = 1,
  kAnd = 2,
  kOr = 3,
  kXor = 4,
  kSll = 5,
  kSrl = 6,
  kSra = 7,
  kSlt = 8,
  kSltu = 9,
  kMul = 10,
  kMulhu = 11,
  kDiv = 12,
  kDivu = 13,
  kRem = 14,
  kRemu = 15,
};

enum class BranchCond : uint8_t {
  kEq = 0,
  kNe = 1,
  kLt = 2,
  kGe = 3,
  kLtu = 4,
  kGeu = 5,
};

// ---------------------------------------------------------------------------
// Control and status registers
// ---------------------------------------------------------------------------

enum class Csr : uint16_t {
  kStatus = 0x000,
  kCause = 0x001,
  kEpc = 0x002,
  kTvec = 0x003,   // trap vector base
  kTval = 0x004,   // faulting address / instruction
  kScratch = 0x005,
  kPtbr = 0x006,   // root page-table guest-physical page number
  kTime = 0x010,   // read-only simulated time
  kTimecmp = 0x011,// timer interrupt when time >= timecmp
  kCycle = 0x012,  // read-only retired-cycle counter
  kInstret = 0x013,// read-only retired-instruction counter
  kHartid = 0x014, // read-only vCPU index
  kIpend = 0x020,  // pending interrupt bits (read-only mirror)
};

// STATUS register bit layout.
struct StatusBits {
  static constexpr uint32_t kIe = 1u << 0;    // interrupts enabled
  static constexpr uint32_t kPie = 1u << 1;   // previous IE (stacked on trap)
  static constexpr uint32_t kPrv = 1u << 2;   // current privilege (1 = supervisor)
  static constexpr uint32_t kPprv = 1u << 3;  // previous privilege
  static constexpr uint32_t kPg = 1u << 4;    // paging enabled
};

// Interrupt lines, as bit indices in IPEND and in trap causes.
enum class Interrupt : uint8_t { kTimer = 0, kExternal = 1, kSoftware = 2 };

// Trap causes. Interrupt causes have kInterruptFlag set.
enum class TrapCause : uint32_t {
  kInstrMisaligned = 0,
  kInstrPageFault = 1,
  kIllegalInstruction = 2,
  kBreakpoint = 3,
  kLoadMisaligned = 4,
  kLoadPageFault = 5,
  kStoreMisaligned = 6,
  kStorePageFault = 7,
  kEcallFromUser = 8,
  kEcallFromSupervisor = 9,
  kPrivilegeViolation = 10,

  kInterruptFlag = 0x80000000u,
  kTimerInterrupt = kInterruptFlag | static_cast<uint32_t>(Interrupt::kTimer),
  kExternalInterrupt = kInterruptFlag | static_cast<uint32_t>(Interrupt::kExternal),
  kSoftwareInterrupt = kInterruptFlag | static_cast<uint32_t>(Interrupt::kSoftware),
};

inline constexpr bool IsInterruptCause(TrapCause c) {
  return static_cast<uint32_t>(c) & static_cast<uint32_t>(TrapCause::kInterruptFlag);
}

// ---------------------------------------------------------------------------
// Decoded instruction
// ---------------------------------------------------------------------------

// A fully decoded instruction. Branch/JAL immediates are pre-scaled to byte
// offsets; CSR numbers arrive in `imm`.
struct Instruction {
  Opcode opcode = Opcode::kIllegal;
  uint8_t rd = 0;
  uint8_t rs1 = 0;
  uint8_t rs2 = 0;
  int32_t imm = 0;    // sign-extended; byte-scaled for kBranch/kJal
  uint8_t funct = 0;  // AluOp for kOp/kOpImm; BranchCond for kBranch

  bool operator==(const Instruction&) const = default;
};

// Encodes a decoded instruction back into a 32-bit word. Fails if a field is
// out of range (e.g. an immediate that does not fit).
Result<uint32_t> Encode(const Instruction& instr);

// Decodes one instruction word. Never fails: unknown opcodes decode to
// Opcode::kIllegal, which the CPU turns into an illegal-instruction trap.
Instruction Decode(uint32_t word);

// Human-readable rendering, e.g. "add a0, a1, t0" or "lw a0, 8(sp)".
std::string Disassemble(const Instruction& instr);
std::string DisassembleWord(uint32_t word);

// Register name for operand `r`, e.g. "a0" / "sp".
std::string_view GprName(uint8_t r);
// CSR name, or "csr0x###" for unknown numbers.
std::string CsrName(uint16_t csr);

// True when this opcode may only execute in supervisor mode.
inline constexpr bool IsPrivileged(Opcode op) {
  return op == Opcode::kSret || op == Opcode::kWfi || op == Opcode::kSfence ||
         op == Opcode::kHalt || op == Opcode::kHcall;
}

// Hypercall numbers (passed in a0). The ABI returns a result in a0.
enum class Hypercall : uint32_t {
  kConsolePutChar = 0,   // a1 = character
  kConsoleWrite = 1,     // a1 = gva of buffer, a2 = length
  kYield = 2,            // relinquish the vCPU timeslice
  kGetTimeUs = 3,        // returns simulated microseconds in a0
  kShutdown = 4,         // graceful power-off
  kBalloonInflate = 5,   // a1 = gpa page number to give back to host
  kBalloonDeflate = 6,   // a1 = gpa page number to reclaim from host
  kVirtioKick = 7,       // a1 = device slot, a2 = queue index
  kLogValue = 8,         // a1 = value; VMM records it (test instrumentation)
  kBalloonGetTarget = 9, // returns the host's balloon target (pages) in a0
  kStartVcpu = 10,       // a1 = vcpu index, a2 = entry pc, a3 = arg (in a0)
  kVcpuCount = 11,       // returns the VM's vCPU count in a0
};

}  // namespace hyperion::isa

#endif  // SRC_ISA_HV32_H_
