#include "src/cluster/fabric.h"

#include <utility>

#include "src/fault/fault.h"

namespace hyperion::cluster {

void Fabric::AddHost(core::Host* host) {
  members_.push_back(std::make_unique<Attachment>(this, host));
  host->vswitch().SetUplink(members_.back().get());
}

void Fabric::SetFaultInjector(fault::FaultInjector* injector, std::string site) {
  injector_ = injector;
  fault_site_ = std::move(site);
}

void Fabric::Forward(const DirectPhase& ph, Attachment& from, net::Frame frame, SimTime at) {
  size_t wire = frame.wire_bytes();
  uint32_t copies = 1;
  SimTime extra_latency = 0;
  if (injector_ != nullptr) {
    fault::FrameFault ff = injector_->OnFrame(fault_site_, at, frame.src, frame.dst);
    if (ff.drop) {
      ++stats_.frames_injected_dropped;
      return;
    }
    copies += ff.duplicates;
    stats_.frames_injected_duplicated += ff.duplicates;
    extra_latency = ff.extra_latency;
  }
  // Egress serializes on the source host's uplink regardless of where the
  // frame is headed; fan-out (broadcast) shares that single transmission.
  SimTime depart = from.tx.ScheduleTransferAt(at, wire) + extra_latency;

  if (frame.dst == net::kBroadcast) {
    ++stats_.frames_flooded;
    stats_.bytes_forwarded += wire;
    for (auto& member : members_) {
      if (member.get() != &from) {
        Relay(ph, *member, frame, depart);
      }
    }
    return;
  }

  // Resolve the owner at ingress time, in member order: deterministic, and
  // automatically correct across migrations (the port moves with the VM).
  for (auto& member : members_) {
    if (member.get() == &from) {
      continue;
    }
    if (member->host->vswitch().HasPort(frame.dst)) {
      ++stats_.frames_forwarded;
      stats_.bytes_forwarded += wire;
      for (uint32_t c = 1; c < copies; ++c) {
        Relay(ph, *member, frame, depart);
      }
      Relay(ph, *member, std::move(frame), depart);
      return;
    }
  }
  ++stats_.frames_no_route;
}

void Fabric::Relay(const DirectPhase& ph, Attachment& to, net::Frame frame, SimTime at) {
  SimTime done = to.rx.ScheduleTransferAt(at, frame.wire_bytes());
  net::VirtualSwitch* sw = &to.host->vswitch();
  clock_->ScheduleAt(ph, done, [sw, frame = std::move(frame), done](const SerialPhase& sp) {
    sw->DeliverFromFabric(sp, frame, done);
  });
}

}  // namespace hyperion::cluster
