// A multi-host cluster: member hosts share one TimeDomain (one clock, one
// event horizon, one worker pool — rounds step in lockstep and results stay
// bit-identical at any worker count), their switches are joined by a Fabric,
// and a DRS-style orchestrator places, rebalances, drains, and evacuates VMs
// across them.
//
// The orchestrator runs between simulated-time chunks, never from inside a
// clock callback: live migrations re-enter the domain's run loop to drive
// their own wire transfers, so DrsTick must own the top of the stack. Every
// decision input (per-pCPU busy/steal deltas, committed resources, member
// order) is committed at round barriers, which makes placement and migration
// choices — and therefore the whole cluster history — deterministic.

#ifndef SRC_CLUSTER_CLUSTER_H_
#define SRC_CLUSTER_CLUSTER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/fabric.h"
#include "src/core/host.h"
#include "src/core/time_domain.h"
#include "src/migrate/migrate.h"
#include "src/util/phase.h"
#include "src/util/status.h"

namespace hyperion::cluster {

struct DrsConfig {
  bool enabled = true;
  // Orchestrator cadence: Cluster::RunFor stops the domain at multiples of
  // this interval and runs one DrsTick. 0 disables periodic ticks (tests can
  // still call DrsTick() directly).
  SimTime interval = 10 * kSimTicksPerMs;
  // Hysteresis band: a host whose busy fraction (busy+steal cycles over
  // window * pcpus) reaches hot_busy starts shedding VMs and keeps shedding
  // on later ticks until it drops below cool_until — no flapping between
  // the two thresholds.
  double hot_busy = 0.85;
  double cool_until = 0.60;
  // A migration must move load to a target at least this much cooler than
  // the source, else it isn't worth the copy traffic.
  double min_gain = 0.10;
  // Rebalance budget per tick, cluster-wide. Drains and evacuations are not
  // budgeted — correctness moves, not optimization moves.
  uint32_t max_migrations_per_tick = 1;
};

struct ClusterConfig {
  std::string name = "cluster";
  // Worker threads for the shared TimeDomain; -1 reads HYPERION_WORKERS.
  int worker_threads = -1;
  // Each member's uplink cable to the fabric (both directions).
  net::LinkParams fabric;
  // Admission: committed vCPUs may reach cpu_overcommit * num_pcpus, and
  // committed guest RAM ram_overcommit * host RAM, per host.
  double cpu_overcommit = 4.0;
  double ram_overcommit = 1.0;
  // Wire parameters for DRS-initiated live migrations.
  migrate::MigrateOptions migrate;
  bool post_copy = false;  // use post-copy instead of pre-copy for DRS moves
  DrsConfig drs;
  // Auto-checkpoint every N DRS ticks (the crash-evacuation template; see
  // CheckpointVm). 0 = only explicit checkpoints.
  uint32_t checkpoint_every_ticks = 0;
};

// One orchestrator-initiated migration, successful or not. `report` carries
// the full wire/dirty accounting and is field-by-field comparable, so a
// cluster run's migration history doubles as a determinism oracle.
struct MigrationRecord {
  std::string vm;
  std::string from;
  std::string to;
  std::string reason;  // "rebalance" | "drain"
  bool ok = false;
  migrate::MigrationReport report;
  bool operator==(const MigrationRecord&) const = default;
};

struct ClusterStats {
  uint64_t vms_admitted = 0;
  uint64_t vms_rejected = 0;
  uint64_t vms_departed = 0;
  uint64_t rebalance_migrations = 0;
  uint64_t drain_migrations = 0;
  uint64_t failed_migrations = 0;
  uint64_t evacuations_respawned = 0;
  uint64_t evacuations_lost = 0;  // no checkpoint template or no capacity
  uint64_t checkpoints = 0;
  uint64_t drs_ticks = 0;
  bool operator==(const ClusterStats&) const = default;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config = ClusterConfig{});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const ClusterConfig& config() const { return config_; }
  core::TimeDomain& domain() { return domain_; }
  SimClock& clock() { return domain_.clock(); }
  Fabric& fabric() { return fabric_; }
  const std::vector<std::unique_ptr<core::Host>>& hosts() const { return hosts_; }

  // Adds a member host. An empty or duplicate name is replaced with
  // "<cluster>-h<index>". The host joins the shared domain and fabric;
  // worker threads come from the domain, not the host config.
  core::Host* AddHost(core::HostConfig config = core::HostConfig{});
  core::Host* FindHost(const std::string& name);

  // --- VM lifecycle --------------------------------------------------------

  // Admission + initial placement: rejects when no schedulable host has
  // overcommit headroom, else places on the least-committed host (fractional
  // vCPU commit, then RAM commit, then member order). Pass `pin` to force a
  // host — still admission-checked.
  Result<core::Vm*> CreateVm(core::VmConfig config, core::Host* pin = nullptr);
  // Departure (churn): destroys the VM wherever it currently lives.
  Status DestroyVm(const std::string& name);
  core::Vm* FindVm(const std::string& name);
  core::Host* HostOf(const std::string& name);
  size_t GuestCount() const { return vm_home_.size(); }

  // --- DR & maintenance ----------------------------------------------------

  // Snapshots the VM (pausing around the save if running) and stores the
  // bytes as its respawn template. A host crash evacuates only VMs that have
  // a template; keep them fresh with checkpoint_every_ticks.
  Status CheckpointVm(const std::string& name);
  // Checkpoints every running VM; returns how many were saved.
  size_t CheckpointAll();

  // Rolling maintenance: a draining host admits nothing new and DrsTick
  // live-migrates its VMs away until it is empty.
  Status DrainHost(core::Host* host);
  void UndrainHost(core::Host* host);
  bool IsDraining(const core::Host* host) const;

  // --- Run loop ------------------------------------------------------------

  // Advances the shared clock by `duration`, running a DrsTick at every
  // drs.interval boundary. Time spent inside migrations counts.
  void RunFor(SimTime duration);
  // Runs until no member has a runnable vCPU and no events are pending, or
  // until the clock reaches `max_time`. Returns true when quiescent.
  bool RunUntilQuiescent(SimTime max_time);

  // One orchestrator pass: refresh load windows, evacuate failed hosts,
  // periodic checkpoints, drain moves, hot-host rebalance. Public so tests
  // can force a pass without waiting out the interval.
  void DrsTick();

  // Busy fraction of `host` over the last completed DRS window — the load
  // signal rebalancing acts on.
  double BusyFraction(const core::Host* host) const;

  const std::vector<MigrationRecord>& migrations() const { return migrations_; }
  const ClusterStats& stats() const { return stats_; }

 private:
  struct HostState {
    bool draining = false;
    bool evacuated = false;  // crash already processed (until MarkRepaired)
    bool cooling = false;    // hysteresis latch: shedding until < cool_until
    uint64_t window_base = 0;  // sum of busy+steal cycles at window start
    SimTime window_start = 0;
    double busy_frac = 0;  // last completed window
  };

  bool Schedulable(const core::Host* host) const;
  static uint64_t CommittedVcpus(const core::Host* host);
  static uint64_t CommittedRam(const core::Host* host);
  bool Admits(const core::Host* host, const core::VmConfig& config) const;
  // Least-committed schedulable host admitting `config`, excluding `exclude`;
  // nullptr when none fits.
  core::Host* PickTarget(const core::VmConfig& config, const core::Host* exclude);
  bool MigrateVm(core::Vm* vm, core::Host* from, core::Host* to, const std::string& reason);
  void EvacuateHost(core::Host* host);
  void EvacuateFailedHosts();
  void RefreshLoadWindows();
  void DrainTick();
  void RebalanceTick();

  ClusterConfig config_;
  // The orchestrator's serial-phase capability: runtime-checked at
  // construction, so a Cluster can never be built (or driven) from inside an
  // executing slice.
  ScopedSerialPhase serial_;
  core::TimeDomain domain_;  // before fabric_ and hosts_: outlives both
  Fabric fabric_;
  std::vector<std::unique_ptr<core::Host>> hosts_;
  std::map<const core::Host*, HostState> host_state_;
  std::map<std::string, core::Host*> vm_home_;  // resident VMs, by name
  std::map<std::string, std::vector<uint8_t>> checkpoints_;
  std::vector<MigrationRecord> migrations_;
  SimTime last_tick_ = 0;
  ClusterStats stats_;
};

}  // namespace hyperion::cluster

#endif  // SRC_CLUSTER_CLUSTER_H_
