#include "src/cluster/cluster.h"

#include <algorithm>
#include <utility>

#include "src/snapshot/snapshot.h"

namespace hyperion::cluster {

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)),
      domain_(config_.worker_threads),
      fabric_(&domain_.clock(), config_.fabric) {}

Cluster::~Cluster() {
  // Pending deliveries (fabric relays, in-flight local frames) hold payloads
  // backed by member FramePools: drop them while every pool is still alive,
  // so members then tear down against an empty queue.
  domain_.DiscardPendingEvents();
}

core::Host* Cluster::AddHost(core::HostConfig config) {
  if (config.name.empty() || FindHost(config.name) != nullptr) {
    config.name = config_.name + "-h" + std::to_string(hosts_.size());
  }
  hosts_.push_back(std::make_unique<core::Host>(std::move(config), &domain_));
  core::Host* host = hosts_.back().get();
  fabric_.AddHost(host);
  host_state_.emplace(host, HostState{});
  return host;
}

core::Host* Cluster::FindHost(const std::string& name) {
  for (auto& host : hosts_) {
    if (host->name() == name) {
      return host.get();
    }
  }
  return nullptr;
}

// --- Placement & admission -------------------------------------------------

bool Cluster::Schedulable(const core::Host* host) const {
  auto it = host_state_.find(host);
  return !host->failed() && (it == host_state_.end() || !it->second.draining);
}

uint64_t Cluster::CommittedVcpus(const core::Host* host) {
  uint64_t vcpus = 0;
  for (const auto& vm : host->vms()) {
    vcpus += vm->num_vcpus();
  }
  return vcpus;
}

uint64_t Cluster::CommittedRam(const core::Host* host) {
  uint64_t ram = 0;
  for (const auto& vm : host->vms()) {
    ram += vm->config().ram_bytes;
  }
  return ram;
}

bool Cluster::Admits(const core::Host* host, const core::VmConfig& config) const {
  double vcpu_cap = config_.cpu_overcommit * host->config().num_pcpus;
  double ram_cap = config_.ram_overcommit * static_cast<double>(host->config().ram_bytes);
  return static_cast<double>(CommittedVcpus(host) + config.num_vcpus) <= vcpu_cap &&
         static_cast<double>(CommittedRam(host) + config.ram_bytes) <= ram_cap;
}

core::Host* Cluster::PickTarget(const core::VmConfig& config, const core::Host* exclude) {
  core::Host* best = nullptr;
  double best_vcpu_frac = 0;
  uint64_t best_ram = 0;
  for (auto& candidate : hosts_) {
    core::Host* host = candidate.get();
    if (host == exclude || !Schedulable(host) || !Admits(host, config)) {
      continue;
    }
    double vcpu_frac =
        static_cast<double>(CommittedVcpus(host)) / host->config().num_pcpus;
    uint64_t ram = CommittedRam(host);
    // Strictly-less comparisons keep ties on member order: deterministic.
    if (best == nullptr || vcpu_frac < best_vcpu_frac ||
        (vcpu_frac == best_vcpu_frac && ram < best_ram)) {
      best = host;
      best_vcpu_frac = vcpu_frac;
      best_ram = ram;
    }
  }
  return best;
}

// --- VM lifecycle ----------------------------------------------------------

Result<core::Vm*> Cluster::CreateVm(core::VmConfig config, core::Host* pin) {
  if (vm_home_.count(config.name) != 0) {
    return AlreadyExistsError("vm name already placed in cluster: " + config.name);
  }
  core::Host* target = pin;
  if (target == nullptr) {
    target = PickTarget(config, nullptr);
  } else if (!Schedulable(target) || !Admits(target, config)) {
    target = nullptr;
  }
  if (target == nullptr) {
    ++stats_.vms_rejected;
    return ResourceExhaustedError("no schedulable host admits vm: " + config.name);
  }
  std::string name = config.name;
  Result<core::Vm*> vm = target->CreateVm(std::move(config));
  if (!vm.ok()) {
    ++stats_.vms_rejected;
    return vm;
  }
  vm_home_[name] = target;
  ++stats_.vms_admitted;
  return vm;
}

Status Cluster::DestroyVm(const std::string& name) {
  auto it = vm_home_.find(name);
  if (it == vm_home_.end()) {
    return NotFoundError("vm not placed in cluster: " + name);
  }
  core::Host* home = it->second;
  vm_home_.erase(it);
  checkpoints_.erase(name);
  ++stats_.vms_departed;
  core::Vm* vm = home->FindVm(name);
  if (vm == nullptr) {
    return InternalError("placement record with no resident vm: " + name);
  }
  return home->DestroyVm(vm);
}

core::Vm* Cluster::FindVm(const std::string& name) {
  core::Host* home = HostOf(name);
  return home == nullptr ? nullptr : home->FindVm(name);
}

core::Host* Cluster::HostOf(const std::string& name) {
  auto it = vm_home_.find(name);
  return it == vm_home_.end() ? nullptr : it->second;
}

// --- DR & maintenance ------------------------------------------------------

Status Cluster::CheckpointVm(const std::string& name) {
  core::Vm* vm = FindVm(name);
  if (vm == nullptr) {
    return NotFoundError("vm not placed in cluster: " + name);
  }
  if (vm->state() != core::VmState::kRunning && vm->state() != core::VmState::kPaused) {
    return FailedPreconditionError("vm is not checkpointable: " + name);
  }
  bool was_running = vm->state() == core::VmState::kRunning;
  if (was_running) {
    vm->Pause(serial_.get());
  }
  Result<std::vector<uint8_t>> bytes = snapshot::SaveVm(*vm);
  if (was_running) {
    vm->Resume(serial_.get());
  }
  if (!bytes.ok()) {
    return bytes.status();
  }
  checkpoints_[name] = std::move(*bytes);
  ++stats_.checkpoints;
  return OkStatus();
}

size_t Cluster::CheckpointAll() {
  size_t saved = 0;
  // vm_home_ is name-ordered, so the pause/save sequence is deterministic.
  std::vector<std::string> names;
  names.reserve(vm_home_.size());
  for (const auto& [name, home] : vm_home_) {
    names.push_back(name);
  }
  for (const std::string& name : names) {
    core::Vm* vm = FindVm(name);
    if (vm != nullptr && vm->state() == core::VmState::kRunning &&
        CheckpointVm(name).ok()) {
      ++saved;
    }
  }
  return saved;
}

Status Cluster::DrainHost(core::Host* host) {
  auto it = host_state_.find(host);
  if (it == host_state_.end()) {
    return NotFoundError("host is not a cluster member");
  }
  it->second.draining = true;
  return OkStatus();
}

void Cluster::UndrainHost(core::Host* host) {
  auto it = host_state_.find(host);
  if (it != host_state_.end()) {
    it->second.draining = false;
  }
}

bool Cluster::IsDraining(const core::Host* host) const {
  auto it = host_state_.find(host);
  return it != host_state_.end() && it->second.draining;
}

// --- Migration & evacuation ------------------------------------------------

bool Cluster::MigrateVm(core::Vm* vm, core::Host* from, core::Host* to,
                        const std::string& reason) {
  MigrationRecord record;
  record.vm = vm->name();
  record.from = from->name();
  record.to = to->name();
  record.reason = reason;
  Result<core::Vm*> moved =
      config_.post_copy
          ? migrate::PostCopyMigrate(*from, vm, *to, config_.migrate, &record.report)
          : migrate::PreCopyMigrate(*from, vm, *to, config_.migrate, &record.report);
  record.ok = moved.ok();
  bool ok = record.ok;
  if (ok) {
    // Contract: the source instance is left paused for the caller.
    (void)from->DestroyVm(vm);
    vm_home_[record.vm] = to;
    if (reason == "drain") {
      ++stats_.drain_migrations;
    } else {
      ++stats_.rebalance_migrations;
    }
  } else {
    ++stats_.failed_migrations;
  }
  migrations_.push_back(std::move(record));
  return ok;
}

void Cluster::EvacuateHost(core::Host* host) {
  HostState& state = host_state_[host];
  state.evacuated = true;
  state.cooling = false;
  // Victims are the crashed instances (an injected host crash crashes every
  // running VM); shut-down VMs already finished and keep their results
  // readable in place. Name order keeps respawn placement deterministic.
  std::vector<std::string> victims;
  for (const auto& vm : host->vms()) {
    if (vm->state() == core::VmState::kCrashed && vm_home_.count(vm->name()) != 0) {
      victims.push_back(vm->name());
    }
  }
  std::sort(victims.begin(), victims.end());
  for (const std::string& name : victims) {
    core::Vm* dead = host->FindVm(name);
    core::VmConfig config = dead->config();
    (void)host->DestroyVm(dead);
    vm_home_.erase(name);
    auto checkpoint = checkpoints_.find(name);
    if (checkpoint == checkpoints_.end()) {
      ++stats_.evacuations_lost;  // nothing to respawn from
      continue;
    }
    core::Host* target = PickTarget(config, host);
    if (target == nullptr) {
      ++stats_.evacuations_lost;  // no capacity anywhere
      continue;
    }
    // CloneVm restores memory and vCPU state and comes back running.
    Result<core::Vm*> revived = snapshot::CloneVm(*target, std::move(config),
                                                  checkpoint->second);
    if (!revived.ok()) {
      ++stats_.evacuations_lost;
      continue;
    }
    vm_home_[name] = target;
    ++stats_.evacuations_respawned;
  }
}

// --- DRS -------------------------------------------------------------------

double Cluster::BusyFraction(const core::Host* host) const {
  auto it = host_state_.find(host);
  return it == host_state_.end() ? 0.0 : it->second.busy_frac;
}

void Cluster::RefreshLoadWindows() {
  SimTime now = clock().now();
  for (auto& member : hosts_) {
    core::Host* host = member.get();
    HostState& state = host_state_[host];
    uint64_t used = 0;
    for (const core::Host::PcpuStats& pcpu : host->stats().pcpu) {
      used += pcpu.busy_cycles + pcpu.steal_cycles;
    }
    SimTime window = now - state.window_start;
    if (window > 0) {
      double capacity = static_cast<double>(window) * host->config().num_pcpus;
      state.busy_frac = static_cast<double>(used - state.window_base) / capacity;
    }
    state.window_base = used;
    state.window_start = now;
  }
}

void Cluster::DrainTick() {
  for (auto& member : hosts_) {
    core::Host* host = member.get();
    if (!IsDraining(host) || host->failed()) {
      continue;
    }
    std::vector<std::string> names;
    for (const auto& vm : host->vms()) {
      if (vm->state() == core::VmState::kRunning) {
        names.push_back(vm->name());
      }
    }
    std::sort(names.begin(), names.end());
    for (const std::string& name : names) {
      core::Vm* vm = host->FindVm(name);
      core::Host* target = PickTarget(vm->config(), host);
      if (target == nullptr) {
        break;  // no capacity this tick; retry next tick
      }
      MigrateVm(vm, host, target, "drain");
    }
  }
}

void Cluster::RebalanceTick() {
  if (!config_.drs.enabled) {
    return;
  }
  for (auto& member : hosts_) {
    HostState& state = host_state_[member.get()];
    if (!Schedulable(member.get())) {
      state.cooling = false;
    } else if (state.busy_frac >= config_.drs.hot_busy) {
      state.cooling = true;
    } else if (state.busy_frac < config_.drs.cool_until) {
      state.cooling = false;
    }
  }
  uint32_t budget = config_.drs.max_migrations_per_tick;
  for (auto& member : hosts_) {
    core::Host* hot = member.get();
    if (budget == 0) {
      break;
    }
    if (!host_state_[hot].cooling || !Schedulable(hot)) {
      continue;
    }
    // Victim: the cheapest-to-move running VM (smallest RAM, then name).
    std::vector<core::Vm*> victims;
    for (const auto& vm : hot->vms()) {
      if (vm->state() == core::VmState::kRunning) {
        victims.push_back(vm.get());
      }
    }
    std::sort(victims.begin(), victims.end(), [](const core::Vm* a, const core::Vm* b) {
      if (a->config().ram_bytes != b->config().ram_bytes) {
        return a->config().ram_bytes < b->config().ram_bytes;
      }
      return a->name() < b->name();
    });
    for (core::Vm* victim : victims) {
      // Coldest schedulable target that admits the victim.
      core::Host* target = nullptr;
      for (auto& other : hosts_) {
        core::Host* candidate = other.get();
        if (candidate == hot || !Schedulable(candidate) ||
            !Admits(candidate, victim->config())) {
          continue;
        }
        if (target == nullptr ||
            host_state_[candidate].busy_frac < host_state_[target].busy_frac) {
          target = candidate;
        }
      }
      if (target == nullptr ||
          host_state_[hot].busy_frac - host_state_[target].busy_frac <
              config_.drs.min_gain) {
        break;  // nowhere meaningfully cooler — stop shedding this tick
      }
      if (MigrateVm(victim, hot, target, "rebalance")) {
        --budget;
      }
      break;  // at most one move per hot host per tick
    }
  }
}

void Cluster::EvacuateFailedHosts() {
  for (auto& member : hosts_) {
    if (member->failed() && !host_state_[member.get()].evacuated) {
      EvacuateHost(member.get());
    }
  }
}

void Cluster::DrsTick() {
  ++stats_.drs_ticks;
  RefreshLoadWindows();
  EvacuateFailedHosts();
  if (config_.checkpoint_every_ticks != 0 &&
      stats_.drs_ticks % config_.checkpoint_every_ticks == 0) {
    CheckpointAll();
  }
  DrainTick();
  RebalanceTick();
  // Drain/rebalance migrations advance shared time, possibly past an injected
  // crash — and possibly past the caller's RunFor horizon, in which case no
  // later tick would see the casualty. Sweep again before returning.
  EvacuateFailedHosts();
}

// --- Run loop --------------------------------------------------------------

void Cluster::RunFor(SimTime duration) {
  SimTime end = clock().now() + duration;
  while (clock().now() < end) {
    if (config_.drs.interval != 0 && clock().now() >= last_tick_ + config_.drs.interval) {
      DrsTick();
      last_tick_ = clock().now();
      continue;  // migrations advance time; re-check against end
    }
    SimTime stop = end;
    if (config_.drs.interval != 0) {
      stop = std::min(stop, last_tick_ + config_.drs.interval);
    }
    domain_.RunFor(stop - clock().now());
  }
}

bool Cluster::RunUntilQuiescent(SimTime max_time) {
  for (;;) {
    bool active = clock().HasPending();
    for (auto& member : hosts_) {
      active = active || member->AnyVcpuRunnable();
    }
    if (!active) {
      return true;
    }
    SimTime before = clock().now();
    if (before >= max_time) {
      return false;
    }
    RunFor(std::min<SimTime>(max_time - before, 10 * kSimTicksPerMs));
    if (clock().now() == before) {
      return false;  // stuck: pending work that cannot advance time
    }
  }
}

}  // namespace hyperion::cluster
