// The inter-host interconnect: every member host's VirtualSwitch gets an
// uplink port attached here, joined by a pair of net::Links (tx toward the
// fabric, rx toward the host) so cross-host frames pay realistic
// serialization and propagation costs in both directions.
//
// Forwarding is learning-free and self-updating: a unicast frame is resolved
// at ingress by asking each member switch (in member order) whether it
// currently owns the destination port. Live migration moves the port between
// switches, so the very next frame routes to the new host with no FDB to
// invalidate. Broadcasts flood every other member; the receiving switch
// delivers locally only (split horizon in DeliverFromFabric), so a broadcast
// crosses the fabric at most once.
//
// All delivery happens on the shared TimeDomain clock with the serial-phase
// token, i.e. between rounds — an executing slice can stage frames at its
// own switch but can never reach the fabric directly.

#ifndef SRC_CLUSTER_FABRIC_H_
#define SRC_CLUSTER_FABRIC_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/host.h"
#include "src/net/network.h"
#include "src/util/phase.h"
#include "src/util/sim_clock.h"

namespace hyperion::fault {
class FaultInjector;
}  // namespace hyperion::fault

namespace hyperion::cluster {

class Fabric {
 public:
  struct Stats {
    uint64_t frames_forwarded = 0;  // unicast host-to-host crossings
    uint64_t frames_flooded = 0;    // broadcast ingresses (one per source frame)
    uint64_t frames_no_route = 0;   // unicast with no member owning the dst
    uint64_t frames_injected_dropped = 0;
    uint64_t frames_injected_duplicated = 0;
    uint64_t bytes_forwarded = 0;
    bool operator==(const Stats&) const = default;
  };

  // `port_params` describes each member's uplink cable (applied to both
  // directions independently, like a full-duplex NIC).
  Fabric(SimClock* clock, net::LinkParams port_params)
      : clock_(clock), params_(port_params) {}

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // Attaches `host`'s switch to the fabric. The host must share the fabric's
  // clock (same TimeDomain) and must outlive frame deliveries — the Cluster
  // guarantees both by draining the shared event queue before teardown.
  void AddHost(core::Host* host);

  // Subjects every fabric crossing to injected drop/duplicate/delay faults
  // under `site`. Pass nullptr to detach.
  void SetFaultInjector(fault::FaultInjector* injector, std::string site);

  const Stats& stats() const { return stats_; }

 private:
  struct Attachment final : public net::UplinkPort {
    Attachment(Fabric* owner, core::Host* member)
        : fabric(owner),
          host(member),
          tx(owner->clock_, owner->params_),
          rx(owner->clock_, owner->params_) {}

    void OnUplinkFrame(const DirectPhase& ph, net::Frame frame, SimTime at) override {
      fabric->Forward(ph, *this, std::move(frame), at);
    }

    Fabric* fabric;
    core::Host* host;
    net::Link tx;  // host switch -> fabric
    net::Link rx;  // fabric -> host switch
  };

  void Forward(const DirectPhase& ph, Attachment& from, net::Frame frame, SimTime at);
  void Relay(const DirectPhase& ph, Attachment& to, net::Frame frame, SimTime at);

  SimClock* clock_;
  net::LinkParams params_;
  std::vector<std::unique_ptr<Attachment>> members_;
  fault::FaultInjector* injector_ = nullptr;
  std::string fault_site_;
  Stats stats_;
};

}  // namespace hyperion::cluster

#endif  // SRC_CLUSTER_FABRIC_H_
