#include "src/mmu/virtualizer.h"

#include <sstream>

namespace hyperion::mmu {

void MemoryVirtualizer::OnSfence(uint32_t va) {
  // sfence is local to the executing vCPU, as on real hardware; flushing the
  // siblings is the guest's job (IPI shootdown).
  if (va == 0) {
    tlb_->FlushAll();
  } else {
    tlb_->FlushPage(isa::PageNumber(va));
  }
}

void MemoryVirtualizer::OnPagingToggle() { tlb_->FlushAll(); }

void MemoryVirtualizer::OnPtWriteEmulated(uint32_t gpa, uint32_t size) {
  (void)gpa;
  (void)size;
}

void MemoryVirtualizer::InvalidateGpn(uint32_t gpn) {
  // VMM-side page change: every vCPU's cached translations are stale.
  for (Tlb& t : tlbs_) {
    t.FlushGpn(gpn);
  }
}

void MemoryVirtualizer::ConfigureVcpus(uint32_t num_vcpus) {
  while (tlbs_.size() < num_vcpus) {
    tlbs_.emplace_back(tlb_entries_);
  }
  while (tlbs_.size() > num_vcpus && tlbs_.size() > 1) {
    tlbs_.pop_back();
  }
  active_vcpu_ = 0;
  tlb_ = &tlbs_.front();
  FlushAll();
}

void MemoryVirtualizer::SetActiveVcpu(uint32_t vcpu) {
  if (vcpu < tlbs_.size()) {
    active_vcpu_ = vcpu;
    tlb_ = &tlbs_[vcpu];
  }
}

TranslateOutcome MemoryVirtualizer::ResolveGpa(uint32_t gpa, Access access, bool pte_writable,
                                               uint64_t cost) {
  TranslateOutcome out;
  out.cost = cost;
  out.gpa = gpa;
  if (isa::IsMmio(gpa)) {
    out.is_mmio = true;
    return out;
  }
  uint32_t gpn = isa::PageNumber(gpa);
  if (gpn >= memory_->num_pages()) {
    // Access beyond RAM: surfaced to the guest as a page fault.
    out.event = MemEvent::kGuestFault;
    out.fault_cause = FaultCauseFor(access);
    ++stats_.guest_faults;
    return out;
  }
  if (!memory_->IsPresent(gpn)) {
    out.event = MemEvent::kMissingPage;
    return out;
  }
  bool wp = memory_->IsWriteProtected(gpn);
  bool shared = memory_->IsShared(gpn);
  if (access == Access::kStore) {
    if (wp) {
      out.event = MemEvent::kPtWriteTrap;
      ++stats_.pt_write_traps;
      return out;
    }
    if (shared) {
      out.event = MemEvent::kCowBreak;
      return out;
    }
  }
  out.frame = memory_->FrameForPage(gpn);
  out.writable = pte_writable && !wp && !shared;
  return out;
}

TranslateOutcome MemoryVirtualizer::TranslateBare(uint32_t va, Access access) {
  ++stats_.translations;
  if (!isa::IsMmio(va)) {
    uint32_t vpn = isa::PageNumber(va);
    const TlbEntry* e = tlb_->Lookup(vpn);
    if (e != nullptr && RightsAllow(access, e->readable, e->writable, e->executable)) {
      TranslateOutcome out;
      out.gpa = va;
      out.frame = e->frame;
      out.writable = e->writable;
      out.readable = e->readable;
      out.executable = e->executable;
      out.user = e->user;
      out.cost = costs_.tlb_hit;
      return out;
    }
  }
  TranslateOutcome out = ResolveGpa(va, access, /*pte_writable=*/true, costs_.tlb_fill);
  // With no page tables every access kind is permitted.
  out.readable = true;
  out.executable = true;
  out.user = true;
  if (out.event == MemEvent::kNone && !out.is_mmio) {
    TlbEntry e;
    e.vpn = isa::PageNumber(va);
    e.gpn = isa::PageNumber(out.gpa);
    e.frame = out.frame;
    e.writable = out.writable;
    e.readable = true;
    e.executable = true;
    e.user = true;
    tlb_->Insert(e);
    ++stats_.tlb_fill;
  }
  return out;
}

// ---------------------------------------------------------------------------
// BarePassthrough
// ---------------------------------------------------------------------------

TranslateOutcome BarePassthrough::Translate(uint32_t va, Access access, isa::PrivMode priv,
                                            bool paging, uint32_t ptbr) {
  (void)priv;
  (void)paging;  // with no page tables there is nothing paging could change
  (void)ptbr;
  return TranslateBare(va, access);
}

uint64_t BarePassthrough::OnPtbrWrite(uint32_t new_ptbr) {
  (void)new_ptbr;
  return 0;
}

std::unique_ptr<MemoryVirtualizer> MakeBarePassthrough(mem::GuestMemory* memory,
                                                       const CostModel& costs,
                                                       size_t tlb_entries) {
  return std::make_unique<BarePassthrough>(memory, costs, tlb_entries);
}

std::unique_ptr<MemoryVirtualizer> MakeVirtualizer(PagingMode mode, mem::GuestMemory* memory,
                                                   const CostModel& costs, size_t tlb_entries) {
  switch (mode) {
    case PagingMode::kShadow:
      return MakeShadowPaging(memory, costs, tlb_entries);
    case PagingMode::kNested:
      return MakeNestedPaging(memory, costs, tlb_entries);
    case PagingMode::kNestedAsid:
      return MakeNestedPaging(memory, costs, tlb_entries, /*asid_tlb=*/true);
  }
  return nullptr;
}

void MemoryVirtualizer::AuditInvariants(bool paging, uint32_t ptbr,
                                        std::vector<std::string>* violations,
                                        uint32_t vcpu) const {
  (void)ptbr;
  if (vcpu >= tlbs_.size()) {
    violations->push_back(std::string(name()) + " audit: vcpu index out of range");
    return;
  }
  tlbs_[vcpu].ForEachValid([&](const TlbEntry& e) {
    std::ostringstream where;
    where << name() << " TLB[vcpu" << vcpu << "] vpn=0x" << std::hex << e.vpn
          << " asid=" << std::dec << e.asid << ": ";
    if (!paging && e.gpn != e.vpn) {
      violations->push_back(where.str() + "non-identity entry while paging is off");
      return;
    }
    mem::HostFrame backing = memory_->FrameForPage(e.gpn);
    if (backing == mem::kInvalidFrame) {
      violations->push_back(where.str() + "maps absent guest page");
      return;
    }
    if (e.frame != backing) {
      std::ostringstream os;
      os << where.str() << "caches frame " << e.frame
         << " but the guest page is backed by frame " << backing;
      violations->push_back(os.str());
    }
    if (e.writable && memory_->IsShared(e.gpn)) {
      violations->push_back(where.str() + "writable entry covers a KSM-shared page");
    }
    if (e.writable && memory_->IsWriteProtected(e.gpn)) {
      violations->push_back(where.str() + "writable entry covers a write-protected page");
    }
  });
}

}  // namespace hyperion::mmu
