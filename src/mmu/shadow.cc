// Shadow page tables.
//
// The VMM maintains, per guest root (PTBR value), a software map from guest
// VPN to host translation. Misses model the "hidden page fault" VM exit of
// classic shadow paging: the VMM walks the guest tables, constructs a shadow
// entry, and write-protects the guest PT pages it consulted so that later
// guest PTE stores trap (OnPtWriteEmulated) and invalidate exactly the
// entries derived from the touched PT page.

#include <algorithm>
#include <cassert>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "src/mmu/virtualizer.h"

namespace hyperion::mmu {

namespace {

class ShadowPaging final : public MemoryVirtualizer {
 public:
  using MemoryVirtualizer::MemoryVirtualizer;

  ~ShadowPaging() override {
    // Drop every write-protection this virtualizer installed.
    for (auto& root : roots_) {
      for (auto& [pt_gpn, vpns] : root->derived) {
        (void)vpns;
        memory_->SetWriteProtected(pt_gpn, false);
      }
    }
  }

  std::string_view name() const override { return "shadow"; }

  TranslateOutcome Translate(uint32_t va, Access access, isa::PrivMode priv, bool paging,
                             uint32_t ptbr) override {
    if (!paging) {
      return TranslateBare(va, access);
    }
    ++stats_.translations;
    uint32_t vpn = isa::PageNumber(va);

    // 1. TLB fast path.
    const TlbEntry* e = tlb_->Lookup(vpn);
    if (e != nullptr && RightsAllow(access, e->readable, e->writable, e->executable) &&
        (priv != isa::PrivMode::kUser || e->user)) {
      TranslateOutcome out;
      out.gpa = (e->gpn << isa::kPageBits) | isa::VaPageOffset(va);
      out.frame = e->frame;
      out.writable = e->writable;
      out.readable = e->readable;
      out.executable = e->executable;
      out.user = e->user;
      out.cost = costs_.tlb_hit;
      return out;
    }

    Root& root = ActiveRoot(ptbr);

    // 2. Shadow-structure hit (no exit modeled: hardware walks the shadow
    //    table and finds the entry).
    auto it = root.map.find(vpn);
    if (it != root.map.end()) {
      const ShadowEntry& se = it->second;
      bool perm_ok = RightsAllow(access, se.readable, se.writable, se.executable) &&
                     (priv != isa::PrivMode::kUser || se.user);
      if (perm_ok) {
        return FillFromShadow(va, se, costs_.pt_walk_step * 2 + costs_.tlb_fill);
      }
      // Permission mismatch (e.g. first store to a clean page): resync below.
      root.map.erase(it);
    }

    // 3. Hidden page fault: VM exit, software walk, shadow sync.
    uint64_t cost = costs_.vm_exit;
    ++stats_.hidden_faults;
    ++stats_.walks;
    WalkResult wr = WalkGuest(*memory_, ptbr, va, access, priv);
    stats_.walk_steps += static_cast<uint64_t>(wr.steps);
    cost += static_cast<uint64_t>(wr.steps) * costs_.pt_walk_step;
    if (!wr.ok) {
      TranslateOutcome out;
      out.event = MemEvent::kGuestFault;
      out.fault_cause = wr.fault;
      out.cost = cost;
      ++stats_.guest_faults;
      return out;
    }

    cost += costs_.shadow_sync_entry;
    TranslateOutcome out = ResolveGpa(wr.gpa, access, wr.writable, cost);
    out.readable = wr.readable;
    out.executable = wr.executable;
    out.user = wr.user;
    if (out.event != MemEvent::kNone) {
      return out;  // PT-write trap, COW break, missing page, or bus fault
    }
    if (out.is_mmio) {
      return out;  // device addresses are never cached in the shadow
    }

    // Construct the shadow entry and write-protect the PT pages it came from.
    ShadowEntry se;
    se.gpn = isa::PageNumber(wr.gpa);
    se.writable = out.writable;
    se.readable = wr.readable;
    se.executable = wr.executable;
    se.user = wr.user;
    root.map[vpn] = se;
    ++stats_.shadow_syncs;

    RegisterPtPage(root, isa::PageNumber(wr.l1_pte_gpa), vpn);
    if (!wr.superpage) {
      uint32_t leaf_gpn = isa::PageNumber(wr.leaf_pte_gpa);
      if (leaf_gpn != isa::PageNumber(wr.l1_pte_gpa)) {
        RegisterPtPage(root, leaf_gpn, vpn);
      }
    }

    InsertTlb(vpn, se);
    return out;
  }

  uint64_t OnPtbrWrite(uint32_t new_ptbr) override {
    tlb_->FlushAll();
    for (auto& root : roots_) {
      if (root->ptbr == new_ptbr) {
        root->last_used = ++tick_;
        SetActiveRoot(root.get());
        ++stats_.root_switches;
        return costs_.shadow_root_switch;
      }
    }
    SetActiveRoot(&CreateRoot(new_ptbr));
    return costs_.shadow_root_build;
  }

  void OnPtWriteEmulated(uint32_t gpa, uint32_t size) override {
    // Invalidate every shadow entry derived from the touched PT page(s).
    uint32_t first = isa::PageNumber(gpa);
    uint32_t last = isa::PageNumber(gpa + (size ? size - 1 : 0));
    for (uint32_t pt_gpn = first; pt_gpn <= last; ++pt_gpn) {
      for (auto& root : roots_) {
        auto it = root->derived.find(pt_gpn);
        if (it == root->derived.end()) {
          continue;
        }
        for (uint32_t vpn : it->second) {
          root->map.erase(vpn);
          // The shadow map is shared by every vCPU, so the dropped entry must
          // leave every vCPU's TLB — WP interception, not guest shootdowns,
          // keeps shadow state coherent.
          FlushPageAllVcpus(vpn);
        }
        root->derived.erase(it);
      }
      if (!AnyRootDerives(pt_gpn)) {
        memory_->SetWriteProtected(pt_gpn, false);
      }
    }
  }

  void InvalidateGpn(uint32_t gpn) override {
    for (Tlb& t : tlbs_) {
      t.FlushGpn(gpn);
    }
    for (auto& root : roots_) {
      for (auto it = root->map.begin(); it != root->map.end();) {
        if (it->second.gpn == gpn) {
          FlushPageAllVcpus(it->first);
          it = root->map.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  void FlushAll() override {
    // Flush every vCPU's TLB but keep shadow roots: they stay coherent
    // through write-protection.
    MemoryVirtualizer::FlushAll();
  }

  void ConfigureVcpus(uint32_t num_vcpus) override {
    MemoryVirtualizer::ConfigureVcpus(num_vcpus);
    active_per_vcpu_.assign(num_vcpus, nullptr);
    active_ = nullptr;
  }

  void SetActiveVcpu(uint32_t vcpu) override {
    MemoryVirtualizer::SetActiveVcpu(vcpu);
    if (vcpu < active_per_vcpu_.size()) {
      active_ = active_per_vcpu_[vcpu];
    }
  }

  // Shadow-specific invariants on top of the generic TLB checks: every shadow
  // entry must agree with a fresh (side-effect-free) walk of the guest tables
  // it was derived from, every PT page any root derived from must still be
  // write-protected (and vice versa: shadow paging is the only owner of the
  // WP bitmap), and with paging on the TLB must be a subset of the active
  // root's shadow map.
  void AuditInvariants(bool paging, uint32_t ptbr,
                       std::vector<std::string>* violations,
                       uint32_t vcpu = 0) const override {
    MemoryVirtualizer::AuditInvariants(paging, ptbr, violations, vcpu);

    for (const auto& root : roots_) {
      for (const auto& [vpn, se] : root->map) {
        std::ostringstream where;
        where << "shadow root=0x" << std::hex << root->ptbr << " vpn=0x" << vpn << ": ";
        ProbeResult pr = ProbeGuest(*memory_, root->ptbr, vpn << isa::kPageBits);
        if (!pr.valid) {
          violations->push_back(where.str() +
                                "guest page table no longer maps this page");
          continue;
        }
        if (isa::PageNumber(pr.gpa) != se.gpn) {
          std::ostringstream os;
          os << where.str() << "shadow gpn=0x" << std::hex << se.gpn
             << " but the guest table now maps gpn=0x" << isa::PageNumber(pr.gpa);
          violations->push_back(os.str());
          continue;
        }
        if (se.writable &&
            ((pr.leaf_pte & isa::Pte::kWrite) == 0 ||
             (pr.leaf_pte & isa::Pte::kDirty) == 0)) {
          violations->push_back(where.str() +
                                "writable shadow entry without W+D in the guest PTE");
        }
        if (se.readable && (pr.leaf_pte & isa::Pte::kRead) == 0) {
          violations->push_back(where.str() +
                                "readable shadow entry without R in the guest PTE");
        }
        if (se.executable && (pr.leaf_pte & isa::Pte::kExec) == 0) {
          violations->push_back(where.str() +
                                "executable shadow entry without X in the guest PTE");
        }
        if (se.user != ((pr.leaf_pte & isa::Pte::kUser) != 0)) {
          violations->push_back(where.str() +
                                "user bit disagrees with the guest PTE");
        }
      }
      for (const auto& [pt_gpn, vpns] : root->derived) {
        (void)vpns;
        if (!memory_->IsWriteProtected(pt_gpn)) {
          std::ostringstream os;
          os << "shadow root=0x" << std::hex << root->ptbr << ": derived PT page gpn=0x"
             << pt_gpn << " is not write-protected";
          violations->push_back(os.str());
        }
      }
    }

    for (uint32_t gpn = 0; gpn < memory_->num_pages(); ++gpn) {
      if (memory_->IsWriteProtected(gpn) && !AnyRootDerives(gpn)) {
        std::ostringstream os;
        os << "shadow: gpn=0x" << std::hex << gpn
           << " is write-protected but no root derives from it";
        violations->push_back(os.str());
      }
    }

    const Root* audited_active =
        vcpu < active_per_vcpu_.size() ? active_per_vcpu_[vcpu] : nullptr;
    if (paging && audited_active != nullptr) {
      tlb(vcpu).ForEachValid([&](const TlbEntry& e) {
        auto it = audited_active->map.find(e.vpn);
        std::ostringstream where;
        where << "shadow TLB[vcpu" << vcpu << "] vpn=0x" << std::hex << e.vpn << ": ";
        if (it == audited_active->map.end()) {
          violations->push_back(where.str() + "no shadow entry in the active root");
          return;
        }
        if (it->second.gpn != e.gpn || it->second.writable != e.writable ||
            it->second.readable != e.readable || it->second.executable != e.executable ||
            it->second.user != e.user) {
          violations->push_back(where.str() +
                                "permissions or target disagree with the shadow entry");
        }
      });
    }
  }

 private:
  struct ShadowEntry {
    uint32_t gpn = 0;
    bool readable = false;
    bool writable = false;
    bool executable = false;
    bool user = false;
  };

  struct Root {
    uint32_t ptbr = 0;
    uint64_t last_used = 0;
    std::unordered_map<uint32_t, ShadowEntry> map;                // vpn -> entry
    std::unordered_map<uint32_t, std::vector<uint32_t>> derived;  // PT gpn -> vpns
  };

  static constexpr size_t kMaxRoots = 8;

  Root& ActiveRoot(uint32_t ptbr) {
    if (active_ != nullptr && active_->ptbr == ptbr) {
      return *active_;
    }
    // Defensive path: the CPU normally reports PTBR writes via OnPtbrWrite.
    OnPtbrWrite(ptbr);
    return *active_;
  }

  Root& CreateRoot(uint32_t ptbr) {
    ++stats_.root_builds;
    if (roots_.size() >= kMaxRoots) {
      EvictLruRoot();
    }
    auto root = std::make_unique<Root>();
    root->ptbr = ptbr;
    root->last_used = ++tick_;
    roots_.push_back(std::move(root));
    return *roots_.back();
  }

  // Marks `root` active for the currently selected vCPU.
  void SetActiveRoot(Root* root) {
    active_ = root;
    if (active_vcpu_ < active_per_vcpu_.size()) {
      active_per_vcpu_[active_vcpu_] = root;
    }
  }

  bool IsActiveForAnyVcpu(const Root* root) const {
    if (root == active_) {
      return true;
    }
    for (const Root* r : active_per_vcpu_) {
      if (r == root) {
        return true;
      }
    }
    return false;
  }

  // Flushes one vpn from every vCPU's TLB (VMM-side shadow invalidation).
  void FlushPageAllVcpus(uint32_t vpn) {
    for (Tlb& t : tlbs_) {
      t.FlushPage(vpn);
    }
  }

  void EvictLruRoot() {
    size_t victim = SIZE_MAX;
    for (size_t i = 0; i < roots_.size(); ++i) {
      // A root that is any sibling vCPU's active address space must survive.
      if (IsActiveForAnyVcpu(roots_[i].get())) {
        continue;
      }
      if (victim == SIZE_MAX || roots_[i]->last_used < roots_[victim]->last_used) {
        victim = i;
      }
    }
    if (victim == SIZE_MAX) {
      return;
    }
    // Remove this root's WP registrations if nobody else derives from them.
    std::vector<uint32_t> pt_pages;
    pt_pages.reserve(roots_[victim]->derived.size());
    for (auto& [pt_gpn, vpns] : roots_[victim]->derived) {
      (void)vpns;
      pt_pages.push_back(pt_gpn);
    }
    roots_.erase(roots_.begin() + static_cast<ptrdiff_t>(victim));
    for (uint32_t pt_gpn : pt_pages) {
      if (!AnyRootDerives(pt_gpn)) {
        memory_->SetWriteProtected(pt_gpn, false);
      }
    }
  }

  bool AnyRootDerives(uint32_t pt_gpn) const {
    for (const auto& root : roots_) {
      if (root->derived.count(pt_gpn)) {
        return true;
      }
    }
    return false;
  }

  void RegisterPtPage(Root& root, uint32_t pt_gpn, uint32_t vpn) {
    if (!memory_->IsWriteProtected(pt_gpn)) {
      memory_->SetWriteProtected(pt_gpn, true);
      // Any cached translation that could still write this page — on any
      // vCPU — must go.
      for (Tlb& t : tlbs_) {
        t.FlushGpn(pt_gpn);
      }
      for (auto& r : roots_) {
        for (auto it = r->map.begin(); it != r->map.end();) {
          if (it->second.gpn == pt_gpn && it->second.writable) {
            FlushPageAllVcpus(it->first);
            it = r->map.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
    root.derived[pt_gpn].push_back(vpn);
  }

  TranslateOutcome FillFromShadow(uint32_t va, const ShadowEntry& se, uint64_t cost) {
    TranslateOutcome out;
    out.gpa = (se.gpn << isa::kPageBits) | isa::VaPageOffset(va);
    out.frame = memory_->FrameForPage(se.gpn);
    assert(out.frame != mem::kInvalidFrame && "shadow entry to an absent page");
    out.writable = se.writable;
    out.readable = se.readable;
    out.executable = se.executable;
    out.user = se.user;
    out.cost = cost;
    InsertTlb(isa::PageNumber(va), se);
    return out;
  }

  void InsertTlb(uint32_t vpn, const ShadowEntry& se) {
    TlbEntry e;
    e.vpn = vpn;
    e.gpn = se.gpn;
    e.frame = memory_->FrameForPage(se.gpn);
    e.writable = se.writable;
    e.readable = se.readable;
    e.executable = se.executable;
    e.user = se.user;
    tlb_->Insert(e);
    ++stats_.tlb_fill;
  }

  std::vector<std::unique_ptr<Root>> roots_;
  // The selected vCPU's active root (mirrors active_per_vcpu_[active_vcpu_]).
  Root* active_ = nullptr;
  // Per-vCPU active address space; sized by ConfigureVcpus (default: one).
  std::vector<Root*> active_per_vcpu_{nullptr};
  uint64_t tick_ = 0;
};

}  // namespace

std::unique_ptr<MemoryVirtualizer> MakeShadowPaging(mem::GuestMemory* memory,
                                                    const CostModel& costs, size_t tlb_entries) {
  return std::make_unique<ShadowPaging>(memory, costs, tlb_entries);
}

}  // namespace hyperion::mmu
