// Nested (two-dimensional) paging.
//
// Models hardware-assisted memory virtualization (EPT/NPT): the guest edits
// its page tables freely and no VM exits are taken for PT maintenance, but a
// TLB miss pays the two-dimensional walk — every guest-PT reference needs a
// nested translation of its own, giving (g+1)·(n+1)−1 memory references for
// g guest levels and n nested levels (8 for 2×2, vs. 2 native).

#include <memory>

#include "src/mmu/virtualizer.h"

namespace hyperion::mmu {

namespace {

class NestedPaging final : public MemoryVirtualizer {
 public:
  NestedPaging(mem::GuestMemory* memory, const CostModel& costs, size_t tlb_entries,
               bool asid_tlb)
      : MemoryVirtualizer(memory, costs, tlb_entries), asid_tlb_(asid_tlb) {}

  std::string_view name() const override { return asid_tlb_ ? "nested+asid" : "nested"; }

  TranslateOutcome Translate(uint32_t va, Access access, isa::PrivMode priv, bool paging,
                             uint32_t ptbr) override {
    if (!paging) {
      return TranslateBare(va, access);
    }
    ++stats_.translations;
    uint32_t vpn = isa::PageNumber(va);
    uint32_t asid = asid_tlb_ ? ptbr : 0;

    const TlbEntry* e = tlb_->Lookup(vpn, asid);
    if (e != nullptr && RightsAllow(access, e->readable, e->writable, e->executable) &&
        (priv != isa::PrivMode::kUser || e->user)) {
      TranslateOutcome out;
      out.gpa = (e->gpn << isa::kPageBits) | isa::VaPageOffset(va);
      out.frame = e->frame;
      out.writable = e->writable;
      out.readable = e->readable;
      out.executable = e->executable;
      out.user = e->user;
      out.cost = costs_.tlb_hit;
      return out;
    }

    // Two-dimensional walk: each of the `steps` guest-PT references costs a
    // nested walk (2 refs) plus itself, and the final GPA needs one more
    // nested walk. steps=2 -> 8 references, steps=1 (superpage) -> 5.
    ++stats_.walks;
    WalkResult wr = WalkGuest(*memory_, ptbr, va, access, priv);
    uint64_t refs = static_cast<uint64_t>(wr.steps) * 3 + 2;
    stats_.walk_steps += refs;
    uint64_t cost = refs * costs_.pt_walk_step;
    if (!wr.ok) {
      TranslateOutcome out;
      out.event = MemEvent::kGuestFault;
      out.fault_cause = wr.fault;
      out.cost = cost;
      ++stats_.guest_faults;
      return out;
    }

    TranslateOutcome out = ResolveGpa(wr.gpa, access, wr.writable, cost + costs_.tlb_fill);
    out.readable = wr.readable;
    out.executable = wr.executable;
    out.user = wr.user;
    if (out.event != MemEvent::kNone || out.is_mmio) {
      return out;
    }

    TlbEntry fill;
    fill.vpn = vpn;
    fill.asid = asid;
    fill.gpn = isa::PageNumber(out.gpa);
    fill.frame = out.frame;
    fill.writable = out.writable;
    fill.readable = wr.readable;
    fill.executable = wr.executable;
    fill.user = wr.user;
    fill.superpage = wr.superpage;
    tlb_->Insert(fill);
    ++stats_.tlb_fill;
    return out;
  }

  uint64_t OnPtbrWrite(uint32_t new_ptbr) override {
    (void)new_ptbr;
    // Address-space switch: with ASID tagging, other spaces' entries survive
    // the switch; untagged TLBs flush wholesale. No VMM involvement either way.
    if (!asid_tlb_) {
      tlb_->FlushAll();
    } else {
      // No entries are dropped, but derived caches (the per-vCPU
      // fast-translation array) are untagged and must not survive the switch.
      tlb_->BumpGeneration();
    }
    ++stats_.root_switches;
    return 0;
  }

 private:
  bool asid_tlb_;
};

}  // namespace

std::unique_ptr<MemoryVirtualizer> MakeNestedPaging(mem::GuestMemory* memory,
                                                    const CostModel& costs, size_t tlb_entries,
                                                    bool asid_tlb) {
  return std::make_unique<NestedPaging>(memory, costs, tlb_entries, asid_tlb);
}

}  // namespace hyperion::mmu
