#include "src/mmu/walker.h"

namespace hyperion::mmu {

using isa::Pte;
using isa::TrapCause;

isa::TrapCause FaultCauseFor(Access access) {
  switch (access) {
    case Access::kFetch:
      return TrapCause::kInstrPageFault;
    case Access::kLoad:
      return TrapCause::kLoadPageFault;
    case Access::kStore:
      return TrapCause::kStorePageFault;
  }
  return TrapCause::kLoadPageFault;
}

namespace {

bool PermissionsAllow(uint32_t pte, Access access, isa::PrivMode priv) {
  if (priv == isa::PrivMode::kUser && !(pte & Pte::kUser)) {
    return false;
  }
  switch (access) {
    case Access::kFetch:
      return pte & Pte::kExec;
    case Access::kLoad:
      return pte & Pte::kRead;
    case Access::kStore:
      return pte & Pte::kWrite;
  }
  return false;
}

}  // namespace

WalkResult WalkGuest(mem::GuestMemory& memory, uint32_t ptbr_page, uint32_t va, Access access,
                     isa::PrivMode priv) {
  WalkResult result;
  result.fault = FaultCauseFor(access);

  // Level 1.
  uint32_t l1_gpa = (ptbr_page << isa::kPageBits) + isa::VaL1Index(va) * 4;
  result.l1_pte_gpa = l1_gpa;
  result.steps = 1;
  auto l1 = memory.ReadU32(l1_gpa);
  if (!l1.ok()) {
    return result;  // PT located outside RAM: guest fault
  }
  uint32_t l1_pte = *l1;
  if (!Pte::IsValid(l1_pte)) {
    return result;
  }

  uint32_t leaf_pte;
  uint32_t leaf_gpa_of_pte;
  bool superpage = Pte::IsLeaf(l1_pte);
  if (superpage) {
    // 4 MiB superpage: PPN must be superpage-aligned.
    if (Pte::Ppn(l1_pte) & (isa::kPtEntries - 1)) {
      return result;  // misaligned superpage is a fault
    }
    leaf_pte = l1_pte;
    leaf_gpa_of_pte = l1_gpa;
  } else {
    // Level 2.
    uint32_t l2_gpa = (Pte::Ppn(l1_pte) << isa::kPageBits) + isa::VaL2Index(va) * 4;
    result.steps = 2;
    auto l2 = memory.ReadU32(l2_gpa);
    if (!l2.ok()) {
      return result;
    }
    leaf_pte = *l2;
    leaf_gpa_of_pte = l2_gpa;
    if (!Pte::IsValid(leaf_pte) || !Pte::IsLeaf(leaf_pte)) {
      return result;  // invalid, or a pointer where a leaf must be
    }
  }

  if (!PermissionsAllow(leaf_pte, access, priv)) {
    return result;
  }

  // Set accessed/dirty bits the way walker hardware would. The write-back
  // goes through GuestMemory so the PT page is marked dirty for migration.
  uint32_t updated = leaf_pte | Pte::kAccessed;
  if (access == Access::kStore) {
    updated |= Pte::kDirty;
  }
  if (updated != leaf_pte) {
    // The PTE was readable a moment ago; a failed write-back means the
    // backing page vanished mid-walk, which we surface as a fault.
    if (!memory.WriteU32(leaf_gpa_of_pte, updated).ok()) {
      return result;
    }
  }

  uint32_t offset_bits = superpage ? isa::kSuperPageBits : isa::kPageBits;
  uint32_t mask = (1u << offset_bits) - 1;
  result.ok = true;
  result.gpa = (Pte::Ppn(leaf_pte) << isa::kPageBits) | (va & mask);
  // Writable only if W is set *and* D is already set: the first store still
  // takes the store path above, later stores can use a write-enabled TLB
  // entry without losing the D-bit update.
  result.writable = (leaf_pte & Pte::kWrite) && (updated & Pte::kDirty);
  result.readable = (leaf_pte & Pte::kRead) != 0;
  result.executable = (leaf_pte & Pte::kExec) != 0;
  result.user = (leaf_pte & Pte::kUser) != 0;
  result.superpage = superpage;
  result.leaf_pte_gpa = leaf_gpa_of_pte;
  return result;
}

ProbeResult ProbeGuest(const mem::GuestMemory& memory, uint32_t ptbr_page, uint32_t va) {
  ProbeResult result;

  uint32_t l1_gpa = (ptbr_page << isa::kPageBits) + isa::VaL1Index(va) * 4;
  auto l1 = memory.ReadU32(l1_gpa);
  if (!l1.ok() || !Pte::IsValid(*l1)) {
    return result;
  }

  uint32_t leaf_pte;
  bool superpage = Pte::IsLeaf(*l1);
  if (superpage) {
    if (Pte::Ppn(*l1) & (isa::kPtEntries - 1)) {
      return result;  // misaligned superpage
    }
    leaf_pte = *l1;
  } else {
    uint32_t l2_gpa = (Pte::Ppn(*l1) << isa::kPageBits) + isa::VaL2Index(va) * 4;
    auto l2 = memory.ReadU32(l2_gpa);
    if (!l2.ok() || !Pte::IsValid(*l2) || !Pte::IsLeaf(*l2)) {
      return result;
    }
    leaf_pte = *l2;
  }

  uint32_t offset_bits = superpage ? isa::kSuperPageBits : isa::kPageBits;
  uint32_t mask = (1u << offset_bits) - 1;
  result.valid = true;
  result.gpa = (Pte::Ppn(leaf_pte) << isa::kPageBits) | (va & mask);
  result.leaf_pte = leaf_pte;
  result.superpage = superpage;
  return result;
}

}  // namespace hyperion::mmu
