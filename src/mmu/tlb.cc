#include "src/mmu/tlb.h"

#include <cassert>

namespace hyperion::mmu {

Tlb::Tlb(size_t entries) {
  assert(entries >= kWays && (entries & (entries - 1)) == 0);
  sets_ = entries / kWays;
  entries_.resize(entries);
}

const TlbEntry* Tlb::Lookup(uint32_t vpn, uint32_t asid) {
  TlbEntry* set = &entries_[SetOf(vpn) * kWays];
  for (size_t w = 0; w < kWays; ++w) {
    if (set[w].valid && set[w].vpn == vpn && set[w].asid == asid) {
      set[w].lru = ++tick_;
      ++stats_.hits;
      return &set[w];
    }
  }
  ++stats_.misses;
  return nullptr;
}

void Tlb::Insert(const TlbEntry& entry) {
  TlbEntry* set = &entries_[SetOf(entry.vpn) * kWays];
  size_t victim = 0;
  for (size_t w = 0; w < kWays; ++w) {
    if (!set[w].valid) {
      victim = w;
      break;
    }
    if (set[w].vpn == entry.vpn && set[w].asid == entry.asid) {
      victim = w;  // re-insert over the stale copy
      break;
    }
    if (set[w].lru < set[victim].lru) {
      victim = w;
    }
  }
  set[victim] = entry;
  set[victim].valid = true;
  set[victim].lru = ++tick_;
}

void Tlb::FlushAll() {
  for (auto& e : entries_) {
    e.valid = false;
  }
  ++stats_.flushes;
  ++generation_;
}

void Tlb::FlushPage(uint32_t vpn) {
  TlbEntry* set = &entries_[SetOf(vpn) * kWays];
  for (size_t w = 0; w < kWays; ++w) {
    if (set[w].valid && set[w].vpn == vpn) {
      set[w].valid = false;
    }
  }
  ++generation_;
}

void Tlb::FlushAsid(uint32_t asid) {
  for (auto& e : entries_) {
    if (e.valid && e.asid == asid) {
      e.valid = false;
    }
  }
  ++generation_;
}

void Tlb::FlushGpn(uint32_t gpn) {
  for (auto& e : entries_) {
    if (e.valid && e.gpn == gpn) {
      e.valid = false;
    }
  }
  ++generation_;
}

}  // namespace hyperion::mmu
