// Memory virtualization strategies.
//
// A MemoryVirtualizer turns guest virtual addresses into host frames. Two
// production strategies are provided, reproducing the classic trade-off:
//
//  * ShadowPaging — the VMM maintains shadow translations built by software
//    walks. Guest page-table pages are write-protected, so PT updates trap
//    (expensive PT churn) but steady-state misses cost a short walk.
//  * NestedPaging — hardware-style two-dimensional walks. PT updates are
//    free, but every TLB miss pays the (g+1)·(n+1)−1 step 2-D walk.
//
// BarePassthrough serves guests running with paging disabled.
//
// The virtualizer also folds in host-side page states: write-protected pages
// (shadow PT interception), COW-shared pages (KSM), and absent pages
// (balloon, post-copy migration). These surface as MemEvents that the VMM
// run loop handles.

#ifndef SRC_MMU_VIRTUALIZER_H_
#define SRC_MMU_VIRTUALIZER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/isa/hv32.h"
#include "src/mem/guest_memory.h"
#include "src/mmu/tlb.h"
#include "src/mmu/walker.h"
#include "src/util/cost_model.h"

namespace hyperion::mmu {

enum class MemEvent : uint8_t {
  kNone = 0,       // translation succeeded
  kGuestFault,     // inject a page fault into the guest
  kPtWriteTrap,    // store hit a write-protected guest PT page (shadow)
  kCowBreak,       // store hit a KSM-shared page
  kMissingPage,    // access hit an absent page (balloon / post-copy)
};

struct TranslateOutcome {
  MemEvent event = MemEvent::kNone;

  // kNone:
  uint32_t gpa = 0;
  mem::HostFrame frame = mem::kInvalidFrame;  // kInvalidFrame when is_mmio
  bool is_mmio = false;
  bool writable = false;    // whether this outcome came via a write-enabled path
  bool readable = false;    // leaf R permission of the mapping
  bool executable = false;  // leaf X permission of the mapping
  bool user = false;        // leaf U permission of the mapping

  // kGuestFault:
  isa::TrapCause fault_cause = isa::TrapCause::kLoadPageFault;

  // All events: cycles to charge for this translation.
  uint64_t cost = 0;
};

struct MmuStats {
  uint64_t translations = 0;
  uint64_t tlb_fill = 0;
  uint64_t walks = 0;
  uint64_t walk_steps = 0;      // charged PT memory references (2-D inflated)
  uint64_t hidden_faults = 0;   // shadow misses that modeled a VM exit
  uint64_t shadow_syncs = 0;    // shadow entries constructed
  uint64_t root_builds = 0;
  uint64_t root_switches = 0;
  uint64_t pt_write_traps = 0;
  uint64_t guest_faults = 0;
};

class MemoryVirtualizer {
 public:
  explicit MemoryVirtualizer(mem::GuestMemory* memory,
                             const CostModel& costs = CostModel::Default(),
                             size_t tlb_entries = 256)
      : memory_(memory), costs_(costs), tlb_entries_(tlb_entries) {
    tlbs_.emplace_back(tlb_entries);
    tlb_ = &tlbs_.front();
  }
  virtual ~MemoryVirtualizer() = default;

  MemoryVirtualizer(const MemoryVirtualizer&) = delete;
  MemoryVirtualizer& operator=(const MemoryVirtualizer&) = delete;

  virtual std::string_view name() const = 0;

  // Translates `va` for `access` under the given paging state.
  virtual TranslateOutcome Translate(uint32_t va, Access access, isa::PrivMode priv, bool paging,
                                     uint32_t ptbr) = 0;

  // Guest executed sfence: vpn-targeted when va != 0, otherwise full flush.
  virtual void OnSfence(uint32_t va);

  // Guest wrote the PTBR CSR (address-space switch).
  virtual uint64_t OnPtbrWrite(uint32_t new_ptbr) = 0;

  // Guest toggled paging in STATUS.
  virtual void OnPagingToggle();

  // The VMM emulated a trapped store of `size` bytes at guest-physical `gpa`
  // (shadow paging PT interception).
  virtual void OnPtWriteEmulated(uint32_t gpa, uint32_t size);

  // Backing of guest page `gpn` changed under the guest (KSM merge/unmerge,
  // balloon, migration page arrival): drop every cached translation to it.
  virtual void InvalidateGpn(uint32_t gpn);

  virtual void FlushAll() {
    for (Tlb& t : tlbs_) {
      t.FlushAll();
    }
  }

  // --- SMP -------------------------------------------------------------------
  //
  // Each vCPU owns a private software TLB (and fast-translation array keyed
  // to its generation), mirroring per-core hardware TLBs. Guest-local
  // maintenance (sfence, paging toggle, ptbr write) touches only the active
  // vCPU's TLB — cross-vCPU coherence is the *guest's* job, via the IPI
  // shootdown protocol. VMM-side page events (COW, KSM, balloon, migration,
  // shadow PT invalidation) flush every vCPU's TLB: the VMM must never rely
  // on guest shootdowns for its own consistency.

  // Sizes the per-vCPU TLB array. Called once at VM init, before any
  // translation; existing cached state is discarded.
  virtual void ConfigureVcpus(uint32_t num_vcpus);

  // Selects which vCPU's TLB subsequent Translate/OnSfence/... calls use.
  // Called at slice entry (and by audits); cheap pointer swap.
  virtual void SetActiveVcpu(uint32_t vcpu);

  uint32_t active_vcpu() const { return active_vcpu_; }
  uint32_t num_tlbs() const { return static_cast<uint32_t>(tlbs_.size()); }

  // Invariant audit (debug; see src/verify/audit.h): appends a human-readable
  // line to `violations` for every cached translation that disagrees with the
  // authoritative guest/host state under the current paging mode. The base
  // implementation checks host-side TLB invariants that hold for every
  // strategy: no entry maps an absent page or a stale frame, writable entries
  // never cover KSM-shared or write-protected pages, and with paging off all
  // entries are identity. Strategies with more internal state (shadow roots)
  // extend it. Must not mutate any state. `vcpu` selects which vCPU's TLB
  // (and, under shadow paging, active root) is checked; `paging`/`ptbr` must
  // come from that same vCPU's CSRs.
  virtual void AuditInvariants(bool paging, uint32_t ptbr,
                               std::vector<std::string>* violations,
                               uint32_t vcpu = 0) const;

  mem::GuestMemory& memory() { return *memory_; }
  Tlb& tlb() { return *tlb_; }
  Tlb& tlb(uint32_t vcpu) { return tlbs_[vcpu]; }
  const Tlb& tlb(uint32_t vcpu) const { return tlbs_[vcpu]; }
  const MmuStats& stats() const { return stats_; }
  void ResetStats() {
    stats_ = MmuStats{};
    for (Tlb& t : tlbs_) {
      t.ResetStats();
    }
  }

 protected:
  // Final host-side checks once the guest-physical address is known. Applies
  // MMIO detection, presence, COW and write-protection rules.
  TranslateOutcome ResolveGpa(uint32_t gpa, Access access, bool pte_writable, uint64_t cost);

  // Identity translation used while the guest runs with paging disabled.
  TranslateOutcome TranslateBare(uint32_t va, Access access);

  mem::GuestMemory* memory_;
  const CostModel& costs_;
  // Per-vCPU TLBs (deque: growth must not move the active pointer). `tlb_`
  // always points at the active vCPU's TLB.
  std::deque<Tlb> tlbs_;
  Tlb* tlb_;
  uint32_t active_vcpu_ = 0;
  size_t tlb_entries_;
  MmuStats stats_;
};

// Paging-off operation: gva == gpa. Also used as the fallback path by the
// other strategies when the guest has not yet enabled paging.
class BarePassthrough final : public MemoryVirtualizer {
 public:
  using MemoryVirtualizer::MemoryVirtualizer;

  std::string_view name() const override { return "bare"; }
  TranslateOutcome Translate(uint32_t va, Access access, isa::PrivMode priv, bool paging,
                             uint32_t ptbr) override;
  uint64_t OnPtbrWrite(uint32_t new_ptbr) override;
};

// Factory helpers.
std::unique_ptr<MemoryVirtualizer> MakeShadowPaging(mem::GuestMemory* memory,
                                                    const CostModel& costs = CostModel::Default(),
                                                    size_t tlb_entries = 256);
// `asid_tlb` enables address-space tags in the TLB, so PTBR switches keep
// other spaces' translations warm (the ASID/PCID ablation of experiment F1c).
std::unique_ptr<MemoryVirtualizer> MakeNestedPaging(mem::GuestMemory* memory,
                                                    const CostModel& costs = CostModel::Default(),
                                                    size_t tlb_entries = 256,
                                                    bool asid_tlb = false);
std::unique_ptr<MemoryVirtualizer> MakeBarePassthrough(
    mem::GuestMemory* memory, const CostModel& costs = CostModel::Default(),
    size_t tlb_entries = 256);

enum class PagingMode : uint8_t { kShadow = 0, kNested = 1, kNestedAsid = 2 };

std::unique_ptr<MemoryVirtualizer> MakeVirtualizer(PagingMode mode, mem::GuestMemory* memory,
                                                   const CostModel& costs = CostModel::Default(),
                                                   size_t tlb_entries = 256);

}  // namespace hyperion::mmu

#endif  // SRC_MMU_VIRTUALIZER_H_
