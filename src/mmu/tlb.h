// Software TLB: a set-associative cache of virtual-to-host translations.
//
// Both memory virtualizers fill this TLB; the interpreter and DBT engines
// consult it on every memory access, so its hit path is branch-light.

#ifndef SRC_MMU_TLB_H_
#define SRC_MMU_TLB_H_

#include <cstdint>
#include <vector>

#include "src/mem/frame_pool.h"
#include "src/mmu/walker.h"

namespace hyperion::mmu {

// Entries carry the leaf R/W/X permissions, and every hit path must check
// the bit matching the access kind: the guest walker enforces permissions
// per access, so a cached translation filled by a load must not satisfy a
// fetch from a non-executable page (or vice versa).
struct TlbEntry {
  uint32_t vpn = 0;            // virtual page number (tag)
  uint32_t asid = 0;           // address-space tag (0 when untagged)
  uint32_t gpn = 0;            // guest-physical page number
  mem::HostFrame frame = mem::kInvalidFrame;
  bool valid = false;
  bool readable = false;       // load fast path allowed
  bool writable = false;       // store fast path allowed
  bool executable = false;     // fetch fast path allowed
  bool user = false;           // user-mode access allowed
  bool superpage = false;      // entry derived from a 4 MiB mapping
  uint64_t lru = 0;
};

// True when cached rights {R, W, X} cover `access`.
inline bool RightsAllow(Access access, bool readable, bool writable, bool executable) {
  switch (access) {
    case Access::kFetch:
      return executable;
    case Access::kLoad:
      return readable;
    case Access::kStore:
      return writable;
  }
  return false;
}

struct TlbStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t flushes = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class Tlb {
 public:
  // `entries` must be a power of two; associativity fixed at 4 ways.
  explicit Tlb(size_t entries = 256);

  // Looks up `vpn` under address-space tag `asid`; returns nullptr on miss.
  // Hit bumps LRU and stats. Untagged callers pass asid 0 everywhere.
  const TlbEntry* Lookup(uint32_t vpn, uint32_t asid = 0);

  // Installs a translation, evicting the LRU way of the set.
  void Insert(const TlbEntry& entry);

  void FlushAll();
  void FlushPage(uint32_t vpn);
  // Drops every entry carrying address-space tag `asid`.
  void FlushAsid(uint32_t asid);
  // Drops every entry translating to guest page `gpn` (sharing/WP changes).
  void FlushGpn(uint32_t gpn);

  // Monotonic flush epoch: bumped by every Flush* call (and explicitly via
  // BumpGeneration for coherence events that invalidate derived state without
  // dropping TLB entries, e.g. ASID-tagged address-space switches). Derived
  // caches — the per-vCPU fast-translation array in cpu::VcpuContext — tag
  // entries with this value and treat any mismatch as invalid, which makes
  // them conservatively coherent with every TLB shootdown. Starts at 1 so a
  // zero tag never validates.
  uint64_t generation() const { return generation_; }
  void BumpGeneration() { ++generation_; }

  // Accounts a hit served by a generation-validated derived cache, keeping
  // hit-rate statistics truthful when the fast path bypasses Lookup().
  void CreditFastHit() { ++stats_.hits; }

  const TlbStats& stats() const { return stats_; }
  void ResetStats() { stats_ = TlbStats{}; }
  size_t num_entries() const { return sets_ * kWays; }

  // Read-only visit of every valid entry, in no particular order. Used by the
  // invariant auditors (src/verify); does not touch LRU or stats.
  template <typename Fn>
  void ForEachValid(Fn&& fn) const {
    for (const TlbEntry& e : entries_) {
      if (e.valid) {
        fn(e);
      }
    }
  }

 private:
  static constexpr size_t kWays = 4;

  size_t SetOf(uint32_t vpn) const { return vpn & (sets_ - 1); }

  size_t sets_;
  std::vector<TlbEntry> entries_;  // sets_ * kWays, set-major
  TlbStats stats_;
  uint64_t tick_ = 0;
  uint64_t generation_ = 1;
};

}  // namespace hyperion::mmu

#endif  // SRC_MMU_TLB_H_
