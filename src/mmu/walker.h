// Guest page-table walker for HV32 two-level paging.
//
// The walker reads page tables that live in *guest-physical* memory. It is
// used directly by the nested-paging virtualizer (modeling the hardware 2-D
// walk) and by the shadow-paging virtualizer (modeling the VMM's software
// walk when it constructs shadow entries).

#ifndef SRC_MMU_WALKER_H_
#define SRC_MMU_WALKER_H_

#include <cstdint>

#include "src/isa/hv32.h"
#include "src/mem/guest_memory.h"

namespace hyperion::mmu {

enum class Access : uint8_t { kFetch = 0, kLoad = 1, kStore = 2 };

// Outcome of a guest page walk.
struct WalkResult {
  bool ok = false;
  isa::TrapCause fault = isa::TrapCause::kLoadPageFault;  // when !ok

  uint32_t gpa = 0;           // translated guest-physical address
  bool readable = false;      // leaf R permission
  bool writable = false;      // leaf W permission (after A/D handling)
  bool executable = false;    // leaf X permission
  bool user = false;          // leaf U permission
  bool superpage = false;     // mapped by a 4 MiB L1 leaf
  uint32_t leaf_pte_gpa = 0;  // where the leaf PTE lives (shadow WP tracking)
  uint32_t l1_pte_gpa = 0;    // where the L1 entry lives
  int steps = 0;              // page-table memory references performed
};

// Walks the guest page table rooted at page `ptbr_page` for `va`.
//
// Permission model: user mode requires the U bit on the leaf; supervisor mode
// may access any valid mapping. kFetch requires X, kLoad requires R, kStore
// requires W. On success the walker sets the A bit (and D on stores) in the
// guest PTE, exactly as page-walk hardware with A/D assistance would, which
// also marks the PT page dirty for migration purposes.
WalkResult WalkGuest(mem::GuestMemory& memory, uint32_t ptbr_page, uint32_t va, Access access,
                     isa::PrivMode priv);

// Maps an access type to its page-fault trap cause.
isa::TrapCause FaultCauseFor(Access access);

// Side-effect-free variant of the walk used by the invariant auditors: reads
// the tables without setting A/D bits and without applying a permission
// check, and reports the raw leaf PTE so the caller can compare cached
// translations against the authoritative guest state.
struct ProbeResult {
  bool valid = false;     // reached a structurally valid leaf
  uint32_t gpa = 0;       // translation of `va` (when valid)
  uint32_t leaf_pte = 0;  // raw leaf PTE bits (when valid)
  bool superpage = false;
};

ProbeResult ProbeGuest(const mem::GuestMemory& memory, uint32_t ptbr_page, uint32_t va);

}  // namespace hyperion::mmu

#endif  // SRC_MMU_WALKER_H_
