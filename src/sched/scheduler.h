// vCPU scheduling over simulated pCPUs.
//
// The host run loop asks the scheduler which entity (vCPU) to run on a free
// pCPU and reports consumed cycles back. Two policies are provided:
//
//  * CreditScheduler — Xen-style proportional share: each accounting period
//    distributes credits by weight; entities with credit remaining (UNDER)
//    run before those that exhausted it (OVER); per-entity caps bound
//    consumption to a fraction of one pCPU.
//  * RoundRobinScheduler — the fairness-oblivious baseline.

#ifndef SRC_SCHED_SCHEDULER_H_
#define SRC_SCHED_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string_view>
#include <vector>

#include "src/util/sim_clock.h"
#include "src/util/status.h"

namespace hyperion::sched {

using EntityId = uint32_t;
inline constexpr EntityId kIdle = UINT32_MAX;

struct EntityConfig {
  uint32_t weight = 256;   // proportional share (Xen default)
  uint32_t cap_percent = 0;  // max % of one pCPU per period; 0 = uncapped
  // Co-scheduling group, 0 = none. Once one member of a gang is dispatched
  // in a round, its runnable gang-mates jump the pick order for the round's
  // remaining pCPUs (lowest entity id first). The host gangs the vCPUs of
  // every SMP guest so siblings run the same rounds: a descheduled MCS-lock
  // holder otherwise leaves its siblings spinning for whole timeslices
  // (lock-holder preemption), and IPI round-trips stretch across rounds.
  uint32_t gang = 0;
};

struct EntityStats {
  uint64_t cpu_cycles = 0;   // total cycles granted
  uint64_t runs = 0;         // times picked
  uint64_t preemptions = 0;  // budget-exhausted slices
  SimTime total_wait = 0;    // runnable-to-run latency accumulated
};

class Scheduler {
 public:
  // Host-imposed dispatch constraint for batched picks: entities for which
  // the predicate returns false are skipped (they stay queued, in order). An
  // empty function means "everything is eligible".
  using EligibleFn = std::function<bool(EntityId)>;

  virtual ~Scheduler() = default;
  virtual std::string_view name() const = 0;

  virtual Status AddEntity(EntityId id, EntityConfig config) = 0;
  virtual Status RemoveEntity(EntityId id) = 0;

  // Called by the host at the top of every dispatch round. Schedulers that
  // co-schedule gangs reset their per-round gang state here.
  virtual void BeginRound() {}

  // Marks an entity runnable/blocked. `now` timestamps wait-latency tracking.
  virtual void SetRunnable(EntityId id, bool runnable, SimTime now) = 0;

  // Picks the next entity to run at `now` that satisfies `eligible`, or
  // kIdle. An entity whose last slice ends after `now` is not eligible (a
  // vCPU runs on one pCPU at a time, even though the host executes
  // overlapping slices sequentially). The host's round dispatcher calls this
  // once per free pCPU, building a batch; accounting for the whole batch is
  // deferred to the round barrier (Account).
  virtual EntityId PickNext(SimTime now, const EligibleFn& eligible) = 0;

  EntityId PickNext(SimTime now) { return PickNext(now, EligibleFn{}); }

  // Earliest time at which some queued-but-ineligible entity becomes
  // runnable, or SIZE_MAX when none is waiting on time.
  virtual SimTime NextEligibleTime(SimTime now) const = 0;

  // Reports that `id` consumed `cycles`; called after every slice. `still_runnable`
  // tells the scheduler whether to requeue it.
  virtual void Account(EntityId id, uint64_t cycles, bool still_runnable, SimTime now) = 0;

  // Nominal timeslice in cycles.
  virtual uint64_t timeslice() const { return 1'000'000; }  // 1 ms

  virtual const std::map<EntityId, EntityStats>& stats() const = 0;
};

// `boost` enables the BOOST priority class: a vCPU waking from sleep with
// credit remaining preempts the pick order once, which keeps I/O-bound and
// interactive vCPUs responsive next to CPU hogs (Xen's credit-scheduler
// BOOST). Disable for the ablation baseline.
std::unique_ptr<Scheduler> MakeCreditScheduler(uint32_t num_pcpus,
                                               uint64_t period_cycles = 30'000'000,
                                               bool boost = true);
std::unique_ptr<Scheduler> MakeRoundRobinScheduler();

enum class SchedPolicy : uint8_t {
  kCredit = 0,
  kRoundRobin = 1,
  kCreditNoBoost = 2,  // ablation: credit without the BOOST wake priority
};

std::unique_ptr<Scheduler> MakeScheduler(SchedPolicy policy, uint32_t num_pcpus);

}  // namespace hyperion::sched

#endif  // SRC_SCHED_SCHEDULER_H_
