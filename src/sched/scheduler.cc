#include "src/sched/scheduler.h"

#include <algorithm>
#include <deque>

namespace hyperion::sched {

namespace {

// ---------------------------------------------------------------------------
// Credit scheduler
// ---------------------------------------------------------------------------

class CreditScheduler final : public Scheduler {
 public:
  CreditScheduler(uint32_t num_pcpus, uint64_t period_cycles, bool boost)
      : num_pcpus_(num_pcpus), period_(period_cycles), boost_enabled_(boost) {}

  std::string_view name() const override { return "credit"; }

  Status AddEntity(EntityId id, EntityConfig config) override {
    if (entities_.count(id)) {
      return AlreadyExistsError("entity already registered");
    }
    if (config.weight == 0) {
      return InvalidArgumentError("weight must be positive");
    }
    Entity e;
    e.config = config;
    entities_[id] = e;
    RefillCredits();
    return OkStatus();
  }

  Status RemoveEntity(EntityId id) override {
    if (entities_.erase(id) == 0) {
      return NotFoundError("unknown entity");
    }
    std::erase(run_queue_, id);
    RefillCredits();
    return OkStatus();
  }

  void SetRunnable(EntityId id, bool runnable, SimTime now) override {
    auto it = entities_.find(id);
    if (it == entities_.end()) {
      return;
    }
    Entity& e = it->second;
    if (runnable && !e.runnable) {
      e.runnable = true;
      e.runnable_since = now;
      // A wake with credit left earns one BOOST pick (I/O responsiveness).
      e.boosted = boost_enabled_ && e.credits > 0;
      Enqueue(id);
    } else if (!runnable && e.runnable) {
      e.runnable = false;
      std::erase(run_queue_, id);
    }
  }

  void BeginRound() override { round_gangs_.clear(); }

  EntityId PickNext(SimTime now, const EligibleFn& eligible) override {
    MaybeNewPeriod(now);
    // Gang-mates of an already-dispatched gang jump every class: the point of
    // co-scheduling is that siblings share the round, credit state be damned
    // (caps still hold). Then BOOST (fresh wakers), UNDER, OVER; FIFO within
    // class.
    EntityId pick = ScanGangMates(now, eligible);
    if (pick == kIdle) {
      pick = ScanBoosted(now, eligible);
    }
    if (pick == kIdle) {
      pick = ScanQueue(/*want_under=*/true, now, eligible);
    }
    if (pick == kIdle) {
      pick = ScanQueue(/*want_under=*/false, now, eligible);
    }
    if (pick == kIdle) {
      return kIdle;
    }
    std::erase(run_queue_, pick);
    Entity& e = entities_[pick];
    e.boosted = false;  // boost is consumed by the pick
    if (e.config.gang != 0) {
      round_gangs_.push_back(e.config.gang);
    }
    stats_[pick].total_wait += now - e.runnable_since;
    ++stats_[pick].runs;
    return pick;
  }

  void Account(EntityId id, uint64_t cycles, bool still_runnable, SimTime now) override {
    auto it = entities_.find(id);
    if (it == entities_.end()) {
      return;
    }
    Entity& e = it->second;
    e.credits -= static_cast<int64_t>(cycles);
    e.period_usage += cycles;
    stats_[id].cpu_cycles += cycles;
    e.runnable = still_runnable;
    e.not_before = now;  // the slice occupied simulated time up to `now`
    if (still_runnable) {
      e.runnable_since = now;
      Enqueue(id);
    } else {
      std::erase(run_queue_, id);
    }
  }

  SimTime NextEligibleTime(SimTime now) const override {
    SimTime next = SIZE_MAX;
    for (EntityId id : run_queue_) {
      const Entity& e = entities_.at(id);
      if (e.not_before > now) {
        next = std::min(next, e.not_before);
      }
    }
    return next;
  }

  const std::map<EntityId, EntityStats>& stats() const override { return stats_; }

 private:
  struct Entity {
    EntityConfig config;
    int64_t credits = 0;
    uint64_t period_usage = 0;  // cycles consumed this period (cap enforcement)
    bool runnable = false;
    bool boosted = false;
    SimTime runnable_since = 0;
    SimTime not_before = 0;  // end of the last granted slice
  };

  bool CapExceeded(const Entity& e) const {
    if (e.config.cap_percent == 0) {
      return false;
    }
    uint64_t cap_cycles = period_ * e.config.cap_percent / 100;
    return e.period_usage >= cap_cycles;
  }

  EntityId ScanGangMates(SimTime now, const EligibleFn& eligible) {
    if (round_gangs_.empty()) {
      return kIdle;
    }
    // entities_ is id-ordered, so a VM's gang-mates dispatch in vCPU-index
    // order — one of the fixed orders the bit-identity oracle relies on.
    for (const auto& [id, e] : entities_) {
      if (e.config.gang == 0 || !e.runnable || CapExceeded(e) || e.not_before > now) {
        continue;
      }
      // Only queued entities are candidates: an entity picked earlier this
      // round is already out of the queue (still `runnable` until Account),
      // and handing it a second pCPU would starve its waiting gang-mates.
      if (std::find(run_queue_.begin(), run_queue_.end(), id) == run_queue_.end()) {
        continue;
      }
      if (std::find(round_gangs_.begin(), round_gangs_.end(), e.config.gang) ==
          round_gangs_.end()) {
        continue;
      }
      if (eligible && !eligible(id)) {
        continue;
      }
      return id;
    }
    return kIdle;
  }

  EntityId ScanBoosted(SimTime now, const EligibleFn& eligible) {
    for (EntityId id : run_queue_) {
      const Entity& e = entities_[id];
      if (e.boosted && !CapExceeded(e) && e.not_before <= now &&
          (!eligible || eligible(id))) {
        return id;
      }
    }
    return kIdle;
  }

  EntityId ScanQueue(bool want_under, SimTime now, const EligibleFn& eligible) {
    for (EntityId id : run_queue_) {
      const Entity& e = entities_[id];
      if (CapExceeded(e) || e.not_before > now) {
        continue;  // capped, or its previous slice still occupies a pCPU
      }
      if (eligible && !eligible(id)) {
        continue;  // vetoed by the host's dispatch constraint
      }
      bool under = e.credits > 0;
      if (under == want_under) {
        return id;
      }
    }
    return kIdle;
  }

  void Enqueue(EntityId id) {
    if (std::find(run_queue_.begin(), run_queue_.end(), id) == run_queue_.end()) {
      run_queue_.push_back(id);
    }
  }

  void MaybeNewPeriod(SimTime now) {
    if (now < period_start_ + period_) {
      return;
    }
    period_start_ = now - (now - period_start_) % period_;
    RefillCredits();
    for (auto& [id, e] : entities_) {
      e.period_usage = 0;
    }
  }

  void RefillCredits() {
    uint64_t total_weight = 0;
    for (const auto& [id, e] : entities_) {
      total_weight += e.config.weight;
    }
    if (total_weight == 0) {
      return;
    }
    // Each period hands out period_ * num_pcpus_ cycles of capacity,
    // proportionally to weight. Credits are reset (not accumulated) so an
    // idle entity cannot hoard unbounded credit (Xen clamps similarly).
    uint64_t capacity = period_ * num_pcpus_;
    for (auto& [id, e] : entities_) {
      e.credits = static_cast<int64_t>(capacity * e.config.weight / total_weight);
    }
  }

  uint32_t num_pcpus_;
  uint64_t period_;
  bool boost_enabled_;
  SimTime period_start_ = 0;
  std::map<EntityId, Entity> entities_;
  std::deque<EntityId> run_queue_;
  std::vector<uint32_t> round_gangs_;  // gangs dispatched this round
  std::map<EntityId, EntityStats> stats_;
};

// ---------------------------------------------------------------------------
// Round-robin baseline
// ---------------------------------------------------------------------------

class RoundRobinScheduler final : public Scheduler {
 public:
  std::string_view name() const override { return "round-robin"; }

  Status AddEntity(EntityId id, EntityConfig config) override {
    (void)config;  // weights ignored by design
    if (known_.count(id)) {
      return AlreadyExistsError("entity already registered");
    }
    known_[id] = Entity{};
    return OkStatus();
  }

  Status RemoveEntity(EntityId id) override {
    if (known_.erase(id) == 0) {
      return NotFoundError("unknown entity");
    }
    std::erase(queue_, id);
    return OkStatus();
  }

  void SetRunnable(EntityId id, bool runnable, SimTime now) override {
    auto it = known_.find(id);
    if (it == known_.end()) {
      return;
    }
    if (runnable && !it->second.runnable) {
      it->second.runnable = true;
      it->second.runnable_since = now;
      queue_.push_back(id);
    } else if (!runnable && it->second.runnable) {
      it->second.runnable = false;
      std::erase(queue_, id);
    }
  }

  EntityId PickNext(SimTime now, const EligibleFn& eligible) override {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (eligible && !eligible(*it)) {
        continue;
      }
      if (known_[*it].not_before <= now) {
        EntityId id = *it;
        queue_.erase(it);
        stats_[id].total_wait += now - known_[id].runnable_since;
        ++stats_[id].runs;
        return id;
      }
    }
    return kIdle;
  }

  SimTime NextEligibleTime(SimTime now) const override {
    SimTime next = SIZE_MAX;
    for (EntityId id : queue_) {
      SimTime nb = known_.at(id).not_before;
      if (nb > now) {
        next = std::min(next, nb);
      }
    }
    return next;
  }

  void Account(EntityId id, uint64_t cycles, bool still_runnable, SimTime now) override {
    stats_[id].cpu_cycles += cycles;
    auto it = known_.find(id);
    if (it == known_.end()) {
      return;
    }
    it->second.runnable = still_runnable;
    it->second.not_before = now;
    if (still_runnable) {
      it->second.runnable_since = now;
      if (std::find(queue_.begin(), queue_.end(), id) == queue_.end()) {
        queue_.push_back(id);
      }
    } else {
      std::erase(queue_, id);
    }
  }

  const std::map<EntityId, EntityStats>& stats() const override { return stats_; }

 private:
  struct Entity {
    bool runnable = false;
    SimTime runnable_since = 0;
    SimTime not_before = 0;
  };
  std::map<EntityId, Entity> known_;
  std::deque<EntityId> queue_;
  std::map<EntityId, EntityStats> stats_;
};

}  // namespace

std::unique_ptr<Scheduler> MakeCreditScheduler(uint32_t num_pcpus, uint64_t period_cycles,
                                               bool boost) {
  return std::make_unique<CreditScheduler>(num_pcpus, period_cycles, boost);
}

std::unique_ptr<Scheduler> MakeRoundRobinScheduler() {
  return std::make_unique<RoundRobinScheduler>();
}

std::unique_ptr<Scheduler> MakeScheduler(SchedPolicy policy, uint32_t num_pcpus) {
  switch (policy) {
    case SchedPolicy::kCredit:
      return MakeCreditScheduler(num_pcpus);
    case SchedPolicy::kCreditNoBoost:
      return MakeCreditScheduler(num_pcpus, 30'000'000, /*boost=*/false);
    case SchedPolicy::kRoundRobin:
      return MakeRoundRobinScheduler();
  }
  return nullptr;
}

}  // namespace hyperion::sched
