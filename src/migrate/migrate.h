// Live migration between hosts.
//
// Pre-copy: iterative rounds stream (re-)dirtied pages while the guest keeps
// running; when the dirty set stops shrinking past a threshold the VM pauses
// for a final stop-and-copy. Downtime grows with the dirty rate.
//
// Post-copy: the VM pauses only for its (tiny) CPU/device state, resumes at
// the destination immediately, and faults pages over on demand while a
// background pusher drains the rest. Downtime is constant; the cost moves
// into demand-fetch stalls.
//
// Storage is assumed shared between hosts (the standard deployment); only
// RAM and machine state move.
//
// Fault tolerance: when MigrateOptions.fault carries a FaultInjector, every
// wire transfer is subject to the plan's loss/outage/latency events. The RAM
// stream moves in chunks; each chunk is retried with exponential backoff up
// to max_chunk_retries, and pre-copy's pending set makes the stream
// resumable — only unacked pages are resent. Both flavors guarantee atomic
// switchover: a migration that fails at any injected point returns an error
// with the source VM running (if it was running) and consistent, and no VM
// left on the destination. Only a successful switchover leaves the source
// paused for the caller to destroy.

#ifndef SRC_MIGRATE_MIGRATE_H_
#define SRC_MIGRATE_MIGRATE_H_

#include <string>

#include "src/core/host.h"
#include "src/core/vm.h"
#include "src/net/network.h"

namespace hyperion::fault {
class FaultInjector;
}  // namespace hyperion::fault

namespace hyperion::migrate {

struct MigrateOptions {
  net::LinkParams link{1'000'000'000ull, 50 * kSimTicksPerUs};  // 1 Gb/s, 50 us
  uint32_t max_precopy_rounds = 30;
  // Enter stop-and-copy when a round's dirty set is at most this many pages.
  uint32_t stop_copy_threshold_pages = 64;
  uint32_t page_meta_bytes = 8;  // per-page wire header
  // Pre-copy: scan pages and send a marker instead of 4 KiB for all-zero
  // pages (untouched guest RAM). Disable for the ablation baseline.
  bool skip_zero_pages = true;
  // Post-copy: pages pushed per background batch.
  uint32_t background_batch_pages = 32;
  // Post-copy: bound on how long to drive the destination until residency.
  SimTime postcopy_run_limit = 60 * kSimTicksPerSec;

  // --- Fault tolerance -----------------------------------------------------
  // Injector governing the migration wire (nullptr = fault-free).
  fault::FaultInjector* fault = nullptr;
  std::string fault_site = "migrate:link";
  // RAM moves in chunks of this many pages; a chunk is the loss/retry unit.
  uint32_t chunk_pages = 128;
  // Attempts per chunk before the migration aborts (pre-copy/stop-and-copy).
  uint32_t max_chunk_retries = 6;
  // First retry delay; doubles per attempt up to the cap.
  SimTime retry_backoff = 5 * kSimTicksPerMs;
  SimTime retry_backoff_cap = 500 * kSimTicksPerMs;
  // Pre-copy: cap on one round's wall time; on expiry the unsent remainder
  // carries into the next round's pending set. 0 = unlimited.
  SimTime round_timeout = 0;
};

struct MigrationReport {
  uint32_t rounds = 0;          // pre-copy rounds (incl. the full first pass)
  uint64_t pages_sent = 0;      // page transfers, including resends
  uint64_t bytes_sent = 0;
  SimTime total_time = 0;       // start -> all state resident at destination
  SimTime downtime = 0;         // guest fully paused / unavailable
  uint64_t demand_fetches = 0;  // post-copy only
  SimTime demand_stall_total = 0;
  // Robustness cost under fault injection:
  uint64_t retries = 0;         // chunk/fetch retransmissions
  uint64_t timeouts = 0;        // pre-copy rounds cut off by round_timeout
  uint64_t pages_resent = 0;    // page transfers repeated due to loss

  double DowntimeMs() const { return SimTimeToMs(downtime); }
  double TotalMs() const { return SimTimeToMs(total_time); }
};

// Field-by-field equality: two reports are equal iff the migrations behaved
// identically (the chaos harness's determinism oracle).
inline bool operator==(const MigrationReport& a, const MigrationReport& b) {
  return a.rounds == b.rounds && a.pages_sent == b.pages_sent &&
         a.bytes_sent == b.bytes_sent && a.total_time == b.total_time &&
         a.downtime == b.downtime && a.demand_fetches == b.demand_fetches &&
         a.demand_stall_total == b.demand_stall_total &&
         a.retries == b.retries && a.timeouts == b.timeouts &&
         a.pages_resent == b.pages_resent;
}
inline bool operator!=(const MigrationReport& a, const MigrationReport& b) {
  return !(a == b);
}

// Migrates `vm` from `src` to `dst` with iterative pre-copy. On success the
// source VM is left paused (caller destroys it) and the returned pointer is
// the running destination VM. The report lands in *report — also on failure,
// where it records the progress made before the abort.
Result<core::Vm*> PreCopyMigrate(core::Host& src, core::Vm* vm, core::Host& dst,
                                 const MigrateOptions& options, MigrationReport* report);

// Migrates `vm` with post-copy: instant switchover, then demand paging. The
// destination host is driven until every needed page is resident (or the
// run limit hits, which fails the migration, destroys the destination VM,
// and resumes the source — switchover rolls back).
Result<core::Vm*> PostCopyMigrate(core::Host& src, core::Vm* vm, core::Host& dst,
                                  const MigrateOptions& options, MigrationReport* report);

}  // namespace hyperion::migrate

#endif  // SRC_MIGRATE_MIGRATE_H_
