// Live migration between hosts.
//
// Pre-copy: iterative rounds stream (re-)dirtied pages while the guest keeps
// running; when the dirty set stops shrinking past a threshold the VM pauses
// for a final stop-and-copy. Downtime grows with the dirty rate.
//
// Post-copy: the VM pauses only for its (tiny) CPU/device state, resumes at
// the destination immediately, and faults pages over on demand while a
// background pusher drains the rest. Downtime is constant; the cost moves
// into demand-fetch stalls.
//
// Storage is assumed shared between hosts (the standard deployment); only
// RAM and machine state move.

#ifndef SRC_MIGRATE_MIGRATE_H_
#define SRC_MIGRATE_MIGRATE_H_

#include "src/core/host.h"
#include "src/core/vm.h"
#include "src/net/network.h"

namespace hyperion::migrate {

struct MigrateOptions {
  net::LinkParams link{1'000'000'000ull, 50 * kSimTicksPerUs};  // 1 Gb/s, 50 us
  uint32_t max_precopy_rounds = 30;
  // Enter stop-and-copy when a round's dirty set is at most this many pages.
  uint32_t stop_copy_threshold_pages = 64;
  uint32_t page_meta_bytes = 8;  // per-page wire header
  // Pre-copy: scan pages and send a marker instead of 4 KiB for all-zero
  // pages (untouched guest RAM). Disable for the ablation baseline.
  bool skip_zero_pages = true;
  // Post-copy: pages pushed per background batch.
  uint32_t background_batch_pages = 32;
  // Post-copy: bound on how long to drive the destination until residency.
  SimTime postcopy_run_limit = 60 * kSimTicksPerSec;
};

struct MigrationReport {
  uint32_t rounds = 0;          // pre-copy rounds (incl. the full first pass)
  uint64_t pages_sent = 0;      // page transfers, including resends
  uint64_t bytes_sent = 0;
  SimTime total_time = 0;       // start -> all state resident at destination
  SimTime downtime = 0;         // guest fully paused / unavailable
  uint64_t demand_fetches = 0;  // post-copy only
  SimTime demand_stall_total = 0;

  double DowntimeMs() const { return SimTimeToMs(downtime); }
  double TotalMs() const { return SimTimeToMs(total_time); }
};

// Migrates `vm` from `src` to `dst` with iterative pre-copy. On success the
// source VM is left paused (caller destroys it) and the returned pointer is
// the running destination VM. The report lands in *report.
Result<core::Vm*> PreCopyMigrate(core::Host& src, core::Vm* vm, core::Host& dst,
                                 const MigrateOptions& options, MigrationReport* report);

// Migrates `vm` with post-copy: instant switchover, then demand paging. The
// destination host is driven until every needed page is resident (or the
// run limit hits, which fails the migration).
Result<core::Vm*> PostCopyMigrate(core::Host& src, core::Vm* vm, core::Host& dst,
                                  const MigrateOptions& options, MigrationReport* report);

}  // namespace hyperion::migrate

#endif  // SRC_MIGRATE_MIGRATE_H_
