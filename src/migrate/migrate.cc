#include "src/migrate/migrate.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/fault/fault.h"
#include "src/snapshot/snapshot.h"
#include "src/util/logging.h"

namespace hyperion::migrate {

namespace {

uint64_t PageWireBytes(const MigrateOptions& options) {
  return isa::kPageSize + options.page_meta_bytes;
}

// Conservative size of the non-RAM machine state on the wire.
uint64_t MachineStateBytes(core::Vm& vm) {
  return 4096 + static_cast<uint64_t>(vm.num_vcpus()) * 256;
}

core::VmConfig DestConfig(const core::Vm& vm) {
  // Same configuration; the disk is shared storage, so the shared_ptr simply
  // attaches at the destination too.
  return vm.config();
}

// The source side of the migration wire: sends chunks while the source host
// (and the guest, unless paused) keeps running, retrying lost chunks with
// exponential backoff. Each attempt spends real wire time, so the guest
// dirties more memory during retries — the robustness cost the report's
// retry counters make visible.
class WireSender {
 public:
  WireSender(core::Host& src, const MigrateOptions& options, MigrationReport& rep)
      : src_(src), options_(options), rep_(rep) {}

  // Sends one chunk of `bytes` covering `pages` page transfers. Returns
  // false when the chunk was lost max_chunk_retries times. The caller
  // accounts the first attempt; retries account themselves.
  bool SendChunk(uint64_t bytes, uint64_t pages) {
    SimTime backoff = options_.retry_backoff;
    for (uint32_t attempt = 0;; ++attempt) {
      SimTime start = src_.clock().now();
      SimTime duration = options_.link.TransmitTime(bytes) + options_.link.latency;
      bool lost = false;
      if (options_.fault != nullptr) {
        fault::TransferFault f =
            options_.fault->OnTransfer(options_.fault_site, start, duration);
        duration += f.extra_latency;
        lost = f.lost;
      }
      src_.RunFor(duration);  // wall time passes whether or not the chunk lands
      if (!lost) {
        return true;
      }
      if (attempt + 1 >= options_.max_chunk_retries) {
        return false;
      }
      ++rep_.retries;
      rep_.pages_resent += pages;
      rep_.pages_sent += pages;
      rep_.bytes_sent += bytes;
      src_.RunFor(backoff);
      backoff = std::min(backoff * 2, options_.retry_backoff_cap);
    }
  }

 private:
  core::Host& src_;
  const MigrateOptions& options_;
  MigrationReport& rep_;
};

void Publish(MigrationReport* report, const MigrationReport& rep) {
  if (report != nullptr) {
    *report = rep;
  }
}

}  // namespace

Result<core::Vm*> PreCopyMigrate(core::Host& src, core::Vm* vm, core::Host& dst,
                                 const MigrateOptions& options, MigrationReport* report) {
  if (vm->state() != core::VmState::kRunning && vm->state() != core::VmState::kPaused) {
    return FailedPreconditionError("vm is not migratable in its current state");
  }
  bool was_running = vm->state() == core::VmState::kRunning;
  // The migration driver runs between rounds on the caller's thread.
  ScopedSerialPhase serial;
  MigrationReport rep;
  SimTime t0 = src.clock().now();
  mem::GuestMemory& mem = vm->memory();
  mem.EnableDirtyLog();
  WireSender wire(src, options, rep);
  uint32_t chunk_pages = std::max<uint32_t>(1, options.chunk_pages);

  // The resumable-transfer state: pages the destination copy does not have
  // yet. A chunk leaves the set only once its transfer is acked, so an
  // aborted round resends exactly the unacked remainder, never the pages
  // that already made it.
  std::vector<uint32_t> pending;
  for (uint32_t gpn = 0; gpn < mem.num_pages(); ++gpn) {
    if (mem.IsPresent(gpn)) {
      pending.push_back(gpn);
    }
  }

  // Abort during the iterative phase: the guest never stopped; just turn
  // off dirty tracking and leave it running.
  auto abort_rounds = [&](Status st) {
    mem.DisableDirtyLog();
    Publish(report, rep);
    return st;
  };

  for (uint32_t round = 1; round <= options.max_precopy_rounds; ++round) {
    rep.rounds = round;
    SimTime round_start = src.clock().now();
    bool timed_out = false;
    size_t sent = 0;
    while (sent < pending.size()) {
      size_t n = std::min<size_t>(chunk_pages, pending.size() - sent);
      uint64_t zero_pages = 0;
      if (options.skip_zero_pages) {
        for (size_t k = 0; k < n; ++k) {
          uint32_t gpn = pending[sent + k];
          if (!mem.IsPresent(gpn) || mem.PageIsZero(gpn)) {
            ++zero_pages;
          }
        }
      }
      uint64_t bytes = (n - zero_pages) * PageWireBytes(options) +
                       zero_pages * options.page_meta_bytes;
      rep.pages_sent += n;
      rep.bytes_sent += bytes;
      if (!wire.SendChunk(bytes, n)) {
        return abort_rounds(AbortedError(
            "pre-copy chunk lost " + std::to_string(options.max_chunk_retries) +
            " times; migration aborted with the source vm untouched"));
      }
      sent += n;
      if (options.round_timeout != 0 && sent < pending.size() &&
          src.clock().now() - round_start >= options.round_timeout) {
        ++rep.timeouts;
        timed_out = true;
        break;
      }
    }
    pending.erase(pending.begin(), pending.begin() + static_cast<ptrdiff_t>(sent));

    // Next round: the unsent remainder plus everything the guest re-dirtied
    // while this round was on the wire.
    Bitmap dirty = mem.HarvestDirty();
    for (size_t gpn : dirty.SetBits()) {
      pending.push_back(static_cast<uint32_t>(gpn));
    }
    std::sort(pending.begin(), pending.end());
    pending.erase(std::unique(pending.begin(), pending.end()), pending.end());

    if (vm->state() == core::VmState::kCrashed) {
      return abort_rounds(AbortedError("source vm crashed mid-migration: " +
                                       vm->crash_reason().ToString()));
    }
    if (!timed_out && pending.size() <= options.stop_copy_threshold_pages) {
      break;
    }
    if (vm->state() != core::VmState::kRunning) {
      // Guest shut down mid-migration; whatever is left goes in the final copy.
      break;
    }
  }

  // Stop-and-copy: pause, ship the remainder plus machine state. From here
  // a permanent loss rolls the switchover back: the source resumes.
  vm->Pause(serial);
  SimTime pause_start = src.clock().now();
  auto abort_switchover = [&](Status st) {
    mem.DisableDirtyLog();
    if (was_running) {
      vm->Resume(serial);
    }
    Publish(report, rep);
    return st;
  };
  size_t sent = 0;
  while (sent < pending.size()) {
    size_t n = std::min<size_t>(chunk_pages, pending.size() - sent);
    uint64_t bytes = n * PageWireBytes(options);
    rep.pages_sent += n;
    rep.bytes_sent += bytes;
    if (!wire.SendChunk(bytes, n)) {
      return abort_switchover(
          AbortedError("stop-and-copy chunk lost past the retry budget; "
                       "source vm resumed"));
    }
    sent += n;
  }
  uint64_t state_bytes = MachineStateBytes(*vm);
  rep.bytes_sent += state_bytes;
  if (!wire.SendChunk(state_bytes, 0)) {
    return abort_switchover(
        AbortedError("machine-state transfer lost past the retry budget; "
                     "source vm resumed"));
  }
  rep.downtime = src.clock().now() - pause_start;
  mem.DisableDirtyLog();

  // Materialize the destination from the (now consistent) source state. Any
  // failure from here on also rolls back: no half-VM survives on either side.
  auto image = snapshot::SaveVm(*vm);
  if (!image.ok()) {
    return abort_switchover(image.status());
  }
  auto created = dst.CreateVm(DestConfig(*vm));
  if (!created.ok()) {
    return abort_switchover(created.status());
  }
  core::Vm* dvm = *created;
  Status st = snapshot::LoadVm(*dvm, *image);
  if (!st.ok()) {
    (void)dst.DestroyVm(dvm);
    return abort_switchover(st);
  }
  dvm->Pause(serial);   // align lifecycle state, then resume cleanly
  dvm->Resume(serial);

  rep.total_time = src.clock().now() - t0;
  Publish(report, rep);
  return dvm;
}

namespace {

// Post-copy machinery living on the destination host: serves demand faults
// from the paused source VM's memory and pushes the rest in the background.
// Lost transfers (injected) are retried with exponential backoff for as long
// as the caller keeps driving the destination; the postcopy_run_limit bounds
// the whole phase.
class PostCopyServer : public std::enable_shared_from_this<PostCopyServer> {
 public:
  PostCopyServer(core::Vm* src_vm, core::Vm* dst_vm, core::Host* dst_host,
                 const MigrateOptions& options, MigrationReport* rep)
      : src_vm_(src_vm),
        dst_vm_(dst_vm),
        dst_host_(dst_host),
        options_(options),
        link_(&dst_host->clock(), options.link),
        rep_(rep) {
    link_.SetFault(options_.fault, options_.fault_site);
    for (uint32_t gpn = 0; gpn < src_vm_->memory().num_pages(); ++gpn) {
      if (src_vm_->memory().IsPresent(gpn)) {
        missing_.insert(gpn);
      }
    }
    dst_vm_->SetMissingPageHandler(
        [this](const ExecutePhase& ph, uint32_t vcpu, uint32_t gpn) {
          return OnFault(ph, vcpu, gpn);
        });
  }

  bool Done() const { return missing_.empty() && in_flight_.empty(); }

  void StartBackgroundPush(const DirectPhase& ph) { PushNextBatch(ph); }

  // Called when the caller abandons the migration: stop touching its report.
  void DetachReport() {
    static MigrationReport sink;
    rep_ = &sink;
  }

 private:
  // Runs inside the faulting vCPU's slice: everything it schedules stages
  // through the ExecutePhase until the round barrier.
  bool OnFault(const ExecutePhase& ph, uint32_t vcpu, uint32_t gpn) {
    if (!missing_.count(gpn) && !in_flight_.count(gpn)) {
      return false;  // truly absent page (ballooned) — a real guest bug
    }
    waiters_[gpn].push_back(vcpu);
    SimTime start = dst_host_->clock().now();
    ++rep_->demand_fetches;
    if (in_flight_.count(gpn)) {
      // Already on the wire (background batch or an earlier fault); wait.
      stall_started_[gpn] = std::min(stall_started_.count(gpn) ? stall_started_[gpn] : start,
                                     start);
      return true;
    }
    missing_.erase(gpn);
    in_flight_.insert(gpn);
    stall_started_[gpn] = start;
    SendDemandFetch(ph, gpn, options_.retry_backoff);
    return true;
  }

  // One demand-fetch attempt; a lost transfer reschedules itself after
  // `backoff` (doubling up to the cap). The vCPU stays stalled throughout —
  // exactly the self-healing the chaos harness measures as demand stall.
  // Dual-regime: the first attempt fires from the faulting slice (staged),
  // retries fire from serial clock callbacks (direct).
  void SendDemandFetch(const Phase& ph, uint32_t gpn, SimTime backoff) {
    rep_->pages_sent += 1;
    rep_->bytes_sent += PageWireBytes(options_);
    auto self = weak_from_this();
    link_.TransferFaulty(
        ph, PageWireBytes(options_),
        [self, gpn](const SerialPhase& sp) {
          if (auto s = self.lock()) {
            s->DeliverPage(sp, gpn);
          }
        },
        [self, gpn, backoff](const SerialPhase& sp) {
          auto s = self.lock();
          if (s == nullptr) {
            return;
          }
          ++s->rep_->retries;
          s->rep_->pages_resent += 1;
          SimTime next = std::min(backoff * 2, s->options_.retry_backoff_cap);
          s->dst_host_->clock().ScheduleAfter(sp, backoff,
                                              [self, gpn, next](const SerialPhase& sp2) {
                                                if (auto s2 = self.lock()) {
                                                  s2->SendDemandFetch(sp2, gpn, next);
                                                }
                                              });
        });
  }

  void DeliverPage(const SerialPhase& ph, uint32_t gpn) {
    in_flight_.erase(gpn);
    // Copy the bytes from the (paused) source.
    mem::GuestMemory& dmem = dst_vm_->memory();
    if (!dmem.IsPresent(gpn)) {
      (void)dmem.PopulatePage(gpn);
    }
    const uint8_t* from = src_vm_->memory().PageData(gpn);
    if (from != nullptr) {
      std::memcpy(dmem.PageData(gpn), from, isa::kPageSize);
    }
    dst_vm_->InvalidateGpn(gpn);

    auto stall_it = stall_started_.find(gpn);
    if (stall_it != stall_started_.end()) {
      rep_->demand_stall_total += dst_host_->clock().now() - stall_it->second;
      stall_started_.erase(stall_it);
    }
    auto waiter_it = waiters_.find(gpn);
    if (waiter_it != waiters_.end()) {
      for (uint32_t vcpu : waiter_it->second) {
        dst_host_->WakeVcpu(ph, dst_vm_, vcpu);
      }
      waiters_.erase(waiter_it);
    }
  }

  void PushNextBatch(const DirectPhase& ph) {
    if (missing_.empty()) {
      return;
    }
    std::vector<uint32_t> batch;
    for (uint32_t gpn : missing_) {
      batch.push_back(gpn);
      if (batch.size() >= options_.background_batch_pages) {
        break;
      }
    }
    for (uint32_t gpn : batch) {
      missing_.erase(gpn);
      in_flight_.insert(gpn);
    }
    PushBatch(ph, std::move(batch), options_.retry_backoff);
  }

  void PushBatch(const DirectPhase& ph, std::vector<uint32_t> batch, SimTime backoff) {
    uint64_t bytes = batch.size() * PageWireBytes(options_);
    rep_->pages_sent += batch.size();
    rep_->bytes_sent += bytes;
    auto self = weak_from_this();
    link_.TransferFaulty(
        ph, bytes,
        [self, batch](const SerialPhase& sp) {
          auto s = self.lock();
          if (s == nullptr) {
            return;
          }
          for (uint32_t gpn : batch) {
            s->DeliverPage(sp, gpn);
          }
          s->PushNextBatch(sp);
        },
        [self, batch, backoff](const SerialPhase& sp) {
          auto s = self.lock();
          if (s == nullptr) {
            return;
          }
          ++s->rep_->retries;
          s->rep_->pages_resent += batch.size();
          SimTime next = std::min(backoff * 2, s->options_.retry_backoff_cap);
          s->dst_host_->clock().ScheduleAfter(sp, backoff,
                                              [self, batch, next](const SerialPhase& sp2) {
                                                if (auto s2 = self.lock()) {
                                                  s2->PushBatch(sp2, batch, next);
                                                }
                                              });
        });
  }

  core::Vm* src_vm_;
  core::Vm* dst_vm_;
  core::Host* dst_host_;
  MigrateOptions options_;
  net::Link link_;
  MigrationReport* rep_;

  std::set<uint32_t> missing_;
  std::set<uint32_t> in_flight_;
  std::map<uint32_t, std::vector<uint32_t>> waiters_;
  std::map<uint32_t, SimTime> stall_started_;
};

}  // namespace

Result<core::Vm*> PostCopyMigrate(core::Host& src, core::Vm* vm, core::Host& dst,
                                  const MigrateOptions& options, MigrationReport* report) {
  if (vm->state() != core::VmState::kRunning && vm->state() != core::VmState::kPaused) {
    return FailedPreconditionError("vm is not migratable in its current state");
  }
  bool was_running = vm->state() == core::VmState::kRunning;
  ScopedSerialPhase serial;
  MigrationReport rep;
  SimTime t0 = src.clock().now();
  WireSender wire(src, options, rep);

  // Switchover: only the machine state crosses before the guest resumes. A
  // permanent loss here rolls back — the source simply resumes.
  vm->Pause(serial);
  SimTime pause_start = src.clock().now();
  auto abort_switchover = [&](Status st) {
    if (was_running) {
      vm->Resume(serial);
    }
    Publish(report, rep);
    return st;
  };
  uint64_t state_bytes = MachineStateBytes(*vm);
  rep.bytes_sent += state_bytes;
  if (!wire.SendChunk(state_bytes, 0)) {
    return abort_switchover(
        AbortedError("post-copy machine-state transfer lost past the retry "
                     "budget; source vm resumed"));
  }
  rep.downtime = src.clock().now() - pause_start;

  auto image = snapshot::SaveVm(*vm);
  if (!image.ok()) {
    return abort_switchover(image.status());
  }
  auto created = dst.CreateVm(DestConfig(*vm));
  if (!created.ok()) {
    return abort_switchover(created.status());
  }
  core::Vm* dvm = *created;
  Status st = snapshot::LoadVm(*dvm, *image);
  if (!st.ok()) {
    (void)dst.DestroyVm(dvm);
    return abort_switchover(st);
  }
  // Strip all RAM: pages fault over on demand.
  for (uint32_t gpn = 0; gpn < dvm->memory().num_pages(); ++gpn) {
    if (dvm->memory().IsPresent(gpn)) {
      Status rs = dvm->memory().ReleasePage(serial, gpn);
      if (!rs.ok()) {
        (void)dst.DestroyVm(dvm);
        return abort_switchover(rs);
      }
    }
  }
  dvm->virt().FlushAll();

  auto server = std::make_shared<PostCopyServer>(vm, dvm, &dst, options, &rep);
  dvm->Pause(serial);
  dvm->Resume(serial);
  server->StartBackgroundPush(serial);

  // Rolls the failed switchover back: tear the destination down and hand
  // the guest back to the source. (The guest may have executed at the
  // destination; in the simulation the source's RAM is authoritative and
  // post-switchover destination writes exist only in destination pages, so
  // resuming the source replays from the switchover point. Chaos tests use
  // quiescent guests where the two are indistinguishable.)
  auto abort_postcopy = [&](Status fail) {
    dvm->SetMissingPageHandler(nullptr);
    server->DetachReport();
    server.reset();  // pending wire callbacks hold weak_ptrs; now inert
    (void)dst.DestroyVm(dvm);
    if (was_running) {
      vm->Resume(serial);
    }
    Publish(report, rep);
    return fail;
  };

  // Drive the destination until fully resident.
  SimTime run_start = dst.clock().now();
  while (!server->Done() && dst.clock().now() - run_start < options.postcopy_run_limit) {
    dst.RunFor(kSimTicksPerMs);
    if (dvm->state() == core::VmState::kCrashed) {
      return abort_postcopy(InternalError("destination vm crashed during post-copy: " +
                                          dvm->crash_reason().ToString()));
    }
  }
  if (!server->Done()) {
    ++rep.timeouts;
    return abort_postcopy(
        AbortedError("post-copy did not reach residency within the run "
                     "limit; destination destroyed, source vm resumed"));
  }
  dvm->SetMissingPageHandler(nullptr);

  rep.total_time = rep.downtime + (dst.clock().now() - run_start);
  (void)t0;
  Publish(report, rep);
  return dvm;
}

}  // namespace hyperion::migrate
