#include "src/migrate/migrate.h"

#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <set>

#include "src/snapshot/snapshot.h"
#include "src/util/logging.h"

namespace hyperion::migrate {

namespace {

uint64_t PageWireBytes(const MigrateOptions& options) {
  return isa::kPageSize + options.page_meta_bytes;
}

// Conservative size of the non-RAM machine state on the wire.
uint64_t MachineStateBytes(core::Vm& vm) {
  return 4096 + static_cast<uint64_t>(vm.num_vcpus()) * 256;
}

core::VmConfig DestConfig(const core::Vm& vm) {
  // Same configuration; the disk is shared storage, so the shared_ptr simply
  // attaches at the destination too.
  return vm.config();
}

}  // namespace

Result<core::Vm*> PreCopyMigrate(core::Host& src, core::Vm* vm, core::Host& dst,
                                 const MigrateOptions& options, MigrationReport* report) {
  if (vm->state() != core::VmState::kRunning && vm->state() != core::VmState::kPaused) {
    return FailedPreconditionError("vm is not migratable in its current state");
  }
  MigrationReport rep;
  SimTime t0 = src.clock().now();
  mem::GuestMemory& mem = vm->memory();
  mem.EnableDirtyLog();

  // Round 1: every present page (all-zero pages collapse to their wire
  // header when skip_zero_pages is on). Later rounds: pages dirtied
  // meanwhile, rescanned for zero content.
  uint64_t round_pages = 0;
  uint64_t round_zero_pages = 0;
  for (uint32_t gpn = 0; gpn < mem.num_pages(); ++gpn) {
    if (!mem.IsPresent(gpn)) {
      continue;
    }
    ++round_pages;
    if (options.skip_zero_pages && mem.PageIsZero(gpn)) {
      ++round_zero_pages;
    }
  }

  uint64_t dirty_count = 0;
  for (uint32_t round = 1; round <= options.max_precopy_rounds; ++round) {
    rep.rounds = round;
    uint64_t bytes = (round_pages - round_zero_pages) * PageWireBytes(options) +
                     round_zero_pages * options.page_meta_bytes;
    rep.pages_sent += round_pages;
    rep.bytes_sent += bytes;
    SimTime transfer = options.link.TransmitTime(bytes) + options.link.latency;
    // The guest keeps running while this round is on the wire.
    src.RunFor(transfer);

    Bitmap dirty = mem.HarvestDirty();
    dirty_count = dirty.Count();
    if (dirty_count <= options.stop_copy_threshold_pages) {
      break;
    }
    if (vm->state() != core::VmState::kRunning) {
      // Guest shut down mid-migration; whatever is dirty goes in the final copy.
      break;
    }
    round_pages = dirty_count;
    round_zero_pages = 0;
    if (options.skip_zero_pages) {
      for (size_t gpn : dirty.SetBits()) {
        if (mem.PageIsZero(static_cast<uint32_t>(gpn))) {
          ++round_zero_pages;
        }
      }
    }
  }

  // Stop-and-copy: pause, ship the remainder plus machine state.
  vm->Pause();
  uint64_t final_bytes = dirty_count * PageWireBytes(options) + MachineStateBytes(*vm);
  rep.pages_sent += dirty_count;
  rep.bytes_sent += final_bytes;
  rep.downtime = options.link.TransmitTime(final_bytes) + options.link.latency;
  src.RunFor(rep.downtime);  // wall time passes; the guest is paused
  mem.DisableDirtyLog();

  // Materialize the destination from the (now consistent) source state.
  HYP_ASSIGN_OR_RETURN(std::vector<uint8_t> image, snapshot::SaveVm(*vm));
  HYP_ASSIGN_OR_RETURN(core::Vm * dvm, dst.CreateVm(DestConfig(*vm)));
  Status st = snapshot::LoadVm(*dvm, image);
  if (!st.ok()) {
    (void)dst.DestroyVm(dvm);
    return st;
  }
  dvm->Pause();   // align lifecycle state, then resume cleanly
  dvm->Resume();

  rep.total_time = src.clock().now() - t0;
  if (report != nullptr) {
    *report = rep;
  }
  return dvm;
}

namespace {

// Post-copy machinery living on the destination host: serves demand faults
// from the paused source VM's memory and pushes the rest in the background.
class PostCopyServer : public std::enable_shared_from_this<PostCopyServer> {
 public:
  PostCopyServer(core::Vm* src_vm, core::Vm* dst_vm, core::Host* dst_host,
                 const MigrateOptions& options, MigrationReport* rep)
      : src_vm_(src_vm),
        dst_vm_(dst_vm),
        dst_host_(dst_host),
        options_(options),
        link_(&dst_host->clock(), options.link),
        rep_(rep) {
    for (uint32_t gpn = 0; gpn < src_vm_->memory().num_pages(); ++gpn) {
      if (src_vm_->memory().IsPresent(gpn)) {
        missing_.insert(gpn);
      }
    }
    dst_vm_->SetMissingPageHandler(
        [this](uint32_t vcpu, uint32_t gpn) { return OnFault(vcpu, gpn); });
  }

  bool Done() const { return missing_.empty() && in_flight_.empty(); }

  void StartBackgroundPush() { PushNextBatch(); }

  // Called when the caller abandons the migration: stop touching its report.
  void DetachReport() {
    static MigrationReport sink;
    rep_ = &sink;
  }

 private:
  bool OnFault(uint32_t vcpu, uint32_t gpn) {
    if (!missing_.count(gpn) && !in_flight_.count(gpn)) {
      return false;  // truly absent page (ballooned) — a real guest bug
    }
    waiters_[gpn].push_back(vcpu);
    SimTime start = dst_host_->clock().now();
    ++rep_->demand_fetches;
    if (in_flight_.count(gpn)) {
      // Already on the wire from a background batch; just wait for it.
      stall_started_[gpn] = std::min(stall_started_.count(gpn) ? stall_started_[gpn] : start,
                                     start);
      return true;
    }
    missing_.erase(gpn);
    in_flight_.insert(gpn);
    stall_started_[gpn] = start;
    rep_->pages_sent += 1;
    rep_->bytes_sent += PageWireBytes(options_);
    auto self = weak_from_this();
    link_.Transfer(PageWireBytes(options_), [self, gpn] {
      if (auto s = self.lock()) {
        s->DeliverPage(gpn);
      }
    });
    return true;
  }

  void DeliverPage(uint32_t gpn) {
    in_flight_.erase(gpn);
    // Copy the bytes from the (paused) source.
    mem::GuestMemory& dmem = dst_vm_->memory();
    if (!dmem.IsPresent(gpn)) {
      (void)dmem.PopulatePage(gpn);
    }
    const uint8_t* from = src_vm_->memory().PageData(gpn);
    if (from != nullptr) {
      std::memcpy(dmem.PageData(gpn), from, isa::kPageSize);
    }
    dst_vm_->InvalidateGpn(gpn);

    auto stall_it = stall_started_.find(gpn);
    if (stall_it != stall_started_.end()) {
      rep_->demand_stall_total += dst_host_->clock().now() - stall_it->second;
      stall_started_.erase(stall_it);
    }
    auto waiter_it = waiters_.find(gpn);
    if (waiter_it != waiters_.end()) {
      for (uint32_t vcpu : waiter_it->second) {
        dst_host_->WakeVcpu(dst_vm_, vcpu);
      }
      waiters_.erase(waiter_it);
    }
  }

  void PushNextBatch() {
    if (missing_.empty()) {
      return;
    }
    std::vector<uint32_t> batch;
    for (uint32_t gpn : missing_) {
      batch.push_back(gpn);
      if (batch.size() >= options_.background_batch_pages) {
        break;
      }
    }
    for (uint32_t gpn : batch) {
      missing_.erase(gpn);
      in_flight_.insert(gpn);
    }
    uint64_t bytes = batch.size() * PageWireBytes(options_);
    rep_->pages_sent += batch.size();
    rep_->bytes_sent += bytes;
    auto self = weak_from_this();
    link_.Transfer(bytes, [self, batch] {
      auto s = self.lock();
      if (s == nullptr) {
        return;
      }
      for (uint32_t gpn : batch) {
        s->DeliverPage(gpn);
      }
      s->PushNextBatch();
    });
  }

  core::Vm* src_vm_;
  core::Vm* dst_vm_;
  core::Host* dst_host_;
  MigrateOptions options_;
  net::Link link_;
  MigrationReport* rep_;

  std::set<uint32_t> missing_;
  std::set<uint32_t> in_flight_;
  std::map<uint32_t, std::vector<uint32_t>> waiters_;
  std::map<uint32_t, SimTime> stall_started_;
};

}  // namespace

Result<core::Vm*> PostCopyMigrate(core::Host& src, core::Vm* vm, core::Host& dst,
                                  const MigrateOptions& options, MigrationReport* report) {
  if (vm->state() != core::VmState::kRunning && vm->state() != core::VmState::kPaused) {
    return FailedPreconditionError("vm is not migratable in its current state");
  }
  MigrationReport rep;
  SimTime t0 = src.clock().now();

  // Switchover: only the machine state crosses before the guest resumes.
  vm->Pause();
  uint64_t state_bytes = MachineStateBytes(*vm);
  rep.bytes_sent += state_bytes;
  rep.downtime = options.link.TransmitTime(state_bytes) + options.link.latency;
  src.RunFor(rep.downtime);

  HYP_ASSIGN_OR_RETURN(std::vector<uint8_t> image, snapshot::SaveVm(*vm));
  HYP_ASSIGN_OR_RETURN(core::Vm * dvm, dst.CreateVm(DestConfig(*vm)));
  Status st = snapshot::LoadVm(*dvm, image);
  if (!st.ok()) {
    (void)dst.DestroyVm(dvm);
    return st;
  }
  // Strip all RAM: pages fault over on demand.
  for (uint32_t gpn = 0; gpn < dvm->memory().num_pages(); ++gpn) {
    if (dvm->memory().IsPresent(gpn)) {
      HYP_RETURN_IF_ERROR(dvm->memory().ReleasePage(gpn));
    }
  }
  dvm->virt().FlushAll();

  auto server = std::make_shared<PostCopyServer>(vm, dvm, &dst, options, &rep);
  dvm->Pause();
  dvm->Resume();
  server->StartBackgroundPush();

  // Drive the destination until fully resident.
  SimTime run_start = dst.clock().now();
  while (!server->Done() && dst.clock().now() - run_start < options.postcopy_run_limit) {
    dst.RunFor(kSimTicksPerMs);
    if (dvm->state() == core::VmState::kCrashed) {
      return InternalError("destination vm crashed during post-copy: " +
                           dvm->crash_reason().ToString());
    }
  }
  dvm->SetMissingPageHandler(nullptr);
  if (!server->Done()) {
    server->DetachReport();
    return InternalError("post-copy did not reach residency within the run limit");
  }

  rep.total_time = rep.downtime + (dst.clock().now() - run_start);
  (void)t0;
  if (report != nullptr) {
    *report = rep;
  }
  return dvm;
}

}  // namespace hyperion::migrate
