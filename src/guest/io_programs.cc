// Guest drivers for the emulated (PIO) and virtio devices.
//
// The virtio drivers pre-build their rings as image data sections (the
// layout is static), so the runtime loop is just: bump avail.idx, kick,
// wait for the interrupt, acknowledge. The emulated drivers move every data
// word through the trapped DATA port, which is exactly their point.

#include <algorithm>
#include <sstream>

#include "src/guest/programs.h"

namespace hyperion::guest {

namespace {

// Device register bases and PIC line masks (see src/devices/mmio.h).
constexpr char kIoEqus[] = R"(
.equ BLK_BASE, 0xF0010000
.equ NET_BASE, 0xF0020000
.equ VBLK_BASE, 0xF0100000
.equ VNET_BASE, 0xF0101000
.equ BLK_IRQ_BIT, 2          ; 1 << 1
.equ NET_IRQ_BIT, 4          ; 1 << 2
.equ VBLK_IRQ_BIT, 256       ; 1 << 8
.equ VNET_IRQ_BIT, 512       ; 1 << 9
)";

std::string Header() {
  return R"(.org 0x1000
.equ HC_WRITE, 1
.equ HC_SHUTDOWN, 4
.equ HC_KICK, 7
.equ HC_LOG, 8
.equ PIC_BASE, 0xF0001000
)" + std::string(kIoEqus) +
         R"(    j _start
.align 8
progress:
    .word 0
)";
}

constexpr char kBumpProgress[] = R"(
    la t3, progress
    lw t2, 0(t3)
    addi t2, t2, 1
    sw t2, 0(t3)
)";

constexpr char kShutdown[] = R"(
    li a0, HC_SHUTDOWN
    hcall
    halt
)";

uint32_t FloorPow2(uint32_t v) {
  uint32_t p = 1;
  while (p * 2 <= v) {
    p *= 2;
  }
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// Emulated (PIO) block driver
// ---------------------------------------------------------------------------

std::string EmulatedBlkProgram(const BlkIoParams& params) {
  uint32_t sectors = std::min<uint32_t>(std::max<uint32_t>(params.sectors, 1), 8);
  uint32_t nwords = sectors * 512 / 4;
  std::ostringstream out;
  out << Header();
  out << "_start:\n"
         "    li gp, BLK_BASE\n"
         "    li t0, PIC_BASE\n"
         "    li t1, BLK_IRQ_BIT\n"
         "    sw t1, 4(t0)             ; enable the blk line\n"
         "    li s0, 0\n"
         "    li s1, " << params.iterations << "\n"
         "cmd_loop:\n"
         "    andi t1, s0, 63\n"
         "    sw t1, 0x00(gp)          ; LBA\n"
         "    li t1, " << sectors << "\n"
         "    sw t1, 0x04(gp)          ; COUNT\n"
         "    sw zero, 0x14(gp)        ; rewind the data pointer\n";
  if (params.write) {
    out << "    li t2, " << nwords << "\n"
           "    mv t3, s0\n"
           "fill:\n"
           "    sw t3, 0x10(gp)          ; one exit per word\n"
           "    addi t3, t3, 7\n"
           "    addi t2, t2, -1\n"
           "    bnez t2, fill\n"
           "    li t1, 2                 ; CMD: write\n"
           "    sw t1, 0x08(gp)\n";
  } else {
    out << "    li t1, 1                 ; CMD: read\n"
           "    sw t1, 0x08(gp)\n";
  }
  out << "    wfi                      ; completion interrupt\n"
         "    li t0, PIC_BASE\n"
         "    li t1, BLK_IRQ_BIT\n"
         "    sw t1, 8(t0)             ; ack the PIC\n";
  if (!params.write) {
    out << "    li t2, " << nwords << "\n"
           "drain:\n"
           "    lw t3, 0x10(gp)          ; one exit per word\n"
           "    addi t2, t2, -1\n"
           "    bnez t2, drain\n";
  }
  out << "    sw zero, 0x14(gp)        ; device ack\n"
      << kBumpProgress
      << "    addi s0, s0, 1\n"
         "    bltu s0, s1, cmd_loop\n"
      << kShutdown;
  return out.str();
}

// ---------------------------------------------------------------------------
// Virtio block driver
// ---------------------------------------------------------------------------

std::string VirtioBlkProgram(const BlkIoParams& params) {
  constexpr uint32_t kQSize = 64;
  constexpr uint32_t kDesc = 0x20000;
  constexpr uint32_t kAvail = 0x20400;
  constexpr uint32_t kUsed = 0x20600;
  constexpr uint32_t kHdr = 0x21000;
  constexpr uint32_t kStatus = 0x21800;
  constexpr uint32_t kData = 0x22000;

  uint32_t sectors = std::min<uint32_t>(std::max<uint32_t>(params.sectors, 1), 8);
  uint32_t batch = FloorPow2(std::min<uint32_t>(std::max<uint32_t>(params.batch, 1), 16));
  uint32_t bytes = sectors * 512;

  std::ostringstream out;
  out << Header();

  // --- Static ring and buffer data -----------------------------------------
  out << ".org " << kDesc << "\n";
  for (uint32_t i = 0; i < batch; ++i) {
    uint32_t data_flags = params.write ? 1u : 3u;  // NEXT | (WRITE for reads)
    // Header descriptor (device-readable).
    out << ".word " << kHdr + 16 * i << ", 16, " << (1u | ((3 * i + 1) << 16)) << "\n";
    // Data descriptor.
    out << ".word " << kData + bytes * i << ", " << bytes << ", "
        << (data_flags | ((3 * i + 2) << 16)) << "\n";
    // Status descriptor (device-writable).
    out << ".word " << kStatus + i << ", 1, " << 2u << "\n";
  }
  // Avail ring: flags=0 idx=0, ring[j] = head of request (j % batch).
  out << ".org " << kAvail << "\n.word 0\n";
  for (uint32_t j = 0; j < kQSize; j += 2) {
    uint32_t lo = 3 * (j % batch);
    uint32_t hi = 3 * ((j + 1) % batch);
    out << ".word " << (lo | (hi << 16)) << "\n";
  }
  // Used ring: zeroed.
  out << ".org " << kUsed << "\n.space " << 4 + 8 * kQSize << "\n";
  // Request headers: type, pad, sector(lo,hi).
  for (uint32_t i = 0; i < batch; ++i) {
    out << ".org " << kHdr + 16 * i << "\n";
    out << ".word " << (params.write ? 1 : 0) << ", 0, " << i * sectors << ", 0\n";
  }
  // Data payload: deterministic words so disk contents are checkable.
  out << ".org " << kData << "\n";
  for (uint32_t w = 0; w < batch * bytes / 4; w += 2) {
    out << ".word " << (0xB10C0000u + w) << ", " << (0xB10C0000u + w + 1) << "\n";
  }

  // --- Code ------------------------------------------------------------------
  out << ".org 0x10000\n_start:\n"
         "    li gp, VBLK_BASE\n"
         "    li t0, PIC_BASE\n"
         "    li t1, VBLK_IRQ_BIT\n"
         "    sw t1, 4(t0)\n"
         "    sw zero, 0x04(gp)        ; queue_sel 0\n"
         "    li t1, " << kQSize << "\n"
         "    sw t1, 0x08(gp)\n"
         "    li t1, " << kDesc << "\n"
         "    sw t1, 0x0C(gp)\n"
         "    li t1, " << kAvail << "\n"
         "    sw t1, 0x10(gp)\n"
         "    li t1, " << kUsed << "\n"
         "    sw t1, 0x14(gp)\n"
         "    li t1, 1\n"
         "    sw t1, 0x18(gp)          ; ready\n"
         "    li s0, 0\n"
         "    li s1, " << params.iterations << "\n"
         "kick_loop:\n"
         "    li t0, " << kAvail << "\n"
         "    lhu t1, 2(t0)\n"
         "    addi t1, t1, " << batch << "\n"
         "    sh t1, 2(t0)             ; publish the batch\n";
  if (params.kick_with_hypercall) {
    out << "    li a0, HC_KICK\n"
           "    li a1, 0                 ; slot 0 = virtio-blk\n"
           "    li a2, 0\n"
           "    hcall\n";
  } else {
    out << "    sw zero, 0x1C(gp)        ; MMIO doorbell\n";
  }
  out << "    wfi                      ; completion interrupt\n"
         "    li t1, 1\n"
         "    sw t1, 0x24(gp)          ; ack ISR\n"
         "    li t0, PIC_BASE\n"
         "    li t1, VBLK_IRQ_BIT\n"
         "    sw t1, 8(t0)\n"
      << kBumpProgress
      << "    addi s0, s0, 1\n"
         "    bltu s0, s1, kick_loop\n"
      << kShutdown;
  return out.str();
}

// ---------------------------------------------------------------------------
// Emulated (PIO) network driver
// ---------------------------------------------------------------------------

std::string EmulatedNetPingProgram(const NetParams& params) {
  uint32_t nwords = params.payload_bytes / 4;
  std::ostringstream out;
  out << Header();
  out << "_start:\n"
         "    li gp, NET_BASE\n"
         "    li t0, PIC_BASE\n"
         "    li t1, NET_IRQ_BIT\n"
         "    sw t1, 4(t0)\n"
         "    li s0, 0\n"
         "    li s1, " << params.iterations << "\n"
         "ping:\n"
         "    sw zero, 0x1C(gp)        ; rewind data pointer\n"
         "    li t2, " << nwords << "\n"
         "    mv t3, s0\n"
         "fill:\n"
         "    sw t3, 0x10(gp)\n"
         "    addi t3, t3, 1\n"
         "    addi t2, t2, -1\n"
         "    bnez t2, fill\n"
         "    li t1, " << params.payload_bytes << "\n"
         "    sw t1, 0x00(gp)          ; TX_LEN\n"
         "    li t1, " << params.peer_mac << "\n"
         "    sw t1, 0x04(gp)          ; TX_DST\n"
         "    li t1, 1\n"
         "    sw t1, 0x08(gp)          ; SEND\n"
         "    wfi                      ; reply interrupt\n"
         "    li t0, PIC_BASE\n"
         "    li t1, NET_IRQ_BIT\n"
         "    sw t1, 8(t0)\n"
         "    li t1, 2\n"
         "    sw t1, 0x08(gp)          ; pop the reply\n"
      << kBumpProgress
      << "    addi s0, s0, 1\n";
  if (params.iterations != 0) {
    out << "    bltu s0, s1, ping\n" << kShutdown;
  } else {
    out << "    j ping\n";
  }
  return out.str();
}

std::string EmulatedNetEchoProgram() {
  std::ostringstream out;
  out << Header();
  out << "_start:\n"
         "    li gp, NET_BASE\n"
         "    li t0, PIC_BASE\n"
         "    li t1, NET_IRQ_BIT\n"
         "    sw t1, 4(t0)\n"
         "echo_wait:\n"
         "    wfi\n"
         "    li t0, PIC_BASE\n"
         "    li t1, NET_IRQ_BIT\n"
         "    sw t1, 8(t0)\n"
         "echo_pop:\n"
         "    li t1, 2\n"
         "    sw t1, 0x08(gp)          ; latch next frame\n"
         "    lw t2, 0x14(gp)          ; RX_LEN\n"
         "    beqz t2, echo_wait\n"
         "    lw t3, 0x18(gp)          ; RX_SRC\n"
         "    sw t2, 0x00(gp)          ; TX_LEN = RX_LEN\n"
         "    sw t3, 0x04(gp)          ; TX_DST = RX_SRC\n"
         "    sw zero, 0x1C(gp)\n"
         "    srli t2, t2, 2\n"
         "refill:\n"
         "    sw t3, 0x10(gp)\n"
         "    addi t2, t2, -1\n"
         "    bnez t2, refill\n"
         "    li t1, 1\n"
         "    sw t1, 0x08(gp)          ; SEND reply\n"
      << kBumpProgress
      << "    lw t1, 0x0C(gp)          ; more frames queued?\n"
         "    andi t1, t1, 1\n"
         "    bnez t1, echo_pop\n"
         "    j echo_wait\n";
  return out.str();
}

// ---------------------------------------------------------------------------
// Virtio network drivers
// ---------------------------------------------------------------------------

namespace {

struct VnetLayout {
  static constexpr uint32_t kQSize = 16;
  static constexpr uint32_t kRxDesc = 0x24000;
  static constexpr uint32_t kRxAvail = 0x24200;
  static constexpr uint32_t kRxUsed = 0x24300;
  static constexpr uint32_t kTxDesc = 0x25000;
  static constexpr uint32_t kTxAvail = 0x25200;
  static constexpr uint32_t kTxUsed = 0x25300;
  static constexpr uint32_t kRxBuf = 0x26000;   // 16 x 2048
  static constexpr uint32_t kTxBuf = 0x2E000;
  static constexpr uint32_t kRxBufStride = 2048;
};

// Emits the static rings: all RX buffers pre-posted (avail.idx = qsize),
// one TX descriptor covering the TX buffer.
std::string VnetRingData(uint32_t tx_len_bytes) {
  using L = VnetLayout;
  std::ostringstream out;
  out << ".org " << L::kRxDesc << "\n";
  for (uint32_t i = 0; i < L::kQSize; ++i) {
    out << ".word " << L::kRxBuf + i * L::kRxBufStride << ", " << L::kRxBufStride << ", 2\n";
  }
  out << ".org " << L::kRxAvail << "\n.word " << (L::kQSize << 16) << "\n";  // idx = qsize
  for (uint32_t j = 0; j < L::kQSize; j += 2) {
    out << ".word " << (j | ((j + 1) << 16)) << "\n";
  }
  out << ".org " << L::kRxUsed << "\n.space " << 4 + 8 * L::kQSize << "\n";

  out << ".org " << L::kTxDesc << "\n";
  for (uint32_t i = 0; i < L::kQSize; ++i) {
    out << ".word " << L::kTxBuf << ", " << tx_len_bytes << ", 0\n";
  }
  out << ".org " << L::kTxAvail << "\n.word 0\n";
  for (uint32_t j = 0; j < L::kQSize; j += 2) {
    out << ".word " << (j | ((j + 1) << 16)) << "\n";
  }
  out << ".org " << L::kTxUsed << "\n.space " << 4 + 8 * L::kQSize << "\n";
  return out.str();
}

// Emits the queue-configuration preamble for both vnet queues.
std::string VnetSetup() {
  using L = VnetLayout;
  std::ostringstream out;
  out << "    li gp, VNET_BASE\n"
         "    li t0, PIC_BASE\n"
         "    li t1, VNET_IRQ_BIT\n"
         "    sw t1, 4(t0)\n";
  struct QueueCfg {
    uint32_t sel, desc, avail, used;
  };
  for (const QueueCfg& q : {QueueCfg{0, L::kRxDesc, L::kRxAvail, L::kRxUsed},
                            QueueCfg{1, L::kTxDesc, L::kTxAvail, L::kTxUsed}}) {
    out << "    li t1, " << q.sel << "\n"
           "    sw t1, 0x04(gp)\n"
           "    li t1, " << L::kQSize << "\n"
           "    sw t1, 0x08(gp)\n"
           "    li t1, " << q.desc << "\n"
           "    sw t1, 0x0C(gp)\n"
           "    li t1, " << q.avail << "\n"
           "    sw t1, 0x10(gp)\n"
           "    li t1, " << q.used << "\n"
           "    sw t1, 0x14(gp)\n"
           "    li t1, 1\n"
           "    sw t1, 0x18(gp)\n";
  }
  return out.str();
}

constexpr char kVnetAckIrq[] =
    "    li t1, 1\n"
    "    sw t1, 0x24(gp)          ; ack ISR\n"
    "    li t0, PIC_BASE\n"
    "    li t1, VNET_IRQ_BIT\n"
    "    sw t1, 8(t0)\n";

}  // namespace

std::string VirtioNetPingProgram(const NetParams& params) {
  using L = VnetLayout;
  uint32_t frame_bytes = 8 + params.payload_bytes;
  std::ostringstream out;
  out << Header();
  out << VnetRingData(frame_bytes);
  // TX frame: header {dst, len} + payload.
  out << ".org " << L::kTxBuf << "\n.word " << params.peer_mac << ", "
      << params.payload_bytes << "\n";
  for (uint32_t w = 0; w < params.payload_bytes / 4; w += 2) {
    out << ".word " << 0xA0000000u + w << ", " << 0xA0000000u + w + 1 << "\n";
  }

  out << ".org 0x10000\n_start:\n" << VnetSetup();
  out << "    li s0, 0                 ; round trips done\n"
         "    li s1, " << params.iterations << "\n"
         "    li s3, 0                 ; rx frames consumed\n"
         "ping:\n"
         "    li t0, " << L::kTxAvail << "\n"
         "    lhu t1, 2(t0)\n"
         "    addi t1, t1, 1\n"
         "    sh t1, 2(t0)\n"
         "    li a0, HC_KICK\n"
         "    li a1, 1                 ; slot 1 = virtio-net\n"
         "    li a2, 1                 ; tx queue\n"
         "    hcall\n"
         "wait_reply:\n"
         "    li t0, " << L::kRxUsed << "\n"
         "    lhu t1, 2(t0)\n"
         "    bne t1, s3, got_reply\n"
         "    wfi\n"
      << kVnetAckIrq
      << "    j wait_reply\n"
         "got_reply:\n"
         "    addi s3, s3, 1\n"
         "    li t0, " << L::kRxAvail << "\n"
         "    lhu t1, 2(t0)\n"
         "    addi t1, t1, 1\n"
         "    sh t1, 2(t0)             ; repost the buffer\n"
         "    li a0, HC_KICK\n"
         "    li a1, 1\n"
         "    li a2, 0                 ; rx queue kick (buffer repost)\n"
         "    hcall\n"
      << kBumpProgress
      << "    addi s0, s0, 1\n";
  if (params.iterations != 0) {
    out << "    bltu s0, s1, ping\n" << kShutdown;
  } else {
    out << "    j ping\n";
  }
  return out.str();
}

std::string VirtioNetEchoProgram(uint32_t payload_bytes) {
  using L = VnetLayout;
  uint32_t frame_bytes = 8 + payload_bytes;
  std::ostringstream out;
  out << Header();
  out << VnetRingData(frame_bytes);
  out << ".org " << L::kTxBuf << "\n.space " << frame_bytes << "\n";

  out << ".org 0x10000\n_start:\n" << VnetSetup();
  out << "    li s3, 0                 ; rx frames consumed\n"
         "echo_wait:\n"
         "    li t0, " << L::kRxUsed << "\n"
         "    lhu t1, 2(t0)\n"
         "    bne t1, s3, got_frame\n"
         "    wfi\n"
      << kVnetAckIrq
      << "    j echo_wait\n"
         "got_frame:\n"
         // Locate the consumed buffer: used.ring[s3 % qsize].id.
         "    andi t1, s3, " << (L::kQSize - 1) << "\n"
         "    slli t1, t1, 3\n"
         "    li t0, " << L::kRxUsed + 4 << "\n"
         "    add t0, t0, t1\n"
         "    lw t2, 0(t0)             ; descriptor id\n"
         "    li t0, " << L::kRxBuf << "\n"
         "    slli t2, t2, 11          ; id * 2048\n"
         "    add t0, t0, t2           ; rx frame base\n"
         "    lw t1, 0(t0)             ; src\n"
         "    lw t2, 4(t0)             ; len\n"
         "    li t0, " << L::kTxBuf << "\n"
         "    sw t1, 0(t0)             ; dst = src\n"
         "    sw t2, 4(t0)             ; len = len\n"
         "    addi s3, s3, 1\n"
         "    li t0, " << L::kRxAvail << "\n"
         "    lhu t1, 2(t0)\n"
         "    addi t1, t1, 1\n"
         "    sh t1, 2(t0)             ; repost rx buffer\n"
         "    li t0, " << L::kTxAvail << "\n"
         "    lhu t1, 2(t0)\n"
         "    addi t1, t1, 1\n"
         "    sh t1, 2(t0)\n"
         "    li a0, HC_KICK\n"
         "    li a1, 1\n"
         "    li a2, 1                 ; send the reply\n"
         "    hcall\n"
      << kBumpProgress
      << "    j echo_wait\n";
  return out.str();
}

// ---------------------------------------------------------------------------
// Virtio network bulk stream/sink (F8 throughput drivers)
// ---------------------------------------------------------------------------

namespace {

struct VnetBulkLayout {
  static constexpr uint32_t kQSize = 128;
  static constexpr uint32_t kRxDesc = 0x30000;
  static constexpr uint32_t kRxAvail = 0x30800;
  static constexpr uint32_t kRxUsed = 0x30A00;
  static constexpr uint32_t kTxDesc = 0x32000;
  static constexpr uint32_t kTxAvail = 0x32800;
  static constexpr uint32_t kTxUsed = 0x32A00;
  static constexpr uint32_t kRxBuf = 0x34000;   // 128 x 2048
  static constexpr uint32_t kTxBuf = 0x74000;   // 128 x 2048
  static constexpr uint32_t kBufStride = 2048;
  // used_event lives in the halfword after each avail ring.
  static constexpr uint32_t kTxUsedEvent = kTxAvail + 4 + 2 * kQSize;
  static constexpr uint32_t kRxUsedEvent = kRxAvail + 4 + 2 * kQSize;
};

// Both rings fully structured: RX buffers pre-posted (avail.idx = qsize),
// TX descriptors each covering their own frame buffer, used_event words
// zeroed. Frame/buffer contents stay image-zero (deterministic payloads).
std::string VnetBulkRingData(uint32_t tx_frame_bytes) {
  using L = VnetBulkLayout;
  std::ostringstream out;
  out << ".org " << L::kRxDesc << "\n";
  for (uint32_t i = 0; i < L::kQSize; ++i) {
    out << ".word " << L::kRxBuf + i * L::kBufStride << ", " << L::kBufStride << ", 2\n";
  }
  out << ".org " << L::kRxAvail << "\n.word " << (L::kQSize << 16) << "\n";  // idx = qsize
  for (uint32_t j = 0; j < L::kQSize; j += 2) {
    out << ".word " << (j | ((j + 1) << 16)) << "\n";
  }
  out << ".word 0\n";  // used_event
  out << ".org " << L::kRxUsed << "\n.space " << 4 + 8 * L::kQSize << "\n";

  out << ".org " << L::kTxDesc << "\n";
  for (uint32_t i = 0; i < L::kQSize; ++i) {
    out << ".word " << L::kTxBuf + i * L::kBufStride << ", " << tx_frame_bytes << ", 0\n";
  }
  out << ".org " << L::kTxAvail << "\n.word 0\n";
  for (uint32_t j = 0; j < L::kQSize; j += 2) {
    out << ".word " << (j | ((j + 1) << 16)) << "\n";
  }
  out << ".word 0\n";  // used_event
  out << ".org " << L::kTxUsed << "\n.space " << 4 + 8 * L::kQSize << "\n";
  return out.str();
}

std::string VnetBulkSetup(bool event_idx) {
  using L = VnetBulkLayout;
  std::ostringstream out;
  out << "    li gp, VNET_BASE\n"
         "    li t0, PIC_BASE\n"
         "    li t1, VNET_IRQ_BIT\n"
         "    sw t1, 4(t0)\n";
  if (event_idx) {
    out << "    li t1, 1\n"
           "    sw t1, 0x2C(gp)          ; ack EVENT_IDX\n";
  }
  struct QueueCfg {
    uint32_t sel, desc, avail, used;
  };
  for (const QueueCfg& q : {QueueCfg{0, L::kRxDesc, L::kRxAvail, L::kRxUsed},
                            QueueCfg{1, L::kTxDesc, L::kTxAvail, L::kTxUsed}}) {
    out << "    li t1, " << q.sel << "\n"
           "    sw t1, 0x04(gp)\n"
           "    li t1, " << L::kQSize << "\n"
           "    sw t1, 0x08(gp)\n"
           "    li t1, " << q.desc << "\n"
           "    sw t1, 0x0C(gp)\n"
           "    li t1, " << q.avail << "\n"
           "    sw t1, 0x10(gp)\n"
           "    li t1, " << q.used << "\n"
           "    sw t1, 0x14(gp)\n"
           "    li t1, 1\n"
           "    sw t1, 0x18(gp)\n";
  }
  return out.str();
}

}  // namespace

std::string VirtioNetStreamProgram(const NetStreamParams& params) {
  using L = VnetBulkLayout;
  uint32_t payload =
      std::min<uint32_t>(std::max<uint32_t>(params.payload_bytes, 4), L::kBufStride - 8);
  uint32_t batch = std::min<uint32_t>(std::max<uint32_t>(params.batch, 1), L::kQSize / 2);
  std::ostringstream out;
  out << Header();
  out << VnetBulkRingData(8 + payload);
  // Frame headers {dst, len}; payloads stay image-zero.
  for (uint32_t i = 0; i < L::kQSize; ++i) {
    out << ".org " << L::kTxBuf + i * L::kBufStride << "\n.word " << params.peer_mac << ", "
        << payload << "\n";
  }

  out << ".org 0x10000\n_start:\n" << VnetBulkSetup(params.event_idx);
  out << "    li s0, 0                 ; frames published (u32)\n"
         "send_loop:\n"
         "    li t0, " << L::kTxUsed << "\n"
         "    lhu t1, 2(t0)            ; completions (u16)\n"
         "    slli t2, s0, 16\n"
         "    srli t2, t2, 16          ; published (u16)\n"
         "    sub t3, t2, t1\n"
         "    slli t3, t3, 16\n"
         "    srli t3, t3, 16          ; in flight\n"
         "    li a3, " << L::kQSize - batch << "\n"
         "    bgeu a3, t3, have_room\n";
  if (params.event_idx) {
    // Ring full: ask for exactly one interrupt, when enough completions
    // have landed to make room for the next batch (used crosses
    // published - (qsize - batch)). Then re-check room — the crossing may
    // have happened before the arm — and sleep.
    out << "    addi a3, t2, -" << L::kQSize - batch + 1 << "\n"
           "    slli a3, a3, 16\n"
           "    srli a3, a3, 16\n"
           "    li t0, " << L::kTxUsedEvent << "\n"
           "    sh a3, 0(t0)             ; used_event = room-for-batch point\n"
           "    li t0, " << L::kTxUsed << "\n"
           "    lhu t1, 2(t0)\n"
           "    sub t3, t2, t1\n"
           "    slli t3, t3, 16\n"
           "    srli t3, t3, 16\n"
           "    li a3, " << L::kQSize - batch << "\n"
           "    bgeu a3, t3, have_room   ; the arm raced the completions\n";
  } else {
    // Ring full, no EVENT_IDX: every completion interrupts anyway; sleep
    // until the used index moves at all.
    out << "    li t0, " << L::kTxUsed << "\n"
           "    lhu a3, 2(t0)\n"
           "    bne a3, t1, send_loop    ; progress raced the check\n";
  }
  out << "    wfi\n"
      << kVnetAckIrq
      << "    j send_loop\n"
         "have_room:\n"
         "    addi s0, s0, " << batch << "\n";
  if (params.event_idx) {
    // Park used_event at the new published index: completions can never
    // cross it, so the TX queue stays silent until ring_full re-arms.
    out << "    slli t2, s0, 16\n"
           "    srli t2, t2, 16\n"
           "    li t0, " << L::kTxUsedEvent << "\n"
           "    sh t2, 0(t0)\n";
  }
  out << "    li t0, " << L::kTxAvail << "\n"
         "    lhu t3, 2(t0)\n"
         "    addi t3, t3, " << batch << "\n"
         "    sh t3, 2(t0)             ; publish the batch\n";
  if (params.honor_no_notify) {
    out << "    li t0, " << L::kTxUsed << "\n"
           "    lhu a3, 0(t0)            ; used.flags\n"
           "    andi a3, a3, 1\n"
           "    bnez a3, after_kick      ; device is polling: doorbell saved\n";
  }
  out << "    li a0, HC_KICK\n"
         "    li a1, 1                 ; slot 1 = virtio-net\n"
         "    li a2, 1                 ; tx queue\n"
         "    hcall\n"
         "after_kick:\n";
  if (!params.event_idx) {
    // Seed path: every drained batch interrupts; pay the ack cost here.
    out << kVnetAckIrq;
  }
  out << "    la t3, progress\n"
         "    lw t2, 0(t3)\n"
         "    addi t2, t2, " << batch << "\n"
         "    sw t2, 0(t3)\n"
         "    j send_loop\n";
  return out.str();
}

std::string VirtioNetSinkProgram(const NetStreamParams& params) {
  using L = VnetBulkLayout;
  std::ostringstream out;
  out << Header();
  out << VnetBulkRingData(8 + 4);  // TX unused: minimal frame
  out << ".org 0x10000\n_start:\n" << VnetBulkSetup(params.event_idx);
  out << "    li s3, 0                 ; frames consumed (u32)\n"
         "sink_loop:\n"
         "    li t0, " << L::kRxUsed << "\n"
         "    lhu t1, 2(t0)            ; delivered (u16)\n"
         "    slli t2, s3, 16\n"
         "    srli t2, t2, 16          ; consumed (u16)\n"
         "    beq t1, t2, sink_idle\n"
         "    sub t3, t1, t2\n"
         "    slli t3, t3, 16\n"
         "    srli t3, t3, 16          ; fresh frames\n"
         "    add s3, s3, t3\n"
         "    li t0, " << L::kRxAvail << "\n"
         "    lhu a3, 2(t0)\n"
         "    add a3, a3, t3\n"
         "    sh a3, 2(t0)             ; repost the consumed buffers\n"
         "    li a0, HC_KICK\n"
         "    li a1, 1\n"
         "    li a2, 0                 ; rx kick: refill from any backlog\n"
         "    hcall\n"
         "    la t0, progress\n"
         "    lw a3, 0(t0)\n"
         "    add a3, a3, t3\n"
         "    sw a3, 0(t0)\n"
         "    j sink_loop\n"
         "sink_idle:\n";
  if (params.event_idx) {
    // Arm the delivery interrupt only when idle: while the loop keeps up,
    // used_event trails behind and deliveries stay silent.
    out << "    li t0, " << L::kRxUsedEvent << "\n"
           "    sh t2, 0(t0)             ; used_event = consumed\n"
           "    li t0, " << L::kRxUsed << "\n"
           "    lhu t1, 2(t0)\n"
           "    bne t1, t2, sink_loop    ; delivery raced the arm\n";
  }
  out << "    wfi\n"
      << kVnetAckIrq
      << "    j sink_loop\n";
  return out.str();
}

std::string EmulatedNetStreamProgram(const NetStreamParams& params) {
  uint32_t payload = std::max<uint32_t>(params.payload_bytes & ~3u, 4);
  uint32_t nwords = payload / 4;
  std::ostringstream out;
  out << Header();
  out << "_start:\n"
         "    li gp, NET_BASE\n"
         "    li s0, 0\n"
         "stream:\n"
         "    sw zero, 0x1C(gp)        ; rewind data pointer\n"
         "    li t2, " << nwords << "\n"
         "    mv t3, s0\n"
         "fill:\n"
         "    sw t3, 0x10(gp)          ; one exit per word\n"
         "    addi t3, t3, 1\n"
         "    addi t2, t2, -1\n"
         "    bnez t2, fill\n"
         "    li t1, " << payload << "\n"
         "    sw t1, 0x00(gp)          ; TX_LEN\n"
         "    li t1, " << params.peer_mac << "\n"
         "    sw t1, 0x04(gp)          ; TX_DST\n"
         "    li t1, 1\n"
         "    sw t1, 0x08(gp)          ; SEND\n"
      << kBumpProgress
      << "    addi s0, s0, 1\n"
         "    j stream\n";
  return out.str();
}

std::string EmulatedNetSinkProgram() {
  std::ostringstream out;
  out << Header();
  out << "_start:\n"
         "    li gp, NET_BASE\n"
         "    li t0, PIC_BASE\n"
         "    li t1, NET_IRQ_BIT\n"
         "    sw t1, 4(t0)\n"
         "sink_wait:\n"
         "    wfi\n"
         "    li t0, PIC_BASE\n"
         "    li t1, NET_IRQ_BIT\n"
         "    sw t1, 8(t0)             ; ack the line\n"
         "pop:\n"
         "    li t1, 2\n"
         "    sw t1, 0x08(gp)          ; latch next frame\n"
         "    lw t2, 0x14(gp)          ; RX_LEN\n"
         "    beqz t2, sink_wait\n"
      << kBumpProgress
      << "    lw t1, 0x0C(gp)          ; more frames queued?\n"
         "    andi t1, t1, 1\n"
         "    bnez t1, pop\n"
         "    j sink_wait\n";
  return out.str();
}

}  // namespace hyperion::guest
