// Guest software: generators for HV32 assembly programs.
//
// These are the "guest OS + applications" of hyperion's experiments: compute
// kernels, memory-touch and page-table-churn loops, dirty-page generators
// for migration, I/O drivers for the emulated and virtio devices, a balloon
// driver, and idle/interactive tick loops.
//
// Conventions shared by all programs:
//  * a `progress` word (symbol "progress") counts completed work units; the
//    host polls it via image.SymbolAddress(kProgressSymbol).
//  * programs either HALT / shutdown when their work bound is reached, or
//    run forever when constructed with iterations == 0.
//  * unless stated otherwise, programs run in supervisor mode with paging
//    off (bare identity addressing).

#ifndef SRC_GUEST_PROGRAMS_H_
#define SRC_GUEST_PROGRAMS_H_

#include <cstdint>
#include <string>

#include "src/asm/assembler.h"

namespace hyperion::guest {

inline constexpr char kProgressSymbol[] = "progress";

// Assembles a program source (thin wrapper with a better error prefix).
Result<assembler::Image> Build(const std::string& source);

// Reads the progress counter convention out of an image.
Result<uint32_t> ProgressAddress(const assembler::Image& image);

// --- CPU workloads ----------------------------------------------------------

// Prints `message` through the console hypercall, then shuts down.
std::string HelloProgram(const std::string& message);

// Integer-heavy kernel; progress++ per outer iteration. iterations == 0
// runs forever.
std::string ComputeProgram(uint32_t iterations);

// Idle/interactive tick: a timer fires every `period_cycles`; the handler
// bumps progress and re-arms. Models the mostly idle server VMs of a
// consolidation rack.
std::string IdleTickProgram(uint32_t period_cycles);

struct SmcChurnParams {
  uint32_t funcs = 64;        // page-aligned helper functions (power of two)
  uint32_t sweeps = 50;       // outer iterations; each patches one function
  uint32_t kernel_iters = 200;  // hot compute-loop iterations per sweep
};
// Code-churn workload for the DBT translation cache: every sweep runs a hot
// compute kernel, calls `funcs` page-aligned helpers (one translated block
// per page), then rewrites the first instruction of one helper (self-
// modifying code). The helper working set exceeds small translation caches,
// so the sweep alternates capacity pressure with per-page SMC invalidation —
// a full-flush eviction policy retranslates the hot kernel every sweep, a
// surgical one never does. progress++ per sweep.
std::string SmcChurnProgram(const SmcChurnParams& params);

// SMP workload: the boot vCPU starts every secondary via kStartVcpu; each
// worker increments its own counter (progress + 4*hartid) `work` times and
// halts. The boot vCPU spins until all workers finish, stores the grand
// total in progress[0], and shuts the VM down. Requires num_vcpus >= 2.
std::string SmpCounterProgram(uint32_t work_per_vcpu);

struct SmpLockParams {
  uint32_t num_vcpus = 4;    // must match the VM config (1..16)
  uint32_t lock_iters = 64;  // lock acquisitions per vCPU
  // Remap+IPI rounds initiated by vCPU 0. Max 255: round r remaps the probe
  // VA to pa 0x300000 + r*0x1000, and the prefill store that seeds the page
  // must stay inside the 4 MiB identity superpage (pa < 0x400000).
  uint32_t shootdown_rounds = 3;
};
// The SMP coherence gauntlet, run under guest paging. All vCPUs warm a TLB
// entry for a probe VA, then vCPU 0 remaps it `shootdown_rounds` times; each
// round follows the shootdown protocol: write PTE, local sfence, IPI the
// siblings through the PIC doorbell, spin on their memory acks. A sibling's
// IPI handler runs sfence (the remote half), acks the doorbell, then the
// memory word. Afterwards every vCPU re-reads the probe VA — a stale sibling
// TLB surfaces as a wrong value. Then an MCS-lock benchmark (amoswap, with
// the swap-only release of Mellor-Crummey & Scott) increments a shared
// counter `lock_iters` times per vCPU, phases separated by sense-reversing
// barriers (amoadd). progress = num_vcpus * lock_iters on success, 0 on any
// coherence or mutual-exclusion failure. Needs >= 8 MiB guest RAM.
std::string SmpMcsLockProgram(const SmpLockParams& params);

// --- Memory workloads -------------------------------------------------------

// The boot stub from the test suite, exported for reuse: identity 4 MiB
// superpage (user-accessible) + MMIO superpage; enables paging. Guest RAM
// must be at least 8 MiB when this prelude is used.
std::string PagingBootPrelude();

struct MemTouchParams {
  uint32_t pages = 64;          // working-set size
  uint32_t stride_bytes = 64;   // touch granularity
  uint32_t iterations = 0;      // sweeps; 0 = forever
  bool with_paging = true;      // run under guest paging (exercises the MMU)
};
// Read-modify-write sweeps over a region; progress++ per sweep.
std::string MemTouchProgram(const MemTouchParams& params);

// Remaps one VA between two physical pages `iterations` times (PT churn:
// the shadow-vs-nested discriminator). Runs under paging. progress++ per
// remap pair.
std::string PtChurnProgram(uint32_t iterations);

// Dirties `pages` pages round-robin, spacing writes with `compute_per_write`
// ALU iterations (controls the dirty rate). Runs forever; progress++ per
// full sweep.
std::string DirtyRateProgram(uint32_t pages, uint32_t compute_per_write);

// Fills `pages` pages with deterministic content: page i gets words of value
// (i < shared_pages ? i : seed*2654435761 + i). VMs with equal shared_pages
// share that prefix byte-for-byte (KSM fodder). Parks forever afterwards.
std::string PatternFillProgram(uint32_t pages, uint32_t shared_pages, uint32_t seed);

// Balloon driver: polls the host target and inflates/deflates using pages
// from [free_base_page, free_base_page + max_pages). Polls every
// `poll_cycles` via timer+wfi. Runs forever.
std::string BalloonDriverProgram(uint32_t free_base_page, uint32_t max_pages,
                                 uint32_t poll_cycles);

// --- I/O workloads ----------------------------------------------------------

struct BlkIoParams {
  uint32_t iterations = 100;      // commands (emulated) or kicks (virtio)
  uint32_t sectors = 4;           // sectors per request (1..8)
  uint32_t batch = 4;             // virtio only: requests per kick
  bool write = true;              // write vs read
  bool kick_with_hypercall = true;  // virtio doorbell: hypercall vs MMIO
};

// Drives the emulated PIO block device; progress++ per command.
std::string EmulatedBlkProgram(const BlkIoParams& params);

// Drives virtio-blk with pre-built rings; progress++ per kick (batch).
std::string VirtioBlkProgram(const BlkIoParams& params);

struct NetParams {
  uint32_t peer_mac = 2;        // destination address
  uint32_t payload_bytes = 256; // frame payload (multiple of 4)
  uint32_t iterations = 100;    // round trips; 0 = forever
};

// Request/response pair over the emulated PIO NIC. The ping side counts
// round trips in progress; the echo side reflects frames forever.
std::string EmulatedNetPingProgram(const NetParams& params);
std::string EmulatedNetEchoProgram();

// Same pair over virtio-net.
std::string VirtioNetPingProgram(const NetParams& params);
std::string VirtioNetEchoProgram(uint32_t payload_bytes = 256);

// Bulk unidirectional traffic for the F8 throughput experiments: a stream
// VM pushes frames at a sink VM as fast as the data plane allows.
struct NetStreamParams {
  uint32_t peer_mac = 2;         // the sink's address
  uint32_t payload_bytes = 256;  // frame payload (multiple of 4)
  uint32_t batch = 64;           // frames published per doorbell (virtio)
  bool event_idx = true;         // negotiate EVENT_IDX interrupt coalescing
  bool honor_no_notify = true;   // skip doorbells while the device polls
};

// Virtio-net bulk sender: 128-entry rings, `batch` frames per doorbell.
// With event_idx it parks used_event at the published index so TX
// completions stay silent, and when the ring fills it arms used_event at
// the room-for-one-batch point (one interrupt per batch); with
// batch=1/event_idx=false/honor_no_notify=false it reproduces the
// kick-per-frame, interrupt-per-frame seed path. Runs forever.
std::string VirtioNetStreamProgram(const NetStreamParams& params);
// Virtio-net bulk receiver: consumes used entries in batches, reposts the
// buffers, and (with event_idx) arms used_event only when idle.
std::string VirtioNetSinkProgram(const NetStreamParams& params);

// PIO baseline pair: the stream side pays one exit per payload word, the
// sink side takes one interrupt per frame.
std::string EmulatedNetStreamProgram(const NetStreamParams& params);
std::string EmulatedNetSinkProgram();

}  // namespace hyperion::guest

#endif  // SRC_GUEST_PROGRAMS_H_
