#include "src/guest/programs.h"

#include <sstream>

#include "src/isa/hv32.h"

namespace hyperion::guest {

namespace {

// Common image header: a jump over the progress word plus hypercall numbers.
// The progress word gets a page of its own: it is stored to on every outer
// iteration, and a store into a code page forces the DBT to throw away every
// translation on that page (see ExecutionEngine::InvalidateCodePage), which
// no sane guest layout does in steady state.
std::string Header() {
  return R"(.org 0x1000
.equ HC_PUTCHAR, 0
.equ HC_WRITE, 1
.equ HC_YIELD, 2
.equ HC_GETTIME, 3
.equ HC_SHUTDOWN, 4
.equ HC_INFLATE, 5
.equ HC_DEFLATE, 6
.equ HC_KICK, 7
.equ HC_LOG, 8
.equ HC_TARGET, 9
.equ PIC_BASE, 0xF0001000
    j _start
.align 4096
progress:
    .word 0
.align 4096
)";
}

// Emits "progress += 1" (clobbers t2, t3).
constexpr char kBumpProgress[] = R"(
    la t3, progress
    lw t2, 0(t3)
    addi t2, t2, 1
    sw t2, 0(t3)
)";

constexpr char kShutdown[] = R"(
    li a0, HC_SHUTDOWN
    hcall
    halt
)";

}  // namespace

Result<assembler::Image> Build(const std::string& source) {
  auto image = assembler::Assemble(source);
  if (!image.ok()) {
    return InternalError("guest program failed to assemble: " + image.status().message());
  }
  return image;
}

Result<uint32_t> ProgressAddress(const assembler::Image& image) {
  return image.SymbolAddress(kProgressSymbol);
}

std::string HelloProgram(const std::string& message) {
  std::ostringstream out;
  out << Header();
  out << "_start:\n"
         "    li a0, HC_WRITE\n"
         "    la a1, msg\n"
         "    li a2, "
      << message.size()
      << "\n"
         "    hcall\n"
      << kBumpProgress << kShutdown;
  out << "msg:\n    .ascii \"";
  for (char c : message) {
    switch (c) {
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      default:
        out << c;
    }
  }
  out << "\"\n";
  return out.str();
}

std::string ComputeProgram(uint32_t iterations) {
  std::ostringstream out;
  out << Header();
  out << "_start:\n"
         "    li s0, 0\n"
         "    li s1, " << iterations << "\n"
         "outer:\n"
         "    li t0, 7\n"
         "    li t1, 13\n"
         "    li s2, 64\n"
         "inner:\n"
         "    mul t1, t1, t0\n"
         "    addi t1, t1, 3\n"
         "    xor t0, t0, t1\n"
         "    srli t2, t1, 3\n"
         "    add t0, t0, t2\n"
         "    sltu t2, t0, t1\n"
         "    add t1, t1, t2\n"
         "    addi s2, s2, -1\n"
         "    bnez s2, inner\n"
      << kBumpProgress
      << "    addi s0, s0, 1\n";
  if (iterations != 0) {
    out << "    bltu s0, s1, outer\n" << kShutdown;
  } else {
    out << "    j outer\n";
  }
  return out.str();
}

std::string IdleTickProgram(uint32_t period_cycles) {
  std::ostringstream out;
  out << Header();
  out << "_start:\n"
         "    la t0, handler\n"
         "    csrw tvec, t0\n"
         "    li t1, " << period_cycles << "\n"
         "    csrw timecmp, t1\n"
         "    csrr t1, status\n"
         "    ori t1, t1, 1\n"
         "    csrw status, t1\n"
         "idle:\n"
         "    wfi\n"
         "    j idle\n"
         "handler:\n"
      << kBumpProgress
      << "    li t1, " << period_cycles << "\n"
         "    csrw timecmp, t1\n"
         "    sret\n";
  return out.str();
}

std::string SmcChurnProgram(const SmcChurnParams& params) {
  std::ostringstream out;
  out << Header();
  out << "_start:\n"
         "    li s0, " << params.sweeps << "\n"
         "    li s1, 0\n"            // patch rotation counter
         "    li a0, 0\n"
         "    li a1, 0\n"
         "    li a2, 0\n"
         "sweep:\n"
         // Hot compute kernel: the block the eviction policy should protect.
         "    li t0, 7\n"
         "    li t1, 13\n"
         "    li s2, " << params.kernel_iters << "\n"
         "kern:\n"
         "    mul t1, t1, t0\n"
         "    addi t1, t1, 3\n"
         "    xor t0, t0, t1\n"
         "    srli t2, t1, 3\n"
         "    add t0, t0, t2\n"
         "    sltu t2, t0, t1\n"
         "    add t1, t1, t2\n"
         "    addi s2, s2, -1\n"
         "    bnez s2, kern\n"
         // Call a rotating window of 8 helpers via computed jumps. Each sweep
         // brings 8 new one-shot blocks into the cache, so capacity pressure
         // builds across sweeps while the kernel stays the only reusable
         // block: a full-flush policy throws the kernel away with the cold
         // helpers, a surgical one keeps it.
         "    li s2, 0\n"
         "winloop:\n"
         "    slli t0, s1, 3\n"
         "    add t0, t0, s2\n"
         "    andi t0, t0, " << (params.funcs - 1) << "\n"
         "    slli t0, t0, 12\n"
         "    la t1, f0\n"
         "    add t1, t1, t0\n"
         "    jalr t1\n"
         "    addi s2, s2, 1\n"
         "    slti t0, s2, 8\n"
         "    bnez t0, winloop\n";
  // Rewrite the first instruction of one helper (rotating), alternating
  // between two one-instruction bodies so the code genuinely changes.
  out << "    andi t0, s1, " << (params.funcs - 1) << "\n"
         "    slli t0, t0, 12\n"
         "    la t1, f0\n"
         "    add t1, t1, t0\n"
         "    andi t2, s1, 1\n"
         "    la t3, patch_a\n"
         "    bnez t2, do_patch\n"
         "    la t3, patch_b\n"
         "do_patch:\n"
         "    lw t2, 0(t3)\n"
         "    sw t2, 0(t1)\n"
         "    addi s1, s1, 1\n"
      << kBumpProgress
      << "    addi s0, s0, -1\n"
         "    bnez s0, sweep\n"
      << kShutdown;
  for (uint32_t i = 0; i < params.funcs; ++i) {
    out << ".align 4096\n"
           "f" << i << ":\n"
           "    addi a0, a0, 1\n"
           "    xor a1, a1, a0\n"
           "    add a1, a1, a0\n"
           "    srli a2, a0, 1\n"
           "    add a1, a1, a2\n"
           "    ret\n";
  }
  out << "patch_a:\n"
         "    addi a0, a0, 1\n"
         "patch_b:\n"
         "    addi a0, a0, 2\n";
  return out.str();
}

std::string SmpCounterProgram(uint32_t work_per_vcpu) {
  std::ostringstream out;
  out << R"(.org 0x1000
.equ HC_SHUTDOWN, 4
.equ HC_START_VCPU, 10
.equ HC_VCPU_COUNT, 11
    j _start
.align 8
progress:
    .word 0
counters:
    .space 64              ; one word per possible vCPU
_start:
    li a0, HC_VCPU_COUNT
    hcall
    mv s1, a0              ; total vCPUs
    li s0, 1
start_loop:
    bgeu s0, s1, wait_workers
    li a0, HC_START_VCPU
    mv a1, s0
    la a2, worker
    mv a3, s0              ; worker receives its hart index in a0
    hcall
    addi s0, s0, 1
    j start_loop

worker:
    la t3, counters
    slli t1, a0, 2
    add t3, t3, t1         ; this worker's counter slot
    li t2, )" << work_per_vcpu << R"(
wloop:
    lw t0, 0(t3)
    addi t0, t0, 1
    sw t0, 0(t3)
    addi t2, t2, -1
    bnez t2, wloop
    halt                   ; worker vCPU is done

wait_workers:
    li s0, 1               ; re-scan until every counter reaches the target
    li s2, 0               ; running total
check:
    bgeu s0, s1, maybe_done
    la t3, counters
    slli t1, s0, 2
    add t3, t3, t1
    lw t0, 0(t3)
    li t1, )" << work_per_vcpu << R"(
    bltu t0, t1, wait_workers
    add s2, s2, t0
    addi s0, s0, 1
    j check
maybe_done:
    la t3, progress
    sw s2, 0(t3)
    li a0, HC_SHUTDOWN
    hcall
    halt
)";
  return out.str();
}

std::string SmpMcsLockProgram(const SmpLockParams& params) {
  const uint32_t n = params.num_vcpus;
  const uint32_t sibling_mask = ((1u << n) - 1u) & ~1u;
  const uint32_t expect_val = 0xB0B0 + params.shootdown_rounds;
  std::ostringstream out;
  out << R"(.org 0x1000
.equ HC_SHUTDOWN, 4
.equ HC_START_VCPU, 10
.equ PIC_BASE, 0xF0001000
.equ PT_ROOT, 0x80000
.equ VA_PAGE, 0x400000
    j _start
.align 4096
progress:
    .word 0
mcs_tail:
    .word 0
bar_count:
    .word 0
bar_sense:
    .word 0
rounds_done:
    .word 0
shared:
    .word 0
acks:
    .space 64              ; one word per possible vCPU
results:
    .space 64              ; probe value each vCPU observed after the rounds
qnodes:
    .space 256             ; MCS qnode per vCPU: +0 next, +4 locked
save:
    .space 256             ; IPI handler register save area per vCPU
.align 4096
_start:
    ; Page tables: identity 4MiB superpage, MMIO superpage, and an L2 table
    ; so the probe VA has a remappable 4KiB leaf.
    li t0, PT_ROOT
    li t1, 0x7F              ; identity 4MiB superpage V|R|W|X|U|A|D
    sw t1, 0(t0)
    li t1, 0xF0000067        ; MMIO window superpage V|R|W|A|D
    li t2, PT_ROOT + 960*4
    sw t1, 0(t2)
    li t1, 0x82001           ; L1[1] -> L2 table at page 0x82
    li t2, PT_ROOT + 4
    sw t1, 0(t2)
    li t0, 0x82000
    li t1, 0x30006F          ; VA_PAGE -> pa 0x300000 initially
    sw t1, 0(t0)
    li t0, 0x300000          ; round-0 probe value
    li t1, 0xB0B0
    sw t1, 0(t0)
    li s0, 1
start_loop:
    li t0, )" << n << R"(
    bgeu s0, t0, boot_done
    li a0, HC_START_VCPU
    mv a1, s0
    la a2, secondary
    mv a3, s0                ; worker receives its hart index in a0
    hcall
    addi s0, s0, 1
    j start_loop
boot_done:
    li a0, 0
secondary:
    mv s1, a0                ; s1 = hartid, for the rest of the run
    li t1, 0x80
    csrw ptbr, t1
    la t0, ipi_handler
    csrw tvec, t0
    la gp, save              ; gp = this vCPU's handler save area
    slli t0, s1, 4
    add gp, gp, t0
    la s2, qnodes            ; s2 = this vCPU's MCS qnode
    slli t0, s1, 4
    add s2, s2, t0
    li s3, 0                 ; barrier sense
    csrr t0, status
    ori t0, t0, 0x11         ; STATUS.PG | STATUS.IE
    csrw status, t0

    ; --- Phase B: warm a TLB entry for the probe VA on every vCPU ----------
    jal barrier
    li t0, VA_PAGE
    lw t1, 0(t0)
    jal barrier

    ; --- Phase C: shootdown rounds -----------------------------------------
    bnez s1, wait_rounds
    li s0, 1                 ; vCPU 0 initiates round s0 = 1..R
init_round:
    li t0, )" << params.shootdown_rounds << R"(
    bgtu s0, t0, rounds_over
    li t0, 0x300000          ; prefill page (0x300 + round) with 0xB0B0+round
    slli t1, s0, 12
    add t0, t0, t1
    li t1, 0xB0B0
    add t1, t1, s0
    sw t1, 0(t0)
    li t0, 0x82000           ; remap VA_PAGE -> page (0x300 + round)
    li t1, 0x30006F
    slli t2, s0, 12
    add t1, t1, t2
    sw t1, 0(t0)
    sfence                   ; local half of the shootdown
    la t0, acks              ; clear sibling acks
    li t2, 1
clear_acks:
    li t1, )" << n << R"(
    bgeu t2, t1, acks_cleared
    slli t3, t2, 2
    add t3, t0, t3
    sw zero, 0(t3)
    addi t2, t2, 1
    j clear_acks
acks_cleared:
    li t0, PIC_BASE          ; kick every sibling's doorbell
    li t1, )" << sibling_mask << R"(
    sw t1, 0x14(t0)
    li t2, 1                 ; spin until every sibling has acked in memory
wait_acks:
    li t1, )" << n << R"(
    bgeu t2, t1, acks_in
    la t0, acks
    slli t3, t2, 2
    add t3, t0, t3
    lw t1, 0(t3)
    beqz t1, wait_acks
    addi t2, t2, 1
    j wait_acks
acks_in:
    la t0, rounds_done
    sw s0, 0(t0)
    addi s0, s0, 1
    j init_round
rounds_over:
    j after_rounds
wait_rounds:
    la t0, rounds_done       ; siblings wait out the rounds, taking IPIs
wait_rounds_spin:
    lw t1, 0(t0)
    li t2, )" << params.shootdown_rounds << R"(
    bltu t1, t2, wait_rounds_spin
after_rounds:
    jal barrier

    ; --- Phase D: every vCPU probes the remapped VA ------------------------
    li t0, VA_PAGE
    lw t1, 0(t0)             ; stale TLB => old page => wrong value
    la t0, results
    slli t2, s1, 2
    add t0, t0, t2
    sw t1, 0(t0)
    jal barrier

    ; --- Phase E: MCS-lock benchmark ---------------------------------------
    li s0, )" << params.lock_iters << R"(
lock_loop:
    jal mcs_acquire
    la t0, shared            ; non-atomic RMW: only the lock protects it
    lw t1, 0(t0)
    addi t1, t1, 1
    sltu t2, t1, t1          ; widen the lw->sw window across budget exits
    add t1, t1, t2
    sw t1, 0(t0)
    jal mcs_release
    addi s0, s0, -1
    bnez s0, lock_loop
    jal barrier

    ; --- Phase F: vCPU 0 grades the run ------------------------------------
    bnez s1, worker_done
    li s2, 0                 ; failure flag
    li s0, 0
check_loop:
    li t0, )" << n << R"(
    bgeu s0, t0, check_shared
    la t0, results
    slli t1, s0, 2
    add t0, t0, t1
    lw t1, 0(t0)
    li t2, )" << expect_val << R"(
    beq t1, t2, check_next
    li s2, 1
check_next:
    addi s0, s0, 1
    j check_loop
check_shared:
    la t0, shared
    lw t1, 0(t0)
    li t2, )" << n * params.lock_iters << R"(
    beq t1, t2, graded
    li s2, 1
graded:
    bnez s2, fail
    la t0, progress
    sw t1, 0(t0)
    j finish
fail:
    la t0, progress
    sw zero, 0(t0)
finish:
    li a0, HC_SHUTDOWN
    hcall
    halt
worker_done:
    halt

    ; --- IPI handler: the remote half of a TLB shootdown -------------------
    ; Doorbell ack must precede the memory ack: once the initiator sees the
    ; memory word it may raise the next round, and a raise onto a still-set
    ; doorbell bit is no edge (coalesced) -- the interrupt would be lost.
ipi_handler:
    sw t0, 0(gp)
    sw t1, 4(gp)
    sw t2, 8(gp)
    sw t3, 12(gp)
    sfence                   ; drop whatever the initiator just invalidated
    csrr t0, hartid
    li t1, PIC_BASE
    li t3, 1
    sll t3, t3, t0
    sw t3, 0x1C(t1)          ; IPI_ACK own doorbell bit (W1C)
    la t1, acks
    slli t2, t0, 2
    add t1, t1, t2
    li t2, 1
    sw t2, 0(t1)             ; memory ack the initiator spins on
    lw t3, 12(gp)
    lw t2, 8(gp)
    lw t1, 4(gp)
    lw t0, 0(gp)
    sret

    ; --- Sense-reversing barrier (amoadd); clobbers t0-t2, keeps s3 --------
barrier:
    xori s3, s3, 1
    la t0, bar_count
    li t1, 1
    amoadd t2, t0, t1
    li t1, )" << n - 1 << R"(
    bne t2, t1, bar_wait
    la t0, bar_count         ; last arrival: reset count, then publish sense
    sw zero, 0(t0)
    la t0, bar_sense
    sw s3, 0(t0)
    ret
bar_wait:
    la t0, bar_sense
bar_spin:
    lw t1, 0(t0)
    bne t1, s3, bar_spin
    ret

    ; --- MCS lock (amoswap); qnode in s2; clobbers t0-t3 -------------------
mcs_acquire:
    sw zero, 0(s2)           ; I->next = nil
    la t0, mcs_tail
    amoswap t1, t0, s2       ; pred = swap(tail, I)
    beqz t1, acq_done
    li t2, 1
    sw t2, 4(s2)             ; I->locked = true
    sw s2, 0(t1)             ; pred->next = I
acq_spin:
    lw t2, 4(s2)
    bnez t2, acq_spin
acq_done:
    ret

    ; Swap-only release (no compare-and-swap in HV32): detect usurpers that
    ; enqueued between our nil-swap and the tail restore.
mcs_release:
    lw t1, 0(s2)
    bnez t1, rel_grant
    la t0, mcs_tail
    amoswap t1, t0, zero     ; old_tail = swap(tail, nil)
    beq t1, s2, rel_done     ; no waiter: lock is free
    amoswap t2, t0, t1       ; usurper = swap(tail, old_tail)
rel_wait_next:
    lw t3, 0(s2)
    beqz t3, rel_wait_next   ; our successor is mid-enqueue; wait for the link
    beqz t2, rel_no_usurper
    sw t3, 0(t2)             ; splice our waiters behind the usurper's queue
    j rel_done
rel_no_usurper:
    sw zero, 4(t3)           ; grant to our successor
    j rel_done
rel_grant:
    sw zero, 4(t1)
rel_done:
    ret
)";
  return out.str();
}

std::string PagingBootPrelude() {
  return R"(.equ PT_ROOT, 0x80000
    li t0, PT_ROOT
    li t1, 0x7F              ; identity 4MiB superpage V|R|W|X|U|A|D
    sw t1, 0(t0)
    li t1, 0xF0000067        ; MMIO window superpage V|R|W|A|D
    li t2, PT_ROOT + 960*4
    sw t1, 0(t2)
    li t1, 0x80              ; root PT page number
    csrw ptbr, t1
    csrr t1, status
    ori t1, t1, 0x10         ; STATUS.PG
    csrw status, t1
)";
}

std::string MemTouchProgram(const MemTouchParams& params) {
  constexpr uint32_t kBase = 0x100000;
  std::ostringstream out;
  out << Header() << "_start:\n";
  if (params.with_paging) {
    out << PagingBootPrelude();
  }
  out << "    li s0, 0\n"
         "    li s1, " << params.iterations << "\n"
         "sweep_start:\n"
         "    li t0, " << kBase << "\n"
         "    li t1, " << kBase + params.pages * isa::kPageSize << "\n"
         "sweep:\n"
         "    lw t2, 0(t0)\n"
         "    addi t2, t2, 1\n"
         "    sw t2, 0(t0)\n"
         "    addi t0, t0, " << params.stride_bytes << "\n"
         "    bltu t0, t1, sweep\n"
      << kBumpProgress
      << "    addi s0, s0, 1\n";
  if (params.iterations != 0) {
    out << "    bltu s0, s1, sweep_start\n" << kShutdown;
  } else {
    out << "    j sweep_start\n";
  }
  return out.str();
}

std::string PtChurnProgram(uint32_t iterations) {
  std::ostringstream out;
  out << Header() << "_start:\n" << PagingBootPrelude();
  out << "    li t0, PT_ROOT + 4\n"
         "    li t1, 0x82001           ; L1[1] -> L2 table at page 0x82\n"
         "    sw t1, 0(t0)\n"
         "    li s0, 0x82000           ; L2 base\n"
         "    li s1, " << iterations << "\n"
         "    li s2, 0x400000          ; churned va\n"
         "churn:\n"
         "    li t1, 0x1006F           ; va -> pa 0x10000\n"
         "    sw t1, 0(s0)\n"
         "    sfence\n"
         "    sw s1, 0(s2)\n"
         "    li t1, 0x1106F           ; va -> pa 0x11000\n"
         "    sw t1, 0(s0)\n"
         "    sfence\n"
         "    sw s1, 0(s2)\n"
      << kBumpProgress
      << "    addi s1, s1, -1\n"
         "    bnez s1, churn\n"
      << kShutdown;
  return out.str();
}

std::string DirtyRateProgram(uint32_t pages, uint32_t compute_per_write) {
  constexpr uint32_t kBase = 0x100000;
  std::ostringstream out;
  out << Header();
  out << "_start:\n"
         "    li s2, " << kBase << "\n"
         "    li s3, " << kBase + pages * isa::kPageSize << "\n"
         "    mv t0, s2\n"
         "loop:\n"
         "    li t3, " << compute_per_write << "\n"
         "pad:\n"
         "    addi t3, t3, -1\n"
         "    bnez t3, pad\n"
         "    lw t2, 0(t0)\n"
         "    addi t2, t2, 1\n"
         "    sw t2, 0(t0)\n"
         "    addi t0, t0, 4096\n"
         "    bltu t0, s3, loop\n"
         "    mv t0, s2\n"
      << kBumpProgress
      << "    j loop\n";
  return out.str();
}

std::string PatternFillProgram(uint32_t pages, uint32_t shared_pages, uint32_t seed) {
  constexpr uint32_t kBase = 0x100000;
  uint32_t seed_const = seed * 2654435761u;
  std::ostringstream out;
  out << Header();
  out << "_start:\n"
         "    li s0, 0\n"
         "    li s1, " << pages << "\n"
         "    li s2, " << kBase << "\n"
         "page_loop:\n"
         "    li t1, " << shared_pages << "\n"
         "    bltu s0, t1, use_shared\n"
         "    li t2, " << seed_const << "\n"
         "    add t0, t2, s0\n"
         "    j fill\n"
         "use_shared:\n"
         "    mv t0, s0\n"
         "fill:\n"
         "    mv t1, s2\n"
         "    li t3, 1024\n"
         "w:\n"
         "    sw t0, 0(t1)\n"
         "    addi t1, t1, 4\n"
         "    addi t3, t3, -1\n"
         "    bnez t3, w\n"
         "    addi s2, s2, 4096\n"
         "    addi s0, s0, 1\n"
         "    bltu s0, s1, page_loop\n"
         "    la t3, progress\n"
         "    li t2, 1\n"
         "    sw t2, 0(t3)\n"
         "park:\n"
         "    wfi\n"
         "    j park\n";
  return out.str();
}

std::string BalloonDriverProgram(uint32_t free_base_page, uint32_t max_pages,
                                 uint32_t poll_cycles) {
  std::ostringstream out;
  out << Header();
  out << "_start:\n"
         "    li s0, 0                 ; currently ballooned\n"
         "    li s2, " << free_base_page << "\n"
         "loop:\n"
         "    li a0, HC_TARGET\n"
         "    hcall\n"
         "    mv s1, a0                ; target\n"
         "    li t1, " << max_pages << "\n"
         "    bleu s1, t1, clamped\n"
         "    mv s1, t1\n"
         "clamped:\n"
         "    la t3, progress\n"
         "    sw s0, 0(t3)             ; report current balloon size\n"
         "    beq s1, s0, wait\n"
         "    bltu s0, s1, inflate\n"
         "    addi s0, s0, -1          ; deflate one page\n"
         "    add a1, s2, s0\n"
         "    li a0, HC_DEFLATE\n"
         "    hcall\n"
         "    j loop\n"
         "inflate:\n"
         "    add a1, s2, s0\n"
         "    li a0, HC_INFLATE\n"
         "    hcall\n"
         "    addi s0, s0, 1\n"
         "    j loop\n"
         "wait:\n"
         "    li t1, " << poll_cycles << "\n"
         "    csrw timecmp, t1\n"
         "    wfi\n"
         "    j loop\n";
  return out.str();
}

}  // namespace hyperion::guest
