// Execution context shared by the interpreter and DBT engines.

#ifndef SRC_CPU_CONTEXT_H_
#define SRC_CPU_CONTEXT_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/cpu/state.h"
#include "src/mem/guest_memory.h"
#include "src/mmu/virtualizer.h"
#include "src/util/cost_model.h"
#include "src/util/phase.h"
#include "src/util/sim_clock.h"

namespace hyperion::cpu {

// CPU-virtualization flavor.
//
//  * kTrapAndEmulate — the guest kernel is deprivileged: every privileged
//    instruction (CSR access, sret, wfi, sfence, halt) and every trap
//    redirection is intercepted and emulated by the VMM, paying an exit.
//  * kHardwareAssist — VT-x-style: privileged guest state is context-switched
//    by hardware, so those instructions run at native cost; only MMIO,
//    hypercalls and host-level faults exit.
enum class VirtMode : uint8_t { kTrapAndEmulate = 0, kHardwareAssist = 1 };

// Why Run() returned.
enum class ExitReason : uint8_t {
  kBudget = 0,    // cycle budget exhausted (timeslice over)
  kHalt,          // guest executed HALT
  kWfi,           // guest parked in WFI with no deliverable interrupt
  kHypercall,     // guest invoked the VMM (number in a0); pc already advanced
  kMissingPage,   // access to an absent page (post-copy demand fetch)
  kError,         // internal error; see `error`
};

struct RunResult {
  ExitReason reason = ExitReason::kBudget;
  uint64_t cycles = 0;        // simulated cycles consumed by this Run call
  uint64_t instructions = 0;  // instructions retired by this Run call
  uint32_t missing_gpn = 0;   // kMissingPage
  Status error;               // kError
};

// Devices attach through this interface (implemented by devices::MmioBus).
// Addresses are guest-physical within the MMIO window; size is 1, 2 or 4.
// Writes carry the caller's phase token: device side effects (doorbells,
// interrupt-line updates, completion scheduling) must stage or act directly
// according to the regime the access happens in (DESIGN.md §9).
class MmioHandler {
 public:
  virtual ~MmioHandler() = default;
  virtual Result<uint32_t> MmioRead(uint32_t gpa, uint32_t size) = 0;
  virtual Status MmioWrite(const Phase& ph, uint32_t gpa, uint32_t size, uint32_t value) = 0;
};

struct VcpuStats {
  uint64_t instructions = 0;
  uint64_t cycles = 0;
  uint64_t mmio_exits = 0;
  uint64_t hypercalls = 0;
  uint64_t pt_write_exits = 0;
  uint64_t cow_breaks = 0;
  uint64_t wfi_exits = 0;
  uint64_t priv_emulations = 0;  // trap-and-emulate interceptions
  uint64_t guest_traps = 0;      // exceptions delivered into the guest
  uint64_t interrupts_delivered = 0;
  uint64_t dirty_first_writes = 0;
  uint64_t blocks_translated = 0;  // DBT only
  uint64_t block_executions = 0;   // DBT only
  uint64_t chain_hits = 0;         // DBT: dispatches resolved via a block link
  uint64_t traces_formed = 0;      // DBT: superblocks stitched from hot loops
  uint64_t trace_executions = 0;   // DBT: full passes through a superblock
  uint64_t mem_fastpath_hits = 0;    // inline memory fast-path hits
  uint64_t mem_fastpath_misses = 0;  // fell through to Virtualizer::Translate
  uint64_t evictions_surgical = 0;   // DBT: single blocks evicted at capacity
  uint64_t evictions_full = 0;       // DBT: whole-cache flushes
  uint64_t ipis_sent = 0;       // IPI doorbell edges this vCPU raised
  uint64_t ipis_received = 0;   // software interrupts delivered to this vCPU
  uint64_t shootdowns = 0;      // sfence executed inside an IPI handler
  uint64_t tier2_promotions = 0;   // DBT: superblocks compiled to tier-2 units
  uint64_t tier2_executions = 0;   // DBT: full passes through a tier-2 unit
  uint64_t deopts = 0;             // DBT: tier-2 bailouts back to tier-1
  uint64_t guards_elided = 0;      // DBT: per-chunk pc guards removed by tier-2
  uint64_t csr_writes_elided = 0;  // DBT: dead scratch-CSR writes removed
  uint64_t tier2_ops_folded = 0;   // DBT: instructions constant-folded
  uint64_t tier2_ops_dead = 0;     // DBT: instructions removed as dead
  uint64_t persist_hits = 0;    // translations revalidated from a snapshot
  uint64_t persist_misses = 0;  // persisted translations rejected on restore

  uint64_t TotalExits() const {
    return mmio_exits + hypercalls + pt_write_exits + cow_breaks + priv_emulations;
  }

  // Field-for-field equality: the staged-execution determinism oracle
  // compares whole per-vCPU stat blocks across worker counts.
  bool operator==(const VcpuStats&) const = default;
};

// L0 translation cache: a tiny direct-mapped va-page → host-frame array
// consulted by ExecCore before the virtual Virtualizer::Translate call.
// Entries are validated against the software TLB's flush generation, so any
// coherence event (sfence, ptbr switch, paging toggle, COW break, KSM/balloon
// or migration page change, shadow-PT invalidation) — all of which funnel
// through a Tlb::Flush* — disables every cached entry at once. Each entry
// carries the leaf R/W/X/U rights of its mapping and serves only access
// kinds those rights cover, so a load-warmed entry never feeds a fetch from
// a non-executable page. The array is a host-side accelerator
// only: hits charge the same simulated cost as a TLB hit, and it can never
// outlive the TLB state it mirrors, which keeps it invisible to the
// ProbeGuest-based coherence audits.
struct FastTranslations {
  static constexpr uint32_t kEntries = 256;  // power of two
  struct Entry {
    uint32_t vpn = 0xFFFFFFFFu;  // no real vpn matches (20-bit page numbers)
    uint32_t gpn = 0;
    uint64_t tlb_gen = 0;  // Tlb generations start at 1, so 0 never matches
    uint8_t* data = nullptr;  // host frame base
    bool writable = false;  // leaf W (store fast path allowed)
    bool read_ok = false;   // leaf R (load fast path allowed)
    bool exec_ok = false;   // leaf X (fetch fast path allowed)
    bool user_ok = false;   // leaf U (user-mode accesses allowed)
  };
  std::array<Entry, kEntries> entries;

  Entry& Slot(uint32_t vpn) { return entries[vpn & (kEntries - 1)]; }
};

// Everything an execution engine needs to run one vCPU.
struct VcpuContext {
  CpuState state;
  mem::GuestMemory* memory = nullptr;
  mmu::MemoryVirtualizer* virt = nullptr;
  MmioHandler* mmio = nullptr;  // may be null: all MMIO faults the guest
  const CostModel* costs = &CostModel::Default();
  VirtMode virt_mode = VirtMode::kHardwareAssist;
  // Phase the current Run call executes under (set by Vm::RunVcpuSlice to
  // the slice's ExecutePhase). Engines fall back to a runtime-checked
  // serial token when null (direct engine use in tests).
  const Phase* phase = nullptr;
  VcpuStats stats;
  FastTranslations fast_tlb;

  // Simulated time at the start of the current Run call; the engine computes
  // guest time as slice_start + cycles-consumed-so-far.
  SimTime slice_start = 0;
};

// An execution engine runs guest instructions until `max_cycles` simulated
// cycles are consumed or an exit condition arises.
class ExecutionEngine {
 public:
  virtual ~ExecutionEngine() = default;
  virtual std::string_view name() const = 0;
  virtual RunResult Run(VcpuContext& ctx, uint64_t max_cycles) = 0;
  // Discards cached translations derived from guest page `gpn` (DBT).
  virtual void InvalidateCodePage(uint32_t gpn) { (void)gpn; }
  // Discards all cached translations. Used for content changes (image load,
  // snapshot restore): cached code bytes may be stale.
  virtual void FlushCodeCache() {}
  // The guest's va→pa mapping may have changed (SFENCE, paging toggle). Code
  // bytes themselves are unchanged, so engines may invalidate lazily
  // (generation tag + revalidation) as long as stale translations never run.
  virtual void InvalidateMappings() { FlushCodeCache(); }
  // The guest switched address spaces (PTBR write). Translations keyed by the
  // old root stay valid; only cross-block assumptions (chains) must be cut.
  virtual void OnAddressSpaceSwitch() {}
  // Persistent translation cache (DBT). SerializeTranslations emits every
  // validated translation unit as a self-describing versioned blob (empty
  // when the engine has nothing to persist). InstallTranslations replaces the
  // engine's caches with units from such a blob, revalidating each against
  // the current guest memory/mappings in `ctx` and silently dropping any that
  // fail — a rejected blob degrades to cold translation, never to stale code.
  virtual std::vector<uint8_t> SerializeTranslations() const { return {}; }
  virtual void InstallTranslations(VcpuContext& ctx,
                                   std::span<const uint8_t> blob) {
    (void)ctx;
    (void)blob;
  }
};

}  // namespace hyperion::cpu

#endif  // SRC_CPU_CONTEXT_H_
