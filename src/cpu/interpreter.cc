#include "src/cpu/interpreter.h"

#include "src/cpu/exec_core.h"

namespace hyperion::cpu {

RunResult Interpreter::Run(VcpuContext& ctx, uint64_t max_cycles) {
  ExecCore core(ctx, this);
  CpuState& s = ctx.state;

  if (s.halted) {
    core.Exit(ExitReason::kHalt);
    return core.Finish();
  }
  if (s.waiting) {
    core.CheckTimer();
    if (s.ipend == 0) {
      core.Charge(1);  // the parked vCPU consumes (almost) nothing
      core.Exit(ExitReason::kWfi);
      return core.Finish();
    }
    s.waiting = false;
  }

  while (!core.exited() && core.cycles() < max_cycles) {
    core.CheckTimer();
    if (core.DeliverInterruptIfPending()) {
      if (core.exited()) {
        break;  // trap with no handler installed
      }
    }
    uint32_t word = 0;
    if (!core.Fetch(s.pc, &word)) {
      continue;  // trap vectored or exit latched
    }
    core.Execute(isa::Decode(word));
  }
  return core.Finish();
}

std::unique_ptr<ExecutionEngine> MakeInterpreter() { return std::make_unique<Interpreter>(); }

}  // namespace hyperion::cpu
