// Dynamic binary translation engine.
//
// Guest code is translated into cached basic blocks of pre-decoded
// instructions keyed by (pc, ptbr, paging). Hot paths skip per-instruction
// fetch and decode entirely, the classic DBT win. The cache is kept coherent
// with guest stores (self-modifying code), sfence, and paging changes.

#ifndef SRC_CPU_DBT_H_
#define SRC_CPU_DBT_H_

#include <memory>

#include "src/cpu/context.h"

namespace hyperion::cpu {

std::unique_ptr<ExecutionEngine> MakeDbtEngine(size_t max_blocks = 4096);

enum class EngineKind : uint8_t { kInterpreter = 0, kDbt = 1 };

std::unique_ptr<ExecutionEngine> MakeEngine(EngineKind kind);

}  // namespace hyperion::cpu

#endif  // SRC_CPU_DBT_H_
