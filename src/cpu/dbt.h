// Dynamic binary translation engine.
//
// Guest code is translated into cached basic blocks of pre-decoded
// instructions keyed by (pc, ptbr, paging). Hot paths skip per-instruction
// fetch and decode entirely, the classic DBT win. The cache is kept coherent
// with guest stores (self-modifying code), sfence, and paging changes.
//
// Two execution tiers sit on top of the block cache (DESIGN.md §4, §12):
// tier-1 superblock traces stitched from hot loops, and a tier-2 optimizer
// (src/cpu/ir/) that lifts traces whose execution count crosses
// `tier2_threshold` into an optimized micro-op form. The engine can also
// serialize its validated translations and reinstall them after a snapshot
// restore (ExecutionEngine::SerializeTranslations / InstallTranslations),
// so cloned VMs boot with a pre-warmed code cache.

#ifndef SRC_CPU_DBT_H_
#define SRC_CPU_DBT_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "src/cpu/context.h"

namespace hyperion::cpu {

struct DbtOptions {
  size_t max_blocks = 4096;
  bool enable_tier2 = true;
  // Trace passes before a superblock is promoted to tier-2. Low thresholds
  // are for tests (force promotion on the first few passes); the default
  // amortizes compile cost over genuinely hot loops only.
  uint32_t tier2_threshold = 50;
};

std::unique_ptr<ExecutionEngine> MakeDbtEngine(size_t max_blocks = 4096);
std::unique_ptr<ExecutionEngine> MakeDbtEngine(const DbtOptions& options);

enum class EngineKind : uint8_t { kInterpreter = 0, kDbt = 1 };

std::unique_ptr<ExecutionEngine> MakeEngine(EngineKind kind);
std::unique_ptr<ExecutionEngine> MakeEngine(EngineKind kind,
                                            const DbtOptions& options);

}  // namespace hyperion::cpu

#endif  // SRC_CPU_DBT_H_
