// Shared execution machinery for the interpreter and DBT engines.
//
// ExecCore implements the semantics of every HV32 instruction plus the
// virtualization glue: address translation with PT-write interception and
// copy-on-write breaking, MMIO dispatch, trap and interrupt delivery, timer
// emulation, and trap-and-emulate cost accounting. Engines differ only in
// how they fetch and decode (per-instruction vs. cached basic blocks).
//
// Header-only so both engines inline the hot paths.

#ifndef SRC_CPU_EXEC_CORE_H_
#define SRC_CPU_EXEC_CORE_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <limits>
#include <optional>

#include "src/cpu/context.h"
#include "src/isa/hv32.h"
#include "src/util/phase.h"

namespace hyperion::cpu {

class ExecCore {
 public:
  ExecCore(VcpuContext& ctx, ExecutionEngine* engine)
      : ctx_(ctx), engine_(engine), guest_insn_cost_(ctx.costs->guest_insn) {
    // The phase every side effect of this run charges to: the slice's
    // ExecutePhase when driven by the host run loop, or a runtime-checked
    // serial token when the engine is driven directly (tests, tools).
    phase_ = ctx.phase;
    if (phase_ == nullptr) {
      fallback_phase_.emplace();
      phase_ = &fallback_phase_->get();
    }
  }

  uint64_t cycles() const { return cycles_; }
  uint64_t instructions() const { return instret_; }
  bool exited() const { return exited_; }

  void Charge(uint64_t c) { cycles_ += c; }

  // Retires `n` guest instructions at the base per-instruction cost in one
  // step. The tier-2 executor batches retirement accounting across runs of
  // micro-ops instead of paying Charge + increment per instruction; the
  // totals are indistinguishable from n individual Execute() retirements.
  void RetireBulk(uint64_t n) {
    cycles_ += n * guest_insn_cost_;
    instret_ += n;
  }

  // Charged when the guest touches privileged state under trap-and-emulate.
  // Public because the tier-2 executor emulates scratch-CSR accesses inline
  // and must preserve the interception cost model.
  void ChargePrivileged() {
    if (ctx_.virt_mode == VirtMode::kTrapAndEmulate) {
      Charge(ctx_.costs->vm_exit + ctx_.costs->emulate_insn);
      ++ctx_.stats.priv_emulations;
    }
  }

  SimTime Now() const { return ctx_.slice_start + cycles_; }

  // Finalizes the run: folds slice counters into persistent state and stats.
  RunResult Finish() {
    ctx_.state.cycle += cycles_;
    ctx_.state.instret += instret_;
    ctx_.stats.cycles += cycles_;
    ctx_.stats.instructions += instret_;
    result_.cycles = cycles_;
    result_.instructions = instret_;
    return result_;
  }

  void Exit(ExitReason reason) {
    result_.reason = reason;
    exited_ = true;
  }

  void ExitError(Status error) {
    result_.reason = ExitReason::kError;
    result_.error = std::move(error);
    exited_ = true;
  }

  void ExitMissingPage(uint32_t gpn) {
    result_.reason = ExitReason::kMissingPage;
    result_.missing_gpn = gpn;
    exited_ = true;
  }

  // --- Interrupts and timer --------------------------------------------------

  // Latches the timer interrupt when due. state.timecmp holds an absolute
  // simulated time; 0 disables the timer.
  void CheckTimer() {
    if (ctx_.state.timecmp != 0 && Now() >= ctx_.state.timecmp) {
      ctx_.state.RaisePending(isa::Interrupt::kTimer);
    }
  }

  // Delivers the highest-priority pending interrupt if enabled. Returns true
  // when a trap was vectored.
  bool DeliverInterruptIfPending() {
    if (!ctx_.state.HasDeliverableInterrupt()) {
      return false;
    }
    uint32_t line = static_cast<uint32_t>(std::countr_zero(ctx_.state.ipend));
    auto cause = static_cast<isa::TrapCause>(static_cast<uint32_t>(isa::TrapCause::kInterruptFlag) |
                                             line);
    ++ctx_.stats.interrupts_delivered;
    if (line == static_cast<uint32_t>(isa::Interrupt::kSoftware)) {
      ++ctx_.stats.ipis_received;
    }
    Charge(ctx_.costs->interrupt_inject);
    Vector(cause, 0);
    return true;
  }

  // --- Memory ----------------------------------------------------------------

  // Inline memory fast path: consults the per-vCPU direct-mapped
  // fast-translation array before paying the virtual Translate call. Entries
  // are validated against the TLB flush generation, so every coherence event
  // (sfence, ptbr switch, paging toggle, COW/KSM/balloon/migration page
  // changes, shadow-PT invalidations) disables the whole array at once.
  // Returns nullptr on any mismatch — including access rights the mapping
  // does not grant (entries carry the leaf R/W/X bits, so a load-warmed
  // entry never serves a fetch from a non-executable page and vice versa)
  // and privilege (user accesses require the leaf U bit).
  FastTranslations::Entry* FastLookup(uint32_t va, mmu::Access access) {
    FastTranslations::Entry& e = ctx_.fast_tlb.Slot(isa::PageNumber(va));
    bool right_ok = false;
    switch (access) {
      case mmu::Access::kFetch:
        right_ok = e.exec_ok;
        break;
      case mmu::Access::kLoad:
        right_ok = e.read_ok;
        break;
      case mmu::Access::kStore:
        right_ok = e.writable;
        break;
    }
    if (e.vpn != isa::PageNumber(va) || e.tlb_gen != ctx_.virt->tlb().generation() ||
        !right_ok || (!e.user_ok && ctx_.state.priv() == isa::PrivMode::kUser)) {
      ++ctx_.stats.mem_fastpath_misses;
      return nullptr;
    }
    ++ctx_.stats.mem_fastpath_hits;
    ctx_.virt->tlb().CreditFastHit();
    Charge(ctx_.costs->tlb_hit);
    return &e;
  }

  // Caches a successful plain-RAM translation for subsequent fast lookups.
  // The entry grants exactly the rights the translation layer proved from
  // the mapping (leaf R/W/X/U bits), so a load-warmed entry serves fetches
  // only when the page really is executable.
  void FastFill(uint32_t va, const mmu::TranslateOutcome& out) {
    if (out.event != mmu::MemEvent::kNone || out.is_mmio) {
      return;
    }
    FastTranslations::Entry& e = ctx_.fast_tlb.Slot(isa::PageNumber(va));
    e.vpn = isa::PageNumber(va);
    e.gpn = isa::PageNumber(out.gpa);
    e.tlb_gen = ctx_.virt->tlb().generation();
    e.data = ctx_.memory->pool().FrameData(out.frame);
    e.writable = out.writable;
    e.read_ok = out.readable;
    e.exec_ok = out.executable;
    e.user_ok = out.user;
  }

  // Fetches the instruction word at `va`. Returns false when the current
  // instruction cannot complete (trap vectored or exit latched).
  bool Fetch(uint32_t va, uint32_t* word) {
    if (va & 3u) {
      Trap(isa::TrapCause::kInstrMisaligned, va);
      return false;
    }
    if (const FastTranslations::Entry* fe = FastLookup(va, mmu::Access::kFetch)) {
      std::memcpy(word, fe->data + isa::VaPageOffset(va), 4);
      return true;
    }
    mmu::TranslateOutcome out = Translate(va, mmu::Access::kFetch);
    if (out.event != mmu::MemEvent::kNone) {
      return HandleMemEvent(out, va, mmu::Access::kFetch, 0, 0, nullptr);
    }
    if (out.is_mmio) {
      Trap(isa::TrapCause::kInstrPageFault, va);
      return false;
    }
    FastFill(va, out);
    const uint8_t* page = ctx_.memory->pool().FrameData(out.frame);
    std::memcpy(word, page + isa::VaPageOffset(out.gpa), 4);
    return true;
  }

  // Loads `size` bytes (1/2/4) from `va` into *out (zero-extended).
  bool Load(uint32_t va, uint32_t size, uint32_t* out) {
    if (va & (size - 1)) {
      Trap(isa::TrapCause::kLoadMisaligned, va);
      return false;
    }
    if (const FastTranslations::Entry* fe = FastLookup(va, mmu::Access::kLoad)) {
      uint32_t v = 0;
      std::memcpy(&v, fe->data + isa::VaPageOffset(va), size);
      *out = v;
      return true;
    }
    mmu::TranslateOutcome t = Translate(va, mmu::Access::kLoad);
    if (t.event != mmu::MemEvent::kNone) {
      return HandleMemEvent(t, va, mmu::Access::kLoad, 0, size, out);
    }
    if (t.is_mmio) {
      return MmioLoad(t.gpa, va, size, out);
    }
    FastFill(va, t);
    const uint8_t* page = ctx_.memory->pool().FrameData(t.frame);
    uint32_t v = 0;
    std::memcpy(&v, page + isa::VaPageOffset(t.gpa), size);
    *out = v;
    return true;
  }

  // Stores the low `size` bytes of `value` at `va`.
  bool Store(uint32_t va, uint32_t size, uint32_t value) {
    if (va & (size - 1)) {
      Trap(isa::TrapCause::kStoreMisaligned, va);
      return false;
    }
    if (FastTranslations::Entry* fe = FastLookup(va, mmu::Access::kStore)) {
      // The fast path must keep every side channel of a slow store: dirty
      // logging for migration and SMC invalidation for the DBT engine.
      std::memcpy(fe->data + isa::VaPageOffset(va), &value, size);
      if (ctx_.memory->MarkDirty(fe->gpn)) {
        Charge(ctx_.costs->dirty_log_first_write);
        ++ctx_.stats.dirty_first_writes;
      }
      engine_->InvalidateCodePage(fe->gpn);
      return true;
    }
    // COW breaking may require one retry after the private copy is made.
    for (int attempt = 0; attempt < 3; ++attempt) {
      mmu::TranslateOutcome t = Translate(va, mmu::Access::kStore);
      if (t.event != mmu::MemEvent::kNone) {
        bool retry = false;
        if (!HandleStoreEvent(t, va, size, value, &retry)) {
          return false;
        }
        if (retry) {
          continue;
        }
        return true;  // PT write fully emulated
      }
      if (t.is_mmio) {
        return MmioStore(t.gpa, va, size, value);
      }
      FastFill(va, t);
      uint32_t gpn = isa::PageNumber(t.gpa);
      uint8_t* page = ctx_.memory->pool().FrameData(t.frame);
      std::memcpy(page + isa::VaPageOffset(t.gpa), &value, size);
      if (ctx_.memory->MarkDirty(gpn)) {
        Charge(ctx_.costs->dirty_log_first_write);
        ++ctx_.stats.dirty_first_writes;
      }
      engine_->InvalidateCodePage(gpn);
      return true;
    }
    ExitError(InternalError("store did not settle after COW retries"));
    return false;
  }

  // --- Traps -------------------------------------------------------------------

  // Raises a guest exception at the current pc.
  void Trap(isa::TrapCause cause, uint32_t tval) {
    ++ctx_.stats.guest_traps;
    Charge(TrapDeliveryCost());
    Vector(cause, tval);
  }

  // --- Instruction execution -----------------------------------------------------

  // Executes one decoded instruction. The caller has already fetched it at
  // ctx.state.pc. Returns false when the run loop must stop (exit latched);
  // traps return true (execution continues at the handler).
  bool Execute(const isa::Instruction& in) {
    using isa::AluOp;
    using isa::Opcode;
    CpuState& s = ctx_.state;
    Charge(guest_insn_cost_);
    ++instret_;

    switch (in.opcode) {
      case Opcode::kOp:
        s.WriteReg(in.rd, Alu(static_cast<AluOp>(in.funct), s.ReadReg(in.rs1), s.ReadReg(in.rs2)));
        s.pc += 4;
        return true;
      case Opcode::kOpImm:
        s.WriteReg(in.rd, Alu(static_cast<AluOp>(in.funct), s.ReadReg(in.rs1),
                              static_cast<uint32_t>(in.imm)));
        s.pc += 4;
        return true;
      case Opcode::kLui:
        s.WriteReg(in.rd, static_cast<uint32_t>(in.imm));
        s.pc += 4;
        return true;
      case Opcode::kAuipc:
        s.WriteReg(in.rd, s.pc + static_cast<uint32_t>(in.imm));
        s.pc += 4;
        return true;
      case Opcode::kJal: {
        uint32_t link = s.pc + 4;
        s.pc += static_cast<uint32_t>(in.imm);
        s.WriteReg(in.rd, link);
        return true;
      }
      case Opcode::kJalr: {
        uint32_t link = s.pc + 4;
        s.pc = (s.ReadReg(in.rs1) + static_cast<uint32_t>(in.imm)) & ~3u;
        s.WriteReg(in.rd, link);
        return true;
      }
      case Opcode::kBranch: {
        bool taken = EvalBranch(static_cast<isa::BranchCond>(in.funct), s.ReadReg(in.rs1),
                                s.ReadReg(in.rs2));
        s.pc += taken ? static_cast<uint32_t>(in.imm) : 4;
        return true;
      }
      case Opcode::kLw:
        return DoLoad(in, 4, false);
      case Opcode::kLh:
        return DoLoad(in, 2, true);
      case Opcode::kLhu:
        return DoLoad(in, 2, false);
      case Opcode::kLb:
        return DoLoad(in, 1, true);
      case Opcode::kLbu:
        return DoLoad(in, 1, false);
      case Opcode::kSw:
        return DoStore(in, 4);
      case Opcode::kSh:
        return DoStore(in, 2);
      case Opcode::kSb:
        return DoStore(in, 1);
      case Opcode::kCsrrw:
      case Opcode::kCsrrs:
      case Opcode::kCsrrc:
        return ExecCsr(in);
      case Opcode::kEcall:
        Trap(s.priv() == isa::PrivMode::kUser ? isa::TrapCause::kEcallFromUser
                                              : isa::TrapCause::kEcallFromSupervisor,
             0);
        return true;
      case Opcode::kEbreak:
        Trap(isa::TrapCause::kBreakpoint, s.pc);
        return true;
      case Opcode::kSret:
        return ExecSret();
      case Opcode::kWfi:
        return ExecWfi();
      case Opcode::kHcall:
        return ExecHcall();
      case Opcode::kSfence:
        return ExecSfence(in);
      case Opcode::kHalt:
        return ExecHalt();
      case Opcode::kAmoSwap:
        return ExecAmo(in, /*is_add=*/false);
      case Opcode::kAmoAdd:
        return ExecAmo(in, /*is_add=*/true);
      default:
        Trap(isa::TrapCause::kIllegalInstruction, 0);
        return true;
    }
  }

 private:
  uint64_t TrapDeliveryCost() const {
    // Under trap-and-emulate the VMM intercepts the trap and re-vectors it
    // into the guest's virtual trap state; with hardware assist delivery is
    // architectural.
    if (ctx_.virt_mode == VirtMode::kTrapAndEmulate) {
      ++ctx_.stats.priv_emulations;
      return ctx_.costs->vm_exit + ctx_.costs->emulate_insn;
    }
    return 40;  // native exception latency
  }

  void Vector(isa::TrapCause cause, uint32_t tval) {
    CpuState& s = ctx_.state;
    if (s.tvec == 0) {
      ExitError(InternalError("guest trap with no handler installed: cause=" +
                              std::to_string(static_cast<uint32_t>(cause)) +
                              " pc=" + std::to_string(s.pc) + " tval=" + std::to_string(tval)));
      return;
    }
    using isa::StatusBits;
    s.cause = static_cast<uint32_t>(cause);
    s.epc = s.pc;
    s.tval = tval;
    uint32_t st = s.status;
    // Stack IE into PIE and privilege into PPRV; enter supervisor, IE off.
    st = (st & ~StatusBits::kPie) | ((st & StatusBits::kIe) ? StatusBits::kPie : 0);
    st = (st & ~StatusBits::kPprv) | ((st & StatusBits::kPrv) ? StatusBits::kPprv : 0);
    st &= ~StatusBits::kIe;
    st |= StatusBits::kPrv;
    s.status = st;
    s.pc = s.tvec;
    // The trap stack is one deep, so any trap that is not itself a software
    // interrupt ends the IPI-handler window for shootdown accounting.
    s.in_ipi_handler = cause == isa::TrapCause::kSoftwareInterrupt;
  }

  mmu::TranslateOutcome Translate(uint32_t va, mmu::Access access) {
    CpuState& s = ctx_.state;
    mmu::TranslateOutcome out =
        ctx_.virt->Translate(va, access, s.priv(), s.paging_enabled(), s.ptbr);
    Charge(out.cost);
    return out;
  }

  // Handles translation events for fetch/load. Always returns false (the
  // instruction cannot complete this round).
  bool HandleMemEvent(const mmu::TranslateOutcome& out, uint32_t va, mmu::Access access,
                      uint32_t value, uint32_t size, uint32_t* load_out) {
    (void)value;
    (void)size;
    (void)load_out;
    switch (out.event) {
      case mmu::MemEvent::kGuestFault:
        Trap(out.fault_cause, va);
        return false;
      case mmu::MemEvent::kMissingPage:
        ExitMissingPage(isa::PageNumber(out.gpa));
        return false;
      case mmu::MemEvent::kPtWriteTrap:
      case mmu::MemEvent::kCowBreak:
        // Only stores can raise these; loads/fetches reaching here indicate a
        // virtualizer bug.
        ExitError(InternalError("store-only memory event on access type " +
                                std::to_string(static_cast<int>(access))));
        return false;
      case mmu::MemEvent::kNone:
        break;
    }
    return false;
  }

  // Handles translation events for stores. Returns false if the run loop must
  // stop or a trap was taken; *retry is set when the store must re-translate.
  bool HandleStoreEvent(const mmu::TranslateOutcome& out, uint32_t va, uint32_t size,
                        uint32_t value, bool* retry) {
    switch (out.event) {
      case mmu::MemEvent::kGuestFault:
        Trap(out.fault_cause, va);
        return false;
      case mmu::MemEvent::kMissingPage:
        ExitMissingPage(isa::PageNumber(out.gpa));
        return false;
      case mmu::MemEvent::kPtWriteTrap: {
        // The guest wrote one of its own page-table pages: emulate the store
        // and surgically invalidate the shadow entries derived from it.
        Charge(ctx_.costs->vm_exit + ctx_.costs->emulate_insn);
        ++ctx_.stats.pt_write_exits;
        uint8_t bytes[4];
        std::memcpy(bytes, &value, 4);
        Status st = ctx_.memory->Write(out.gpa, bytes, size);
        if (!st.ok()) {
          ExitError(std::move(st));
          return false;
        }
        ctx_.virt->OnPtWriteEmulated(out.gpa, size);
        engine_->InvalidateCodePage(isa::PageNumber(out.gpa));
        ctx_.state.pc += 4;  // emulation completes the store instruction
        *retry = false;
        return true;
      }
      case mmu::MemEvent::kCowBreak: {
        Charge(ctx_.costs->vm_exit + ctx_.costs->cow_break);
        ++ctx_.stats.cow_breaks;
        uint32_t gpn = isa::PageNumber(out.gpa);
        Status st = ctx_.memory->BreakSharing(*phase_, gpn);
        if (!st.ok()) {
          ExitError(std::move(st));
          return false;
        }
        ctx_.virt->InvalidateGpn(gpn);
        *retry = true;
        return true;
      }
      case mmu::MemEvent::kNone:
        break;
    }
    return true;
  }

  bool MmioLoad(uint32_t gpa, uint32_t va, uint32_t size, uint32_t* out) {
    Charge(ctx_.costs->vm_exit + ctx_.costs->mmio_access);
    ++ctx_.stats.mmio_exits;
    if (ctx_.mmio == nullptr) {
      Trap(isa::TrapCause::kLoadPageFault, va);
      return false;
    }
    auto v = ctx_.mmio->MmioRead(gpa, size);
    if (!v.ok()) {
      Trap(isa::TrapCause::kLoadPageFault, va);
      return false;
    }
    *out = *v;
    return true;
  }

  bool MmioStore(uint32_t gpa, uint32_t va, uint32_t size, uint32_t value) {
    Charge(ctx_.costs->vm_exit + ctx_.costs->mmio_access);
    ++ctx_.stats.mmio_exits;
    if (ctx_.mmio == nullptr) {
      Trap(isa::TrapCause::kStorePageFault, va);
      return false;
    }
    if (!ctx_.mmio->MmioWrite(*phase_, gpa, size, value).ok()) {
      Trap(isa::TrapCause::kStorePageFault, va);
      return false;
    }
    return true;
  }

  bool DoLoad(const isa::Instruction& in, uint32_t size, bool sign_extend) {
    CpuState& s = ctx_.state;
    uint32_t va = s.ReadReg(in.rs1) + static_cast<uint32_t>(in.imm);
    uint32_t v;
    if (!Load(va, size, &v)) {
      return !exited_;
    }
    if (sign_extend) {
      uint32_t bits = size * 8;
      v = static_cast<uint32_t>(static_cast<int32_t>(v << (32 - bits)) >> (32 - bits));
    }
    s.WriteReg(in.rd, v);
    s.pc += 4;
    return true;
  }

  bool DoStore(const isa::Instruction& in, uint32_t size) {
    CpuState& s = ctx_.state;
    uint32_t va = s.ReadReg(in.rs1) + static_cast<uint32_t>(in.imm);
    uint32_t pc_before = s.pc;
    if (!Store(va, size, s.ReadReg(in.rd))) {
      return !exited_;
    }
    // A PT-write emulation advances pc itself; plain stores advance here.
    if (s.pc == pc_before) {
      s.pc += 4;
    }
    return true;
  }

  bool ExecCsr(const isa::Instruction& in) {
    using isa::Csr;
    using isa::Opcode;
    using isa::StatusBits;
    CpuState& s = ctx_.state;
    if (s.priv() != isa::PrivMode::kSupervisor) {
      Trap(isa::TrapCause::kPrivilegeViolation, 0);
      return true;
    }
    ChargePrivileged();

    auto csr = static_cast<Csr>(in.imm);
    uint32_t old = ReadCsr(csr);
    uint32_t rs1 = s.ReadReg(in.rs1);
    bool write = in.opcode == Opcode::kCsrrw || in.rs1 != 0;
    uint32_t next = old;
    switch (in.opcode) {
      case Opcode::kCsrrw:
        next = rs1;
        break;
      case Opcode::kCsrrs:
        next = old | rs1;
        break;
      case Opcode::kCsrrc:
        next = old & ~rs1;
        break;
      default:
        break;
    }
    if (write) {
      WriteCsr(csr, next, old);
    }
    s.WriteReg(in.rd, old);
    s.pc += 4;
    return true;
  }

  uint32_t ReadCsr(isa::Csr csr) {
    const CpuState& s = ctx_.state;
    switch (csr) {
      case isa::Csr::kStatus:
        return s.status;
      case isa::Csr::kCause:
        return s.cause;
      case isa::Csr::kEpc:
        return s.epc;
      case isa::Csr::kTvec:
        return s.tvec;
      case isa::Csr::kTval:
        return s.tval;
      case isa::Csr::kScratch:
        return s.scratch;
      case isa::Csr::kPtbr:
        return s.ptbr;
      case isa::Csr::kTime:
        return static_cast<uint32_t>(Now());
      case isa::Csr::kTimecmp: {
        // Reads back the remaining delta (see WriteCsr).
        SimTime now = Now();
        if (s.timecmp == 0 || s.timecmp <= now) {
          return 0;
        }
        uint64_t delta = s.timecmp - now;
        return delta > std::numeric_limits<uint32_t>::max()
                   ? std::numeric_limits<uint32_t>::max()
                   : static_cast<uint32_t>(delta);
      }
      case isa::Csr::kCycle:
        return static_cast<uint32_t>(s.cycle + cycles_);
      case isa::Csr::kInstret:
        return static_cast<uint32_t>(s.instret + instret_);
      case isa::Csr::kHartid:
        return s.hartid;
      case isa::Csr::kIpend:
        return s.ipend;
    }
    return 0;
  }

  void WriteCsr(isa::Csr csr, uint32_t value, uint32_t old) {
    using isa::StatusBits;
    CpuState& s = ctx_.state;
    switch (csr) {
      case isa::Csr::kStatus: {
        uint32_t changed = old ^ value;
        s.status = value;
        if (changed & StatusBits::kPg) {
          // The code bytes are unchanged; only the va→pa mapping moved.
          ctx_.virt->OnPagingToggle();
          engine_->InvalidateMappings();
        }
        break;
      }
      case isa::Csr::kCause:
        s.cause = value;
        break;
      case isa::Csr::kEpc:
        s.epc = value;
        break;
      case isa::Csr::kTvec:
        s.tvec = value;
        break;
      case isa::Csr::kTval:
        s.tval = value;
        break;
      case isa::Csr::kScratch:
        s.scratch = value;
        break;
      case isa::Csr::kPtbr:
        s.ptbr = value;
        Charge(ctx_.virt->OnPtbrWrite(value));
        engine_->OnAddressSpaceSwitch();
        break;
      case isa::Csr::kTimecmp:
        // TIMECMP is written as a *delta* in cycles from now (0 disables),
        // which sidesteps 64-bit time in 32-bit CSRs. It reads back as the
        // remaining delta.
        s.timecmp = value == 0 ? 0 : Now() + value;
        s.ClearPending(isa::Interrupt::kTimer);
        break;
      case isa::Csr::kTime:
      case isa::Csr::kCycle:
      case isa::Csr::kInstret:
      case isa::Csr::kHartid:
      case isa::Csr::kIpend:
        break;  // read-only: writes are ignored
    }
  }

  bool ExecSret() {
    using isa::StatusBits;
    CpuState& s = ctx_.state;
    if (s.priv() != isa::PrivMode::kSupervisor) {
      Trap(isa::TrapCause::kPrivilegeViolation, 0);
      return true;
    }
    ChargePrivileged();
    uint32_t st = s.status;
    st = (st & ~StatusBits::kIe) | ((st & StatusBits::kPie) ? StatusBits::kIe : 0);
    st |= StatusBits::kPie;
    st = (st & ~StatusBits::kPrv) | ((st & StatusBits::kPprv) ? StatusBits::kPrv : 0);
    st &= ~StatusBits::kPprv;
    s.status = st;
    s.pc = s.epc;
    s.in_ipi_handler = false;
    return true;
  }

  bool ExecWfi() {
    CpuState& s = ctx_.state;
    if (s.priv() != isa::PrivMode::kSupervisor) {
      Trap(isa::TrapCause::kPrivilegeViolation, 0);
      return true;
    }
    ChargePrivileged();
    s.pc += 4;
    if (s.ipend != 0) {
      return true;  // wake immediately
    }
    s.waiting = true;
    ++ctx_.stats.wfi_exits;
    Exit(ExitReason::kWfi);
    return false;
  }

  bool ExecHcall() {
    CpuState& s = ctx_.state;
    if (s.priv() != isa::PrivMode::kSupervisor) {
      Trap(isa::TrapCause::kPrivilegeViolation, 0);
      return true;
    }
    Charge(ctx_.costs->vm_exit + ctx_.costs->hypercall);
    ++ctx_.stats.hypercalls;
    s.pc += 4;  // the VMM resumes after the hypercall
    Exit(ExitReason::kHypercall);
    return false;
  }

  bool ExecSfence(const isa::Instruction& in) {
    CpuState& s = ctx_.state;
    if (s.priv() != isa::PrivMode::kSupervisor) {
      Trap(isa::TrapCause::kPrivilegeViolation, 0);
      return true;
    }
    ChargePrivileged();
    ctx_.virt->OnSfence(s.ReadReg(in.rs1));
    if (s.paging_enabled()) {
      engine_->InvalidateMappings();
    }
    if (s.in_ipi_handler) {
      ++ctx_.stats.shootdowns;  // the remote half of a TLB shootdown
    }
    s.pc += 4;
    return true;
  }

  bool ExecHalt() {
    CpuState& s = ctx_.state;
    if (s.priv() != isa::PrivMode::kSupervisor) {
      Trap(isa::TrapCause::kPrivilegeViolation, 0);
      return true;
    }
    ChargePrivileged();
    s.halted = true;
    Exit(ExitReason::kHalt);
    return false;
  }

  // Word-sized atomic read-modify-write: rd = mem[rs1]; mem[rs1] = (is_add ?
  // old + rs2 : rs2). Atomicity is architectural rather than emulated:
  // sibling vCPU slices of one VM always execute serially on one lane, so an
  // instruction-granular RMW can never interleave with another vCPU's access.
  // Requires store permission on the page; MMIO and write-protected
  // page-table pages take a store fault (no atomics on either).
  bool ExecAmo(const isa::Instruction& in, bool is_add) {
    CpuState& s = ctx_.state;
    uint32_t va = s.ReadReg(in.rs1);
    if (va & 3u) {
      Trap(isa::TrapCause::kStoreMisaligned, va);
      return true;
    }
    // COW breaking may require one retry after the private copy is made.
    for (int attempt = 0; attempt < 3; ++attempt) {
      mmu::TranslateOutcome t = Translate(va, mmu::Access::kStore);
      switch (t.event) {
        case mmu::MemEvent::kGuestFault:
          Trap(t.fault_cause, va);
          return true;
        case mmu::MemEvent::kMissingPage:
          ExitMissingPage(isa::PageNumber(t.gpa));
          return false;
        case mmu::MemEvent::kPtWriteTrap:
          Trap(isa::TrapCause::kStorePageFault, va);
          return true;
        case mmu::MemEvent::kCowBreak: {
          Charge(ctx_.costs->vm_exit + ctx_.costs->cow_break);
          ++ctx_.stats.cow_breaks;
          uint32_t gpn = isa::PageNumber(t.gpa);
          Status st = ctx_.memory->BreakSharing(*phase_, gpn);
          if (!st.ok()) {
            ExitError(std::move(st));
            return false;
          }
          ctx_.virt->InvalidateGpn(gpn);
          continue;
        }
        case mmu::MemEvent::kNone:
          break;
      }
      if (t.is_mmio) {
        Trap(isa::TrapCause::kStorePageFault, va);
        return true;
      }
      uint32_t gpn = isa::PageNumber(t.gpa);
      uint8_t* page = ctx_.memory->pool().FrameData(t.frame);
      uint32_t old = 0;
      std::memcpy(&old, page + isa::VaPageOffset(t.gpa), 4);
      uint32_t next = is_add ? old + s.ReadReg(in.rs2) : s.ReadReg(in.rs2);
      std::memcpy(page + isa::VaPageOffset(t.gpa), &next, 4);
      if (ctx_.memory->MarkDirty(gpn)) {
        Charge(ctx_.costs->dirty_log_first_write);
        ++ctx_.stats.dirty_first_writes;
      }
      engine_->InvalidateCodePage(gpn);
      FastFill(va, t);
      s.WriteReg(in.rd, old);
      s.pc += 4;
      return true;
    }
    ExitError(InternalError("amo did not settle after COW retries"));
    return false;
  }

 public:
  // Shared with the tier-2 compiler/executor (constant folding evaluates
  // through the same tables the interpreter uses, so folds cannot diverge).
  static uint32_t Alu(isa::AluOp op, uint32_t a, uint32_t b) {
    using isa::AluOp;
    switch (op) {
      case AluOp::kAdd:
        return a + b;
      case AluOp::kSub:
        return a - b;
      case AluOp::kAnd:
        return a & b;
      case AluOp::kOr:
        return a | b;
      case AluOp::kXor:
        return a ^ b;
      case AluOp::kSll:
        return a << (b & 31);
      case AluOp::kSrl:
        return a >> (b & 31);
      case AluOp::kSra:
        return static_cast<uint32_t>(static_cast<int32_t>(a) >> (b & 31));
      case AluOp::kSlt:
        return static_cast<int32_t>(a) < static_cast<int32_t>(b) ? 1 : 0;
      case AluOp::kSltu:
        return a < b ? 1 : 0;
      case AluOp::kMul:
        return a * b;
      case AluOp::kMulhu:
        return static_cast<uint32_t>((static_cast<uint64_t>(a) * b) >> 32);
      case AluOp::kDiv: {
        auto sa = static_cast<int32_t>(a);
        auto sb = static_cast<int32_t>(b);
        if (sb == 0) {
          return UINT32_MAX;  // -1
        }
        if (sa == INT32_MIN && sb == -1) {
          return static_cast<uint32_t>(INT32_MIN);
        }
        return static_cast<uint32_t>(sa / sb);
      }
      case AluOp::kDivu:
        return b == 0 ? UINT32_MAX : a / b;
      case AluOp::kRem: {
        auto sa = static_cast<int32_t>(a);
        auto sb = static_cast<int32_t>(b);
        if (sb == 0) {
          return a;
        }
        if (sa == INT32_MIN && sb == -1) {
          return 0;
        }
        return static_cast<uint32_t>(sa % sb);
      }
      case AluOp::kRemu:
        return b == 0 ? a : a % b;
    }
    return 0;
  }

  static bool EvalBranch(isa::BranchCond cond, uint32_t a, uint32_t b) {
    using isa::BranchCond;
    switch (cond) {
      case BranchCond::kEq:
        return a == b;
      case BranchCond::kNe:
        return a != b;
      case BranchCond::kLt:
        return static_cast<int32_t>(a) < static_cast<int32_t>(b);
      case BranchCond::kGe:
        return static_cast<int32_t>(a) >= static_cast<int32_t>(b);
      case BranchCond::kLtu:
        return a < b;
      case BranchCond::kGeu:
        return a >= b;
    }
    return false;
  }

 private:
  VcpuContext& ctx_;
  ExecutionEngine* engine_;
  // See the constructor; `phase_` is never null after construction.
  std::optional<ScopedSerialPhase> fallback_phase_;
  const Phase* phase_ = nullptr;
  const uint64_t guest_insn_cost_;  // hoisted: charged on every instruction
  RunResult result_;
  uint64_t cycles_ = 0;
  uint64_t instret_ = 0;
  bool exited_ = false;
};

}  // namespace hyperion::cpu

#endif  // SRC_CPU_EXEC_CORE_H_
