// Tier-2 optimizer: lifts a hot DBT superblock into a small SSA-ish linear
// IR, optimizes it, and lowers it to a compact micro-op form the tier-2
// executor runs with fewer dispatches and memory touches per guest
// instruction than per-instruction ExecCore::Execute.
//
// Pipeline (see DESIGN.md §12):
//
//   lift      — one IR op per guest instruction, pc-relative values (auipc,
//               jal/jalr link registers, branch targets) resolved to
//               constants because the trace pins every instruction's va.
//   fold      — constant folding + copy propagation over a linear abstract
//               state (per-register known-constant lattice). Folds evaluate
//               through ExecCore::Alu, so a folded result can never diverge
//               from the interpreter.
//   dce       — backward dead-write elimination over pure ops. Liveness is
//               reset to all-live at every op that can leave the unit with
//               architectural state observable (memory ops, control
//               terminals, CSR accesses, seams), so a trap or off-trace
//               exit always sees exactly the interpreter's register file.
//   csr-elide — a supervisor scratch-CSR write that is provably overwritten
//               before any read (csrrw rd=r0 ... csrrw rd=r0, nothing but
//               pure ops and no seam between) is demoted to a kPrivGuard:
//               the privilege check and trap-and-emulate cost survive, the
//               dead write is dropped.
//   compact   — runs of eliminated ops collapse into counted kNops so dead
//               instructions cost one dispatch per run, not one each.
//
// Retirement parity: every guest instruction in the trace maps to exactly
// one micro-op retirement (counted kNops retire `aux` instructions), so
// cycles/instret — which the cross-engine differential tests compare — are
// identical to tier-1 execution. Eliminated instructions still retire; they
// just do no work.
//
// The unit records no pc guards at all (tier-1 traces pay one per chunk):
// inside a unit the logical pc is implicit in the op index, and every exit
// path writes the correct architectural pc before returning.

#ifndef SRC_CPU_IR_TIER2_H_
#define SRC_CPU_IR_TIER2_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/isa/hv32.h"
#include "src/util/byte_stream.h"

namespace hyperion::cpu::ir {

// Micro-op opcodes. Register-file ops carry their operands inline; anything
// the executor cannot retire inline falls back to ExecCore::Execute on the
// original decoded instruction (kFallback), which preserves every trap,
// MMIO, COW and dirty-logging side effect bit-for-bit.
enum class T2Op : uint8_t {
  kNop = 0,     // retire `aux` eliminated guest instructions
  kMovImm,      // rd = imm
  kMov,         // rd = rs1
  kAluRR,       // rd = Alu(funct, rs1, rs2)
  kAluRI,       // rd = Alu(funct, rs1, imm)
  kBranch,      // funct = cond; taken -> imm (absolute va), else va+4
  kJal,         // rd = va+4; jump to imm (absolute va)
  kJalr,        // rd = va+4; jump to (rs1 + imm) & ~3
  kSeam,        // former block entry: SMC / timer / interrupt window
  kCsrScratch,  // funct = 0/1/2 for csrrw/csrrs/csrrc on the scratch CSR
  kPrivGuard,   // privilege check + T&E cost of an elided dead scratch write
  kFallback,    // ExecCore::Execute(fallback[imm])
  kOpCount,     // sentinel for deserialization bounds checks
};

struct Tier2Op {
  T2Op op = T2Op::kNop;
  uint8_t funct = 0;
  uint8_t rd = 0;
  uint8_t rs1 = 0;
  uint8_t rs2 = 0;
  int32_t imm = 0;
  // kNop: retirement count. kBranch/kJal/kJalr: expected next va when the
  // transfer stays on the trace (the successor op's va, or head_va for the
  // loop-closing terminal).
  uint32_t aux = 0;
  uint32_t va = 0;  // guest va of the original instruction (exit/trap pc)
};

// The compiler's view of one hot superblock: the trace's instructions plus
// the chunk structure tier-1 derived (chunk va anchors each instruction's
// guest address; seams mark former block entry points).
struct Tier2Input {
  struct Piece {
    uint32_t begin = 0;  // [begin, end) indices into instrs
    uint32_t end = 0;
    uint32_t va = 0;  // va of instrs[begin]
    uint8_t seam = 0;
  };
  uint32_t head_va = 0;
  std::vector<isa::Instruction> instrs;
  std::vector<Piece> pieces;
};

// A compiled tier-2 translation unit.
struct Tier2Unit {
  uint32_t head_va = 0;
  std::vector<Tier2Op> ops;
  // Original decoded instructions referenced by kFallback ops (imm indexes).
  std::vector<isa::Instruction> fallback;
  // Guard set for lazy mapping revalidation: one (probe va, expected gpn)
  // pair per guest code page the unit fetches from. Filled by the engine at
  // promotion time; a stale-epoch unit reruns only these probes.
  std::vector<std::pair<uint32_t, uint32_t>> page_map;
  uint64_t map_gen = 0;  // epoch the unit was (re)validated in

  // Optimization summary (folded into VcpuStats at promotion).
  uint32_t folds = 0;          // instructions constant-folded to kMovImm
  uint32_t dead = 0;           // pure ops eliminated as dead writes
  uint32_t csr_elided = 0;     // dead scratch-CSR writes demoted to guards
  uint32_t guards_elided = 0;  // tier-1 per-chunk pc guards removed
};

// Compiles a superblock. Returns nullopt when the trace contains an
// instruction tier-2 refuses to lift (anything that can invalidate the
// hoisted status/timecmp assumptions: non-scratch CSR accesses, privileged
// control) — the caller keeps running the tier-1 trace.
std::optional<Tier2Unit> Compile(const Tier2Input& input);

// Persistence (the engine embeds units in its translation blob). The
// deserializer validates every index, register number and op kind against
// the unit's own tables, so a corrupted or hostile blob yields nullopt,
// never an out-of-bounds executor.
void SerializeUnit(const Tier2Unit& unit, ByteWriter& w);
std::optional<Tier2Unit> DeserializeUnit(ByteReader& r);

}  // namespace hyperion::cpu::ir

#endif  // SRC_CPU_IR_TIER2_H_
