// Tier-2 executor: runs a compiled Tier2Unit against an ExecCore.
//
// The unit is re-entered while the loop keeps closing, exactly like the
// tier-1 superblock runner, but with three structural differences:
//
//  * no pc guards — inside a unit the logical pc is the op index; every
//    exit path writes the correct architectural pc before returning;
//  * batched retirement — pure micro-ops accumulate a pending-retirement
//    count that is folded into the core's cycle/instret counters in one
//    RetireBulk call at seams, exits and fallback boundaries, instead of a
//    Charge + increment per instruction;
//  * deopt — anything the unit cannot retire inline (a trap from a
//    fallback op, a privilege violation on a scratch-CSR op) flushes,
//    restores the precise pc and returns with `deopt` set, and the caller
//    resumes in tier-1 blocks. Off-trace branches are ordinary exits, not
//    deopts.
//
// Seams mirror RunTrace: pending SMC invalidations and the per-block
// timer/interrupt window are honored at every former block entry, so a
// tier-2 unit never widens worst-case interrupt latency beyond one block.
// The hoisted timer_due/ie values stay valid for the whole stay because the
// only CSR the unit can retire inline is the scratch register.

#ifndef SRC_CPU_IR_TIER2_EXEC_H_
#define SRC_CPU_IR_TIER2_EXEC_H_

#include <cstdint>
#include <limits>

#include "src/cpu/exec_core.h"
#include "src/cpu/ir/tier2.h"

namespace hyperion::cpu::ir {

struct Tier2Outcome {
  uint64_t passes = 0;  // loop passes, counting a partial final pass
  bool deopt = false;   // bailed to tier-1 (trap or privilege violation)
};

inline Tier2Outcome RunTier2Unit(ExecCore& core, VcpuContext& ctx,
                                 const Tier2Unit& u, const bool& have_pending,
                                 uint64_t max_cycles) {
  CpuState& s = ctx.state;
  const Tier2Op* ops = u.ops.data();
  const size_t nops = u.ops.size();
  const uint32_t head_va = u.head_va;
  // Valid for the whole stay: the unit retires no CSR but scratch inline,
  // and any other status/timecmp writer exits through a fallback trap.
  const uint64_t timer_due =
      s.timecmp != 0 ? s.timecmp : std::numeric_limits<uint64_t>::max();
  const bool ie = s.interrupts_enabled();
  Tier2Outcome out;
  uint64_t pend = 0;  // retirements not yet folded into the core counters
  auto flush = [&] {
    if (pend != 0) {
      core.RetireBulk(pend);
      pend = 0;
    }
  };
  for (;;) {
    ++out.passes;
    for (size_t i = 0; i < nops; ++i) {
      const Tier2Op& o = ops[i];
      switch (o.op) {
        case T2Op::kNop:
          pend += o.aux;
          break;
        case T2Op::kMovImm:
          s.WriteReg(o.rd, static_cast<uint32_t>(o.imm));
          ++pend;
          break;
        case T2Op::kMov:
          s.WriteReg(o.rd, s.ReadReg(o.rs1));
          ++pend;
          break;
        case T2Op::kAluRR:
          s.WriteReg(o.rd, ExecCore::Alu(static_cast<isa::AluOp>(o.funct),
                                         s.ReadReg(o.rs1), s.ReadReg(o.rs2)));
          ++pend;
          break;
        case T2Op::kAluRI:
          s.WriteReg(o.rd, ExecCore::Alu(static_cast<isa::AluOp>(o.funct),
                                         s.ReadReg(o.rs1),
                                         static_cast<uint32_t>(o.imm)));
          ++pend;
          break;
        case T2Op::kBranch: {
          ++pend;
          bool taken =
              ExecCore::EvalBranch(static_cast<isa::BranchCond>(o.funct),
                                   s.ReadReg(o.rs1), s.ReadReg(o.rs2));
          uint32_t next = taken ? static_cast<uint32_t>(o.imm) : o.va + 4;
          if (next != o.aux) {
            flush();
            s.pc = next;
            return out;  // off-trace transfer: ordinary exit
          }
          break;
        }
        case T2Op::kJal: {
          ++pend;
          s.WriteReg(o.rd, o.va + 4);
          if (static_cast<uint32_t>(o.imm) != o.aux) {
            flush();
            s.pc = static_cast<uint32_t>(o.imm);
            return out;
          }
          break;
        }
        case T2Op::kJalr: {
          ++pend;
          // Target before link write: jalr with rd == rs1 jumps through the
          // pre-link value, exactly as ExecCore::Execute does.
          uint32_t next = (s.ReadReg(o.rs1) + static_cast<uint32_t>(o.imm)) & ~3u;
          s.WriteReg(o.rd, o.va + 4);
          if (next != o.aux) {
            flush();
            s.pc = next;
            return out;
          }
          break;
        }
        case T2Op::kSeam:
          // Former block entry: apply SMC invalidations and the per-block
          // interrupt window exactly where block-by-block dispatch would.
          flush();
          if (have_pending) {
            s.pc = o.va;
            return out;
          }
          if (core.Now() >= timer_due) {
            core.CheckTimer();
          }
          if (ie && s.ipend != 0) {
            s.pc = o.va;
            return out;
          }
          break;
        case T2Op::kCsrScratch: {
          if (s.priv() != isa::PrivMode::kSupervisor) {
            flush();
            s.pc = o.va;
            out.deopt = true;  // tier-1/interp raises the precise trap
            return out;
          }
          core.ChargePrivileged();
          ++pend;
          uint32_t old = s.scratch;
          uint32_t a = s.ReadReg(o.rs1);
          bool write = o.funct == 0 || o.rs1 != 0;
          uint32_t next = o.funct == 0 ? a : (o.funct == 1 ? (old | a) : (old & ~a));
          if (write) {
            s.scratch = next;
          }
          s.WriteReg(o.rd, old);
          break;
        }
        case T2Op::kPrivGuard:
          // An elided dead scratch write: privilege semantics and the
          // trap-and-emulate interception cost survive, the write does not.
          if (s.priv() != isa::PrivMode::kSupervisor) {
            flush();
            s.pc = o.va;
            out.deopt = true;
            return out;
          }
          core.ChargePrivileged();
          ++pend;
          break;
        case T2Op::kFallback:
          // Execute retires the instruction itself; flush first so the
          // retirement order matches per-instruction execution.
          flush();
          s.pc = o.va;
          if (!core.Execute(u.fallback[static_cast<size_t>(o.imm)])) {
            return out;  // exit latched; pc already precise
          }
          if (s.pc != o.va + 4) {
            out.deopt = true;  // trap vectored into the guest
            return out;
          }
          break;
        default:
          flush();
          s.pc = o.va;
          out.deopt = true;
          return out;
      }
    }
    // Loop closure: mirror the dispatch loop's per-block window.
    flush();
    if (have_pending || core.cycles() >= max_cycles) {
      s.pc = head_va;
      return out;
    }
    if (core.Now() >= timer_due) {
      core.CheckTimer();
    }
    if (ie && s.ipend != 0) {
      s.pc = head_va;
      return out;
    }
  }
}

}  // namespace hyperion::cpu::ir

#endif  // SRC_CPU_IR_TIER2_EXEC_H_
