#include "src/cpu/ir/tier2.h"

#include <array>

#include "src/cpu/exec_core.h"

namespace hyperion::cpu::ir {

namespace {

using isa::AluOp;
using isa::Opcode;

// Micro-ops with no side effects beyond a register write: candidates for
// dead-write elimination and transparent to the scratch-CSR elision scan.
bool PureOp(T2Op op) {
  switch (op) {
    case T2Op::kNop:
    case T2Op::kMovImm:
    case T2Op::kMov:
    case T2Op::kAluRR:
    case T2Op::kAluRI:
      return true;
    default:
      return false;
  }
}

bool Commutative(AluOp op) {
  switch (op) {
    case AluOp::kAdd:
    case AluOp::kAnd:
    case AluOp::kOr:
    case AluOp::kXor:
    case AluOp::kMul:
    case AluOp::kMulhu:
      return true;
    default:
      return false;
  }
}

// Per-register known-constant lattice, walked linearly over the unit. Facts
// are sound for every execution because a unit is entered only at op 0 and
// left only through exits (never re-entered mid-stream), and an exit aborts
// the pass before any fact derived later could be consumed.
struct ConstState {
  std::array<bool, 16> known{};
  std::array<uint32_t, 16> val{};

  ConstState() {
    known[0] = true;  // r0 is architecturally zero
    val[0] = 0;
  }

  void Kill(uint8_t rd) {
    if (rd != 0) {
      known[rd] = false;
    }
  }
  void Set(uint8_t rd, uint32_t v) {
    if (rd != 0) {
      known[rd] = true;
      val[rd] = v;
    }
  }
};

Tier2Op MakeNop(uint32_t va) {
  Tier2Op o;
  o.op = T2Op::kNop;
  o.aux = 1;
  o.va = va;
  return o;
}

// Lifts one guest instruction at `va` (trace successor `next_va`) into a
// micro-op, folding through the abstract state. Returns false when the
// instruction cannot be lifted (the caller abandons the compilation).
bool Lift(const isa::Instruction& in, uint32_t va, uint32_t next_va,
          ConstState& st, Tier2Unit& unit) {
  Tier2Op o;
  o.va = va;
  switch (in.opcode) {
    case Opcode::kOp: {
      auto f = static_cast<AluOp>(in.funct);
      bool ak = st.known[in.rs1];
      bool bk = st.known[in.rs2];
      if (in.rd == 0) {
        unit.ops.push_back(MakeNop(va));
        ++unit.dead;
        return true;
      }
      if (ak && bk) {
        uint32_t res = ExecCore::Alu(f, st.val[in.rs1], st.val[in.rs2]);
        o.op = T2Op::kMovImm;
        o.rd = in.rd;
        o.imm = static_cast<int32_t>(res);
        st.Set(in.rd, res);
        ++unit.folds;
        unit.ops.push_back(o);
        return true;
      }
      if (bk || (ak && Commutative(f))) {
        uint8_t reg = bk ? in.rs1 : in.rs2;
        uint32_t c = bk ? st.val[in.rs2] : st.val[in.rs1];
        if (f == AluOp::kAdd && c == 0) {
          o.op = T2Op::kMov;
          o.rd = in.rd;
          o.rs1 = reg;
        } else {
          o.op = T2Op::kAluRI;
          o.funct = in.funct;
          o.rd = in.rd;
          o.rs1 = reg;
          o.imm = static_cast<int32_t>(c);
        }
        if (o.op == T2Op::kMov && st.known[reg]) {
          st.Set(in.rd, st.val[reg]);
        } else {
          st.Kill(in.rd);
        }
        unit.ops.push_back(o);
        return true;
      }
      o.op = T2Op::kAluRR;
      o.funct = in.funct;
      o.rd = in.rd;
      o.rs1 = in.rs1;
      o.rs2 = in.rs2;
      st.Kill(in.rd);
      unit.ops.push_back(o);
      return true;
    }
    case Opcode::kOpImm: {
      auto f = static_cast<AluOp>(in.funct);
      if (in.rd == 0) {
        unit.ops.push_back(MakeNop(va));
        ++unit.dead;
        return true;
      }
      if (st.known[in.rs1]) {
        uint32_t res =
            ExecCore::Alu(f, st.val[in.rs1], static_cast<uint32_t>(in.imm));
        o.op = T2Op::kMovImm;
        o.rd = in.rd;
        o.imm = static_cast<int32_t>(res);
        st.Set(in.rd, res);
        ++unit.folds;
      } else if (f == AluOp::kAdd && in.imm == 0) {
        o.op = T2Op::kMov;
        o.rd = in.rd;
        o.rs1 = in.rs1;
        st.Kill(in.rd);
      } else {
        o.op = T2Op::kAluRI;
        o.funct = in.funct;
        o.rd = in.rd;
        o.rs1 = in.rs1;
        o.imm = in.imm;
        st.Kill(in.rd);
      }
      unit.ops.push_back(o);
      return true;
    }
    case Opcode::kLui:
      if (in.rd == 0) {
        unit.ops.push_back(MakeNop(va));
        ++unit.dead;
        return true;
      }
      o.op = T2Op::kMovImm;
      o.rd = in.rd;
      o.imm = in.imm;
      st.Set(in.rd, static_cast<uint32_t>(in.imm));
      unit.ops.push_back(o);
      return true;
    case Opcode::kAuipc: {
      // The trace pins this instruction's va, so the pc-relative value is a
      // compile-time constant.
      if (in.rd == 0) {
        unit.ops.push_back(MakeNop(va));
        ++unit.dead;
        return true;
      }
      uint32_t res = va + static_cast<uint32_t>(in.imm);
      o.op = T2Op::kMovImm;
      o.rd = in.rd;
      o.imm = static_cast<int32_t>(res);
      st.Set(in.rd, res);
      ++unit.folds;
      unit.ops.push_back(o);
      return true;
    }
    case Opcode::kJal:
      o.op = T2Op::kJal;
      o.rd = in.rd;
      o.imm = static_cast<int32_t>(va + static_cast<uint32_t>(in.imm));
      o.aux = next_va;
      st.Set(in.rd, va + 4);
      unit.ops.push_back(o);
      return true;
    case Opcode::kJalr:
      if (st.known[in.rs1]) {
        // Constant-target indirect jump (e.g. a return through an in-trace
        // link register): becomes a direct jump. The fact is derived from
        // in-trace defs, so every execution reaching this op agrees.
        o.op = T2Op::kJal;
        o.rd = in.rd;
        o.imm = static_cast<int32_t>(
            (st.val[in.rs1] + static_cast<uint32_t>(in.imm)) & ~3u);
        ++unit.folds;
      } else {
        o.op = T2Op::kJalr;
        o.rd = in.rd;
        o.rs1 = in.rs1;
        o.imm = in.imm;
      }
      o.aux = next_va;
      st.Set(in.rd, va + 4);
      unit.ops.push_back(o);
      return true;
    case Opcode::kBranch:
      o.op = T2Op::kBranch;
      o.funct = in.funct;
      o.rs1 = in.rs1;
      o.rs2 = in.rs2;
      o.imm = static_cast<int32_t>(va + static_cast<uint32_t>(in.imm));
      o.aux = next_va;
      unit.ops.push_back(o);
      return true;
    case Opcode::kCsrrw:
    case Opcode::kCsrrs:
    case Opcode::kCsrrc:
      // Only the scratch CSR may retire inline: anything else could move
      // status/timecmp out from under the executor's hoisted checks.
      if (in.imm != static_cast<int32_t>(isa::Csr::kScratch)) {
        return false;
      }
      o.op = T2Op::kCsrScratch;
      o.funct = static_cast<uint8_t>(in.opcode == Opcode::kCsrrw   ? 0
                                     : in.opcode == Opcode::kCsrrs ? 1
                                                                   : 2);
      o.rd = in.rd;
      o.rs1 = in.rs1;
      st.Kill(in.rd);
      unit.ops.push_back(o);
      return true;
    case Opcode::kLw:
    case Opcode::kLh:
    case Opcode::kLhu:
    case Opcode::kLb:
    case Opcode::kLbu:
    case Opcode::kAmoSwap:
    case Opcode::kAmoAdd:
      st.Kill(in.rd);
      [[fallthrough]];
    case Opcode::kSw:
    case Opcode::kSh:
    case Opcode::kSb:
      o.op = T2Op::kFallback;
      o.imm = static_cast<int32_t>(unit.fallback.size());
      unit.fallback.push_back(in);
      unit.ops.push_back(o);
      return true;
    default:
      // Privileged / environment instructions never appear inside a
      // traceable superblock; refuse defensively rather than mis-lift.
      return false;
  }
}

// Backward dead-write elimination. Liveness resets to all-live at every op
// that can leave the unit with architectural state observable, so a trap or
// off-trace exit always sees the same register file the interpreter would.
void EliminateDeadWrites(Tier2Unit& unit) {
  std::array<bool, 16> live;
  live.fill(true);
  for (size_t n = unit.ops.size(); n-- > 0;) {
    Tier2Op& o = unit.ops[n];
    switch (o.op) {
      case T2Op::kNop:
        break;
      case T2Op::kMovImm:
      case T2Op::kMov:
      case T2Op::kAluRR:
      case T2Op::kAluRI: {
        if (o.rd != 0 && !live[o.rd]) {
          uint32_t va = o.va;
          o = MakeNop(va);
          ++unit.dead;
          break;
        }
        if (o.rd != 0) {
          live[o.rd] = false;
        }
        if (o.op == T2Op::kMov || o.op == T2Op::kAluRI) {
          live[o.rs1] = true;
        } else if (o.op == T2Op::kAluRR) {
          live[o.rs1] = true;
          live[o.rs2] = true;
        }
        break;
      }
      default:
        live.fill(true);
        break;
    }
  }
}

// Demotes a scratch-CSR write that is provably overwritten before any read
// — csrrw rd=r0 followed by another csrrw rd=r0 with nothing but pure ops
// (and no seam) between — to a kPrivGuard. The second write must also
// discard the old value (rd = r0), since csrrw with rd != r0 observes the
// first write through its read-back.
void ElideDeadScratchWrites(Tier2Unit& unit) {
  for (size_t i = 0; i < unit.ops.size(); ++i) {
    Tier2Op& o = unit.ops[i];
    if (o.op != T2Op::kCsrScratch || o.funct != 0 || o.rd != 0) {
      continue;
    }
    size_t j = i + 1;
    while (j < unit.ops.size() && PureOp(unit.ops[j].op)) {
      ++j;
    }
    if (j < unit.ops.size() && unit.ops[j].op == T2Op::kCsrScratch &&
        unit.ops[j].funct == 0 && unit.ops[j].rd == 0) {
      o.op = T2Op::kPrivGuard;
      o.rs1 = 0;
      ++unit.csr_elided;
    }
  }
}

// Collapses adjacent kNops into counted retirements: a run of eliminated
// instructions costs one dispatch, not one each. Adjacency never spans a
// seam or a barrier (those are distinct ops), so retirement order relative
// to every exit point is preserved.
void CompactNops(Tier2Unit& unit) {
  std::vector<Tier2Op> out;
  out.reserve(unit.ops.size());
  for (const Tier2Op& o : unit.ops) {
    if (o.op == T2Op::kNop && !out.empty() && out.back().op == T2Op::kNop) {
      out.back().aux += o.aux;
    } else {
      out.push_back(o);
    }
  }
  unit.ops = std::move(out);
}

}  // namespace

std::optional<Tier2Unit> Compile(const Tier2Input& input) {
  const size_t n = input.instrs.size();
  if (n == 0 || input.pieces.empty()) {
    return std::nullopt;
  }
  // Pieces must tile [0, n) in order — they anchor every instruction's va.
  uint32_t expect = 0;
  for (const Tier2Input::Piece& p : input.pieces) {
    if (p.begin != expect || p.end <= p.begin || p.end > n) {
      return std::nullopt;
    }
    expect = p.end;
  }
  if (expect != n) {
    return std::nullopt;
  }

  std::vector<uint32_t> va(n);
  for (const Tier2Input::Piece& p : input.pieces) {
    for (uint32_t i = p.begin; i < p.end; ++i) {
      va[i] = p.va + 4 * (i - p.begin);
    }
  }

  Tier2Unit unit;
  unit.head_va = input.head_va;
  unit.guards_elided = static_cast<uint32_t>(input.pieces.size());
  ConstState st;
  size_t piece_idx = 0;
  for (uint32_t i = 0; i < n; ++i) {
    while (piece_idx < input.pieces.size() &&
           input.pieces[piece_idx].begin == i) {
      if (input.pieces[piece_idx].seam != 0) {
        Tier2Op seam;
        seam.op = T2Op::kSeam;
        seam.va = input.pieces[piece_idx].va;
        unit.ops.push_back(seam);
      }
      ++piece_idx;
    }
    uint32_t next_va = i + 1 < n ? va[i + 1] : input.head_va;
    if (!Lift(input.instrs[i], va[i], next_va, st, unit)) {
      return std::nullopt;
    }
  }

  EliminateDeadWrites(unit);
  ElideDeadScratchWrites(unit);
  CompactNops(unit);
  return unit;
}

void SerializeUnit(const Tier2Unit& unit, ByteWriter& w) {
  w.WriteU32(unit.head_va);
  w.WriteU32(static_cast<uint32_t>(unit.ops.size()));
  for (const Tier2Op& o : unit.ops) {
    w.WriteU8(static_cast<uint8_t>(o.op));
    w.WriteU8(o.funct);
    w.WriteU8(o.rd);
    w.WriteU8(o.rs1);
    w.WriteU8(o.rs2);
    w.WriteU32(static_cast<uint32_t>(o.imm));
    w.WriteU32(o.aux);
    w.WriteU32(o.va);
  }
  w.WriteU32(static_cast<uint32_t>(unit.fallback.size()));
  for (const isa::Instruction& in : unit.fallback) {
    w.WriteU8(static_cast<uint8_t>(in.opcode));
    w.WriteU8(in.rd);
    w.WriteU8(in.rs1);
    w.WriteU8(in.rs2);
    w.WriteU8(in.funct);
    w.WriteU32(static_cast<uint32_t>(in.imm));
  }
  w.WriteU32(static_cast<uint32_t>(unit.page_map.size()));
  for (const auto& [probe_va, gpn] : unit.page_map) {
    w.WriteU32(probe_va);
    w.WriteU32(gpn);
  }
  w.WriteU32(unit.folds);
  w.WriteU32(unit.dead);
  w.WriteU32(unit.csr_elided);
  w.WriteU32(unit.guards_elided);
}

std::optional<Tier2Unit> DeserializeUnit(ByteReader& r) {
  // Caps: a unit derives from a <=256-instruction trace; anything larger is
  // a corrupted or hostile blob.
  constexpr uint32_t kMaxOps = 1024;
  constexpr uint32_t kMaxFallback = 1024;
  constexpr uint32_t kMaxPages = 64;

  Tier2Unit unit;
  auto head = r.ReadU32();
  if (!head.ok()) {
    return std::nullopt;
  }
  unit.head_va = *head;
  auto nops = r.ReadU32();
  if (!nops.ok() || *nops == 0 || *nops > kMaxOps) {
    return std::nullopt;
  }
  unit.ops.resize(*nops);
  for (Tier2Op& o : unit.ops) {
    auto op = r.ReadU8();
    auto funct = r.ReadU8();
    auto rd = r.ReadU8();
    auto rs1 = r.ReadU8();
    auto rs2 = r.ReadU8();
    auto imm = r.ReadU32();
    auto aux = r.ReadU32();
    auto va = r.ReadU32();
    if (!va.ok()) {
      return std::nullopt;
    }
    if (*op >= static_cast<uint8_t>(T2Op::kOpCount) || *rd >= 16 ||
        *rs1 >= 16 || *rs2 >= 16) {
      return std::nullopt;
    }
    o.op = static_cast<T2Op>(*op);
    o.funct = *funct;
    o.rd = *rd;
    o.rs1 = *rs1;
    o.rs2 = *rs2;
    o.imm = static_cast<int32_t>(*imm);
    o.aux = *aux;
    o.va = *va;
    // Funct ranges feed enum switches in the executor; reject junk.
    if ((o.op == T2Op::kAluRR || o.op == T2Op::kAluRI) &&
        o.funct > static_cast<uint8_t>(isa::AluOp::kRemu)) {
      return std::nullopt;
    }
    if (o.op == T2Op::kBranch &&
        o.funct > static_cast<uint8_t>(isa::BranchCond::kGeu)) {
      return std::nullopt;
    }
    if (o.op == T2Op::kCsrScratch && o.funct > 2) {
      return std::nullopt;
    }
  }
  auto nfall = r.ReadU32();
  if (!nfall.ok() || *nfall > kMaxFallback) {
    return std::nullopt;
  }
  unit.fallback.resize(*nfall);
  for (isa::Instruction& in : unit.fallback) {
    auto op = r.ReadU8();
    auto rd = r.ReadU8();
    auto rs1 = r.ReadU8();
    auto rs2 = r.ReadU8();
    auto funct = r.ReadU8();
    auto imm = r.ReadU32();
    if (!imm.ok() || *rd >= 16 || *rs1 >= 16 || *rs2 >= 16) {
      return std::nullopt;
    }
    in.opcode = static_cast<Opcode>(*op);
    in.rd = *rd;
    in.rs1 = *rs1;
    in.rs2 = *rs2;
    in.funct = *funct;
    in.imm = static_cast<int32_t>(*imm);
  }
  // Fallback indices must resolve inside the table we just read.
  for (const Tier2Op& o : unit.ops) {
    if (o.op == T2Op::kFallback &&
        (o.imm < 0 || static_cast<uint32_t>(o.imm) >= *nfall)) {
      return std::nullopt;
    }
  }
  auto npages = r.ReadU32();
  if (!npages.ok() || *npages == 0 || *npages > kMaxPages) {
    return std::nullopt;
  }
  unit.page_map.resize(*npages);
  for (auto& [probe_va, gpn] : unit.page_map) {
    auto pv = r.ReadU32();
    auto pg = r.ReadU32();
    if (!pg.ok()) {
      return std::nullopt;
    }
    probe_va = *pv;
    gpn = *pg;
  }
  auto folds = r.ReadU32();
  auto dead = r.ReadU32();
  auto csr = r.ReadU32();
  auto guards = r.ReadU32();
  if (!guards.ok()) {
    return std::nullopt;
  }
  unit.folds = *folds;
  unit.dead = *dead;
  unit.csr_elided = *csr;
  unit.guards_elided = *guards;
  return unit;
}

}  // namespace hyperion::cpu::ir
