// Architectural state of one HV32 virtual CPU.

#ifndef SRC_CPU_STATE_H_
#define SRC_CPU_STATE_H_

#include <array>
#include <cstdint>

#include "src/isa/hv32.h"
#include "src/util/byte_stream.h"
#include "src/util/status.h"

namespace hyperion::cpu {

struct CpuState {
  std::array<uint32_t, isa::kNumGprs> regs{};
  uint32_t pc = isa::kResetPc;

  // CSRs. Boot state: supervisor mode, interrupts off, paging off.
  uint32_t status = isa::StatusBits::kPrv;
  uint32_t cause = 0;
  uint32_t epc = 0;
  uint32_t tvec = 0;
  uint32_t tval = 0;
  uint32_t scratch = 0;
  uint32_t ptbr = 0;
  uint64_t timecmp = 0;  // 0 disables the timer
  uint64_t cycle = 0;    // retired cycles (accumulated across slices)
  uint64_t instret = 0;  // retired instructions
  uint32_t hartid = 0;
  uint32_t ipend = 0;  // pending interrupt lines (bit per isa::Interrupt)

  bool halted = false;   // HALT executed
  bool waiting = false;  // parked in WFI
  // True between delivery of a software (IPI) interrupt and the matching
  // sret (or any other trap — the trap stack is one deep). While set, an
  // sfence counts as the remote half of a TLB shootdown in VcpuStats.
  bool in_ipi_handler = false;

  // --- Helpers -------------------------------------------------------------

  isa::PrivMode priv() const {
    return (status & isa::StatusBits::kPrv) ? isa::PrivMode::kSupervisor : isa::PrivMode::kUser;
  }
  bool interrupts_enabled() const { return status & isa::StatusBits::kIe; }
  bool paging_enabled() const { return status & isa::StatusBits::kPg; }

  // regs[0] is kept architecturally zero by WriteReg (and re-zeroed on
  // deserialize), so reads need no special case — this is the hottest
  // operation in both engines.
  uint32_t ReadReg(uint8_t r) const { return regs[r]; }
  void WriteReg(uint8_t r, uint32_t v) {
    if (r != 0) {
      regs[r] = v;
    }
  }

  void RaisePending(isa::Interrupt line) { ipend |= 1u << static_cast<uint32_t>(line); }
  void ClearPending(isa::Interrupt line) { ipend &= ~(1u << static_cast<uint32_t>(line)); }
  bool HasDeliverableInterrupt() const { return interrupts_enabled() && ipend != 0; }

  // --- Serialization (snapshots, live migration) ----------------------------

  void Serialize(ByteWriter& w) const {
    for (uint32_t r : regs) {
      w.WriteU32(r);
    }
    w.WriteU32(pc);
    w.WriteU32(status);
    w.WriteU32(cause);
    w.WriteU32(epc);
    w.WriteU32(tvec);
    w.WriteU32(tval);
    w.WriteU32(scratch);
    w.WriteU32(ptbr);
    w.WriteU64(timecmp);
    w.WriteU64(cycle);
    w.WriteU64(instret);
    w.WriteU32(hartid);
    w.WriteU32(ipend);
    w.WriteU8(halted ? 1 : 0);
    w.WriteU8(waiting ? 1 : 0);
    w.WriteU8(in_ipi_handler ? 1 : 0);
  }

  static Result<CpuState> Deserialize(ByteReader& r) {
    CpuState s;
    for (auto& reg : s.regs) {
      HYP_ASSIGN_OR_RETURN(reg, r.ReadU32());
    }
    HYP_ASSIGN_OR_RETURN(s.pc, r.ReadU32());
    HYP_ASSIGN_OR_RETURN(s.status, r.ReadU32());
    HYP_ASSIGN_OR_RETURN(s.cause, r.ReadU32());
    HYP_ASSIGN_OR_RETURN(s.epc, r.ReadU32());
    HYP_ASSIGN_OR_RETURN(s.tvec, r.ReadU32());
    HYP_ASSIGN_OR_RETURN(s.tval, r.ReadU32());
    HYP_ASSIGN_OR_RETURN(s.scratch, r.ReadU32());
    HYP_ASSIGN_OR_RETURN(s.ptbr, r.ReadU32());
    HYP_ASSIGN_OR_RETURN(s.timecmp, r.ReadU64());
    HYP_ASSIGN_OR_RETURN(s.cycle, r.ReadU64());
    HYP_ASSIGN_OR_RETURN(s.instret, r.ReadU64());
    HYP_ASSIGN_OR_RETURN(s.hartid, r.ReadU32());
    HYP_ASSIGN_OR_RETURN(s.ipend, r.ReadU32());
    HYP_ASSIGN_OR_RETURN(uint8_t halted, r.ReadU8());
    HYP_ASSIGN_OR_RETURN(uint8_t waiting, r.ReadU8());
    HYP_ASSIGN_OR_RETURN(uint8_t in_ipi, r.ReadU8());
    s.halted = halted != 0;
    s.waiting = waiting != 0;
    s.in_ipi_handler = in_ipi != 0;
    s.regs[0] = 0;  // restore the ReadReg invariant against hostile streams
    return s;
  }

  bool operator==(const CpuState&) const = default;
};

}  // namespace hyperion::cpu

#endif  // SRC_CPU_STATE_H_
