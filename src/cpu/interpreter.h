// Fetch-decode-execute interpreter engine.

#ifndef SRC_CPU_INTERPRETER_H_
#define SRC_CPU_INTERPRETER_H_

#include <memory>

#include "src/cpu/context.h"

namespace hyperion::cpu {

// Baseline execution engine: decodes every instruction on every execution.
// Simple and exactly faithful; the DBT engine trades memory for speed.
class Interpreter final : public ExecutionEngine {
 public:
  std::string_view name() const override { return "interpreter"; }
  RunResult Run(VcpuContext& ctx, uint64_t max_cycles) override;
};

std::unique_ptr<ExecutionEngine> MakeInterpreter();

}  // namespace hyperion::cpu

#endif  // SRC_CPU_INTERPRETER_H_
