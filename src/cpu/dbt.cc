#include "src/cpu/dbt.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/cpu/exec_core.h"
#include "src/cpu/interpreter.h"

namespace hyperion::cpu {

namespace {

using isa::Opcode;

// An instruction that may change control flow, privileged state, or the
// validity of cached translations ends its block.
bool EndsBlock(const isa::Instruction& in) {
  switch (in.opcode) {
    case Opcode::kJal:
    case Opcode::kJalr:
    case Opcode::kBranch:
    case Opcode::kEcall:
    case Opcode::kEbreak:
    case Opcode::kSret:
    case Opcode::kWfi:
    case Opcode::kHcall:
    case Opcode::kSfence:
    case Opcode::kHalt:
    case Opcode::kCsrrw:
    case Opcode::kCsrrs:
    case Opcode::kCsrrc:
    case Opcode::kIllegal:
      return true;
    default:
      return false;
  }
}

class DbtEngine final : public ExecutionEngine {
 public:
  explicit DbtEngine(size_t max_blocks) : max_blocks_(max_blocks) {}

  std::string_view name() const override { return "dbt"; }

  RunResult Run(VcpuContext& ctx, uint64_t max_cycles) override {
    ExecCore core(ctx, this);
    CpuState& s = ctx.state;

    if (s.halted) {
      core.Exit(ExitReason::kHalt);
      return core.Finish();
    }
    if (s.waiting) {
      core.CheckTimer();
      if (s.ipend == 0) {
        core.Charge(1);
        core.Exit(ExitReason::kWfi);
        return core.Finish();
      }
      s.waiting = false;
    }

    while (!core.exited() && core.cycles() < max_cycles) {
      ApplyPendingInvalidations();
      core.CheckTimer();
      if (core.DeliverInterruptIfPending() && core.exited()) {
        break;
      }

      uint64_t key = Key(s.pc, s.ptbr, s.paging_enabled());
      auto it = blocks_.find(key);
      if (it == blocks_.end()) {
        Block block = TranslateBlock(core, ctx, s.pc);
        if (block.instrs.empty()) {
          // First instruction is unfetchable (fault) or an MMIO/absent page:
          // let the faithful single-step path produce the trap or exit.
          SingleStep(core, ctx);
          continue;
        }
        ++ctx.stats.blocks_translated;
        core.Charge(kTranslateCostPerInsn * block.instrs.size());
        if (blocks_.size() >= max_blocks_) {
          EvictAll();  // simple full-flush policy, as early DBTs used
        }
        it = blocks_.emplace(key, std::move(block)).first;
        for (uint32_t gpn : it->second.gpns) {
          code_pages_.insert(gpn);
          page_blocks_[gpn].push_back(key);
        }
      }

      // Execute the block. Interrupts are only checked at block boundaries
      // (standard DBT behavior). A trap inside the block redirects pc, which
      // we detect by comparing against the expected fall-through.
      const Block& block = it->second;
      ++ctx.stats.block_executions;
      uint32_t expect_pc = block.start_va;
      for (const isa::Instruction& in : block.instrs) {
        if (s.pc != expect_pc) {
          break;  // a trap inside the block redirected control
        }
        if (!core.Execute(in)) {
          break;  // exit latched
        }
        expect_pc += 4;
      }
    }
    return core.Finish();
  }

  void InvalidateCodePage(uint32_t gpn) override {
    if (code_pages_.count(gpn)) {
      pending_page_invalidations_.push_back(gpn);
    }
  }

  void FlushCodeCache() override { pending_flush_ = true; }

 private:
  struct Block {
    uint32_t start_va = 0;
    std::vector<isa::Instruction> instrs;
    std::vector<uint32_t> gpns;  // guest pages the code bytes came from
  };

  static constexpr size_t kMaxBlockInstrs = 64;
  static constexpr uint64_t kTranslateCostPerInsn = 6;

  static uint64_t Key(uint32_t va, uint32_t ptbr, bool paging) {
    uint64_t k = va;
    k |= static_cast<uint64_t>(ptbr) << 32;
    // ptbr values are page numbers (< 2^20 in practice); fold paging on top.
    return k ^ (paging ? 0x8000000000000000ull : 0);
  }

  // Decodes instructions starting at `va` without delivering any trap: a
  // fetch problem simply ends the block.
  Block TranslateBlock(ExecCore& core, VcpuContext& ctx, uint32_t va) {
    Block block;
    block.start_va = va;
    CpuState& s = ctx.state;
    while (block.instrs.size() < kMaxBlockInstrs) {
      if (va & 3u) {
        break;
      }
      mmu::TranslateOutcome out =
          ctx.virt->Translate(va, mmu::Access::kFetch, s.priv(), s.paging_enabled(), s.ptbr);
      core.Charge(out.cost);
      if (out.event != mmu::MemEvent::kNone || out.is_mmio) {
        break;
      }
      const uint8_t* page = ctx.memory->pool().FrameData(out.frame);
      uint32_t word;
      std::memcpy(&word, page + isa::VaPageOffset(out.gpa), 4);
      isa::Instruction in = isa::Decode(word);
      block.instrs.push_back(in);
      uint32_t gpn = isa::PageNumber(out.gpa);
      if (block.gpns.empty() || block.gpns.back() != gpn) {
        block.gpns.push_back(gpn);
      }
      if (EndsBlock(in)) {
        break;
      }
      va += 4;
    }
    return block;
  }

  void SingleStep(ExecCore& core, VcpuContext& ctx) {
    uint32_t word = 0;
    if (!core.Fetch(ctx.state.pc, &word)) {
      return;  // trap vectored or exit latched
    }
    core.Execute(isa::Decode(word));
  }

  void ApplyPendingInvalidations() {
    if (pending_flush_) {
      EvictAll();
      pending_flush_ = false;
      pending_page_invalidations_.clear();
      return;
    }
    for (uint32_t gpn : pending_page_invalidations_) {
      auto it = page_blocks_.find(gpn);
      if (it == page_blocks_.end()) {
        continue;
      }
      for (uint64_t key : it->second) {
        blocks_.erase(key);
      }
      page_blocks_.erase(it);
      code_pages_.erase(gpn);
    }
    pending_page_invalidations_.clear();
  }

  void EvictAll() {
    blocks_.clear();
    page_blocks_.clear();
    code_pages_.clear();
  }

  size_t max_blocks_;
  std::unordered_map<uint64_t, Block> blocks_;
  std::unordered_map<uint32_t, std::vector<uint64_t>> page_blocks_;
  std::unordered_set<uint32_t> code_pages_;
  std::vector<uint32_t> pending_page_invalidations_;
  bool pending_flush_ = false;
};

}  // namespace

std::unique_ptr<ExecutionEngine> MakeDbtEngine(size_t max_blocks) {
  return std::make_unique<DbtEngine>(max_blocks);
}

std::unique_ptr<ExecutionEngine> MakeEngine(EngineKind kind) {
  switch (kind) {
    case EngineKind::kInterpreter:
      return MakeInterpreter();
    case EngineKind::kDbt:
      return MakeDbtEngine();
  }
  return nullptr;
}

}  // namespace hyperion::cpu
