// Dynamic binary translation engine.
//
// Four cooperating fast-path mechanisms sit on top of the basic cached-block
// translator (see DESIGN.md §4):
//
//  * Block chaining — each block carries direct successor links patched on
//    first execution, so steady-state control flow jumps block→block without
//    a hash lookup. Links are validated against `chain_gen_`, a monotonically
//    bumped generation: any block erasure, SFENCE, ptbr switch or interrupt
//    delivery bumps it, which cuts every chain at once. Correctness never
//    depends on eager unlinking — a stale link is simply never followed, and
//    block storage is node-stable except for erasure, which always bumps.
//  * Hot-trace superblocks — a per-block execution counter promotes hot loop
//    heads (threshold-crossing backward-transfer targets, NET style) into
//    straight-line traces splicing up to kMaxTraceBlocks chained blocks. A
//    per-instruction pc guard makes any divergence (trap, off-trace branch)
//    fall back to the constituent blocks; pending SMC invalidations are
//    honored at block seams, exactly where block-by-block dispatch would
//    apply them.
//  * Lazy mapping epochs — SFENCE / paging toggles bump `map_gen_` instead of
//    flushing: a block from a stale epoch is revalidated by re-translating
//    its first and last instruction addresses and comparing code pages, so
//    an sfence that didn't move the hot loop costs two translations, not a
//    whole-cache retranslation storm. FlushCodeCache() (image load, snapshot
//    restore — the code *bytes* changed) remains an eager full flush.
//  * Surgical eviction — at capacity a clock sweep over a victim ring evicts
//    cold or stale-epoch blocks one at a time; hot blocks survive on their
//    reference bit. The full flush only remains as a pathological fallback.
//
// As before, the guest's architectural contract for self-modified code is
// SFENCE-like: stores into code pages invalidate translations at the next
// block (or trace-seam) boundary; a store into the *currently executing*
// block may run a few stale instructions (documented in DESIGN.md).

#include "src/cpu/dbt.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/cpu/exec_core.h"
#include "src/cpu/interpreter.h"

namespace hyperion::cpu {

namespace {

using isa::Opcode;

// An instruction that may change control flow, privileged state, or the
// validity of cached translations ends its block.
bool EndsBlock(const isa::Instruction& in) {
  switch (in.opcode) {
    case Opcode::kJal:
    case Opcode::kJalr:
    case Opcode::kBranch:
    case Opcode::kEcall:
    case Opcode::kEbreak:
    case Opcode::kSret:
    case Opcode::kWfi:
    case Opcode::kHcall:
    case Opcode::kSfence:
    case Opcode::kHalt:
    case Opcode::kCsrrw:
    case Opcode::kCsrrs:
    case Opcode::kCsrrc:
    case Opcode::kIllegal:
      return true;
    default:
      return false;
  }
}

class DbtEngine final : public ExecutionEngine {
 public:
  explicit DbtEngine(size_t max_blocks) : max_blocks_(max_blocks) {}

  std::string_view name() const override { return "dbt"; }

  RunResult Run(VcpuContext& ctx, uint64_t max_cycles) override {
    ExecCore core(ctx, this);
    CpuState& s = ctx.state;

    if (s.halted) {
      core.Exit(ExitReason::kHalt);
      return core.Finish();
    }
    if (s.waiting) {
      core.CheckTimer();
      if (s.ipend == 0) {
        core.Charge(1);
        core.Exit(ExitReason::kWfi);
        return core.Finish();
      }
      s.waiting = false;
    }

    Block* prev = nullptr;  // last executed block, for chain patching
    uint64_t prev_gen = 0;  // chain_gen_ at the time `prev` was recorded

    while (!core.exited() && core.cycles() < max_cycles) {
      if (have_pending_) {
        ApplyPendingInvalidations(ctx);
      }
      core.CheckTimer();
      if (core.DeliverInterruptIfPending()) {
        // Asynchronous control transfer: cut every chain. Dispatch after the
        // handler repatches links under the new generation.
        ++chain_gen_;
        if (core.exited()) {
          break;
        }
      }
      if (prev != nullptr && prev_gen != chain_gen_) {
        prev = nullptr;  // may dangle after an erasure; never dereference
      }

      // Dispatch: follow a direct chain link when one is valid, otherwise
      // fall back to the keyed lookup (revalidating stale-epoch blocks).
      Block* block = nullptr;
      if (prev != nullptr) {
        block = FollowLink(*prev, s.pc);
      }
      if (block != nullptr) {
        ++ctx.stats.chain_hits;
      } else {
        uint64_t key = Key(s.pc, s.ptbr, s.paging_enabled());
        block = FindValid(key, core, ctx);
        if (block == nullptr) {
          block = TranslateAndInsert(core, ctx, key);
        }
        if (block == nullptr) {
          // First instruction is unfetchable (fault) or an MMIO/absent page:
          // let the faithful single-step path produce the trap or exit.
          AbortRecording();
          SingleStep(core, ctx);
          prev = nullptr;
          continue;
        }
        if (prev != nullptr && prev_gen == chain_gen_) {
          PatchLink(*prev, block->start_va, block);
        }
      }

      // Hot-trace state machine (NET: record the next executing tail once a
      // backward-transfer target crosses the heat threshold).
      if (recording_) {
        if (recording_gen_ != chain_gen_) {
          AbortRecording();  // an invalidation voided the recorded pointers
        } else if (block == trace_head_) {
          FormTrace(core, ctx);  // loop closed
        } else if (block->trace != nullptr || !Traceable(*block) ||
                   trace_blocks_.size() >= kMaxTraceBlocks) {
          AbortRecording();
        } else {
          trace_blocks_.push_back(block);
        }
      }
      if (!recording_ && block->trace == nullptr && prev != nullptr &&
          block->start_va <= prev->start_va && ++block->heat >= kHotThreshold &&
          Traceable(*block)) {
        recording_ = true;
        recording_gen_ = chain_gen_;
        trace_head_ = block;
        trace_blocks_.clear();
        trace_blocks_.push_back(block);
      }

      // Execute: the superblock when present and current-epoch, else the
      // block itself.
      if (block->trace != nullptr) {
        if (block->trace->map_gen != map_gen_) {
          KillTrace(*block);  // lazy epoch invalidation
        } else {
          RunTrace(core, ctx, *block, max_cycles);
          prev = nullptr;  // the exit block is not known
          continue;
        }
      }
      ++ctx.stats.block_executions;
      block->hot = true;
      uint32_t expect_pc = block->start_va;
      for (const isa::Instruction& in : block->instrs) {
        if (s.pc != expect_pc) {
          break;  // a trap inside the block redirected control
        }
        if (!core.Execute(in)) {
          break;  // exit latched
        }
        expect_pc += 4;
      }
      // The pointer stays valid: nothing executed above erases blocks (SMC
      // and flushes only queue pending work), and any later erasure bumps
      // chain_gen_, which invalidates `prev` before the next dereference.
      prev = block;
      prev_gen = chain_gen_;
    }
    return core.Finish();
  }

  void InvalidateCodePage(uint32_t gpn) override {
    if (code_pages_.count(gpn)) {
      pending_page_invalidations_.push_back(gpn);
      have_pending_ = true;
    }
  }

  void FlushCodeCache() override {
    // Content change (image load, snapshot restore): cached bytes are stale.
    pending_flush_ = true;
    have_pending_ = true;
  }

  void InvalidateMappings() override {
    // SFENCE / paging toggle: bytes unchanged, va→pa mapping suspect. Blocks
    // revalidate lazily against the new epoch; traces are dropped on their
    // next dispatch; chains are cut.
    ++map_gen_;
    ++chain_gen_;
  }

  void OnAddressSpaceSwitch() override {
    // Blocks are keyed by (va, ptbr, paging) and stay valid per root; only
    // cross-block chains assume a stable address space.
    ++chain_gen_;
  }

 private:
  struct Block;

  struct Link {
    uint32_t target_va = 0;
    Block* target = nullptr;
    uint64_t gen = 0;  // valid only while gen == chain_gen_
  };

  // A run of trace instructions needing a single pc guard: a chunk starts
  // wherever pc is not statically known — at a block entry or right after an
  // instruction that may trap or redirect. Inside a chunk only straight-line
  // ALU instructions precede each step, so pc provably advances by 4 and the
  // per-instruction guard is elided. `seam` marks former block entry points,
  // where pending SMC invalidations force an exit (equivalent to
  // block-by-block dispatch).
  struct Chunk {
    uint32_t begin = 0;
    uint32_t end = 0;
    uint32_t va = 0;  // guard: pc the first instruction must execute at
    uint8_t seam = 0;
  };

  // A superblock: the concatenated instructions of a hot loop's blocks.
  struct Trace {
    uint32_t head_va = 0;
    uint64_t map_gen = 0;
    std::vector<isa::Instruction> instrs;
    std::vector<Chunk> chunks;
    std::vector<uint32_t> gpns;
  };

  // Instructions that can neither trap nor redirect control: pc advances by
  // exactly 4, unconditionally (ALU never faults; div-by-zero has a defined
  // result on HV32).
  static bool StraightLine(const isa::Instruction& in) {
    switch (in.opcode) {
      case Opcode::kOp:
      case Opcode::kOpImm:
      case Opcode::kLui:
      case Opcode::kAuipc:
        return true;
      default:
        return false;
    }
  }

  struct Block {
    uint32_t start_va = 0;
    uint64_t key = 0;
    uint64_t map_gen = 0;  // epoch the translation was (re)validated in
    uint32_t heat = 0;     // backward-transfer arrivals (trace promotion)
    bool hot = false;      // clock reference bit
    std::vector<isa::Instruction> instrs;
    std::vector<uint32_t> gpns;  // guest pages the code bytes came from
    Link links[2];
    uint8_t link_rr = 0;
    std::unique_ptr<Trace> trace;  // present on promoted loop heads
  };

  static constexpr size_t kMaxBlockInstrs = 64;
  static constexpr uint64_t kTranslateCostPerInsn = 6;
  static constexpr uint32_t kHotThreshold = 16;
  static constexpr size_t kMaxTraceBlocks = 8;
  static constexpr size_t kMaxTraceInstrs = 256;

  static uint64_t Key(uint32_t va, uint32_t ptbr, bool paging) {
    uint64_t k = va;
    k |= static_cast<uint64_t>(ptbr) << 32;
    // ptbr values are page numbers (< 2^20 in practice); fold paging on top.
    return k ^ (paging ? 0x8000000000000000ull : 0);
  }

  // A block whose terminal cannot touch privileged state or translations may
  // be spliced into a superblock.
  static bool Traceable(const Block& b) {
    if (b.instrs.empty()) {
      return false;
    }
    const isa::Instruction& last = b.instrs.back();
    switch (last.opcode) {
      case Opcode::kJal:
      case Opcode::kJalr:
      case Opcode::kBranch:
        return true;
      default:
        return !EndsBlock(last);  // plain fall-through (length-capped block)
    }
  }

  // Decodes instructions starting at `va` without delivering any trap: a
  // fetch problem simply ends the block.
  Block TranslateBlock(ExecCore& core, VcpuContext& ctx, uint32_t va) {
    Block block;
    block.start_va = va;
    CpuState& s = ctx.state;
    while (block.instrs.size() < kMaxBlockInstrs) {
      if (va & 3u) {
        break;
      }
      mmu::TranslateOutcome out =
          ctx.virt->Translate(va, mmu::Access::kFetch, s.priv(), s.paging_enabled(), s.ptbr);
      core.Charge(out.cost);
      if (out.event != mmu::MemEvent::kNone || out.is_mmio) {
        break;
      }
      const uint8_t* page = ctx.memory->pool().FrameData(out.frame);
      uint32_t word;
      std::memcpy(&word, page + isa::VaPageOffset(out.gpa), 4);
      isa::Instruction in = isa::Decode(word);
      block.instrs.push_back(in);
      uint32_t gpn = isa::PageNumber(out.gpa);
      if (block.gpns.empty() || block.gpns.back() != gpn) {
        block.gpns.push_back(gpn);
      }
      if (EndsBlock(in)) {
        break;
      }
      va += 4;
    }
    return block;
  }

  void SingleStep(ExecCore& core, VcpuContext& ctx) {
    uint32_t word = 0;
    if (!core.Fetch(ctx.state.pc, &word)) {
      return;  // trap vectored or exit latched
    }
    core.Execute(isa::Decode(word));
  }

  Block* FollowLink(Block& from, uint32_t pc) {
    for (Link& l : from.links) {
      if (l.gen == chain_gen_ && l.target_va == pc) {
        return l.target;
      }
    }
    return nullptr;
  }

  void PatchLink(Block& from, uint32_t target_va, Block* target) {
    for (Link& l : from.links) {
      if (l.gen != chain_gen_ || l.target_va == target_va) {
        l = Link{target_va, target, chain_gen_};
        return;
      }
    }
    from.links[from.link_rr & 1] = Link{target_va, target, chain_gen_};
    ++from.link_rr;
  }

  // Returns the cached block for `key`, revalidating it against the current
  // mapping epoch (two translations) when a SFENCE/paging toggle intervened.
  Block* FindValid(uint64_t key, ExecCore& core, VcpuContext& ctx) {
    auto it = blocks_.find(key);
    if (it == blocks_.end()) {
      return nullptr;
    }
    Block& b = it->second;
    if (b.map_gen != map_gen_) {
      if (!Revalidate(core, ctx, b)) {
        EraseBlock(key, ctx);
        return nullptr;
      }
      b.map_gen = map_gen_;
    }
    return &b;
  }

  // Re-translates the block's first and last instruction addresses and checks
  // they still fetch from the same guest pages. Since blocks are contiguous
  // in va and span at most two pages, matching endpoints imply the whole
  // translation is unchanged.
  bool Revalidate(ExecCore& core, VcpuContext& ctx, const Block& b) {
    if (b.instrs.empty() || b.gpns.empty()) {
      return false;
    }
    CpuState& s = ctx.state;
    auto check = [&](uint32_t va, uint32_t want_gpn) {
      mmu::TranslateOutcome out =
          ctx.virt->Translate(va, mmu::Access::kFetch, s.priv(), s.paging_enabled(), s.ptbr);
      core.Charge(out.cost);
      return out.event == mmu::MemEvent::kNone && !out.is_mmio &&
             isa::PageNumber(out.gpa) == want_gpn;
    };
    if (!check(b.start_va, b.gpns.front())) {
      return false;
    }
    if (b.gpns.size() > 1) {
      uint32_t last_va = b.start_va + 4 * static_cast<uint32_t>(b.instrs.size() - 1);
      if (!check(last_va, b.gpns.back())) {
        return false;
      }
    }
    return true;
  }

  Block* TranslateAndInsert(ExecCore& core, VcpuContext& ctx, uint64_t key) {
    Block nb = TranslateBlock(core, ctx, ctx.state.pc);
    if (nb.instrs.empty()) {
      return nullptr;
    }
    ++ctx.stats.blocks_translated;
    core.Charge(kTranslateCostPerInsn * nb.instrs.size());
    if (blocks_.size() >= max_blocks_) {
      EvictForCapacity(ctx);
    }
    nb.key = key;
    nb.map_gen = map_gen_;
    auto [it, inserted] = blocks_.emplace(key, std::move(nb));
    Block& b = it->second;
    for (uint32_t gpn : b.gpns) {
      code_pages_.insert(gpn);
      page_blocks_[gpn].push_back(key);
    }
    ring_.push_back(key);
    if (ring_.size() > 4 * max_blocks_ + 64) {
      CompactRing();
    }
    return &b;
  }

  // Splices the recorded blocks into a straight-line superblock owned by the
  // loop head.
  void FormTrace(ExecCore& core, VcpuContext& ctx) {
    auto tr = std::make_unique<Trace>();
    tr->head_va = trace_head_->start_va;
    tr->map_gen = map_gen_;
    for (Block* b : trace_blocks_) {
      if (tr->instrs.size() + b->instrs.size() > kMaxTraceInstrs) {
        AbortRecording();
        return;
      }
      bool open_chunk = false;  // block entry always starts a fresh chunk
      for (size_t i = 0; i < b->instrs.size(); ++i) {
        uint32_t idx = static_cast<uint32_t>(tr->instrs.size());
        if (!open_chunk) {
          Chunk c;
          c.begin = idx;
          c.va = b->start_va + 4 * static_cast<uint32_t>(i);
          c.seam = static_cast<uint8_t>(i == 0 && !tr->chunks.empty() ? 1 : 0);
          tr->chunks.push_back(c);
        }
        tr->instrs.push_back(b->instrs[i]);
        tr->chunks.back().end = idx + 1;
        open_chunk = StraightLine(b->instrs[i]);
      }
      for (uint32_t gpn : b->gpns) {
        if (std::find(tr->gpns.begin(), tr->gpns.end(), gpn) == tr->gpns.end()) {
          tr->gpns.push_back(gpn);
        }
      }
    }
    core.Charge(2 * tr->instrs.size());  // splice cost
    for (uint32_t gpn : tr->gpns) {
      code_pages_.insert(gpn);
      page_traces_[gpn].push_back(trace_head_->key);
    }
    trace_head_->trace = std::move(tr);
    ++ctx.stats.traces_formed;
    AbortRecording();
  }

  // Executes the head's superblock, re-entering it while the loop keeps
  // closing. Every instruction is guarded by its expected pc, so traps and
  // off-trace branches fall back naturally; seams honor pending SMC work and
  // the block-boundary interrupt window, so a trace never widens worst-case
  // interrupt latency beyond one block.
  void RunTrace(ExecCore& core, VcpuContext& ctx, Block& head, uint64_t max_cycles) {
    Trace& tr = *head.trace;
    CpuState& s = ctx.state;
    head.hot = true;
    const isa::Instruction* instrs = tr.instrs.data();
    const Chunk* chunks = tr.chunks.data();
    const size_t nchunks = tr.chunks.size();
    const uint32_t head_va = tr.head_va;
    // CSR writes end blocks, and a trap mid-trace fails the next guard, so
    // status (IE) and timecmp are fixed for the whole stay in this trace —
    // hoist them so the per-seam timer/interrupt tests are two compares.
    const uint64_t timer_due =
        s.timecmp != 0 ? s.timecmp : std::numeric_limits<uint64_t>::max();
    const bool ie = s.interrupts_enabled();
    uint64_t passes = 0;
    for (;;) {
      ++passes;
      for (size_t ci = 0; ci < nchunks; ++ci) {
        const Chunk& c = chunks[ci];
        if (c.seam != 0) {
          if (have_pending_) {
            // Apply SMC invalidations exactly at a block seam.
            ctx.stats.trace_executions += passes;
            return;
          }
          // Mirror the dispatch loop's per-block interrupt window at every
          // seam too: without this a trace pass would widen worst-case
          // delivery latency from one block (<=64 instructions) to a full
          // pass (<=256). Bailing out lets dispatch deliver and cut chains.
          if (core.Now() >= timer_due) {
            core.CheckTimer();
          }
          if (ie && s.ipend != 0) {
            ctx.stats.trace_executions += passes;
            return;
          }
        }
        if (s.pc != c.va) {
          // Guard failed: trap or off-trace branch.
          ctx.stats.trace_executions += passes;
          return;
        }
        for (uint32_t i = c.begin; i < c.end; ++i) {
          if (!core.Execute(instrs[i])) {
            ctx.stats.trace_executions += passes;
            return;  // exit latched
          }
        }
      }
      if (s.pc != head_va || have_pending_ || core.cycles() >= max_cycles) {
        break;
      }
      // Mirror the dispatch loop's per-block interrupt window.
      if (core.Now() >= timer_due) {
        core.CheckTimer();
      }
      if (ie && s.ipend != 0) {
        break;
      }
    }
    ctx.stats.trace_executions += passes;
  }

  void AbortRecording() {
    recording_ = false;
    trace_head_ = nullptr;
    trace_blocks_.clear();
  }

  // Drops a head's superblock and its page registrations.
  void KillTrace(Block& b) {
    if (b.trace == nullptr) {
      return;
    }
    for (uint32_t gpn : b.trace->gpns) {
      auto it = page_traces_.find(gpn);
      if (it != page_traces_.end()) {
        auto& v = it->second;
        v.erase(std::remove(v.begin(), v.end(), b.key), v.end());
        if (v.empty()) {
          page_traces_.erase(it);
        }
      }
      MaybeReleasePage(gpn);
    }
    b.trace.reset();
    b.heat = 0;
  }

  // Removes one block, pruning its key from *every* page it was registered
  // under (a block spanning two pages is registered in both lists; leaving
  // the other list's copy behind would grow it without bound under repeated
  // SMC — the stale-key leak this replaces).
  void EraseBlock(uint64_t key, VcpuContext& ctx) {
    (void)ctx;
    auto it = blocks_.find(key);
    if (it == blocks_.end()) {
      return;
    }
    Block& b = it->second;
    KillTrace(b);
    for (uint32_t gpn : b.gpns) {
      auto pit = page_blocks_.find(gpn);
      if (pit != page_blocks_.end()) {
        auto& v = pit->second;
        v.erase(std::remove(v.begin(), v.end(), key), v.end());
        if (v.empty()) {
          page_blocks_.erase(pit);
        }
      }
      MaybeReleasePage(gpn);
    }
    blocks_.erase(it);
    // Any chain link or recording pointer to this block is now stale.
    ++chain_gen_;
  }

  void MaybeReleasePage(uint32_t gpn) {
    if (page_blocks_.count(gpn) == 0 && page_traces_.count(gpn) == 0) {
      code_pages_.erase(gpn);
    }
  }

  void ApplyPendingInvalidations(VcpuContext& ctx) {
    if (pending_flush_) {
      EvictAll(ctx);
      pending_flush_ = false;
      pending_page_invalidations_.clear();
      have_pending_ = false;
      return;
    }
    for (size_t n = 0; n < pending_page_invalidations_.size(); ++n) {
      uint32_t gpn = pending_page_invalidations_[n];
      auto it = page_blocks_.find(gpn);
      if (it != page_blocks_.end()) {
        std::vector<uint64_t> keys = std::move(it->second);
        for (uint64_t key : keys) {
          EraseBlock(key, ctx);
        }
      }
      // Superblocks splicing code from this page whose head lives elsewhere.
      auto tt = page_traces_.find(gpn);
      if (tt != page_traces_.end()) {
        std::vector<uint64_t> heads = std::move(tt->second);
        for (uint64_t head_key : heads) {
          auto bit = blocks_.find(head_key);
          if (bit != blocks_.end()) {
            KillTrace(bit->second);
          }
        }
        page_traces_.erase(gpn);
      }
      MaybeReleasePage(gpn);
    }
    pending_page_invalidations_.clear();
    have_pending_ = false;
  }

  // Clock sweep: evict cold or stale-epoch blocks until 1/8 of the capacity
  // is free. Hot blocks spend their reference bit to survive one sweep.
  void EvictForCapacity(VcpuContext& ctx) {
    size_t target = max_blocks_ - max_blocks_ / 8;
    if (target >= max_blocks_) {
      target = max_blocks_ > 0 ? max_blocks_ - 1 : 0;
    }
    size_t attempts = 2 * ring_.size() + 8;
    while (blocks_.size() > target && attempts-- > 0 && !ring_.empty()) {
      if (hand_ >= ring_.size()) {
        hand_ = 0;
      }
      uint64_t key = ring_[hand_];
      auto it = blocks_.find(key);
      if (it == blocks_.end()) {
        RemoveRingSlot(hand_);  // lazily drop keys of already-erased blocks
        continue;
      }
      Block& b = it->second;
      if (b.hot && b.map_gen == map_gen_) {
        b.hot = false;
        ++hand_;
        continue;
      }
      EraseBlock(key, ctx);
      RemoveRingSlot(hand_);
      ++ctx.stats.evictions_surgical;
    }
    if (blocks_.size() >= max_blocks_) {
      EvictAll(ctx);  // pathological fallback: everything stayed hot
    }
  }

  void RemoveRingSlot(size_t i) {
    ring_[i] = ring_.back();
    ring_.pop_back();
  }

  void CompactRing() {
    ring_.clear();
    ring_.reserve(blocks_.size());
    for (const auto& [key, b] : blocks_) {
      ring_.push_back(key);
    }
    hand_ = 0;
  }

  void EvictAll(VcpuContext& ctx) {
    blocks_.clear();
    page_blocks_.clear();
    page_traces_.clear();
    code_pages_.clear();
    ring_.clear();
    hand_ = 0;
    AbortRecording();
    ++chain_gen_;
    ++ctx.stats.evictions_full;
  }

  size_t max_blocks_;
  std::unordered_map<uint64_t, Block> blocks_;
  std::unordered_map<uint32_t, std::vector<uint64_t>> page_blocks_;
  // gpn → keys of heads whose trace splices code from that page.
  std::unordered_map<uint32_t, std::vector<uint64_t>> page_traces_;
  std::unordered_set<uint32_t> code_pages_;
  std::vector<uint32_t> pending_page_invalidations_;
  bool pending_flush_ = false;
  bool have_pending_ = false;

  uint64_t chain_gen_ = 1;  // cut-chains generation
  uint64_t map_gen_ = 1;    // translation-mapping epoch

  // Clock eviction state.
  std::vector<uint64_t> ring_;
  size_t hand_ = 0;

  // Trace recording state.
  bool recording_ = false;
  uint64_t recording_gen_ = 0;
  Block* trace_head_ = nullptr;
  std::vector<Block*> trace_blocks_;
};

}  // namespace

std::unique_ptr<ExecutionEngine> MakeDbtEngine(size_t max_blocks) {
  return std::make_unique<DbtEngine>(max_blocks);
}

std::unique_ptr<ExecutionEngine> MakeEngine(EngineKind kind) {
  switch (kind) {
    case EngineKind::kInterpreter:
      return MakeInterpreter();
    case EngineKind::kDbt:
      return MakeDbtEngine();
  }
  return nullptr;
}

}  // namespace hyperion::cpu
